package repro

// Benchmark harness: one benchmark per figure/claim in the paper (see
// DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
// results). The paper is a systems paper with three architecture figures
// and quantitative claims in prose; each benchmark regenerates the
// measurement behind one of them on the simulated substrate.
//
// Run all:  go test -bench=. -benchmem
// One id:   go test -bench=BenchmarkFig2 -benchmem

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/adlb"
	"repro/internal/baseline"
	"repro/internal/blob"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/jlite"
	"repro/internal/lang"
	"repro/internal/mpi"
	"repro/internal/nativelib"
	"repro/internal/pfs"
	"repro/internal/pkgs"
	"repro/internal/pylite"
	"repro/internal/rlite"
	"repro/internal/shell"
	"repro/internal/stc"
	"repro/internal/swig"
	"repro/internal/tcl"
	"repro/internal/turbine"
)

// taskSleep is the simulated leaf-task duration used where tasks must
// have nonzero cost for scaling shapes to be visible. Sleeping tasks
// overlap regardless of host cores, so worker scaling is measurable even
// on a small CI machine.
const taskSleep = 2 * time.Millisecond

// sleepSetup registers bench::spin, a leaf command that sleeps.
func sleepSetup(in *tcl.Interp) error {
	in.RegisterCommand("bench::spin", func(in *tcl.Interp, args []string) (string, error) {
		time.Sleep(taskSleep)
		return "", nil
	})
	return nil
}

// ---------------------------------------------------------------------
// F1 — Fig. 1: implicit dataflow of a Swift foreach loop. Parallel
// pipelines t=f(i); g(t) constructed and drained by the runtime.
// ---------------------------------------------------------------------

func fig1Source(n int) string {
	return fmt.Sprintf(`
		(int o) f(int i) { o = i * 3; }
		(int o) g(int t) { o = t %% 2; }
		foreach i in [0:%d] {
			int t = f(i);
			if (g(t) == 0) { trace(t); }
		}`, n-1)
}

func BenchmarkFig1PipelineDataflow(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("pipelines=%d", n), func(b *testing.B) {
			src := fig1Source(n)
			compiled, err := stc.Compile(src)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.RunCompiled(compiled, core.Config{Engines: 1, Workers: 4, Servers: 1})
				if err != nil {
					b.Fatal(err)
				}
				if res.ControlTasks == 0 {
					b.Fatal("no dataflow executed")
				}
			}
			b.ReportMetric(float64(n)/float64(b.Elapsed().Seconds())*float64(b.N), "pipelines/s")
		})
	}
}

func TestFig1PipelineShape(t *testing.T) {
	// The dataflow must produce exactly the g(t)==0 lines of the paper's
	// example, independent of scheduling.
	res, err := core.Run(fig1Source(10), core.Config{Engines: 1, Workers: 4, Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	count := strings.Count(res.Stdout, "trace:")
	if count != 5 { // i*3 even for i = 0,2,4,6,8
		t.Fatalf("got %d even results, want 5\n%s", count, res.Stdout)
	}
}

// ---------------------------------------------------------------------
// F2 — Fig. 2: runtime architecture. Task throughput as workers are
// added (load balancing), and work stealing between servers.
// ---------------------------------------------------------------------

func BenchmarkFig2WorkerScaling(b *testing.B) {
	const tasks = 64
	src := fmt.Sprintf(`
		(string o) unit(int i)
			"benchpkg" "1.0"
			[ "bench::spin\nset <<o>> done-<<i>>" ];
		foreach i in [0:%d] {
			string s = unit(i);
		}`, tasks-1)
	compiled, err := stc.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.RunCompiled(compiled, core.Config{
					Engines: 1, Workers: workers, Servers: 1,
					TclSetup: sleepSetup,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.LeafTasks != tasks {
					b.Fatalf("leaf tasks = %d", res.LeafTasks)
				}
			}
			perRun := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(float64(tasks)/perRun, "tasks/s")
		})
	}
}

func BenchmarkFig2WorkStealing(b *testing.B) {
	// All work enters via one engine whose clients park at server 0;
	// with multiple servers, only stealing feeds the rest of the machine.
	const tasks = 48
	src := fmt.Sprintf(`
		(string o) unit(int i)
			"benchpkg" "1.0"
			[ "bench::spin\nset <<o>> ok" ];
		foreach i in [0:%d] {
			string s = unit(i);
		}`, tasks-1)
	compiled, err := stc.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"steal=on", "steal=off"} {
		b.Run(mode, func(b *testing.B) {
			var stolen int64
			for i := 0; i < b.N; i++ {
				stats := &adlb.Stats{}
				res, err := core.RunCompiled(compiled, core.Config{
					Engines: 1, Workers: 8, Servers: 2,
					TclSetup:     sleepSetup,
					Stats:        stats,
					DisableSteal: mode == "steal=off",
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.LeafTasks != tasks {
					b.Fatalf("leaf tasks = %d", res.LeafTasks)
				}
				stolen += stats.ItemsStolen.Load()
			}
			b.ReportMetric(float64(stolen)/float64(b.N), "items-stolen/run")
		})
	}
}

// ---------------------------------------------------------------------
// F3 — Fig. 3: the SWIG binding pipeline. Native call path overhead:
// direct Go call vs SWIG-wrapped Tcl command vs full Swift leaf task.
// ---------------------------------------------------------------------

func BenchmarkFig3NativeCallPath(b *testing.B) {
	lib := nativelib.NewSimLibrary()
	kernel, err := lib.Resolve("sim_waveform")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("direct-kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kernel([]any{int64(i % 100), 0.01}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("swig-tcl-wrapper", func(b *testing.B) {
		in := tcl.New()
		if _, err := swig.Bind(in, lib); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := in.Eval("sim_waveform " + strconv.Itoa(i%100) + " 0.01"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("swift-leaf-task", func(b *testing.B) {
		src := `
			(float o) wave(int i)
				"libsim" "1.0"
				[ "set <<o>> [ sim_waveform <<i>> 0.01 ]" ];
			foreach i in [0:31] {
				float w = wave(i);
			}`
		compiled, err := stc.Compile(src)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.RunCompiled(compiled, core.Config{
				Engines: 1, Workers: 4, Servers: 1,
				NativeLibs: []*nativelib.Library{lib},
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(32, "native-calls/op")
	})
}

func TestFig3BuildPipeline(t *testing.T) {
	// Header -> SWIG -> Tcl command -> callable, plus the generated
	// wrapper artefact (the wrap.c analogue).
	lib := nativelib.NewSimLibrary()
	in := tcl.New()
	decls, err := swig.Bind(in, lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) == 0 {
		t.Fatal("no declarations bound")
	}
	wrapper, err := swig.GenerateWrapper(lib)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(wrapper, "package provide libsim") {
		t.Fatal("wrapper artefact incomplete")
	}
	out, err := in.Eval("sim_version")
	if err != nil || !strings.Contains(out, "libsim") {
		t.Fatalf("bound call failed: %q %v", out, err)
	}
}

// ---------------------------------------------------------------------
// C1 — §III-C: embedded interpreters vs fork/exec of an external
// interpreter. The external path pays process-spawn and filesystem
// costs per task; the embedded path pays neither.
// ---------------------------------------------------------------------

func BenchmarkC1EmbeddedVsExternal(b *testing.B) {
	const tasks = 16
	embedded := fmt.Sprintf(`
		foreach i in [0:%d] {
			string s = python("y = 21 * 2", "y");
		}`, tasks-1)
	external := fmt.Sprintf(`
		foreach i in [0:%d] {
			string s = sh("python-exe", "-c", "21*2");
		}`, tasks-1)
	embCompiled, err := stc.Compile(embedded)
	if err != nil {
		b.Fatal(err)
	}
	extCompiled, err := stc.Compile(external)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("embedded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.RunCompiled(embCompiled, core.Config{Engines: 1, Workers: 4, Servers: 1})
			if err != nil {
				b.Fatal(err)
			}
			if res.PythonEvals != tasks {
				b.Fatalf("evals = %d", res.PythonEvals)
			}
		}
	})
	b.Run("external-exec", func(b *testing.B) {
		// The external interpreter: a fresh process per task that
		// initialises a new interpreter, evaluates, and exits — plus the
		// fork/exec cost and loading the binary from the filesystem.
		pythonExe := func(sys *shell.System, argv []string, stdin string) (string, error) {
			h := pylite.New()
			if len(argv) >= 3 && argv[1] == "-c" {
				v, err := h.EvalExpr(argv[2])
				if err != nil {
					return "", err
				}
				return pylite.Str(v), nil
			}
			return "", fmt.Errorf("python-exe: usage: python-exe -c expr")
		}
		for i := 0; i < b.N; i++ {
			fs := pfs.New(pfs.DefaultConfig())
			fs.Provision("/bin/python-exe", make([]byte, 1<<20))
			res, err := core.RunCompiled(extCompiled, core.Config{
				Engines: 1, Workers: 4, Servers: 1,
				FS:           fs,
				SpawnCost:    2 * time.Millisecond,
				SleepOnSpawn: true,
				Programs:     map[string]shell.Program{"python-exe": pythonExe},
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Spawns != tasks {
				b.Fatalf("spawns = %d", res.Spawns)
			}
		}
	})
}

func TestC1ExternalImpossibleOnBGQ(t *testing.T) {
	// On the BG/Q there is no comparison to make: exec is impossible and
	// only the embedded path functions — the paper's §III-C motivation.
	_, err := core.Run(`string s = sh("python-exe", "-c", "1");`, core.Config{
		ShellMode: 1, // shell.ModeBGQ
	})
	if err == nil || !strings.Contains(err.Error(), "not supported on this system") {
		t.Fatalf("err = %v", err)
	}
	res, err := core.Run(`
		string s = python("y = 1", "y");
		printf("%s", s);`, core.Config{ShellMode: 1})
	if err != nil || !strings.Contains(res.Stdout, "1") {
		t.Fatalf("embedded on BGQ: %v %q", err, res.Stdout)
	}
}

// ---------------------------------------------------------------------
// C2 — §III-C: retain vs reinitialise interpreter state. Reinit pays
// the interpreter initialisation cost on every task.
// ---------------------------------------------------------------------

func BenchmarkC2RetainVsReinit(b *testing.B) {
	const initCost = 500 * time.Microsecond
	const evals = 64
	for _, langName := range []string{"python", "r"} {
		for _, policy := range []string{"retain", "reinit"} {
			b.Run(langName+"/"+policy, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					switch langName {
					case "python":
						h := pylite.New()
						h.InitCost = func() { time.Sleep(initCost) }
						for k := 0; k < evals; k++ {
							if _, err := h.EvalFragment("v = 2 + 2", "v"); err != nil {
								b.Fatal(err)
							}
							if policy == "reinit" {
								h.Reset()
							}
						}
					case "r":
						h := rlite.New()
						h.InitCost = func() { time.Sleep(initCost) }
						for k := 0; k < evals; k++ {
							if _, err := h.EvalFragment("v <- 2 + 2", "v"); err != nil {
								b.Fatal(err)
							}
							if policy == "reinit" {
								h.Reset()
							}
						}
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------
// C3 — §I/§IV: many small script files vs one static package on the
// parallel filesystem. Metadata operations dominate at scale.
// ---------------------------------------------------------------------

func BenchmarkC3ManySmallFiles(b *testing.B) {
	const nFiles = 200
	const nRanks = 64
	content := strings.Repeat("proc helper {} { return 1 }\n", 8)
	for _, mode := range []string{"small-files", "static-package"} {
		b.Run(mode, func(b *testing.B) {
			var virtualTotal time.Duration
			var metaOps int64
			for i := 0; i < b.N; i++ {
				fs := pfs.New(pfs.DefaultConfig())
				bundle := pkgs.NewBundle()
				for f := 0; f < nFiles; f++ {
					path := fmt.Sprintf("/app/lib/mod%03d.tcl", f)
					fs.Provision(path, []byte(content))
					bundle.AddString(path, content)
				}
				pkgs.Install(fs, "/app/bundle.spkg", bundle)
				fs.ResetStats()
				// Every rank loads the application scripts at startup.
				for r := 0; r < nRanks; r++ {
					if mode == "small-files" {
						for f := 0; f < nFiles; f++ {
							if _, err := fs.ReadFile(fmt.Sprintf("/app/lib/mod%03d.tcl", f)); err != nil {
								b.Fatal(err)
							}
						}
					} else {
						if _, err := pkgs.Load(fs, "/app/bundle.spkg"); err != nil {
							b.Fatal(err)
						}
					}
				}
				virtualTotal += fs.VirtualElapsed()
				metaOps += fs.MetaOps()
			}
			b.ReportMetric(float64(virtualTotal.Milliseconds())/float64(b.N), "virtual-ms/startup")
			b.ReportMetric(float64(metaOps)/float64(b.N), "metadata-ops/startup")
		})
	}
}

func TestC3StaticPackageWins(t *testing.T) {
	const nFiles = 100
	const nRanks = 16
	fs := pfs.New(pfs.DefaultConfig())
	bundle := pkgs.NewBundle()
	content := []byte(strings.Repeat("proc p {} {}\n", 4))
	for f := 0; f < nFiles; f++ {
		path := fmt.Sprintf("/lib/m%d.tcl", f)
		fs.Provision(path, content)
		bundle.Add(path, content)
	}
	pkgs.Install(fs, "/b.spkg", bundle)
	fs.ResetStats()
	for r := 0; r < nRanks; r++ {
		for f := 0; f < nFiles; f++ {
			fs.ReadFile(fmt.Sprintf("/lib/m%d.tcl", f))
		}
	}
	smallOps := fs.MetaOps()
	smallTime := fs.VirtualElapsed()
	fs.ResetStats()
	for r := 0; r < nRanks; r++ {
		if _, err := pkgs.Load(fs, "/b.spkg"); err != nil {
			t.Fatal(err)
		}
	}
	bundleOps := fs.MetaOps()
	bundleTime := fs.VirtualElapsed()
	if bundleOps*int64(nFiles) != smallOps {
		t.Fatalf("metadata ratio: small=%d bundle=%d (want %dx)", smallOps, bundleOps, nFiles)
	}
	if bundleTime*10 >= smallTime {
		t.Fatalf("static package should win by >10x: small=%v bundle=%v", smallTime, bundleTime)
	}
}

// ---------------------------------------------------------------------
// C4 — §I: the Swift/T model vs the traditional techniques — a
// hand-written MPI master/worker and a scripting-language MPI binding.
// ---------------------------------------------------------------------

func BenchmarkC4VsHandMPI(b *testing.B) {
	const tasks = 32
	b.Run("swiftt", func(b *testing.B) {
		src := fmt.Sprintf(`
			(string o) unit(int i)
				"benchpkg" "1.0"
				[ "bench::spin\nset <<o>> ok" ];
			foreach i in [0:%d] {
				string s = unit(i);
			}`, tasks-1)
		compiled, err := stc.Compile(src)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.RunCompiled(compiled, core.Config{
				Engines: 1, Workers: 8, Servers: 1, TclSetup: sleepSetup,
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(tasks), "tasks/op")
	})
	b.Run("hand-mpi", func(b *testing.B) {
		jobs := make([]baseline.Task, tasks)
		for i := range jobs {
			jobs[i] = baseline.Task{ID: i}
		}
		for i := 0; i < b.N; i++ {
			w, _ := mpi.NewWorld(9) // 1 master + 8 workers, same worker count
			err := w.Run(func(c *mpi.Comm) error {
				_, err := baseline.MasterWorker(c, jobs, func(tk baseline.Task) ([]byte, error) {
					time.Sleep(taskSleep)
					return []byte("ok"), nil
				})
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(tasks), "tasks/op")
	})
	b.Run("pympi", func(b *testing.B) {
		// Master/worker written inside Python over MPI bindings; the
		// sleep models the same task cost.
		script := fmt.Sprintf(`
rank = mpi_rank()
size = mpi_size()
n = %d
if rank == 0:
    done = 0
    while done < n:
        got = mpi_recv()
        done = done + 1
    result = str(done)
else:
    i = rank - 1
    while i < n:
        sleep_task()
        mpi_send(0, str(i))
        i = i + size - 1
    result = "worker"
`, tasks)
		for i := 0; i < b.N; i++ {
			w, _ := mpi.NewWorld(9)
			err := w.Run(func(c *mpi.Comm) error {
				py := pylite.New()
				py.SetGlobal("sleep_task", pylite.Builtin(
					func(in *pylite.Interp, args []pylite.Value) (pylite.Value, error) {
						time.Sleep(taskSleep)
						return nil, nil
					}))
				bindPyMPI(py, c)
				return py.Exec(script)
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(tasks), "tasks/op")
	})
}

// bindPyMPI wires minimal MPI bindings for the C4 pympi benchmark.
func bindPyMPI(py *pylite.Interp, c *mpi.Comm) {
	py.SetGlobal("mpi_rank", pylite.Builtin(func(in *pylite.Interp, args []pylite.Value) (pylite.Value, error) {
		return int64(c.Rank()), nil
	}))
	py.SetGlobal("mpi_size", pylite.Builtin(func(in *pylite.Interp, args []pylite.Value) (pylite.Value, error) {
		return int64(c.Size()), nil
	}))
	py.SetGlobal("mpi_send", pylite.Builtin(func(in *pylite.Interp, args []pylite.Value) (pylite.Value, error) {
		dest, _ := args[0].(int64)
		return nil, c.Send(int(dest), 20, []byte(pylite.Str(args[1])))
	}))
	py.SetGlobal("mpi_recv", pylite.Builtin(func(in *pylite.Interp, args []pylite.Value) (pylite.Value, error) {
		data, _, err := c.Recv(mpi.AnySource, 20)
		return string(data), err
	}))
}

// ---------------------------------------------------------------------
// T1 — interpreter throughput: repeated evaluation of the same script,
// the shape of every Turbine rule action and loop body. The compile-once
// pipeline (parse cache, expr AST cache, literal words) must make the
// steady state parse-free.
// ---------------------------------------------------------------------

func BenchmarkTclEval(b *testing.B) {
	b.Run("loop-body", func(b *testing.B) {
		// A control-fragment-shaped script: a loop whose body and
		// condition are re-evaluated every iteration.
		in := tcl.New()
		script := `
			set s 0
			for {set i 0} {$i < 100} {incr i} {
				set s [expr {$s + $i * $i}]
			}
			set s`
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := in.Eval(script)
			if err != nil {
				b.Fatal(err)
			}
			if out != "328350" {
				b.Fatalf("out = %q", out)
			}
		}
		b.ReportMetric(100*float64(b.N)/b.Elapsed().Seconds(), "iters/s")
	})
	b.Run("proc-call", func(b *testing.B) {
		// Repeated proc invocation: the body must be compiled once at
		// first call, not re-parsed per call.
		in := tcl.New()
		if _, err := in.Eval(`proc work {n} {
			set acc 0
			foreach x {1 2 3 4 5 6 7 8} {
				set acc [expr {$acc + $x * $n}]
			}
			return $acc
		}`); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := in.Eval("work 3")
			if err != nil {
				b.Fatal(err)
			}
			if out != "108" {
				b.Fatalf("out = %q", out)
			}
		}
	})
	b.Run("expr-cond", func(b *testing.B) {
		// The while-condition shape: one expr string evaluated under
		// changing variable state.
		in := tcl.New()
		if _, err := in.Eval("set i 0; set n 1000000000"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ok, err := in.EvalExprBool("$i < $n && ($i % 2) == 0")
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				b.Fatal("condition false")
			}
		}
	})
}

// ---------------------------------------------------------------------
// T2 — repeated interlanguage fragments, the §III-C hot path: ensemble
// runs evaluate the same python()/r() code string once per task, so
// steady-state fragment evaluation must be parse-free (the embedded
// interpreters memoize source -> parsed program, like the Tcl layer).
// ---------------------------------------------------------------------

func BenchmarkInterpFragment(b *testing.B) {
	const pyCode = `
y = 0
for k in range(10):
    y = y + k * k`
	const rCode = `
v <- 1:10
s <- sum(v * v)`
	const jlCode = `
s = 0
for k in 1:10
    s = s + k * k
end`
	b.Run("python", func(b *testing.B) {
		h := pylite.New()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := h.EvalFragment(pyCode, "y")
			if err != nil {
				b.Fatal(err)
			}
			if out != "285" {
				b.Fatalf("out = %q", out)
			}
		}
	})
	b.Run("r", func(b *testing.B) {
		h := rlite.New()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := h.EvalFragment(rCode, "s")
			if err != nil {
				b.Fatal(err)
			}
			if out != "385" {
				b.Fatalf("out = %q", out)
			}
		}
	})
	b.Run("julia", func(b *testing.B) {
		h := jlite.New()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := h.EvalFragment(jlCode, "s")
			if err != nil {
				b.Fatal(err)
			}
			if out != "385" {
				b.Fatalf("out = %q", out)
			}
		}
	})
}

// ---------------------------------------------------------------------
// Typed fragment arguments (Engine v2): a bulk float vector reaching an
// engine as a typed blob argument (pre-bound as argv1, zero-copy Vec
// view) versus the pre-redesign route of rendering the vector into the
// fragment source as a decimal list literal and re-parsing it. Each
// iteration perturbs the data, as distinct ensemble tasks would, so the
// string path pays its real per-task render+parse cost.
// ---------------------------------------------------------------------

func BenchmarkTypedFragment(b *testing.B) {
	const n = 100_000
	data := make([]float64, n)
	for i := range data {
		data[i] = 0.5 * float64(i)
	}
	reg, ok := lang.Lookup("python")
	if !ok {
		b.Fatal("python not registered")
	}
	b.Run("typed-blob-arg", func(b *testing.B) {
		eng := reg.New(lang.Host{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			data[i%n] = float64(i)
			res, err := eng.Eval(lang.Call{
				Code: "", Expr: "sum(argv1)",
				Args: []lang.Value{lang.Floats(data)},
				Want: lang.KindFloat,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := res.AsFloat(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("string-rendered", func(b *testing.B) {
		eng := reg.New(lang.Host{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			data[i%n] = float64(i)
			var src strings.Builder
			src.WriteString("v = [")
			for j, x := range data {
				if j > 0 {
					src.WriteByte(',')
				}
				src.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
			}
			src.WriteString("]")
			res, err := eng.Eval(lang.Call{
				Code: src.String(), Expr: "sum(v)",
				Want: lang.KindFloat,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := res.AsFloat(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------
// Container pack (vpack) data movement: gathering a 1e4-element array's
// members off the data store as one batched RPC per owning server versus
// one Retrieve RPC per element — the traffic shape behind vpack and the
// reason the container<->vector bridge is viable at array scale.
// ---------------------------------------------------------------------

func BenchmarkContainerPack(b *testing.B) {
	const n = 10_000
	for _, mode := range []string{"batched", "per-element"} {
		b.Run(mode, func(b *testing.B) {
			cfg := adlb.Config{Servers: 1, Types: 2, NotifyType: 0}
			w, err := mpi.NewWorld(2)
			if err != nil {
				b.Fatal(err)
			}
			err = w.Run(func(c *mpi.Comm) error {
				l := adlb.NewLayout(c.Size(), cfg.Servers)
				if l.IsServer(c.Rank()) {
					return adlb.Serve(c, cfg)
				}
				cl, err := adlb.NewClient(c, cfg)
				if err != nil {
					return err
				}
				// Setup: one array's worth of closed float TDs.
				ids := make([]int64, n)
				for i := range ids {
					id, err := cl.Unique()
					if err != nil {
						return err
					}
					if err := cl.Create(id, adlb.TypeFloat); err != nil {
						return err
					}
					if err := cl.Store(id, adlb.FloatValue(float64(i)*0.5)); err != nil {
						return err
					}
					ids[i] = id
				}
				b.ResetTimer()
				for k := 0; k < b.N; k++ {
					if mode == "batched" {
						vals, err := cl.RetrieveBatch(ids)
						if err != nil {
							return err
						}
						if len(vals) != n {
							return fmt.Errorf("gathered %d values, want %d", len(vals), n)
						}
					} else {
						for _, id := range ids {
							v, found, err := cl.Retrieve(id)
							if err != nil {
								return err
							}
							if !found || v.Type != adlb.TypeFloat {
								return fmt.Errorf("id %d: found=%v type=%v", id, found, v.Type)
							}
						}
					}
				}
				b.StopTimer()
				// Park until NO_MORE_WORK so the server can terminate.
				for {
					_, ok, err := cl.Get(1)
					if err != nil || !ok {
						return err
					}
				}
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(n, "elements/op")
		})
	}
}

// ---------------------------------------------------------------------
// C5 — §II-B: "evaluate Swift semantics in a distributed manner (no
// bottleneck)": adding control ranks (engines/servers) must not slow a
// fixed workload, and relieves saturation under control-heavy load.
// ---------------------------------------------------------------------

func BenchmarkC5ControlScaling(b *testing.B) {
	const tasks = 256
	src := fmt.Sprintf(`
		(int o) fast(int i) { o = i + 1; }
		foreach i in [0:%d] {
			int v = fast(i);
		}`, tasks-1)
	compiled, err := stc.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, shape := range []struct{ engines, servers int }{
		{1, 1}, {2, 1}, {1, 2}, {2, 2}, {4, 2},
	} {
		b.Run(fmt.Sprintf("engines=%d/servers=%d", shape.engines, shape.servers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.RunCompiled(compiled, core.Config{
					Engines: shape.engines, Workers: 4, Servers: shape.servers,
				}); err != nil {
					b.Fatal(err)
				}
			}
			perRun := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(float64(tasks)/perRun, "control-tasks/s")
		})
	}
}

// ---------------------------------------------------------------------
// C6 — §III-B: blob marshalling throughput through the blobutils path.
// ---------------------------------------------------------------------

func BenchmarkC6BlobMarshal(b *testing.B) {
	for _, kb := range []int{1, 64, 1024, 16384} {
		n := kb * 1024 / 8
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(i)
		}
		b.Run(fmt.Sprintf("size=%dKB", kb), func(b *testing.B) {
			b.SetBytes(int64(kb * 1024))
			for i := 0; i < b.N; i++ {
				bl := blob.FromFloat64s(data)
				out, err := blob.ToFloat64s(bl)
				if err != nil {
					b.Fatal(err)
				}
				if out[n-1] != data[n-1] {
					b.Fatal("corrupted")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Whole-system smoke benchmark: the interlanguage ensemble end to end.
// ---------------------------------------------------------------------

func BenchmarkEndToEndInterlanguage(b *testing.B) {
	src := `
		(float o) wave(int i)
			"libsim" "1.0"
			[ "set <<o>> [ sim_waveform <<i>> 0.1 ]" ];
		foreach i in [0:7] {
			float w = wave(i);
			string p = python("y = 1 + 1", "y");
			string s = r("v <- 1:3", "sum(v)");
		}`
	compiled, err := stc.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	lib := nativelib.NewSimLibrary()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunCompiled(compiled, core.Config{
			Engines: 1, Workers: 4, Servers: 1,
			NativeLibs: []*nativelib.Library{lib},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.PythonEvals != 8 || res.REvals != 8 {
			b.Fatalf("evals: py=%d r=%d", res.PythonEvals, res.REvals)
		}
	}
}

// ---------------------------------------------------------------------
// Gather/scatter at array scale: a 1e6-element vpack -> engine ->
// vunpack round trip. The data-plane shape behind the container<->vector
// bridge at its largest: gather every member of a million-element
// container, hand the packed vector to an embedded engine as a zero-copy
// view, and scatter the result into a fresh container. allocs/op is the
// headline metric (see alloc_budget.txt and the CI gate); run with
// -benchtime=1x — each iteration scatters a fresh million-member
// container on the server, so long benchtimes grow server memory.
// ---------------------------------------------------------------------

func BenchmarkGatherScatter1e6(b *testing.B) {
	const n = 1_000_000
	cfg := adlb.Config{Servers: 1, Types: 2, NotifyType: 0}
	w, err := mpi.NewWorld(2)
	if err != nil {
		b.Fatal(err)
	}
	err = w.Run(func(c *mpi.Comm) error {
		l := adlb.NewLayout(c.Size(), cfg.Servers)
		if l.IsServer(c.Rank()) {
			return adlb.Serve(c, cfg)
		}
		cl, err := adlb.NewClient(c, cfg)
		if err != nil {
			return err
		}
		// Setup: a container with n closed float members, scattered in
		// one batched RPC, plus its member ids in subscript order.
		src, err := cl.Unique()
		if err != nil {
			return err
		}
		if err := cl.Create(src, adlb.TypeContainer); err != nil {
			return err
		}
		seed := make([]adlb.Value, n)
		for i := range seed {
			seed[i] = adlb.FloatValue(float64(i) * 0.5)
		}
		if err := cl.StoreVector(src, seed); err != nil {
			return err
		}
		pairs, err := cl.Enumerate(src)
		if err != nil {
			return err
		}
		if len(pairs) != n {
			return fmt.Errorf("enumerated %d members, want %d", len(pairs), n)
		}
		ids := make([]int64, n)
		for i, p := range pairs {
			ids[i] = p.Member
		}
		reg, ok := lang.Lookup("python")
		if !ok {
			return fmt.Errorf("python engine not registered")
		}
		eng := reg.New(lang.Host{})
		// One kind column serves every scatter: StoreChunk reads it only
		// while encoding the request.
		kinds := make([]byte, n)
		for i := range kinds {
			kinds[i] = chunk.KindFloat
		}
		b.ReportAllocs()
		b.ResetTimer()
		for k := 0; k < b.N; k++ {
			// Gather (the vpack path): the members arrive as one columnar
			// chunk whose Num column IS the packed float payload, aliasing
			// the pooled response frame — no per-element boxing or copy.
			ck, err := cl.RetrieveChunk(ids)
			if err != nil {
				return err
			}
			if kind, ok := ck.AllKind(); !ok || kind != chunk.KindFloat {
				return fmt.Errorf("gathered chunk is not homogeneous float")
			}
			bl := blob.Blob{Data: ck.Num, Elem: blob.ElemF64, Dims: []int{n}}
			// Engine leg: the blob crosses into the engine as a
			// zero-copy Vec view and back out.
			res, err := eng.Eval(lang.Call{
				Expr: "argv1", Args: []lang.Value{lang.BlobOf(bl)},
				Want: lang.KindBlob,
			})
			if err != nil {
				return err
			}
			out := res.AsBlob()
			// Scatter (the vunpack path): the blob payload becomes the
			// store chunk's Num column verbatim -> fresh container.
			dst, err := cl.Unique()
			if err != nil {
				return err
			}
			if err := cl.Create(dst, adlb.TypeContainer); err != nil {
				return err
			}
			if err := cl.StoreChunk(dst, chunk.Chunk{Kinds: kinds, Num: out.Data}); err != nil {
				return err
			}
		}
		b.StopTimer()
		// Park until NO_MORE_WORK so the server can terminate.
		for {
			_, ok, err := cl.Get(1)
			if err != nil || !ok {
				return err
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(n, "elements/op")
}

// TestGatherScatterAllocBudget is the CI allocation gate for the hot
// data path: it runs BenchmarkGatherScatter1e6 once and fails if
// allocs/op exceeds the budget committed in alloc_budget.txt. Gated
// behind ALLOC_BUDGET_GATE because the measurement takes ~30s and only
// means something as a deliberate check, not inside every `go test`.
func TestGatherScatterAllocBudget(t *testing.T) {
	if os.Getenv("ALLOC_BUDGET_GATE") == "" {
		t.Skip("set ALLOC_BUDGET_GATE=1 to enforce the allocs/op budget")
	}
	data, err := os.ReadFile("alloc_budget.txt")
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(-1)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if budget, err = strconv.ParseInt(line, 10, 64); err != nil {
			t.Fatalf("alloc_budget.txt: bad budget line %q: %v", line, err)
		}
		break
	}
	if budget < 0 {
		t.Fatal("alloc_budget.txt contains no budget value")
	}
	r := testing.Benchmark(BenchmarkGatherScatter1e6)
	if got := r.AllocsPerOp(); got > budget {
		t.Fatalf("gather/scatter allocates %d allocs/op, budget is %d: the hot data path regressed", got, budget)
	} else {
		t.Logf("gather/scatter: %d allocs/op within budget %d", got, budget)
	}
}

// Guard: turbine package is linked for the stats types used above.
var _ = turbine.TypeWork
