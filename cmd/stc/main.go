// Command stc is the standalone Swift-to-Turbine compiler: it reads a
// Swift source file and prints the generated Turbine code (Tcl), the
// artefact the paper's STC produces for execution by the runtime.
//
// Usage:
//
//	stc program.swift        # print Turbine code to stdout
//	stc -o out.tic program.swift
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/stc"
)

func main() {
	outPath := flag.String("o", "", "write Turbine code to this file instead of stdout")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: stc [-o out.tic] program.swift")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "stc:", err)
		os.Exit(1)
	}
	compiled, err := stc.Compile(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "stc:", err)
		os.Exit(1)
	}
	text := compiled.Program + "\n# seed: " + compiled.Main + "\n"
	if *outPath == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*outPath, []byte(text), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "stc:", err)
		os.Exit(1)
	}
}
