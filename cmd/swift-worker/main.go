// Command swift-worker is the worker side of an out-of-process elastic
// run: it dials a hub (cmd/turbine -listen, or any core.ServeElastic
// caller), is assigned a worker rank, and pulls leased leaf tasks until
// the run drains. Workers may join mid-run — queued work and steal
// rebalancing cover redistribution — and a worker that is killed simply
// vanishes: the hub's crash detection reclaims its leases.
//
// Usage:
//
//	swift-worker -addr 127.0.0.1:41833
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	addr := flag.String("addr", "", "hub address to join (host:port)")
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "usage: swift-worker -addr host:port")
		os.Exit(2)
	}
	if err := core.ElasticWorker(*addr, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "swift-worker:", err)
		os.Exit(1)
	}
}
