// Command swiftd runs the long-lived multi-tenant interlanguage service:
// one warm ADLB world held resident, accepting Swift program submissions
// and typed fragment calls over HTTP/JSON from many tenants, with
// byte-budgeted compile caches and per-tenant admission control.
//
// Usage:
//
//	swiftd [-addr host:port] [-w workers] [-s servers] [-pool engines]
//	       [-progcache MiB] [-timeout d] [-tenant name:prio:conc:queue]...
//
// Each -tenant flag declares one admission class, e.g.
//
//	swiftd -tenant interactive:10:2:4 -tenant batch:0:8:64
//
// gives "interactive" priority 10 with 2 concurrent slots and a queue of
// 4, and "batch" priority 0 with 8 slots and a queue of 64. Unlisted
// tenants get the defaults. SIGINT/SIGTERM shut the service down
// gracefully (HTTP drained, warm world quiesced) and print a final
// /statsz snapshot to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

// tenantFlags collects repeated -tenant name:prio:conc:queue flags.
type tenantFlags map[string]serve.TenantConfig

func (t tenantFlags) String() string {
	var parts []string
	for name, cfg := range t {
		parts = append(parts, fmt.Sprintf("%s:%d:%d:%d",
			name, cfg.Priority, cfg.MaxConcurrent, cfg.MaxQueue))
	}
	return strings.Join(parts, ",")
}

func (t tenantFlags) Set(s string) error {
	f := strings.Split(s, ":")
	if len(f) != 4 || f[0] == "" {
		return fmt.Errorf("want name:priority:concurrent:queue, got %q", s)
	}
	var n [3]int
	for i, v := range f[1:] {
		x, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("tenant %s field %d: %v", f[0], i+1, err)
		}
		n[i] = x
	}
	t[f[0]] = serve.TenantConfig{Priority: n[0], MaxConcurrent: n[1], MaxQueue: n[2]}
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8414", "HTTP listen address")
	workers := flag.Int("w", 2, "fragment worker ranks in the warm world")
	servers := flag.Int("s", 1, "ADLB server ranks in the warm world")
	pool := flag.Int("pool", 0, "resident engines per worker pool (0 = default)")
	progCache := flag.Int64("progcache", 8, "compiled-program cache budget, MiB")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	tenants := tenantFlags{}
	flag.Var(tenants, "tenant", "admission class as name:priority:concurrent:queue (repeatable)")
	flag.Parse()

	s, err := serve.New(serve.Config{
		Workers:           *workers,
		Servers:           *servers,
		PoolEngines:       *pool,
		ProgramCacheBytes: *progCache << 20,
		RequestTimeout:    *timeout,
		Tenants:           tenants,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "swiftd:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swiftd:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: s.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "swiftd: serving on http://%s (%d workers, %d servers)\n",
		ln.Addr(), *workers, *servers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "swiftd: shutting down")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "swiftd: http shutdown:", err)
	}
	<-httpDone
	snap := s.Stats()
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "swiftd: world shutdown:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}
