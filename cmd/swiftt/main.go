// Command swiftt compiles and runs a Swift program on the simulated
// distributed-memory runtime, the equivalent of the paper's
// stc + turbine launch pipeline in one step.
//
// Usage:
//
//	swiftt [-e engines] [-w workers] [-s servers] [-bgq] program.swift
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/nativelib"
	"repro/internal/shell"
)

func main() {
	engines := flag.Int("e", 1, "engine ranks (dataflow evaluation)")
	workers := flag.Int("w", 4, "worker ranks (leaf tasks)")
	servers := flag.Int("s", 1, "ADLB server ranks")
	bgq := flag.Bool("bgq", false, "simulate a Blue Gene/Q node (no process launches)")
	stats := flag.Bool("stats", false, "print runtime statistics after the run")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: swiftt [-e N] [-w N] [-s N] [-bgq] [-stats] program.swift")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "swiftt:", err)
		os.Exit(1)
	}
	mode := shell.ModeCluster
	if *bgq {
		mode = shell.ModeBGQ
	}
	res, err := core.Run(string(src), core.Config{
		Engines:    *engines,
		Workers:    *workers,
		Servers:    *servers,
		Out:        os.Stdout,
		ShellMode:  mode,
		NativeLibs: []*nativelib.Library{nativelib.NewSimLibrary()},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "swiftt:", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "elapsed: %v\nleaf tasks: %d\ncontrol tasks: %d\n"+
			"python evals: %d\nR evals: %d\nprocess spawns: %d\n"+
			"adlb: %+v\n",
			res.Elapsed, res.LeafTasks, res.ControlTasks,
			res.PythonEvals, res.REvals, res.Spawns, res.ADLB)
	}
}
