// Command swiftvet runs the repo's invariant analyzers over Go packages
// and prints file:line:col diagnostics. It exits 0 when the tree is
// clean, 1 when any analyzer reports, and 2 when packages fail to load
// or type-check.
//
// swiftvet must run from inside the module (normally the repo root): the
// stdlib source importer resolves module-path imports through the go
// command relative to the working directory.
//
// Usage:
//
//	swiftvet [-list] [-checks=name,name] [packages]
//
// With no packages, ./... is analyzed. -list prints the analyzer names
// and one-line contracts. -checks restricts the run to a comma-separated
// subset (prefix a name with '-' to disable it instead: -checks=-statsmirror
// runs everything but statsmirror).
//
// The faultsites never-referenced check accumulates uses across the
// analyzed packages only, so analyzing a subset that includes
// internal/faultinject but not the packages that arm its sites reports
// them as dead; run ./... for a meaningful answer from that check.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis/atomiccopy"
	"repro/internal/analysis/codecdiscipline"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/faultsites"
	"repro/internal/analysis/framerelease"
	"repro/internal/analysis/statsmirror"
)

func allAnalyzers() []*driver.Analyzer {
	return []*driver.Analyzer{
		atomiccopy.New(),
		codecdiscipline.New(),
		faultsites.New(),
		framerelease.New(),
		statsmirror.New(),
	}
}

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	checksFlag := flag.String("checks", "", "comma-separated analyzers to run (prefix with '-' to disable)")
	flag.Parse()

	analyzers := allAnalyzers()
	sort.Slice(analyzers, func(i, j int) bool { return analyzers[i].Name < analyzers[j].Name })

	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(analyzers, *checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swiftvet:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := driver.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swiftvet:", err)
		os.Exit(2)
	}

	diags := driver.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers applies the -checks spec: either a whitelist of names,
// or a blacklist where every entry is '-'-prefixed. Mixing the two forms
// or naming an unknown analyzer is an error.
func selectAnalyzers(all []*driver.Analyzer, spec string) ([]*driver.Analyzer, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return all, nil
	}
	known := map[string]bool{}
	for _, a := range all {
		known[a.Name] = true
	}
	enable := map[string]bool{}
	disable := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, neg := strings.CutPrefix(part, "-")
		if !known[name] {
			return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
		}
		if neg {
			disable[name] = true
		} else {
			enable[name] = true
		}
	}
	if len(enable) > 0 && len(disable) > 0 {
		return nil, fmt.Errorf("-checks mixes enabled and disabled names; use one form")
	}
	var out []*driver.Analyzer
	for _, a := range all {
		if len(enable) > 0 && !enable[a.Name] {
			continue
		}
		if disable[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-checks disabled every analyzer")
	}
	return out, nil
}
