package main

import (
	"strings"
	"testing"

	"repro/internal/analysis/driver"
)

func names(as []*driver.Analyzer) string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return strings.Join(out, ",")
}

func TestSelectAnalyzers(t *testing.T) {
	all := []*driver.Analyzer{{Name: "a"}, {Name: "b"}, {Name: "c"}}
	cases := []struct {
		spec    string
		want    string
		wantErr bool
	}{
		{spec: "", want: "a,b,c"},
		{spec: "b", want: "b"},
		{spec: "a,c", want: "a,c"},
		{spec: "-b", want: "a,c"},
		{spec: " a , c ", want: "a,c"},
		{spec: "a,-b", wantErr: true},
		{spec: "nosuch", wantErr: true},
		{spec: "-a,-b,-c", wantErr: true},
	}
	for _, tc := range cases {
		got, err := selectAnalyzers(all, tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("spec %q: expected error, got %q", tc.spec, names(got))
			}
			continue
		}
		if err != nil {
			t.Errorf("spec %q: unexpected error %v", tc.spec, err)
			continue
		}
		if names(got) != tc.want {
			t.Errorf("spec %q: got %q, want %q", tc.spec, names(got), tc.want)
		}
	}
}
