// Command turbine runs a pre-compiled Turbine code file (Tcl, as emitted
// by cmd/stc) on the simulated runtime, mirroring the paper's separation
// between compilation and parallel launch.
//
// Usage:
//
//	turbine [-e engines] [-w workers] [-s servers] [-main proc] out.tic
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/nativelib"
	"repro/internal/stc"
)

func main() {
	engines := flag.Int("e", 1, "engine ranks")
	workers := flag.Int("w", 4, "worker ranks")
	servers := flag.Int("s", 1, "ADLB server ranks")
	mainProc := flag.String("main", "", "seed proc (defaults to the '# seed:' comment or u:main)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: turbine [-e N] [-w N] [-s N] [-main proc] out.tic")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbine:", err)
		os.Exit(1)
	}
	program := string(src)
	seed := *mainProc
	if seed == "" {
		seed = "u:main"
		for _, line := range strings.Split(program, "\n") {
			if strings.HasPrefix(line, "# seed: ") {
				seed = strings.TrimSpace(strings.TrimPrefix(line, "# seed: "))
			}
		}
	}
	res, err := core.RunCompiled(&stc.Output{Program: program, Main: seed}, core.Config{
		Engines:    *engines,
		Workers:    *workers,
		Servers:    *servers,
		Out:        os.Stdout,
		NativeLibs: []*nativelib.Library{nativelib.NewSimLibrary()},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbine:", err)
		os.Exit(1)
	}
	_ = res
}
