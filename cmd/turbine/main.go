// Command turbine runs a pre-compiled Turbine code file (Tcl, as emitted
// by cmd/stc) on the simulated runtime, mirroring the paper's separation
// between compilation and parallel launch.
//
// Usage:
//
//	turbine [-e engines] [-w workers] [-s servers] [-main proc] out.tic
//
// With -listen, the process instead becomes the hub of an out-of-process
// elastic run: engines and ADLB servers run locally, and worker processes
// (cmd/swift-worker) join over TCP, each taking one worker rank. The run
// starts once -min-workers have connected and terminates against the
// workers that actually joined.
//
//	turbine -listen 127.0.0.1:0 -worker-slots 8 -min-workers 2 out.tic
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/nativelib"
	"repro/internal/stc"
)

func main() {
	engines := flag.Int("e", 1, "engine ranks")
	workers := flag.Int("w", 4, "worker ranks")
	servers := flag.Int("s", 1, "ADLB server ranks")
	mainProc := flag.String("main", "", "seed proc (defaults to the '# seed:' comment or u:main)")
	listen := flag.String("listen", "", "run as an elastic hub: TCP listen address for joining workers (e.g. 127.0.0.1:0)")
	slots := flag.Int("worker-slots", 0, "elastic hub: maximum workers that may ever join (with -listen)")
	minWorkers := flag.Int("min-workers", 1, "elastic hub: workers required before the run starts (with -listen)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: turbine [-e N] [-w N] [-s N] [-main proc] [-listen addr [-worker-slots N] [-min-workers N]] out.tic")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbine:", err)
		os.Exit(1)
	}
	program := string(src)
	seed := *mainProc
	if seed == "" {
		seed = "u:main"
		for _, line := range strings.Split(program, "\n") {
			if strings.HasPrefix(line, "# seed: ") {
				seed = strings.TrimSpace(strings.TrimPrefix(line, "# seed: "))
			}
		}
	}
	compiled := &stc.Output{Program: program, Main: seed}
	if *listen != "" {
		_, err := core.ServeElastic(compiled, core.ElasticConfig{
			Engines:     *engines,
			Servers:     *servers,
			WorkerSlots: *slots,
			MinWorkers:  *minWorkers,
			Addr:        *listen,
			Out:         os.Stdout,
			NativeLibs:  []*nativelib.Library{nativelib.NewSimLibrary()},
			OnListen: func(addr string) {
				// Workers (and launcher scripts) read this line to learn
				// the bound address when -listen used port 0.
				fmt.Fprintf(os.Stderr, "turbine: listening on %s\n", addr)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "turbine:", err)
			os.Exit(1)
		}
		return
	}
	res, err := core.RunCompiled(compiled, core.Config{
		Engines:    *engines,
		Workers:    *workers,
		Servers:    *servers,
		Out:        os.Stdout,
		NativeLibs: []*nativelib.Library{nativelib.NewSimLibrary()},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbine:", err)
		os.Exit(1)
	}
	_ = res
}
