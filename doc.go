// Package repro is a from-scratch Go reproduction of "Toward
// Interlanguage Parallel Scripting for Distributed-Memory Scientific
// Computing" (Wozniak et al., CLUSTER 2015): the Swift/T system — the
// Swift dataflow language, the STC compiler, the Turbine engine, and the
// ADLB load balancer — together with the paper's interlanguage layer:
// embedded Python and R interpreters, SWIG/FortWrap native-code bindings
// with blob bulk data, Tcl extension functions, and the shell interface.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduction of the paper's figures and claims.
// The root-level bench_test.go regenerates every experiment.
package repro
