// Package repro is a from-scratch Go reproduction of "Toward
// Interlanguage Parallel Scripting for Distributed-Memory Scientific
// Computing" (Wozniak et al., CLUSTER 2015): the Swift/T system — the
// Swift dataflow language, the STC compiler, the Turbine engine, and the
// ADLB load balancer — together with the paper's interlanguage layer:
// embedded Python and R interpreters, SWIG/FortWrap native-code bindings
// with blob bulk data, Tcl extension functions, and the shell interface.
//
// # The compile-once Tcl evaluation pipeline
//
// Swift/T's control plane is Tcl: every Turbine rule action, control
// fragment, and leaf task is a Tcl script string evaluated by a per-rank
// interpreter, so interpreter throughput bounds every benchmark in this
// repo. The internal/tcl package therefore evaluates through a
// compile-once pipeline rather than re-lexing source on every call:
//
//	source text ──(parse, memoized)──> *tcl.Script ──(substitute/Call)──> result
//
// The stages, in order of execution:
//
//   - Parse cache. Interp.Eval memoizes parseScript results in a bounded
//     (FIFO-evicted) per-interpreter cache keyed by source text, so a
//     loop body or rule action is parsed once no matter how many times
//     it runs. Proc bodies compile on first call and the compiled form
//     is stored on the proc definition; redefinition installs a fresh
//     definition, which invalidates naturally. The `while`, `for`,
//     `foreach`, `lmap`, and `dict for` commands hoist body compilation
//     out of their iteration loops.
//
//   - Expression ASTs. expr/if/while conditions compile to an AST
//     memoized by source text (Interp.EvalExpr, EvalExprBool), so
//     `while {$i < $n}` stops re-lexing its condition every iteration.
//     Only syntax lives in the AST: variables and bracketed commands are
//     resolved at evaluation time, and operand evaluation stays eager
//     (no short-circuit), exactly as the pre-AST evaluator behaved.
//
//   - Substitution fast path. The parser marks words containing no `$`,
//     `[`, or backslash as literal; evaluation appends their text
//     directly instead of running substWord.
//
//   - Shared program compilation. stc.Output.Script compiles the
//     generated Turbine program (prelude included) exactly once, and
//     every engine/worker rank evaluates the shared immutable
//     *tcl.Script (turbine.Config.ProgramScript) instead of re-parsing
//     the program per rank at startup.
//
// Caching is keyed purely on source text and stores only parse results —
// never values, bindings, or namespace state — so behaviour under upvar,
// uplevel, catch, and proc redefinition is unchanged; see
// internal/tcl/cache_test.go for the invariants. The bounded cache type
// itself lives in internal/memo and is shared by every embedded
// interpreter: internal/pylite and internal/rlite memoize fragment
// parses the same way (invariants in their cache_test.go files), so
// repeated python(...)/r(...) fragments — the per-task hot path of
// ensemble workloads — are parse-free in the steady state too.
//
// # The interlanguage engine layer (internal/lang)
//
// Every embedded language is wired in through one subsystem. An Engine
// is Name + EvalFragment(code, expr) + Reset + an eval counter; a
// Registration couples an Engine factory with the Swift-level arity of
// the builtin. The rest of the system derives from the registry:
//
//   - internal/swift.LookupBuiltin synthesizes the leaf builtin
//     name(code, expr) -> string for any registered language, so the
//     type checker needs no per-language table entries;
//   - the generated prelude's sw:leaf dispatches unknown leaf names to
//     the Tcl command <name>::eval;
//   - core.RunCompiled iterates lang.Registered() at rank setup and
//     installs each <name>::eval via lang.Install, which creates the
//     engine lazily on first use, applies the retain/reinit state policy
//     (paper §III-C) after every fragment, and counts evaluations per
//     language into Result.Evals (counters flow from the engines through
//     the registry — there are no per-language atomics in core).
//
// The standard registrations (python, r, tcl, sh) live in
// internal/lang/engines.go; adding a language is exactly one
// lang.Register call, proven end to end by the toy-engine test in
// internal/core/lang_e2e_test.go, which registers a language in a test
// and calls it from Swift source with no edits to the checker, the
// prelude, or core.
//
// Benchmarks: `go test -bench=BenchmarkTclEval -run=NONE .` measures the
// interpreter alone; BenchmarkC5ControlScaling and
// BenchmarkFig2WorkerScaling measure the end-to-end effect. Compare
// before/after with `go test -bench=. -run=NONE -count=10 | benchstat`.
// CHANGES.md records the numbers for each PR.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduction of the paper's figures and claims.
// The root-level bench_test.go regenerates every experiment.
package repro
