// Package repro is a from-scratch Go reproduction of "Toward
// Interlanguage Parallel Scripting for Distributed-Memory Scientific
// Computing" (Wozniak et al., CLUSTER 2015): the Swift/T system — the
// Swift dataflow language, the STC compiler, the Turbine engine, and the
// ADLB load balancer — together with the paper's interlanguage layer:
// embedded Python and R interpreters, SWIG/FortWrap native-code bindings
// with blob bulk data, Tcl extension functions, and the shell interface.
//
// # The compile-once Tcl evaluation pipeline
//
// Swift/T's control plane is Tcl: every Turbine rule action, control
// fragment, and leaf task is a Tcl script string evaluated by a per-rank
// interpreter, so interpreter throughput bounds every benchmark in this
// repo. The internal/tcl package therefore evaluates through a
// compile-once pipeline rather than re-lexing source on every call:
//
//	source text ──(parse, memoized)──> *tcl.Script ──(substitute/Call)──> result
//
// The stages, in order of execution:
//
//   - Parse cache. Interp.Eval memoizes parseScript results in a bounded
//     (FIFO-evicted) per-interpreter cache keyed by source text, so a
//     loop body or rule action is parsed once no matter how many times
//     it runs. Proc bodies compile on first call and the compiled form
//     is stored on the proc definition; redefinition installs a fresh
//     definition, which invalidates naturally. The `while`, `for`,
//     `foreach`, `lmap`, and `dict for` commands hoist body compilation
//     out of their iteration loops.
//
//   - Expression ASTs. expr/if/while conditions compile to an AST
//     memoized by source text (Interp.EvalExpr, EvalExprBool), so
//     `while {$i < $n}` stops re-lexing its condition every iteration.
//     Only syntax lives in the AST: variables and bracketed commands are
//     resolved at evaluation time, and operand evaluation stays eager
//     (no short-circuit), exactly as the pre-AST evaluator behaved.
//
//   - Substitution fast path. The parser marks words containing no `$`,
//     `[`, or backslash as literal; evaluation appends their text
//     directly. Non-literal words get a substitution plan compiled at
//     parse time — the $var/[cmd]/backslash scan runs once, backslash
//     sequences resolve into literal segments, and evaluation walks the
//     precomputed segments instead of re-scanning the text per eval.
//     One grammar serves every substitution path: substWord compiles
//     and walks a plan, expr variable nodes precompile their reference
//     into the memoized AST, and malformed constructs become error
//     segments that raise at first evaluation with the scanner's exact
//     messages.
//
//   - Shared program compilation. stc.Output.Script compiles the
//     generated Turbine program (prelude included) exactly once, and
//     every engine/worker rank evaluates the shared immutable
//     *tcl.Script (turbine.Config.ProgramScript) instead of re-parsing
//     the program per rank at startup.
//
// Caching is keyed purely on source text and stores only parse results —
// never values, bindings, or namespace state — so behaviour under upvar,
// uplevel, catch, and proc redefinition is unchanged; see
// internal/tcl/cache_test.go for the invariants. The bounded cache type
// itself lives in internal/memo and is shared by every embedded
// interpreter: internal/pylite and internal/rlite memoize fragment
// parses the same way (invariants in their cache_test.go files), so
// repeated python(...)/r(...) fragments — the per-task hot path of
// ensemble workloads — are parse-free in the steady state too.
//
// # The interlanguage engine layer (internal/lang): typed calls
//
// Every embedded language is wired in through one subsystem, and calls
// into it are typed end to end (Engine v2). The value model is
// lang.Value, a tagged union of string, int, float, and blob — blobs
// carry their payload bytes plus Fortran dims and an element kind
// (internal/blob.Elem), the blobutils contract of §III-B made explicit.
// An Engine is Name + Eval(Call) (Value, error) + Reset + an eval
// counter, where Call{Code, Expr, Args, Want} is one typed request: Args
// are pre-bound in the target interpreter as the variables argv1..argvN
// before Code runs, and the Expr result returns as a typed Value, not a
// rendering. A Registration couples the Engine factory with a Signature
// — fixed string arity (code/expr), variadic typed extras, and a result
// spec (ResultDynamic lets the Swift assignment context choose the
// result type). The rest of the system derives from the registry:
//
//   - internal/swift.LookupBuiltin synthesizes the leaf builtin
//     name(code, expr, args...) for any registered language from its
//     Signature; extra arguments may be string, int, float, or blob, and
//     `blob v = python(...)` / `float f = python(...)` type the result
//     by context (Checker.checkExprAs), defaulting to string;
//   - the compiler emits sw:leafcall actions carrying TD ids only; the
//     prelude proc expands them to <name>::call, the typed dispatch
//     surface, so blob arguments pass by data-store reference and no
//     value renders into the action string (sw:leaf and <name>::eval
//     remain as the string surface for app functions and direct Tcl
//     callers);
//   - <name>::call moves arguments and results through lang.DataPlane
//     (implemented by turbine.Env.DataPlane over the rank's ADLB
//     client); blob values cross the data store with dims and element
//     kind riding alongside the payload (adlb.Value.Dims/Elem), element
//     bytes are never formatted as text anywhere on the route, and the
//     whole argument vector loads in one batched call (DataPlane.LoadBatch
//     over adlb.Client.RetrieveBatch: one RPC per owning server, never
//     one per argument);
//   - core.RunCompiled iterates lang.Registered() at rank setup and
//     installs both surfaces via lang.Install, which creates the engine
//     lazily on first use, applies the retain/reinit state policy (paper
//     §III-C) after every fragment, and counts evaluations per language
//     into Result.Evals.
//
// Inside the interpreters, blob arguments become native vectors: pylite
// binds them as Vec — a zero-copy, list-like view over the packed bytes
// (the SLIRP technique), mutable in place, returned bit-exact — and
// rlite decodes them into real R numeric vectors, repacking results
// under the incoming prototype's element kind and dims when values
// permit (blob.PackLike), so float32/int32 identity round-trips stay
// bit-exact. The strings-only Tcl engine binds raw payload bytes and
// reattaches argument metadata to unmodified results. internal/jlite —
// the Julia-like surface §IV sketches, registered as the julia engine —
// binds blobs as mutable 1-based Vec views with the same zero-copy
// discipline and the same write guards as pylite (integer writes into
// integer element kinds stay on an exact integer path beyond 2^53;
// inexact narrowing errors rather than rounding); fresh vectors born
// from its broadcast operators (.+ .- .* ./ .^ over `function…end` /
// `for…end` fragments) repack via blob.PackLike under the sole blob
// argument's prototype, all-int64 vectors staying on the exact integer
// path when provenance is ambiguous.
//
// Swift containers reach the typed plane through the container<->vector
// bridge: vpack(A) gathers a closed int or float array into one blob TD
// (float arrays pack as float64 vectors, int arrays as int64, dims
// recorded as [n]), and vunpack(b) scatters a blob back into an array
// whose element type follows the assignment context — `float A[] =
// vunpack(b)` decodes under the blob's element kind, `int A[] = ...`
// requires exactly integral values. Both compile to sw:vpack/sw:vunpack
// actions carrying TD ids and the element type only; the gather waits on
// the container and then on its members, runs as a worker leaf task, and
// moves every element through the batched data plane (RetrieveBatch /
// StoreVector: one RPC per owning server, one owner-local member datum
// per element), so a 1e4-element pack is a handful of messages rather
// than 1e4 — and element data never renders as text. This is what turns
// typed scalar calls into the paper's §IV array-scale ensembles: scatter
// a packed vector with vunpack, foreach an interpreter fragment per
// element, vpack the results, and aggregate the blob in one call
// (examples/interlang, internal/core/container_roundtrip_test.go,
// BenchmarkContainerPack).
//
// Adding a language is exactly what building jlite required, and no
// more: (1) the interpreter package itself, exposing Exec/EvalExpr/
// Reset plus Set/DelGlobal for argv pre-binding and a compile-once
// fragment cache on internal/memo; (2) one Engine adapter and one
// lang.Register call in internal/lang/engines.go stating its Signature
// — Fixed (how many leading string args; 2 for julia's (code, expr)),
// Variadic (typed extras allowed), and Result (a pinned kind, or
// ResultDynamic for context typing); and (3) a Dialect entry in
// internal/lang/conformance spelling the probe fragments in the new
// language. Nothing else changes — the checker, prelude, and core all
// derive from the registration (`blob v = julia(code, expr, args...)`
// worked with zero edits to check.go, prelude.go, or core.go), proven
// end to end by the toy-engine test (internal/core/lang_e2e_test.go)
// and enforced by the conformance matrix: the harness iterates
// lang.Registered(), runs every value-kind × dims × policy ×
// argv-unbinding case against every engine (bit-exact byte comparison
// included), and fails if a registered engine lacks a dialect — so a
// fifth language is covered by construction, Swift -> engine -> Swift
// (internal/lang/conformance, internal/core/typed_roundtrip_test.go).
//
// # Data plane and memory model
//
// The hot data path is allocation-free end to end: a million-element
// gather -> engine -> scatter round trip moves one contiguous buffer
// per column, not one boxed value per element
// (BenchmarkGatherScatter1e6; the allocs/op ceiling is committed in
// alloc_budget.txt and enforced in CI). Three mechanisms compose:
//
// Columnar chunks (internal/chunk, modeled on TiDB's vectorized chunk).
// A batch of values travels as a chunk: a one-byte kind tag per row
// plus one contiguous buffer per element class — Num (8 bytes per
// numeric row, little-endian, bit-identical to both the data-store
// encoding and a packed blob payload), Raw+Off for strings and blobs,
// Meta for blob dims/element kinds. adlb.Client.RetrieveChunk and
// StoreChunk move a chunk as one RPC per owning server with a chunk
// frame on the wire (decode validates every cross-column invariant, so
// a hostile frame cannot make readers index out of bounds); lang.Chunk
// aliases the same type, DataPlane.LoadChunk/StoreChunk carry it to the
// turbine layer, and vpack/vunpack convert between a homogeneous
// numeric chunk's Num column and a packed blob with at most a slice
// alias. The same type at every layer means no kind remapping at any
// boundary.
//
// Pooled wire buffers. mpi.Send copies each payload into a frame drawn
// from a world-level pool; ownership transfers to the receiver, which
// hands it back via Comm.Release once every slice aliasing it is dead
// (at most once; reuse is deliberately LIFO so tests can pin the
// contract — mpi.TestFramePoolReuseAliasing does, deterministically).
// On top of that, the ADLB codec reuses encoder scratch through a
// sync.Pool: the rule is getEncoder -> build -> frame() -> Send ->
// putEncoder, never retaining the encoder or its buffer past the Send.
//
// The zero-copy aliasing contract. Payload slices returned by
// adlb.Client.Retrieve, RetrieveBatch, and RetrieveChunk alias the RPC
// response frame. They are valid until the next call on the same
// Client returns: that call retires the pinned frames at its start and
// releases them only after its own request is on the wire (encode may
// legitimately read a retired frame — a retrieved blob stored straight
// back). Consumers that keep payloads longer must copy on escape —
// turbine's fromStore copies blob bytes because engines retain argv
// bindings across later data-plane calls, and lang.ChunkToValues takes
// copyBytes for the same reason — while bulk paths that finish inside
// the window (vpack, vunpack, the gather/scatter benchmark) stay
// zero-copy. On the server side the mirror rule: request frames are
// released after handling except for store-class ops, whose decoded
// value bytes alias the frame for the datum's lifetime (zero-copy
// store), and mutating a stale client view never corrupts a datum
// (adlb.TestZeroCopyAliasingContract).
//
// # Transport
//
// The simulated MPI world (internal/mpi) has two transports under one
// Comm surface. In-process, ranks are goroutines and Send moves a pooled
// frame between mailboxes. Out-of-process, the same world spans OS
// processes over TCP (mpi.ListenTCP / mpi.JoinTCP): a hub process holds
// the engines, the ADLB servers, and the data store, and each worker
// process joins with a length-prefixed handshake, is assigned a fresh
// rank (monotonic, never reused — a replacement consumes a new slot),
// and exchanges data frames that carry src/dest/tag exactly like local
// envelopes. The frame pool and the zero-copy aliasing contract survive
// the wire: inbound payloads are read directly into pooled frames, and
// delivery into a local mailbox is the same ownership transfer as a
// local Send. Ranks routed over a dead connection swallow sends (the
// crash is the server's business, not the sender's), and hub relay
// covers worker-to-worker traffic, so client code cannot tell which
// transport a peer is on.
//
// Membership is elastic on top of this: adlb.Config.Elastic switches
// the servers from the static layout roster to the set of clients that
// actually registered (plus the pre-registered hub-local engines), so
// termination, drain, and the hang watchdog close over the workers that
// showed up — workers may join mid-run and pick up queued work.
// Crash detection is two-sided: heartbeat frames with a server-side
// timeout catch wedged peers, and EOF/read errors catch clean deaths;
// either way the hub tombstones the route and adlb.NotifyCrashed
// converts the loss into the same Leave the lease-reclaim path already
// handles. core.ServeElastic / core.ElasticWorker (cmd/turbine -listen,
// cmd/swift-worker) package the whole shape, and examples/elastic runs
// the paper's §IV ensemble across real processes, SIGKILLing a worker
// mid-lease and joining a replacement mid-run.
//
// # Failure model
//
// Leaf-task execution is fault-tolerant end to end. Workers take work
// under a lease: adlb.Client.GetLeased hands out each work item with a
// server-tracked lease id, settled implicitly by the worker's next Get
// (success) or explicitly by Client.Fail (failure, with a retriable
// flag). A worker that departs mid-task (Client.Leave, or a crash that
// reaches the departed-client path) has its outstanding leases reclaimed
// by the server and the items requeued at their original priority —
// items the victim had targeted at itself retarget to AnyRank so a
// survivor can take them. A retriably-failed task is requeued up to
// Config.MaxTaskRetries times (default 2, so 3 attempts total); past
// the budget — or immediately, when the failure is not retriable — the
// task is poisoned: the run ends with an error naming the task and the
// original failure reason rather than hanging or silently dropping work.
//
// What is retriable: interpreter panics (contained per fragment by
// lang's recover wrapper, which Resets the engine before the retry under
// every state policy), injected faults, and data-plane load/store
// errors — all surfaced as lang.TaskError with Retriable set. What is
// not: deterministic evaluation errors from user code (an undefined
// function fails the same way every attempt), which poison on the first
// failure. One bad fragment fails one task; it never takes down the
// rank, and zero simulated processes die.
//
// Two backstops make failures diagnosable instead of silent. The ADLB
// servers run a hang watchdog (Config.WatchdogIdleTicks): a world whose
// remaining work can never execute — queued items no one asks for,
// leases that will never settle, unfilled TDs — ends with a diagnostic
// error listing the stranded work and parked ranks instead of
// deadlocking. And a server that exits while clients are parked in Get
// releases them with an explicit shutdown error rather than leaving
// them in Recv forever.
//
// Every fault path is exercised deterministically through
// internal/faultinject: named sites (adlb.get.deliver,
// adlb.put.targeted, lang.eval.pre, dataplane.store, turbine.worker.task,
// adlb.server.loop, and the transport sites mpi.tcp.conn.drop,
// mpi.tcp.heartbeat, mpi.tcp.frame) with nth-hit error/panic/crash/delay
// plans and no time-based randomness, plus the worker-kill knobs in
// core.Config (KillWorkerRank/KillWorkerAfterTasks). The chaos
// regression matrix in internal/core/fault_test.go, the lease lifecycle
// tests in internal/adlb/lease_test.go, and the TCP matrix in
// internal/mpi/tcp_test.go (SIGKILL mid-task, join mid-run, heartbeat
// loss, torn frames) run under -race in CI. Counters:
// Result.TaskRetries/TaskFailures, adlb Stats.Requeued/Poisoned/
// LeasesIssued/LeasesReclaimed, and the UnfilledTDs gauge.
//
// # Serving model
//
// Where everything above runs one program per world and tears the world
// down, internal/serve (the swiftd command) keeps one warm ADLB world
// resident and serves many tenants over HTTP/JSON: whole Swift program
// submissions and typed single-fragment calls, with base64 blobs
// carrying dims and element type on the wire. Three client roles share
// the warm world — a pinned gateway that submits fragment tasks, a
// pinned collector that routes results back to waiting requests, and
// leased-Get fragment workers, each owning a lang.Pool of per-tenant
// interpreters. The pins (adlb.Client.Pin) hold the otherwise-quiescent
// world open; shutdown releases them in order and lets ordinary Safra
// termination drain the workers.
//
// Warmth is byte-budgeted, not unbounded: compiled programs live in a
// memo.Budget LRU keyed by source hash, and the python/julia engines'
// parse caches are the same Budget type, with hits, misses, and bytes
// evicted surfaced per layer at /statsz. Isolation is enforced at
// tenant boundaries: an engine reused across tenants is Reset (state
// wiped, parse caches kept), sessions are sticky to a worker rank so
// interpreter state survives within a (tenant, session), and the
// cross-engine conformance dialects drive a chaos suite proving no
// tenant ever observes another's globals — under concurrency and under
// injected interpreter panics.
//
// Admission control is per tenant: a concurrency bound, a wait queue
// behind it, and a priority that orders the tenant's fragments in the
// ADLB queues (core.Config.TaskPriority carries it into program runs).
// Arrivals past both bounds get a typed OverloadError — HTTP 429 with
// Retry-After — so a saturated tenant backs up its own queue while an
// interactive tenant's median latency stays test-enforced under
// internal/serve's documented bound. BenchmarkServeConcurrentClients
// pins the reason the service exists: a repeat fragment on the warm
// world against a cold per-request world, with a 5x floor enforced by
// TestWarmServeSpeedupOverColdWorlds.
//
// Benchmarks: `go test -bench=BenchmarkTclEval -run=NONE .` measures the
// interpreter alone; BenchmarkTypedFragment compares a typed blob
// argument against the old render-into-source route for a 1e5-element
// vector; BenchmarkC5ControlScaling and BenchmarkFig2WorkerScaling
// measure the end-to-end effect. Compare before/after with `go test
// -bench=. -run=NONE -count=10 | benchstat`. CHANGES.md records the
// numbers for each PR.
//
// # Static invariants
//
// Several of the invariants above are load-bearing but invisible to the
// compiler: the wire codec's sticky-error discipline, the frame pool's
// ownership transfer, the counter/snapshot mirroring. cmd/swiftvet is a
// stdlib-only analyzer suite (go/parser + go/types; no external
// dependencies) that enforces them at vet time. `go run ./cmd/swiftvet
// ./...` from the repo root exits nonzero on any violation; CI runs it
// next to go vet. The analyzers and their contracts:
//
//   - codecdiscipline: every constructed wire decoder calls finish() on
//     every non-error return path after a read (sticky decode errors and
//     trailing bytes must be checked); encoder buffers leave the codec
//     file only via frame(); a frame() error is never blank-discarded.
//   - framerelease: every frame obtained from Comm.Recv/RecvTimeout that
//     a path uses is Released exactly once on that path, unless its
//     ownership is transferred (returned, stored, appended, or passed
//     on); no use or escape after Release. The same discipline covers
//     the transport's framePool directly: a buffer from framePool.get is
//     put back exactly once unless ownership transfers.
//   - statsmirror: every exported atomic.Int64 counter in a Stats struct
//     has a same-named int64 mirror in its StatsSnapshot sibling, no
//     stale mirrors survive counter removal, and Snapshot() loads and
//     assigns every counter. internal/statstest is the runtime backstop
//     proving the copy actually happens.
//   - atomiccopy: structs holding atomic counters or sync primitives
//     move only by pointer — never copied by assignment, parameter,
//     result, receiver, call argument, or range value.
//   - faultsites: every faultinject crash point names a declared Site
//     constant (no ad-hoc strings), site values are unique, and no
//     declared site is dead.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduction of the paper's figures and claims.
// The root-level bench_test.go regenerates every experiment.
package repro
