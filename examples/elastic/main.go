// Elastic: the paper's §IV ensemble run out-of-process — one hub process
// holding the Turbine engine, the ADLB server, and the data store, with
// worker processes joining over TCP. The run demonstrates the
// distributed-memory failure story end to end: a worker is SIGKILLed
// while it holds a leased task (its lease is reclaimed and the task
// requeued), a replacement worker joins mid-run and picks up queued
// work, and the ensemble still completes bit-exact.
//
// The binary re-execs itself for the worker role, so one `go run` drives
// a genuine multi-process deployment:
//
//	go run ./examples/elastic
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/stc"
)

// The §IV scatter/compute/gather ensemble: 16 parameters packed into one
// blob, shifted in a single typed R call, squared by 16 parallel Python
// fragments on the workers, aggregated by one final typed call.
// sum((i+1)^2) for i in 0..15 = 1496.
const program = `
	float params[];
	foreach i in [0:15] { params[i] = itof(i) * 0.5; }
	blob pv = vpack(params);
	blob shifted = r("y <- argv1 * 2 + 1", "y", pv);
	float ys[] = vunpack(shifted);
	float sq[];
	foreach y, i in ys { sq[i] = python("", "argv1 * argv1", y); }
	float esum = python("", "sum(argv1)", vpack(sq));
	printf("ensemble: sum((2*p+1)^2) = %f over %i fragments", esum, size(sq));
`

const heldMarker = "ELASTIC_TASK_HELD"

func main() {
	if addr := os.Getenv("ELASTIC_EXAMPLE_ADDR"); addr != "" {
		runWorker(addr)
		return
	}
	runHub()
}

// runWorker is the re-exec'd role: join the hub and pull tasks. The
// victim variant stalls on its first leaf task and prints a marker once
// the lease is held, so the hub knows when a SIGKILL is mid-task.
func runWorker(addr string) {
	if os.Getenv("ELASTIC_EXAMPLE_VICTIM") != "" {
		faultinject.Arm(faultinject.SiteWorkerTask, faultinject.Plan{
			Hit: 1, Times: 1, Action: faultinject.ActDelay, Delay: 60 * time.Second,
		})
		go func() {
			for faultinject.Hits(faultinject.SiteWorkerTask) == 0 {
				time.Sleep(time.Millisecond)
			}
			fmt.Println(heldMarker)
		}()
	}
	if err := core.ElasticWorker(addr, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
}

// spawnWorker launches one worker process. When victim is set, the
// returned channel closes once the worker holds a leased task.
func spawnWorker(self, addr string, victim bool) (*exec.Cmd, <-chan struct{}, error) {
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(), "ELASTIC_EXAMPLE_ADDR="+addr)
	if victim {
		cmd.Env = append(cmd.Env, "ELASTIC_EXAMPLE_VICTIM=1")
	}
	cmd.Stderr = os.Stderr
	held := make(chan struct{})
	if victim {
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, nil, err
		}
		go func() {
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				if strings.Contains(sc.Text(), heldMarker) {
					close(held)
					return
				}
			}
		}()
	} else {
		cmd.Stdout = io.Discard
	}
	if err := cmd.Start(); err != nil {
		return nil, nil, err
	}
	return cmd, held, nil
}

func runHub() {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "elastic:", err)
		os.Exit(1)
	}
	compiled, err := stc.Compile(program)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elastic:", err)
		os.Exit(1)
	}

	var victim *exec.Cmd
	res, err := core.ServeElastic(compiled, core.ElasticConfig{
		MinWorkers:  2,
		WorkerSlots: 4,
		Out:         os.Stdout,
		OnListen: func(addr string) {
			fmt.Printf("hub: listening on %s\n", addr)
			v, held, err := spawnWorker(self, addr, true)
			if err != nil {
				fmt.Fprintln(os.Stderr, "elastic: spawn victim:", err)
				os.Exit(1)
			}
			victim = v
			if _, _, err := spawnWorker(self, addr, false); err != nil {
				fmt.Fprintln(os.Stderr, "elastic: spawn worker:", err)
				os.Exit(1)
			}
			go func() {
				select {
				case <-held:
				case <-time.After(60 * time.Second):
					fmt.Fprintln(os.Stderr, "elastic: victim never held a task")
					os.Exit(1)
				}
				fmt.Println("hub: victim holds a lease; sending SIGKILL")
				v.Process.Kill()
				v.Wait()
				fmt.Println("hub: spawning replacement worker (join mid-run)")
				if _, _, err := spawnWorker(self, addr, false); err != nil {
					fmt.Fprintln(os.Stderr, "elastic: spawn replacement:", err)
					os.Exit(1)
				}
			}()
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "elastic: run failed:", err)
		os.Exit(1)
	}
	_ = victim

	var sum float64
	var n int
	found := false
	for _, line := range strings.Split(res.Stdout, "\n") {
		if _, err := fmt.Sscanf(line, "ensemble: sum((2*p+1)^2) = %f over %d fragments", &sum, &n); err == nil {
			found = true
			break
		}
	}
	switch {
	case !found:
		fmt.Fprintf(os.Stderr, "elastic: ensemble line missing from output:\n%s", res.Stdout)
		os.Exit(1)
	case sum != 1496 || n != 16:
		fmt.Fprintf(os.Stderr, "elastic: got sum=%v over %d fragments, want 1496 over 16\n", sum, n)
		os.Exit(1)
	case res.ADLB.LeasesReclaimed < 1:
		fmt.Fprintf(os.Stderr, "elastic: LeasesReclaimed = %d, want >= 1\n", res.ADLB.LeasesReclaimed)
		os.Exit(1)
	}
	fmt.Printf("hub: ensemble complete: sum=%.0f over %d fragments (leases reclaimed: %d, task retries: %d)\n",
		sum, n, res.ADLB.LeasesReclaimed, res.TaskRetries)
}
