// Ensemble: a materials-science-style parameter sweep, the application
// pattern the paper's introduction motivates. A native (simulated C)
// lattice-relaxation kernel is exposed to Swift through the SWIG pipeline
// of Fig. 3; Swift sweeps the coupling parameter across workers; an
// embedded R fragment aggregates the ensemble statistics at the end —
// three languages in one dataflow program with no user MPI code.
//
// Run: go run ./examples/ensemble
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/nativelib"
)

const program = `
// Native kernel (C, via FortWrap/SWIG-style bindings): relax a lattice
// and return its total energy.
(float e) lattice(int cells, int steps, float coupling)
    "libsim" "1.0"
    [ "set <<e>> [ sim_lattice <<cells>> <<steps>> <<coupling>> ]" ];

// One ensemble member: run the kernel, report its energy.
(string line) member(int idx) {
    float c = itof(idx) / 40.0;
    float e = lattice(128, 25, c);
    line = strcat("member ", toString(idx), " coupling=", toString(c),
                  " energy=", toString(e));
}

int n = 12;
string rows[];
foreach i in [0:11] {
    string ln = member(i);
    printf("%s", ln);
    rows[i] = ln;
}

// Aggregate with embedded R once all members are done: energies form the
// sample; R computes mean and spread.
string stats = r(
    "es <- sapply(seq(0, 11), function(i) i / 40.0)",
    "paste('couplings mean=', mean(es), ' sd=', round(sd(es), 4), sep='')");
printf("R aggregate: %s", stats);
`

func main() {
	res, err := core.Run(program, core.Config{
		Engines:    1,
		Workers:    6,
		Servers:    1,
		Out:        os.Stdout,
		NativeLibs: []*nativelib.Library{nativelib.NewSimLibrary()},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ensemble:", err)
		os.Exit(1)
	}
	fmt.Printf("--\nensemble complete: %d leaf tasks across workers, %d R evals, elapsed %v\n",
		res.LeafTasks, res.REvals, res.Elapsed)
}
