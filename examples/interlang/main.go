// Interlang: every language integration from the paper in one workflow —
// Tcl-template extension functions (§III-A), native code through SWIG
// with blob data (§III-B), embedded Python and R (§III-C), and the shell
// interface (app functions). Swift futures carry values between the
// languages with no user marshalling.
//
// Run: go run ./examples/interlang
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/nativelib"
	"repro/internal/tcl"
)

const program = `
// §III-A: a Tcl extension function from a user package.
(int o) tclmul(int i, int j)
    "my_package" "1.0"
    [ "set <<o>> [ my_package_mul <<i>> <<j>> ]" ];

// §III-B: native kernels via SWIG (waveform sample + version string).
(float o) wave(int i)
    "libsim" "1.0"
    [ "set <<o>> [ sim_waveform <<i>> 0.125 ]" ];
(string o) simver()
    "libsim" "1.0"
    [ "set <<o>> [ sim_version ]" ];

// Shell app function (Swift/K-inherited interface).
app (string o) shout(string word) { "echo" "shell" "says" word }

// §III-C: embedded Python computes; embedded R aggregates.
string pysum = python("s = sum(range(1, 101))", "s");
string rstat = r("v <- c(2, 4, 4, 4, 5, 5, 7, 9)", "round(sd(v), 3)");

int tprod = tclmul(6, 7);
// The tcl(...) builtin runs in its own embedded Tcl engine, like
// python/r — distinct from the rank's Turbine runtime interpreter.
string tpow = tcl("expr {2 ** 8}");
float w2 = wave(2);
string banner = shout("hello");

// Typed interlanguage calls (Engine v2): a float vector born in Python
// crosses to R and back as a packed blob — pre-bound as argv1 in each
// engine, entering as a native list/vector, with no string rendering of
// element data anywhere on the route.
blob xs = python("v = map(lambda i: 0.25 * i, range(16))", "v");
blob scaled = r("y <- argv1 * 2 + 1", "y", xs);
float total = python("", "sum(argv1)", scaled);
int nbytes = blob_size(scaled);

// Container <-> vector bridge: the paper's scatter -> per-fragment
// compute -> gather ensemble (§IV workflows). A foreach-built parameter
// array packs into one blob (vpack: batched gather, one RPC per server,
// dims recorded), R shifts the whole vector in one typed call, vunpack
// scatters it back into a Swift array, an ensemble of per-element Python
// fragments squares each value in parallel, and a final vpack feeds the
// aggregate — element data never renders as text anywhere.
float params[];
foreach i in [0:15] { params[i] = itof(i) * 0.5; }
blob pv = vpack(params);
blob shifted = r("y <- argv1 * 2 + 1", "y", pv);
float ys[] = vunpack(shifted);
float sq[];
foreach y, i in ys { sq[i] = python("", "argv1 * argv1", y); }
float esum = python("", "sum(argv1)", vpack(sq));

// §IV: the Julia-like surface on the same typed plane. One broadcast
// fragment squares-and-sums the whole shifted vector — the same number
// the 16-fragment Python ensemble above computes element by element —
// with 1-based indexing reading the first element back.
float jsum = julia("t = sum(argv1 .* argv1)", "t", shifted);
float jfirst = julia("", "argv1[1]", shifted);

printf("python: sum(1..100) = %s", pysum);
printf("r: sd(sample) = %s", rstat);
printf("tcl: 6*7 = %i, 2**8 = %s", tprod, tpow);
printf("native: waveform(2) = %f via %s", w2, simver());
printf("shell: %s", banner);
printf("blob pipeline: sum(2*xs + 1) = %f over %i packed bytes", total, nbytes);
printf("ensemble: sum((2*p+1)^2) = %f over %i fragments", esum, size(sq));
printf("julia: broadcast sum((2*p+1).^2) = %f, first = %f", jsum, jfirst);
`

func main() {
	res, err := core.Run(program, core.Config{
		Engines:    1,
		Workers:    4,
		Servers:    1,
		Out:        os.Stdout,
		NativeLibs: []*nativelib.Library{nativelib.NewSimLibrary()},
		TclSetup: func(in *tcl.Interp) error {
			_, err := in.Eval(`
				package provide my_package 1.0
				proc my_package_mul {a b} { expr {$a * $b} }
			`)
			return err
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "interlang:", err)
		os.Exit(1)
	}
	// The embedded-language roster comes from the lang registry — the
	// same registry that drove type checking and dispatch above.
	var names []string
	for _, reg := range lang.Registered() {
		names = append(names, fmt.Sprintf("%s(%d evals)", reg.Name, res.Evals[reg.Name]))
	}
	fmt.Printf("--\nlanguages exercised: Swift, C(native), %s\n", strings.Join(names, ", "))
	fmt.Printf("leaf tasks %d | spawns %d | elapsed %v\n",
		res.LeafTasks, res.Spawns, res.Elapsed)
}
