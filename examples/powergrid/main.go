// Powergrid: a power-grid contingency ensemble, one of the application
// domains named in the paper's introduction. Each contingency drops one
// line from a small DC power-flow model (solved in the embedded Python
// interpreter), Swift fans the contingencies out across workers, and an
// R fragment ranks the overload scores at the end.
//
// Run: go run ./examples/powergrid
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

const program = `
// Score one contingency: a toy DC load-flow on a 6-bus ring where line k
// is out of service; overload score is the max flow on remaining lines.
(string score) contingency(int k) {
    string code = strcat(
        "k = ", toString(k), "\n",
        "flows = []\n",
        "for i in range(6):\n",
        "    if i != k:\n",
        "        flows.append(abs(100.0 / (1 + (i - k) % 6)))\n",
        "worst = max(flows)");
    score = python(code, "worst");
}

string scores[];
foreach k in [0:5] {
    string s = contingency(k);
    printf("contingency %i -> overload %s", k, s);
    scores[k] = s;
}

// Rank the ensemble with R once every contingency has completed: the
// Swift array of scores becomes an R vector via join_array.
string ranked = r(
    "x <- c(" + join_array(scores, ",") + ")",
    "paste('max overload', max(x), 'at line', which(x == max(x))[1] - 1)");
printf("summary: %s", ranked);
`

func main() {
	res, err := core.Run(program, core.Config{
		Engines: 1,
		Workers: 6,
		Servers: 1,
		Out:     os.Stdout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "powergrid:", err)
		os.Exit(1)
	}
	fmt.Printf("--\ncontingency ensemble done: %d python evals, %d R evals, elapsed %v\n",
		res.PythonEvals, res.REvals, res.Elapsed)
}
