// Quickstart: the paper's Fig. 1 / §II-A program. A foreach loop spawns
// ten implicit-dataflow pipelines f -> g; Swift's futures block each g on
// its own f only, so the pipelines execute concurrently across workers,
// load-balanced by ADLB.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

const program = `
(int o) f(int i) {
    o = i * 3;
}

(int o) g(int t) {
    o = t % 2;
}

foreach i in [0:9] {
    int t = f(i);
    if (g(t) == 0) {
        printf("g(%i)==0", t);
    }
}
`

func main() {
	res, err := core.Run(program, core.Config{
		Engines: 1,
		Workers: 4,
		Servers: 1,
		Out:     os.Stdout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	fmt.Printf("--\ncompleted: %d leaf tasks, %d control tasks in %v\n",
		res.LeafTasks, res.ControlTasks, res.Elapsed)
}
