// Serve: a scripted end-to-end client for swiftd, the long-lived
// multi-tenant interlanguage service. It starts the service in-process,
// then drives it purely over the HTTP/JSON API the way an external
// client would:
//
//   - submits one Swift program twice (the second hit comes from the
//     byte-budgeted compiled-program cache),
//   - makes typed fragment calls from two tenants, including a sticky
//     session whose interpreter state survives across calls,
//   - verifies tenant isolation (tenant B cannot read tenant A's
//     globals; the breach attempt maps to HTTP 422),
//   - reads /statsz and cross-checks the multi-layer counters,
//   - shuts down gracefully and verifies the warm world drains.
//
// Every step is checked; any mismatch exits nonzero, which makes this
// the CI smoke artifact for the serving path.
//
// Run: go run ./examples/serve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/serve"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "serve example: "+format+"\n", args...)
	os.Exit(1)
}

func post(base, path string, body, out any) (int, string) {
	b, err := json.Marshal(body)
	if err != nil {
		fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	raw.ReadFrom(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			fatalf("POST %s: decode: %v", path, err)
		}
	}
	return resp.StatusCode, raw.String()
}

func main() {
	s, err := serve.New(serve.Config{
		Workers: 2,
		Tenants: map[string]serve.TenantConfig{
			"interactive": {Priority: 10, MaxConcurrent: 2, MaxQueue: 4},
			"batch":       {Priority: 0, MaxConcurrent: 4, MaxQueue: 16},
		},
	})
	if err != nil {
		fatalf("start: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("swiftd serving at %s\n", base)

	// 1. A whole Swift program, twice: compile once, hit the cache once.
	prog := map[string]string{
		"tenant": "batch",
		"source": `printf("swift computes %i; python says %s", 6 * 7, python("v = 'embedded'", "v"));`,
	}
	var run struct {
		Stdout   string `json:"stdout"`
		CacheHit bool   `json:"cache_hit"`
	}
	if code, body := post(base, "/api/v1/run", prog, &run); code != http.StatusOK {
		fatalf("program run: %d %s", code, body)
	}
	if run.CacheHit {
		fatalf("first submission reported a cache hit")
	}
	fmt.Printf("program (cold): %s", run.Stdout)
	if code, body := post(base, "/api/v1/run", prog, &run); code != http.StatusOK {
		fatalf("program rerun: %d %s", code, body)
	}
	if !run.CacheHit {
		fatalf("second submission missed the program cache")
	}
	fmt.Println("program (warm): compiled-program cache hit")

	// 2. Typed fragment calls from two tenants; "interactive" holds a
	// sticky session whose interpreter accumulates state call to call.
	var fr serve.FragmentResult
	if code, body := post(base, "/api/v1/frag", serve.FragmentRequest{
		Tenant: "interactive", Session: "repl-1", Lang: "python",
		Code: "total = 40", Expr: "total", Want: "int",
	}, &fr); code != http.StatusOK {
		fatalf("session init: %d %s", code, body)
	}
	if code, body := post(base, "/api/v1/frag", serve.FragmentRequest{
		Tenant: "interactive", Session: "repl-1", Lang: "python",
		Code: "total = total + 2", Expr: "total", Want: "int",
	}, &fr); code != http.StatusOK {
		fatalf("session increment: %d %s", code, body)
	}
	if fr.Value.Int != 42 {
		fatalf("sticky session lost state: %+v", fr.Value)
	}
	fmt.Printf("interactive session: total = %d across two calls\n", fr.Value.Int)

	if code, body := post(base, "/api/v1/frag", serve.FragmentRequest{
		Tenant: "batch", Lang: "julia", Code: "x = 6 * 7", Expr: "x", Want: "int",
	}, &fr); code != http.StatusOK {
		fatalf("batch julia fragment: %d %s", code, body)
	}
	if fr.Value.Int != 42 {
		fatalf("julia fragment = %+v", fr.Value)
	}
	fmt.Printf("batch fragment: julia says %d\n", fr.Value.Int)

	// 3. Isolation: "batch" probing for interactive's session global must
	// see an undefined variable (HTTP 422), never the value.
	if code, body := post(base, "/api/v1/frag", serve.FragmentRequest{
		Tenant: "batch", Lang: "python", Expr: "total", Want: "int",
	}, nil); code != http.StatusUnprocessableEntity {
		fatalf("isolation breach: tenant read across boundary: %d %s", code, body)
	}
	fmt.Println("isolation: cross-tenant read correctly rejected (422)")

	// 4. /statsz cross-check.
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		fatalf("statsz: %v", err)
	}
	var snap serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		fatalf("statsz decode: %v", err)
	}
	resp.Body.Close()
	if snap.Serve.ProgramRuns != 2 || snap.ProgramCache.Hits != 1 {
		fatalf("statsz program counters: %+v / %+v", snap.Serve, snap.ProgramCache)
	}
	if snap.Serve.Fragments != 4 || snap.Serve.FragmentErrors != 1 {
		fatalf("statsz fragment counters: %+v", snap.Serve)
	}
	if snap.Tenants["interactive"].Admitted != 2 || snap.Tenants["batch"].Admitted != 4 {
		fatalf("statsz tenant counters: %+v", snap.Tenants)
	}
	adlbPuts := snap.ADLB.PutsLocal + snap.ADLB.PutsForwarded
	if snap.Pool.Evals == 0 || adlbPuts == 0 {
		fatalf("statsz lower layers empty: pool %+v adlb %+v", snap.Pool, snap.ADLB)
	}
	fmt.Printf("statsz: %d fragments, %d program runs, %d pool evals, %d adlb puts\n",
		snap.Serve.Fragments, snap.Serve.ProgramRuns, snap.Pool.Evals, adlbPuts)

	// 5. Graceful shutdown: HTTP first, then the warm world drains.
	hs.Close()
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			fatalf("world shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		fatalf("warm world did not drain")
	}
	fmt.Println("shutdown: warm world drained cleanly")
}
