package adlb

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mpi"
)

const (
	typeControl = 0
	typeWork    = 1
)

func testConfig(servers int) Config {
	return Config{Servers: servers, Types: 2, NotifyType: typeControl, Stats: &Stats{}}
}

// runWorld runs a world with the given total size and server count.
// clientFn is invoked on client ranks.
func runWorld(t *testing.T, size, servers int, clientFn func(cl *Client) error) StatsSnapshot {
	t.Helper()
	cfg := testConfig(servers)
	w, err := mpi.NewWorld(size)
	if err != nil {
		t.Fatal(err)
	}
	fail := time.AfterFunc(30*time.Second, func() {
		w.Abort(fmt.Errorf("test watchdog: world hung"))
	})
	defer fail.Stop()
	err = w.Run(func(c *mpi.Comm) error {
		l := NewLayout(size, servers)
		if l.IsServer(c.Rank()) {
			return Serve(c, cfg)
		}
		cl, err := NewClient(c, cfg)
		if err != nil {
			return err
		}
		return clientFn(cl)
	})
	if err != nil {
		t.Fatal(err)
	}
	return cfg.Stats.Snapshot()
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Servers: 0, Types: 1},
		{Servers: 4, Types: 1},
		{Servers: 1, Types: 0},
		{Servers: 1, Types: 2, NotifyType: 5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(4); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	good := Config{Servers: 1, Types: 2, NotifyType: 1}
	if err := good.Validate(4); err != nil {
		t.Errorf("unexpected: %v", err)
	}
}

func TestLayout(t *testing.T) {
	l := NewLayout(10, 2) // 8 clients, servers are ranks 8, 9
	if l.Clients() != 8 {
		t.Fatalf("clients = %d", l.Clients())
	}
	if !l.IsServer(8) || !l.IsServer(9) || l.IsServer(7) {
		t.Fatal("server predicate wrong")
	}
	if l.ServerRank(0) != 8 || l.ServerRank(1) != 9 {
		t.Fatal("server rank mapping wrong")
	}
	// Every client maps to a valid server; blocks are contiguous.
	prev := l.ServerOf(0)
	for c := 1; c < l.Clients(); c++ {
		s := l.ServerOf(c)
		if !l.IsServer(s) {
			t.Fatalf("client %d maps to non-server %d", c, s)
		}
		if s < prev {
			t.Fatalf("server assignment not monotone at client %d", c)
		}
		prev = s
	}
	// Ownership: id stride matches allocating server.
	for i := 0; i < 2; i++ {
		id := int64(2 + i) // ids ≡ i (mod 2)
		if l.OwnerOf(id) != l.ServerRank(i) {
			t.Fatalf("owner of %d = %d", id, l.OwnerOf(id))
		}
	}
}

func TestLayoutBalanceProperty(t *testing.T) {
	f := func(sizeRaw, serversRaw uint8) bool {
		size := int(sizeRaw%60) + 2
		servers := int(serversRaw%uint8(size-1)) + 1
		l := NewLayout(size, servers)
		counts := make([]int, servers)
		for c := 0; c < l.Clients(); c++ {
			counts[l.ServerIndex(l.ServerOf(c))]++
		}
		// Balanced: max-min <= 1, and all clients assigned.
		minC, maxC, sum := counts[0], counts[0], 0
		for _, n := range counts {
			if n < minC {
				minC = n
			}
			if n > maxC {
				maxC = n
			}
			sum += n
		}
		return sum == l.Clients() && maxC-minC <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetSingleServer(t *testing.T) {
	// 1 client + 1 server: client puts N items then gets them all back.
	runWorld(t, 2, 1, func(cl *Client) error {
		const n = 20
		for i := 0; i < n; i++ {
			if err := cl.Put(typeWork, 0, AnyRank, []byte{byte(i)}); err != nil {
				return err
			}
		}
		seen := 0
		for seen < n {
			p, ok, err := cl.Get(typeWork)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("premature shutdown after %d items", seen)
			}
			seen++
			_ = p
		}
		// Next get should eventually return shutdown (queue empty, all parked).
		_, ok, err := cl.Get(typeWork)
		if err != nil {
			return err
		}
		if ok {
			return fmt.Errorf("expected no-more-work")
		}
		return nil
	})
}

func TestPriorityOrder(t *testing.T) {
	runWorld(t, 2, 1, func(cl *Client) error {
		// Enqueue with mixed priorities while nothing is parked.
		for i, pr := range []int{1, 5, 3, 5, 2} {
			if err := cl.Put(typeWork, pr, AnyRank, []byte{byte(i)}); err != nil {
				return err
			}
		}
		// Expect priority desc, FIFO within equal priority: 1,3,2,4,0
		want := []byte{1, 3, 2, 4, 0}
		for _, wb := range want {
			p, ok, err := cl.Get(typeWork)
			if err != nil || !ok {
				return fmt.Errorf("get: ok=%v err=%v", ok, err)
			}
			if p[0] != wb {
				return fmt.Errorf("priority order: got %d want %d", p[0], wb)
			}
		}
		_, ok, err := cl.Get(typeWork)
		if ok || err != nil {
			return fmt.Errorf("shutdown: ok=%v err=%v", ok, err)
		}
		return nil
	})
}

func TestPriorityAwareParkedMatching(t *testing.T) {
	// Regression for FIFO-of-arrival delivery to parked clients: when a
	// batch of items (a steal response) lands while a client is parked,
	// the client must receive the highest-priority queued item, not the
	// first-arrived one. Exercised white-box: rank 1 hosts a server
	// struct whose queue is filled low-priority-first with a client
	// already parked; rank 0 plays the parked client and asserts on the
	// delivered item.
	w, err := mpi.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	fail := time.AfterFunc(30*time.Second, func() {
		w.Abort(fmt.Errorf("test watchdog: world hung"))
	})
	defer fail.Stop()
	item := func(prio int, tag byte) workItem {
		return workItem{Type: typeWork, Priority: prio, Target: AnyRank, Payload: []byte{tag}}
	}
	err = w.Run(func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			// The parked client: wait for the single delivery.
			data, st, ok, err := c.RecvTimeout(mpi.AnySource, mpi.AnyTag, 10*time.Second)
			if err != nil || !ok {
				return fmt.Errorf("recv: ok=%v err=%v", ok, err)
			}
			d := &decoder{buf: data}
			if st.Tag != tagResponse || d.u8() != stOK {
				return fmt.Errorf("unexpected response tag=%d", st.Tag)
			}
			got := decodeWorkItem(d)
			if d.err != nil {
				return d.err
			}
			if got.Priority != 5 || got.Payload[0] != 'H' {
				return fmt.Errorf("parked client got priority %d (%q), want the highest-priority item", got.Priority, got.Payload)
			}
			return nil
		}
		s := newServer(c, testConfig(1), NewLayout(2, 1))
		s.parked[0] = parkedReq{typ: typeWork}
		s.parkOrder = []int{0}
		// Batch arrives lowest-priority first — the adversarial arrival
		// order for FIFO-of-arrival matching.
		if s.enqueue(item(1, 'L')) && s.enqueue(item(5, 'H')) && s.enqueue(item(3, 'M')) {
			s.matchParked(typeWork, AnyRank)
		}
		if len(s.parked) != 0 {
			return fmt.Errorf("client still parked after matching")
		}
		if q := s.untargeted[typeWork]; q == nil || q.len() != 2 {
			return fmt.Errorf("expected the two lower-priority items to stay queued")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTargetedPut(t *testing.T) {
	// 3 clients: rank 0 sends targeted work to rank 2; ranks 1 and 2 Get.
	// Only rank 2 may receive it.
	var got2 atomic.Int64
	runWorld(t, 4, 1, func(cl *Client) error {
		switch cl.Rank() {
		case 0:
			for i := 0; i < 5; i++ {
				if err := cl.Put(typeWork, 0, 2, []byte("targeted")); err != nil {
					return err
				}
			}
		case 2:
			for {
				p, ok, err := cl.Get(typeWork)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				if string(p) != "targeted" {
					return fmt.Errorf("unexpected payload %q", p)
				}
				got2.Add(1)
			}
		}
		// All clients drain to shutdown.
		for {
			_, ok, err := cl.Get(typeWork)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			return fmt.Errorf("rank %d received work meant for rank 2", cl.Rank())
		}
	})
	if got2.Load() != 5 {
		t.Fatalf("rank 2 got %d targeted items, want 5", got2.Load())
	}
}

func TestWorkDistributionAcrossClients(t *testing.T) {
	// One producer, several consumers; all items must be consumed exactly once.
	const items = 120
	const clients = 6
	var consumed atomic.Int64
	runWorld(t, clients+1, 1, func(cl *Client) error {
		if cl.Rank() == 0 {
			for i := 0; i < items; i++ {
				if err := cl.Put(typeWork, 0, AnyRank, []byte{byte(i)}); err != nil {
					return err
				}
			}
		}
		for {
			_, ok, err := cl.Get(typeWork)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			consumed.Add(1)
		}
	})
	if consumed.Load() != items {
		t.Fatalf("consumed %d, want %d", consumed.Load(), items)
	}
}

func TestUntargetedDispatchFIFOAfterTargetedDelivery(t *testing.T) {
	// Regression: deliver used to remove clients from the parked map but
	// not from the park FIFO, so a client that received a targeted item
	// and re-parked kept its old (earlier) FIFO position and won every
	// untargeted dispatch, starving later-parked clients.
	//
	// Ordering (client 2 is the producer):
	//   t=0    client 0 parks
	//   t=50   targeted put -> client 0 (stale FIFO entry in the old code)
	//   t=100  client 1 parks
	//   t=200  client 0 re-parks (after the stale entry and client 1)
	//   t=300  untargeted put -> must go to client 1 (earlier park)
	//   t=350  untargeted put -> goes to client 0
	step := 50 * time.Millisecond
	var mu sync.Mutex
	got := map[int][]string{}
	record := func(rank int, payload []byte) {
		mu.Lock()
		got[rank] = append(got[rank], string(payload))
		mu.Unlock()
	}
	drain := func(cl *Client) error {
		for {
			p, ok, err := cl.Get(typeWork)
			if err != nil || !ok {
				return err
			}
			record(cl.Rank(), p)
		}
	}
	runWorld(t, 4, 1, func(cl *Client) error {
		switch cl.Rank() {
		case 0:
			p, ok, err := cl.Get(typeWork)
			if err != nil || !ok {
				return err
			}
			record(0, p)
			time.Sleep(4 * step) // re-park only after client 1 has parked
			return drain(cl)
		case 1:
			time.Sleep(2 * step)
			return drain(cl)
		case 2:
			time.Sleep(step)
			if err := cl.Put(typeWork, 0, 0, []byte("targeted")); err != nil {
				return err
			}
			time.Sleep(5 * step)
			if err := cl.Put(typeWork, 0, AnyRank, []byte("first-untargeted")); err != nil {
				return err
			}
			time.Sleep(step)
			if err := cl.Put(typeWork, 0, AnyRank, []byte("second-untargeted")); err != nil {
				return err
			}
			// Park too, so the server can reach quiescence and terminate.
			return drain(cl)
		}
		return nil
	})
	mu.Lock()
	defer mu.Unlock()
	if len(got[0]) == 0 || got[0][0] != "targeted" {
		t.Fatalf("client 0 items = %v, want targeted delivery first", got[0])
	}
	if len(got[1]) != 1 || got[1][0] != "first-untargeted" {
		t.Fatalf("client 1 items = %v, want [first-untargeted]: earliest-parked client must win", got[1])
	}
	if len(got[0]) != 2 || got[0][1] != "second-untargeted" {
		t.Fatalf("client 0 items = %v, want [targeted second-untargeted]", got[0])
	}
}

func TestWorkStealingAcrossServers(t *testing.T) {
	// 2 servers. All work is produced at server 0 before any consumption
	// starts (enforced by a barrier); clients of server 1 can then only
	// be fed by stealing. Slow consumption guarantees the steal window.
	const items = 50
	var consumedRemote atomic.Int64
	produced := make(chan struct{})
	st := runWorld(t, 6, 2, func(cl *Client) error {
		// Layout: clients 0..3; servers ranks 4,5. ServerOf: 0,1 -> 4; 2,3 -> 5.
		if cl.Rank() == 0 {
			for i := 0; i < items; i++ {
				if err := cl.Put(typeWork, 0, AnyRank, []byte("job")); err != nil {
					return err
				}
			}
			close(produced)
		}
		<-produced
		for {
			_, ok, err := cl.Get(typeWork)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			time.Sleep(time.Millisecond)
			if cl.Layout().ServerOf(cl.Rank()) != cl.Layout().ServerOf(0) {
				consumedRemote.Add(1)
			}
		}
	})
	if st.ItemsStolen == 0 {
		t.Fatalf("expected some items stolen; stats=%+v", st)
	}
	if consumedRemote.Load() == 0 {
		t.Fatal("expected remote-server clients to consume stolen work")
	}
}

func TestDisableSteal(t *testing.T) {
	cfg := testConfig(2)
	cfg.DisableSteal = true
	w, _ := mpi.NewWorld(6)
	fail := time.AfterFunc(30*time.Second, func() { w.Abort(fmt.Errorf("hang")) })
	defer fail.Stop()
	var crossServer atomic.Int64
	err := w.Run(func(c *mpi.Comm) error {
		l := NewLayout(6, 2)
		if l.IsServer(c.Rank()) {
			return Serve(c, cfg)
		}
		cl, err := NewClient(c, cfg)
		if err != nil {
			return err
		}
		if cl.Rank() == 0 {
			for i := 0; i < 30; i++ {
				if err := cl.Put(typeWork, 0, AnyRank, []byte("x")); err != nil {
					return err
				}
			}
		}
		for {
			_, ok, err := cl.Get(typeWork)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if l.ServerOf(cl.Rank()) != l.ServerOf(0) {
				crossServer.Add(1)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if crossServer.Load() != 0 {
		t.Fatalf("stealing disabled but %d items crossed servers", crossServer.Load())
	}
	if cfg.Stats.ItemsStolen.Load() != 0 {
		t.Fatal("stats recorded steals with stealing disabled")
	}
}

func TestDataStoreScalars(t *testing.T) {
	runWorld(t, 2, 1, func(cl *Client) error {
		idI, err := cl.Unique()
		if err != nil {
			return err
		}
		if err := cl.Create(idI, TypeInteger); err != nil {
			return err
		}
		if ok, _ := cl.Exists(idI); ok {
			return fmt.Errorf("unset datum reported closed")
		}
		if err := cl.Store(idI, IntValue(42)); err != nil {
			return err
		}
		v, found, err := cl.Retrieve(idI)
		if err != nil || !found {
			return fmt.Errorf("retrieve: %v %v", found, err)
		}
		n, err := AsInt(v)
		if err != nil || n != 42 {
			return fmt.Errorf("AsInt: %d %v", n, err)
		}
		if ok, _ := cl.Exists(idI); !ok {
			return fmt.Errorf("set datum not closed")
		}
		// Double store must fail.
		if err := cl.Store(idI, IntValue(43)); err == nil {
			return fmt.Errorf("double store succeeded")
		}
		// Type mismatch must fail.
		idF, _ := cl.Unique()
		if err := cl.Create(idF, TypeFloat); err != nil {
			return err
		}
		if err := cl.Store(idF, StringValue("oops")); err == nil {
			return fmt.Errorf("type-mismatched store succeeded")
		}
		if err := cl.Store(idF, FloatValue(2.5)); err != nil {
			return err
		}
		v, _, _ = cl.Retrieve(idF)
		f, err := AsFloat(v)
		if err != nil || f != 2.5 {
			return fmt.Errorf("AsFloat: %v %v", f, err)
		}
		// String round-trip.
		idS, _ := cl.Unique()
		cl.Create(idS, TypeString)
		cl.Store(idS, StringValue("héllo"))
		v, _, _ = cl.Retrieve(idS)
		s, err := AsString(v)
		if err != nil || s != "héllo" {
			return fmt.Errorf("AsString: %q %v", s, err)
		}
		// Blob round-trip.
		idB, _ := cl.Unique()
		cl.Create(idB, TypeBlob)
		cl.Store(idB, BlobValue([]byte{0, 1, 2, 255}))
		v, _, _ = cl.Retrieve(idB)
		b, err := AsBlob(v)
		if err != nil || len(b) != 4 || b[3] != 255 {
			return fmt.Errorf("AsBlob: %v %v", b, err)
		}
		// TypeOf.
		dt, found, err := cl.TypeOf(idB)
		if err != nil || !found || dt != TypeBlob {
			return fmt.Errorf("TypeOf: %v %v %v", dt, found, err)
		}
		// Missing id.
		_, found, err = cl.Retrieve(999999)
		if err != nil || found {
			return fmt.Errorf("retrieve missing: found=%v err=%v", found, err)
		}
		_, ok, err := cl.Get(typeWork)
		if ok || err != nil {
			return fmt.Errorf("shutdown: %v %v", ok, err)
		}
		return nil
	})
}

func TestUniqueIDsDistinct(t *testing.T) {
	var mu sync_ids
	runWorld(t, 4, 2, func(cl *Client) error {
		for i := 0; i < 100; i++ {
			id, err := cl.Unique()
			if err != nil {
				return err
			}
			if !mu.add(id) {
				return fmt.Errorf("duplicate id %d", id)
			}
		}
		_, ok, err := cl.Get(typeWork)
		if ok || err != nil {
			return fmt.Errorf("shutdown: %v %v", ok, err)
		}
		return nil
	})
}

// sync_ids is a tiny concurrent set for the uniqueness test. (Its old
// lazily-initialised channel lock raced when several rank goroutines hit
// the first add concurrently; a mutex has no init window.)
type sync_ids struct {
	mu  sync.Mutex
	set map[int64]bool
}

func (s *sync_ids) add(id int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.set == nil {
		s.set = map[int64]bool{}
	}
	if s.set[id] {
		return false
	}
	s.set[id] = true
	return true
}

func TestSubscribeNotification(t *testing.T) {
	// Client 1 subscribes to a datum; client 0 stores it; client 1 must
	// receive a notification work item through its Get loop.
	idCh := make(chan int64, 1)
	runWorld(t, 3, 1, func(cl *Client) error {
		switch cl.Rank() {
		case 0:
			id, err := cl.Unique()
			if err != nil {
				return err
			}
			if err := cl.Create(id, TypeInteger); err != nil {
				return err
			}
			idCh <- id
			time.Sleep(5 * time.Millisecond) // let rank 1 subscribe first sometimes
			if err := cl.Store(id, IntValue(7)); err != nil {
				return err
			}
			_, ok, err := cl.Get(typeControl)
			if ok {
				return fmt.Errorf("rank 0 should see shutdown, not work")
			}
			return err
		case 1:
			id := <-idCh
			closed, err := cl.Subscribe(id, cl.Rank())
			if err != nil {
				return err
			}
			if closed {
				// Already stored: no notification will come; done.
				return drainShutdown(cl)
			}
			p, ok, err := cl.Get(typeControl)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("shutdown before notification")
			}
			nid, isNote := DecodeNotification(p)
			if !isNote || nid != id {
				return fmt.Errorf("bad notification: %v %v", nid, isNote)
			}
			return drainShutdown(cl)
		}
		return drainShutdown(cl)
	})
}

func drainShutdown(cl *Client) error {
	for {
		_, ok, err := cl.Get(typeControl)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

func TestSubscribeAlreadyClosed(t *testing.T) {
	runWorld(t, 2, 1, func(cl *Client) error {
		id, _ := cl.Unique()
		cl.Create(id, TypeString)
		cl.Store(id, StringValue("done"))
		closed, err := cl.Subscribe(id, cl.Rank())
		if err != nil {
			return err
		}
		if !closed {
			return fmt.Errorf("expected closed=true for stored datum")
		}
		return drainShutdown(cl)
	})
}

func TestContainers(t *testing.T) {
	runWorld(t, 2, 1, func(cl *Client) error {
		c, _ := cl.Unique()
		if err := cl.Create(c, TypeContainer); err != nil {
			return err
		}
		// lookup-create gives placeholders; repeated lookup returns same id.
		m0, exists, created, err := cl.Lookup(c, "0", TypeInteger)
		if err != nil || !exists || !created {
			return fmt.Errorf("lookup-create: %v %v %v", exists, created, err)
		}
		m0b, exists, created, err := cl.Lookup(c, "0", TypeInteger)
		if err != nil || !exists || created || m0b != m0 {
			return fmt.Errorf("lookup-repeat: %d vs %d created=%v", m0b, m0, created)
		}
		// Plain lookup of a missing subscript.
		_, exists, _, err = cl.Lookup(c, "1", 0)
		if err != nil || exists {
			return fmt.Errorf("lookup missing: exists=%v err=%v", exists, err)
		}
		// Insert an explicit member.
		m1, _ := cl.Unique()
		cl.Create(m1, TypeString)
		if err := cl.Insert(c, "1", m1); err != nil {
			return err
		}
		if err := cl.Insert(c, "1", m1); err == nil {
			return fmt.Errorf("duplicate insert succeeded")
		}
		pairs, err := cl.Enumerate(c)
		if err != nil {
			return err
		}
		if len(pairs) != 2 || pairs[0].Subscript != "0" || pairs[1].Subscript != "1" {
			return fmt.Errorf("enumerate: %+v", pairs)
		}
		// Close via refcount; then inserts fail and subscribers fire.
		if ok, _ := cl.Exists(c); ok {
			return fmt.Errorf("container closed too early")
		}
		if err := cl.WriteRefcount(c, -1); err != nil {
			return err
		}
		if ok, _ := cl.Exists(c); !ok {
			return fmt.Errorf("container should be closed")
		}
		if err := cl.Insert(c, "2", m1); err == nil {
			return fmt.Errorf("insert into closed container succeeded")
		}
		closed, err := cl.Subscribe(c, cl.Rank())
		if err != nil || !closed {
			return fmt.Errorf("subscribe closed container: %v %v", closed, err)
		}
		return drainShutdown(cl)
	})
}

func TestContainerRefcountNested(t *testing.T) {
	runWorld(t, 2, 1, func(cl *Client) error {
		c, _ := cl.Unique()
		cl.Create(c, TypeContainer)
		// Simulate two writer branches.
		if err := cl.WriteRefcount(c, 2); err != nil {
			return err
		}
		cl.WriteRefcount(c, -1)
		cl.WriteRefcount(c, -1)
		if ok, _ := cl.Exists(c); ok {
			return fmt.Errorf("closed while creator ref outstanding")
		}
		cl.WriteRefcount(c, -1)
		if ok, _ := cl.Exists(c); !ok {
			return fmt.Errorf("not closed after all refs dropped")
		}
		return drainShutdown(cl)
	})
}

func TestCrossRankDataFlow(t *testing.T) {
	// Data created on one client, stored by another, read by a third,
	// with 2 servers so ownership and forwarding paths are exercised.
	ids := make(chan int64, 1)
	vals := make(chan int64, 1)
	runWorld(t, 6, 2, func(cl *Client) error {
		switch cl.Rank() {
		case 0:
			id, err := cl.Unique()
			if err != nil {
				return err
			}
			if err := cl.Create(id, TypeInteger); err != nil {
				return err
			}
			ids <- id
		case 1:
			id := <-ids
			if err := cl.Store(id, IntValue(1234)); err != nil {
				return err
			}
			vals <- id
		case 2:
			id := <-vals
			v, found, err := cl.Retrieve(id)
			if err != nil || !found {
				return fmt.Errorf("retrieve: %v %v", found, err)
			}
			n, _ := AsInt(v)
			if n != 1234 {
				return fmt.Errorf("value = %d", n)
			}
		}
		return drainShutdown(cl)
	})
}

func TestNotificationAcrossServers(t *testing.T) {
	// Subscriber's server differs from the datum's owner: the notification
	// must be forwarded between servers.
	ids := make(chan int64, 4)
	st := runWorld(t, 6, 2, func(cl *Client) error {
		// clients 0,1 -> server idx 0; clients 2,3 -> server idx 1.
		switch cl.Rank() {
		case 3:
			// Allocate from server 1 so the datum is owned there.
			id, err := cl.Unique()
			if err != nil {
				return err
			}
			if err := cl.Create(id, TypeFloat); err != nil {
				return err
			}
			ids <- id
			ids <- id
		case 0:
			// Subscribe from a client of server 0.
			id := <-ids
			closed, err := cl.Subscribe(id, cl.Rank())
			if err != nil {
				return err
			}
			if !closed {
				p, ok, err := cl.Get(typeControl)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("shutdown before notification")
				}
				if nid, isNote := DecodeNotification(p); !isNote || nid != id {
					return fmt.Errorf("bad notification")
				}
			}
		case 1:
			id := <-ids
			time.Sleep(2 * time.Millisecond)
			if err := cl.Store(id, FloatValue(3.14)); err != nil {
				return err
			}
		}
		return drainShutdown(cl)
	})
	_ = st // forwarding may or may not be hit depending on timing; correctness asserted above
}

func TestTerminationManyIdleClients(t *testing.T) {
	// No work at all: all clients park and the system must terminate.
	start := time.Now()
	runWorld(t, 10, 3, func(cl *Client) error {
		return drainShutdown(cl)
	})
	if time.Since(start) > 10*time.Second {
		t.Fatal("termination took too long")
	}
}

func TestTerminationAfterChainedWork(t *testing.T) {
	// Workers that spawn follow-up work; termination must wait for the chain.
	var total atomic.Int64
	runWorld(t, 5, 1, func(cl *Client) error {
		if cl.Rank() == 0 {
			if err := cl.Put(typeWork, 0, AnyRank, []byte{5}); err != nil {
				return err
			}
		}
		for {
			p, ok, err := cl.Get(typeWork)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			total.Add(1)
			if p[0] > 0 {
				// Spawn two children of depth-1.
				for i := 0; i < 2; i++ {
					if err := cl.Put(typeWork, 0, AnyRank, []byte{p[0] - 1}); err != nil {
						return err
					}
				}
			}
		}
	})
	// A chain of depth 5 spawning 2 children each: 2^6 - 1 = 63 tasks.
	if total.Load() != 63 {
		t.Fatalf("executed %d tasks, want 63", total.Load())
	}
}

func TestPutInvalidType(t *testing.T) {
	runWorld(t, 2, 1, func(cl *Client) error {
		if err := cl.Put(99, 0, AnyRank, nil); err == nil {
			return fmt.Errorf("invalid work type accepted")
		}
		if err := cl.Put(typeWork, 0, 50, nil); err == nil {
			return fmt.Errorf("invalid target accepted")
		}
		return drainShutdown(cl)
	})
}

func TestNotificationCodec(t *testing.T) {
	f := func(id int64) bool {
		got, ok := DecodeNotification(EncodeNotification(id))
		return ok && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := DecodeNotification([]byte("not a notification")); ok {
		t.Fatal("junk decoded as notification")
	}
	if _, ok := DecodeNotification(nil); ok {
		t.Fatal("nil decoded as notification")
	}
}

func TestValueCodecs(t *testing.T) {
	if v, err := AsInt(IntValue(-99)); err != nil || v != -99 {
		t.Fatalf("int: %v %v", v, err)
	}
	if v, err := AsFloat(FloatValue(-2.75)); err != nil || v != -2.75 {
		t.Fatalf("float: %v %v", v, err)
	}
	if _, err := AsInt(StringValue("x")); err == nil {
		t.Fatal("AsInt accepted string")
	}
	if _, err := AsFloat(IntValue(1)); err == nil {
		t.Fatal("AsFloat accepted int")
	}
	if _, err := AsString(IntValue(1)); err == nil {
		t.Fatal("AsString accepted int")
	}
	if _, err := AsBlob(IntValue(1)); err == nil {
		t.Fatal("AsBlob accepted int")
	}
	f := func(v int64) bool {
		out, err := AsInt(IntValue(v))
		return err == nil && out == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(v float64) bool {
		out, err := AsFloat(FloatValue(v))
		return err == nil && (out == v || (v != v && out != out)) // NaN-safe
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkQueueDrainHalf(t *testing.T) {
	q := &workQueue{}
	for i := 0; i < 10; i++ {
		q.push(workItem{Type: 0, Priority: i, Payload: []byte{byte(i)}})
	}
	given := q.drainHalf()
	if len(given) != 5 {
		t.Fatalf("drained %d, want 5", len(given))
	}
	// The given items must be the lowest-priority ones.
	for _, w := range given {
		if w.Priority > 4 {
			t.Fatalf("high-priority item %d given away", w.Priority)
		}
	}
	if q.len() != 5 {
		t.Fatalf("kept %d, want 5", q.len())
	}
	// Single-item queue gives its only item.
	q2 := &workQueue{}
	q2.push(workItem{})
	if got := q2.drainHalf(); len(got) != 1 {
		t.Fatalf("single-item drain: %d", len(got))
	}
	// Empty queue gives nothing.
	if got := q2.drainHalf(); got != nil {
		t.Fatalf("empty drain: %v", got)
	}
}

func TestWorkQueueProperty(t *testing.T) {
	// Pop order is always (priority desc, FIFO within priority).
	f := func(prios []uint8) bool {
		if len(prios) > 300 {
			return true
		}
		q := &workQueue{}
		for i, p := range prios {
			q.push(workItem{Priority: int(p % 8), Payload: []byte{byte(i)}})
		}
		lastPrio := 1 << 30
		seqAt := map[int]int{} // priority -> last seq seen
		for {
			w, ok := q.pop()
			if !ok {
				break
			}
			if w.Priority > lastPrio {
				return false
			}
			lastPrio = w.Priority
			idx := int(w.Payload[0])
			if prev, ok := seqAt[w.Priority]; ok && idx < prev {
				return false // FIFO violated within priority class
			}
			seqAt[w.Priority] = idx
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWireCodecRoundTrip(t *testing.T) {
	e := &encoder{}
	e.u8(7)
	e.u32(0xDEADBEEF)
	e.u64(1 << 40)
	e.i32(-5)
	e.i64(-1 << 50)
	e.str("hello")
	e.bytes([]byte{1, 2, 3})
	e.boolean(true)
	e.boolean(false)
	d := &decoder{buf: e.buf}
	if d.u8() != 7 || d.u32() != 0xDEADBEEF || d.u64() != 1<<40 ||
		d.i32() != -5 || d.i64() != -1<<50 || d.str() != "hello" {
		t.Fatal("scalar round trip failed")
	}
	if b := d.bytes(); len(b) != 3 || b[2] != 3 {
		t.Fatal("bytes round trip failed")
	}
	if !d.boolean() || d.boolean() {
		t.Fatal("bool round trip failed")
	}
	if d.err != nil {
		t.Fatal(d.err)
	}
	// Truncation must set err, not panic.
	d2 := &decoder{buf: []byte{1, 2}}
	_ = d2.u64()
	if d2.err == nil {
		t.Fatal("expected truncation error")
	}
	if !strings.Contains(d2.err.Error(), "truncated") {
		t.Fatalf("err = %v", d2.err)
	}
}
