package adlb

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// drainClient parks until NO_MORE_WORK so the server can reach
// quiescence and terminate.
func drainClient(cl *Client) error {
	for {
		_, ok, err := cl.Get(typeWork)
		if err != nil || !ok {
			return err
		}
	}
}

func TestRetrieveBatchAcrossServers(t *testing.T) {
	// Ids allocated from different home servers: the batch must group by
	// owner, fetch from each, and return values in request order.
	const n = 64
	runWorld(t, 6, 2, func(cl *Client) error {
		if cl.Rank() != 0 && cl.Rank() != 3 {
			return drainClient(cl)
		}
		// Rank 0's home server is 4, rank 3's is 5 — together they mint
		// ids owned by both servers.
		var ids []int64
		for i := 0; i < n/2; i++ {
			id, err := cl.Unique()
			if err != nil {
				return err
			}
			if err := cl.Create(id, TypeFloat); err != nil {
				return err
			}
			if err := cl.Store(id, FloatValue(float64(cl.Rank()*1000+i)+0.5)); err != nil {
				return err
			}
			ids = append(ids, id)
		}
		vals, err := cl.RetrieveBatch(ids)
		if err != nil {
			return err
		}
		if len(vals) != len(ids) {
			return fmt.Errorf("got %d values for %d ids", len(vals), len(ids))
		}
		for i, v := range vals {
			f, err := AsFloat(v)
			if err != nil {
				return err
			}
			if want := float64(cl.Rank()*1000+i) + 0.5; f != want {
				return fmt.Errorf("value %d = %v, want %v (order lost)", i, f, want)
			}
		}
		// Batched gather of a missing id must error, not return junk.
		if _, err := cl.RetrieveBatch([]int64{ids[0], 1 << 40}); err == nil ||
			!strings.Contains(err.Error(), "no such id") {
			return fmt.Errorf("missing id in batch: err = %v", err)
		}
		return drainClient(cl)
	})
}

func TestStoreVectorPopulatesContainer(t *testing.T) {
	const n = 100
	runWorld(t, 3, 1, func(cl *Client) error {
		if cl.Rank() != 0 {
			return drainClient(cl)
		}
		c, err := cl.Unique()
		if err != nil {
			return err
		}
		if err := cl.Create(c, TypeContainer); err != nil {
			return err
		}
		vals := make([]Value, n)
		for i := range vals {
			vals[i] = FloatValue(float64(i) * 0.25)
		}
		if err := cl.StoreVector(c, vals); err != nil {
			return err
		}
		// The caller still owns the creation write reference.
		if closed, err := cl.Exists(c); err != nil || closed {
			return fmt.Errorf("container closed before refcount drop: %v %v", closed, err)
		}
		if err := cl.WriteRefcount(c, -1); err != nil {
			return err
		}
		if closed, err := cl.Exists(c); err != nil || !closed {
			return fmt.Errorf("container not closed after refcount drop: %v %v", closed, err)
		}
		pairs, err := cl.Enumerate(c)
		if err != nil {
			return err
		}
		if len(pairs) != n {
			return fmt.Errorf("enumerate: %d members, want %d", len(pairs), n)
		}
		ids := make([]int64, n)
		for _, p := range pairs {
			idx, err := strconv.Atoi(p.Subscript)
			if err != nil || idx < 0 || idx >= n {
				return fmt.Errorf("bad subscript %q", p.Subscript)
			}
			ids[idx] = p.Member
		}
		got, err := cl.RetrieveBatch(ids)
		if err != nil {
			return err
		}
		for i, v := range got {
			f, err := AsFloat(v)
			if err != nil {
				return err
			}
			if f != float64(i)*0.25 {
				return fmt.Errorf("member %d = %v, want %v", i, f, float64(i)*0.25)
			}
		}
		// Storing into a closed container must fail.
		if err := cl.StoreVector(c, vals[:1]); err == nil ||
			!strings.Contains(err.Error(), "closed") {
			return fmt.Errorf("store into closed container: err = %v", err)
		}
		return drainClient(cl)
	})
}

func TestStoreVectorIsAllOrNothing(t *testing.T) {
	// A StoreVector that collides with an existing subscript must leave
	// the container exactly as it was — no partial members.
	runWorld(t, 2, 1, func(cl *Client) error {
		c, err := cl.Unique()
		if err != nil {
			return err
		}
		if err := cl.Create(c, TypeContainer); err != nil {
			return err
		}
		m, err := cl.Unique()
		if err != nil {
			return err
		}
		if err := cl.Create(m, TypeInteger); err != nil {
			return err
		}
		if err := cl.Store(m, IntValue(1)); err != nil {
			return err
		}
		// One member at "2": len(order)=1, so a 3-value vector targets
		// subscripts 1,2,3 and collides mid-range at "2".
		if err := cl.Insert(c, "2", m); err != nil {
			return err
		}
		err = cl.StoreVector(c, []Value{IntValue(10), IntValue(11), IntValue(12)})
		if err == nil || !strings.Contains(err.Error(), "already has subscript") {
			return fmt.Errorf("colliding StoreVector: err = %v", err)
		}
		pairs, err := cl.Enumerate(c)
		if err != nil {
			return err
		}
		if len(pairs) != 1 || pairs[0].Subscript != "2" {
			return fmt.Errorf("container mutated by failed StoreVector: %v", pairs)
		}
		return drainClient(cl)
	})
}

func TestStoreVectorAppendsAfterInserts(t *testing.T) {
	// A vector store lands after any subscripts already present, so mixed
	// element-wise and bulk construction cannot collide.
	runWorld(t, 2, 1, func(cl *Client) error {
		c, err := cl.Unique()
		if err != nil {
			return err
		}
		if err := cl.Create(c, TypeContainer); err != nil {
			return err
		}
		m, err := cl.Unique()
		if err != nil {
			return err
		}
		if err := cl.Create(m, TypeInteger); err != nil {
			return err
		}
		if err := cl.Store(m, IntValue(7)); err != nil {
			return err
		}
		if err := cl.Insert(c, "0", m); err != nil {
			return err
		}
		if err := cl.StoreVector(c, []Value{IntValue(8), IntValue(9)}); err != nil {
			return err
		}
		pairs, err := cl.Enumerate(c)
		if err != nil {
			return err
		}
		var subs []string
		for _, p := range pairs {
			subs = append(subs, p.Subscript)
		}
		if strings.Join(subs, ",") != "0,1,2" {
			return fmt.Errorf("subscripts = %v, want 0,1,2", subs)
		}
		return drainClient(cl)
	})
}
