package adlb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"

	"repro/internal/chunk"
	"repro/internal/mpi"
)

// ErrStoreTwice is reported when a single-assignment datum is stored twice.
var ErrStoreTwice = errors.New("adlb: double store on single-assignment datum")

// Client is one ADLB client rank (a Turbine engine or worker). A Client is
// bound to its home server for work operations; data operations are routed
// to the owning server of each id. All calls are synchronous RPCs, which
// is essential to the termination-detection protocol: a client that is
// parked in Get has no in-flight requests.
type Client struct {
	c        *mpi.Comm
	cfg      Config
	l        Layout
	myServer int

	idNext   int64
	idStride int64
	idRemain int64

	// held is the lease id of the task currently being executed (0 when
	// none). It is settled implicitly by the next Get — completion
	// piggybacks on the request the client was about to send anyway — or
	// explicitly by Fail.
	held int64

	// Zero-copy frame pinning. Payload slices returned by Retrieve,
	// RetrieveBatch, and RetrieveChunk alias the response frames they
	// were decoded from; those frames stay pinned until the next call on
	// this Client, whose request must first be copied onto the wire
	// (encode reads may themselves alias a pinned frame — a retrieved
	// blob stored straight back). So frames retire at the next call's
	// start and are released to the transport's frame pool only after
	// its Send completes.
	pinned  [][]byte // response frames backing the last call's payloads
	retired [][]byte // previous call's frames, released after the next Send
}

// NewClient wraps the calling rank as an ADLB client.
func NewClient(c *mpi.Comm, cfg Config) (*Client, error) {
	if err := cfg.Validate(c.Size()); err != nil {
		return nil, err
	}
	l := NewLayout(c.Size(), cfg.Servers)
	if l.IsServer(c.Rank()) {
		return nil, fmt.Errorf("adlb: NewClient called on server rank %d", c.Rank())
	}
	return &Client{c: c, cfg: cfg, l: l, myServer: l.ServerOf(c.Rank())}, nil
}

// Rank returns the client's world rank.
func (cl *Client) Rank() int { return cl.c.Rank() }

// Layout returns the rank layout of the deployment.
func (cl *Client) Layout() Layout { return cl.l }

// Comm exposes the underlying communicator (used by higher layers for
// barriers around the run).
func (cl *Client) Comm() *mpi.Comm { return cl.c }

// rpc issues one synchronous request. It marks the previous call's
// response frames as retired — this call is the release point of any
// payload slices they back — and hands them to rpcKeep to free once the
// new request is safely on the wire.
func (cl *Client) rpc(server int, build func(*encoder)) (*decoder, error) {
	cl.retire()
	return cl.rpcKeep(server, build)
}

// rpcKeep issues a request without retiring the frames pinned by earlier
// calls in the same batched operation: RetrieveBatch and RetrieveChunk
// fan out one RPC per owning server, and every per-server response must
// stay alive until the whole batch is assembled.
func (cl *Client) rpcKeep(server int, build func(*encoder)) (*decoder, error) {
	e := getEncoder()
	build(e)
	frame, err := e.frame()
	if err != nil {
		putEncoder(e)
		return nil, err
	}
	err = cl.c.Send(server, tagRequest, frame)
	putEncoder(e)
	if err != nil {
		return nil, err
	}
	// The request is copied onto the wire; nothing can reference the
	// retired frames anymore.
	cl.releaseRetired()
	data, _, err := cl.c.Recv(server, tagResponse)
	if err != nil {
		return nil, err
	}
	cl.pinned = append(cl.pinned, data)
	return &decoder{buf: data}, nil
}

func (cl *Client) retire() {
	cl.retired = append(cl.retired, cl.pinned...)
	cl.pinned = cl.pinned[:0]
}

func (cl *Client) releaseRetired() {
	for i, f := range cl.retired {
		cl.c.Release(f)
		cl.retired[i] = nil
	}
	cl.retired = cl.retired[:0]
}

// checkStatus consumes the status byte and translates errors.
func checkStatus(d *decoder, what string) (uint8, error) {
	st := d.u8()
	if d.err != nil {
		return st, d.err
	}
	if st == stError {
		msg := d.str()
		if d.err != nil {
			return st, d.err
		}
		return st, fmt.Errorf("adlb: %s: %s", what, msg)
	}
	return st, nil
}

// Put submits a work item. target is AnyRank for load-balanced dispatch or
// a specific client rank for targeted delivery (used for notifications and
// location-pinned tasks). Higher priority items are delivered first.
func (cl *Client) Put(workType, priority, target int, payload []byte) error {
	d, err := cl.rpc(cl.myServer, func(e *encoder) {
		e.u8(opPut)
		encodeWorkItem(e, workItem{Type: workType, Priority: priority, Target: target, Payload: payload})
	})
	if err != nil {
		return err
	}
	if _, err = checkStatus(d, "put"); err != nil {
		return err
	}
	return d.finish("put response")
}

// Get blocks until a work item of the requested type is available, and
// returns its payload. ok is false when the runtime has terminated and no
// more work will ever arrive.
func (cl *Client) Get(workType int) (payload []byte, ok bool, err error) {
	payload, _, ok, err = cl.get(workType, false)
	return payload, ok, err
}

// GetLeased is Get with fault tolerance: the returned item is tracked by
// the home server under leaseID until the client settles it — implicitly
// by its next Get (success) or explicitly by Fail. A client that departs
// (Leave) with the lease outstanding has the item requeued. Only one
// lease is held at a time, matching the one-task-at-a-time worker loop.
func (cl *Client) GetLeased(workType int) (payload []byte, leaseID int64, ok bool, err error) {
	return cl.get(workType, true)
}

func (cl *Client) get(workType int, leased bool) (payload []byte, leaseID int64, ok bool, err error) {
	settle := cl.held
	d, err := cl.rpc(cl.myServer, func(e *encoder) {
		e.u8(opGet)
		e.i32(int32(workType))
		var flags uint8
		if leased {
			flags |= getFlagLeased
		}
		e.u8(flags)
		e.i64(settle)
	})
	if err != nil {
		return nil, 0, false, err
	}
	// The request reached the server, which settles before anything else.
	cl.held = 0
	st, err := checkStatus(d, "get")
	if err != nil {
		return nil, 0, false, err
	}
	if st == stNoMoreWork {
		return nil, 0, false, d.finish("get response")
	}
	if leased {
		leaseID = d.i64()
	}
	w := decodeWorkItem(d)
	if err := d.finish("get response"); err != nil {
		return nil, 0, false, err
	}
	cl.held = leaseID
	// Yield before running the task. Real MPI ranks are separate
	// processes that progress concurrently; in the simulation, ranks are
	// goroutines that may outnumber cores, and the scheduler's wakeup
	// locality otherwise lets one fast client's Get/respond ping-pong with
	// the server starve sibling ranks of CPU — it drains the whole queue
	// before they issue their first request.
	runtime.Gosched()
	return w.Payload, leaseID, true, nil
}

// Fail settles a lease as failed. Retriable failures are requeued by the
// server until the task's retry budget is exhausted; non-retriable ones
// (and budget exhaustion) poison the task, which ends the run with an
// error naming it — the caller's own error return then typically reports
// the aborted world.
func (cl *Client) Fail(leaseID int64, reason string, retriable bool) error {
	if cl.held == leaseID {
		cl.held = 0
	}
	d, err := cl.rpc(cl.myServer, func(e *encoder) {
		e.u8(opFail)
		e.i64(leaseID)
		e.str(reason)
		e.boolean(retriable)
	})
	if err != nil {
		return err
	}
	if _, err = checkStatus(d, "fail"); err != nil {
		return err
	}
	return d.finish("fail response")
}

// Leave departs the runtime: the home server reclaims any lease this
// client still holds (requeueing the work) and stops counting the client
// toward termination. It models a detected rank crash — after Leave the
// client must not issue further calls.
func (cl *Client) Leave() error {
	cl.held = 0
	d, err := cl.rpc(cl.myServer, func(e *encoder) {
		e.u8(opLeave)
	})
	if err != nil {
		return err
	}
	if _, err = checkStatus(d, "leave"); err != nil {
		return err
	}
	return d.finish("leave response")
}

// Pin declares this client long-lived: the world must not terminate
// while it is registered, even when every client is idle and all queues
// are drained. Batch runs terminate by quiescence (Safra's detection
// fires when all clients are parked in Get with nothing queued); a
// serving deployment is *supposed* to be idle between requests, so its
// gateway clients pin themselves at startup and the home server refuses
// to initiate or forward termination tokens while any pin is held.
// Leave releases the pin — a graceful shutdown is "unpin the gateways,
// then let ordinary quiescence drain the workers".
func (cl *Client) Pin() error {
	d, err := cl.rpc(cl.myServer, func(e *encoder) {
		e.u8(opPin)
	})
	if err != nil {
		return err
	}
	if _, err = checkStatus(d, "pin"); err != nil {
		return err
	}
	return d.finish("pin response")
}

// Unique returns a fresh data id. Ids are allocated in blocks from the
// client's home server so the owner of each id is that same server.
func (cl *Client) Unique() (int64, error) {
	const block = 64
	if cl.idRemain == 0 {
		d, err := cl.rpc(cl.myServer, func(e *encoder) {
			e.u8(opUnique)
			e.i32(block)
		})
		if err != nil {
			return 0, err
		}
		if _, err := checkStatus(d, "unique"); err != nil {
			return 0, err
		}
		cl.idNext = d.i64()
		cl.idStride = int64(d.i32())
		if err := d.finish("unique response"); err != nil {
			return 0, err
		}
		cl.idRemain = block
	}
	id := cl.idNext
	cl.idNext += cl.idStride
	cl.idRemain--
	return id, nil
}

// Create allocates a datum of the given type under id (id must come from
// Unique so that ownership routes correctly).
func (cl *Client) Create(id int64, typ DataType) error {
	d, err := cl.rpc(cl.l.OwnerOf(id), func(e *encoder) {
		e.u8(opCreate)
		e.i64(id)
		e.u8(uint8(typ))
	})
	if err != nil {
		return err
	}
	if _, err = checkStatus(d, "create"); err != nil {
		return err
	}
	return d.finish("create response")
}

// Store writes the value of a single-assignment datum, closing it and
// triggering any subscriptions.
func (cl *Client) Store(id int64, v Value) error {
	d, err := cl.rpc(cl.l.OwnerOf(id), func(e *encoder) {
		e.u8(opStore)
		e.i64(id)
		encodeValue(e, v)
	})
	if err != nil {
		return err
	}
	if _, err = checkStatus(d, "store"); err != nil {
		return err
	}
	return d.finish("store response")
}

// Retrieve fetches a datum's value. found is false if the id is unknown.
//
// Zero-copy aliasing contract: the returned value's Bytes alias the
// response frame, with no copy. The slice is valid until the next call
// on this Client returns — storing a retrieved payload right back
// (encode happens before the frame is released) is safe, but a caller
// that keeps the bytes across a later call must copy them out first.
func (cl *Client) Retrieve(id int64) (v Value, found bool, err error) {
	d, err := cl.rpc(cl.l.OwnerOf(id), func(e *encoder) {
		e.u8(opRetrieve)
		e.i64(id)
	})
	if err != nil {
		return Value{}, false, err
	}
	st, err := checkStatus(d, "retrieve")
	if err != nil {
		return Value{}, false, err
	}
	if st == stNotFound {
		return Value{}, false, d.finish("retrieve response")
	}
	v = decodeValue(d)
	return v, true, d.finish("retrieve response")
}

// RetrieveBatch fetches many closed data in bulk. Ids are grouped by
// owning server so the whole gather costs one RPC per server touched —
// O(servers), not O(len(ids)) — which is what makes container->vector
// packing viable at array scale. Every id must exist and be set; results
// are returned in the order of ids.
//
// The returned values' Bytes alias the response frames (the Retrieve
// zero-copy contract): valid until the next call on this Client returns.
func (cl *Client) RetrieveBatch(ids []int64) ([]Value, error) {
	out := make([]Value, len(ids))
	groups := make(map[int][]int) // owning server rank -> indexes into ids
	for i, id := range ids {
		owner := cl.l.OwnerOf(id)
		groups[owner] = append(groups[owner], i)
	}
	// Retire once up front: every per-server response must survive until
	// the whole batch is assembled, so the group RPCs must not retire
	// each other's frames.
	cl.retire()
	for server, idxs := range groups {
		d, err := cl.rpcKeep(server, func(e *encoder) {
			e.u8(opRetrieveBatch)
			e.u32(uint32(len(idxs)))
			for _, i := range idxs {
				e.i64(ids[i])
			}
		})
		if err != nil {
			return nil, err
		}
		if _, err := checkStatus(d, "retrieve_batch"); err != nil {
			return nil, err
		}
		n := int(d.u32())
		if d.err == nil && n != len(idxs) {
			return nil, fmt.Errorf("adlb: retrieve_batch: asked for %d values, got %d", len(idxs), n)
		}
		for _, i := range idxs {
			out[i] = decodeValue(d)
		}
		if err := d.finish("retrieve_batch response"); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// StoreVector appends a vector of element values to a container in a
// single RPC: the owning server creates one owner-local datum per value,
// stores it closed, and inserts it at consecutive integer subscripts
// after any existing members (an empty container gets 0..len(vals)-1).
// The container's write refcount is untouched — the caller still owns
// its reference and drops it when construction is complete, exactly as
// with element-by-element Insert.
func (cl *Client) StoreVector(container int64, vals []Value) error {
	d, err := cl.rpc(cl.l.OwnerOf(container), func(e *encoder) {
		e.u8(opStoreVector)
		e.i64(container)
		e.u32(uint32(len(vals)))
		for _, v := range vals {
			encodeValue(e, v)
		}
	})
	if err != nil {
		return err
	}
	if _, err = checkStatus(d, "store_vector"); err != nil {
		return err
	}
	return d.finish("store_vector response")
}

// RetrieveChunk fetches many closed data as one columnar chunk: row i is
// ids[i]. Like RetrieveBatch it costs one RPC per owning server, but the
// response is a chunk frame — contiguous typed columns — instead of N
// per-value encodings, so a million-float gather decodes to two column
// views with no per-element work at all.
//
// When one server owns every id (the common case: vpack gathers members
// created by one StoreVector/StoreChunk), the returned chunk's columns
// alias the response frame under the Retrieve zero-copy contract: valid
// until the next call on this Client returns. A cross-server gather is
// merged row by row into fresh buffers.
func (cl *Client) RetrieveChunk(ids []int64) (chunk.Chunk, error) {
	var out chunk.Chunk
	if len(ids) == 0 {
		return out, nil
	}
	groups := make(map[int][]int) // owning server rank -> indexes into ids
	for i, id := range ids {
		owner := cl.l.OwnerOf(id)
		groups[owner] = append(groups[owner], i)
	}
	cl.retire()
	chunks := make(map[int]chunk.Chunk, len(groups))
	for server, idxs := range groups {
		d, err := cl.rpcKeep(server, func(e *encoder) {
			e.u8(opRetrieveChunk)
			e.u32(uint32(len(idxs)))
			for _, i := range idxs {
				e.i64(ids[i])
			}
		})
		if err != nil {
			return out, err
		}
		if _, err := checkStatus(d, "retrieve_chunk"); err != nil {
			return out, err
		}
		c := decodeChunk(d)
		if err := d.finish("retrieve_chunk response"); err != nil {
			return out, err
		}
		if c.Len() != len(idxs) {
			return out, fmt.Errorf("adlb: retrieve_chunk: asked for %d rows, got %d", len(idxs), c.Len())
		}
		chunks[server] = c
	}
	if len(groups) == 1 {
		for _, c := range chunks {
			return c, nil
		}
	}
	// Merge the per-server chunks back into request order.
	readers := make(map[int]*chunk.Reader, len(chunks))
	for server := range chunks {
		c := chunks[server]
		r := c.Reader()
		readers[server] = &r
	}
	for _, id := range ids {
		r := readers[cl.l.OwnerOf(id)]
		if !r.Next() {
			return out, fmt.Errorf("adlb: retrieve_chunk: short chunk merging id %d", id)
		}
		switch r.Kind() {
		case chunk.KindVoid:
			out.AppendVoid()
		case chunk.KindInt, chunk.KindFloat:
			if err := out.AppendNumRaw(r.Kind(), r.NumRaw()); err != nil {
				return out, err
			}
		case chunk.KindString:
			out.AppendBytes(r.Bytes())
		case chunk.KindBlob:
			m := r.Meta()
			out.AppendBlob(r.Bytes(), m.Elem, m.Dims)
		}
	}
	return out, nil
}

// StoreChunk appends a columnar chunk of element values to a container in
// a single RPC, the chunk-frame counterpart of StoreVector: the owning
// server creates one owner-local closed datum per row at consecutive
// integer subscripts after any existing members. The write refcount is
// untouched, as with StoreVector.
func (cl *Client) StoreChunk(container int64, c chunk.Chunk) error {
	if err := c.Validate(); err != nil {
		return fmt.Errorf("adlb: store_chunk: %w", err)
	}
	d, err := cl.rpc(cl.l.OwnerOf(container), func(e *encoder) {
		e.u8(opStoreChunk)
		e.i64(container)
		encodeChunk(e, c)
	})
	if err != nil {
		return err
	}
	if _, err = checkStatus(d, "store_chunk"); err != nil {
		return err
	}
	return d.finish("store_chunk response")
}

// Subscribe registers rank for a close notification on id. If the datum is
// already closed, closed=true is returned and no notification will be sent.
func (cl *Client) Subscribe(id int64, rank int) (closed bool, err error) {
	d, err := cl.rpc(cl.l.OwnerOf(id), func(e *encoder) {
		e.u8(opSubscribe)
		e.i64(id)
		e.i32(int32(rank))
	})
	if err != nil {
		return false, err
	}
	if _, err := checkStatus(d, "subscribe"); err != nil {
		return false, err
	}
	closed = d.boolean()
	return closed, d.finish("subscribe response")
}

// Insert adds an existing datum as a member of a container.
func (cl *Client) Insert(container int64, subscript string, member int64) error {
	d, err := cl.rpc(cl.l.OwnerOf(container), func(e *encoder) {
		e.u8(opInsert)
		e.i64(container)
		e.str(subscript)
		e.i64(member)
	})
	if err != nil {
		return err
	}
	if _, err = checkStatus(d, "insert"); err != nil {
		return err
	}
	return d.finish("insert response")
}

// Lookup finds the member id at a subscript. If createType is non-zero and
// the subscript is absent, an unset placeholder datum of that type is
// created, inserted, and returned with created=true; this gives readers
// and writers a single canonical datum per container slot.
func (cl *Client) Lookup(container int64, subscript string, createType DataType) (member int64, exists bool, created bool, err error) {
	d, err := cl.rpc(cl.l.OwnerOf(container), func(e *encoder) {
		e.u8(opLookup)
		e.i64(container)
		e.str(subscript)
		e.u8(uint8(createType))
	})
	if err != nil {
		return 0, false, false, err
	}
	st, err := checkStatus(d, "lookup")
	if err != nil {
		return 0, false, false, err
	}
	if st == stNotFound {
		return 0, false, false, d.finish("lookup response")
	}
	member = d.i64()
	created = d.boolean()
	return member, true, created, d.finish("lookup response")
}

// Enumerate lists a container's members in insertion order.
func (cl *Client) Enumerate(container int64) ([]Pair, error) {
	d, err := cl.rpc(cl.l.OwnerOf(container), func(e *encoder) {
		e.u8(opEnumerate)
		e.i64(container)
	})
	if err != nil {
		return nil, err
	}
	if _, err := checkStatus(d, "enumerate"); err != nil {
		return nil, err
	}
	n := int(d.u32())
	pairs := make([]Pair, 0, n)
	for i := 0; i < n; i++ {
		sub := d.str()
		id := d.i64()
		pairs = append(pairs, Pair{Subscript: sub, Member: id})
	}
	return pairs, d.finish("enumerate response")
}

// WriteRefcount adjusts a container's write refcount. The container closes
// (and notifies subscribers) when the count reaches zero.
func (cl *Client) WriteRefcount(id int64, delta int) error {
	d, err := cl.rpc(cl.l.OwnerOf(id), func(e *encoder) {
		e.u8(opWriteRefcount)
		e.i64(id)
		e.i32(int32(delta))
	})
	if err != nil {
		return err
	}
	if _, err = checkStatus(d, "refcount"); err != nil {
		return err
	}
	return d.finish("refcount response")
}

// Exists reports whether id is allocated and closed.
func (cl *Client) Exists(id int64) (bool, error) {
	d, err := cl.rpc(cl.l.OwnerOf(id), func(e *encoder) {
		e.u8(opExists)
		e.i64(id)
	})
	if err != nil {
		return false, err
	}
	if _, err := checkStatus(d, "exists"); err != nil {
		return false, err
	}
	ok := d.boolean()
	return ok, d.finish("exists response")
}

// TypeOf returns the declared type of id.
func (cl *Client) TypeOf(id int64) (DataType, bool, error) {
	d, err := cl.rpc(cl.l.OwnerOf(id), func(e *encoder) {
		e.u8(opTypeOf)
		e.i64(id)
	})
	if err != nil {
		return 0, false, err
	}
	st, err := checkStatus(d, "typeof")
	if err != nil {
		return 0, false, err
	}
	if st == stNotFound {
		return 0, false, d.finish("typeof response")
	}
	t := DataType(d.u8())
	return t, true, d.finish("typeof response")
}

// ---- typed value helpers ----

// IntValue encodes an int64 as a store value.
func IntValue(v int64) Value {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return Value{Type: TypeInteger, Bytes: b[:]}
}

// FloatValue encodes a float64 as a store value.
func FloatValue(v float64) Value {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return Value{Type: TypeFloat, Bytes: b[:]}
}

// StringValue encodes a string as a store value.
func StringValue(v string) Value { return Value{Type: TypeString, Bytes: []byte(v)} }

// BlobValue wraps raw bytes as a blob store value.
func BlobValue(v []byte) Value { return Value{Type: TypeBlob, Bytes: v} }

// VoidValue is the value stored into void (signal-only) data.
func VoidValue() Value { return Value{Type: TypeVoid} }

// AsInt decodes an integer value.
func AsInt(v Value) (int64, error) {
	if v.Type != TypeInteger || len(v.Bytes) != 8 {
		return 0, fmt.Errorf("adlb: value is %v (len %d), not integer", v.Type, len(v.Bytes))
	}
	return int64(binary.LittleEndian.Uint64(v.Bytes)), nil
}

// AsFloat decodes a float value.
func AsFloat(v Value) (float64, error) {
	if v.Type != TypeFloat || len(v.Bytes) != 8 {
		return 0, fmt.Errorf("adlb: value is %v (len %d), not float", v.Type, len(v.Bytes))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(v.Bytes)), nil
}

// AsString decodes a string value.
func AsString(v Value) (string, error) {
	if v.Type != TypeString {
		return "", fmt.Errorf("adlb: value is %v, not string", v.Type)
	}
	return string(v.Bytes), nil
}

// AsBlob decodes a blob value.
func AsBlob(v Value) ([]byte, error) {
	if v.Type != TypeBlob {
		return nil, fmt.Errorf("adlb: value is %v, not blob", v.Type)
	}
	return v.Bytes, nil
}
