package adlb

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/mpi"
)

// Config describes an ADLB deployment inside an MPI world. Following the
// real library (and paper Fig. 2), the last Servers ranks act as ADLB
// servers; every other rank is a client (a Turbine engine or worker).
type Config struct {
	// Servers is the number of server ranks (the last Servers ranks of
	// the world). Must be >= 1 and < world size.
	Servers int
	// Types is the number of distinct work types (e.g. CONTROL and WORK).
	Types int
	// NotifyType is the work type used to wrap data-store notifications
	// so they are delivered through the normal Get path of the
	// subscribing rank (Turbine sets this to its control type).
	NotifyType int
	// Tick is the server housekeeping interval (steal retries,
	// termination-token initiation). Zero selects a default of 200µs.
	Tick time.Duration
	// Stats, if non-nil, accumulates runtime counters across all servers.
	Stats *Stats
	// DisableSteal turns off inter-server work stealing (for ablation
	// benchmarks). The paper's architecture relies on stealing to
	// load-balance across servers.
	DisableSteal bool
	// MaxTaskRetries bounds how many times a leased work item that failed
	// retriably (or whose owning client departed mid-task) is requeued
	// before the server poisons it and aborts the run. Zero selects the
	// default of 2 retries; a negative value disables retries entirely.
	MaxTaskRetries int
	// Elastic switches client membership from the static layout to a
	// dynamic roster: instead of expecting every client rank of the
	// layout to participate, each server counts only the clients that
	// have actually spoken to it (registered on their first RPC to their
	// home server). Termination, drain, and the hang watchdog then close
	// over the registered roster, so worker ranks reserved for TCP joins
	// that never arrive do not hold the run open. Used by the
	// out-of-process transport, where the world is sized for the maximum
	// worker count and joins happen mid-run.
	Elastic bool
	// StaticClients pre-registers client ranks [0, StaticClients) in the
	// elastic roster: these clients run in the hub process and always
	// participate, so termination must wait for their done handshake even
	// before their first RPC arrives. Without this, a worker-only roster
	// that goes quiet (workers joined and parked before the engine's
	// first request) would look like a drained run. Ignored unless
	// Elastic is set; Turbine sets it to its engine count.
	StaticClients int
	// WatchdogIdleTicks is the number of consecutive idle server-loop
	// iterations after which a server with every assigned client parked
	// (or departed) but work still queued declares the run hung and
	// aborts with a diagnostic instead of deadlocking. Zero selects the
	// default of 25000 ticks (~5s at the default Tick); negative disables
	// the watchdog.
	WatchdogIdleTicks int
}

func (c *Config) tick() time.Duration {
	if c.Tick <= 0 {
		return 200 * time.Microsecond
	}
	return c.Tick
}

func (c *Config) maxRetries() int {
	if c.MaxTaskRetries == 0 {
		return 2
	}
	if c.MaxTaskRetries < 0 {
		return 0
	}
	return c.MaxTaskRetries
}

func (c *Config) watchdogTicks() int {
	if c.WatchdogIdleTicks == 0 {
		return 25000
	}
	if c.WatchdogIdleTicks < 0 {
		return 0
	}
	return c.WatchdogIdleTicks
}

// Validate checks the configuration against a world of the given size.
func (c *Config) Validate(worldSize int) error {
	if c.Servers < 1 {
		return fmt.Errorf("adlb: config needs at least 1 server, got %d", c.Servers)
	}
	if c.Servers >= worldSize {
		return fmt.Errorf("adlb: %d servers leaves no clients in world of %d", c.Servers, worldSize)
	}
	if c.Types < 1 {
		return fmt.Errorf("adlb: config needs at least 1 work type, got %d", c.Types)
	}
	if c.NotifyType < 0 || c.NotifyType >= c.Types {
		return fmt.Errorf("adlb: notify type %d out of range [0,%d)", c.NotifyType, c.Types)
	}
	return nil
}

// Layout answers rank-role questions for a world of the given size.
type Layout struct {
	WorldSize int
	Servers   int
}

// NewLayout builds a Layout. Callers should have validated the config.
func NewLayout(worldSize, servers int) Layout {
	return Layout{WorldSize: worldSize, Servers: servers}
}

// Clients returns the number of client ranks.
func (l Layout) Clients() int { return l.WorldSize - l.Servers }

// IsServer reports whether rank is a server rank.
func (l Layout) IsServer(rank int) bool { return rank >= l.Clients() }

// ServerIndex returns the server index (0-based) of a server rank.
func (l Layout) ServerIndex(rank int) int { return rank - l.Clients() }

// ServerRank returns the world rank of server index i.
func (l Layout) ServerRank(i int) int { return l.Clients() + i }

// ServerOf returns the server rank responsible for the given client rank.
// Clients are assigned to servers in contiguous balanced blocks, as in ADLB.
func (l Layout) ServerOf(client int) int {
	idx := client * l.Servers / l.Clients()
	return l.ServerRank(idx)
}

// OwnerOf returns the server rank owning data id, by the id-stride scheme:
// ids allocated by server i satisfy id % Servers == i, so allocation is
// always owner-local.
func (l Layout) OwnerOf(id int64) int {
	if id < 0 {
		id = -id
	}
	return l.ServerRank(int(id % int64(l.Servers)))
}

// clientsOfServer returns how many clients are assigned to server index i.
func (l Layout) clientsOfServer(i int) int {
	n := 0
	for c := 0; c < l.Clients(); c++ {
		if l.ServerOf(c) == l.ServerRank(i) {
			n++
		}
	}
	return n
}

// Stats aggregates counters across all servers of a run. All fields are
// updated atomically and may be read concurrently.
type Stats struct {
	PutsLocal     atomic.Int64 // puts enqueued/delivered at the receiving server
	PutsForwarded atomic.Int64 // targeted puts forwarded to the target's server
	GetsServed    atomic.Int64 // work items delivered to clients
	GetsParked    atomic.Int64 // Get requests that had to park
	StealReqs     atomic.Int64 // steal requests sent
	StealHits     atomic.Int64 // steal responses that contained work
	ItemsStolen   atomic.Int64 // total items moved by stealing
	Notifications atomic.Int64 // data-store notifications generated
	DataOps       atomic.Int64 // create/store/retrieve/container operations
	TokenRounds   atomic.Int64 // Safra termination-detection rounds begun
	// TargetedDropped counts targeted work items discarded because the
	// target client had already departed (received NO_MORE_WORK).
	TargetedDropped atomic.Int64
	// Fault-tolerance counters (see the failure model in the package doc).
	LeasesIssued    atomic.Int64 // leased work deliveries
	LeasesReclaimed atomic.Int64 // leases recovered from departed clients
	Requeued        atomic.Int64 // failed/reclaimed items put back in queue
	Poisoned        atomic.Int64 // items that exhausted their retry budget
	// UnfilledTDs gauges data-store entries still unclosed when a server
	// drains cleanly; a recovered run must leave it at zero (no leaked
	// write refcounts after contained failures).
	UnfilledTDs atomic.Int64
}

// Snapshot returns a plain-struct copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		PutsLocal:       s.PutsLocal.Load(),
		PutsForwarded:   s.PutsForwarded.Load(),
		GetsServed:      s.GetsServed.Load(),
		GetsParked:      s.GetsParked.Load(),
		StealReqs:       s.StealReqs.Load(),
		StealHits:       s.StealHits.Load(),
		ItemsStolen:     s.ItemsStolen.Load(),
		Notifications:   s.Notifications.Load(),
		DataOps:         s.DataOps.Load(),
		TokenRounds:     s.TokenRounds.Load(),
		TargetedDropped: s.TargetedDropped.Load(),
		LeasesIssued:    s.LeasesIssued.Load(),
		LeasesReclaimed: s.LeasesReclaimed.Load(),
		Requeued:        s.Requeued.Load(),
		Poisoned:        s.Poisoned.Load(),
		UnfilledTDs:     s.UnfilledTDs.Load(),
	}
}

// StatsSnapshot is an immutable copy of Stats.
type StatsSnapshot struct {
	PutsLocal       int64
	PutsForwarded   int64
	GetsServed      int64
	GetsParked      int64
	StealReqs       int64
	StealHits       int64
	ItemsStolen     int64
	Notifications   int64
	DataOps         int64
	TokenRounds     int64
	TargetedDropped int64
	LeasesIssued    int64
	LeasesReclaimed int64
	Requeued        int64
	Poisoned        int64
	UnfilledTDs     int64
}

// Serve runs the ADLB server protocol on the calling rank until global
// termination is detected and drain completes. It must be called exactly
// by the server ranks of the layout.
func Serve(c *mpi.Comm, cfg Config) error {
	if err := cfg.Validate(c.Size()); err != nil {
		return err
	}
	l := NewLayout(c.Size(), cfg.Servers)
	if !l.IsServer(c.Rank()) {
		return fmt.Errorf("adlb: Serve called on non-server rank %d", c.Rank())
	}
	s := newServer(c, cfg, l)
	return s.run()
}
