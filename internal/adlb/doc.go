// Package adlb reimplements the Asynchronous Dynamic Load Balancer
// (Lusk, Pieper, Butler: "More scalability, less pain", SciDAC Review
// 2010) that underlies the Swift/T runtime described in the paper.
//
// A deployment partitions an MPI world into clients and servers (the last
// N ranks). Servers hold typed priority work queues and a distributed
// single-assignment data store. Clients submit work with Put — optionally
// targeted at a specific rank — and block in Get until work of a matching
// type is delivered. Servers steal work from one another when their own
// clients go idle, and run Safra's termination-detection algorithm on a
// token ring to discover global quiescence, at which point every parked
// Get returns "no more work" and the deployment shuts down.
//
// The data store provides Turbine's typed futures: Create/Store/Retrieve
// with single-assignment semantics, Subscribe for close notifications
// (delivered as targeted work items through the normal Get path), and
// containers with insert/lookup/enumerate plus write-refcount close
// semantics.
package adlb
