package adlb

import (
	"fmt"

	"repro/internal/mpi"
)

// NotifyCrashed synthesizes a Leave on behalf of a client rank that
// vanished without sending one — the TCP transport's crash-detection
// path. It builds an opLeave request exactly as Client.Leave would and
// sends it to the rank's home server from the dead rank's own Comm, so
// the server reclaims and requeues the rank's leases through the
// ordinary departure path (LeasesReclaimed, retry budgets, targeted
// retargeting all apply unchanged).
//
// Unlike Client.Leave it never waits for the response: the dead rank has
// no goroutine to receive it. The transport has already tombstoned the
// rank's route, so the server's stOK reply is swallowed in flight — the
// same fate as any other message addressed to a failed process.
func NotifyCrashed(w *mpi.World, servers, rank int) error {
	l := NewLayout(w.Size(), servers)
	if rank < 0 || rank >= l.Clients() {
		return fmt.Errorf("adlb: NotifyCrashed: rank %d is not a client of world %d with %d server(s)",
			rank, w.Size(), servers)
	}
	c, err := w.Comm(rank)
	if err != nil {
		return err
	}
	e := getEncoder()
	e.u8(opLeave)
	frame, err := e.frame()
	if err != nil {
		putEncoder(e)
		return err
	}
	err = c.Send(l.ServerOf(rank), tagRequest, frame)
	putEncoder(e)
	return err
}
