package adlb

// Fault-tolerance tests: the lease lifecycle (issue, implicit settle,
// Fail, reclaim-on-Leave), the bounded retry/poison policy, shutdown
// propagation to parked clients, and the hang watchdog.

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/mpi"
)

// runWorldCfg is runWorld with a caller-supplied Config and the run
// error returned instead of fatal'd, for tests that expect failures.
func runWorldCfg(t *testing.T, size int, cfg Config, clientFn func(cl *Client) error) (StatsSnapshot, error) {
	t.Helper()
	if cfg.Stats == nil {
		cfg.Stats = &Stats{}
	}
	w, err := mpi.NewWorld(size)
	if err != nil {
		t.Fatal(err)
	}
	fail := time.AfterFunc(30*time.Second, func() {
		w.Abort(fmt.Errorf("test watchdog: world hung"))
	})
	defer fail.Stop()
	err = w.Run(func(c *mpi.Comm) error {
		l := NewLayout(size, cfg.Servers)
		if l.IsServer(c.Rank()) {
			return Serve(c, cfg)
		}
		cl, err := NewClient(c, cfg)
		if err != nil {
			return err
		}
		return clientFn(cl)
	})
	return cfg.Stats.Snapshot(), err
}

func TestLeaseSettlesImplicitlyOnNextGet(t *testing.T) {
	snap, err := runWorldCfg(t, 2, testConfig(1), func(cl *Client) error {
		for i := 0; i < 3; i++ {
			if err := cl.Put(typeWork, 0, AnyRank, []byte{byte('a' + i)}); err != nil {
				return err
			}
		}
		seen := 0
		for {
			_, lease, ok, err := cl.GetLeased(typeWork)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if lease == 0 {
				return fmt.Errorf("leased Get returned lease id 0")
			}
			seen++
		}
		if seen != 3 {
			return fmt.Errorf("saw %d items, want 3", seen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Clean exit proves every lease was settled (an unsettled lease with
	// all clients parked would have tripped the watchdog or hung drain).
	if snap.LeasesIssued != 3 {
		t.Fatalf("LeasesIssued = %d, want 3", snap.LeasesIssued)
	}
	if snap.Requeued != 0 || snap.Poisoned != 0 || snap.LeasesReclaimed != 0 {
		t.Fatalf("unexpected fault counters in healthy run: %+v", snap)
	}
}

func TestFailRequeuesUntilPoisoned(t *testing.T) {
	var attempts atomic.Int64
	snap, err := runWorldCfg(t, 2, testConfig(1), func(cl *Client) error {
		if err := cl.Put(typeWork, 7, AnyRank, []byte("doomed-task")); err != nil {
			return err
		}
		for {
			_, lease, ok, err := cl.GetLeased(typeWork)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			attempts.Add(1)
			if err := cl.Fail(lease, "task exploded", true); err != nil {
				return err
			}
		}
	})
	if err == nil {
		t.Fatal("expected a poisoned-task error, got clean run")
	}
	for _, want := range []string{"poisoned", "task exploded", "doomed-task"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	// Default budget: 2 retries => 3 attempts total.
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if snap.Requeued != 2 || snap.Poisoned != 1 {
		t.Fatalf("Requeued = %d, Poisoned = %d; want 2, 1", snap.Requeued, snap.Poisoned)
	}
}

func TestNonRetriableFailurePoisonsImmediately(t *testing.T) {
	snap, err := runWorldCfg(t, 2, testConfig(1), func(cl *Client) error {
		if err := cl.Put(typeWork, 0, AnyRank, []byte("bad-code")); err != nil {
			return err
		}
		_, lease, ok, err := cl.GetLeased(typeWork)
		if err != nil || !ok {
			return fmt.Errorf("get: ok=%v err=%v", ok, err)
		}
		return cl.Fail(lease, "deterministic user error", false)
	})
	if err == nil || !strings.Contains(err.Error(), "not retriable") {
		t.Fatalf("want immediate poison, got %v", err)
	}
	if snap.Requeued != 0 || snap.Poisoned != 1 {
		t.Fatalf("Requeued = %d, Poisoned = %d; want 0, 1", snap.Requeued, snap.Poisoned)
	}
}

func TestLeaveReclaimsLeaseAndSurvivorFinishes(t *testing.T) {
	var survivorSaw atomic.Int64
	snap, err := runWorldCfg(t, 3, testConfig(1), func(cl *Client) error {
		switch cl.Rank() {
		case 0:
			// Pin the task to this rank so the doomed client is the one
			// that receives it, then die holding the lease.
			if err := cl.Put(typeWork, 0, 0, []byte("orphan")); err != nil {
				return err
			}
			payload, lease, ok, err := cl.GetLeased(typeWork)
			if err != nil || !ok || lease == 0 {
				return fmt.Errorf("get: payload=%q lease=%d ok=%v err=%v", payload, lease, ok, err)
			}
			return cl.Leave()
		default:
			for {
				payload, _, ok, err := cl.GetLeased(typeWork)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				if string(payload) != "orphan" {
					return fmt.Errorf("survivor got %q", payload)
				}
				survivorSaw.Add(1)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if survivorSaw.Load() != 1 {
		t.Fatalf("survivor executed the orphaned task %d times, want 1", survivorSaw.Load())
	}
	if snap.LeasesReclaimed != 1 || snap.Requeued != 1 || snap.Poisoned != 0 {
		t.Fatalf("reclaim counters: %+v", snap)
	}
}

func TestServerCrashReleasesParkedClient(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	// Crash the server loop right after it dispatches its first message
	// — the client's Get, which parks. Without shutdown propagation the
	// client would hang in Recv forever.
	faultinject.Arm(faultinject.SiteServerLoop, faultinject.Plan{
		Hit: 1, Action: faultinject.ActCrash, Msg: "server dies silently",
	})
	_, err := runWorldCfg(t, 2, testConfig(1), func(cl *Client) error {
		payload, ok, err := cl.Get(typeWork)
		if err == nil {
			return fmt.Errorf("Get returned payload=%q ok=%v from a dead server", payload, ok)
		}
		if ok {
			return fmt.Errorf("Get returned ok with an error")
		}
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "shut down") {
		t.Fatalf("want parked-client shutdown error, got %v", err)
	}
}

func TestWatchdogDiagnosesStrandedWork(t *testing.T) {
	cfg := testConfig(1)
	cfg.Tick = 100 * time.Microsecond
	cfg.WatchdogIdleTicks = 50
	_, err := runWorldCfg(t, 3, cfg, func(cl *Client) error {
		if cl.Rank() == 0 {
			// Strand a work item: both clients will only ever ask for
			// control-type work, so nothing can consume it.
			if err := cl.Put(typeWork, 0, AnyRank, []byte("stranded-task")); err != nil {
				return err
			}
		}
		_, ok, err := cl.Get(typeControl)
		if err != nil {
			return err
		}
		if ok {
			return fmt.Errorf("unexpected control work delivered")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected hang-watchdog diagnostic, got clean run")
	}
	for _, want := range []string{"hang detected", "type 1: 1 item(s)", "parked clients"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("diagnostic %q does not mention %q", err, want)
		}
	}
}
