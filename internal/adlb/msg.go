package adlb

import (
	"fmt"

	"repro/internal/chunk"
)

// Message tags used on the simulated MPI transport. Client requests all
// travel on tagRequest and carry an opcode; each client has at most one
// outstanding request, so a single tagResponse suffices for replies.
// Server-to-server traffic uses dedicated tags so that a server's main
// loop can receive with wildcards and dispatch on the tag.
const (
	tagRequest  = 1 // client -> server RPC request
	tagResponse = 2 // server -> client RPC response
	tagServer   = 3 // server -> server control (steal, forward, token)
)

// Request opcodes.
const (
	opPut uint8 = iota + 1
	opGet
	opCreate
	opStore
	opRetrieve
	opSubscribe
	opInsert
	opLookup
	opEnumerate
	opWriteRefcount
	opUnique
	opExists
	opTypeOf
	// Batched data-plane ops: the container<->vector bridge needs bulk
	// element traffic to cost O(servers) RPCs, not O(elements).
	opRetrieveBatch // many ids -> many values, one RPC per owning server
	opStoreVector   // container + values -> owner-local member data, one RPC
	// Fault-tolerance ops: lease settlement and client departure.
	opFail  // report a leased task failed; server requeues or poisons
	opLeave // client departs; server reclaims its leases and unregisters it
	// Columnar data-plane ops: batched element traffic as one chunk frame
	// (contiguous typed columns) instead of N boxed per-value encodings.
	opRetrieveChunk // many ids -> one columnar chunk
	opStoreChunk    // container + chunk -> owner-local member data, one RPC
	// Serving op: a long-lived client declares itself pinned, holding the
	// world open across idle periods (see Client.Pin).
	opPin
)

// Server-to-server opcodes.
const (
	sopStealReq uint8 = iota + 64
	sopStealResp
	sopPutForward
	sopToken
	sopShutdown
)

// Response status codes.
const (
	stOK uint8 = iota
	stError
	stNoMoreWork
	stNotFound
)

// Target sentinel: work item may run on any rank.
const AnyRank = -1

// Get request flags.
const (
	// getFlagLeased asks for the work item to be delivered under a
	// server-tracked lease (see the failure model in the package doc).
	getFlagLeased uint8 = 1 << 0
)

// workItem is one unit of work in a server queue.
type workItem struct {
	Type     int
	Priority int
	Target   int // AnyRank or a specific worker rank
	Attempts int // executions already started and failed or lost
	Payload  []byte
}

func encodeWorkItem(e *encoder, w workItem) {
	e.i32(int32(w.Type))
	e.i32(int32(w.Priority))
	e.i32(int32(w.Target))
	e.i32(int32(w.Attempts))
	e.bytes(w.Payload)
}

func decodeWorkItem(d *decoder) workItem {
	var w workItem
	w.Type = int(d.i32())
	w.Priority = int(d.i32())
	w.Target = int(d.i32())
	w.Attempts = int(d.i32())
	w.Payload = append([]byte(nil), d.bytes()...)
	return w
}

// DataType enumerates the value types held by the ADLB data store. These
// mirror Turbine's typed data (TD) universe.
type DataType uint8

// Data store value types.
const (
	TypeVoid DataType = iota + 1
	TypeInteger
	TypeFloat
	TypeString
	TypeBlob
	TypeContainer
	TypeRef
)

func (t DataType) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeInteger:
		return "integer"
	case TypeFloat:
		return "float"
	case TypeString:
		return "string"
	case TypeBlob:
		return "blob"
	case TypeContainer:
		return "container"
	case TypeRef:
		return "ref"
	}
	return fmt.Sprintf("DataType(%d)", uint8(t))
}

// Value is a typed datum in the data store. The Bytes field carries the
// canonical encoding: 8-byte little-endian for integers and floats (IEEE
// bits), UTF-8 for strings, raw bytes for blobs. Blob values additionally
// carry layout metadata — logical Fortran extents and an element-kind
// tag — so bulk numeric data keeps its shape and type across the store
// without the payload ever being re-encoded (the blobutils contract: a
// pointer + length pair reinterpreted at a given element type).
type Value struct {
	Type  DataType
	Bytes []byte
	Dims  []int // blob only: logical extents, column-major
	Elem  uint8 // blob only: element kind (blob.Elem; 0 = raw bytes)
}

func encodeValue(e *encoder, v Value) {
	e.u8(uint8(v.Type))
	e.bytes(v.Bytes)
	if v.Type == TypeBlob {
		e.u8(v.Elem)
		e.u32(uint32(len(v.Dims)))
		for _, d := range v.Dims {
			e.i64(int64(d))
		}
	}
}

// decodeValue decodes a value zero-copy: v.Bytes aliases the decoder's
// frame. Client-side, returned payloads stay valid until the frame's
// documented release point (the next call on the same Client); server-side,
// frames whose decoded values are stored are retained for the datum's
// lifetime (see dispatch), so the alias is permanent there.
func decodeValue(d *decoder) Value {
	var v Value
	v.Type = DataType(d.u8())
	v.Bytes = d.bytes()
	if v.Type == TypeBlob {
		v.Elem = d.u8()
		n := int(d.u32())
		if d.err == nil && (n < 0 || d.off+8*n > len(d.buf)) {
			d.fail("blob dims")
			return v
		}
		if n > 0 && d.err == nil {
			v.Dims = make([]int, n)
			for i := range v.Dims {
				v.Dims[i] = int(d.i64())
			}
		}
	}
	return v
}

// Pair is one (subscript, member id) entry of a container enumeration.
type Pair struct {
	Subscript string
	Member    int64
}

// The chunk frame: length-prefixed column buffers beside the per-value
// encoding. Kinds, Num, and Raw travel as single byte fields (one copy
// onto the wire, one alias off it); Off and Meta are small per-var-row
// and per-blob-row tables.

func encodeChunk(e *encoder, c chunk.Chunk) {
	e.bytes(c.Kinds)
	e.bytes(c.Num)
	e.bytes(c.Raw)
	e.u32(uint32(len(c.Off)))
	for _, o := range c.Off {
		e.u32(o)
	}
	e.u32(uint32(len(c.Meta)))
	for _, m := range c.Meta {
		e.u8(m.Elem)
		e.u32(uint32(len(m.Dims)))
		for _, d := range m.Dims {
			e.i64(int64(d))
		}
	}
}

// decodeChunk decodes a chunk frame zero-copy: the Kinds, Num, and Raw
// columns alias the decoder's frame. The decoded chunk is validated, so
// a malformed frame surfaces as a decode error rather than a chunk whose
// readers index out of bounds.
func decodeChunk(d *decoder) chunk.Chunk {
	var c chunk.Chunk
	c.Kinds = d.bytes()
	c.Num = d.bytes()
	c.Raw = d.bytes()
	nOff := int(d.u32())
	if d.err == nil && (nOff < 0 || nOff > (len(d.buf)-d.off)/4) {
		d.fail("chunk offsets")
		return c
	}
	if nOff > 0 && d.err == nil {
		c.Off = make([]uint32, nOff)
		for i := range c.Off {
			c.Off[i] = d.u32()
		}
	}
	nMeta := int(d.u32())
	if d.err == nil && (nMeta < 0 || nMeta > (len(d.buf)-d.off)/5) {
		d.fail("chunk metas")
		return c
	}
	if nMeta > 0 && d.err == nil {
		c.Meta = make([]chunk.BlobMeta, nMeta)
		for i := range c.Meta {
			c.Meta[i].Elem = d.u8()
			nd := int(d.u32())
			if d.err == nil && (nd < 0 || nd > (len(d.buf)-d.off)/8) {
				d.fail("chunk blob dims")
				return c
			}
			if nd > 0 && d.err == nil {
				c.Meta[i].Dims = make([]int, nd)
				for j := range c.Meta[i].Dims {
					c.Meta[i].Dims[j] = int(d.i64())
				}
			}
		}
	}
	if d.err == nil {
		if err := c.Validate(); err != nil {
			d.err = fmt.Errorf("adlb: wire decode: %w", err)
		}
	}
	return c
}
