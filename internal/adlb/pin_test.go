package adlb

// Tests for the serving-world liveness contract: a pinned client holds
// the world open through idle periods that would otherwise trigger
// quiescence termination, and a departure (Leave) releases the pin so
// ordinary Safra detection can drain the remaining clients.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/mpi"
)

var errPinWindowElapsed = errors.New("pin window elapsed")

// runPinWorld parks every client in Get (rank 0 optionally pinned first)
// — the exact all-idle state that terminates a batch world — and aborts
// the world with errPinWindowElapsed after window. It returns whether
// any client saw NO_MORE_WORK (i.e. quiescence termination fired) and
// whether the abort fired.
func runPinWorld(t *testing.T, size, servers int, pin bool, window time.Duration) (terminated, aborted bool) {
	t.Helper()
	cfg := testConfig(servers)
	w, err := mpi.NewWorld(size)
	if err != nil {
		t.Fatal(err)
	}
	timer := time.AfterFunc(window, func() { w.Abort(errPinWindowElapsed) })
	defer timer.Stop()
	fail := time.AfterFunc(30*time.Second, func() { w.Abort(fmt.Errorf("test watchdog: world hung")) })
	defer fail.Stop()
	var sawNoMoreWork bool
	runErr := w.Run(func(c *mpi.Comm) error {
		l := NewLayout(size, servers)
		if l.IsServer(c.Rank()) {
			return Serve(c, cfg)
		}
		cl, err := NewClient(c, cfg)
		if err != nil {
			return err
		}
		if pin && c.Rank() == 0 {
			if err := cl.Pin(); err != nil {
				return err
			}
		}
		_, ok, err := cl.Get(typeWork)
		if err != nil {
			return err
		}
		if !ok && c.Rank() == 0 {
			sawNoMoreWork = true
		}
		return nil
	})
	if runErr != nil && !errors.Is(runErr, errPinWindowElapsed) {
		t.Fatalf("world failed for an unexpected reason: %v", runErr)
	}
	return sawNoMoreWork, errors.Is(runErr, errPinWindowElapsed)
}

// TestPinnedIdleWorldStaysUp: every client parked over empty queues with
// one pin held. Quiescence termination must NOT fire — the world is
// still up when the observation window closes. The window (200ms) is
// three orders of magnitude beyond the default 200µs housekeeping tick,
// so an unpinned world reaches termination well inside it (proven by
// TestUnpinnedIdleWorldTerminates below).
func TestPinnedIdleWorldStaysUp(t *testing.T) {
	terminated, aborted := runPinWorld(t, 3, 1, true, 200*time.Millisecond)
	if terminated {
		t.Fatal("world terminated by quiescence while a pin was held")
	}
	if !aborted {
		t.Fatal("expected the observation-window abort to end the run")
	}
}

// TestUnpinnedIdleWorldTerminates is the control: the identical all-idle
// world with no pin terminates (NO_MORE_WORK) before the window closes,
// proving the window in the pinned test is long enough to be meaningful.
func TestUnpinnedIdleWorldTerminates(t *testing.T) {
	terminated, aborted := runPinWorld(t, 3, 1, false, 10*time.Second)
	if !terminated || aborted {
		t.Fatalf("unpinned idle world: terminated=%v aborted=%v, want clean quiescence", terminated, aborted)
	}
}

// TestPinnedIdleWorldStaysUpAcrossServerRing: with two servers the pin
// lives only on rank 0's home server, but it must stall the termination
// token for the whole ring.
func TestPinnedIdleWorldStaysUpAcrossServerRing(t *testing.T) {
	terminated, aborted := runPinWorld(t, 6, 2, true, 200*time.Millisecond)
	if terminated {
		t.Fatal("server ring terminated by quiescence while a pin was held")
	}
	if !aborted {
		t.Fatal("expected the observation-window abort to end the run")
	}
}

// TestPinReleasedByLeaveDrainsWorld: the serving shutdown sequence. The
// pinned gateway idles while workers park, then Leaves; ordinary
// quiescence must then hand every parked worker NO_MORE_WORK — no abort,
// no watchdog.
func TestPinReleasedByLeaveDrainsWorld(t *testing.T) {
	runWorld(t, 4, 1, func(cl *Client) error {
		if cl.Rank() == 0 {
			if err := cl.Pin(); err != nil {
				return err
			}
			// Give the workers time to park: the world is now all-idle
			// except for this pinned, never-parking gateway.
			time.Sleep(50 * time.Millisecond)
			return cl.Leave()
		}
		_, ok, err := cl.Get(typeWork)
		if err != nil {
			return err
		}
		if ok {
			return fmt.Errorf("unexpected work delivered")
		}
		return nil
	})
}

// TestPinnedGatewayServesAfterIdle: the serving steady state — a pinned
// gateway that submits work after a long idle period must find the
// worker still parked and the world alive.
func TestPinnedGatewayServesAfterIdle(t *testing.T) {
	runWorld(t, 3, 1, func(cl *Client) error {
		switch cl.Rank() {
		case 0:
			if err := cl.Pin(); err != nil {
				return err
			}
			// Park in Get like a response collector: with the pin this is
			// safe; without it, this parked state would terminate the
			// world and hand us NO_MORE_WORK.
			payload, ok, err := cl.Get(typeControl)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("collector got NO_MORE_WORK while pinned")
			}
			if string(payload) != "response" {
				return fmt.Errorf("payload = %q", payload)
			}
			return cl.Leave()
		case 1:
			// The worker idles outside Get briefly (mid-request from the
			// server's view), then answers the collector and drains.
			time.Sleep(100 * time.Millisecond)
			if err := cl.Put(typeControl, 0, 0, []byte("response")); err != nil {
				return err
			}
			_, ok, err := cl.Get(typeWork)
			if err != nil {
				return err
			}
			if ok {
				return fmt.Errorf("unexpected work delivered")
			}
			return nil
		}
		return nil
	})
}
