package adlb

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/chunk"
)

// TestZeroCopyAliasingContract pins the documented release point of
// retrieved payloads: a slice returned by Retrieve aliases the response
// frame and is valid until the next call on the same Client returns;
// after that the frame may be recycled for unrelated traffic, and
// mutating the stale view must never corrupt the store (the server's
// datum bytes live in the retained store-request frame, not in any
// response frame). The transport-level reuse mechanics are pinned
// deterministically in internal/mpi's TestFramePoolReuseAliasing.
func TestZeroCopyAliasingContract(t *testing.T) {
	fillA := bytes.Repeat([]byte{0xAA}, 4096)
	fillB := bytes.Repeat([]byte{0xBB}, 4096)
	runWorld(t, 2, 1, func(cl *Client) error {
		mk := func(fill []byte) (int64, error) {
			id, err := cl.Unique()
			if err != nil {
				return 0, err
			}
			if err := cl.Create(id, TypeBlob); err != nil {
				return 0, err
			}
			return id, cl.Store(id, BlobValue(fill))
		}
		a, err := mk(fillA)
		if err != nil {
			return err
		}
		b, err := mk(fillB)
		if err != nil {
			return err
		}

		va, found, err := cl.Retrieve(a)
		if err != nil || !found {
			return fmt.Errorf("retrieve a: found=%v err=%v", found, err)
		}
		pa, err := AsBlob(va)
		if err != nil {
			return err
		}
		// Before the release point the view must be intact.
		if !bytes.Equal(pa, fillA) {
			return fmt.Errorf("payload wrong before release point")
		}

		// The next call on the Client is pa's release point. Afterwards
		// the frame backing pa belongs to the pool again; scribbling over
		// the stale view must be harmless to the store.
		if _, _, err := cl.Retrieve(b); err != nil {
			return err
		}
		for i := range pa {
			pa[i] = 0x11
		}
		va2, _, err := cl.Retrieve(a)
		if err != nil {
			return err
		}
		pa2, err := AsBlob(va2)
		if err != nil {
			return err
		}
		if !bytes.Equal(pa2, fillA) {
			return fmt.Errorf("store corrupted by mutation of a stale zero-copy view")
		}

		// Reuse must actually be happening — the contract is load-bearing,
		// not theoretical.
		if _, hits, _ := cl.Comm().World().FramePoolStats(); hits == 0 {
			return fmt.Errorf("frame pool recorded no reuse across the calls above")
		}
		return drainClient(cl)
	})
}

// TestPooledFramesConcurrentClients hammers the shared frame pool from
// several clients against two servers, verifying every retrieved
// payload byte-for-byte. Run under -race this catches pool-reuse
// corruption: a frame released by one rank while another still writes
// or reads it would show up as a data race or a fill-pattern mismatch.
func TestPooledFramesConcurrentClients(t *testing.T) {
	const iters = 120
	runWorld(t, 6, 2, func(cl *Client) error {
		fill := func(i, n int) []byte {
			return bytes.Repeat([]byte{byte(cl.Rank()*37 + i)}, n)
		}
		var blobIDs []int64
		var floatIDs []int64
		var floats []float64
		for i := 0; i < iters; i++ {
			// Vary frame sizes so ranks constantly trade buffers of
			// different capacities through the pool.
			n := 64 << (i % 5)
			id, err := cl.Unique()
			if err != nil {
				return err
			}
			if err := cl.Create(id, TypeBlob); err != nil {
				return err
			}
			if err := cl.Store(id, BlobValue(fill(i, n))); err != nil {
				return err
			}
			blobIDs = append(blobIDs, id)
			v, found, err := cl.Retrieve(id)
			if err != nil || !found {
				return fmt.Errorf("rank %d retrieve %d: found=%v err=%v", cl.Rank(), id, found, err)
			}
			p, err := AsBlob(v)
			if err != nil {
				return err
			}
			if !bytes.Equal(p, fill(i, n)) {
				return fmt.Errorf("rank %d iter %d: payload corrupted", cl.Rank(), i)
			}

			fid, err := cl.Unique()
			if err != nil {
				return err
			}
			if err := cl.Create(fid, TypeFloat); err != nil {
				return err
			}
			f := float64(cl.Rank()*1000+i) + 0.25
			if err := cl.Store(fid, FloatValue(f)); err != nil {
				return err
			}
			floatIDs = append(floatIDs, fid)
			floats = append(floats, f)

			// Periodic batched and columnar gathers over the recent ids,
			// verified in request order.
			if i%8 == 7 {
				tail := blobIDs[len(blobIDs)-8:]
				vals, err := cl.RetrieveBatch(tail)
				if err != nil {
					return err
				}
				for j, bv := range vals {
					pj, err := AsBlob(bv)
					if err != nil {
						return err
					}
					k := i - 7 + j
					if !bytes.Equal(pj, fill(k, 64<<(k%5))) {
						return fmt.Errorf("rank %d batch elem %d corrupted", cl.Rank(), j)
					}
				}
				ck, err := cl.RetrieveChunk(floatIDs[len(floatIDs)-8:])
				if err != nil {
					return err
				}
				if kind, ok := ck.AllKind(); !ok || kind != chunk.KindFloat {
					return fmt.Errorf("rank %d: float chunk not homogeneous", cl.Rank())
				}
				r := ck.Reader()
				for j := 0; r.Next(); j++ {
					if got, want := r.Float(), floats[len(floats)-8+j]; got != want {
						return fmt.Errorf("rank %d chunk elem %d = %v, want %v", cl.Rank(), j, got, want)
					}
				}
			}
		}
		return drainClient(cl)
	})
}
