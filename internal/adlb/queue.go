package adlb

import "container/heap"

// workQueue orders work items by descending priority, breaking ties by
// insertion order (FIFO), matching ADLB's delivery discipline.
type workQueue struct {
	h   itemHeap
	seq uint64
}

type heapEntry struct {
	item workItem
	seq  uint64
}

type itemHeap []heapEntry

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].item.Priority != h[j].item.Priority {
		return h[i].item.Priority > h[j].item.Priority
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *itemHeap) Push(x any) { *h = append(*h, x.(heapEntry)) }

func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func (q *workQueue) push(w workItem) {
	q.seq++
	heap.Push(&q.h, heapEntry{item: w, seq: q.seq})
}

func (q *workQueue) pop() (workItem, bool) {
	if len(q.h) == 0 {
		return workItem{}, false
	}
	e := heap.Pop(&q.h).(heapEntry)
	return e.item, true
}

func (q *workQueue) len() int { return len(q.h) }

// drainHalf removes up to half the queued items (at least one if any are
// queued), lowest priority first, for transfer to a stealing server.
// Stealing low-priority work first preserves the local server's ability to
// dispatch its own high-priority items promptly, matching ADLB.
func (q *workQueue) drainHalf() []workItem {
	n := q.len()
	if n == 0 {
		return nil
	}
	take := n / 2
	if take == 0 {
		take = 1
	}
	// Pop everything, give away the tail (lowest priority), re-push the rest.
	all := make([]heapEntry, 0, n)
	for len(q.h) > 0 {
		all = append(all, heap.Pop(&q.h).(heapEntry))
	}
	kept := all[:n-take]
	given := all[n-take:]
	for _, e := range kept {
		heap.Push(&q.h, e)
	}
	items := make([]workItem, len(given))
	for i, e := range given {
		items[i] = e.item
	}
	return items
}
