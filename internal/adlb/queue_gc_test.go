package adlb

// Regression tests for targeted-queue GC: work targeted at a departed
// client (one already handed NO_MORE_WORK) can never be delivered, so it
// must be dropped and counted — not stranded in the targeted map.

import (
	"sync/atomic"
	"testing"
)

func TestTargetedQueueGCForDepartedClients(t *testing.T) {
	// Comm-free server: acceptWork and clientDeparted touch no sockets
	// when nothing is parked.
	s := &server{
		cfg:        testConfig(1),
		untargeted: map[int]*workQueue{},
		targeted:   map[targetKey]*workQueue{},
		parked:     map[int]parkedReq{},
		departed:   map[int]bool{},
		store:      map[int64]*datum{},
	}
	s.acceptWork(workItem{Type: typeWork, Target: 1, Payload: []byte("a")})
	s.acceptWork(workItem{Type: typeWork, Target: 1, Payload: []byte("b")})
	s.acceptWork(workItem{Type: typeControl, Target: 1, Payload: []byte("c")})
	s.acceptWork(workItem{Type: typeWork, Target: 2, Payload: []byte("other")})
	if len(s.targeted) != 3 {
		t.Fatalf("targeted queues = %d, want 3", len(s.targeted))
	}

	s.clientDeparted(1)
	if got := s.cfg.Stats.TargetedDropped.Load(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if len(s.targeted) != 1 {
		t.Fatalf("client 1's queues not GC'd: %d remain", len(s.targeted))
	}
	if _, ok := s.targeted[targetKey{typ: typeWork, target: 2}]; !ok {
		t.Fatal("client 2's queue was GC'd with client 1's")
	}

	// New targeted work for a departed client is dropped on arrival.
	s.acceptWork(workItem{Type: typeWork, Target: 1, Payload: []byte("late")})
	if len(s.targeted) != 1 {
		t.Fatal("post-departure targeted work was queued")
	}
	if got := s.cfg.Stats.TargetedDropped.Load(); got != 4 {
		t.Fatalf("dropped = %d, want 4", got)
	}

	// Departure is idempotent — including doneCount, which feeds the
	// server-exit condition — and does not disturb other clients.
	done := s.doneCount
	s.clientDeparted(1)
	if s.doneCount != done {
		t.Fatalf("repeated departure advanced doneCount %d -> %d", done, s.doneCount)
	}
	if len(s.targeted) != 1 || s.cfg.Stats.TargetedDropped.Load() != 4 {
		t.Fatal("repeated departure changed state")
	}
}

func TestTargetedGCDoesNotDropLiveWork(t *testing.T) {
	// End to end: a run with real targeted traffic must deliver every
	// item and terminate with nothing GC-dropped — departure-time GC may
	// only ever touch undeliverable work. (Puts after NO_MORE_WORK are a
	// protocol violation and inherently race server shutdown, so the
	// drop path itself is covered by the comm-free unit test above.)
	var got atomic.Int64
	stats := runWorld(t, 4, 1, func(cl *Client) error {
		if cl.Rank() == 0 {
			for i := 0; i < 8; i++ {
				if err := cl.Put(typeWork, 0, 1+i%2, []byte("t")); err != nil {
					return err
				}
			}
		}
		for {
			_, ok, err := cl.Get(typeWork)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			got.Add(1)
		}
	})
	if got.Load() != 8 {
		t.Fatalf("delivered = %d, want 8", got.Load())
	}
	if stats.TargetedDropped != 0 {
		t.Fatalf("TargetedDropped = %d, want 0", stats.TargetedDropped)
	}
}
