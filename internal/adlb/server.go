package adlb

import (
	"fmt"
	"strconv"

	"repro/internal/mpi"
)

// datum is one entry of the distributed data store. Scalars close when
// stored; containers close when their write refcount drops to zero.
// Subscribers are client ranks to be notified (via targeted notification
// work items) when the datum closes.
type datum struct {
	typ         DataType
	set         bool
	val         Value
	subscribers []int
	// container state
	members   map[string]int64
	order     []string
	writeRefs int
}

func (d *datum) closed() bool {
	if d.typ == TypeContainer {
		return d.writeRefs <= 0
	}
	return d.set
}

type targetKey struct {
	typ    int
	target int
}

// server implements the ADLB server role: work queues, parked client
// requests, inter-server work stealing, the distributed data store, and
// Safra's termination-detection algorithm over the server ring.
type server struct {
	c   *mpi.Comm
	cfg Config
	l   Layout
	idx int // server index in [0, Servers)

	nClients int // clients assigned to this server

	untargeted map[int]*workQueue
	targeted   map[targetKey]*workQueue
	parked     map[int]int  // client rank -> requested work type
	parkOrder  []int        // FIFO of parked client ranks
	departed   map[int]bool // clients told NO_MORE_WORK; targeted queues GC'd

	store  map[int64]*datum
	nextID int64

	// Safra termination detection state.
	black      bool  // this server's colour
	mcount     int64 // counted messages sent minus received
	haveToken  bool
	tokenQ     int64
	tokenBlack bool
	roundOpen  bool // master only: a token is circulating

	stealOut     bool // a steal request is outstanding
	stealRR      int  // round-robin victim cursor
	stealBackoff int  // ticks to wait between steals after empty responses
	stealWait    int  // remaining ticks before the next steal attempt
	draining     bool
	doneCount    int // clients that have received NO_MORE_WORK
	selfHalted   bool
}

func newServer(c *mpi.Comm, cfg Config, l Layout) *server {
	idx := l.ServerIndex(c.Rank())
	s := &server{
		c:          c,
		cfg:        cfg,
		l:          l,
		idx:        idx,
		nClients:   l.clientsOfServer(idx),
		untargeted: make(map[int]*workQueue),
		targeted:   make(map[targetKey]*workQueue),
		parked:     make(map[int]int),
		departed:   make(map[int]bool),
		store:      make(map[int64]*datum),
		nextID:     int64(l.Servers + idx), // ids ≡ idx (mod Servers), skipping id 0
		stealRR:    (idx + 1) % l.Servers,
	}
	return s
}

func (s *server) stats() *Stats { return s.cfg.Stats }

func (s *server) run() error {
	tick := s.cfg.tick()
	for {
		data, st, ok, err := s.c.RecvTimeout(mpi.AnySource, mpi.AnyTag, tick)
		if err != nil {
			return err
		}
		if ok {
			if err := s.dispatch(data, st); err != nil {
				s.c.World().Abort(err)
				return err
			}
		}
		if s.selfHalted && s.doneCount >= s.nClients {
			return nil
		}
		if !s.draining {
			s.housekeeping()
		}
	}
}

// housekeeping runs between messages: retries steals, forwards or
// initiates termination tokens.
func (s *server) housekeeping() {
	if len(s.parked) > 0 && !s.stealOut {
		if s.stealWait > 0 {
			s.stealWait--
		} else {
			s.maybeSteal()
		}
	}
	if s.haveToken && s.quiet() {
		s.forwardToken()
	}
	if s.idx == 0 && !s.roundOpen && s.quiet() {
		s.startTokenRound()
	}
}

// quiet reports whether this server is locally passive: every assigned
// client is parked in Get, all queues are empty, and no steal is pending.
func (s *server) quiet() bool {
	if len(s.parked) != s.nClients || s.stealOut {
		return false
	}
	for _, q := range s.untargeted {
		if q.len() > 0 {
			return false
		}
	}
	for _, q := range s.targeted {
		if q.len() > 0 {
			return false
		}
	}
	return true
}

func (s *server) dispatch(data []byte, st mpi.Status) error {
	d := &decoder{buf: data}
	op := d.u8()
	switch st.Tag {
	case tagRequest:
		return s.handleRequest(op, d, st.Source)
	case tagServer:
		return s.handleServer(op, d, st.Source)
	}
	return fmt.Errorf("adlb: server %d: unexpected tag %d from %d", s.idx, st.Tag, st.Source)
}

// ---------- client RPCs ----------

func (s *server) respond(client int, build func(*encoder)) error {
	e := &encoder{}
	build(e)
	frame, err := e.frame()
	if err != nil {
		return err
	}
	return s.c.Send(client, tagResponse, frame)
}

func (s *server) respondError(client int, msg string) error {
	return s.respond(client, func(e *encoder) {
		e.u8(stError)
		e.str(msg)
	})
}

func (s *server) handleRequest(op uint8, d *decoder, client int) error {
	switch op {
	case opPut:
		return s.handlePut(d, client)
	case opGet:
		return s.handleGet(d, client)
	case opUnique:
		return s.handleUnique(d, client)
	case opCreate, opStore, opRetrieve, opSubscribe, opInsert, opLookup,
		opEnumerate, opWriteRefcount, opExists, opTypeOf,
		opRetrieveBatch, opStoreVector:
		if s.stats() != nil {
			s.stats().DataOps.Add(1)
		}
		return s.handleData(op, d, client)
	}
	return fmt.Errorf("adlb: server %d: unknown opcode %d from client %d", s.idx, op, client)
}

func (s *server) handlePut(d *decoder, client int) error {
	w := decodeWorkItem(d)
	if err := d.finish("put request"); err != nil {
		return err
	}
	if w.Type < 0 || w.Type >= s.cfg.Types {
		return s.respondError(client, fmt.Sprintf("put: invalid work type %d", w.Type))
	}
	if w.Target != AnyRank {
		if w.Target < 0 || w.Target >= s.l.Clients() {
			return s.respondError(client, fmt.Sprintf("put: invalid target rank %d", w.Target))
		}
		owner := s.l.ServerOf(w.Target)
		if owner != s.c.Rank() {
			// Forward to the target's server; counted for Safra.
			if err := s.sendServer(owner, sopPutForward, true, func(e *encoder) {
				encodeWorkItem(e, w)
			}); err != nil {
				return err
			}
			if s.stats() != nil {
				s.stats().PutsForwarded.Add(1)
			}
			return s.respond(client, func(e *encoder) { e.u8(stOK) })
		}
	}
	s.acceptWork(w)
	if s.stats() != nil {
		s.stats().PutsLocal.Add(1)
	}
	return s.respond(client, func(e *encoder) { e.u8(stOK) })
}

// acceptWork enqueues w and immediately matches parked clients against
// the queue. Enqueue-then-match (rather than handing w itself to a
// parked client) makes delivery priority-aware by construction: a parked
// client always receives the highest-priority queued item, never merely
// the most recently arrived one.
func (s *server) acceptWork(w workItem) {
	if !s.enqueue(w) {
		return
	}
	s.matchParked(w.Type, w.Target)
}

// enqueue adds w to the appropriate queue (no delivery). It reports
// whether the item was queued; targeted items at departed clients are
// dropped and counted instead of stranded.
func (s *server) enqueue(w workItem) bool {
	if w.Target != AnyRank {
		if s.departed[w.Target] {
			// The target has been told NO_MORE_WORK and will never Get
			// again; queueing would strand the item (and its payload)
			// until process exit. Drop it, visibly.
			if s.stats() != nil {
				s.stats().TargetedDropped.Add(1)
			}
			return false
		}
		k := targetKey{typ: w.Type, target: w.Target}
		q := s.targeted[k]
		if q == nil {
			q = &workQueue{}
			s.targeted[k] = q
		}
		q.push(w)
		return true
	}
	q := s.untargeted[w.Type]
	if q == nil {
		q = &workQueue{}
		s.untargeted[w.Type] = q
	}
	q.push(w)
	return true
}

// matchParked hands queued items of (typ, target) to matching parked
// clients, longest-parked client first, highest-priority item first
// (priority-aware parked matching: when a batch — e.g. a steal response
// — lands while clients are parked, each client must receive the best
// queued item, not the batch's arrival order).
func (s *server) matchParked(typ, target int) {
	if target != AnyRank {
		k := targetKey{typ: typ, target: target}
		q := s.targeted[k]
		if q == nil {
			return
		}
		if t, ok := s.parked[target]; ok && t == typ {
			if w, ok := q.pop(); ok {
				s.deliver(target, w)
			}
		}
		if q.len() == 0 {
			delete(s.targeted, k)
		}
		return
	}
	q := s.untargeted[typ]
	if q == nil {
		return
	}
	for q.len() > 0 {
		client, ok := -1, false
		for _, r := range s.parkOrder {
			if t, p := s.parked[r]; p && t == typ {
				client, ok = r, true
				break
			}
		}
		if !ok {
			return
		}
		w, _ := q.pop()
		s.deliver(client, w)
	}
}

// deliver answers a parked (or newly parked) client's Get with work.
// The client leaves both the parked map and the park FIFO here: leaving
// stale FIFO entries behind (as targeted deliveries and notifications
// once did) lets a client that re-parks inherit its old, earlier queue
// position, so the earliest-ever-parked rank wins every untargeted
// dispatch and the rest starve.
func (s *server) deliver(client int, w workItem) {
	delete(s.parked, client)
	s.unpark(client)
	if s.stats() != nil {
		s.stats().GetsServed.Add(1)
	}
	err := s.respond(client, func(e *encoder) {
		e.u8(stOK)
		encodeWorkItem(e, w)
	})
	if err != nil {
		s.c.World().Abort(err)
	}
}

// unpark removes client from the park FIFO. Each client appears at most
// once (it is appended only when parking in handleGet, and removed on
// every delivery), so removing the first match suffices.
func (s *server) unpark(client int) {
	for i, r := range s.parkOrder {
		if r == client {
			s.parkOrder = append(s.parkOrder[:i], s.parkOrder[i+1:]...)
			return
		}
	}
}

// clientDeparted records that a client has been handed NO_MORE_WORK and
// garbage-collects its targeted queues: nothing queued for it can ever
// be delivered, so the items (and their payloads) are dropped and
// counted rather than stranded until process exit.
func (s *server) clientDeparted(client int) {
	if s.departed[client] {
		// Idempotent: a client re-Getting after NO_MORE_WORK must not
		// advance doneCount toward the exit condition a second time.
		return
	}
	s.doneCount++
	s.departed[client] = true
	for k, q := range s.targeted {
		if k.target != client {
			continue
		}
		if s.stats() != nil {
			s.stats().TargetedDropped.Add(int64(q.len()))
		}
		delete(s.targeted, k)
	}
}

func (s *server) handleGet(d *decoder, client int) error {
	typ := int(d.i32())
	if err := d.finish("get request"); err != nil {
		return err
	}
	if s.draining {
		s.clientDeparted(client)
		return s.respond(client, func(e *encoder) { e.u8(stNoMoreWork) })
	}
	// Targeted work for this client first. An emptied queue leaves the
	// map immediately: long runs touch many (type, target) pairs, and the
	// map must not accumulate one dead queue per pair ever touched.
	k := targetKey{typ: typ, target: client}
	if q, ok := s.targeted[k]; ok {
		if w, ok := q.pop(); ok {
			if q.len() == 0 {
				delete(s.targeted, k)
			}
			if s.stats() != nil {
				s.stats().GetsServed.Add(1)
			}
			return s.respond(client, func(e *encoder) {
				e.u8(stOK)
				encodeWorkItem(e, w)
			})
		}
		delete(s.targeted, k)
	}
	if q, ok := s.untargeted[typ]; ok {
		if w, ok := q.pop(); ok {
			if s.stats() != nil {
				s.stats().GetsServed.Add(1)
			}
			return s.respond(client, func(e *encoder) {
				e.u8(stOK)
				encodeWorkItem(e, w)
			})
		}
	}
	// No work: park the request; the response is deferred.
	s.parked[client] = typ
	s.parkOrder = append(s.parkOrder, client)
	if s.stats() != nil {
		s.stats().GetsParked.Add(1)
	}
	if !s.stealOut {
		s.maybeSteal()
	}
	return nil
}

func (s *server) handleUnique(d *decoder, client int) error {
	count := int64(d.i32())
	if err := d.finish("unique request"); err != nil {
		return err
	}
	if count < 1 {
		count = 1
	}
	start := s.nextID
	s.nextID += count * int64(s.l.Servers)
	return s.respond(client, func(e *encoder) {
		e.u8(stOK)
		e.i64(start)
		e.i32(int32(s.l.Servers)) // stride
	})
}

// ---------- data store ----------

func (s *server) handleData(op uint8, d *decoder, client int) error {
	switch op {
	case opCreate:
		id := d.i64()
		typ := DataType(d.u8())
		if err := d.finish("create request"); err != nil {
			return err
		}
		if _, exists := s.store[id]; exists {
			return s.respondError(client, fmt.Sprintf("create: id %d already exists", id))
		}
		dm := &datum{typ: typ}
		if typ == TypeContainer {
			dm.members = make(map[string]int64)
			dm.writeRefs = 1
		}
		s.store[id] = dm
		return s.respond(client, func(e *encoder) { e.u8(stOK) })

	case opStore:
		id := d.i64()
		v := decodeValue(d)
		if err := d.finish("store request"); err != nil {
			return err
		}
		dm, ok := s.store[id]
		if !ok {
			return s.respondError(client, fmt.Sprintf("store: no such id %d", id))
		}
		if dm.set {
			return s.respondError(client, fmt.Sprintf("store: id %d already set (single-assignment violation)", id))
		}
		if dm.typ == TypeContainer {
			return s.respondError(client, fmt.Sprintf("store: id %d is a container", id))
		}
		if v.Type != dm.typ && dm.typ != TypeVoid {
			return s.respondError(client, fmt.Sprintf("store: id %d is %v, value is %v", id, dm.typ, v.Type))
		}
		dm.val = v
		dm.set = true
		s.notifyAll(dm, id)
		return s.respond(client, func(e *encoder) { e.u8(stOK) })

	case opRetrieve:
		id := d.i64()
		if err := d.finish("retrieve request"); err != nil {
			return err
		}
		dm, ok := s.store[id]
		if !ok {
			return s.respond(client, func(e *encoder) { e.u8(stNotFound) })
		}
		if !dm.set && dm.typ != TypeContainer {
			return s.respondError(client, fmt.Sprintf("retrieve: id %d is unset", id))
		}
		return s.respond(client, func(e *encoder) {
			e.u8(stOK)
			encodeValue(e, dm.val)
		})

	case opSubscribe:
		id := d.i64()
		rank := int(d.i32())
		if err := d.finish("subscribe request"); err != nil {
			return err
		}
		dm, ok := s.store[id]
		if !ok {
			return s.respondError(client, fmt.Sprintf("subscribe: no such id %d", id))
		}
		if dm.closed() {
			return s.respond(client, func(e *encoder) {
				e.u8(stOK)
				e.boolean(true) // already closed
			})
		}
		dm.subscribers = append(dm.subscribers, rank)
		return s.respond(client, func(e *encoder) {
			e.u8(stOK)
			e.boolean(false)
		})

	case opInsert:
		cid := d.i64()
		sub := d.str()
		member := d.i64()
		if err := d.finish("insert request"); err != nil {
			return err
		}
		dm, ok := s.store[cid]
		if !ok || dm.typ != TypeContainer {
			return s.respondError(client, fmt.Sprintf("insert: id %d is not a container", cid))
		}
		if dm.closed() {
			return s.respondError(client, fmt.Sprintf("insert: container %d is closed", cid))
		}
		if _, dup := dm.members[sub]; dup {
			return s.respondError(client, fmt.Sprintf("insert: container %d already has subscript %q", cid, sub))
		}
		dm.members[sub] = member
		dm.order = append(dm.order, sub)
		return s.respond(client, func(e *encoder) { e.u8(stOK) })

	case opLookup:
		cid := d.i64()
		sub := d.str()
		createType := DataType(d.u8()) // 0 = do not create
		if err := d.finish("lookup request"); err != nil {
			return err
		}
		dm, ok := s.store[cid]
		if !ok || dm.typ != TypeContainer {
			return s.respondError(client, fmt.Sprintf("lookup: id %d is not a container", cid))
		}
		if m, ok := dm.members[sub]; ok {
			return s.respond(client, func(e *encoder) {
				e.u8(stOK)
				e.i64(m)
				e.boolean(false)
			})
		}
		if createType == 0 {
			return s.respond(client, func(e *encoder) { e.u8(stNotFound) })
		}
		if dm.closed() {
			return s.respondError(client, fmt.Sprintf("lookup: container %d closed without subscript %q", cid, sub))
		}
		// Create an owner-local placeholder TD for the member.
		id := s.nextID
		s.nextID += int64(s.l.Servers)
		pdm := &datum{typ: createType}
		if createType == TypeContainer {
			pdm.members = make(map[string]int64)
			pdm.writeRefs = 1
		}
		s.store[id] = pdm
		dm.members[sub] = id
		dm.order = append(dm.order, sub)
		return s.respond(client, func(e *encoder) {
			e.u8(stOK)
			e.i64(id)
			e.boolean(true)
		})

	case opEnumerate:
		cid := d.i64()
		if err := d.finish("enumerate request"); err != nil {
			return err
		}
		dm, ok := s.store[cid]
		if !ok || dm.typ != TypeContainer {
			return s.respondError(client, fmt.Sprintf("enumerate: id %d is not a container", cid))
		}
		return s.respond(client, func(e *encoder) {
			e.u8(stOK)
			e.u32(uint32(len(dm.order)))
			for _, sub := range dm.order {
				e.str(sub)
				e.i64(dm.members[sub])
			}
		})

	case opWriteRefcount:
		id := d.i64()
		delta := int(d.i32())
		if err := d.finish("refcount request"); err != nil {
			return err
		}
		dm, ok := s.store[id]
		if !ok {
			return s.respondError(client, fmt.Sprintf("refcount: no such id %d", id))
		}
		if dm.typ != TypeContainer {
			return s.respondError(client, fmt.Sprintf("refcount: id %d is not a container", id))
		}
		wasClosed := dm.closed()
		dm.writeRefs += delta
		if dm.writeRefs < 0 {
			return s.respondError(client, fmt.Sprintf("refcount: id %d dropped below zero", id))
		}
		if !wasClosed && dm.closed() {
			s.notifyAll(dm, id)
		}
		return s.respond(client, func(e *encoder) { e.u8(stOK) })

	case opExists:
		id := d.i64()
		if err := d.finish("exists request"); err != nil {
			return err
		}
		dm, ok := s.store[id]
		return s.respond(client, func(e *encoder) {
			e.u8(stOK)
			e.boolean(ok && dm.closed())
		})

	case opTypeOf:
		id := d.i64()
		if err := d.finish("typeof request"); err != nil {
			return err
		}
		dm, ok := s.store[id]
		if !ok {
			return s.respond(client, func(e *encoder) { e.u8(stNotFound) })
		}
		return s.respond(client, func(e *encoder) {
			e.u8(stOK)
			e.u8(uint8(dm.typ))
		})

	case opRetrieveBatch:
		// Bulk gather: all requested ids are owned here (the client
		// grouped by owner), so the whole lookup is local and the reply
		// carries every value in one frame.
		n := int(d.u32())
		if d.err == nil && (n < 0 || n > (len(d.buf)-d.off)/8) {
			// Division keeps the bound overflow-free on 32-bit ints; a
			// claimed count beyond the frame is malformed input, not an
			// allocation request.
			d.fail("retrieve_batch ids")
		}
		if d.err != nil {
			return d.err
		}
		ids := make([]int64, n)
		for i := range ids {
			ids[i] = d.i64()
		}
		if err := d.finish("retrieve_batch request"); err != nil {
			return err
		}
		vals := make([]Value, n)
		for i, id := range ids {
			dm, ok := s.store[id]
			if !ok {
				return s.respondError(client, fmt.Sprintf("retrieve_batch: no such id %d", id))
			}
			if !dm.set && dm.typ != TypeContainer {
				return s.respondError(client, fmt.Sprintf("retrieve_batch: id %d is unset", id))
			}
			vals[i] = dm.val
		}
		return s.respond(client, func(e *encoder) {
			e.u8(stOK)
			e.u32(uint32(n))
			for _, v := range vals {
				encodeValue(e, v)
			}
		})

	case opStoreVector:
		// Bulk scatter into a container: create one owner-local closed
		// datum per element and insert it at its index, all in one RPC.
		// The write refcount is the caller's to manage, as with Insert.
		cid := d.i64()
		n := int(d.u32())
		if d.err == nil && (n < 0 || n > len(d.buf)) {
			// Each encoded value needs >= 5 bytes; an element count
			// beyond the frame length is a malformed frame, not an
			// allocation request.
			d.fail("store_vector count")
		}
		if d.err != nil {
			return d.err
		}
		vals := make([]Value, 0, n)
		for i := 0; i < n; i++ {
			vals = append(vals, decodeValue(d))
			if d.err != nil {
				return d.err
			}
		}
		if err := d.finish("store_vector request"); err != nil {
			return err
		}
		dm, ok := s.store[cid]
		if !ok || dm.typ != TypeContainer {
			return s.respondError(client, fmt.Sprintf("store_vector: id %d is not a container", cid))
		}
		if dm.closed() {
			return s.respondError(client, fmt.Sprintf("store_vector: container %d is closed", cid))
		}
		base := len(dm.order)
		// Validate every target subscript before mutating anything, so a
		// failed StoreVector is all-or-nothing: partial member creation
		// would leave the container in a layout no call described.
		subs := make([]string, len(vals))
		for i := range vals {
			subs[i] = strconv.Itoa(base + i)
			if _, dup := dm.members[subs[i]]; dup {
				return s.respondError(client, fmt.Sprintf("store_vector: container %d already has subscript %q", cid, subs[i]))
			}
		}
		for i, v := range vals {
			id := s.nextID
			s.nextID += int64(s.l.Servers)
			s.store[id] = &datum{typ: v.Type, set: true, val: v}
			dm.members[subs[i]] = id
			dm.order = append(dm.order, subs[i])
		}
		return s.respond(client, func(e *encoder) { e.u8(stOK) })
	}
	return fmt.Errorf("adlb: unhandled data op %d", op)
}

// notifyAll wraps a close notification for each subscriber into a
// high-priority targeted work item and routes it to the subscriber's
// server. This is how a Store on one rank wakes dataflow rules on another.
func (s *server) notifyAll(dm *datum, id int64) {
	for _, rank := range dm.subscribers {
		w := workItem{
			Type:     s.cfg.NotifyType,
			Priority: notifyPriority,
			Target:   rank,
			Payload:  EncodeNotification(id),
		}
		if s.stats() != nil {
			s.stats().Notifications.Add(1)
		}
		owner := s.l.ServerOf(rank)
		if owner == s.c.Rank() {
			s.acceptWork(w)
			continue
		}
		if err := s.sendServer(owner, sopPutForward, true, func(e *encoder) {
			encodeWorkItem(e, w)
		}); err != nil {
			s.c.World().Abort(err)
			return
		}
	}
	dm.subscribers = nil
}

// notifyPriority outranks ordinary work so dataflow wake-ups preempt
// queued leaf tasks, keeping engines busy generating work.
const notifyPriority = 1 << 20

// ---------- server-to-server ----------

// sendServer sends a server-to-server message. counted marks messages that
// transfer work and therefore participate in Safra's message counting.
// Empty steal traffic is deliberately uncounted: an outstanding steal
// request already makes the requesting server non-quiet (it holds the
// token and blocks the detection round), so only work-bearing messages can
// race with a completing round. Counting empty steal chatter would instead
// livelock detection — retries would keep blackening servers forever.
func (s *server) sendServer(dest int, op uint8, counted bool, build func(*encoder)) error {
	e := &encoder{}
	e.u8(op)
	build(e)
	frame, err := e.frame()
	if err != nil {
		return err
	}
	if counted {
		s.mcount++
	}
	return s.c.Send(dest, tagServer, frame)
}

func (s *server) handleServer(op uint8, d *decoder, source int) error {
	switch op {
	case sopPutForward:
		s.mcount--
		s.black = true
		w := decodeWorkItem(d)
		if err := d.finish("put-forward"); err != nil {
			return err
		}
		s.acceptWork(w)
		if s.stats() != nil {
			s.stats().PutsLocal.Add(1)
		}
		return nil

	case sopStealReq:
		typ := int(d.i32())
		requester := int(d.i32())
		if err := d.finish("steal request"); err != nil {
			return err
		}
		var items []workItem
		if q, ok := s.untargeted[typ]; ok {
			items = q.drainHalf()
		}
		return s.sendServer(s.l.ServerRank(requester), sopStealResp, len(items) > 0, func(e *encoder) {
			e.u32(uint32(len(items)))
			for _, w := range items {
				encodeWorkItem(e, w)
			}
		})

	case sopStealResp:
		n := int(d.u32())
		s.stealOut = false
		if n > 0 {
			s.mcount--
			s.black = true
			s.stealBackoff = 0
			if s.stats() != nil {
				s.stats().StealHits.Add(1)
				s.stats().ItemsStolen.Add(int64(n))
			}
		} else if s.stealBackoff < 64 {
			// Empty response: back off exponentially so idle servers stop
			// hammering each other while termination detection proceeds.
			if s.stealBackoff == 0 {
				s.stealBackoff = 1
			} else {
				s.stealBackoff *= 2
			}
		}
		s.stealWait = s.stealBackoff
		// Enqueue the whole batch before matching any parked client:
		// item-by-item acceptance would hand the first-arrived item to
		// the longest-parked client even when a higher-priority sibling
		// is later in the same response.
		touched := map[targetKey]bool{}
		var order []targetKey
		for i := 0; i < n; i++ {
			w := decodeWorkItem(d)
			if d.err != nil {
				return d.err
			}
			if s.enqueue(w) {
				k := targetKey{typ: w.Type, target: w.Target}
				if !touched[k] {
					touched[k] = true
					order = append(order, k)
				}
			}
		}
		if err := d.finish("steal response"); err != nil {
			return err
		}
		for _, k := range order {
			s.matchParked(k.typ, k.target)
		}
		return nil

	case sopToken:
		s.tokenQ = d.i64()
		s.tokenBlack = d.boolean()
		if err := d.finish("token"); err != nil {
			return err
		}
		s.haveToken = true
		if s.quiet() {
			s.forwardToken()
		}
		return nil

	case sopShutdown:
		if err := d.finish("shutdown"); err != nil {
			return err
		}
		s.beginDrain()
		return nil
	}
	return fmt.Errorf("adlb: unhandled server op %d from %d", op, source)
}

// maybeSteal issues one steal request on behalf of parked clients. Victims
// rotate round-robin over the other servers.
func (s *server) maybeSteal() {
	if s.cfg.DisableSteal || s.l.Servers < 2 || len(s.parked) == 0 || s.stealOut {
		return
	}
	// Steal for the type of the longest-parked client.
	typ, ok := -1, false
	for _, r := range s.parkOrder {
		if t, p := s.parked[r]; p {
			typ, ok = t, true
			break
		}
	}
	if !ok {
		return
	}
	victim := s.stealRR
	if victim == s.idx {
		victim = (victim + 1) % s.l.Servers
	}
	s.stealRR = (victim + 1) % s.l.Servers
	s.stealOut = true
	if s.stats() != nil {
		s.stats().StealReqs.Add(1)
	}
	err := s.sendServer(s.l.ServerRank(victim), sopStealReq, false, func(e *encoder) {
		e.i32(int32(typ))
		e.i32(int32(s.idx))
	})
	if err != nil {
		s.c.World().Abort(err)
	}
}

// ---------- Safra termination detection ----------

func (s *server) startTokenRound() {
	if s.l.Servers == 1 {
		// Single server: local quiescence is global (all client RPCs are
		// synchronous, so no in-flight messages can exist).
		s.terminate()
		return
	}
	s.roundOpen = true
	s.black = false
	if s.stats() != nil {
		s.stats().TokenRounds.Add(1)
	}
	err := s.sendServer(s.l.ServerRank(1), sopToken, false, func(e *encoder) {
		e.i64(0)
		e.boolean(false)
	})
	if err != nil {
		s.c.World().Abort(err)
	}
}

func (s *server) forwardToken() {
	if !s.haveToken {
		return
	}
	s.haveToken = false
	if s.idx == 0 {
		// Token completed the ring.
		s.roundOpen = false
		if !s.tokenBlack && !s.black && s.tokenQ+s.mcount == 0 {
			s.terminate()
		}
		// Otherwise a new round starts from housekeeping when quiet.
		return
	}
	q := s.tokenQ + s.mcount
	black := s.tokenBlack || s.black
	s.black = false
	next := (s.idx + 1) % s.l.Servers
	err := s.sendServer(s.l.ServerRank(next), sopToken, false, func(e *encoder) {
		e.i64(q)
		e.boolean(black)
	})
	if err != nil {
		s.c.World().Abort(err)
	}
}

// terminate broadcasts shutdown to all servers (master only) and begins
// the local drain.
func (s *server) terminate() {
	for i := 1; i < s.l.Servers; i++ {
		e := &encoder{}
		e.u8(sopShutdown)
		if err := s.c.Send(s.l.ServerRank(i), tagServer, e.buf); err != nil {
			s.c.World().Abort(err)
			return
		}
	}
	s.beginDrain()
}

// beginDrain answers every parked client with NO_MORE_WORK and arranges
// for the server loop to exit once all assigned clients have been told.
func (s *server) beginDrain() {
	s.draining = true
	for _, r := range s.parkOrder {
		if _, ok := s.parked[r]; !ok {
			continue
		}
		delete(s.parked, r)
		s.clientDeparted(r)
		if err := s.respond(r, func(e *encoder) { e.u8(stNoMoreWork) }); err != nil {
			s.c.World().Abort(err)
			return
		}
	}
	s.parkOrder = nil
	s.selfHalted = true
}

const notifyMagic = 0xD7

// EncodeNotification builds the payload of a data-close notification work
// item. Turbine engines decode these in their Get loop.
func EncodeNotification(id int64) []byte {
	e := &encoder{}
	e.u8(notifyMagic)
	e.i64(id)
	return e.buf
}

// DecodeNotification reports whether payload is a data-close notification
// and, if so, the id that closed.
func DecodeNotification(payload []byte) (int64, bool) {
	if len(payload) != 9 || payload[0] != notifyMagic {
		return 0, false
	}
	d := &decoder{buf: payload, off: 1}
	id := d.i64()
	if d.err != nil {
		return 0, false
	}
	return id, true
}
