package adlb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/chunk"
	"repro/internal/faultinject"
	"repro/internal/mpi"
)

// datum is one entry of the distributed data store. Scalars close when
// stored; containers close when their write refcount drops to zero.
// Subscribers are client ranks to be notified (via targeted notification
// work items) when the datum closes.
type datum struct {
	typ         DataType
	set         bool
	val         Value
	subscribers []int
	// container state
	members   map[string]int64
	order     []string
	writeRefs int
}

func (d *datum) closed() bool {
	if d.typ == TypeContainer {
		return d.writeRefs <= 0
	}
	return d.set
}

type targetKey struct {
	typ    int
	target int
}

// parkedReq is one client's deferred Get: the work type it wants and
// whether delivery should be leased.
type parkedReq struct {
	typ    int
	leased bool
}

// lease tracks one work item handed to a client under a lease. The item
// is kept server-side until the client settles the lease (implicitly by
// its next Get, or explicitly via Fail) or departs, at which point the
// item can be requeued with its priority preserved.
type lease struct {
	w      workItem
	client int
}

// server implements the ADLB server role: work queues, parked client
// requests, inter-server work stealing, the distributed data store, and
// Safra's termination-detection algorithm over the server ring.
type server struct {
	c   *mpi.Comm
	cfg Config
	l   Layout
	idx int // server index in [0, Servers)

	nClients int // clients assigned to this server (static layout)
	// known is the dynamic client roster in elastic mode: clients
	// register on their first RPC to their home server. nil when the
	// config is not elastic.
	known map[int]bool

	untargeted map[int]*workQueue
	targeted   map[targetKey]*workQueue
	parked     map[int]parkedReq // client rank -> deferred Get
	parkOrder  []int             // FIFO of parked client ranks
	departed   map[int]bool      // clients told NO_MORE_WORK; targeted queues GC'd
	pinned     map[int]bool      // long-lived clients holding the world open (see Client.Pin)

	leases    map[int64]lease // outstanding leased work, by lease id
	nextLease int64

	// Watchdog state: consecutive loop iterations without a client RPC
	// or work-bearing server message. See checkStalled.
	idle     int
	progress bool

	store  map[int64]*datum
	nextID int64
	// scratch is the reusable column buffer behind opRetrieveChunk
	// responses (the server loop is single-goroutine, so one is enough).
	scratch chunk.Chunk

	// Safra termination detection state.
	black      bool  // this server's colour
	mcount     int64 // counted messages sent minus received
	haveToken  bool
	tokenQ     int64
	tokenBlack bool
	roundOpen  bool // master only: a token is circulating

	stealOut     bool // a steal request is outstanding
	stealRR      int  // round-robin victim cursor
	stealBackoff int  // ticks to wait between steals after empty responses
	stealWait    int  // remaining ticks before the next steal attempt
	draining     bool
	doneCount    int // clients that have received NO_MORE_WORK
	selfHalted   bool
}

func newServer(c *mpi.Comm, cfg Config, l Layout) *server {
	idx := l.ServerIndex(c.Rank())
	s := &server{
		c:          c,
		cfg:        cfg,
		l:          l,
		idx:        idx,
		nClients:   l.clientsOfServer(idx),
		untargeted: make(map[int]*workQueue),
		targeted:   make(map[targetKey]*workQueue),
		parked:     make(map[int]parkedReq),
		departed:   make(map[int]bool),
		pinned:     make(map[int]bool),
		leases:     make(map[int64]lease),
		store:      make(map[int64]*datum),
		nextID:     int64(l.Servers + idx), // ids ≡ idx (mod Servers), skipping id 0
		stealRR:    (idx + 1) % l.Servers,
	}
	if cfg.Elastic {
		s.known = make(map[int]bool)
		// Hub-local clients (engines) always run: pre-register them so a
		// quiet worker-only roster can't satisfy termination before the
		// first engine RPC arrives.
		for r := 0; r < cfg.StaticClients && r < l.Clients(); r++ {
			if l.ServerOf(r) == c.Rank() {
				s.known[r] = true
			}
		}
	}
	return s
}

// clientCount is the number of clients this server is responsible for:
// the static layout assignment normally, or the registered roster in
// elastic mode. Every exit/termination condition (run-loop drain, the
// hang watchdog, Safra quiescence) closes over it, so an elastic run
// terminates against the clients that actually showed up rather than the
// world's worker-slot capacity.
func (s *server) clientCount() int {
	if s.known != nil {
		return len(s.known)
	}
	return s.nClients
}

func (s *server) stats() *Stats { return s.cfg.Stats }

func (s *server) run() error {
	// Whatever ends this loop — clean drain, internal error, or an
	// injected crash — clients still parked in Get must be unblocked with
	// an error response, or they hang in Recv forever (their Gets are
	// synchronous and the dead server would never answer).
	defer s.releaseParked()
	tick := s.cfg.tick()
	for {
		data, st, ok, err := s.c.RecvTimeout(mpi.AnySource, mpi.AnyTag, tick)
		if err != nil {
			return err
		}
		if ok {
			if err := s.dispatch(data, st); err != nil {
				s.c.World().Abort(err)
				return err
			}
			if err := faultinject.At(faultinject.SiteServerLoop); err != nil {
				if faultinject.IsCrash(err) {
					// Simulated silent server death: exit without draining
					// or aborting the world.
					return nil
				}
				s.c.World().Abort(err)
				return err
			}
		}
		if s.selfHalted && s.doneCount >= s.clientCount() {
			s.gaugeUnfilled()
			return nil
		}
		if !s.draining {
			s.housekeeping()
			if s.progress {
				s.progress = false
				s.idle = 0
			} else {
				s.idle++
			}
			if err := s.checkStalled(); err != nil {
				s.c.World().Abort(err)
				return err
			}
		}
	}
}

// releaseParked answers every client still parked in Get with an error.
// After a normal drain the parked set is empty and this is a no-op; it
// matters when the server loop exits early (internal error, injected
// crash): without it, parked clients would deadlock the run instead of
// returning (nil, false, err).
func (s *server) releaseParked() {
	for client := range s.parked {
		// Best-effort: the world may already be aborting.
		_ = s.respondError(client, fmt.Sprintf(
			"adlb: server %d shut down while client %d was parked in Get", s.idx, client))
	}
	s.parked = make(map[int]parkedReq)
	s.parkOrder = nil
}

// gaugeUnfilled records, at clean drain, how many data-store entries
// never closed. A run that recovered from task failures must leave this
// at zero: a leaked write refcount after a contained panic would show up
// here as a permanently open container.
func (s *server) gaugeUnfilled() {
	if s.stats() == nil {
		return
	}
	n := 0
	for _, dm := range s.store {
		if !dm.closed() {
			n++
		}
	}
	if n > 0 {
		s.stats().UnfilledTDs.Add(int64(n))
	}
}

// checkStalled is the hang watchdog: when every assigned client is
// parked or departed, yet work is still queued (or leases are still
// outstanding) and nothing has arrived for watchdogTicks loop
// iterations, no TD can ever make progress — the demand for the queued
// types is gone. Abort with a diagnostic naming the stranded work and
// parked ranks instead of deadlocking. Mid-task clients (neither parked
// nor departed) suppress the watchdog: they may yet produce progress.
func (s *server) checkStalled() error {
	limit := s.cfg.watchdogTicks()
	if limit <= 0 || s.idle < limit {
		return nil
	}
	if len(s.parked)+s.doneCount < s.clientCount() {
		// Someone is mid-task (e.g. a long-running leaf); not a hang.
		s.idle = 0
		return nil
	}
	queued := 0
	byType := make(map[int]int)
	for t, q := range s.untargeted {
		queued += q.len()
		byType[t] += q.len()
	}
	for k, q := range s.targeted {
		queued += q.len()
		byType[k.typ] += q.len()
	}
	if queued == 0 && len(s.leases) == 0 {
		// Idle but healthy: termination detection will finish the run.
		s.idle = 0
		return nil
	}
	var types []string
	for t, n := range byType {
		types = append(types, fmt.Sprintf("type %d: %d item(s)", t, n))
	}
	sort.Strings(types)
	var parked []string
	for _, r := range s.parkOrder {
		if req, ok := s.parked[r]; ok {
			parked = append(parked, fmt.Sprintf("rank %d (wants type %d)", r, req.typ))
		}
	}
	var departed []int
	for r := range s.departed {
		departed = append(departed, r)
	}
	sort.Ints(departed)
	unfilled := 0
	for _, dm := range s.store {
		if !dm.closed() {
			unfilled++
		}
	}
	return fmt.Errorf("adlb: server %d: hang detected — no progress for %d ticks with work stranded: "+
		"queued [%s], %d outstanding lease(s), %d unfilled TD(s); parked clients [%s], departed clients %v",
		s.idx, s.idle, strings.Join(types, "; "), len(s.leases), unfilled,
		strings.Join(parked, ", "), departed)
}

// housekeeping runs between messages: retries steals, forwards or
// initiates termination tokens.
func (s *server) housekeeping() {
	if len(s.parked) > 0 && !s.stealOut {
		if s.stealWait > 0 {
			s.stealWait--
		} else {
			s.maybeSteal()
		}
	}
	if s.haveToken && s.quiet() {
		s.forwardToken()
	}
	if s.idx == 0 && !s.roundOpen && s.quiet() && (s.known == nil || len(s.known) > 0) {
		// In elastic mode an empty roster is pre-start, not quiescence:
		// rank 0 (an engine, home-served by the master) always registers
		// before real work exists, so gating on a non-empty roster only
		// delays the first token round past startup.
		s.startTokenRound()
	}
}

// quiet reports whether this server is locally passive: every assigned
// client is parked in Get or has departed, all queues are empty, and no
// steal is pending. Departed clients count as passive — a client that
// crashed with leases outstanding must not block termination forever
// (its reclaimed work is covered by the queue checks). Pinned clients
// are the opposite: while any long-lived client holds a pin, this
// server never reports passive, so termination tokens neither start
// here nor pass through — an idle serving world stays up until its
// gateways Leave.
func (s *server) quiet() bool {
	if len(s.pinned) > 0 {
		return false
	}
	if len(s.parked)+s.doneCount != s.clientCount() || s.stealOut {
		return false
	}
	for _, q := range s.untargeted {
		if q.len() > 0 {
			return false
		}
	}
	for _, q := range s.targeted {
		if q.len() > 0 {
			return false
		}
	}
	return true
}

func (s *server) dispatch(data []byte, st mpi.Status) error {
	d := &decoder{buf: data}
	op := d.u8()
	switch st.Tag {
	case tagRequest:
		err := s.handleRequest(op, d, st.Source)
		// Request frames are recycled once handled — except for store-ish
		// ops, whose decoded value bytes alias the frame (the zero-copy
		// store: datums keep views into the request instead of copies),
		// making the frame's lifetime the datum's.
		if !retainsRequestFrame(op) {
			s.c.Release(data)
		}
		return err
	case tagServer:
		// Server-to-server frames never leak aliases: work-item payloads
		// are copied at decode (they outlive frames in queues and leases).
		err := s.handleServer(op, d, st.Source)
		s.c.Release(data)
		return err
	}
	return fmt.Errorf("adlb: server %d: unexpected tag %d from %d", s.idx, st.Tag, st.Source)
}

// retainsRequestFrame reports whether handling op stores slices that
// alias the request frame, pinning it for the life of the data store.
func retainsRequestFrame(op uint8) bool {
	switch op {
	case opStore, opStoreVector, opStoreChunk:
		return true
	}
	return false
}

// ---------- client RPCs ----------

func (s *server) respond(client int, build func(*encoder)) error {
	e := getEncoder()
	build(e)
	frame, err := e.frame()
	if err != nil {
		putEncoder(e)
		return err
	}
	err = s.c.Send(client, tagResponse, frame)
	putEncoder(e)
	return err
}

func (s *server) respondError(client int, msg string) error {
	return s.respond(client, func(e *encoder) {
		e.u8(stError)
		e.str(msg)
	})
}

func (s *server) handleRequest(op uint8, d *decoder, client int) error {
	// Any client RPC is progress for the hang watchdog.
	s.progress = true
	// Elastic registration: a client joins this server's roster on its
	// first RPC — but only on its home server. Data ops route by id owner
	// and may land on any server; counting those would inflate rosters
	// with clients whose Gets (and eventual departure) happen elsewhere.
	if s.known != nil && s.l.ServerOf(client) == s.c.Rank() {
		s.known[client] = true
	}
	switch op {
	case opPut:
		return s.handlePut(d, client)
	case opGet:
		return s.handleGet(d, client)
	case opFail:
		return s.handleFail(d, client)
	case opLeave:
		return s.handleLeave(d, client)
	case opPin:
		return s.handlePin(d, client)
	case opUnique:
		return s.handleUnique(d, client)
	case opCreate, opStore, opRetrieve, opSubscribe, opInsert, opLookup,
		opEnumerate, opWriteRefcount, opExists, opTypeOf,
		opRetrieveBatch, opStoreVector, opRetrieveChunk, opStoreChunk:
		if s.stats() != nil {
			s.stats().DataOps.Add(1)
		}
		return s.handleData(op, d, client)
	}
	return fmt.Errorf("adlb: server %d: unknown opcode %d from client %d", s.idx, op, client)
}

func (s *server) handlePut(d *decoder, client int) error {
	w := decodeWorkItem(d)
	if err := d.finish("put request"); err != nil {
		return err
	}
	if w.Type < 0 || w.Type >= s.cfg.Types {
		return s.respondError(client, fmt.Sprintf("put: invalid work type %d", w.Type))
	}
	if w.Target != AnyRank {
		if w.Target < 0 || w.Target >= s.l.Clients() {
			return s.respondError(client, fmt.Sprintf("put: invalid target rank %d", w.Target))
		}
		if err := faultinject.At(faultinject.SitePutTargeted); err != nil {
			return s.respondError(client, err.Error())
		}
		owner := s.l.ServerOf(w.Target)
		if owner != s.c.Rank() {
			// Forward to the target's server; counted for Safra.
			if err := s.sendServer(owner, sopPutForward, true, func(e *encoder) {
				encodeWorkItem(e, w)
			}); err != nil {
				return err
			}
			if s.stats() != nil {
				s.stats().PutsForwarded.Add(1)
			}
			return s.respond(client, func(e *encoder) { e.u8(stOK) })
		}
	}
	s.acceptWork(w)
	if s.stats() != nil {
		s.stats().PutsLocal.Add(1)
	}
	return s.respond(client, func(e *encoder) { e.u8(stOK) })
}

// acceptWork enqueues w and immediately matches parked clients against
// the queue. Enqueue-then-match (rather than handing w itself to a
// parked client) makes delivery priority-aware by construction: a parked
// client always receives the highest-priority queued item, never merely
// the most recently arrived one.
func (s *server) acceptWork(w workItem) {
	if !s.enqueue(w) {
		return
	}
	s.matchParked(w.Type, w.Target)
}

// enqueue adds w to the appropriate queue (no delivery). It reports
// whether the item was queued; targeted items at departed clients are
// dropped and counted instead of stranded.
func (s *server) enqueue(w workItem) bool {
	if w.Target != AnyRank {
		if s.departed[w.Target] {
			// The target has been told NO_MORE_WORK and will never Get
			// again; queueing would strand the item (and its payload)
			// until process exit. Drop it, visibly.
			if s.stats() != nil {
				s.stats().TargetedDropped.Add(1)
			}
			return false
		}
		k := targetKey{typ: w.Type, target: w.Target}
		q := s.targeted[k]
		if q == nil {
			q = &workQueue{}
			s.targeted[k] = q
		}
		q.push(w)
		return true
	}
	q := s.untargeted[w.Type]
	if q == nil {
		q = &workQueue{}
		s.untargeted[w.Type] = q
	}
	q.push(w)
	return true
}

// matchParked hands queued items of (typ, target) to matching parked
// clients, longest-parked client first, highest-priority item first
// (priority-aware parked matching: when a batch — e.g. a steal response
// — lands while clients are parked, each client must receive the best
// queued item, not the batch's arrival order).
func (s *server) matchParked(typ, target int) {
	if target != AnyRank {
		k := targetKey{typ: typ, target: target}
		q := s.targeted[k]
		if q == nil {
			return
		}
		if req, ok := s.parked[target]; ok && req.typ == typ {
			if w, ok := q.pop(); ok {
				s.deliver(target, w)
			}
		}
		if q.len() == 0 {
			delete(s.targeted, k)
		}
		return
	}
	q := s.untargeted[typ]
	if q == nil {
		return
	}
	for q.len() > 0 {
		client, ok := -1, false
		for _, r := range s.parkOrder {
			if req, p := s.parked[r]; p && req.typ == typ {
				client, ok = r, true
				break
			}
		}
		if !ok {
			return
		}
		w, _ := q.pop()
		s.deliver(client, w)
	}
}

// deliver answers a parked (or newly parked) client's Get with work.
// The client leaves both the parked map and the park FIFO here: leaving
// stale FIFO entries behind (as targeted deliveries and notifications
// once did) lets a client that re-parks inherit its old, earlier queue
// position, so the earliest-ever-parked rank wins every untargeted
// dispatch and the rest starve.
func (s *server) deliver(client int, w workItem) {
	req := s.parked[client]
	delete(s.parked, client)
	s.unpark(client)
	s.serve(client, req.leased, w)
}

// serve answers a Get (parked or direct) with a work item, minting a
// lease when the client asked for one.
func (s *server) serve(client int, leased bool, w workItem) {
	if s.stats() != nil {
		s.stats().GetsServed.Add(1)
	}
	if err := faultinject.At(faultinject.SiteGetDeliver); err != nil {
		if !faultinject.IsCrash(err) {
			// Requeue so the injected delivery failure loses no work, then
			// surface the fault to the requesting client.
			s.enqueue(w)
			if rerr := s.respondError(client, err.Error()); rerr != nil {
				s.c.World().Abort(rerr)
			}
			return
		}
		s.c.World().Abort(err)
		return
	}
	var id int64
	if leased {
		id = s.newLease(client, w)
	}
	err := s.respond(client, func(e *encoder) {
		e.u8(stOK)
		if leased {
			e.i64(id)
		}
		encodeWorkItem(e, w)
	})
	if err != nil {
		s.c.World().Abort(err)
	}
}

// newLease records w as leased to client and returns the lease id.
// Ids are strictly positive and unique per server; 0 means "no lease".
func (s *server) newLease(client int, w workItem) int64 {
	s.nextLease++
	id := s.nextLease
	s.leases[id] = lease{w: w, client: client}
	if s.stats() != nil {
		s.stats().LeasesIssued.Add(1)
	}
	return id
}

// unpark removes client from the park FIFO. Each client appears at most
// once (it is appended only when parking in handleGet, and removed on
// every delivery), so removing the first match suffices.
func (s *server) unpark(client int) {
	for i, r := range s.parkOrder {
		if r == client {
			s.parkOrder = append(s.parkOrder[:i], s.parkOrder[i+1:]...)
			return
		}
	}
}

// clientDeparted records that a client has been handed NO_MORE_WORK and
// garbage-collects its targeted queues: nothing queued for it can ever
// be delivered, so the items (and their payloads) are dropped and
// counted rather than stranded until process exit.
func (s *server) clientDeparted(client int) {
	if s.departed[client] {
		// Idempotent: a client re-Getting after NO_MORE_WORK must not
		// advance doneCount toward the exit condition a second time.
		return
	}
	s.doneCount++
	s.departed[client] = true
	delete(s.pinned, client) // a departed gateway releases its hold on the world
	for k, q := range s.targeted {
		if k.target != client {
			continue
		}
		if s.stats() != nil {
			s.stats().TargetedDropped.Add(int64(q.len()))
		}
		delete(s.targeted, k)
	}
}

func (s *server) handleGet(d *decoder, client int) error {
	typ := int(d.i32())
	flags := d.u8()
	settle := d.i64()
	if err := d.finish("get request"); err != nil {
		return err
	}
	leased := flags&getFlagLeased != 0
	// A non-zero settle id completes the client's previous lease: the
	// task ran to completion, so the retained copy of the item can go.
	// Settlement piggybacks on the next Get rather than costing a
	// dedicated RPC per task. An unknown id is benign (e.g. the lease was
	// already settled by an explicit Fail).
	if settle != 0 {
		delete(s.leases, settle)
	}
	if s.draining {
		s.clientDeparted(client)
		return s.respond(client, func(e *encoder) { e.u8(stNoMoreWork) })
	}
	// Targeted work for this client first. An emptied queue leaves the
	// map immediately: long runs touch many (type, target) pairs, and the
	// map must not accumulate one dead queue per pair ever touched.
	k := targetKey{typ: typ, target: client}
	if q, ok := s.targeted[k]; ok {
		if w, ok := q.pop(); ok {
			if q.len() == 0 {
				delete(s.targeted, k)
			}
			s.serve(client, leased, w)
			return nil
		}
		delete(s.targeted, k)
	}
	if q, ok := s.untargeted[typ]; ok {
		if w, ok := q.pop(); ok {
			s.serve(client, leased, w)
			return nil
		}
	}
	// No work: park the request; the response is deferred.
	s.parked[client] = parkedReq{typ: typ, leased: leased}
	s.parkOrder = append(s.parkOrder, client)
	if s.stats() != nil {
		s.stats().GetsParked.Add(1)
	}
	if !s.stealOut {
		s.maybeSteal()
	}
	return nil
}

// handleFail settles a lease as failed: the item is requeued (bounded by
// the retry budget, priority preserved) or poisoned. Poisoning returns a
// run-ending error rather than a response — the task's outputs will
// never be stored, so every downstream rule would hang; surfacing the
// original failure reason beats deadlocking on it.
func (s *server) handleFail(d *decoder, client int) error {
	id := d.i64()
	reason := d.str()
	retriable := d.boolean()
	if err := d.finish("fail request"); err != nil {
		return err
	}
	le, ok := s.leases[id]
	if !ok {
		return s.respondError(client, fmt.Sprintf("fail: unknown lease %d", id))
	}
	delete(s.leases, id)
	if err := s.requeueOrPoison(le.w, reason, retriable); err != nil {
		return err
	}
	return s.respond(client, func(e *encoder) { e.u8(stOK) })
}

// handlePin registers a long-lived client: while any pin is held on this
// server, quiet() stays false, so Safra termination neither initiates
// here nor passes a token through — an idle serving world keeps running.
// The pin is released by the client's departure (Leave or NO_MORE_WORK).
func (s *server) handlePin(d *decoder, client int) error {
	if err := d.finish("pin request"); err != nil {
		return err
	}
	s.pinned[client] = true
	return s.respond(client, func(e *encoder) { e.u8(stOK) })
}

// handleLeave processes a voluntary or simulated-crash departure: every
// lease held by the client is reclaimed and requeued (or poisoned if its
// budget is spent), and the client is unregistered so termination
// detection treats it as passive from now on.
func (s *server) handleLeave(d *decoder, client int) error {
	if err := d.finish("leave request"); err != nil {
		return err
	}
	var ids []int64
	for id, le := range s.leases {
		if le.client == client {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		le := s.leases[id]
		delete(s.leases, id)
		if s.stats() != nil {
			s.stats().LeasesReclaimed.Add(1)
		}
		if le.w.Target == client {
			// The item was pinned to the rank that just died; requeueing it
			// still targeted would drop it as targeted-at-departed. Any
			// surviving rank may run it.
			le.w.Target = AnyRank
		}
		reason := fmt.Sprintf("owning client %d departed mid-task", client)
		if err := s.requeueOrPoison(le.w, reason, true); err != nil {
			return err
		}
	}
	if _, wasParked := s.parked[client]; wasParked {
		delete(s.parked, client)
		s.unpark(client)
	}
	s.clientDeparted(client)
	return s.respond(client, func(e *encoder) { e.u8(stOK) })
}

// requeueOrPoison is the retry policy: a retriable failure within budget
// goes back in the queue with its priority preserved and its attempt
// count bumped; anything else is poisoned — counted, and surfaced as a
// run-ending error naming the task.
func (s *server) requeueOrPoison(w workItem, reason string, retriable bool) error {
	if retriable && w.Attempts < s.cfg.maxRetries() {
		w.Attempts++
		if s.stats() != nil {
			s.stats().Requeued.Add(1)
		}
		s.acceptWork(w)
		return nil
	}
	if s.stats() != nil {
		s.stats().Poisoned.Add(1)
	}
	kind := "not retriable"
	if retriable {
		kind = fmt.Sprintf("retry budget of %d exhausted", s.cfg.maxRetries())
	}
	return fmt.Errorf("adlb: task poisoned after %d attempt(s) (%s): %s\n  task: %.200q",
		w.Attempts+1, kind, reason, w.Payload)
}

func (s *server) handleUnique(d *decoder, client int) error {
	count := int64(d.i32())
	if err := d.finish("unique request"); err != nil {
		return err
	}
	if count < 1 {
		count = 1
	}
	start := s.nextID
	s.nextID += count * int64(s.l.Servers)
	return s.respond(client, func(e *encoder) {
		e.u8(stOK)
		e.i64(start)
		e.i32(int32(s.l.Servers)) // stride
	})
}

// ---------- data store ----------

func (s *server) handleData(op uint8, d *decoder, client int) error {
	switch op {
	case opCreate:
		id := d.i64()
		typ := DataType(d.u8())
		if err := d.finish("create request"); err != nil {
			return err
		}
		if _, exists := s.store[id]; exists {
			return s.respondError(client, fmt.Sprintf("create: id %d already exists", id))
		}
		dm := &datum{typ: typ}
		if typ == TypeContainer {
			dm.members = make(map[string]int64)
			dm.writeRefs = 1
		}
		s.store[id] = dm
		return s.respond(client, func(e *encoder) { e.u8(stOK) })

	case opStore:
		id := d.i64()
		v := decodeValue(d)
		if err := d.finish("store request"); err != nil {
			return err
		}
		dm, ok := s.store[id]
		if !ok {
			return s.respondError(client, fmt.Sprintf("store: no such id %d", id))
		}
		if dm.set {
			return s.respondError(client, fmt.Sprintf("store: id %d already set (single-assignment violation)", id))
		}
		if dm.typ == TypeContainer {
			return s.respondError(client, fmt.Sprintf("store: id %d is a container", id))
		}
		if v.Type != dm.typ && dm.typ != TypeVoid {
			return s.respondError(client, fmt.Sprintf("store: id %d is %v, value is %v", id, dm.typ, v.Type))
		}
		dm.val = v
		dm.set = true
		s.notifyAll(dm, id)
		return s.respond(client, func(e *encoder) { e.u8(stOK) })

	case opRetrieve:
		id := d.i64()
		if err := d.finish("retrieve request"); err != nil {
			return err
		}
		dm, ok := s.store[id]
		if !ok {
			return s.respond(client, func(e *encoder) { e.u8(stNotFound) })
		}
		if !dm.set && dm.typ != TypeContainer {
			return s.respondError(client, fmt.Sprintf("retrieve: id %d is unset", id))
		}
		return s.respond(client, func(e *encoder) {
			e.u8(stOK)
			encodeValue(e, dm.val)
		})

	case opSubscribe:
		id := d.i64()
		rank := int(d.i32())
		if err := d.finish("subscribe request"); err != nil {
			return err
		}
		dm, ok := s.store[id]
		if !ok {
			return s.respondError(client, fmt.Sprintf("subscribe: no such id %d", id))
		}
		if dm.closed() {
			return s.respond(client, func(e *encoder) {
				e.u8(stOK)
				e.boolean(true) // already closed
			})
		}
		dm.subscribers = append(dm.subscribers, rank)
		return s.respond(client, func(e *encoder) {
			e.u8(stOK)
			e.boolean(false)
		})

	case opInsert:
		cid := d.i64()
		sub := d.str()
		member := d.i64()
		if err := d.finish("insert request"); err != nil {
			return err
		}
		dm, ok := s.store[cid]
		if !ok || dm.typ != TypeContainer {
			return s.respondError(client, fmt.Sprintf("insert: id %d is not a container", cid))
		}
		if dm.closed() {
			return s.respondError(client, fmt.Sprintf("insert: container %d is closed", cid))
		}
		if _, dup := dm.members[sub]; dup {
			return s.respondError(client, fmt.Sprintf("insert: container %d already has subscript %q", cid, sub))
		}
		dm.members[sub] = member
		dm.order = append(dm.order, sub)
		return s.respond(client, func(e *encoder) { e.u8(stOK) })

	case opLookup:
		cid := d.i64()
		sub := d.str()
		createType := DataType(d.u8()) // 0 = do not create
		if err := d.finish("lookup request"); err != nil {
			return err
		}
		dm, ok := s.store[cid]
		if !ok || dm.typ != TypeContainer {
			return s.respondError(client, fmt.Sprintf("lookup: id %d is not a container", cid))
		}
		if m, ok := dm.members[sub]; ok {
			return s.respond(client, func(e *encoder) {
				e.u8(stOK)
				e.i64(m)
				e.boolean(false)
			})
		}
		if createType == 0 {
			return s.respond(client, func(e *encoder) { e.u8(stNotFound) })
		}
		if dm.closed() {
			return s.respondError(client, fmt.Sprintf("lookup: container %d closed without subscript %q", cid, sub))
		}
		// Create an owner-local placeholder TD for the member.
		id := s.nextID
		s.nextID += int64(s.l.Servers)
		pdm := &datum{typ: createType}
		if createType == TypeContainer {
			pdm.members = make(map[string]int64)
			pdm.writeRefs = 1
		}
		s.store[id] = pdm
		dm.members[sub] = id
		dm.order = append(dm.order, sub)
		return s.respond(client, func(e *encoder) {
			e.u8(stOK)
			e.i64(id)
			e.boolean(true)
		})

	case opEnumerate:
		cid := d.i64()
		if err := d.finish("enumerate request"); err != nil {
			return err
		}
		dm, ok := s.store[cid]
		if !ok || dm.typ != TypeContainer {
			return s.respondError(client, fmt.Sprintf("enumerate: id %d is not a container", cid))
		}
		return s.respond(client, func(e *encoder) {
			e.u8(stOK)
			e.u32(uint32(len(dm.order)))
			for _, sub := range dm.order {
				e.str(sub)
				e.i64(dm.members[sub])
			}
		})

	case opWriteRefcount:
		id := d.i64()
		delta := int(d.i32())
		if err := d.finish("refcount request"); err != nil {
			return err
		}
		dm, ok := s.store[id]
		if !ok {
			return s.respondError(client, fmt.Sprintf("refcount: no such id %d", id))
		}
		if dm.typ != TypeContainer {
			return s.respondError(client, fmt.Sprintf("refcount: id %d is not a container", id))
		}
		wasClosed := dm.closed()
		dm.writeRefs += delta
		if dm.writeRefs < 0 {
			return s.respondError(client, fmt.Sprintf("refcount: id %d dropped below zero", id))
		}
		if !wasClosed && dm.closed() {
			s.notifyAll(dm, id)
		}
		return s.respond(client, func(e *encoder) { e.u8(stOK) })

	case opExists:
		id := d.i64()
		if err := d.finish("exists request"); err != nil {
			return err
		}
		dm, ok := s.store[id]
		return s.respond(client, func(e *encoder) {
			e.u8(stOK)
			e.boolean(ok && dm.closed())
		})

	case opTypeOf:
		id := d.i64()
		if err := d.finish("typeof request"); err != nil {
			return err
		}
		dm, ok := s.store[id]
		if !ok {
			return s.respond(client, func(e *encoder) { e.u8(stNotFound) })
		}
		return s.respond(client, func(e *encoder) {
			e.u8(stOK)
			e.u8(uint8(dm.typ))
		})

	case opRetrieveBatch:
		// Bulk gather: all requested ids are owned here (the client
		// grouped by owner), so the whole lookup is local and the reply
		// carries every value in one frame.
		n := int(d.u32())
		if d.err == nil && (n < 0 || n > (len(d.buf)-d.off)/8) {
			// Division keeps the bound overflow-free on 32-bit ints; a
			// claimed count beyond the frame is malformed input, not an
			// allocation request.
			d.fail("retrieve_batch ids")
		}
		if d.err != nil {
			return d.err
		}
		ids := make([]int64, n)
		for i := range ids {
			ids[i] = d.i64()
		}
		if err := d.finish("retrieve_batch request"); err != nil {
			return err
		}
		vals := make([]Value, n)
		for i, id := range ids {
			dm, ok := s.store[id]
			if !ok {
				return s.respondError(client, fmt.Sprintf("retrieve_batch: no such id %d", id))
			}
			if !dm.set && dm.typ != TypeContainer {
				return s.respondError(client, fmt.Sprintf("retrieve_batch: id %d is unset", id))
			}
			vals[i] = dm.val
		}
		return s.respond(client, func(e *encoder) {
			e.u8(stOK)
			e.u32(uint32(n))
			for _, v := range vals {
				encodeValue(e, v)
			}
		})

	case opStoreVector:
		// Bulk scatter into a container: create one owner-local closed
		// datum per element and insert it at its index, all in one RPC.
		// The write refcount is the caller's to manage, as with Insert.
		cid := d.i64()
		n := int(d.u32())
		if d.err == nil && (n < 0 || n > len(d.buf)) {
			// Each encoded value needs >= 5 bytes; an element count
			// beyond the frame length is a malformed frame, not an
			// allocation request.
			d.fail("store_vector count")
		}
		if d.err != nil {
			return d.err
		}
		vals := make([]Value, 0, n)
		for i := 0; i < n; i++ {
			vals = append(vals, decodeValue(d))
			if d.err != nil {
				return d.err
			}
		}
		if err := d.finish("store_vector request"); err != nil {
			return err
		}
		dm, ok := s.store[cid]
		if !ok || dm.typ != TypeContainer {
			return s.respondError(client, fmt.Sprintf("store_vector: id %d is not a container", cid))
		}
		if dm.closed() {
			return s.respondError(client, fmt.Sprintf("store_vector: container %d is closed", cid))
		}
		base := len(dm.order)
		// Validate every target subscript before mutating anything, so a
		// failed StoreVector is all-or-nothing: partial member creation
		// would leave the container in a layout no call described.
		subs := make([]string, len(vals))
		for i := range vals {
			subs[i] = strconv.Itoa(base + i)
			if _, dup := dm.members[subs[i]]; dup {
				return s.respondError(client, fmt.Sprintf("store_vector: container %d already has subscript %q", cid, subs[i]))
			}
		}
		// One slab allocation for the whole batch instead of one datum
		// allocation per element; the decoded value bytes alias the
		// (retained) request frame, so nothing per-element is copied.
		slab := make([]datum, len(vals))
		for i, v := range vals {
			id := s.nextID
			s.nextID += int64(s.l.Servers)
			slab[i] = datum{typ: v.Type, set: true, val: v}
			s.store[id] = &slab[i]
			dm.members[subs[i]] = id
			dm.order = append(dm.order, subs[i])
		}
		return s.respond(client, func(e *encoder) { e.u8(stOK) })

	case opRetrieveChunk:
		// Columnar gather: like opRetrieveBatch, but the reply is one
		// chunk frame — contiguous typed columns — instead of N per-value
		// encodings. The scratch chunk is reused across RPCs (the server
		// loop is single-goroutine), so a steady gather stream allocates
		// nothing here.
		n := int(d.u32())
		if d.err == nil && (n < 0 || n > (len(d.buf)-d.off)/8) {
			d.fail("retrieve_chunk ids")
		}
		if d.err != nil {
			return d.err
		}
		ids := make([]int64, n)
		for i := range ids {
			ids[i] = d.i64()
		}
		if err := d.finish("retrieve_chunk request"); err != nil {
			return err
		}
		s.scratch.Reset()
		for _, id := range ids {
			dm, ok := s.store[id]
			if !ok {
				return s.respondError(client, fmt.Sprintf("retrieve_chunk: no such id %d", id))
			}
			if !dm.set {
				return s.respondError(client, fmt.Sprintf("retrieve_chunk: id %d is unset", id))
			}
			v := dm.val
			switch v.Type {
			case TypeInteger:
				if err := s.scratch.AppendNumRaw(chunk.KindInt, v.Bytes); err != nil {
					return s.respondError(client, fmt.Sprintf("retrieve_chunk: id %d: %v", id, err))
				}
			case TypeFloat:
				if err := s.scratch.AppendNumRaw(chunk.KindFloat, v.Bytes); err != nil {
					return s.respondError(client, fmt.Sprintf("retrieve_chunk: id %d: %v", id, err))
				}
			case TypeString:
				s.scratch.AppendBytes(v.Bytes)
			case TypeBlob:
				s.scratch.AppendBlob(v.Bytes, v.Elem, v.Dims)
			case TypeVoid:
				s.scratch.AppendVoid()
			default:
				return s.respondError(client, fmt.Sprintf("retrieve_chunk: id %d is %v, which has no chunk form", id, dm.typ))
			}
		}
		return s.respond(client, func(e *encoder) {
			e.u8(stOK)
			encodeChunk(e, s.scratch)
		})

	case opStoreChunk:
		// Columnar scatter: the chunk-frame counterpart of opStoreVector.
		// Row payloads alias the (retained) request frame and the datums
		// come from one slab, so the per-element cost is the subscript
		// string and its container map entry — no value copies, no boxes.
		cid := d.i64()
		c := decodeChunk(d)
		if err := d.finish("store_chunk request"); err != nil {
			return err
		}
		dm, ok := s.store[cid]
		if !ok || dm.typ != TypeContainer {
			return s.respondError(client, fmt.Sprintf("store_chunk: id %d is not a container", cid))
		}
		if dm.closed() {
			return s.respondError(client, fmt.Sprintf("store_chunk: container %d is closed", cid))
		}
		n := c.Len()
		base := len(dm.order)
		subs := make([]string, n)
		for i := range subs {
			subs[i] = strconv.Itoa(base + i)
			if _, dup := dm.members[subs[i]]; dup {
				return s.respondError(client, fmt.Sprintf("store_chunk: container %d already has subscript %q", cid, subs[i]))
			}
		}
		slab := make([]datum, n)
		r := c.Reader()
		for i := 0; i < n && r.Next(); i++ {
			dmv := &slab[i]
			dmv.set = true
			switch r.Kind() {
			case chunk.KindVoid:
				dmv.typ = TypeVoid
				dmv.val = Value{Type: TypeVoid}
			case chunk.KindInt:
				dmv.typ = TypeInteger
				dmv.val = Value{Type: TypeInteger, Bytes: r.NumRaw()}
			case chunk.KindFloat:
				dmv.typ = TypeFloat
				dmv.val = Value{Type: TypeFloat, Bytes: r.NumRaw()}
			case chunk.KindString:
				dmv.typ = TypeString
				dmv.val = Value{Type: TypeString, Bytes: r.Bytes()}
			case chunk.KindBlob:
				m := r.Meta()
				dmv.typ = TypeBlob
				dmv.val = Value{Type: TypeBlob, Bytes: r.Bytes(), Dims: m.Dims, Elem: m.Elem}
			}
			id := s.nextID
			s.nextID += int64(s.l.Servers)
			s.store[id] = dmv
			dm.members[subs[i]] = id
			dm.order = append(dm.order, subs[i])
		}
		return s.respond(client, func(e *encoder) { e.u8(stOK) })
	}
	return fmt.Errorf("adlb: unhandled data op %d", op)
}

// notifyAll wraps a close notification for each subscriber into a
// high-priority targeted work item and routes it to the subscriber's
// server. This is how a Store on one rank wakes dataflow rules on another.
func (s *server) notifyAll(dm *datum, id int64) {
	for _, rank := range dm.subscribers {
		w := workItem{
			Type:     s.cfg.NotifyType,
			Priority: notifyPriority,
			Target:   rank,
			Payload:  EncodeNotification(id),
		}
		if err := faultinject.At(faultinject.SitePutTargeted); err != nil {
			s.c.World().Abort(err)
			return
		}
		if s.stats() != nil {
			s.stats().Notifications.Add(1)
		}
		owner := s.l.ServerOf(rank)
		if owner == s.c.Rank() {
			s.acceptWork(w)
			continue
		}
		if err := s.sendServer(owner, sopPutForward, true, func(e *encoder) {
			encodeWorkItem(e, w)
		}); err != nil {
			s.c.World().Abort(err)
			return
		}
	}
	dm.subscribers = nil
}

// notifyPriority outranks ordinary work so dataflow wake-ups preempt
// queued leaf tasks, keeping engines busy generating work.
const notifyPriority = 1 << 20

// ---------- server-to-server ----------

// sendServer sends a server-to-server message. counted marks messages that
// transfer work and therefore participate in Safra's message counting.
// Empty steal traffic is deliberately uncounted: an outstanding steal
// request already makes the requesting server non-quiet (it holds the
// token and blocks the detection round), so only work-bearing messages can
// race with a completing round. Counting empty steal chatter would instead
// livelock detection — retries would keep blackening servers forever.
func (s *server) sendServer(dest int, op uint8, counted bool, build func(*encoder)) error {
	e := getEncoder()
	e.u8(op)
	build(e)
	frame, err := e.frame()
	if err != nil {
		putEncoder(e)
		return err
	}
	if counted {
		s.mcount++
	}
	err = s.c.Send(dest, tagServer, frame)
	putEncoder(e)
	return err
}

func (s *server) handleServer(op uint8, d *decoder, source int) error {
	switch op {
	case sopPutForward:
		s.mcount--
		s.black = true
		s.progress = true
		w := decodeWorkItem(d)
		if err := d.finish("put-forward"); err != nil {
			return err
		}
		s.acceptWork(w)
		if s.stats() != nil {
			s.stats().PutsLocal.Add(1)
		}
		return nil

	case sopStealReq:
		typ := int(d.i32())
		requester := int(d.i32())
		if err := d.finish("steal request"); err != nil {
			return err
		}
		var items []workItem
		if q, ok := s.untargeted[typ]; ok {
			items = q.drainHalf()
		}
		return s.sendServer(s.l.ServerRank(requester), sopStealResp, len(items) > 0, func(e *encoder) {
			e.u32(uint32(len(items)))
			for _, w := range items {
				encodeWorkItem(e, w)
			}
		})

	case sopStealResp:
		n := int(d.u32())
		s.stealOut = false
		if n > 0 {
			s.mcount--
			s.black = true
			s.progress = true
			s.stealBackoff = 0
			if s.stats() != nil {
				s.stats().StealHits.Add(1)
				s.stats().ItemsStolen.Add(int64(n))
			}
		} else if s.stealBackoff < 64 {
			// Empty response: back off exponentially so idle servers stop
			// hammering each other while termination detection proceeds.
			if s.stealBackoff == 0 {
				s.stealBackoff = 1
			} else {
				s.stealBackoff *= 2
			}
		}
		s.stealWait = s.stealBackoff
		// Enqueue the whole batch before matching any parked client:
		// item-by-item acceptance would hand the first-arrived item to
		// the longest-parked client even when a higher-priority sibling
		// is later in the same response.
		touched := map[targetKey]bool{}
		var order []targetKey
		for i := 0; i < n; i++ {
			w := decodeWorkItem(d)
			if d.err != nil {
				return d.err
			}
			if s.enqueue(w) {
				k := targetKey{typ: w.Type, target: w.Target}
				if !touched[k] {
					touched[k] = true
					order = append(order, k)
				}
			}
		}
		if err := d.finish("steal response"); err != nil {
			return err
		}
		for _, k := range order {
			s.matchParked(k.typ, k.target)
		}
		return nil

	case sopToken:
		s.tokenQ = d.i64()
		s.tokenBlack = d.boolean()
		if err := d.finish("token"); err != nil {
			return err
		}
		s.haveToken = true
		if s.quiet() {
			s.forwardToken()
		}
		return nil

	case sopShutdown:
		if err := d.finish("shutdown"); err != nil {
			return err
		}
		s.beginDrain()
		return nil
	}
	return fmt.Errorf("adlb: unhandled server op %d from %d", op, source)
}

// maybeSteal issues one steal request on behalf of parked clients. Victims
// rotate round-robin over the other servers.
func (s *server) maybeSteal() {
	if s.cfg.DisableSteal || s.l.Servers < 2 || len(s.parked) == 0 || s.stealOut {
		return
	}
	// Steal for the type of the longest-parked client.
	typ, ok := -1, false
	for _, r := range s.parkOrder {
		if req, p := s.parked[r]; p {
			typ, ok = req.typ, true
			break
		}
	}
	if !ok {
		return
	}
	victim := s.stealRR
	if victim == s.idx {
		victim = (victim + 1) % s.l.Servers
	}
	s.stealRR = (victim + 1) % s.l.Servers
	s.stealOut = true
	if s.stats() != nil {
		s.stats().StealReqs.Add(1)
	}
	err := s.sendServer(s.l.ServerRank(victim), sopStealReq, false, func(e *encoder) {
		e.i32(int32(typ))
		e.i32(int32(s.idx))
	})
	if err != nil {
		s.c.World().Abort(err)
	}
}

// ---------- Safra termination detection ----------

func (s *server) startTokenRound() {
	if s.l.Servers == 1 {
		// Single server: local quiescence is global (all client RPCs are
		// synchronous, so no in-flight messages can exist).
		s.terminate()
		return
	}
	s.roundOpen = true
	s.black = false
	if s.stats() != nil {
		s.stats().TokenRounds.Add(1)
	}
	err := s.sendServer(s.l.ServerRank(1), sopToken, false, func(e *encoder) {
		e.i64(0)
		e.boolean(false)
	})
	if err != nil {
		s.c.World().Abort(err)
	}
}

func (s *server) forwardToken() {
	if !s.haveToken {
		return
	}
	s.haveToken = false
	if s.idx == 0 {
		// Token completed the ring.
		s.roundOpen = false
		if !s.tokenBlack && !s.black && s.tokenQ+s.mcount == 0 {
			s.terminate()
		}
		// Otherwise a new round starts from housekeeping when quiet.
		return
	}
	q := s.tokenQ + s.mcount
	black := s.tokenBlack || s.black
	s.black = false
	next := (s.idx + 1) % s.l.Servers
	err := s.sendServer(s.l.ServerRank(next), sopToken, false, func(e *encoder) {
		e.i64(q)
		e.boolean(black)
	})
	if err != nil {
		s.c.World().Abort(err)
	}
}

// terminate broadcasts shutdown to all servers (master only) and begins
// the local drain.
func (s *server) terminate() {
	for i := 1; i < s.l.Servers; i++ {
		e := getEncoder()
		e.u8(sopShutdown)
		frame, err := e.frame()
		if err == nil {
			err = s.c.Send(s.l.ServerRank(i), tagServer, frame)
		}
		putEncoder(e)
		if err != nil {
			s.c.World().Abort(err)
			return
		}
	}
	s.beginDrain()
}

// beginDrain answers every parked client with NO_MORE_WORK and arranges
// for the server loop to exit once all assigned clients have been told.
func (s *server) beginDrain() {
	s.draining = true
	for _, r := range s.parkOrder {
		if _, ok := s.parked[r]; !ok {
			continue
		}
		delete(s.parked, r)
		s.clientDeparted(r)
		if err := s.respond(r, func(e *encoder) { e.u8(stNoMoreWork) }); err != nil {
			s.c.World().Abort(err)
			return
		}
	}
	s.parkOrder = nil
	s.selfHalted = true
}

const notifyMagic = 0xD7

// EncodeNotification builds the payload of a data-close notification work
// item. Turbine engines decode these in their Get loop.
func EncodeNotification(id int64) []byte {
	e := &encoder{}
	e.u8(notifyMagic)
	e.i64(id)
	frame, err := e.frame()
	if err != nil {
		// Two fixed-width scalars cannot fail to encode.
		panic(err)
	}
	return frame
}

// DecodeNotification reports whether payload is a data-close notification
// and, if so, the id that closed.
func DecodeNotification(payload []byte) (int64, bool) {
	if len(payload) != 9 || payload[0] != notifyMagic {
		return 0, false
	}
	d := &decoder{buf: payload, off: 1}
	id := d.i64()
	if d.finish("notification") != nil {
		return 0, false
	}
	return id, true
}
