package adlb

// Runtime guard for the Stats/StatsSnapshot pair: every counter added
// to Stats must appear in StatsSnapshot AND be copied by Snapshot().
// Both halves have been forgotten before (a field added to Stats but not
// the snapshot silently reports zero forever). The statsmirror analyzer
// catches the structural half at vet time; this test also proves the
// copy happens.

import (
	"testing"

	"repro/internal/statstest"
)

func TestStatsSnapshotMirrorsEveryCounter(t *testing.T) {
	var st Stats
	statstest.AssertMirror(t, &st, func() any { return st.Snapshot() })
}
