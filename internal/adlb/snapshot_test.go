package adlb

// Reflection guard for the Stats/StatsSnapshot pair: every counter added
// to Stats must appear in StatsSnapshot AND be copied by Snapshot().
// Both halves have been forgotten before (a field added to Stats but not
// the snapshot silently reports zero forever), so this test fails the
// moment either is missed.

import (
	"reflect"
	"sync/atomic"
	"testing"
)

func TestStatsSnapshotMirrorsEveryCounter(t *testing.T) {
	counterType := reflect.TypeOf(atomic.Int64{})
	statsType := reflect.TypeOf(Stats{})
	snapType := reflect.TypeOf(StatsSnapshot{})

	var st Stats
	sv := reflect.ValueOf(&st).Elem()

	// Give every counter a distinct non-zero value via its Add method.
	for i := 0; i < statsType.NumField(); i++ {
		f := statsType.Field(i)
		if !f.IsExported() || f.Type != counterType {
			continue
		}
		snapField, ok := snapType.FieldByName(f.Name)
		if !ok {
			t.Errorf("Stats.%s has no matching field in StatsSnapshot", f.Name)
			continue
		}
		if snapField.Type.Kind() != reflect.Int64 {
			t.Errorf("StatsSnapshot.%s is %v, want int64", f.Name, snapField.Type)
			continue
		}
		sv.Field(i).Addr().MethodByName("Add").Call(
			[]reflect.Value{reflect.ValueOf(int64(i + 1))})
	}
	if t.Failed() {
		return
	}

	snap := st.Snapshot()
	snapVal := reflect.ValueOf(snap)
	for i := 0; i < statsType.NumField(); i++ {
		f := statsType.Field(i)
		if !f.IsExported() || f.Type != counterType {
			continue
		}
		want := int64(i + 1)
		got := snapVal.FieldByName(f.Name).Int()
		if got != want {
			t.Errorf("Snapshot() does not copy Stats.%s: got %d, want %d", f.Name, got, want)
		}
	}
}
