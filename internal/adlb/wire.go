package adlb

import (
	"encoding/binary"
	"fmt"
)

// The ADLB wire format is a compact, hand-rolled binary encoding: the real
// library ships C structs over MPI; we ship length-prefixed fields over the
// simulated transport. All integers are little-endian.

type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}
func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}
func (e *encoder) i32(v int32) { e.u32(uint32(v)) }
func (e *encoder) i64(v int64) { e.u64(uint64(v)) }
func (e *encoder) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}
func (e *encoder) str(v string) { e.bytes([]byte(v)) }
func (e *encoder) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("adlb: wire decode: truncated %s at offset %d", what, d.off)
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail("u8")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i32() int32 { return int32(d.u32()) }
func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail("bytes")
		return nil
	}
	v := d.buf[d.off : d.off+n]
	d.off += n
	return v
}

func (d *decoder) str() string { return string(d.bytes()) }

func (d *decoder) boolean() bool { return d.u8() != 0 }
