package adlb

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// The ADLB wire format is a compact, hand-rolled binary encoding: the real
// library ships C structs over MPI; we ship length-prefixed fields over the
// simulated transport. All integers are little-endian.

// maxFieldBytes bounds the length of a single length-prefixed field. The
// prefix is a u32, so anything longer cannot be framed; the encoder
// rejects it with an error instead of silently truncating the length (and
// thereby corrupting every field after it). A uint64 so the comparison is
// exact on 32-bit platforms (where int(^uint32(0)) would wrap negative);
// a variable only so tests can lower it without allocating 4 GiB payloads.
var maxFieldBytes uint64 = math.MaxUint32

type encoder struct {
	buf []byte
	// err is sticky: the first encoding failure (an unframeable field)
	// poisons the encoder, and callers must check it before sending.
	err error
}

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}
func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}
func (e *encoder) i32(v int32) { e.u32(uint32(v)) }
func (e *encoder) i64(v int64) { e.u64(uint64(v)) }
func (e *encoder) bytes(v []byte) {
	if uint64(len(v)) > maxFieldBytes {
		if e.err == nil {
			e.err = fmt.Errorf("adlb: wire encode: %d-byte field overflows the u32 length prefix", len(v))
		}
		return
	}
	e.u32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}
func (e *encoder) str(v string) {
	if uint64(len(v)) > maxFieldBytes {
		if e.err == nil {
			e.err = fmt.Errorf("adlb: wire encode: %d-byte string overflows the u32 length prefix", len(v))
		}
		return
	}
	e.u32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}
func (e *encoder) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// frame returns the encoded message, or the first encoding error. Every
// send site goes through it so an unframeable field can never reach the
// transport as a corrupted frame.
func (e *encoder) frame() ([]byte, error) {
	if e.err != nil {
		return nil, e.err
	}
	return e.buf, nil
}

// encoderPool recycles encoder scratch across RPCs: the frame is copied
// onto the transport by mpi.Send, so an encoder's buffer is dead the
// moment Send returns and the very next build on the same rank can reuse
// it. Ownership rule: getEncoder -> build -> frame() -> Send -> putEncoder;
// an encoder must not be put back while its frame() result is still
// referenced.
var encoderPool = sync.Pool{New: func() any { return new(encoder) }}

// maxRetainedEncoder bounds the scratch a pooled encoder may keep; a
// larger buffer (a one-off giant frame) is dropped rather than parked.
const maxRetainedEncoder = 32 << 20

func getEncoder() *encoder {
	e := encoderPool.Get().(*encoder)
	e.buf = e.buf[:0]
	e.err = nil
	return e
}

func putEncoder(e *encoder) {
	if cap(e.buf) > maxRetainedEncoder {
		return
	}
	encoderPool.Put(e)
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("adlb: wire decode: truncated %s at offset %d", what, d.off)
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail("u8")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i32() int32 { return int32(d.u32()) }
func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail("bytes")
		return nil
	}
	v := d.buf[d.off : d.off+n]
	d.off += n
	return v
}

func (d *decoder) str() string { return string(d.bytes()) }

func (d *decoder) boolean() bool { return d.u8() != 0 }

// finish reports the first decode error, or an error if decoding left
// trailing bytes unconsumed. A fully decoded message must account for
// every byte of its frame: trailing garbage means the sender and receiver
// disagree about the message layout, and silently ignoring it hides
// framing bugs until they corrupt something subtler.
func (d *decoder) finish(what string) error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("adlb: wire decode: %d trailing byte(s) after %s", len(d.buf)-d.off, what)
	}
	return nil
}
