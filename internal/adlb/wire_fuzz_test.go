package adlb

import (
	"bytes"
	"testing"

	"repro/internal/chunk"
)

// FuzzWireRoundTrip drives the wire codec two ways with the same input:
//
//  1. Arbitrary bytes fed straight to the decoders must never panic —
//     every malformed frame has to surface through decoder.err/finish.
//  2. A message synthesized from the input must encode and decode back to
//     itself (round-trip identity), with finish() accepting the clean
//     frame and rejecting it once a trailing byte is appended.
//
// Run with: go test -fuzz=FuzzWireRoundTrip ./internal/adlb
func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte{}, int64(0), uint8(0))
	f.Add([]byte("payload"), int64(42), uint8(5))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff}, int64(-1), uint8(2))
	e := &encoder{}
	encodeValue(e, Value{Type: TypeBlob, Bytes: []byte{1, 2}, Dims: []int{2, 1}, Elem: 1})
	f.Add(e.buf, int64(7), uint8(6))
	e = &encoder{}
	var seedChunk chunk.Chunk
	seedChunk.AppendInt(1)
	seedChunk.AppendString("s")
	seedChunk.AppendBlob([]byte{3}, 2, []int{1})
	encodeChunk(e, seedChunk)
	f.Add(e.buf, int64(3), uint8(1))

	f.Fuzz(func(t *testing.T, raw []byte, n int64, tag uint8) {
		// 1. Decoder robustness: arbitrary input, all decode shapes.
		for _, run := range []func(d *decoder){
			func(d *decoder) { decodeWorkItem(d) },
			func(d *decoder) { decodeValue(d) },
			func(d *decoder) { d.u8(); d.str(); d.i64(); d.boolean() },
			func(d *decoder) {
				count := int(d.u32())
				for i := 0; i < count && d.err == nil; i++ {
					decodeValue(d)
				}
			},
			func(d *decoder) {
				// Chunk frames: a hostile frame must either decode to a
				// chunk whose invariants hold (Validate ran inside
				// decodeChunk) or set the decoder error — readers over the
				// result must never index out of bounds.
				c := decodeChunk(d)
				if d.err == nil {
					r := c.Reader()
					for r.Next() {
						switch r.Kind() {
						case chunk.KindInt:
							r.Int()
						case chunk.KindFloat:
							r.Float()
						case chunk.KindString:
							r.Bytes()
						case chunk.KindBlob:
							r.Bytes()
							r.Meta()
						}
					}
				}
			},
		} {
			d := &decoder{buf: raw}
			run(d) // must not panic
			_ = d.finish("fuzz")
		}
		DecodeNotification(raw)

		// 2. Round-trip identity for a message built from the input.
		w := workItem{Type: int(int32(n)), Priority: int(tag), Target: int(int32(n >> 32)), Payload: raw}
		v := Value{Type: DataType(tag%7 + 1), Bytes: raw}
		if v.Type == TypeBlob {
			v.Elem = tag
			v.Dims = []int{int(int32(n)), 2}
		}
		e := &encoder{}
		encodeWorkItem(e, w)
		encodeValue(e, v)
		e.i64(n)
		e.boolean(tag&1 == 1)
		frame, err := e.frame()
		if err != nil {
			t.Fatalf("encode failed on plausible message: %v", err)
		}

		d := &decoder{buf: frame}
		gotW := decodeWorkItem(d)
		gotV := decodeValue(d)
		gotN := d.i64()
		gotB := d.boolean()
		if err := d.finish("round trip"); err != nil {
			t.Fatalf("clean round trip rejected: %v", err)
		}
		if gotW.Type != w.Type || gotW.Priority != w.Priority || gotW.Target != w.Target ||
			!bytes.Equal(gotW.Payload, w.Payload) {
			t.Fatalf("work item round trip: got %+v want %+v", gotW, w)
		}
		if gotV.Type != v.Type || !bytes.Equal(gotV.Bytes, v.Bytes) || gotV.Elem != v.Elem ||
			len(gotV.Dims) != len(v.Dims) {
			t.Fatalf("value round trip: got %+v want %+v", gotV, v)
		}
		for i := range v.Dims {
			if gotV.Dims[i] != v.Dims[i] {
				t.Fatalf("dims round trip: got %v want %v", gotV.Dims, v.Dims)
			}
		}
		if gotN != n || gotB != (tag&1 == 1) {
			t.Fatalf("scalar round trip: got %d/%v want %d/%v", gotN, gotB, n, tag&1 == 1)
		}

		// Trailing garbage after the same clean frame must fail loudly.
		d = &decoder{buf: append(append([]byte(nil), frame...), 0x5A)}
		decodeWorkItem(d)
		decodeValue(d)
		d.i64()
		d.boolean()
		if err := d.finish("round trip"); err == nil {
			t.Fatal("trailing garbage accepted")
		}

		// 3. Chunk frame round-trip identity: a chunk synthesized from the
		// input must survive encode -> decode bit-exactly, and reject a
		// trailing byte.
		var ck chunk.Chunk
		ck.AppendInt(n)
		ck.AppendFloat(float64(n) / 3)
		ck.AppendBytes(raw)
		ck.AppendBlob(raw, tag, []int{len(raw), 1})
		ck.AppendVoid()
		e = &encoder{}
		encodeChunk(e, ck)
		frame, err = e.frame()
		if err != nil {
			t.Fatalf("chunk encode failed: %v", err)
		}
		d = &decoder{buf: frame}
		got := decodeChunk(d)
		if err := d.finish("chunk round trip"); err != nil {
			t.Fatalf("clean chunk round trip rejected: %v", err)
		}
		if !bytes.Equal(got.Kinds, ck.Kinds) || !bytes.Equal(got.Num, ck.Num) ||
			!bytes.Equal(got.Raw, ck.Raw) || len(got.Off) != len(ck.Off) ||
			len(got.Meta) != len(ck.Meta) {
			t.Fatalf("chunk round trip: got %+v want %+v", got, ck)
		}
		for i := range ck.Off {
			if got.Off[i] != ck.Off[i] {
				t.Fatalf("chunk offsets: got %v want %v", got.Off, ck.Off)
			}
		}
		for i := range ck.Meta {
			if got.Meta[i].Elem != ck.Meta[i].Elem || len(got.Meta[i].Dims) != len(ck.Meta[i].Dims) {
				t.Fatalf("chunk meta: got %+v want %+v", got.Meta, ck.Meta)
			}
			for j := range ck.Meta[i].Dims {
				if got.Meta[i].Dims[j] != ck.Meta[i].Dims[j] {
					t.Fatalf("chunk dims: got %v want %v", got.Meta[i].Dims, ck.Meta[i].Dims)
				}
			}
		}
		d = &decoder{buf: append(append([]byte(nil), frame...), 0x5A)}
		decodeChunk(d)
		if err := d.finish("chunk round trip"); err == nil {
			t.Fatal("chunk trailing garbage accepted")
		}
	})
}
