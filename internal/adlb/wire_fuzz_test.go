package adlb

import (
	"bytes"
	"testing"
)

// FuzzWireRoundTrip drives the wire codec two ways with the same input:
//
//  1. Arbitrary bytes fed straight to the decoders must never panic —
//     every malformed frame has to surface through decoder.err/finish.
//  2. A message synthesized from the input must encode and decode back to
//     itself (round-trip identity), with finish() accepting the clean
//     frame and rejecting it once a trailing byte is appended.
//
// Run with: go test -fuzz=FuzzWireRoundTrip ./internal/adlb
func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte{}, int64(0), uint8(0))
	f.Add([]byte("payload"), int64(42), uint8(5))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff}, int64(-1), uint8(2))
	e := &encoder{}
	encodeValue(e, Value{Type: TypeBlob, Bytes: []byte{1, 2}, Dims: []int{2, 1}, Elem: 1})
	f.Add(e.buf, int64(7), uint8(6))

	f.Fuzz(func(t *testing.T, raw []byte, n int64, tag uint8) {
		// 1. Decoder robustness: arbitrary input, all decode shapes.
		for _, run := range []func(d *decoder){
			func(d *decoder) { decodeWorkItem(d) },
			func(d *decoder) { decodeValue(d) },
			func(d *decoder) { d.u8(); d.str(); d.i64(); d.boolean() },
			func(d *decoder) {
				count := int(d.u32())
				for i := 0; i < count && d.err == nil; i++ {
					decodeValue(d)
				}
			},
		} {
			d := &decoder{buf: raw}
			run(d) // must not panic
			_ = d.finish("fuzz")
		}
		DecodeNotification(raw)

		// 2. Round-trip identity for a message built from the input.
		w := workItem{Type: int(int32(n)), Priority: int(tag), Target: int(int32(n >> 32)), Payload: raw}
		v := Value{Type: DataType(tag%7 + 1), Bytes: raw}
		if v.Type == TypeBlob {
			v.Elem = tag
			v.Dims = []int{int(int32(n)), 2}
		}
		e := &encoder{}
		encodeWorkItem(e, w)
		encodeValue(e, v)
		e.i64(n)
		e.boolean(tag&1 == 1)
		frame, err := e.frame()
		if err != nil {
			t.Fatalf("encode failed on plausible message: %v", err)
		}

		d := &decoder{buf: frame}
		gotW := decodeWorkItem(d)
		gotV := decodeValue(d)
		gotN := d.i64()
		gotB := d.boolean()
		if err := d.finish("round trip"); err != nil {
			t.Fatalf("clean round trip rejected: %v", err)
		}
		if gotW.Type != w.Type || gotW.Priority != w.Priority || gotW.Target != w.Target ||
			!bytes.Equal(gotW.Payload, w.Payload) {
			t.Fatalf("work item round trip: got %+v want %+v", gotW, w)
		}
		if gotV.Type != v.Type || !bytes.Equal(gotV.Bytes, v.Bytes) || gotV.Elem != v.Elem ||
			len(gotV.Dims) != len(v.Dims) {
			t.Fatalf("value round trip: got %+v want %+v", gotV, v)
		}
		for i := range v.Dims {
			if gotV.Dims[i] != v.Dims[i] {
				t.Fatalf("dims round trip: got %v want %v", gotV.Dims, v.Dims)
			}
		}
		if gotN != n || gotB != (tag&1 == 1) {
			t.Fatalf("scalar round trip: got %d/%v want %d/%v", gotN, gotB, n, tag&1 == 1)
		}

		// Trailing garbage after the same clean frame must fail loudly.
		d = &decoder{buf: append(append([]byte(nil), frame...), 0x5A)}
		decodeWorkItem(d)
		decodeValue(d)
		d.i64()
		d.boolean()
		if err := d.finish("round trip"); err == nil {
			t.Fatal("trailing garbage accepted")
		}
	})
}
