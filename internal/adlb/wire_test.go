package adlb

import (
	"strings"
	"testing"
)

// The encoder must reject fields whose length cannot be framed in the u32
// prefix instead of silently truncating the length and corrupting every
// field after it. maxFieldBytes is lowered so the regression does not
// need a >4 GiB allocation; the check itself is length-based only.
func TestEncoderRejectsOversizedField(t *testing.T) {
	saved := maxFieldBytes
	maxFieldBytes = 16
	defer func() { maxFieldBytes = saved }()

	t.Run("bytes", func(t *testing.T) {
		e := &encoder{}
		e.bytes(make([]byte, 17))
		if e.err == nil {
			t.Fatal("oversized bytes field accepted")
		}
		if _, err := e.frame(); err == nil {
			t.Fatal("frame() returned a corrupted frame")
		}
	})
	t.Run("str", func(t *testing.T) {
		e := &encoder{}
		e.str(strings.Repeat("x", 17))
		if e.err == nil {
			t.Fatal("oversized string field accepted")
		}
		if _, err := e.frame(); err == nil {
			t.Fatal("frame() returned a corrupted frame")
		}
	})
	t.Run("error-is-sticky", func(t *testing.T) {
		e := &encoder{}
		e.bytes(make([]byte, 17))
		first := e.err
		e.str(strings.Repeat("y", 17))
		if e.err != first {
			t.Fatal("second failure overwrote the first error")
		}
	})
	t.Run("at-limit-ok", func(t *testing.T) {
		e := &encoder{}
		e.bytes(make([]byte, 16))
		e.str(strings.Repeat("x", 16))
		frame, err := e.frame()
		if err != nil {
			t.Fatalf("exact-limit field rejected: %v", err)
		}
		d := &decoder{buf: frame}
		if got := d.bytes(); len(got) != 16 {
			t.Fatalf("bytes round-trip lost data: %d", len(got))
		}
		if got := d.str(); len(got) != 16 {
			t.Fatalf("str round-trip lost data: %d", len(got))
		}
		if err := d.finish("wire test"); err != nil {
			t.Fatal(err)
		}
	})
}

// A fully decoded message must consume its whole frame: trailing bytes
// mean sender and receiver disagree about the layout, and finish() turns
// that from silence into a loud failure.
func TestDecoderRejectsTrailingGarbage(t *testing.T) {
	t.Run("work-item", func(t *testing.T) {
		e := &encoder{}
		encodeWorkItem(e, workItem{Type: 1, Priority: 2, Target: 3, Payload: []byte("job")})
		frame, err := e.frame()
		if err != nil {
			t.Fatal(err)
		}
		d := &decoder{buf: frame}
		if w := decodeWorkItem(d); string(w.Payload) != "job" {
			t.Fatalf("payload = %q", w.Payload)
		}
		if err := d.finish("work item"); err != nil {
			t.Fatalf("clean frame rejected: %v", err)
		}

		d = &decoder{buf: append(append([]byte(nil), frame...), 0xAB)}
		decodeWorkItem(d)
		if err := d.finish("work item"); err == nil {
			t.Fatal("trailing garbage accepted after work item")
		}
	})
	t.Run("value", func(t *testing.T) {
		e := &encoder{}
		encodeValue(e, Value{Type: TypeBlob, Bytes: []byte{1, 2, 3}, Dims: []int{3}, Elem: 2})
		frame, err := e.frame()
		if err != nil {
			t.Fatal(err)
		}
		d := &decoder{buf: frame}
		v := decodeValue(d)
		if err := d.finish("value"); err != nil {
			t.Fatalf("clean frame rejected: %v (value %v)", err, v)
		}

		d = &decoder{buf: append(append([]byte(nil), frame...), 0xCD, 0xEF)}
		decodeValue(d)
		if err := d.finish("value"); err == nil {
			t.Fatal("trailing garbage accepted after value")
		}
	})
	t.Run("truncated-still-fails", func(t *testing.T) {
		e := &encoder{}
		encodeValue(e, Value{Type: TypeString, Bytes: []byte("hello")})
		frame, _ := e.frame()
		d := &decoder{buf: frame[:len(frame)-2]}
		decodeValue(d)
		if err := d.finish("value"); err == nil {
			t.Fatal("truncated frame accepted")
		}
	})
}
