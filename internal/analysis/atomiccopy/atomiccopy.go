// Package atomiccopy is a copylocks-style check for the repo's counter
// and synchronization structs: any struct that (directly or through
// nested fields and arrays) contains a sync/atomic counter type or a
// sync primitive must never be copied by value. A copied atomic.Int64
// silently forks the counter; a copied sync.Mutex forks the lock state.
//
// Flagged shapes:
//
//   - assignment or short declaration whose right-hand side copies such
//     a value (x := y, x = *p, x := s.Field) — composite literals are
//     initialization, not copies, and stay legal;
//   - by-value parameters, results, and method receivers of such types;
//   - passing such a value as a call argument (including into fmt-style
//     interface parameters);
//   - range clauses whose value variable copies such an element.
package atomiccopy

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/driver"
)

// New returns a fresh analyzer instance.
func New() *driver.Analyzer {
	return &driver.Analyzer{
		Name: "atomiccopy",
		Doc:  "structs holding atomic counters or sync primitives must not be copied by value",
		Run:  run,
	}
}

type checker struct {
	pass *driver.Pass
	memo map[types.Type]bool
}

func run(pass *driver.Pass) {
	c := &checker{pass: pass, memo: map[types.Type]bool{}}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				c.checkAssign(n)
			case *ast.FuncDecl:
				c.checkFuncType(n.Type)
				if n.Recv != nil {
					c.checkFieldList(n.Recv, "method receiver")
				}
			case *ast.FuncLit:
				c.checkFuncType(n.Type)
			case *ast.CallExpr:
				c.checkCall(n)
			case *ast.RangeStmt:
				c.checkRange(n)
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					c.checkExprCopy(r, "returned by value")
				}
			}
			return true
		})
	}
}

// noCopy reports whether t transitively contains an atomic counter or a
// sync primitive by value.
func (c *checker) noCopy(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := c.memo[t]; ok {
		return v
	}
	c.memo[t] = false // cycle guard; value cycles are impossible anyway
	result := false
	switch u := t.(type) {
	case *types.Named:
		if isGuardedType(u) {
			result = true
		} else {
			result = c.noCopy(u.Underlying())
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if c.noCopy(u.Field(i).Type()) {
				result = true
				break
			}
		}
	case *types.Array:
		result = c.noCopy(u.Elem())
	}
	c.memo[t] = result
	return result
}

// isGuardedType reports whether named is one of the stdlib types whose
// values must not be copied.
func isGuardedType(named *types.Named) bool {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync":
		switch obj.Name() {
		case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Pool", "Map":
			return true
		}
	case "sync/atomic":
		switch obj.Name() {
		case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Value", "Pointer":
			return true
		}
	}
	return false
}

// copiesValue reports whether evaluating e as an rvalue copies an
// existing value (as opposed to constructing a fresh one).
func copiesValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return copiesValue(e.X)
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	case *ast.TypeAssertExpr:
		return true
	}
	return false
}

func (c *checker) checkExprCopy(e ast.Expr, how string) {
	if !copiesValue(e) {
		return
	}
	t := c.pass.TypesInfo.TypeOf(e)
	if c.noCopy(t) {
		c.pass.Reportf(e.Pos(), "%s %s: it holds atomic counters or sync primitives and must not be copied", typeName(t), how)
	}
}

func typeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func (c *checker) checkAssign(a *ast.AssignStmt) {
	for _, r := range a.Rhs {
		c.checkExprCopy(r, "copied by assignment")
	}
}

func (c *checker) checkFuncType(ft *ast.FuncType) {
	if ft.Params != nil {
		c.checkFieldList(ft.Params, "passed by value as a parameter")
	}
	if ft.Results != nil {
		c.checkFieldList(ft.Results, "declared as a by-value result")
	}
}

func (c *checker) checkFieldList(fl *ast.FieldList, how string) {
	for _, f := range fl.List {
		t := c.pass.TypesInfo.TypeOf(f.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		if c.noCopy(t) {
			c.pass.Reportf(f.Type.Pos(), "%s %s: it holds atomic counters or sync primitives and must not be copied", typeName(t), how)
		}
	}
}

func (c *checker) checkCall(call *ast.CallExpr) {
	// Conversions of such values are copies too, but conversions appear
	// as CallExpr; both paths land in checkExprCopy via the argument.
	for _, a := range call.Args {
		c.checkExprCopy(a, "passed by value in a call")
	}
}

func (c *checker) checkRange(r *ast.RangeStmt) {
	if r.Value == nil {
		return
	}
	t := c.pass.TypesInfo.TypeOf(r.Value)
	if c.noCopy(t) {
		c.pass.Reportf(r.Value.Pos(), "%s copied by range value: iterate by index instead", typeName(t))
	}
}
