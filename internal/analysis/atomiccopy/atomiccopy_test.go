package atomiccopy_test

import (
	"testing"

	"repro/internal/analysis/atomiccopy"
	"repro/internal/analysis/driver"
)

// TestGoldenBad checks that every seeded violation is reported exactly
// where its // want comment says, and nowhere else.
func TestGoldenBad(t *testing.T) {
	driver.RunGolden(t, "testdata/bad", atomiccopy.New())
}

// TestGoldenClean checks that a conforming package produces no
// diagnostics.
func TestGoldenClean(t *testing.T) {
	driver.RunGolden(t, "testdata/clean", atomiccopy.New())
}
