// Package bad copies structs holding atomic counters and sync
// primitives in every way the analyzer flags.
package bad

import (
	"sync"
	"sync/atomic"
)

type Counters struct {
	N atomic.Int64
}

type Wrapper struct {
	Inner Counters
	Name  string
}

type Guarded struct {
	mu sync.Mutex
	n  int
}

var sink int64

func assignCopy(p *Counters) {
	c := *p // want `Counters copied by assignment: it holds atomic counters or sync primitives and must not be copied`
	sink = c.N.Load()
}

func byValueParam(c Counters) int64 { // want `Counters passed by value as a parameter: it holds atomic counters or sync primitives and must not be copied`
	return c.N.Load()
}

func (c Counters) byValueRecv() int64 { // want `Counters method receiver: it holds atomic counters or sync primitives and must not be copied`
	return c.N.Load()
}

func callCopy(p *Counters) {
	sink = byValueParam(*p) // want `Counters passed by value in a call: it holds atomic counters or sync primitives and must not be copied`
}

func rangeCopy(list []Counters) {
	for _, c := range list { // want `Counters copied by range value: iterate by index instead`
		sink += c.N.Load()
	}
}

func returnCopy(p *Counters) Counters { // want `Counters declared as a by-value result: it holds atomic counters or sync primitives and must not be copied`
	return *p // want `Counters returned by value: it holds atomic counters or sync primitives and must not be copied`
}

// The guard is transitive through embedding and arrays.
func copyWrapper(w *Wrapper) {
	v := *w // want `Wrapper copied by assignment: it holds atomic counters or sync primitives and must not be copied`
	sink = v.Inner.N.Load()
}

func copyGuarded(g *Guarded) int {
	v := *g // want `Guarded copied by assignment: it holds atomic counters or sync primitives and must not be copied`
	return v.n
}
