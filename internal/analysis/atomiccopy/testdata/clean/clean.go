// Package clean moves counter-bearing structs only by pointer or
// initializes them in place; the analyzer must stay silent.
package clean

import (
	"sync"
	"sync/atomic"
)

type Counters struct {
	N atomic.Int64
}

type Guarded struct {
	mu sync.Mutex
	n  int
}

// Composite literals are initialization, not copies.
var global = Counters{}

func fresh() *Counters { return &Counters{} }

func byPointer(p *Counters) int64 { return p.N.Load() }

func (c *Counters) Inc() { c.N.Add(1) }

func (g *Guarded) Bump() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// Index iteration avoids the range-value copy.
func total(list []Counters) int64 {
	var sum int64
	for i := range list {
		sum += list[i].N.Load()
	}
	return sum
}

// Plain structs copy freely.
type Plain struct{ A, B int }

func copyPlain(p Plain) Plain {
	q := p
	return q
}
