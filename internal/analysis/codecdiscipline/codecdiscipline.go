// Package codecdiscipline enforces the wire-codec contracts of the PR 4
// hardening in any package that declares the codec types:
//
//   - decoder/finish: a function that obtains a wire decoder (composite
//     literal or a call returning one) and reads from it must call
//     finish() on every non-error return path that follows a read, so
//     the sticky decode error and the trailing-bytes check can never be
//     skipped. A path that returns a possibly-non-nil error is exempt —
//     the error already supersedes whatever finish() would report.
//     Passing the decoder to another function is a borrow (partial
//     decode helpers read on the caller's behalf; the obligation stays
//     here), while returning, storing, or capturing it transfers
//     ownership out of the function along with the obligation. Decoder
//     parameters carry no obligation: the constructor owns it.
//   - encoder/frame: the encoder's raw buffer field (buf) may be touched
//     only in the file that declares the encoder type; every other site
//     must go through the sticky-error frame() helper, which makes an
//     unframeable field unable to reach the transport as a corrupted
//     frame. Discarding frame()'s error with a blank identifier is also
//     an error.
//
// The analyzer keys on structure, not import paths: it activates in any
// package declaring a named type `decoder` with a `finish` method or a
// named type `encoder` with a `frame` method (internal/adlb today, the
// TCP transport's codec tomorrow). Functions whose receiver is the
// codec type itself (the codec's own methods) are exempt.
package codecdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/driver"
)

// New returns a fresh analyzer instance.
func New() *driver.Analyzer {
	return &driver.Analyzer{
		Name: "codecdiscipline",
		Doc:  "wire decoders must finish() on every read path; encoder buffers must go through frame()",
		Run:  run,
	}
}

func run(pass *driver.Pass) {
	dec := codecType(pass.Pkg, "decoder", "finish")
	enc := codecType(pass.Pkg, "encoder", "frame")
	if dec == nil && enc == nil {
		return
	}
	encFile := ""
	if enc != nil {
		encFile = pass.Fset.Position(enc.Obj().Pos()).Filename
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil || isCodecMethod(pass, n, dec, enc) {
					return true
				}
				checkFunc(pass, dec, n.Type, n.Body)
			case *ast.FuncLit:
				checkFunc(pass, dec, n.Type, n.Body)
			case *ast.SelectorExpr:
				checkBufAccess(pass, enc, encFile, n)
			}
			return true
		})
	}
}

// codecType finds a package-scope named struct type with the given name
// and method, or nil.
func codecType(pkg *types.Package, name, method string) *types.Named {
	obj, ok := pkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == method {
			return named
		}
	}
	return nil
}

// isCodecMethod reports whether fn is a method of the codec types
// themselves (their field accesses are the implementation, not a
// bypass).
func isCodecMethod(pass *driver.Pass, fn *ast.FuncDecl, dec, enc *types.Named) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	t := pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)
	return isNamed(t, dec) || isNamed(t, enc)
}

// isNamed reports whether t is named (or pointer to named).
func isNamed(t types.Type, named *types.Named) bool {
	if named == nil || t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == named.Obj()
}

// checkBufAccess reports raw encoder.buf access outside the codec file.
func checkBufAccess(pass *driver.Pass, enc *types.Named, encFile string, sel *ast.SelectorExpr) {
	if enc == nil || sel.Sel.Name != "buf" {
		return
	}
	if !isNamed(pass.TypesInfo.TypeOf(sel.X), enc) {
		return
	}
	if pass.Fset.Position(sel.Pos()).Filename == encFile {
		return
	}
	pass.Reportf(sel.Sel.Pos(),
		"raw access to encoder.buf outside the codec file; frames must be obtained via frame() so sticky encode errors cannot reach the transport")
}

// ---------- decoder finish discipline ----------

// decState is the per-path state: pending marks decoders that have been
// read on some path reaching this point with finish() still owed, dead
// marks decoders whose obligation escaped to another owner. Both are
// "may" facts OR'd at joins — a decoder constructed, read, and finished
// wholly inside one branch contributes nothing to the joined state, so
// the untaken branch can neither mask nor fake a violation.
type decState struct {
	pending map[types.Object]bool
	dead    map[types.Object]bool
}

func newDecState() *decState {
	return &decState{
		pending: map[types.Object]bool{},
		dead:    map[types.Object]bool{},
	}
}

func (s *decState) Clone() driver.FlowState {
	n := newDecState()
	n.CopyFrom(s)
	return n
}

func (s *decState) CopyFrom(src driver.FlowState) {
	o := src.(*decState)
	s.pending = cloneSet(o.pending)
	s.dead = cloneSet(o.dead)
}

func (s *decState) Join(other driver.FlowState) {
	o := other.(*decState)
	orInto(s.pending, o.pending) // an unfinished read on any path counts
	orInto(s.dead, o.dead)       // any escape releases the obligation
}

func cloneSet(m map[types.Object]bool) map[types.Object]bool {
	n := make(map[types.Object]bool, len(m))
	for k, v := range m {
		n[k] = v
	}
	return n
}

func orInto(dst, src map[types.Object]bool) {
	for k, v := range src {
		if v {
			dst[k] = true
		}
	}
}

type decChecker struct {
	pass    *driver.Pass
	dec     *types.Named
	tracked map[types.Object]bool
	// deferredDone marks decoders with a deferred finish(): it runs at
	// every later return, so it is a property of the variable, not of
	// one path (defers sit next to the binding in practice).
	deferredDone map[types.Object]bool
}

// checkFunc runs the decoder-finish path analysis over one function.
func checkFunc(pass *driver.Pass, dec *types.Named, ftype *ast.FuncType, body *ast.BlockStmt) {
	if dec == nil || body == nil {
		return
	}
	c := &decChecker{pass: pass, dec: dec, tracked: map[types.Object]bool{}, deferredDone: map[types.Object]bool{}}
	errLast := returnsError(pass, ftype)

	st := newDecState()
	// Only decoders constructed in this function are tracked (parameters
	// belong to whoever built them); evalAssign registers them as their
	// bindings appear.

	w := &driver.FlowWalker{
		EvalExpr:   func(e ast.Expr, fs driver.FlowState) { c.evalExpr(e, fs.(*decState)) },
		EvalAssign: func(a *ast.AssignStmt, fs driver.FlowState) { c.evalAssign(a, fs.(*decState)) },
		EvalDefer:  func(call *ast.CallExpr, fs driver.FlowState) { c.evalDefer(call, fs.(*decState)) },
		AtReturn: func(pos token.Pos, ret *ast.ReturnStmt, fs driver.FlowState) {
			if isErrorPath(errLast, ret) {
				return
			}
			s := fs.(*decState)
			for obj := range c.tracked {
				if s.pending[obj] && !s.dead[obj] && !c.deferredDone[obj] {
					c.pass.Reportf(pos, "wire decoder %q read on this path but finish() never called: sticky decode errors and trailing bytes go unchecked", obj.Name())
					delete(s.pending, obj) // one report per path suffices
				}
			}
		},
	}
	w.Walk(body, st)
}

// isErrorPath reports whether ret leaves the function with a possibly
// non-nil error: the last result slot is an error and the returned
// expression is anything but the literal nil. Such a path is exempt —
// the caller already sees a failure, which supersedes finish()'s sticky
// error and trailing-bytes report.
func isErrorPath(errLast bool, ret *ast.ReturnStmt) bool {
	if !errLast || ret == nil || len(ret.Results) == 0 {
		return false
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	id, ok := last.(*ast.Ident)
	return !ok || id.Name != "nil"
}

func returnsError(pass *driver.Pass, ftype *ast.FuncType) bool {
	if ftype.Results == nil || len(ftype.Results.List) == 0 {
		return false
	}
	last := ftype.Results.List[len(ftype.Results.List)-1]
	t := pass.TypesInfo.TypeOf(last.Type)
	return t != nil && t.String() == "error"
}

// trackedObj resolves e (through parens) to a tracked decoder variable.
func (c *decChecker) trackedObj(e ast.Expr) types.Object {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj != nil && c.tracked[obj] {
		return obj
	}
	return nil
}

func (c *decChecker) evalExpr(e ast.Expr, st *decState) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if obj := c.trackedObj(sel.X); obj != nil {
				if sel.Sel.Name == "finish" {
					delete(st.pending, obj)
				} else {
					st.pending[obj] = true
				}
				c.evalArgs(e, st)
				return
			}
		}
		c.evalExpr(e.Fun, st)
		c.evalArgs(e, st)
	case *ast.SelectorExpr:
		if obj := c.trackedObj(e.X); obj != nil {
			// Direct field access (d.err, d.buf, d.off) is a read that
			// bypasses the error-checking API.
			st.pending[obj] = true
			return
		}
		c.evalExpr(e.X, st)
	case *ast.Ident:
		if obj := c.trackedObj(e); obj != nil {
			// Naked use: passed, returned, stored, or captured — the
			// obligation moves with the value.
			st.dead[obj] = true
		}
	case *ast.FuncLit:
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := c.trackedObj(id); obj != nil {
					st.dead[obj] = true
				}
			}
			return true
		})
	default:
		ast.Inspect(e, func(n ast.Node) bool {
			if n == e {
				return true
			}
			if sub, ok := n.(ast.Expr); ok {
				c.evalExpr(sub, st)
				return false
			}
			return true
		})
	}
}

// evalArgs walks a call's arguments. A tracked decoder passed directly
// as an argument is a borrow — the callee reads on the caller's behalf
// and the obligation stays here — so it is marked read but not escaped.
func (c *decChecker) evalArgs(call *ast.CallExpr, st *decState) {
	for _, a := range call.Args {
		if obj := c.trackedObj(a); obj != nil {
			st.pending[obj] = true
			continue
		}
		c.evalExpr(a, st)
	}
}

func (c *decChecker) evalAssign(a *ast.AssignStmt, st *decState) {
	// Blank-discard of frame()'s sticky error.
	if len(a.Rhs) == 1 {
		if call, ok := a.Rhs[0].(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "frame" {
				if t := c.pass.TypesInfo.TypeOf(sel.X); t != nil && len(a.Lhs) == 2 {
					if enc := codecType(c.pass.Pkg, "encoder", "frame"); enc != nil && isNamed(t, enc) {
						if id, ok := a.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
							c.pass.Reportf(a.Pos(), "frame() error discarded with blank identifier; a sticky encode error must not be dropped")
						}
					}
				}
			}
		}
	}
	for _, e := range a.Rhs {
		c.evalExpr(e, st)
	}
	for _, e := range a.Lhs {
		if id, ok := e.(*ast.Ident); ok {
			// (Re)binding a decoder-typed variable starts fresh tracking.
			if obj := c.pass.TypesInfo.Defs[id]; obj != nil && isNamed(obj.Type(), c.dec) {
				c.tracked[obj] = true
				delete(st.pending, obj)
				delete(st.dead, obj)
				continue
			}
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.tracked[obj] {
				delete(st.pending, obj)
				delete(st.dead, obj)
				continue
			}
			continue
		}
		c.evalExpr(e, st)
	}
}

func (c *decChecker) evalDefer(call *ast.CallExpr, st *decState) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "finish" {
		if obj := c.trackedObj(sel.X); obj != nil {
			// Deferred finish runs at every later return.
			c.deferredDone[obj] = true
		}
	}
}
