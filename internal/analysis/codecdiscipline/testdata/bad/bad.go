package bad

// decodeDrop reads and returns without finish on a non-error path.
func decodeDrop(payload []byte) byte {
	d := &decoder{buf: payload}
	v := d.u8()
	return v // want `wire decoder "d" read on this path but finish\(\) never called`
}

// branchy finishes on one path but not the other.
func branchy(payload []byte, c bool) (byte, error) {
	d := &decoder{buf: payload}
	v := d.u8()
	if c {
		return v, nil // want `wire decoder "d" read on this path but finish\(\) never called`
	}
	return v, d.finish("branchy")
}

// rawBuf touches the encoder's raw buffer outside the codec file.
func rawBuf(e *encoder) []byte {
	return e.buf // want `raw access to encoder\.buf outside the codec file`
}

// blankFrame throws away the sticky encode error.
func blankFrame(e *encoder) []byte {
	f, _ := e.frame() // want `frame\(\) error discarded with blank identifier`
	return f
}
