// Package bad is a self-contained replica of the repo's wire-codec
// shape: a decoder with a finish method and an encoder with a frame
// method. The analyzer keys on that structure, so these golden packages
// need no module imports.
package bad

import "errors"

var errShort = errors.New("short frame")

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off >= len(d.buf) {
		d.err = errShort
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) finish(what string) error { return d.err }

type encoder struct {
	buf []byte
	err error
}

func (e *encoder) u8(v byte) { e.buf = append(e.buf, v) }

func (e *encoder) frame() ([]byte, error) { return e.buf, e.err }
