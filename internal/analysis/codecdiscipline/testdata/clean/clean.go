package clean

import "errors"

// decodeOK finishes before the success return.
func decodeOK(payload []byte) (byte, error) {
	d := &decoder{buf: payload}
	v := d.u8()
	if err := d.finish("ok"); err != nil {
		return 0, err
	}
	return v, nil
}

// errorPath returns a non-nil error mid-decode: the error supersedes
// finish, so the path is exempt.
func errorPath(payload []byte) (byte, error) {
	d := &decoder{buf: payload}
	v := d.u8()
	if v == 0 {
		return 0, errors.New("zero tag")
	}
	return v, d.finish("error path")
}

// escape returns the decoder: ownership and obligation move to the
// caller.
func escape(payload []byte) *decoder {
	d := &decoder{buf: payload}
	d.u8()
	return d
}

// helper borrows a decoder by parameter; parameters carry no obligation.
func helper(d *decoder) byte { return d.u8() }

// borrower lends its decoder to helper and still owns the finish.
func borrower(payload []byte) (byte, error) {
	d := &decoder{buf: payload}
	v := helper(d)
	return v, d.finish("borrower")
}

// deferred discharges via defer at every later return.
func deferred(payload []byte) int {
	d := &decoder{buf: payload}
	defer d.finish("deferred")
	return int(d.u8())
}

// framed builds frames only through frame().
func framed() ([]byte, error) {
	e := getEncoder()
	e.u8(1)
	return e.frame()
}
