// Package clean holds only conforming codec usage; the analyzer must
// stay silent here.
package clean

import "errors"

var errShort = errors.New("short frame")

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off >= len(d.buf) {
		d.err = errShort
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) finish(what string) error { return d.err }

type encoder struct {
	buf []byte
	err error
}

func (e *encoder) u8(v byte) { e.buf = append(e.buf, v) }

func (e *encoder) frame() ([]byte, error) { return e.buf, e.err }

// getEncoder lives in the codec file, so its raw buf access is the
// implementation, not a bypass.
func getEncoder() *encoder {
	e := &encoder{}
	e.buf = e.buf[:0]
	return e
}
