// Package driver is the repo's dependency-free static-analysis
// framework: it loads Go packages (via `go list` plus go/parser), type
// checks them with the stdlib source importer, runs a set of analyzers
// over the result, and renders diagnostics with file:line positions.
//
// It is a deliberately small re-creation of the golang.org/x/tools
// analysis driver shape — Analyzer, Pass, diagnostics, a golden-test
// harness driven by `// want "regexp"` comments — built only on the
// standard library so go.mod keeps zero requirements. Analyzers receive
// one type-checked package at a time; an optional Finish hook runs after
// every package has been seen, for cross-package checks (declared but
// unreferenced fault sites, for example).
//
// Only non-test files are analyzed: the contracts the analyzers enforce
// (wire-codec finish discipline, frame ownership, counter mirrors) bind
// production code, while tests intentionally construct half-decoded or
// misused values to probe error paths.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
)

// Diagnostic is one analyzer finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Pass carries one type-checked package through an analyzer's Run.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Reportf records a diagnostic at pos.
	Reportf func(pos token.Pos, format string, args ...any)
}

// Analyzer is one named check. Run is invoked once per package; Finish,
// if non-nil, once after all packages, for checks that need the whole
// program (an analyzer holding cross-package state reports there).
// Analyzers are stateful and single-use: construct a fresh one per run.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pass *Pass)
	// Finish reports diagnostics that can only be decided after every
	// package has been analyzed. Positions must be absolute (already
	// resolved), since no single package is current.
	Finish func(reportf func(pos token.Position, format string, args ...any))
}

// Package is one loaded, parsed, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves patterns (as `go list` would, e.g. "./...") to packages
// and type-checks each from source. The process working directory must
// be inside the target module: the stdlib source importer resolves
// module-path imports through the go command, which is module-aware
// only relative to the current directory.
func Load(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	var stdout, stderr bytes.Buffer
	cmd := exec.Command("go", args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		var paths []string
		for _, f := range lp.GoFiles {
			paths = append(paths, filepath.Join(lp.Dir, f))
		}
		p, err := check(fset, imp, lp.ImportPath, paths)
		if err != nil {
			return nil, err
		}
		p.ImportPath = lp.ImportPath
		p.Dir = lp.Dir
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package rooted at dir,
// without consulting `go list`. It is the golden-test loader: testdata
// packages import only the standard library, so the source importer can
// resolve everything regardless of module context.
func LoadDir(dir string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(matches)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	p, err := check(fset, imp, "swiftvet.test/"+filepath.Base(dir), matches)
	if err != nil {
		return nil, err
	}
	p.Dir = dir
	p.ImportPath = "swiftvet.test/" + filepath.Base(dir)
	return p, nil
}

func check(fset *token.FileSet, imp types.Importer, path string, files []string) (*Package, error) {
	var astFiles []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		astFiles = append(astFiles, af)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, astFiles, info)
	if err != nil {
		return nil, fmt.Errorf("type checking %s: %v", path, err)
	}
	return &Package{Fset: fset, Files: astFiles, Pkg: pkg, Info: info}, nil
}

// Run executes every analyzer over every package, then the Finish hooks,
// and returns all diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		for _, p := range pkgs {
			name := a.Name
			fset := p.Fset
			pass := &Pass{
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Pkg,
				TypesInfo: p.Info,
				Reportf: func(pos token.Pos, format string, args ...any) {
					diags = append(diags, Diagnostic{
						Pos:      fset.Position(pos),
						Analyzer: name,
						Message:  fmt.Sprintf(format, args...),
					})
				},
			}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		name := a.Name
		a.Finish(func(pos token.Position, format string, args ...any) {
			diags = append(diags, Diagnostic{Pos: pos, Analyzer: name, Message: fmt.Sprintf(format, args...)})
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags
}
