package driver

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// countState is a trivial FlowState for exercising the walker.
type countState struct{}

func (countState) Clone() FlowState   { return countState{} }
func (countState) Join(FlowState)     {}
func (countState) CopyFrom(FlowState) {}

func parseFuncs(t *testing.T, src string) (*token.FileSet, map[string]*ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "flow.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	fns := map[string]*ast.FuncDecl{}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			fns[fd.Name.Name] = fd
		}
	}
	return fset, fns
}

// TestFlowWalkerReturns checks path enumeration: explicit returns are
// visited once each, an infinite loop terminates its path, and a panic
// branch does not reach the implicit fall-off.
func TestFlowWalkerReturns(t *testing.T) {
	const src = `package p

func branches(c bool) int {
	if c {
		return 1
	}
	for {
		if c {
			return 2
		}
	}
}

func fallsOff(c bool) {
	if c {
		panic("boom")
	}
}
`
	_, fns := parseFuncs(t, src)

	run := func(name string) (explicit, implicit int) {
		w := &FlowWalker{
			AtReturn: func(pos token.Pos, ret *ast.ReturnStmt, st FlowState) {
				if ret != nil {
					explicit++
				} else {
					implicit++
				}
			},
		}
		w.Walk(fns[name].Body, countState{})
		return
	}

	explicit, implicit := run("branches")
	if explicit != 2 || implicit != 0 {
		t.Errorf("branches: got %d explicit / %d implicit returns, want 2/0", explicit, implicit)
	}
	explicit, implicit = run("fallsOff")
	if explicit != 0 || implicit != 1 {
		t.Errorf("fallsOff: got %d explicit / %d implicit returns, want 0/1", explicit, implicit)
	}
}

// TestLoadDirTypeError checks that a package that does not type-check is
// reported as a load error, not analyzed.
func TestLoadDirTypeError(t *testing.T) {
	dir := t.TempDir()
	src := "package broken\n\nfunc f() int { return \"not an int\" }\n"
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("LoadDir accepted a package with type errors")
	}
}

// TestDiagnosticString checks the file:line:col rendering swiftvet
// prints.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "demo",
		Message:  "bad thing",
	}
	if got, want := d.String(), "x.go:3:7: bad thing [demo]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
