package driver

import (
	"go/ast"
	"go/token"
)

// FlowState is the analyzer-defined abstract state threaded along the
// paths of one function body. Join must combine two states that reach
// the same point along alternative paths ("must" facts AND together,
// "may" facts OR together); CopyFrom overwrites the receiver with src.
type FlowState interface {
	Clone() FlowState
	Join(other FlowState)
	CopyFrom(src FlowState)
}

// FlowWalker drives a lightweight path-sensitive walk over a function
// body without building a CFG: statements compose sequentially, the
// branches of if/switch/select walk independently and join, and loop
// bodies walk once with the result joined against the loop-skipped
// state (so facts established inside a loop are "may", not "must").
// break, continue, and goto are approximated as no-ops; the repo's
// packages do not use them to carry codec or ownership obligations
// across a join. Bodies of func literals are NOT entered — the caller
// analyzes them as functions in their own right — but EvalExpr sees the
// literal, so captures can be modeled as escapes.
type FlowWalker struct {
	// EvalExpr applies the effect of evaluating e on st.
	EvalExpr func(e ast.Expr, st FlowState)
	// EvalAssign, if non-nil, fully handles an assignment or short
	// declaration (the hook owns evaluation order and alias tracking).
	// When nil, the walker evaluates RHS then LHS expressions.
	EvalAssign func(s *ast.AssignStmt, st FlowState)
	// EvalDefer applies the effect of a deferred call: it runs at every
	// subsequent return, not at the defer site, so analyzers typically
	// record a weaker "discharged at exit" fact than for an inline call.
	EvalDefer func(call *ast.CallExpr, st FlowState)
	// AtReturn observes a path leaving the function: an explicit return
	// (results already evaluated into st) or, with ret == nil, the
	// implicit fall-off at the end of the body.
	AtReturn func(pos token.Pos, ret *ast.ReturnStmt, st FlowState)
}

// Walk runs the walker over body starting from st.
func (w *FlowWalker) Walk(body *ast.BlockStmt, st FlowState) {
	if body == nil {
		return
	}
	if w.EvalExpr == nil {
		w.EvalExpr = func(ast.Expr, FlowState) {}
	}
	if w.AtReturn == nil {
		w.AtReturn = func(token.Pos, *ast.ReturnStmt, FlowState) {}
	}
	if terminated := w.stmts(body.List, st); !terminated {
		w.AtReturn(body.End()-1, nil, st)
	}
}

// stmts walks a statement list, returning true if every path through it
// leaves the function (return or panic) before reaching the end.
func (w *FlowWalker) stmts(list []ast.Stmt, st FlowState) bool {
	for _, s := range list {
		if w.stmt(s, st) {
			return true
		}
	}
	return false
}

func (w *FlowWalker) stmt(s ast.Stmt, st FlowState) (terminated bool) {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.ExprStmt:
		w.EvalExpr(s.X, st)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
		return false
	case *ast.AssignStmt:
		if w.EvalAssign != nil {
			w.EvalAssign(s, st)
			return false
		}
		for _, e := range s.Rhs {
			w.EvalExpr(e, st)
		}
		for _, e := range s.Lhs {
			w.EvalExpr(e, st)
		}
		return false
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt,
		*ast.BranchStmt:
		evalShallow(w, s, st)
		return false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.EvalExpr(e, st)
		}
		w.AtReturn(s.Pos(), s, st)
		return true
	case *ast.DeferStmt:
		for _, a := range s.Call.Args {
			w.EvalExpr(a, st)
		}
		if w.EvalDefer != nil {
			w.EvalDefer(s.Call, st)
		}
		return false
	case *ast.GoStmt:
		w.EvalExpr(s.Call.Fun, st)
		for _, a := range s.Call.Args {
			w.EvalExpr(a, st)
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.EvalExpr(s.Cond, st)
		thenSt := st.Clone()
		thenTerm := w.stmts(s.Body.List, thenSt)
		elseSt := st.Clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else, elseSt)
		}
		return joinInto(st, []branch{{thenSt, thenTerm}, {elseSt, elseTerm}})
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.EvalExpr(s.Tag, st)
		}
		return w.caseClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.stmt(s.Assign, st)
		return w.caseClauses(s.Body, st)
	case *ast.SelectStmt:
		var branches []branch
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
			}
			bst := st.Clone()
			if cc.Comm != nil {
				w.stmt(cc.Comm, bst)
			}
			branches = append(branches, branch{bst, w.stmts(cc.Body, bst)})
		}
		if !hasDefault {
			branches = append(branches, branch{st.Clone(), false})
		}
		return joinInto(st, branches)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.EvalExpr(s.Cond, st)
		}
		bodySt := st.Clone()
		bodyTerm := w.stmts(s.Body.List, bodySt)
		if !bodyTerm && s.Post != nil {
			w.stmt(s.Post, bodySt)
		}
		if s.Cond == nil && !hasBreak(s.Body) {
			// for{} with no break never falls through; the only exits are
			// returns inside the body, already observed.
			return true
		}
		if !bodyTerm {
			st.Join(bodySt)
		}
		return false
	case *ast.RangeStmt:
		w.EvalExpr(s.X, st)
		bodySt := st.Clone()
		if !w.stmts(s.Body.List, bodySt) {
			st.Join(bodySt)
		}
		return false
	default:
		return false
	}
}

// evalShallow feeds the top-level expressions of a simple statement to
// EvalExpr (which recurses into subtrees itself).
func evalShallow(w *FlowWalker, s ast.Stmt, st FlowState) {
	ast.Inspect(s, func(n ast.Node) bool {
		if n == nil || n == s {
			return true
		}
		if e, ok := n.(ast.Expr); ok {
			w.EvalExpr(e, st)
			return false
		}
		return true
	})
}

// caseClauses joins the paths of a switch body; a missing default adds
// the fall-past path.
func (w *FlowWalker) caseClauses(body *ast.BlockStmt, st FlowState) bool {
	var branches []branch
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		bst := st.Clone()
		for _, e := range cc.List {
			w.EvalExpr(e, bst)
		}
		branches = append(branches, branch{bst, w.stmts(cc.Body, bst)})
	}
	if !hasDefault {
		branches = append(branches, branch{st.Clone(), false})
	}
	return joinInto(st, branches)
}

type branch struct {
	st         FlowState
	terminated bool
}

// joinInto joins every non-terminated branch state into st, returning
// true when all branches terminated (nothing falls through).
func joinInto(st FlowState, branches []branch) bool {
	first := true
	for _, b := range branches {
		if b.terminated {
			continue
		}
		if first {
			st.CopyFrom(b.st)
			first = false
			continue
		}
		st.Join(b.st)
	}
	return first
}

// hasBreak reports whether body contains a break that could exit the
// enclosing loop (ignores breaks inside nested loops/switches, which
// bind tighter — but counts labeled breaks conservatively).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var scan func(n ast.Node, depth int)
	scan = func(n ast.Node, depth int) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && (depth == 0 || n.Label != nil) {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt,
			*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			scanChildren(n, depth+1, scan)
		case *ast.FuncLit:
			return
		default:
			scanChildren(n, depth, scan)
		}
	}
	scanChildren(body, 0, scan)
	return found
}

func scanChildren(n ast.Node, depth int, scan func(ast.Node, int)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		scan(c, depth)
		return false
	})
}
