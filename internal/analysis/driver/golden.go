package driver

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// want is one expectation parsed from a `// want "regexp"` comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// RunGolden loads the testdata package at dir, runs the analyzers over
// it, and checks the diagnostics against `// want "regexp"` comments:
// every diagnostic must land on a line carrying a matching want, and
// every want must be matched by at least one diagnostic. Multiple wants
// may share a line (`// want "a" "b"`); each is matched independently.
func RunGolden(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags := Run([]*Package{pkg}, analyzers)

	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(t, pkg, c)...)
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// parseWants extracts the want expectations from one comment.
func parseWants(t *testing.T, pkg *Package, c *ast.Comment) []*want {
	t.Helper()
	text := c.Text
	i := strings.Index(text, "want ")
	if !strings.HasPrefix(text, "//") || i < 0 {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	rest := strings.TrimSpace(text[i+len("want "):])
	var out []*want
	for rest != "" {
		var lit string
		switch rest[0] {
		case '"':
			end := -1
			for j := 1; j < len(rest); j++ {
				if rest[j] == '\\' {
					j++
					continue
				}
				if rest[j] == '"' {
					end = j
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want string: %s", pos.Filename, pos.Line, rest)
			}
			var err error
			lit, err = strconv.Unquote(rest[:end+1])
			if err != nil {
				t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, rest[:end+1], err)
			}
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want string: %s", pos.Filename, pos.Line, rest)
			}
			lit = rest[1 : 1+end]
			rest = strings.TrimSpace(rest[end+2:])
		default:
			t.Fatalf("%s:%d: malformed want clause: %s", pos.Filename, pos.Line, rest)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, lit, err)
		}
		out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: lit})
	}
	return out
}
