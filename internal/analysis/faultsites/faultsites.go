// Package faultsites keeps the fault-injection site registry honest:
//
//   - every argument to faultinject.At, faultinject.Armed, or
//     faultinject.Arm must be a declared constant of the named type Site
//     — string literals and ad-hoc Site("...") conversions would create
//     sites the harness's site list does not know about;
//   - no two Site constants may share a string value (a duplicate makes
//     Arm ambiguous);
//   - every declared Site must be referenced by non-test code somewhere
//     in the analyzed packages, so the registry cannot accumulate dead
//     sites that tests keep arming to no effect.
//
// The never-referenced check is whole-program: it accumulates across all
// analyzed packages and reports from the analyzer's Finish hook, so it
// is only meaningful when swiftvet runs over ./... (the golden tests
// exercise it within a single self-contained package). Sites are keyed
// by qualified name, not object identity: the loader type-checks a
// directly-listed package and its imported copy separately.
package faultsites

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/driver"
)

// New returns a fresh analyzer instance. The instance carries the
// cross-package site registry, so one instance must see every package of
// a run (driver.Run guarantees this).
func New() *driver.Analyzer {
	c := &checker{
		declared: map[string]token.Position{},
		byValue:  map[string]string{},
		used:     map[string]bool{},
	}
	return &driver.Analyzer{
		Name:   "faultsites",
		Doc:    "fault-injection sites must be declared Site constants, unique, and referenced",
		Run:    c.run,
		Finish: c.finish,
	}
}

type checker struct {
	declared map[string]token.Position // qualified const name -> decl position
	byValue  map[string]string         // site string value -> qualified const name
	used     map[string]bool           // qualified const name -> referenced
}

func qualify(cn *types.Const) string {
	if cn.Pkg() == nil {
		return cn.Name()
	}
	return cn.Pkg().Path() + "." + cn.Name()
}

func (c *checker) run(pass *driver.Pass) {
	c.collectDecls(pass)
	c.collectUses(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			c.checkCall(pass, call)
			return true
		})
	}
}

// isSiteType reports whether t is a named type called Site whose
// underlying type is string.
func isSiteType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Name() != "Site" {
		return false
	}
	b, ok := named.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

// collectDecls registers every package-scope Site constant and reports
// duplicate string values as they appear.
func (c *checker) collectDecls(pass *driver.Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		cn, ok := scope.Lookup(name).(*types.Const)
		if !ok || !isSiteType(cn.Type()) {
			continue
		}
		q := qualify(cn)
		val := cn.Val().String()
		if prev, ok := c.byValue[val]; ok && prev != q {
			pass.Reportf(cn.Pos(), "fault site %s duplicates the value of %s: Arm(%s) would be ambiguous", cn.Name(), prev, val)
			continue
		}
		c.byValue[val] = q
		c.declared[q] = pass.Fset.Position(cn.Pos())
	}
}

// collectUses records every reference to a Site constant anywhere in the
// package (argument positions, tables, switches all count as liveness).
func (c *checker) collectUses(pass *driver.Pass) {
	for _, obj := range pass.TypesInfo.Uses {
		if cn, ok := obj.(*types.Const); ok && isSiteType(cn.Type()) {
			c.used[qualify(cn)] = true
		}
	}
}

// checkCall enforces const-only arguments at faultinject entry points.
func (c *checker) checkCall(pass *driver.Pass, call *ast.CallExpr) {
	var funIdent *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		funIdent = fun
	case *ast.SelectorExpr:
		funIdent = fun.Sel
	default:
		return
	}
	fn, ok := pass.TypesInfo.Uses[funIdent].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "faultinject" {
		return
	}
	switch fn.Name() {
	case "At", "Armed", "Arm":
	default:
		return
	}
	if len(call.Args) == 0 {
		return
	}
	arg := ast.Unparen(call.Args[0])

	// A plain identifier or pkg.Name selector resolving to a Site const.
	var argIdent *ast.Ident
	switch a := arg.(type) {
	case *ast.Ident:
		argIdent = a
	case *ast.SelectorExpr:
		argIdent = a.Sel
	}
	if argIdent != nil {
		if cn, ok := pass.TypesInfo.Uses[argIdent].(*types.Const); ok && isSiteType(cn.Type()) {
			return
		}
	}

	switch a := arg.(type) {
	case *ast.BasicLit:
		pass.Reportf(a.Pos(), "faultinject.%s called with a string literal; declare a Site constant so the site registry stays complete", fn.Name())
	case *ast.CallExpr:
		pass.Reportf(a.Pos(), "faultinject.%s called with an ad-hoc conversion; declare a Site constant instead", fn.Name())
	default:
		pass.Reportf(arg.Pos(), "faultinject.%s argument must be a declared Site constant, not a computed value", fn.Name())
	}
}

// finish reports declared-but-never-referenced sites once all packages
// have been seen.
func (c *checker) finish(reportf func(pos token.Position, format string, args ...any)) {
	for q, pos := range c.declared {
		if !c.used[q] {
			name := q
			if i := lastDot(q); i >= 0 {
				name = q[i+1:]
			}
			reportf(pos, "fault site %s is declared but never referenced by non-test code; remove it or wire it into a crash point", name)
		}
	}
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}
