// This golden package is itself named faultinject: the analyzer matches
// crash-point calls by the defining package's name, so a self-contained
// replica of the Site type and the At/Armed/Arm entry points exercises
// the same code paths as the real registry.
package faultinject

type Site string

const (
	SiteGood   Site = "good.site"
	SiteA      Site = "shared.value"
	SiteB      Site = "shared.value" // want `fault site SiteB duplicates the value of swiftvet\.test/bad\.SiteA`
	SiteUnused Site = "unused.site"  // want `fault site SiteUnused is declared but never referenced by non-test code`
)

func At(name Site) error { return nil }

func Armed(name Site) bool { return false }

func prod(v Site) {
	_ = At(SiteGood)
	_ = Armed(SiteA)
	_ = At("raw.literal")            // want `faultinject\.At called with a string literal`
	_ = At(Site("adhoc.conversion")) // want `faultinject\.At called with an ad-hoc conversion`
	_ = At(v)                        // want `faultinject\.At argument must be a declared Site constant, not a computed value`
}
