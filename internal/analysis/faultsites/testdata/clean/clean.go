// A conforming faultinject replica: every site is a declared constant,
// every constant is referenced, and every crash-point call names one.
package faultinject

type Site string

const (
	SiteOne Site = "site.one"
	SiteTwo Site = "site.two"
)

func At(name Site) error { return nil }

func Armed(name Site) bool { return false }

func prodOne() error { return At(SiteOne) }

func prodTwo() bool { return Armed(SiteTwo) }
