// Package framerelease enforces the pooled-frame ownership contract of
// the PR 7 data plane: a buffer obtained from Comm.Recv / RecvTimeout
// is owned by the receiving function, and within that function it must
// either reach Comm.Release on every return path that used it, or have
// its ownership visibly transferred (returned, stored into a field,
// slice, or map, passed to another function, or captured by a closure).
// After Release, the frame belongs to the pool: any further use of the
// buffer or of a slice derived from it — including a second Release —
// is a use-after-free the garbage collector will never catch, because
// the next Send may already own the bytes.
//
// The analyzer keys on structure, not import paths: it tracks results
// of methods named Recv/RecvTimeout on a named type `Comm` that also
// has a `Release` method (internal/mpi today, a TCP transport handle
// tomorrow). The same ownership discipline covers the pool itself:
// a buffer from framePool.get must reach framePool.put exactly once
// unless ownership transfers — the TCP read loop draws frames straight
// from the pool, so its acquire sites never pass through Recv. Copying
// builtins (len, cap, copy, append with ..., string/byte conversions)
// count as uses, not transfers; appending the slice header itself into
// a container is a transfer.
package framerelease

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/driver"
)

// New returns a fresh analyzer instance.
func New() *driver.Analyzer {
	return &driver.Analyzer{
		Name: "framerelease",
		Doc:  "frames from Comm.Recv (and buffers from framePool.get) must be released exactly once on every used path and never touched after",
		Run:  run,
	}
}

func run(pass *driver.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n.Body)
			}
			return true
		})
	}
}

// frameState is the per-path state of each tracked frame group. All
// three facts are "may" facts OR'd at joins: outstanding means some
// path reaching here used the frame with Release still due (a frame
// bound and discharged wholly inside one branch contributes nothing to
// the joined state, so the untaken branch cannot mask or fake a leak);
// released and dead likewise record that some path released or
// transferred the frame, arming the use-after-release checks.
type frameState struct {
	outstanding map[int]bool
	released    map[int]bool
	dead        map[int]bool
}

func newFrameState() *frameState {
	return &frameState{
		outstanding: map[int]bool{},
		released:    map[int]bool{},
		dead:        map[int]bool{},
	}
}

func (s *frameState) Clone() driver.FlowState {
	n := newFrameState()
	n.CopyFrom(s)
	return n
}

func (s *frameState) CopyFrom(src driver.FlowState) {
	o := src.(*frameState)
	s.outstanding = cloneSet(o.outstanding)
	s.released = cloneSet(o.released)
	s.dead = cloneSet(o.dead)
}

func (s *frameState) Join(other driver.FlowState) {
	o := other.(*frameState)
	orInto(s.outstanding, o.outstanding) // a leak on any path is a leak
	orInto(s.released, o.released)       // a release on any path arms use-after
	orInto(s.dead, o.dead)               // any transfer ends the obligation
}

func cloneSet(m map[int]bool) map[int]bool {
	n := make(map[int]bool, len(m))
	for k, v := range m {
		n[k] = v
	}
	return n
}

func orInto(dst, src map[int]bool) {
	for k, v := range src {
		if v {
			dst[k] = true
		}
	}
}

// srcKind distinguishes where a tracked buffer was acquired, purely for
// diagnostic wording: the ownership rules are identical.
type srcKind int

const (
	srcRecv srcKind = iota // Comm.Recv / Comm.RecvTimeout, released by Comm.Release
	srcPool                // framePool.get, released by framePool.put
)

type checker struct {
	pass *driver.Pass
	// groups maps a variable to its frame group; aliases share a group.
	groups map[types.Object]int
	names  map[int]string
	origin map[int]srcKind
	next   int
	// deferred marks groups with a deferred Release. A defer discharges
	// the obligation at every later return, so it is a property of the
	// group, not of one path: defers sit next to the binding in practice.
	deferred map[int]bool
}

func checkFunc(pass *driver.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass, groups: map[types.Object]int{}, names: map[int]string{}, origin: map[int]srcKind{}, deferred: map[int]bool{}}
	w := &driver.FlowWalker{
		EvalExpr:   func(e ast.Expr, fs driver.FlowState) { c.evalExpr(e, fs.(*frameState)) },
		EvalAssign: func(a *ast.AssignStmt, fs driver.FlowState) { c.evalAssign(a, fs.(*frameState)) },
		EvalDefer:  func(call *ast.CallExpr, fs driver.FlowState) { c.evalDefer(call, fs.(*frameState)) },
		AtReturn: func(pos token.Pos, ret *ast.ReturnStmt, fs driver.FlowState) {
			s := fs.(*frameState)
			for _, g := range c.liveGroups() {
				if s.outstanding[g] && !s.dead[g] && !c.deferred[g] {
					if c.origin[g] == srcPool {
						c.pass.Reportf(pos, "buffer %q from framePool.get is used on this path but never put back: the pooled buffer leaks to the garbage collector instead of the pool", c.names[g])
					} else {
						c.pass.Reportf(pos, "frame %q from Recv is used on this path but never Released: the pooled buffer leaks back to the garbage collector instead of the frame pool", c.names[g])
					}
					delete(s.outstanding, g) // one report per path suffices
				}
			}
		},
	}
	w.Walk(body, newFrameState())
}

func (c *checker) liveGroups() []int {
	seen := map[int]bool{}
	var out []int
	for _, g := range c.groups {
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}

// isMethodOn reports whether call is a method call with one of the given
// names on a value whose named type is typeName.
func (c *checker) isMethodOn(call *ast.CallExpr, typeName string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	match := ""
	for _, n := range names {
		if sel.Sel.Name == n {
			match = n
		}
	}
	if match == "" {
		return "", false
	}
	t := c.pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != typeName {
		return "", false
	}
	return match, true
}

// acquireCall reports whether call mints a tracked buffer, and from
// which source.
func (c *checker) acquireCall(call *ast.CallExpr) (srcKind, bool) {
	if _, ok := c.isMethodOn(call, "Comm", "Recv", "RecvTimeout"); ok {
		return srcRecv, true
	}
	if _, ok := c.isMethodOn(call, "framePool", "get"); ok {
		return srcPool, true
	}
	return 0, false
}

// releaseCall reports whether call is a release site (Comm.Release or
// framePool.put with a single argument).
func (c *checker) releaseCall(call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	if _, ok := c.isMethodOn(call, "Comm", "Release"); ok {
		return true
	}
	if _, ok := c.isMethodOn(call, "framePool", "put"); ok {
		return true
	}
	return false
}

// frameGroup resolves e (through parens and slicing) to the frame group
// it aliases, or -1.
func (c *checker) frameGroup(e ast.Expr) int {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			id, ok := e.(*ast.Ident)
			if !ok {
				return -1
			}
			obj := c.pass.TypesInfo.Uses[id]
			if obj == nil {
				return -1
			}
			if g, ok := c.groups[obj]; ok {
				return g
			}
			return -1
		}
	}
}

// use marks a read of the group, reporting use-after-release.
func (c *checker) use(g int, pos token.Pos, st *frameState) {
	if g < 0 {
		return
	}
	if st.released[g] {
		if c.origin[g] == srcPool {
			c.pass.Reportf(pos, "buffer %q used after put: the pool may already have handed its bytes to an unrelated get", c.names[g])
		} else {
			c.pass.Reportf(pos, "frame %q used after Release: the pool may already have handed its bytes to an unrelated Send", c.names[g])
		}
		return
	}
	st.outstanding[g] = true
}

// transfer ends the obligation: ownership visibly moved elsewhere.
func (c *checker) transfer(g int, pos token.Pos, st *frameState) {
	if g < 0 {
		return
	}
	if st.released[g] {
		if c.origin[g] == srcPool {
			c.pass.Reportf(pos, "buffer %q escapes after put: the receiver would alias recycled pool memory", c.names[g])
		} else {
			c.pass.Reportf(pos, "frame %q escapes after Release: the receiver would alias recycled pool memory", c.names[g])
		}
	}
	st.dead[g] = true
	delete(st.outstanding, g)
}

func (c *checker) evalExpr(e ast.Expr, st *frameState) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.CallExpr:
		c.evalCall(e, st)
	case *ast.Ident:
		c.transfer(c.frameGroup(e), e.Pos(), st)
	case *ast.SliceExpr:
		// A bare subslice outside a recognized copying context escapes
		// conservatively only via its enclosing expression; slicing
		// itself is a use.
		c.use(c.frameGroup(e.X), e.Pos(), st)
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			c.evalExpr(idx, st)
		}
	case *ast.IndexExpr:
		c.use(c.frameGroup(e.X), e.Pos(), st)
		c.evalExpr(e.Index, st)
	case *ast.FuncLit:
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if g := c.frameGroup(id); g >= 0 {
					c.transfer(g, id.Pos(), st)
				}
			}
			return true
		})
	default:
		ast.Inspect(e, func(n ast.Node) bool {
			if n == e {
				return true
			}
			if sub, ok := n.(ast.Expr); ok {
				c.evalExpr(sub, st)
				return false
			}
			return true
		})
	}
}

func (c *checker) evalCall(call *ast.CallExpr, st *frameState) {
	// A release on a tracked buffer discharges it (twice is an error).
	if c.releaseCall(call) {
		if g := c.frameGroup(call.Args[0]); g >= 0 {
			if st.released[g] {
				if c.origin[g] == srcPool {
					c.pass.Reportf(call.Pos(), "buffer %q put twice: the pool would hand the same buffer to two callers", c.names[g])
				} else {
					c.pass.Reportf(call.Pos(), "frame %q Released twice: the pool would hand the same buffer to two Sends", c.names[g])
				}
			}
			st.released[g] = true
			delete(st.outstanding, g)
			return
		}
	}

	// Type conversions (string(data), []byte(data)) copy: a use.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			if g := c.frameGroup(a); g >= 0 {
				c.use(g, a.Pos(), st)
				continue
			}
			c.evalExpr(a, st)
		}
		return
	}

	// Copying builtins are uses; appending a slice header is a transfer.
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "len", "cap", "copy":
			for _, a := range call.Args {
				if g := c.frameGroup(a); g >= 0 {
					c.use(g, a.Pos(), st)
					continue
				}
				c.evalExpr(a, st)
			}
			return
		case "append":
			for i, a := range call.Args {
				g := c.frameGroup(a)
				if g < 0 {
					c.evalExpr(a, st)
					continue
				}
				if i > 0 && call.Ellipsis == token.NoPos {
					// append(list, frame): the header itself is stored.
					c.transfer(g, a.Pos(), st)
				} else {
					c.use(g, a.Pos(), st)
				}
			}
			return
		}
	}

	// Any other call receiving the frame (or a subslice) transfers
	// ownership to the callee.
	c.evalExpr(call.Fun, st)
	for _, a := range call.Args {
		ae := a
		for {
			if p, ok := ae.(*ast.ParenExpr); ok {
				ae = p.X
				continue
			}
			break
		}
		if g := c.frameGroup(ae); g >= 0 {
			c.transfer(g, ae.Pos(), st)
			continue
		}
		c.evalExpr(a, st)
	}
}

func (c *checker) evalAssign(a *ast.AssignStmt, st *frameState) {
	// New frame: x, ... := comm.Recv(...) / RecvTimeout(...), or a pool
	// draw x := frames.get(n).
	if len(a.Rhs) == 1 {
		if call, ok := a.Rhs[0].(*ast.CallExpr); ok {
			if kind, ok := c.acquireCall(call); ok {
				for _, arg := range call.Args {
					c.evalExpr(arg, st)
				}
				if id, ok := a.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					obj := c.defOrUse(id)
					if obj != nil {
						g := c.next
						c.next++
						c.groups[obj] = g
						c.names[g] = id.Name
						c.origin[g] = kind
					}
				}
				for _, l := range a.Lhs[1:] {
					c.evalExpr(l, st)
				}
				return
			}
		}
	}

	// Alias: w := frame or w := frame[i:j].
	if len(a.Lhs) == 1 && len(a.Rhs) == 1 {
		if id, ok := a.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if g := c.frameGroup(a.Rhs[0]); g >= 0 {
				c.use(g, a.Rhs[0].Pos(), st)
				if obj := c.defOrUse(id); obj != nil {
					c.groups[obj] = g
				}
				return
			}
		}
	}

	for _, e := range a.Rhs {
		c.evalExpr(e, st)
	}
	for _, e := range a.Lhs {
		if id, ok := e.(*ast.Ident); ok {
			// Rebinding a variable drops its alias relationship.
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
				delete(c.groups, obj)
			}
			if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
				delete(c.groups, obj)
			}
			continue
		}
		c.evalExpr(e, st)
	}
}

func (c *checker) defOrUse(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

func (c *checker) evalDefer(call *ast.CallExpr, st *frameState) {
	if c.releaseCall(call) {
		if g := c.frameGroup(call.Args[0]); g >= 0 {
			// Deferred release satisfies the obligation at every later
			// return without forbidding uses in between.
			c.deferred[g] = true
		}
	}
}
