package bad

type holder struct{ b []byte }

// leak copies out of the frame and drops it.
func leak(c *Comm) (string, error) {
	data, _, err := c.Recv(0, 0)
	if err != nil {
		return "", err
	}
	return string(data), nil // want `frame "data" from Recv is used on this path but never Released`
}

// timeoutLeak leaks a RecvTimeout frame.
func timeoutLeak(c *Comm) byte {
	data, _, ok := c.RecvTimeout(0, 0, 5)
	if !ok {
		return 0
	}
	return data[0] // want `frame "data" from Recv is used on this path but never Released`
}

// aliasLeak leaks through a subslice alias.
func aliasLeak(c *Comm) int {
	data, _, _ := c.Recv(0, 0)
	view := data[4:]
	return len(view) // want `frame "data" from Recv is used on this path but never Released`
}

// useAfter touches the buffer after giving it back to the pool.
func useAfter(c *Comm) byte {
	data, _, _ := c.Recv(0, 0)
	c.Release(data)
	return data[0] // want `frame "data" used after Release`
}

// doubleRelease releases on a branch and then unconditionally.
func doubleRelease(c *Comm) {
	data, _, _ := c.Recv(0, 0)
	if len(data) > 0 {
		c.Release(data)
	}
	c.Release(data) // want `frame "data" Released twice`
}

// escapeAfter stores the released buffer where a later reader will see
// recycled pool memory.
func escapeAfter(c *Comm, h *holder) {
	data, _, _ := c.Recv(0, 0)
	c.Release(data)
	h.b = data // want `frame "data" escapes after Release`
}
