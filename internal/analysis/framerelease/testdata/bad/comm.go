// Package bad carries a self-contained replica of the repo's transport
// shape: a named Comm with Recv, RecvTimeout, and Release. The analyzer
// keys on that structure, so these golden packages need no module
// imports.
package bad

type Status struct{ Source, Tag int }

type Comm struct{}

func (c *Comm) Recv(source, tag int) ([]byte, Status, error) { return nil, Status{}, nil }

func (c *Comm) RecvTimeout(source, tag, ms int) ([]byte, Status, bool) {
	return nil, Status{}, false
}

func (c *Comm) Release(buf []byte) {}
