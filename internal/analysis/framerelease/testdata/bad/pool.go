// A self-contained replica of the transport's pool shape: a named
// framePool with get and put. The analyzer keys on that structure.
package bad

type framePool struct{}

func (p *framePool) get(n int) []byte { return nil }
func (p *framePool) put(buf []byte)   {}

// leakPool uses a pooled buffer and drops it.
func leakPool(p *framePool) int {
	buf := p.get(64)
	buf[0] = 1
	return len(buf) // want `buffer "buf" from framePool.get is used on this path but never put back`
}

// branchLeakPool puts the buffer back on one branch only.
func branchLeakPool(p *framePool, full bool) int {
	buf := p.get(64)
	n := len(buf)
	if full {
		p.put(buf)
	}
	return n // want `buffer "buf" from framePool.get is used on this path but never put back`
}

// useAfterPut touches the buffer after returning it to the pool.
func useAfterPut(p *framePool) byte {
	buf := p.get(8)
	p.put(buf)
	return buf[0] // want `buffer "buf" used after put`
}

// doublePut returns the same buffer twice.
func doublePut(p *framePool) {
	buf := p.get(8)
	if len(buf) > 0 {
		p.put(buf)
	}
	p.put(buf) // want `buffer "buf" put twice`
}

// escapeAfterPut hands a recycled buffer to a callee.
func escapeAfterPut(p *framePool, sink func([]byte)) {
	buf := p.get(8)
	p.put(buf)
	sink(buf) // want `buffer "buf" escapes after put`
}
