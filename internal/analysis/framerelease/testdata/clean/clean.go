package clean

func process(b []byte) {}

// ok releases after the last use on the success path; the unused error
// path owes nothing.
func ok(c *Comm) (byte, error) {
	data, _, err := c.Recv(0, 0)
	if err != nil {
		return 0, err
	}
	v := data[0]
	c.Release(data)
	return v, nil
}

// okDefer discharges via defer while still using the frame afterwards.
func okDefer(c *Comm) int {
	data, _, _ := c.Recv(0, 0)
	defer c.Release(data)
	return len(data)
}

// okReturn transfers ownership to the caller.
func okReturn(c *Comm) []byte {
	data, _, _ := c.Recv(0, 0)
	return data
}

// okStore transfers the slice header into a pinned list.
func okStore(c *Comm, pinned *[][]byte) int {
	data, _, _ := c.Recv(0, 0)
	*pinned = append(*pinned, data)
	return len(data)
}

// okCopy copies the bytes out (a use) and then releases.
func okCopy(c *Comm) []byte {
	data, _, _ := c.Recv(0, 0)
	out := append([]byte(nil), data...)
	c.Release(data)
	return out
}

// okLoop is the server-loop shape: every iteration releases on every
// continuing path.
func okLoop(c *Comm) error {
	for {
		data, st, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if st.Tag == 1 {
			c.Release(data)
			return nil
		}
		process(data)
		c.Release(data)
	}
}
