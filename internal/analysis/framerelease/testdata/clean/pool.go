// A self-contained replica of the transport's pool shape: a named
// framePool with get and put. The analyzer keys on that structure.
package clean

type framePool struct{}

func (p *framePool) get(n int) []byte { return nil }
func (p *framePool) put(buf []byte)   {}

func fill(dst []byte) {}

// roundTrip draws a buffer and puts it back on every path.
func roundTrip(p *framePool) byte {
	buf := p.get(8)
	b := buf[0]
	p.put(buf)
	return b
}

// transferOut hands the buffer to a callee, ending the obligation — the
// readFrame shape: get, fill from the connection, ownership moves on.
func transferOut(p *framePool) {
	buf := p.get(8)
	fill(buf)
}

// putOnErrorPath mirrors readFrame's torn-read branch: the buffer goes
// back to the pool on failure and transfers out on success.
func putOnErrorPath(p *framePool, ok bool) []byte {
	buf := p.get(8)
	if !ok {
		p.put(buf)
		return nil
	}
	return buf
}

// deferredPut discharges the obligation at every return.
func deferredPut(p *framePool, full bool) int {
	buf := p.get(8)
	defer p.put(buf)
	if full {
		return cap(buf)
	}
	return len(buf)
}
