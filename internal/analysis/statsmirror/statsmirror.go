// Package statsmirror turns the repo's per-package Stats/Snapshot
// reflection tests into a compile-time, all-packages guarantee. For
// every named struct type S that carries sync/atomic.Int64 counters and
// has a sibling type named S+"Snapshot" in the same package, it checks:
//
//   - field-name parity: every exported atomic.Int64 counter of S has a
//     plain int64 field of the same name in the snapshot, and every
//     int64 field of the snapshot corresponds to a counter of S (a
//     removed counter must not keep reporting a stale zero);
//   - the Snapshot() method exists and loads every counter: its body
//     must both call .Load() on each counter field and assign each
//     snapshot field, so a counter added to one side cannot silently
//     read zero in /statsz forever.
//
// The runtime backstop for the same contract is internal/statstest,
// kept because reflection also exercises Snapshot()'s copy semantics.
package statsmirror

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/driver"
)

// New returns a fresh analyzer instance.
func New() *driver.Analyzer {
	return &driver.Analyzer{
		Name: "statsmirror",
		Doc:  "atomic counter structs must mirror exactly into their Snapshot siblings",
		Run:  run,
	}
}

func run(pass *driver.Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		stats, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		statsStruct, ok := stats.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		counters := atomicFields(statsStruct)
		if len(counters) == 0 {
			continue
		}
		snapObj, ok := scope.Lookup(name + "Snapshot").(*types.TypeName)
		if !ok {
			continue
		}
		snap, ok := snapObj.Type().(*types.Named)
		if !ok {
			continue
		}
		snapStruct, ok := snap.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		checkPair(pass, stats, statsStruct, snap, snapStruct, counters)
	}
}

// atomicFields returns the exported sync/atomic.Int64 fields of s.
func atomicFields(s *types.Struct) []*types.Var {
	var out []*types.Var
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		if f.Exported() && isAtomicInt64(f.Type()) {
			out = append(out, f)
		}
	}
	return out
}

func isAtomicInt64(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Int64" && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func isInt64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int64
}

func checkPair(pass *driver.Pass, stats *types.Named, statsStruct *types.Struct, snap *types.Named, snapStruct *types.Struct, counters []*types.Var) {
	snapFields := map[string]*types.Var{}
	for i := 0; i < snapStruct.NumFields(); i++ {
		f := snapStruct.Field(i)
		snapFields[f.Name()] = f
	}
	counterNames := map[string]bool{}
	for _, f := range counters {
		counterNames[f.Name()] = true
		sf, ok := snapFields[f.Name()]
		if !ok {
			pass.Reportf(f.Pos(), "counter %s.%s has no mirror field in %s", stats.Obj().Name(), f.Name(), snap.Obj().Name())
			continue
		}
		if !isInt64(sf.Type()) {
			pass.Reportf(sf.Pos(), "%s.%s mirrors an atomic counter but is %s, want int64", snap.Obj().Name(), sf.Name(), sf.Type())
		}
	}
	for i := 0; i < snapStruct.NumFields(); i++ {
		f := snapStruct.Field(i)
		if isInt64(f.Type()) && !counterNames[f.Name()] {
			pass.Reportf(f.Pos(), "%s.%s has no counter in %s: a removed counter must not keep reporting zero", snap.Obj().Name(), f.Name(), stats.Obj().Name())
		}
	}

	decl := snapshotMethodDecl(pass, stats)
	if decl == nil {
		pass.Reportf(stats.Obj().Pos(), "%s has atomic counters and a %s sibling but no Snapshot() method", stats.Obj().Name(), snap.Obj().Name())
		return
	}
	loaded := map[string]bool{}
	assigned := map[string]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// <recv>.<Field>.Load()
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Load" {
				if inner, ok := sel.X.(*ast.SelectorExpr); ok {
					loaded[inner.Sel.Name] = true
				}
			}
		case *ast.KeyValueExpr:
			if id, ok := n.Key.(*ast.Ident); ok {
				assigned[id.Name] = true
			}
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if sel, ok := l.(*ast.SelectorExpr); ok {
					assigned[sel.Sel.Name] = true
				}
			}
		}
		return true
	})
	for _, f := range counters {
		if !loaded[f.Name()] {
			pass.Reportf(decl.Pos(), "%s.Snapshot() never loads counter %s", stats.Obj().Name(), f.Name())
		} else if !assigned[f.Name()] {
			pass.Reportf(decl.Pos(), "%s.Snapshot() never assigns mirror field %s", stats.Obj().Name(), f.Name())
		}
	}
}

// snapshotMethodDecl finds the AST of the Snapshot method declared on
// stats (value or pointer receiver) in this package's files.
func snapshotMethodDecl(pass *driver.Pass, stats *types.Named) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Snapshot" || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj() == stats.Obj() {
				return fd
			}
		}
	}
	return nil
}
