// Package bad exercises every statsmirror diagnostic: missing mirrors,
// mistyped mirrors, stale mirrors, and Snapshot() methods that are
// missing or incomplete.
package bad

import "sync/atomic"

// AStats grew a counter whose mirror was never added.
type AStats struct {
	Puts atomic.Int64
	Gets atomic.Int64 // want `counter AStats\.Gets has no mirror field in AStatsSnapshot`
}

type AStatsSnapshot struct {
	Puts int64
}

func (s *AStats) Snapshot() AStatsSnapshot { // want `AStats\.Snapshot\(\) never loads counter Gets`
	return AStatsSnapshot{Puts: s.Puts.Load()}
}

// BStatsSnapshot mirrors a counter with the wrong type.
type BStats struct {
	Hits atomic.Int64
}

type BStatsSnapshot struct {
	Hits string // want `BStatsSnapshot\.Hits mirrors an atomic counter but is string, want int64`
}

func (s *BStats) Snapshot() BStatsSnapshot {
	var out BStatsSnapshot
	_ = s.Hits.Load()
	out.Hits = ""
	return out
}

// CStatsSnapshot kept a mirror after its counter was removed.
type CStats struct {
	Used atomic.Int64
}

type CStatsSnapshot struct {
	Used  int64
	Freed int64 // want `CStatsSnapshot\.Freed has no counter in CStats: a removed counter must not keep reporting zero`
}

func (s *CStats) Snapshot() CStatsSnapshot {
	return CStatsSnapshot{Used: s.Used.Load()}
}

// DStats has the sibling but never grew a Snapshot method.
type DStats struct { // want `DStats has atomic counters and a DStatsSnapshot sibling but no Snapshot\(\) method`
	N atomic.Int64
}

type DStatsSnapshot struct {
	N int64
}

// EStats loads a counter but drops the value instead of assigning its
// mirror.
type EStats struct {
	A atomic.Int64
	B atomic.Int64
}

type EStatsSnapshot struct {
	A int64
	B int64
}

func (s *EStats) Snapshot() EStatsSnapshot { // want `EStats\.Snapshot\(\) never assigns mirror field B`
	var out EStatsSnapshot
	out.A = s.A.Load()
	_ = s.B.Load()
	return out
}
