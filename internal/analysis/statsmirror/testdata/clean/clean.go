// Package clean holds conforming Stats/StatsSnapshot pairs plus shapes
// the analyzer must ignore.
package clean

import "sync/atomic"

// PoolStats/PoolStatsSnapshot is a complete, well-typed pair.
type PoolStats struct {
	Hits   atomic.Int64
	Misses atomic.Int64
}

type PoolStatsSnapshot struct {
	Hits   int64
	Misses int64
}

func (s *PoolStats) Snapshot() PoolStatsSnapshot {
	return PoolStatsSnapshot{
		Hits:   s.Hits.Load(),
		Misses: s.Misses.Load(),
	}
}

// FieldStats uses assignment form rather than a composite literal.
type FieldStats struct {
	Opens atomic.Int64
}

type FieldStatsSnapshot struct {
	Opens int64
}

func (s *FieldStats) Snapshot() FieldStatsSnapshot {
	var out FieldStatsSnapshot
	out.Opens = s.Opens.Load()
	return out
}

// Loner has counters but no Snapshot sibling: out of scope.
type Loner struct {
	N atomic.Int64
}

// OrphanSnapshot has the suffix but no counter struct: out of scope.
type OrphanSnapshot struct {
	N int64
}
