// Package baseline implements the "traditional techniques" the paper's
// introduction contrasts with the Swift/T approach (§I): (a) a
// hand-written MPI master/worker program in which the developer manages
// task dispatch, data marshalling, and load balancing manually, and (b) a
// scripting-language-specific MPI binding (mpi4py-style) exposing message
// passing directly to the embedded Python interpreter. Benchmarks compare
// these against the Swift/T model for throughput and programming effort.
package baseline

import (
	"fmt"
	"sync/atomic"

	"repro/internal/mpi"
	"repro/internal/pylite"
)

// Task is one unit of master/worker work: an opaque input producing an
// opaque output.
type Task struct {
	ID      int
	Payload []byte
}

// WorkFn executes one task on a worker.
type WorkFn func(t Task) ([]byte, error)

// Message tags for the hand-rolled protocol — exactly the bookkeeping
// Swift/T hides from the user.
const (
	tagReady  = 10
	tagTask   = 11
	tagResult = 12
	tagStop   = 13
)

// MasterWorker runs tasks over the world using the classic on-demand
// master/worker protocol: rank 0 is the master; workers send READY,
// receive a TASK or STOP, and return RESULTs. Returns outputs by task id
// on rank 0 (nil elsewhere).
func MasterWorker(c *mpi.Comm, tasks []Task, work WorkFn) (map[int][]byte, error) {
	if c.Size() < 2 {
		return nil, fmt.Errorf("baseline: master/worker needs at least 2 ranks")
	}
	if c.Rank() == 0 {
		return runMaster(c, tasks)
	}
	return nil, runWorker(c, work)
}

func runMaster(c *mpi.Comm, tasks []Task) (map[int][]byte, error) {
	results := make(map[int][]byte, len(tasks))
	next := 0
	outstanding := 0
	stopped := 0
	workers := c.Size() - 1
	for stopped < workers {
		data, st, err := c.Recv(mpi.AnySource, mpi.AnyTag)
		if err != nil {
			return nil, err
		}
		switch st.Tag {
		case tagReady:
			// Ready pings carry no payload, but the envelope buffer is
			// still pool-owned.
			c.Release(data)
			if next < len(tasks) {
				t := tasks[next]
				next++
				outstanding++
				hdr := make([]byte, 8)
				putU32(hdr, uint32(t.ID))
				putU32(hdr[4:], uint32(len(t.Payload)))
				if err := c.Send(st.Source, tagTask, append(hdr, t.Payload...)); err != nil {
					return nil, err
				}
			} else {
				if err := c.Send(st.Source, tagStop, nil); err != nil {
					return nil, err
				}
				stopped++
			}
		case tagResult:
			if len(data) < 4 {
				c.Release(data)
				return nil, fmt.Errorf("baseline: short result")
			}
			id := int(getU32(data))
			results[id] = append([]byte(nil), data[4:]...)
			c.Release(data)
			outstanding--
		default:
			c.Release(data)
			return nil, fmt.Errorf("baseline: master got unexpected tag %d", st.Tag)
		}
	}
	if outstanding != 0 {
		return nil, fmt.Errorf("baseline: %d results missing", outstanding)
	}
	return results, nil
}

func runWorker(c *mpi.Comm, work WorkFn) error {
	for {
		if err := c.Send(0, tagReady, nil); err != nil {
			return err
		}
		data, st, err := c.Recv(0, mpi.AnyTag)
		if err != nil {
			return err
		}
		if st.Tag == tagStop {
			c.Release(data)
			return nil
		}
		if st.Tag != tagTask || len(data) < 8 {
			c.Release(data)
			return fmt.Errorf("baseline: worker got bad message tag %d", st.Tag)
		}
		id := getU32(data)
		n := int(getU32(data[4:]))
		if 8+n > len(data) {
			c.Release(data)
			return fmt.Errorf("baseline: truncated task payload")
		}
		out, err := work(Task{ID: int(id), Payload: data[8 : 8+n]})
		// The task payload aliases the frame; work has returned, so the
		// frame can go back to the pool before the result ships.
		c.Release(data)
		if err != nil {
			return err
		}
		msg := make([]byte, 4+len(out))
		putU32(msg, id)
		copy(msg[4:], out)
		if err := c.Send(0, tagResult, msg); err != nil {
			return err
		}
	}
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// ---- pympi: the scripting-language MPI alternative (§I) ----

// PyMPIStats counts what a pympi run did.
type PyMPIStats struct {
	Sends atomic.Int64
	Recvs atomic.Int64
}

// RunPyMPI executes the same Python script on every rank with mpi_rank(),
// mpi_size(), mpi_send(dest, s), and mpi_recv(src) bound to the
// simulated MPI communicator — the mpi4py-style approach the paper notes
// "would limit the number of languages that could be used".
func RunPyMPI(world *mpi.World, script string, stats *PyMPIStats) ([]string, error) {
	results := make([]string, world.Size())
	err := world.Run(func(c *mpi.Comm) error {
		py := pylite.New()
		bindMPI(py, c, stats)
		if err := py.Exec(script); err != nil {
			return fmt.Errorf("pympi rank %d: %w", c.Rank(), err)
		}
		v, err := py.EvalExpr("result")
		if err != nil {
			// A script need not define `result`.
			results[c.Rank()] = ""
			return nil
		}
		results[c.Rank()] = pylite.Str(v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

const pympiTag = 20

func bindMPI(py *pylite.Interp, c *mpi.Comm, stats *PyMPIStats) {
	set := func(name string, fn pylite.Builtin) {
		py.SetGlobal(name, fn)
	}
	set("mpi_rank", func(in *pylite.Interp, args []pylite.Value) (pylite.Value, error) {
		return int64(c.Rank()), nil
	})
	set("mpi_size", func(in *pylite.Interp, args []pylite.Value) (pylite.Value, error) {
		return int64(c.Size()), nil
	})
	set("mpi_send", func(in *pylite.Interp, args []pylite.Value) (pylite.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("mpi_send(dest, str) takes 2 arguments")
		}
		dest, ok := args[0].(int64)
		if !ok {
			return nil, fmt.Errorf("mpi_send: dest must be an int")
		}
		if stats != nil {
			stats.Sends.Add(1)
		}
		return nil, c.Send(int(dest), pympiTag, []byte(pylite.Str(args[1])))
	})
	set("mpi_recv", func(in *pylite.Interp, args []pylite.Value) (pylite.Value, error) {
		src := mpi.AnySource
		if len(args) == 1 {
			s, ok := args[0].(int64)
			if !ok {
				return nil, fmt.Errorf("mpi_recv: source must be an int")
			}
			src = int(s)
		}
		data, _, err := c.Recv(src, pympiTag)
		if err != nil {
			return nil, err
		}
		if stats != nil {
			stats.Recvs.Add(1)
		}
		s := string(data)
		c.Release(data)
		return s, nil
	})
	set("mpi_barrier", func(in *pylite.Interp, args []pylite.Value) (pylite.Value, error) {
		return nil, c.Barrier()
	})
}
