package baseline

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/mpi"
)

func TestMasterWorkerAllTasksOnce(t *testing.T) {
	const n = 57
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{ID: i, Payload: []byte(strconv.Itoa(i))}
	}
	w, _ := mpi.NewWorld(5)
	var results map[int][]byte
	err := w.Run(func(c *mpi.Comm) error {
		r, err := MasterWorker(c, tasks, func(task Task) ([]byte, error) {
			v, _ := strconv.Atoi(string(task.Payload))
			return []byte(strconv.Itoa(v * v)), nil
		})
		if c.Rank() == 0 {
			results = r
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("got %d results", len(results))
	}
	for i := 0; i < n; i++ {
		if string(results[i]) != strconv.Itoa(i*i) {
			t.Fatalf("task %d = %q", i, results[i])
		}
	}
}

func TestMasterWorkerZeroTasks(t *testing.T) {
	w, _ := mpi.NewWorld(3)
	err := w.Run(func(c *mpi.Comm) error {
		_, err := MasterWorker(c, nil, func(task Task) ([]byte, error) {
			return nil, fmt.Errorf("should never run")
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMasterWorkerNeedsTwoRanks(t *testing.T) {
	w, _ := mpi.NewWorld(1)
	err := w.Run(func(c *mpi.Comm) error {
		_, err := MasterWorker(c, nil, nil)
		return err
	})
	if err == nil {
		t.Fatal("expected error for 1-rank world")
	}
}

func TestMasterWorkerTaskError(t *testing.T) {
	tasks := []Task{{ID: 0, Payload: []byte("x")}}
	w, _ := mpi.NewWorld(2)
	err := w.Run(func(c *mpi.Comm) error {
		_, err := MasterWorker(c, tasks, func(task Task) ([]byte, error) {
			return nil, fmt.Errorf("deliberate failure")
		})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("err = %v", err)
	}
}

func TestPyMPIRingExchange(t *testing.T) {
	// Each rank sends its rank to the next rank; result is what it got.
	script := `
rank = mpi_rank()
size = mpi_size()
dest = (rank + 1) % size
mpi_send(dest, str(rank))
got = mpi_recv()
result = str(rank) + "<-" + got
`
	w, _ := mpi.NewWorld(4)
	stats := &PyMPIStats{}
	results, err := RunPyMPI(w, script, stats)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		want := fmt.Sprintf("%d<-%d", r, (r+3)%4)
		if results[r] != want {
			t.Fatalf("rank %d: %q, want %q", r, results[r], want)
		}
	}
	if stats.Sends.Load() != 4 || stats.Recvs.Load() != 4 {
		t.Fatalf("sends=%d recvs=%d", stats.Sends.Load(), stats.Recvs.Load())
	}
}

func TestPyMPIMasterWorkerPattern(t *testing.T) {
	// The paper's point: this works, but the user writes the protocol by
	// hand inside Python and it only speaks to other Python ranks.
	script := `
rank = mpi_rank()
size = mpi_size()
if rank == 0:
    total = 0
    for w in range(1, size):
        total = total + int(mpi_recv())
    result = str(total)
else:
    mpi_send(0, str(rank * 100))
    result = "sent"
`
	w, _ := mpi.NewWorld(4)
	results, err := RunPyMPI(w, script, nil)
	if err != nil {
		t.Fatal(err)
	}
	if results[0] != "600" {
		t.Fatalf("master got %q", results[0])
	}
}

func TestPyMPIErrorPropagates(t *testing.T) {
	w, _ := mpi.NewWorld(2)
	_, err := RunPyMPI(w, "mpi_send('notanint', 'x')", nil)
	if err == nil || !strings.Contains(err.Error(), "dest must be an int") {
		t.Fatalf("err = %v", err)
	}
}

func TestPyMPIBarrier(t *testing.T) {
	w, _ := mpi.NewWorld(3)
	results, err := RunPyMPI(w, "mpi_barrier()\nresult = 'past'", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r != "past" {
			t.Fatalf("results = %v", results)
		}
	}
}
