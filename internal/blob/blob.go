// Package blob implements the Swift/T blob type and the blobutils helper
// library (paper §III-B): binary large objects that carry bulk scientific
// data — C-style arrays, strings, and multidimensional Fortran arrays —
// between Swift, Tcl, and native kernels without copying through textual
// representations.
//
// Where real blobutils converts between void* and typed pointers for SWIG,
// this package converts between raw byte slices and typed Go slices with
// explicit little-endian layout, which is the same contract (a pointer +
// length pair reinterpreted at a given element type).
package blob

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Elem identifies the element interpretation of a blob's bytes — the
// typed view blobutils would obtain by casting the void* to a typed
// pointer. ElemBytes means the payload is uninterpreted.
type Elem uint8

// Element kinds.
const (
	ElemBytes Elem = iota
	ElemF64
	ElemF32
	ElemI32
	ElemI64
)

// Size returns the byte width of one element.
func (e Elem) Size() int {
	switch e {
	case ElemF64, ElemI64:
		return 8
	case ElemF32, ElemI32:
		return 4
	}
	return 1
}

func (e Elem) String() string {
	switch e {
	case ElemF64:
		return "float64"
	case ElemF32:
		return "float32"
	case ElemI32:
		return "int32"
	case ElemI64:
		return "int64"
	}
	return "bytes"
}

// Blob is a binary large object: raw bytes plus an optional logical shape
// for multidimensional array data and an element interpretation. A nil
// Dims means a flat buffer; ElemBytes means uninterpreted payload.
type Blob struct {
	Data []byte
	Dims []int // logical extents; Fortran (column-major) order when set
	Elem Elem  // element view of Data (ElemBytes if unknown)
}

// New wraps raw bytes as a flat blob.
func New(data []byte) Blob { return Blob{Data: data} }

// Count returns the number of elements under the blob's element view.
func (b Blob) Count() int { return len(b.Data) / b.Elem.Size() }

// Len returns the byte length.
func (b Blob) Len() int { return len(b.Data) }

// String renders a short diagnostic description, not the contents.
func (b Blob) String() string {
	if b.Dims == nil {
		return fmt.Sprintf("blob[%d bytes]", len(b.Data))
	}
	return fmt.Sprintf("blob[%d bytes, dims %v]", len(b.Data), b.Dims)
}

// FromFloat64s packs a float64 slice into a blob (little-endian IEEE 754),
// the equivalent of blobutils' double* view.
func FromFloat64s(v []float64) Blob {
	data := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(data[8*i:], math.Float64bits(f))
	}
	return Blob{Data: data, Elem: ElemF64}
}

// FromFloat32s packs a float32 slice into a blob (the C float* view).
func FromFloat32s(v []float32) Blob {
	data := make([]byte, 4*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint32(data[4*i:], math.Float32bits(f))
	}
	return Blob{Data: data, Elem: ElemF32}
}

// ToFloat32s reinterprets a blob as a float32 slice.
func ToFloat32s(b Blob) ([]float32, error) {
	if len(b.Data)%4 != 0 {
		return nil, fmt.Errorf("blob: %d bytes is not a whole number of float32s", len(b.Data))
	}
	out := make([]float32, len(b.Data)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b.Data[4*i:]))
	}
	return out, nil
}

// ToFloat64s reinterprets a blob as a float64 slice.
func ToFloat64s(b Blob) ([]float64, error) {
	if len(b.Data)%8 != 0 {
		return nil, fmt.Errorf("blob: %d bytes is not a whole number of float64s", len(b.Data))
	}
	out := make([]float64, len(b.Data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b.Data[8*i:]))
	}
	return out, nil
}

// FromInt32s packs an int32 slice into a blob (the C int view).
func FromInt32s(v []int32) Blob {
	data := make([]byte, 4*len(v))
	for i, n := range v {
		binary.LittleEndian.PutUint32(data[4*i:], uint32(n))
	}
	return Blob{Data: data, Elem: ElemI32}
}

// ToInt32s reinterprets a blob as an int32 slice.
func ToInt32s(b Blob) ([]int32, error) {
	if len(b.Data)%4 != 0 {
		return nil, fmt.Errorf("blob: %d bytes is not a whole number of int32s", len(b.Data))
	}
	out := make([]int32, len(b.Data)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b.Data[4*i:]))
	}
	return out, nil
}

// FromInt64s packs an int64 slice into a blob (the C long long view).
func FromInt64s(v []int64) Blob {
	data := make([]byte, 8*len(v))
	for i, n := range v {
		binary.LittleEndian.PutUint64(data[8*i:], uint64(n))
	}
	return Blob{Data: data, Elem: ElemI64}
}

// ToInt64s reinterprets a blob as an int64 slice.
func ToInt64s(b Blob) ([]int64, error) {
	if len(b.Data)%8 != 0 {
		return nil, fmt.Errorf("blob: %d bytes is not a whole number of int64s", len(b.Data))
	}
	out := make([]int64, len(b.Data)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b.Data[8*i:]))
	}
	return out, nil
}

// FromString packs a NUL-terminated C string into a blob, as blobutils
// does for char* interchange.
func FromString(s string) Blob {
	data := make([]byte, len(s)+1)
	copy(data, s)
	return Blob{Data: data}
}

// ToString unpacks a C-string blob, stopping at the first NUL.
func ToString(b Blob) string {
	for i, c := range b.Data {
		if c == 0 {
			return string(b.Data[:i])
		}
	}
	return string(b.Data)
}

// Floats decodes the blob's elements as float64s under its element view
// (float kinds widen exactly; integer kinds and raw bytes convert).
func (b Blob) Floats() ([]float64, error) {
	switch b.Elem {
	case ElemF64:
		return ToFloat64s(Blob{Data: b.Data})
	case ElemF32:
		v, err := ToFloat32s(Blob{Data: b.Data})
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(v))
		for i, f := range v {
			out[i] = float64(f)
		}
		return out, nil
	case ElemI32:
		v, err := ToInt32s(Blob{Data: b.Data})
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(v))
		for i, n := range v {
			out[i] = float64(n)
		}
		return out, nil
	case ElemI64:
		v, err := ToInt64s(Blob{Data: b.Data})
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(v))
		for i, n := range v {
			out[i] = float64(n)
		}
		return out, nil
	}
	out := make([]float64, len(b.Data))
	for i, c := range b.Data {
		out[i] = float64(c)
	}
	return out, nil
}

// PackLike packs xs into a blob, preferring the prototype's element view
// and dims when the length matches and every value is exactly
// representable under it; otherwise it falls back to a flat float64
// blob. This keeps identity round-trips through an interpreter bit-exact
// for narrow element kinds (float32/int32) without widening them.
func PackLike(xs []float64, proto Blob) Blob {
	if proto.Elem != ElemF64 && len(xs) != proto.Count() {
		return FromFloat64s(xs)
	}
	var out Blob
	switch proto.Elem {
	case ElemF32:
		v := make([]float32, len(xs))
		for i, x := range xs {
			f := float32(x)
			if float64(f) != x {
				return FromFloat64s(xs)
			}
			v[i] = f
		}
		out = FromFloat32s(v)
	case ElemI32:
		v := make([]int32, len(xs))
		for i, x := range xs {
			n := int32(x)
			if float64(n) != x {
				return FromFloat64s(xs)
			}
			v[i] = n
		}
		out = FromInt32s(v)
	case ElemI64:
		v := make([]int64, len(xs))
		for i, x := range xs {
			n := int64(x)
			if float64(n) != x {
				return FromFloat64s(xs)
			}
			v[i] = n
		}
		out = FromInt64s(v)
	case ElemBytes:
		data := make([]byte, len(xs))
		for i, x := range xs {
			c := byte(x)
			if float64(c) != x {
				return FromFloat64s(xs)
			}
			data[i] = c
		}
		out = Blob{Data: data}
	default:
		out = FromFloat64s(xs)
	}
	if n := 1; proto.Dims != nil {
		for _, d := range proto.Dims {
			n *= d
		}
		if n == len(xs) {
			out.Dims = append([]int(nil), proto.Dims...)
		}
	}
	return out
}

// Matrix is a dense 2-D float64 array in Fortran (column-major) layout,
// the shape FortWrap-wrapped kernels expect.
type Matrix struct {
	Rows, Cols int
	data       []float64 // column-major
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("blob: invalid matrix shape %dx%d", rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, data: make([]float64, rows*cols)}, nil
}

// At returns element (i, j) using 0-based row/column indices.
func (m *Matrix) At(i, j int) float64 { return m.data[j*m.Rows+i] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[j*m.Rows+i] = v }

// ColumnMajor exposes the underlying column-major buffer.
func (m *Matrix) ColumnMajor() []float64 { return m.data }

// MatrixToBlob serialises a matrix to a blob with Fortran dims metadata.
func MatrixToBlob(m *Matrix) Blob {
	b := FromFloat64s(m.data)
	b.Dims = []int{m.Rows, m.Cols}
	return b
}

// MatrixFromBlob reconstructs a matrix from a dims-tagged blob, or from a
// flat blob with explicit extents.
func MatrixFromBlob(b Blob, rows, cols int) (*Matrix, error) {
	if b.Dims != nil {
		if len(b.Dims) != 2 {
			return nil, fmt.Errorf("blob: expected 2-D dims, got %v", b.Dims)
		}
		rows, cols = b.Dims[0], b.Dims[1]
	}
	vals, err := ToFloat64s(Blob{Data: b.Data})
	if err != nil {
		return nil, err
	}
	if len(vals) != rows*cols {
		return nil, fmt.Errorf("blob: %d values do not fill a %dx%d matrix", len(vals), rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, data: vals}, nil
}

// Envelope is the wire form of a blob including its dims, used when a blob
// travels through the ADLB data store (which carries flat bytes).
// Layout: u32 ndims, ndims × i64 extents, payload.
func (b Blob) Envelope() []byte {
	out := make([]byte, 4+8*len(b.Dims)+len(b.Data))
	binary.LittleEndian.PutUint32(out, uint32(len(b.Dims)))
	for i, d := range b.Dims {
		binary.LittleEndian.PutUint64(out[4+8*i:], uint64(d))
	}
	copy(out[4+8*len(b.Dims):], b.Data)
	return out
}

// FromEnvelope parses the Envelope layout back into a Blob.
func FromEnvelope(data []byte) (Blob, error) {
	if len(data) < 4 {
		return Blob{}, fmt.Errorf("blob: envelope too short (%d bytes)", len(data))
	}
	nd := int(binary.LittleEndian.Uint32(data))
	if nd < 0 || nd > 16 {
		return Blob{}, fmt.Errorf("blob: implausible ndims %d", nd)
	}
	if len(data) < 4+8*nd {
		return Blob{}, fmt.Errorf("blob: envelope truncated (ndims=%d, %d bytes)", nd, len(data))
	}
	var dims []int
	if nd > 0 {
		dims = make([]int, nd)
		for i := range dims {
			dims[i] = int(binary.LittleEndian.Uint64(data[4+8*i:]))
		}
	}
	return Blob{Data: data[4+8*nd:], Dims: dims}, nil
}
