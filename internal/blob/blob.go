// Package blob implements the Swift/T blob type and the blobutils helper
// library (paper §III-B): binary large objects that carry bulk scientific
// data — C-style arrays, strings, and multidimensional Fortran arrays —
// between Swift, Tcl, and native kernels without copying through textual
// representations.
//
// Where real blobutils converts between void* and typed pointers for SWIG,
// this package converts between raw byte slices and typed Go slices with
// explicit little-endian layout, which is the same contract (a pointer +
// length pair reinterpreted at a given element type).
package blob

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Blob is a binary large object: raw bytes plus an optional logical shape
// for multidimensional array data. A nil Dims means a flat buffer.
type Blob struct {
	Data []byte
	Dims []int // logical extents; Fortran (column-major) order when set
}

// New wraps raw bytes as a flat blob.
func New(data []byte) Blob { return Blob{Data: data} }

// Len returns the byte length.
func (b Blob) Len() int { return len(b.Data) }

// String renders a short diagnostic description, not the contents.
func (b Blob) String() string {
	if b.Dims == nil {
		return fmt.Sprintf("blob[%d bytes]", len(b.Data))
	}
	return fmt.Sprintf("blob[%d bytes, dims %v]", len(b.Data), b.Dims)
}

// FromFloat64s packs a float64 slice into a blob (little-endian IEEE 754),
// the equivalent of blobutils' double* view.
func FromFloat64s(v []float64) Blob {
	data := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(data[8*i:], math.Float64bits(f))
	}
	return Blob{Data: data}
}

// ToFloat64s reinterprets a blob as a float64 slice.
func ToFloat64s(b Blob) ([]float64, error) {
	if len(b.Data)%8 != 0 {
		return nil, fmt.Errorf("blob: %d bytes is not a whole number of float64s", len(b.Data))
	}
	out := make([]float64, len(b.Data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b.Data[8*i:]))
	}
	return out, nil
}

// FromInt32s packs an int32 slice into a blob (the C int view).
func FromInt32s(v []int32) Blob {
	data := make([]byte, 4*len(v))
	for i, n := range v {
		binary.LittleEndian.PutUint32(data[4*i:], uint32(n))
	}
	return Blob{Data: data}
}

// ToInt32s reinterprets a blob as an int32 slice.
func ToInt32s(b Blob) ([]int32, error) {
	if len(b.Data)%4 != 0 {
		return nil, fmt.Errorf("blob: %d bytes is not a whole number of int32s", len(b.Data))
	}
	out := make([]int32, len(b.Data)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b.Data[4*i:]))
	}
	return out, nil
}

// FromInt64s packs an int64 slice into a blob (the C long long view).
func FromInt64s(v []int64) Blob {
	data := make([]byte, 8*len(v))
	for i, n := range v {
		binary.LittleEndian.PutUint64(data[8*i:], uint64(n))
	}
	return Blob{Data: data}
}

// ToInt64s reinterprets a blob as an int64 slice.
func ToInt64s(b Blob) ([]int64, error) {
	if len(b.Data)%8 != 0 {
		return nil, fmt.Errorf("blob: %d bytes is not a whole number of int64s", len(b.Data))
	}
	out := make([]int64, len(b.Data)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b.Data[8*i:]))
	}
	return out, nil
}

// FromString packs a NUL-terminated C string into a blob, as blobutils
// does for char* interchange.
func FromString(s string) Blob {
	data := make([]byte, len(s)+1)
	copy(data, s)
	return Blob{Data: data}
}

// ToString unpacks a C-string blob, stopping at the first NUL.
func ToString(b Blob) string {
	for i, c := range b.Data {
		if c == 0 {
			return string(b.Data[:i])
		}
	}
	return string(b.Data)
}

// Matrix is a dense 2-D float64 array in Fortran (column-major) layout,
// the shape FortWrap-wrapped kernels expect.
type Matrix struct {
	Rows, Cols int
	data       []float64 // column-major
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("blob: invalid matrix shape %dx%d", rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, data: make([]float64, rows*cols)}, nil
}

// At returns element (i, j) using 0-based row/column indices.
func (m *Matrix) At(i, j int) float64 { return m.data[j*m.Rows+i] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[j*m.Rows+i] = v }

// ColumnMajor exposes the underlying column-major buffer.
func (m *Matrix) ColumnMajor() []float64 { return m.data }

// MatrixToBlob serialises a matrix to a blob with Fortran dims metadata.
func MatrixToBlob(m *Matrix) Blob {
	b := FromFloat64s(m.data)
	b.Dims = []int{m.Rows, m.Cols}
	return b
}

// MatrixFromBlob reconstructs a matrix from a dims-tagged blob, or from a
// flat blob with explicit extents.
func MatrixFromBlob(b Blob, rows, cols int) (*Matrix, error) {
	if b.Dims != nil {
		if len(b.Dims) != 2 {
			return nil, fmt.Errorf("blob: expected 2-D dims, got %v", b.Dims)
		}
		rows, cols = b.Dims[0], b.Dims[1]
	}
	vals, err := ToFloat64s(Blob{Data: b.Data})
	if err != nil {
		return nil, err
	}
	if len(vals) != rows*cols {
		return nil, fmt.Errorf("blob: %d values do not fill a %dx%d matrix", len(vals), rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, data: vals}, nil
}

// Envelope is the wire form of a blob including its dims, used when a blob
// travels through the ADLB data store (which carries flat bytes).
// Layout: u32 ndims, ndims × i64 extents, payload.
func (b Blob) Envelope() []byte {
	out := make([]byte, 4+8*len(b.Dims)+len(b.Data))
	binary.LittleEndian.PutUint32(out, uint32(len(b.Dims)))
	for i, d := range b.Dims {
		binary.LittleEndian.PutUint64(out[4+8*i:], uint64(d))
	}
	copy(out[4+8*len(b.Dims):], b.Data)
	return out
}

// FromEnvelope parses the Envelope layout back into a Blob.
func FromEnvelope(data []byte) (Blob, error) {
	if len(data) < 4 {
		return Blob{}, fmt.Errorf("blob: envelope too short (%d bytes)", len(data))
	}
	nd := int(binary.LittleEndian.Uint32(data))
	if nd < 0 || nd > 16 {
		return Blob{}, fmt.Errorf("blob: implausible ndims %d", nd)
	}
	if len(data) < 4+8*nd {
		return Blob{}, fmt.Errorf("blob: envelope truncated (ndims=%d, %d bytes)", nd, len(data))
	}
	var dims []int
	if nd > 0 {
		dims = make([]int, nd)
		for i := range dims {
			dims[i] = int(binary.LittleEndian.Uint64(data[4+8*i:]))
		}
	}
	return Blob{Data: data[4+8*nd:], Dims: dims}, nil
}
