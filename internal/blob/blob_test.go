package blob

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFloat64RoundTrip(t *testing.T) {
	in := []float64{0, 1, -1, math.Pi, math.MaxFloat64, math.SmallestNonzeroFloat64}
	out, err := ToFloat64s(FromFloat64s(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("elem %d: %v != %v", i, out[i], in[i])
		}
	}
}

func TestFloat64Property(t *testing.T) {
	f := func(v []float64) bool {
		out, err := ToFloat64s(FromFloat64s(v))
		if err != nil || len(out) != len(v) {
			return false
		}
		for i := range v {
			if out[i] != v[i] && !(math.IsNaN(out[i]) && math.IsNaN(v[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt32RoundTrip(t *testing.T) {
	f := func(v []int32) bool {
		out, err := ToInt32s(FromInt32s(v))
		if err != nil || len(out) != len(v) {
			return false
		}
		for i := range v {
			if out[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64RoundTrip(t *testing.T) {
	f := func(v []int64) bool {
		out, err := ToInt64s(FromInt64s(v))
		if err != nil || len(out) != len(v) {
			return false
		}
		for i := range v {
			if out[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMisalignedErrors(t *testing.T) {
	if _, err := ToFloat64s(New(make([]byte, 7))); err == nil {
		t.Fatal("expected error for 7 bytes as float64s")
	}
	if _, err := ToInt32s(New(make([]byte, 5))); err == nil {
		t.Fatal("expected error for 5 bytes as int32s")
	}
	if _, err := ToInt64s(New(make([]byte, 9))); err == nil {
		t.Fatal("expected error for 9 bytes as int64s")
	}
}

func TestCString(t *testing.T) {
	b := FromString("hello")
	if b.Len() != 6 {
		t.Fatalf("len = %d, want 6 (includes NUL)", b.Len())
	}
	if got := ToString(b); got != "hello" {
		t.Fatalf("got %q", got)
	}
	// Embedded NUL terminates.
	if got := ToString(New([]byte{'a', 0, 'b'})); got != "a" {
		t.Fatalf("got %q", got)
	}
	// No NUL at all.
	if got := ToString(New([]byte("raw"))); got != "raw" {
		t.Fatalf("got %q", got)
	}
}

func TestMatrixColumnMajor(t *testing.T) {
	m, err := NewMatrix(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Fill with a recognisable pattern.
	v := 0.0
	for j := 0; j < 3; j++ {
		for i := 0; i < 2; i++ {
			m.Set(i, j, v)
			v++
		}
	}
	// Column-major layout: walking the buffer goes down each column.
	want := []float64{0, 1, 2, 3, 4, 5}
	got := m.ColumnMajor()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buffer[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if m.At(1, 2) != 5 {
		t.Fatalf("At(1,2) = %v", m.At(1, 2))
	}
	if _, err := NewMatrix(-1, 2); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMatrixBlobRoundTrip(t *testing.T) {
	m, _ := NewMatrix(3, 2)
	m.Set(2, 1, 42.5)
	b := MatrixToBlob(m)
	if len(b.Dims) != 2 || b.Dims[0] != 3 || b.Dims[1] != 2 {
		t.Fatalf("dims = %v", b.Dims)
	}
	m2, err := MatrixFromBlob(b, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m2.At(2, 1) != 42.5 {
		t.Fatalf("value lost: %v", m2.At(2, 1))
	}
	// Flat blob with explicit extents.
	m3, err := MatrixFromBlob(Blob{Data: b.Data}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m3.At(2, 1) != 42.5 {
		t.Fatal("flat reconstruction failed")
	}
	// Wrong extents.
	if _, err := MatrixFromBlob(Blob{Data: b.Data}, 4, 2); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	b := FromFloat64s([]float64{1, 2, 3, 4})
	b.Dims = []int{2, 2}
	env := b.Envelope()
	back, err := FromEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Dims) != 2 || back.Dims[0] != 2 || back.Dims[1] != 2 {
		t.Fatalf("dims = %v", back.Dims)
	}
	vals, err := ToFloat64s(back)
	if err != nil {
		t.Fatal(err)
	}
	if vals[3] != 4 {
		t.Fatalf("vals = %v", vals)
	}
	// Flat blob envelope.
	flat := New([]byte{9, 9})
	back2, err := FromEnvelope(flat.Envelope())
	if err != nil {
		t.Fatal(err)
	}
	if back2.Dims != nil || len(back2.Data) != 2 {
		t.Fatalf("flat round trip: %+v", back2)
	}
	// Corrupt envelopes.
	if _, err := FromEnvelope(nil); err == nil {
		t.Fatal("expected error for nil envelope")
	}
	if _, err := FromEnvelope([]byte{255, 255, 255, 255}); err == nil {
		t.Fatal("expected error for implausible ndims")
	}
	if _, err := FromEnvelope([]byte{2, 0, 0, 0, 1}); err == nil {
		t.Fatal("expected error for truncated dims")
	}
}

func TestEnvelopeProperty(t *testing.T) {
	f := func(data []byte, d1, d2 uint8) bool {
		b := Blob{Data: data, Dims: []int{int(d1), int(d2)}}
		back, err := FromEnvelope(b.Envelope())
		if err != nil {
			return false
		}
		if len(back.Data) != len(data) {
			return false
		}
		for i := range data {
			if back.Data[i] != data[i] {
				return false
			}
		}
		return back.Dims[0] == int(d1) && back.Dims[1] == int(d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlobString(t *testing.T) {
	if s := New([]byte{1, 2}).String(); s != "blob[2 bytes]" {
		t.Fatalf("got %q", s)
	}
	b := Blob{Data: []byte{1}, Dims: []int{1}}
	if s := b.String(); s != "blob[1 bytes, dims [1]]" {
		t.Fatalf("got %q", s)
	}
}

func TestElemViews(t *testing.T) {
	if FromFloat64s(nil).Elem != ElemF64 || FromFloat32s(nil).Elem != ElemF32 ||
		FromInt32s(nil).Elem != ElemI32 || FromInt64s(nil).Elem != ElemI64 {
		t.Fatal("packers do not tag their element kind")
	}
	if New([]byte{1}).Elem != ElemBytes {
		t.Fatal("raw blobs must be ElemBytes")
	}
	b := FromFloat32s([]float32{1, 2, 3})
	if b.Count() != 3 || b.Elem.Size() != 4 {
		t.Fatalf("count/size = %d/%d", b.Count(), b.Elem.Size())
	}
	back, err := ToFloat32s(b)
	if err != nil || back[2] != 3 {
		t.Fatalf("float32 round trip = %v, %v", back, err)
	}
}

func TestFloatsDecodesAnyView(t *testing.T) {
	cases := []struct {
		b    Blob
		want []float64
	}{
		{FromFloat64s([]float64{1.5, -2}), []float64{1.5, -2}},
		{FromFloat32s([]float32{0.25, 4}), []float64{0.25, 4}},
		{FromInt32s([]int32{-7, 7}), []float64{-7, 7}},
		{FromInt64s([]int64{9}), []float64{9}},
		{New([]byte{0, 255}), []float64{0, 255}},
	}
	for _, tc := range cases {
		got, err := tc.b.Floats()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("%v: len %d", tc.b, len(got))
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%v: got %v want %v", tc.b, got, tc.want)
			}
		}
	}
}

func TestPackLikePrefersPrototype(t *testing.T) {
	proto := FromInt32s([]int32{1, 2, 3})
	proto.Dims = []int{3, 1}

	// Representable values repack bit-exact under the prototype's view.
	out := PackLike([]float64{4, 5, 6}, proto)
	if out.Elem != ElemI32 || len(out.Dims) != 2 {
		t.Fatalf("repack = %+v", out)
	}
	v, _ := ToInt32s(Blob{Data: out.Data})
	if v[0] != 4 || v[2] != 6 {
		t.Fatalf("values = %v", v)
	}

	// Unrepresentable values fall back to flat float64.
	out = PackLike([]float64{0.5, 1, 2}, proto)
	if out.Elem != ElemF64 || out.Dims != nil {
		t.Fatalf("fallback = %+v", out)
	}

	// Length changes drop the prototype (and its dims).
	out = PackLike([]float64{1, 2}, proto)
	if out.Elem != ElemF64 || out.Dims != nil {
		t.Fatalf("length change = %+v", out)
	}

	// float32 identity stays bit-exact.
	p32 := FromFloat32s([]float32{0.1, -2.5})
	xs, _ := p32.Floats()
	out = PackLike(xs, p32)
	if out.Elem != ElemF32 || string(out.Data) != string(p32.Data) {
		t.Fatalf("f32 identity not bit-exact: %+v", out)
	}
}
