// Package chunk defines the columnar representation of batched values on
// the typed data plane, modeled on TiDB's vectorized chunk: instead of N
// boxed per-element values, a batch travels as one contiguous typed
// buffer per element class plus a one-byte-per-row kind tag. A chunk of a
// million floats is two buffers (1 MB of kind tags, 8 MB of IEEE bits),
// not a million allocations, and the numeric column is bit-identical to a
// packed blob payload — so gather (container -> packed vector) and
// scatter (packed vector -> container) convert between chunk and blob
// with at most a slice alias.
//
// The layout is row-ordered within each column: row i's payload lives in
// the column selected by Kinds[i], after the payloads of all earlier rows
// of the same class. Numeric rows (ints and floats) share the Num column
// at 8 bytes per row, little-endian — IEEE bits for floats, two's
// complement for ints, exactly the data-store encoding. Variable-width
// rows (strings and blobs) share the Raw column, delimited by Off; blob
// rows additionally carry their element kind and logical dims in Meta.
// Void rows occupy no column space at all.
//
// Chunks decoded from the wire alias the received frame (see the
// data-plane memory model in the repository doc.go): columns are views,
// valid until the frame's documented release point, and consumers that
// keep row payloads longer must copy them out.
package chunk

import (
	"fmt"
	"math"
)

// Row kind tags. The zero value is deliberately not a valid kind so a
// zeroed Kinds column cannot masquerade as a chunk of voids.
const (
	KindVoid   byte = 1
	KindInt    byte = 2
	KindFloat  byte = 3
	KindString byte = 4
	KindBlob   byte = 5
)

// BlobMeta is the layout metadata of one blob row: the element kind
// (blob.Elem's numeric value; 0 = raw bytes) and logical Fortran-order
// extents, carried across the wire exactly as adlb.Value does for a
// single blob.
type BlobMeta struct {
	Elem uint8
	Dims []int
}

// Chunk is one columnar batch. The zero value is an empty chunk ready
// for appending; Reset recycles the buffers for the next batch.
type Chunk struct {
	Kinds []byte     // one kind tag per row
	Num   []byte     // 8 bytes per int/float row, in row order
	Raw   []byte     // concatenated string/blob payloads, in row order
	Off   []uint32   // var-row j's payload is Raw[Off[j]:Off[j+1]]
	Meta  []BlobMeta // one entry per blob row, in row order
}

// Len returns the number of rows.
func (c *Chunk) Len() int { return len(c.Kinds) }

// Reset empties the chunk, keeping the column buffers for reuse.
func (c *Chunk) Reset() {
	c.Kinds = c.Kinds[:0]
	c.Num = c.Num[:0]
	c.Raw = c.Raw[:0]
	c.Off = c.Off[:0]
	c.Meta = c.Meta[:0]
}

func (c *Chunk) appendNum(kind byte, b8 [8]byte) {
	c.Kinds = append(c.Kinds, kind)
	c.Num = append(c.Num, b8[:]...)
}

// AppendInt appends an integer row.
func (c *Chunk) AppendInt(v int64) {
	var b [8]byte
	putU64(b[:], uint64(v))
	c.appendNum(KindInt, b)
}

// AppendFloat appends a float row.
func (c *Chunk) AppendFloat(v float64) {
	var b [8]byte
	putU64(b[:], math.Float64bits(v))
	c.appendNum(KindFloat, b)
}

// AppendNumRaw appends an int or float row from its canonical 8-byte
// little-endian encoding, avoiding a decode/re-encode when the bits are
// already in store form.
func (c *Chunk) AppendNumRaw(kind byte, b []byte) error {
	if kind != KindInt && kind != KindFloat {
		return fmt.Errorf("chunk: AppendNumRaw of kind %d", kind)
	}
	if len(b) != 8 {
		return fmt.Errorf("chunk: numeric row must be 8 bytes, got %d", len(b))
	}
	c.Kinds = append(c.Kinds, kind)
	c.Num = append(c.Num, b...)
	return nil
}

func (c *Chunk) appendVar(kind byte, b []byte) {
	if len(c.Off) == 0 {
		c.Off = append(c.Off, 0)
	}
	c.Kinds = append(c.Kinds, kind)
	c.Raw = append(c.Raw, b...)
	c.Off = append(c.Off, uint32(len(c.Raw)))
}

// AppendString appends a string row.
func (c *Chunk) AppendString(s string) {
	if len(c.Off) == 0 {
		c.Off = append(c.Off, 0)
	}
	c.Kinds = append(c.Kinds, KindString)
	c.Raw = append(c.Raw, s...)
	c.Off = append(c.Off, uint32(len(c.Raw)))
}

// AppendBytes appends a string row from raw bytes.
func (c *Chunk) AppendBytes(b []byte) { c.appendVar(KindString, b) }

// AppendBlob appends a blob row with its layout metadata.
func (c *Chunk) AppendBlob(b []byte, elem uint8, dims []int) {
	c.appendVar(KindBlob, b)
	c.Meta = append(c.Meta, BlobMeta{Elem: elem, Dims: dims})
}

// AppendVoid appends a void (signal-only) row.
func (c *Chunk) AppendVoid() { c.Kinds = append(c.Kinds, KindVoid) }

// AllKind returns the single kind shared by every row, or false when the
// chunk is empty or mixed-kind. Homogeneous numeric chunks are the fast
// path: their Num column is bit-identical to a packed blob payload.
func (c *Chunk) AllKind() (byte, bool) {
	if len(c.Kinds) == 0 {
		return 0, false
	}
	k := c.Kinds[0]
	for _, t := range c.Kinds[1:] {
		if t != k {
			return 0, false
		}
	}
	return k, true
}

// Validate checks the cross-column invariants: every kind tag is known,
// the Num column holds exactly 8 bytes per numeric row, Off delimits
// exactly the var-width rows with nondecreasing offsets ending at
// len(Raw), and Meta has one entry per blob row. Wire decoding calls this
// so a hostile frame cannot produce a chunk whose readers index out of
// bounds.
func (c *Chunk) Validate() error {
	var nums, vars, blobs int
	for i, k := range c.Kinds {
		switch k {
		case KindVoid:
		case KindInt, KindFloat:
			nums++
		case KindString:
			vars++
		case KindBlob:
			vars++
			blobs++
		default:
			return fmt.Errorf("chunk: row %d has unknown kind %d", i, k)
		}
	}
	if len(c.Num) != 8*nums {
		return fmt.Errorf("chunk: %d numeric rows need %d Num bytes, have %d", nums, 8*nums, len(c.Num))
	}
	if vars == 0 {
		if len(c.Off) != 0 || len(c.Raw) != 0 {
			return fmt.Errorf("chunk: no var-width rows but %d offsets and %d Raw bytes", len(c.Off), len(c.Raw))
		}
	} else {
		if len(c.Off) != vars+1 {
			return fmt.Errorf("chunk: %d var-width rows need %d offsets, have %d", vars, vars+1, len(c.Off))
		}
		if c.Off[0] != 0 {
			return fmt.Errorf("chunk: first offset is %d, want 0", c.Off[0])
		}
		for j := 1; j < len(c.Off); j++ {
			if c.Off[j] < c.Off[j-1] {
				return fmt.Errorf("chunk: offset %d decreases (%d < %d)", j, c.Off[j], c.Off[j-1])
			}
		}
		if int(c.Off[vars]) != len(c.Raw) {
			return fmt.Errorf("chunk: offsets end at %d, Raw has %d bytes", c.Off[vars], len(c.Raw))
		}
	}
	if len(c.Meta) != blobs {
		return fmt.Errorf("chunk: %d blob rows need %d Meta entries, have %d", blobs, blobs, len(c.Meta))
	}
	return nil
}

// Reader walks a chunk's rows in order, tracking the per-column cursors.
// The zero Reader is not valid; obtain one from Chunk.Reader.
type Reader struct {
	c    *Chunk
	row  int // current row, -1 before the first Next
	num  int // numeric rows consumed before the current row
	vr   int // var-width rows consumed before the current row
	blob int // blob rows consumed before the current row
}

// Reader returns a row reader positioned before the first row.
func (c *Chunk) Reader() Reader { return Reader{c: c, row: -1} }

// Next advances to the next row, returning false past the end.
func (r *Reader) Next() bool {
	if r.row >= 0 {
		switch r.c.Kinds[r.row] {
		case KindInt, KindFloat:
			r.num++
		case KindString:
			r.vr++
		case KindBlob:
			r.vr++
			r.blob++
		}
	}
	r.row++
	return r.row < len(r.c.Kinds)
}

// Kind returns the current row's kind tag.
func (r *Reader) Kind() byte { return r.c.Kinds[r.row] }

// Int decodes the current (integer) row.
func (r *Reader) Int() int64 { return int64(getU64(r.c.Num[8*r.num:])) }

// Float decodes the current (float) row.
func (r *Reader) Float() float64 { return math.Float64frombits(getU64(r.c.Num[8*r.num:])) }

// NumRaw returns the current numeric row's canonical 8-byte encoding,
// aliasing the Num column.
func (r *Reader) NumRaw() []byte { return r.c.Num[8*r.num : 8*r.num+8] }

// Bytes returns the current string or blob row's payload, aliasing Raw.
func (r *Reader) Bytes() []byte { return r.c.Raw[r.c.Off[r.vr]:r.c.Off[r.vr+1]] }

// Meta returns the current (blob) row's layout metadata.
func (r *Reader) Meta() BlobMeta { return r.c.Meta[r.blob] }

// ---- minimal little-endian helpers (keep the package dependency-free) ----

func putU64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	_ = b[7]
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
