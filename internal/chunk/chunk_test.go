package chunk

import (
	"bytes"
	"math"
	"testing"
)

func TestAppendAndReadMixedRows(t *testing.T) {
	var c Chunk
	c.AppendInt(-7)
	c.AppendFloat(2.5)
	c.AppendString("hi")
	c.AppendBlob([]byte{1, 2, 3}, 7, []int{3, 1})
	c.AppendVoid()
	c.AppendBytes([]byte("raw"))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 6 {
		t.Fatalf("Len = %d, want 6", c.Len())
	}
	if _, ok := c.AllKind(); ok {
		t.Fatalf("mixed chunk reported homogeneous")
	}

	r := c.Reader()
	if !r.Next() || r.Kind() != KindInt || r.Int() != -7 {
		t.Fatalf("row 0: kind=%d", r.Kind())
	}
	if !bytes.Equal(r.NumRaw(), c.Num[:8]) {
		t.Fatalf("NumRaw does not alias the Num column")
	}
	if !r.Next() || r.Kind() != KindFloat || r.Float() != 2.5 {
		t.Fatalf("row 1: kind=%d", r.Kind())
	}
	if !r.Next() || r.Kind() != KindString || string(r.Bytes()) != "hi" {
		t.Fatalf("row 2: kind=%d bytes=%q", r.Kind(), r.Bytes())
	}
	if !r.Next() || r.Kind() != KindBlob || !bytes.Equal(r.Bytes(), []byte{1, 2, 3}) {
		t.Fatalf("row 3: kind=%d", r.Kind())
	}
	if m := r.Meta(); m.Elem != 7 || len(m.Dims) != 2 || m.Dims[0] != 3 || m.Dims[1] != 1 {
		t.Fatalf("row 3 meta = %+v", r.Meta())
	}
	if !r.Next() || r.Kind() != KindVoid {
		t.Fatalf("row 4: kind=%d", r.Kind())
	}
	if !r.Next() || r.Kind() != KindString || string(r.Bytes()) != "raw" {
		t.Fatalf("row 5: kind=%d", r.Kind())
	}
	if r.Next() {
		t.Fatalf("reader did not stop after last row")
	}
}

func TestNumColumnMatchesPackedEncoding(t *testing.T) {
	// The Num column must be bit-identical to the packed-blob payload:
	// IEEE bits / two's complement, little-endian, 8 bytes per row.
	var c Chunk
	c.AppendFloat(1.5)
	c.AppendFloat(math.Inf(-1))
	k, ok := c.AllKind()
	if !ok || k != KindFloat {
		t.Fatalf("AllKind = %d,%v", k, ok)
	}
	want := make([]byte, 16)
	putU64(want, math.Float64bits(1.5))
	putU64(want[8:], math.Float64bits(math.Inf(-1)))
	if !bytes.Equal(c.Num, want) {
		t.Fatalf("Num column %x, want %x", c.Num, want)
	}
}

func TestAppendNumRaw(t *testing.T) {
	var c Chunk
	if err := c.AppendNumRaw(KindInt, []byte{1, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	r := c.Reader()
	if !r.Next() || r.Int() != 1 {
		t.Fatalf("raw-appended int decoded wrong")
	}
	if err := c.AppendNumRaw(KindString, make([]byte, 8)); err == nil {
		t.Fatalf("AppendNumRaw accepted a non-numeric kind")
	}
	if err := c.AppendNumRaw(KindInt, make([]byte, 7)); err == nil {
		t.Fatalf("AppendNumRaw accepted a short row")
	}
}

func TestResetKeepsCapacity(t *testing.T) {
	var c Chunk
	for i := 0; i < 100; i++ {
		c.AppendFloat(float64(i))
	}
	c.AppendString("x")
	numCap, rawCap := cap(c.Num), cap(c.Raw)
	c.Reset()
	if c.Len() != 0 || len(c.Num) != 0 || len(c.Off) != 0 || len(c.Meta) != 0 {
		t.Fatalf("Reset left rows behind")
	}
	if cap(c.Num) != numCap || cap(c.Raw) != rawCap {
		t.Fatalf("Reset dropped column capacity")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsCorruptChunks(t *testing.T) {
	cases := []struct {
		name string
		c    Chunk
	}{
		{"zero kind tag", Chunk{Kinds: []byte{0}}},
		{"unknown kind", Chunk{Kinds: []byte{9}}},
		{"short num", Chunk{Kinds: []byte{KindInt}, Num: make([]byte, 7)}},
		{"extra num", Chunk{Kinds: []byte{KindVoid}, Num: make([]byte, 8)}},
		{"offsets without vars", Chunk{Kinds: []byte{KindInt}, Num: make([]byte, 8), Off: []uint32{0}}},
		{"missing offsets", Chunk{Kinds: []byte{KindString}, Raw: []byte("x")}},
		{"first offset nonzero", Chunk{Kinds: []byte{KindString}, Raw: []byte("x"), Off: []uint32{1, 1}}},
		{"decreasing offsets", Chunk{Kinds: []byte{KindString, KindString}, Raw: []byte("ab"), Off: []uint32{0, 2, 1}}},
		{"offsets past raw", Chunk{Kinds: []byte{KindString}, Raw: []byte("x"), Off: []uint32{0, 9}}},
		{"missing blob meta", Chunk{Kinds: []byte{KindBlob}, Raw: []byte("x"), Off: []uint32{0, 1}}},
		{"extra blob meta", Chunk{Kinds: []byte{KindString}, Raw: []byte("x"), Off: []uint32{0, 1}, Meta: []BlobMeta{{}}}},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a corrupt chunk", tc.name)
		}
	}
}
