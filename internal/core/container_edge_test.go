package core

// Container<->vector bridge edge cases, pinned: vpack of an empty closed
// array produces a 0-byte float64 blob that survives every registered
// engine and vunpacks back to an empty array; a 1-element array
// round-trips bit-exact the same way; and `int A[] = vunpack(b)` over a
// non-integral blob fails loudly with the "not an integer" diagnostic,
// wherever the blob was born. The engine identity statements come from
// the conformance dialects, so these edges track the registry like the
// main matrix does.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/lang/conformance"
)

// runEdge runs a vpack edge program with the given element-writing loop
// body and engine identity statement (binding `through` from `v`).
func runEdge(t *testing.T, writes, stmt string) *Result {
	t.Helper()
	src := fmt.Sprintf(`
		float xs[];
		%s
		blob v = vpack(xs);
		%s
		float ys[] = vunpack(through);
		printf("bytes=%%i n=%%i", blob_size(through), size(ys));
	`, writes, stmt)
	res, err := Run(src, Config{Engines: 1, Workers: 2, Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVpackEmptyArrayRoundTripsEveryEngine(t *testing.T) {
	// An empty closed array packs to a 0-byte blob — not an error — and
	// the empty vector is a legal value in every registered engine.
	conformance.EachEngine(t, func(t *testing.T, reg lang.Registration, d conformance.Dialect) {
		res := runEdge(t, "", d.Swift)
		if !strings.Contains(res.Stdout, "bytes=0 n=0") {
			t.Fatalf("empty round trip through %s: stdout = %q", reg.Name, res.Stdout)
		}
	})
	t.Run("no-engine", func(t *testing.T) {
		res := runEdge(t, "", "blob through = v;")
		if !strings.Contains(res.Stdout, "bytes=0 n=0") {
			t.Fatalf("stdout = %q", res.Stdout)
		}
	})
}

func TestVpackOneElementArrayRoundTripsEveryEngine(t *testing.T) {
	// One element, full float64 mantissa (0.1 + 0.2): any rendering on
	// the route would break the equality check after unpacking.
	const writes = `xs[0] = 0.1 + 0.2;`
	conformance.EachEngine(t, func(t *testing.T, reg lang.Registration, d conformance.Dialect) {
		src := fmt.Sprintf(`
			float xs[];
			%s
			blob v = vpack(xs);
			%s
			float ys[] = vunpack(through);
			if (ys[0] == xs[0]) { trace("exact"); }
			printf("bytes=%%i n=%%i", blob_size(through), size(ys));
		`, writes, d.Swift)
		res, err := Run(src, Config{Engines: 1, Workers: 2, Servers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(res.Stdout, "bytes=8 n=1") {
			t.Fatalf("1-element round trip through %s: stdout = %q", reg.Name, res.Stdout)
		}
		if !strings.Contains(res.Stdout, "trace: exact") {
			t.Fatalf("element not bit-exact through %s: stdout = %q", reg.Name, res.Stdout)
		}
	})
}

func TestVunpackIntContextErrorMessageForEngineBornBlob(t *testing.T) {
	// `int A[] = vunpack(b)` demands exactly integral values whatever
	// produced the blob — here a Python fragment, not vpack. The
	// diagnostic must name the offending value, not round it.
	src := `
		blob b = python("v = [1.5, 2.0]", "v");
		int zs[] = vunpack(b);
		printf("n=%i", size(zs));
	`
	_, err := Run(src, Config{Engines: 1, Workers: 2, Servers: 1})
	if err == nil || !strings.Contains(err.Error(), "not an integer") {
		t.Fatalf("err = %v, want 'not an integer' diagnostic", err)
	}
	if !strings.Contains(err.Error(), "1.5") {
		t.Fatalf("diagnostic does not name the offending value: %v", err)
	}
	// Exactly-integral float payloads remain unpackable as int.
	res, err := Run(`
		blob b = julia("v = [1.0, 2.0, 3.0]", "v");
		int zs[] = vunpack(b);
		printf("n=%i z3=%i", size(zs), zs[2]);
	`, Config{Engines: 1, Workers: 2, Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "n=3 z3=3") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}
