package core

// End-to-end proof of the container<->vector bridge: a Swift array built
// by a foreach loop crosses to an embedded interpreter as one packed
// blob vector (vpack), comes back typed, and unpacks into a Swift array
// (vunpack) bit-exact — with the gather and scatter both travelling the
// batched data plane, never one RPC (or one rendered string) per
// element. The probe engine from typed_roundtrip_test.go captures the
// packed blob so the test can assert the exact bytes, dims, and element
// kind that crossed the boundary.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/blob"
	"repro/internal/lang"
)

func TestContainerVectorRoundTripBitExact(t *testing.T) {
	const n = 16
	// Element values with full float64 mantissas: any decimal rendering
	// on the route would be caught by the bitwise comparison below.
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i)*0.125 + 0.1
	}
	engines := []struct {
		name string
		stmt string // Swift statement binding `through` from `packed`
	}{
		{"python", `blob through = python("", "argv1", packed);`},
		{"r", `blob through = r("x <- argv1", "x", packed);`},
		{"none", `blob through = packed;`},
	}
	for _, ec := range engines {
		t.Run(ec.name, func(t *testing.T) {
			st := &probeState{}
			lang.Register(lang.Registration{
				Name: "probe",
				Sig:  lang.Signature{Fixed: 1, Variadic: true},
				New:  func(h lang.Host) lang.Engine { return &probeEngine{st: st} },
			})
			defer lang.Unregister("probe")

			src := fmt.Sprintf(`
				float xs[];
				foreach i in [0:%d] {
					xs[i] = itof(i) * 0.125 + 0.1;
				}
				blob packed = vpack(xs);
				%s
				blob seen = probe("capture", through);
				float ys[] = vunpack(through);
				foreach y, i in ys {
					if (y == xs[i]) { trace(i); }
				}
				printf("unpacked=%%i", size(ys));
			`, n-1, ec.stmt)
			res, err := Run(src, Config{Engines: 2, Workers: 4, Servers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(res.Stdout, fmt.Sprintf("unpacked=%d", n)) {
				t.Fatalf("stdout = %q", res.Stdout)
			}
			// Every unpacked element compared equal (as float64 TDs) to
			// the element the loop originally stored.
			if got := strings.Count(res.Stdout, "trace:"); got != n {
				t.Fatalf("only %d/%d elements survived the round trip bit-exact\n%s", got, n, res.Stdout)
			}
			// The captured blob is the packed vector itself: float64
			// little-endian payload with dims [n].
			st.mu.Lock()
			defer st.mu.Unlock()
			if len(st.got) != 1 {
				t.Fatalf("probe captured %d values, want 1", len(st.got))
			}
			b := st.got[0].AsBlob()
			wantBlob := blob.FromFloat64s(want)
			if !bytes.Equal(b.Data, wantBlob.Data) {
				t.Fatalf("packed payload differs from bit-exact float64 packing\n got %x\nwant %x", b.Data, wantBlob.Data)
			}
			if b.Elem != blob.ElemF64 {
				t.Fatalf("packed element kind = %v, want float64", b.Elem)
			}
			if len(b.Dims) != 1 || b.Dims[0] != n {
				t.Fatalf("packed dims = %v, want [%d]", b.Dims, n)
			}
		})
	}
}

func TestContainerVectorIntRoundTrip(t *testing.T) {
	// int arrays pack as int64 vectors and unpack by context typing
	// (`int zs[] = vunpack(...)`).
	src := `
		int xs[];
		foreach i in [0:9] {
			xs[i] = i * 3 - 7;
		}
		blob packed = vpack(xs);
		int zs[] = vunpack(packed);
		foreach z, i in zs {
			if (z == xs[i]) { trace(i); }
		}
		printf("n=%i", size(zs));
	`
	res, err := Run(src, Config{Engines: 1, Workers: 2, Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "n=10") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	if got := strings.Count(res.Stdout, "trace:"); got != 10 {
		t.Fatalf("only %d/10 int elements round-tripped\n%s", got, res.Stdout)
	}
}

func TestContainerVectorEnsemble(t *testing.T) {
	// The paper's §IV idiom end to end: scatter a packed vector into an
	// array, run one typed interpreter fragment per element (an ensemble
	// of leaf tasks), gather the results back into one blob, and
	// aggregate it in a single R call.
	src := `
		float xs[];
		foreach i in [0:7] {
			xs[i] = itof(i) + 1.0;
		}
		blob v = vpack(xs);
		float ys[] = vunpack(v);
		float sq[];
		foreach y, i in ys {
			sq[i] = python("", "argv1 * argv1", y);
		}
		blob packed = vpack(sq);
		float total = r("s <- sum(argv1)", "s", packed);
		printf("total=%f", total);
	`
	res, err := Run(src, Config{Engines: 1, Workers: 4, Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// sum of squares of 1..8 = 204.
	if !strings.Contains(res.Stdout, "total=204") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	if res.PythonEvals != 8 || res.REvals != 1 {
		t.Fatalf("evals: py=%d r=%d, want 8 and 1", res.PythonEvals, res.REvals)
	}
}

func TestVunpackRejectsNonIntegralIntContext(t *testing.T) {
	// `int A[] = vunpack(b)` over a float payload with fractional values
	// must fail loudly, not round.
	src := `
		float xs[];
		foreach i in [0:3] {
			xs[i] = itof(i) + 0.5;
		}
		blob packed = vpack(xs);
		int zs[] = vunpack(packed);
		printf("n=%i", size(zs));
	`
	_, err := Run(src, Config{Engines: 1, Workers: 2, Servers: 1})
	if err == nil || !strings.Contains(err.Error(), "not an integer") {
		t.Fatalf("err = %v, want non-integral vunpack failure", err)
	}
}
