// Package core is the public entry point of the reproduction: it wires
// the Swift compiler (internal/stc), the Turbine/ADLB runtime
// (internal/turbine, internal/adlb) over the simulated MPI substrate
// (internal/mpi), and the interlanguage extensions that are the paper's
// contribution — embedded Python and R interpreters, SWIG-bound native
// libraries, Tcl packages, and the shell interface.
//
// A typical use:
//
//	res, err := core.Run(`
//	    (int o) f(int i) { o = i * 2; }
//	    foreach i in [0:9] { printf("%i", f(i)); }
//	`, core.Config{Engines: 1, Workers: 4, Servers: 1})
//
// The program runs as a simulated MPI job: engines evaluate dataflow,
// workers execute leaf tasks (including python(...), r(...), sh(...),
// and SWIG-wrapped native calls), ADLB servers load-balance and hold the
// distributed data store, and the run terminates when global quiescence
// is detected.
package core

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/adlb"
	"repro/internal/lang"
	"repro/internal/mpi"
	"repro/internal/nativelib"
	"repro/internal/pfs"
	"repro/internal/pkgs"
	"repro/internal/shell"
	"repro/internal/stc"
	"repro/internal/swig"
	"repro/internal/tcl"
	"repro/internal/turbine"
)

// InterpPolicy selects what happens to embedded interpreter state between
// leaf tasks (paper §III-C): retain it — fast, but tasks can observe
// previous tasks' globals — or reinitialise for a clean slate. It is the
// lang-layer policy re-exported for the public Config.
type InterpPolicy = lang.Policy

// Interpreter state policies.
const (
	// PolicyRetain keeps interpreter state across tasks (the default;
	// "old interpreter state can also be used to store useful data if
	// the programmer is careful").
	PolicyRetain = lang.PolicyRetain
	// PolicyReinit finalises and reinitialises the interpreter after
	// every task, clearing any state.
	PolicyReinit = lang.PolicyReinit
)

// Config describes one run.
type Config struct {
	// Engines, Workers, Servers partition the simulated MPI world
	// (paper Fig. 2). All default to 1 if zero.
	Engines int
	Workers int
	Servers int

	// Out receives program output (printf/trace/puts/print from any
	// language on any rank). Defaults to io.Discard; use Result.Stdout
	// for the captured text.
	Out io.Writer

	// Policy is the embedded-interpreter state policy (§III-C).
	Policy InterpPolicy

	// ShellMode selects the simulated machine's launch policy for app
	// functions and sh(...) (§III-C: BG/Q forbids process launches).
	ShellMode shell.Mode
	// SpawnCost overrides the simulated process-launch cost.
	SpawnCost time.Duration
	// SleepOnSpawn makes SpawnCost a real delay (see shell.System).
	SleepOnSpawn bool
	// Programs adds executables to the simulated process table beyond
	// the standard utilities (e.g. a one-shot external interpreter).
	Programs map[string]shell.Program

	// FS is an optional shared parallel filesystem for app functions,
	// source, and package loading.
	FS *pfs.FS
	// Bundle is an optional static package (paper §IV) consulted before
	// FS for source and package require.
	Bundle *pkgs.Bundle
	// PkgPath is the TCLLIBPATH-style search path for package require.
	PkgPath []string

	// NativeLibs are SWIG-bound on every rank (paper §III-B, Fig. 3).
	NativeLibs []*nativelib.Library

	// TclSetup, if non-nil, runs on every rank's interpreter before the
	// program loads (user Tcl packages, extra commands).
	TclSetup func(in *tcl.Interp) error

	// Stats / TurbineStats collect runtime counters when non-nil.
	Stats        *adlb.Stats
	TurbineStats *turbine.Stats
	// DisableSteal turns off inter-server work stealing (ablation).
	DisableSteal bool
	// Tick overrides the ADLB server housekeeping interval.
	Tick time.Duration

	// MaxTaskRetries bounds how many times a retriably-failed leaf task
	// is requeued before it is poisoned and the run ends with an error
	// naming it. 0 selects the default of 2; negative disables retries.
	MaxTaskRetries int
	// WatchdogIdleTicks tunes the ADLB hang watchdog (0 = default,
	// negative = disabled): a run whose remaining work can never be
	// executed ends with a diagnostic error instead of deadlocking.
	WatchdogIdleTicks int
	// KillWorkerRank, if non-zero, makes that worker rank die mid-task
	// after completing KillWorkerAfterTasks tasks (chaos testing: the
	// victim's leased task is reclaimed and requeued). Rank 0 is always
	// an engine, so zero means no kill.
	KillWorkerRank int
	// KillWorkerAfterTasks is how many tasks the victim runs before
	// dying (0 = die on its first task).
	KillWorkerAfterTasks int
	// TaskPriority is a base priority added to every work task released
	// by this run's engines (forwarded to turbine.Config.TaskPriority).
	// The serving layer sets it to the submitting tenant's admission
	// priority so that concurrent runs sharing a world are scheduled by
	// class.
	TaskPriority int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Engines <= 0 {
		out.Engines = 1
	}
	if out.Workers <= 0 {
		out.Workers = 1
	}
	if out.Servers <= 0 {
		out.Servers = 1
	}
	return out
}

// Result reports what a run did.
type Result struct {
	// Stdout is everything the program printed, in arrival order.
	Stdout string
	// Elapsed is the wall-clock duration of the simulated job.
	Elapsed time.Duration
	// ADLB is a snapshot of load-balancer counters (if Stats was set or
	// defaulted).
	ADLB adlb.StatsSnapshot
	// LeafTasks and ControlTasks count executed tasks.
	LeafTasks    int64
	ControlTasks int64
	// Evals counts embedded-engine fragment evaluations per language,
	// aggregated from the lang registry's installed engines across all
	// ranks (keys are registration names: "python", "r", "tcl", "sh",
	// plus any language registered by the host program).
	Evals map[string]int64
	// PythonEvals and REvals are Evals["python"] and Evals["r"],
	// retained as convenience fields.
	PythonEvals int64
	REvals      int64
	// Spawns counts simulated process launches by app functions.
	Spawns int64
	// TaskRetries counts leaf tasks requeued after a retriable failure
	// or a worker death (== ADLB.Requeued).
	TaskRetries int64
	// TaskFailures counts leaf tasks that failed under containment,
	// whether later retried to success or poisoned.
	TaskFailures int64
}

// lockedWriter serialises concurrent rank output and captures it.
type lockedWriter struct {
	mu  sync.Mutex
	buf strings.Builder
	tee io.Writer
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.WriteString(string(p))
	if w.tee != nil {
		w.tee.Write(p)
	}
	return len(p), nil
}

// Run compiles and executes Swift source under cfg.
func Run(source string, cfg Config) (*Result, error) {
	compiled, err := stc.Compile(source)
	if err != nil {
		return nil, err
	}
	return RunCompiled(compiled, cfg)
}

// RunCompiled executes already-compiled Turbine code under cfg.
func RunCompiled(compiled *stc.Output, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Stats == nil {
		cfg.Stats = &adlb.Stats{}
	}
	if cfg.TurbineStats == nil {
		cfg.TurbineStats = &turbine.Stats{}
	}
	sink := &lockedWriter{tee: cfg.Out}

	sys := shell.NewSystem(cfg.ShellMode, cfg.FS)
	if cfg.SpawnCost > 0 {
		sys.SpawnCost = cfg.SpawnCost
	}
	sys.SleepOnSpawn = cfg.SleepOnSpawn
	for name, prog := range cfg.Programs {
		sys.RegisterProgram(name, prog)
	}

	// One eval-counter slot per registered language, shared by all ranks;
	// the per-rank engines installed below report into it.
	counters := lang.NewCounters()
	langs := lang.Registered()

	// Compile the Turbine program once; every rank (and every repeated
	// run of the same Output) shares the parsed form.
	programScript, err := compiled.Script()
	if err != nil {
		return nil, err
	}

	tcfg := &turbine.Config{
		Engines:              cfg.Engines,
		Servers:              cfg.Servers,
		Tick:                 cfg.Tick,
		Stats:                cfg.Stats,
		TurbineStats:         cfg.TurbineStats,
		DisableSteal:         cfg.DisableSteal,
		MaxTaskRetries:       cfg.MaxTaskRetries,
		WatchdogIdleTicks:    cfg.WatchdogIdleTicks,
		KillWorkerRank:       cfg.KillWorkerRank,
		KillWorkerAfterTasks: cfg.KillWorkerAfterTasks,
		TaskPriority:         cfg.TaskPriority,
		Program:              compiled.Program,
		ProgramScript:        programScript,
		Main:                 compiled.Main,
		Setup: func(in *tcl.Interp, env *turbine.Env) error {
			in.Out = sink
			in.PkgPath = cfg.PkgPath
			in.SourceFS = func(path string) (string, error) {
				if cfg.Bundle != nil {
					if content, err := cfg.Bundle.SourceFS(path); err == nil {
						return content, nil
					}
				}
				if cfg.FS != nil {
					return cfg.FS.SourceFS(path)
				}
				return "", fmt.Errorf("core: no filesystem mounted for %q", path)
			}
			// Install every registered embedded language on this rank:
			// the engine is created lazily on the first <name>::eval or
			// <name>::call, the state policy applies uniformly, and
			// evaluations are counted per language. The rank's data
			// plane gives the typed surface direct store access, so
			// compiled interlanguage calls move arguments and results
			// without string rendering.
			host := lang.Host{Out: sink, Shell: sys}
			dp := env.DataPlane()
			for _, reg := range langs {
				lang.Install(in, reg, host, cfg.Policy, counters, dp)
			}
			for _, lib := range cfg.NativeLibs {
				if _, err := swig.Bind(in, lib); err != nil {
					return err
				}
				if _, err := in.Eval("package provide " + lib.Name); err != nil {
					return fmt.Errorf("core: providing native library %q: %w", lib.Name, err)
				}
			}
			if cfg.TclSetup != nil {
				return cfg.TclSetup(in)
			}
			return nil
		},
	}

	size := cfg.Engines + cfg.Workers + cfg.Servers
	world, err := mpi.NewWorld(size)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	err = world.Run(func(c *mpi.Comm) error { return turbine.Run(c, tcfg) })
	if err != nil {
		return nil, err
	}
	evals := counters.Snapshot()
	return &Result{
		Stdout:       sink.buf.String(),
		Elapsed:      time.Since(start),
		ADLB:         cfg.Stats.Snapshot(),
		LeafTasks:    cfg.TurbineStats.LeafTasks.Load(),
		ControlTasks: cfg.TurbineStats.ControlTasks.Load(),
		Evals:        evals,
		PythonEvals:  evals["python"],
		REvals:       evals["r"],
		Spawns:       sys.Spawns(),
		TaskRetries:  cfg.Stats.Requeued.Load(),
		TaskFailures: cfg.TurbineStats.TaskFailures.Load(),
	}, nil
}
