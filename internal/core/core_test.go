package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/nativelib"
	"repro/internal/pfs"
	"repro/internal/pkgs"
	"repro/internal/shell"
	"repro/internal/tcl"
)

func lines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if l != "" {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

func TestQuickstart(t *testing.T) {
	res, err := Run(`
		(int o) f(int i) { o = i * 2; }
		foreach i in [0:9] { printf("%i", f(i)); }
	`, Config{Engines: 1, Workers: 3, Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := lines(res.Stdout)
	if len(got) != 10 {
		t.Fatalf("got %d lines: %v", len(got), got)
	}
}

func TestPythonBuiltin(t *testing.T) {
	res, err := Run(`
		string r = python("y = 6 * 7", "y");
		printf("py=%s", r);
	`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "py=42") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	if res.PythonEvals != 1 {
		t.Fatalf("python evals = %d", res.PythonEvals)
	}
}

func TestRBuiltin(t *testing.T) {
	res, err := Run(`
		string m = r("v <- c(1, 2, 3, 4)", "mean(v)");
		printf("mean=%s", m);
	`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "mean=2.5") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	if res.REvals != 1 {
		t.Fatalf("r evals = %d", res.REvals)
	}
}

func TestTclBuiltin(t *testing.T) {
	res, err := Run(`
		string v = tcl("expr {2 ** 16}");
		printf("tcl=%s", v);
	`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "tcl=65536") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestShBuiltinAndApp(t *testing.T) {
	res, err := Run(`
		app (string o) lister(string path) { "echo" "listing" path }
		string direct = sh("echo", "direct-call");
		string viaapp = lister("/data");
		printf("%s | %s", direct, viaapp);
	`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "direct-call | listing /data") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	if res.Spawns != 2 {
		t.Fatalf("spawns = %d", res.Spawns)
	}
}

func TestBGQModeForbidsApps(t *testing.T) {
	_, err := Run(`
		string x = sh("echo", "hi");
		printf("%s", x);
	`, Config{ShellMode: shell.ModeBGQ})
	if err == nil || !strings.Contains(err.Error(), "not supported on this system") {
		t.Fatalf("err = %v", err)
	}
	// But Python still works on BG/Q — the paper's whole point.
	res, err := Run(`
		string x = python("v = 'embedded works'", "v");
		printf("%s", x);
	`, Config{ShellMode: shell.ModeBGQ})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "embedded works") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestNativeLibraryViaSwig(t *testing.T) {
	// Paper Fig. 3 end to end: native kernel bound by SWIG, called
	// through a Swift Tcl-template extension function.
	src := `
		(float o) lattice(int cells, int steps, float coupling)
		"libsim" "1.0"
		[ "set <<o>> [ sim_lattice <<cells>> <<steps>> <<coupling>> ]" ];
		float e = lattice(64, 10, 0.1);
		printf("energy=%f", e);
	`
	res, err := Run(src, Config{NativeLibs: []*nativelib.Library{nativelib.NewSimLibrary()}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "energy=") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	var e float64
	if _, err := fmt.Sscanf(strings.TrimSpace(res.Stdout), "energy=%f", &e); err != nil {
		t.Fatalf("parse %q: %v", res.Stdout, err)
	}
	if e <= 0 {
		t.Fatalf("energy = %v", e)
	}
}

func TestBlobThroughNative(t *testing.T) {
	// Blob built in Swift, passed into a native kernel via the
	// blobutils path (paper §III-B).
	src := `
		(string o) versioncheck()
		"libsim" "1.0"
		[ "set <<o>> [ sim_version ]" ];
		blob b = blob_from_string("eight ch");
		int n = blob_size(b);
		printf("bytes=%i version=%s", n, versioncheck());
	`
	res, err := Run(src, Config{NativeLibs: []*nativelib.Library{nativelib.NewSimLibrary()}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "bytes=8") || !strings.Contains(res.Stdout, "libsim 1.0") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestRetainVsReinitSemantics(t *testing.T) {
	// Retained interpreter: the second task sees the first task's state
	// (single worker ensures both run in the same interpreter).
	src := `
		string a = python("counter = 100", "counter");
		string b = python("counter = counter + 1", "counter");
		printf("%s %s", a, b);
	`
	res, err := Run(src, Config{Workers: 1, Policy: PolicyRetain})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "100 101") {
		t.Fatalf("retain: stdout = %q", res.Stdout)
	}
	// Reinitialised interpreter: the second fragment must fail because
	// state was cleared.
	_, err = Run(src, Config{Workers: 1, Policy: PolicyReinit})
	if err == nil || !strings.Contains(err.Error(), "not defined") {
		t.Fatalf("reinit: err = %v", err)
	}
}

func TestInterlanguagePipeline(t *testing.T) {
	// Data flows Swift -> Python -> R -> Tcl within one program.
	src := `
		string py = python("total = sum(range(5)) * 1.0", "total");
		string rv = r("v <- c(" + py + ", 10)", "sum(v)");
		string tv = tcl("expr {int(" + rv + ") * 2}");
		printf("final=%s", tv);
	`
	res, err := Run(src, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// sum 0..4 = 10, +10 = 20, *2 = 40.
	if !strings.Contains(res.Stdout, "final=40") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestBundleAndPackageRequire(t *testing.T) {
	// User Tcl code shipped in a static package, required by a template
	// function (paper §III-A + §IV static packages).
	bundle := pkgs.NewBundle()
	bundle.AddString("lib/my_package.tcl", `
		package provide my_package 1.0
		proc f {i j} { expr {$i * 10 + $j} }
	`)
	src := `
		(int o) f(int i, int j)
		"my_package" "1.0"
		[ "set <<o>> [ f <<i>> <<j>> ]" ];
		int x = f(2, 3);
		printf("x=%i", x);
	`
	res, err := Run(src, Config{Bundle: bundle, PkgPath: []string{"lib"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "x=23") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestFSSourceFallback(t *testing.T) {
	fs := pfs.New(pfs.DefaultConfig())
	fs.Provision("lib/disk_pkg.tcl", []byte(`
		package provide disk_pkg 1.0
		proc onDisk {} { return from-disk }
	`))
	src := `
		(string o) g()
		"disk_pkg" "1.0"
		[ "set <<o>> [ onDisk ]" ];
		printf("%s", g());
	`
	res, err := Run(src, Config{FS: fs, PkgPath: []string{"lib"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "from-disk") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestTclSetupHook(t *testing.T) {
	res, err := Run(`
		(string o) custom()
		"userpkg" "1.0"
		[ "set <<o>> [ my_custom_cmd ]" ];
		printf("%s", custom());
	`, Config{TclSetup: func(in *tcl.Interp) error {
		in.RegisterCommand("my_custom_cmd", func(in *tcl.Interp, args []string) (string, error) {
			return "custom-result", nil
		})
		in.Eval("package provide userpkg 1.0")
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "custom-result") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestCompileErrorSurfaces(t *testing.T) {
	if _, err := Run("int x = undefined_var;", Config{}); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestResultCounters(t *testing.T) {
	res, err := Run(`
		foreach i in [0:19] {
			string s = python("q = 1", "q");
			trace(s);
		}
	`, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.PythonEvals != 20 {
		t.Fatalf("python evals = %d", res.PythonEvals)
	}
	if res.LeafTasks != 20 {
		t.Fatalf("leaf tasks = %d", res.LeafTasks)
	}
	if res.ADLB.GetsServed == 0 {
		t.Fatal("no gets recorded")
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestScaleManyTasks(t *testing.T) {
	res, err := Run(`
		(int o) sq(int i) { o = i * i; }
		foreach i in [0:199] {
			printf("%i", sq(i));
		}
	`, Config{Engines: 2, Workers: 6, Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := lines(res.Stdout); len(got) != 200 {
		t.Fatalf("got %d lines", len(got))
	}
}
