// Out-of-process elastic runs: one hub process holds the engines, the
// ADLB servers, and the data store; worker processes join over TCP,
// pull leased leaf tasks, and may crash or join mid-run. This is the
// paper's distributed-memory setting (and the MP-NOW shape): interpreted
// front-ends driving a network of workers, where membership is dynamic
// and a vanished peer is just a departure the server infers.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/adlb"
	"repro/internal/lang"
	"repro/internal/mpi"
	"repro/internal/nativelib"
	"repro/internal/shell"
	"repro/internal/stc"
	"repro/internal/swig"
	"repro/internal/tcl"
	"repro/internal/turbine"
)

// ElasticConfig describes the hub side of an out-of-process run.
type ElasticConfig struct {
	// Engines and Servers run as goroutines inside the hub process.
	// Both default to 1.
	Engines int
	Servers int
	// WorkerSlots is the maximum number of workers that may ever join
	// (ranks are assigned monotonically and never reused, so a crashed
	// worker's replacement consumes a fresh slot). Defaults to 4.
	WorkerSlots int
	// MinWorkers gates the start of the run: local ranks launch only
	// once this many workers are connected, so the first leaf tasks have
	// somewhere to go before the hang watchdog starts counting.
	// Defaults to 1.
	MinWorkers int
	// JoinTimeout bounds the wait for MinWorkers. Defaults to 60s.
	JoinTimeout time.Duration
	// Addr is the TCP listen address; empty selects 127.0.0.1:0. The
	// chosen address is reported through OnListen.
	Addr string
	// OnListen, if non-nil, receives the bound listen address before any
	// worker is awaited — the caller uses it to launch worker processes.
	OnListen func(addr string)

	// Out receives hub-side program output (engine printf/trace). Worker
	// processes write leaf-task output to their own sinks.
	Out io.Writer
	// Policy is the embedded-interpreter state policy, shipped to
	// workers in the welcome blob.
	Policy InterpPolicy
	// NativeLibs are SWIG-bound on hub-local ranks. Worker processes
	// cannot receive Go objects over the wire; they always bind the
	// simulated FFT library (nativelib.NewSimLibrary), matching the
	// standalone CLI.
	NativeLibs []*nativelib.Library

	// Stats / TurbineStats collect hub-side runtime counters when
	// non-nil. ADLB servers live in the hub, so queue/lease/reclaim
	// counters are complete; LeafTasks count only hub-local execution
	// (worker processes keep their own).
	Stats        *adlb.Stats
	TurbineStats *turbine.Stats
	// Tick overrides the ADLB server housekeeping interval.
	Tick time.Duration
	// MaxTaskRetries and WatchdogIdleTicks forward to the ADLB config,
	// as in Config.
	MaxTaskRetries    int
	WatchdogIdleTicks int

	// HeartbeatInterval and HeartbeatTimeout tune the transport's crash
	// detection (zero selects the transport defaults).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
}

// elasticWelcome is the JSON blob the hub ships to each joining worker:
// everything a worker process needs to reconstruct its side of the
// deployment.
type elasticWelcome struct {
	Engines int    `json:"engines"`
	Servers int    `json:"servers"`
	Policy  int    `json:"policy"`
	Program string `json:"program"`
}

func (c *ElasticConfig) withDefaults() ElasticConfig {
	out := *c
	if out.Engines <= 0 {
		out.Engines = 1
	}
	if out.Servers <= 0 {
		out.Servers = 1
	}
	if out.WorkerSlots <= 0 {
		out.WorkerSlots = 4
	}
	if out.MinWorkers <= 0 {
		out.MinWorkers = 1
	}
	if out.MinWorkers > out.WorkerSlots {
		out.MinWorkers = out.WorkerSlots
	}
	if out.JoinTimeout <= 0 {
		out.JoinTimeout = 60 * time.Second
	}
	return out
}

// ServeElastic runs compiled Turbine code as the hub of an elastic
// deployment: engines and servers local, workers joining over TCP.
// It blocks until the run terminates (or aborts) and returns the
// assembled hub-side Result.
func ServeElastic(compiled *stc.Output, cfg ElasticConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Stats == nil {
		cfg.Stats = &adlb.Stats{}
	}
	if cfg.TurbineStats == nil {
		cfg.TurbineStats = &turbine.Stats{}
	}
	sink := &lockedWriter{tee: cfg.Out}
	sys := shell.NewSystem(shell.ModeCluster, nil)
	counters := lang.NewCounters()
	langs := lang.Registered()
	programScript, err := compiled.Script()
	if err != nil {
		return nil, err
	}
	welcome, err := json.Marshal(elasticWelcome{
		Engines: cfg.Engines,
		Servers: cfg.Servers,
		Policy:  int(cfg.Policy),
		Program: compiled.Program,
	})
	if err != nil {
		return nil, err
	}

	size := cfg.Engines + cfg.WorkerSlots + cfg.Servers
	world, err := mpi.NewWorld(size)
	if err != nil {
		return nil, err
	}

	tcfg := &turbine.Config{
		Engines:           cfg.Engines,
		Servers:           cfg.Servers,
		Elastic:           true,
		Tick:              cfg.Tick,
		Stats:             cfg.Stats,
		TurbineStats:      cfg.TurbineStats,
		MaxTaskRetries:    cfg.MaxTaskRetries,
		WatchdogIdleTicks: cfg.WatchdogIdleTicks,
		Program:           compiled.Program,
		ProgramScript:     programScript,
		Main:              compiled.Main,
		Setup: func(in *tcl.Interp, env *turbine.Env) error {
			in.Out = sink
			host := lang.Host{Out: sink, Shell: sys}
			dp := env.DataPlane()
			for _, reg := range langs {
				lang.Install(in, reg, host, cfg.Policy, counters, dp)
			}
			for _, lib := range cfg.NativeLibs {
				if _, err := swig.Bind(in, lib); err != nil {
					return err
				}
				if _, err := in.Eval("package provide " + lib.Name); err != nil {
					return fmt.Errorf("core: providing native library %q: %w", lib.Name, err)
				}
			}
			return nil
		},
	}

	hub, err := world.ListenTCP(mpi.HubConfig{
		Addr:              cfg.Addr,
		FirstRank:         cfg.Engines,
		Slots:             cfg.WorkerSlots,
		Welcome:           welcome,
		HeartbeatInterval: cfg.HeartbeatInterval,
		HeartbeatTimeout:  cfg.HeartbeatTimeout,
		OnLost: func(rank int) {
			// A vanished worker is a Leave the server infers: its leases
			// requeue and surviving workers pick the tasks up.
			_ = adlb.NotifyCrashed(world, cfg.Servers, rank)
		},
	})
	if err != nil {
		return nil, err
	}
	defer hub.Close()
	if cfg.OnListen != nil {
		cfg.OnListen(hub.Addr())
	}

	// Gang start: hold the local ranks back until the minimum worker pool
	// is connected. Worker RPCs that race ahead of the local launch just
	// queue in the server mailboxes.
	deadline := time.Now().Add(cfg.JoinTimeout)
	for hub.Workers() < cfg.MinWorkers {
		if world.AbortErr() != nil {
			return nil, world.AbortErr()
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("core: elastic run: only %d of %d required workers joined within %v",
				hub.Workers(), cfg.MinWorkers, cfg.JoinTimeout)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Run the hub-local ranks: engines and servers. Worker-slot ranks are
	// deliberately not launched — they live in other processes (or never
	// join at all; elastic membership terminates without them). This
	// mirrors World.Run's containment and error aggregation for a subset
	// of ranks.
	local := make([]int, 0, cfg.Engines+cfg.Servers)
	for r := 0; r < cfg.Engines; r++ {
		local = append(local, r)
	}
	for r := size - cfg.Servers; r < size; r++ {
		local = append(local, r)
	}
	start := time.Now()
	errs := make([]error, len(local))
	var wg sync.WaitGroup
	for i, rank := range local {
		wg.Add(1)
		go func(i, rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[i] = fmt.Errorf("core: rank %d panicked: %v", rank, p)
					world.Abort(errs[i])
				}
			}()
			c, err := world.Comm(rank)
			if err != nil {
				errs[i] = err
				world.Abort(err)
				return
			}
			if err := turbine.Run(c, tcfg); err != nil {
				errs[i] = err
				world.Abort(err)
			}
		}(i, rank)
	}
	wg.Wait()
	hub.Close()
	for _, err := range errs {
		if err != nil && !errors.Is(err, mpi.ErrAborted) {
			return nil, err
		}
	}
	if cause := world.AbortErr(); cause != nil && !errors.Is(cause, mpi.ErrAborted) {
		return nil, cause
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	evals := counters.Snapshot()
	return &Result{
		Stdout:       sink.buf.String(),
		Elapsed:      time.Since(start),
		ADLB:         cfg.Stats.Snapshot(),
		LeafTasks:    cfg.TurbineStats.LeafTasks.Load(),
		ControlTasks: cfg.TurbineStats.ControlTasks.Load(),
		Evals:        evals,
		PythonEvals:  evals["python"],
		REvals:       evals["r"],
		Spawns:       sys.Spawns(),
		TaskRetries:  cfg.Stats.Requeued.Load(),
		TaskFailures: cfg.TurbineStats.TaskFailures.Load(),
	}, nil
}

// ElasticWorker joins the hub at addr and runs this process's single
// worker rank until the run drains (NO_MORE_WORK) or aborts. Leaf-task
// output (python print and friends) goes to out. A clean drain sends the
// hub a goodbye; any failure is reported upstream so the hub aborts the
// run rather than hanging on a wedged peer.
func ElasticWorker(addr string, out io.Writer) error {
	if out == nil {
		out = io.Discard
	}
	wc, err := mpi.JoinTCP(addr)
	if err != nil {
		return err
	}
	var w elasticWelcome
	if err := json.Unmarshal(wc.Welcome(), &w); err != nil {
		err = fmt.Errorf("core: elastic worker: malformed welcome: %w", err)
		wc.CloseWithError(err)
		return err
	}
	sink := &lockedWriter{tee: out}
	sys := shell.NewSystem(shell.ModeCluster, nil)
	counters := lang.NewCounters()
	langs := lang.Registered()
	tcfg := &turbine.Config{
		Engines: w.Engines,
		Servers: w.Servers,
		Elastic: true,
		Program: w.Program,
		Setup: func(in *tcl.Interp, env *turbine.Env) error {
			in.Out = sink
			host := lang.Host{Out: sink, Shell: sys}
			dp := env.DataPlane()
			for _, reg := range langs {
				lang.Install(in, reg, host, lang.Policy(w.Policy), counters, dp)
			}
			lib := nativelib.NewSimLibrary()
			if _, err := swig.Bind(in, lib); err != nil {
				return err
			}
			if _, err := in.Eval("package provide " + lib.Name); err != nil {
				return err
			}
			return nil
		},
	}
	c, err := wc.World().Comm(wc.Rank())
	if err != nil {
		wc.CloseWithError(err)
		return err
	}
	if err := turbine.Run(c, tcfg); err != nil {
		wc.CloseWithError(err)
		return err
	}
	// The hub may win the shutdown race and close the connection before
	// the goodbye lands; a failed goodbye after a clean drain is
	// indistinguishable from one that crossed the close in flight.
	_ = wc.Close()
	return nil
}
