package core

// Out-of-process elastic run matrix: complete runs over TCP workers,
// worker SIGKILL mid-task with lease reclaim (a real OS process killed
// while holding a lease), and join-mid-run picking up queued work. The
// victim worker is a re-exec of this test binary (TestElasticWorkerHelper)
// so the kill is a genuine SIGKILL even under -race.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/adlb"
	"repro/internal/faultinject"
	"repro/internal/stc"
)

// elasticEnsemble is the §IV scatter/compute/gather ensemble trimmed to
// its container-bridge core: params scatter into a packed blob, R shifts
// the vector in one typed call, 16 python fragments square the elements
// in parallel on the workers, and the aggregate comes back through one
// final typed call. sum((i+1)^2) for i in 0..15 = 1496.
const elasticEnsemble = `
	float params[];
	foreach i in [0:15] { params[i] = itof(i) * 0.5; }
	blob pv = vpack(params);
	blob shifted = r("y <- argv1 * 2 + 1", "y", pv);
	float ys[] = vunpack(shifted);
	float sq[];
	foreach y, i in ys { sq[i] = python("", "argv1 * argv1", y); }
	float esum = python("", "sum(argv1)", vpack(sq));
	printf("ensemble: sum((2*p+1)^2) = %f over %i fragments", esum, size(sq));
`

func compileEnsemble(t *testing.T) *stc.Output {
	t.Helper()
	compiled, err := stc.Compile(elasticEnsemble)
	if err != nil {
		t.Fatal(err)
	}
	return compiled
}

func expectEnsembleOutput(t *testing.T, stdout string) {
	t.Helper()
	var sum float64
	var n int
	found := false
	for _, line := range strings.Split(stdout, "\n") {
		if _, err := fmt.Sscanf(line, "ensemble: sum((2*p+1)^2) = %f over %d fragments", &sum, &n); err == nil {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("ensemble line missing from output:\n%s", stdout)
	}
	if sum != 1496 || n != 16 {
		t.Fatalf("ensemble computed sum=%v n=%d, want 1496 over 16", sum, n)
	}
}

// TestElasticWorkerHelper is not a test: it is the worker half of the
// SIGKILL matrix, run as a separate OS process via re-exec of this test
// binary. With ELASTIC_HELPER_STALL_MS set it arms an ActDelay on the
// worker-task fault site and prints a marker once the delay is entered —
// At counts the hit before sleeping and GetLeased has already returned,
// so the marker guarantees a lease is held when the parent kills us.
func TestElasticWorkerHelper(t *testing.T) {
	addr := os.Getenv("ELASTIC_HELPER_ADDR")
	if addr == "" {
		t.Skip("helper entry point; only meaningful when re-exec'd with ELASTIC_HELPER_ADDR")
	}
	if ms := os.Getenv("ELASTIC_HELPER_STALL_MS"); ms != "" {
		d, err := strconv.Atoi(ms)
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Arm(faultinject.SiteWorkerTask, faultinject.Plan{
			Hit: 1, Times: 1, Action: faultinject.ActDelay,
			Delay: time.Duration(d) * time.Millisecond,
		})
		go func() {
			for faultinject.Hits(faultinject.SiteWorkerTask) == 0 {
				time.Sleep(time.Millisecond)
			}
			fmt.Println("ELASTIC_TASK_HELD")
		}()
	}
	if err := ElasticWorker(addr, os.Stdout); err != nil {
		t.Fatalf("helper worker: %v", err)
	}
}

// startVictim launches a stalling worker as a real OS process and
// reports (via the returned channel) when it holds a leased task.
func startVictim(t *testing.T, addr string) (kill func(), held <-chan struct{}) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestElasticWorkerHelper$")
	cmd.Env = append(os.Environ(),
		"ELASTIC_HELPER_ADDR="+addr,
		"ELASTIC_HELPER_STALL_MS=60000",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	ch := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "ELASTIC_TASK_HELD") {
				close(ch)
				return
			}
		}
	}()
	var once sync.Once
	kill = func() {
		once.Do(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
	}
	t.Cleanup(kill)
	return kill, ch
}

func TestElasticRunCompletes(t *testing.T) {
	compiled := compileEnsemble(t)
	var wg sync.WaitGroup
	res, err := ServeElastic(compiled, ElasticConfig{
		MinWorkers:  2,
		WorkerSlots: 2,
		OnListen: func(addr string) {
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := ElasticWorker(addr, io.Discard); err != nil {
						t.Errorf("worker: %v", err)
					}
				}()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	expectEnsembleOutput(t, res.Stdout)
	if res.ADLB.LeasesReclaimed != 0 {
		t.Fatalf("clean run reclaimed %d leases", res.ADLB.LeasesReclaimed)
	}
}

func TestElasticWorkerSIGKILLMidTask(t *testing.T) {
	compiled := compileEnsemble(t)
	stats := &adlb.Stats{}
	var wg sync.WaitGroup
	res, err := ServeElastic(compiled, ElasticConfig{
		MinWorkers:  2,
		WorkerSlots: 3,
		Stats:       stats,
		OnListen: func(addr string) {
			// The victim: a real OS process that stalls on its first leaf
			// task, then dies by SIGKILL while the lease is outstanding.
			wg.Add(1)
			go func() {
				defer wg.Done()
				kill, held := startVictim(t, addr)
				select {
				case <-held:
					kill()
				case <-time.After(60 * time.Second):
					t.Error("victim never held a task")
				}
			}()
			// A healthy worker carries the rest of the run.
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := ElasticWorker(addr, io.Discard); err != nil {
					t.Errorf("healthy worker: %v", err)
				}
			}()
		},
	})
	if err != nil {
		t.Fatalf("run did not survive the SIGKILL: %v", err)
	}
	wg.Wait()
	expectEnsembleOutput(t, res.Stdout)
	if res.ADLB.LeasesReclaimed < 1 {
		t.Fatalf("LeasesReclaimed = %d, want >= 1", res.ADLB.LeasesReclaimed)
	}
	if res.TaskRetries < 1 {
		t.Fatalf("TaskRetries = %d, want >= 1 (reclaimed task was not requeued)", res.TaskRetries)
	}
}

func TestElasticJoinMidRunPicksUpQueuedWork(t *testing.T) {
	compiled := compileEnsemble(t)
	stats := &adlb.Stats{}
	var wg sync.WaitGroup
	res, err := ServeElastic(compiled, ElasticConfig{
		MinWorkers:  1,
		WorkerSlots: 3,
		Stats:       stats,
		OnListen: func(addr string) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// The only gang-start worker stalls on its first task and
				// is killed; a replacement joins mid-run and must pick up
				// both the queued remainder and the reclaimed task.
				kill, held := startVictim(t, addr)
				select {
				case <-held:
					kill()
				case <-time.After(60 * time.Second):
					t.Error("victim never held a task")
					return
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := ElasticWorker(addr, io.Discard); err != nil {
						t.Errorf("replacement worker: %v", err)
					}
				}()
			}()
		},
	})
	if err != nil {
		t.Fatalf("run did not complete after mid-run join: %v", err)
	}
	wg.Wait()
	expectEnsembleOutput(t, res.Stdout)
	if res.ADLB.LeasesReclaimed < 1 {
		t.Fatalf("LeasesReclaimed = %d, want >= 1", res.ADLB.LeasesReclaimed)
	}
}
