package core

// Chaos regression matrix for the fault-tolerance layer: engine panics
// contained mid-ensemble, workers killed mid-task, retry budgets
// exhausted into poisoned-task errors, and the hang watchdog — all
// deterministic via internal/faultinject (run under -race in CI's chaos
// job).

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/adlb"
	"repro/internal/faultinject"
)

// ensemble16 is the acceptance ensemble: 16 independent python leaf
// tasks, each squaring its index through the typed call path.
const ensemble16 = `
	foreach i in [0:15] {
		string s = python("v = argv1 * argv1", "v", i);
		printf("%s", s);
	}
`

func wantSquares(n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprint(i*i))
	}
	sort.Strings(out)
	return out
}

func sortedLines(s string) []string {
	lines := strings.Fields(strings.TrimSpace(s))
	sort.Strings(lines)
	return lines
}

func expectSquares(t *testing.T, stdout string, n int) {
	t.Helper()
	got := sortedLines(stdout)
	want := wantSquares(n)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("ensemble output wrong:\n got %v\nwant %v", got, want)
	}
}

func TestChaosEnginePanicMidEnsemble(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	// The 3rd python fragment evaluated anywhere in the run panics inside
	// the engine; containment must fail that one task, reset the engine,
	// and retry — no process death, no lost results.
	faultinject.Arm(faultinject.SiteLangEvalPre, faultinject.Plan{
		Hit: 3, Action: faultinject.ActPanic, Msg: "injected interpreter crash",
	})
	res, err := Run(ensemble16, Config{Workers: 4})
	if err != nil {
		t.Fatalf("run failed instead of recovering: %v", err)
	}
	expectSquares(t, res.Stdout, 16)
	if res.TaskRetries != 1 {
		t.Fatalf("TaskRetries = %d, want 1", res.TaskRetries)
	}
	if res.TaskFailures != 1 {
		t.Fatalf("TaskFailures = %d, want 1", res.TaskFailures)
	}
	if res.ADLB.Poisoned != 0 {
		t.Fatalf("Poisoned = %d, want 0", res.ADLB.Poisoned)
	}
}

func TestChaosWorkerKilledMidTaskRunFinishes(t *testing.T) {
	// Worker rank 1 dies on its first leaf task (the engine is rank 0).
	// Its leased task must be reclaimed, requeued, and finished by the
	// surviving worker.
	res, err := Run(ensemble16, Config{
		Workers:        2,
		KillWorkerRank: 1,
	})
	if err != nil {
		t.Fatalf("run failed instead of recovering: %v", err)
	}
	expectSquares(t, res.Stdout, 16)
	if res.ADLB.LeasesReclaimed != 1 {
		t.Fatalf("LeasesReclaimed = %d, want 1", res.ADLB.LeasesReclaimed)
	}
	if res.TaskRetries < 1 {
		t.Fatalf("TaskRetries = %d, want >= 1", res.TaskRetries)
	}
}

func TestChaosRetryUntilPoisoned(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	// Every evaluation of the fragment panics: the retry budget (default
	// 2) must run out and the task must be poisoned — surfaced as an
	// error naming the task, not a hang.
	faultinject.Arm(faultinject.SiteLangEvalPre, faultinject.Plan{
		Hit: 1, Times: -1, Action: faultinject.ActPanic, Msg: "persistent interpreter crash",
	})
	stats := &adlb.Stats{}
	_, err := Run(`
		string s = python("v = 1", "v");
		printf("%s", s);
	`, Config{Workers: 2, Stats: stats})
	if err == nil {
		t.Fatal("expected a poisoned-task error, got clean run")
	}
	for _, want := range []string{"poisoned", "persistent interpreter crash", "python"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	snap := stats.Snapshot()
	if snap.Requeued != 2 || snap.Poisoned != 1 {
		t.Fatalf("Requeued = %d, Poisoned = %d; want 2, 1", snap.Requeued, snap.Poisoned)
	}
}

func TestChaosHangWatchdogWhenAllWorkersDie(t *testing.T) {
	// The only worker dies mid-task: the requeued work can never run, and
	// the run must end with the watchdog's diagnostic, not a deadlock.
	_, err := Run(ensemble16, Config{
		Workers:           1,
		KillWorkerRank:    1,
		Tick:              100 * time.Microsecond,
		WatchdogIdleTicks: 200,
	})
	if err == nil {
		t.Fatal("expected hang-watchdog diagnostic, got clean run")
	}
	if !strings.Contains(err.Error(), "hang detected") {
		t.Fatalf("error %q is not the watchdog diagnostic", err)
	}
	if !strings.Contains(err.Error(), "departed clients") {
		t.Fatalf("diagnostic %q does not list departed clients", err)
	}
}

func TestChaosInjectionSiteMatrix(t *testing.T) {
	cases := []struct {
		name        string
		site        faultinject.Site
		plan        faultinject.Plan
		wantErr     string // "" = run must recover cleanly
		wantRetries int64
	}{
		{
			name: "get-deliver delay is harmless",
			site: faultinject.SiteGetDeliver,
			plan: faultinject.Plan{Hit: 2, Times: 3, Action: faultinject.ActDelay, Delay: 2 * time.Millisecond},
		},
		{
			name:    "get-deliver error surfaces",
			site:    faultinject.SiteGetDeliver,
			plan:    faultinject.Plan{Hit: 1, Action: faultinject.ActError, Msg: "delivery fault"},
			wantErr: "delivery fault",
		},
		{
			name:    "targeted-put error surfaces",
			site:    faultinject.SitePutTargeted,
			plan:    faultinject.Plan{Hit: 1, Action: faultinject.ActError, Msg: "notify fault"},
			wantErr: "notify fault",
		},
		{
			name:        "eval-pre fault retries",
			site:        faultinject.SiteLangEvalPre,
			plan:        faultinject.Plan{Hit: 2, Action: faultinject.ActError, Msg: "eval fault"},
			wantRetries: 1,
		},
		{
			name:        "dataplane store fault retries",
			site:        faultinject.SiteDataPlaneStore,
			plan:        faultinject.Plan{Hit: 2, Action: faultinject.ActError, Msg: "store fault"},
			wantRetries: 1,
		},
		{
			name:        "worker crash mid-task recovers",
			site:        faultinject.SiteWorkerTask,
			plan:        faultinject.Plan{Hit: 1, Action: faultinject.ActCrash, Msg: "worker dies"},
			wantRetries: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer faultinject.Reset()
			faultinject.Reset()
			faultinject.Arm(tc.site, tc.plan)
			res, err := Run(ensemble16, Config{Workers: 2})
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("want error mentioning %q, got %v", tc.wantErr, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("run failed instead of recovering: %v", err)
			}
			expectSquares(t, res.Stdout, 16)
			if res.TaskRetries < tc.wantRetries {
				t.Fatalf("TaskRetries = %d, want >= %d", res.TaskRetries, tc.wantRetries)
			}
			if faultinject.Hits(tc.site) == 0 {
				t.Fatalf("site %s was never hit", tc.site)
			}
		})
	}
}

func TestChaosRefcountBalanceAfterContainedPanic(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	// A container-heavy ensemble (scatter -> per-element python -> gather)
	// with one injected engine panic: recovery must leave no TD unfilled —
	// a leaked write refcount after the contained failure would hold a
	// container open forever and show up in the UnfilledTDs gauge.
	faultinject.Arm(faultinject.SiteLangEvalPre, faultinject.Plan{
		Hit: 2, Action: faultinject.ActPanic, Msg: "injected crash under refcounts",
	})
	res, err := Run(`
		float xs[];
		foreach i in [0:7] {
			xs[i] = itof(i) * 0.5;
		}
		blob packed = vpack(xs);
		float ys[] = vunpack(packed);
		float sq[];
		foreach y, i in ys {
			sq[i] = python("", "argv1 * argv1", y);
		}
		blob packed2 = vpack(sq);
		float total = python("", "sum(argv1)", packed2);
		printf("%f", total);
	`, Config{Workers: 4})
	if err != nil {
		t.Fatalf("run failed instead of recovering: %v", err)
	}
	// sum((i*0.5)^2, i=0..7) = 0.25 * 140 = 35
	if !strings.Contains(res.Stdout, "35.000000") {
		t.Fatalf("stdout = %q, want the ensemble total 35.000000", res.Stdout)
	}
	if res.TaskRetries != 1 {
		t.Fatalf("TaskRetries = %d, want 1", res.TaskRetries)
	}
	if res.ADLB.UnfilledTDs != 0 {
		t.Fatalf("UnfilledTDs = %d after recovery, want 0 (leaked write refcount)", res.ADLB.UnfilledTDs)
	}
}

func TestChaosEachEngineRecoversFromPanic(t *testing.T) {
	// One injected engine panic per embedded language: containment and
	// retry must be engine-agnostic (the conformance suite's languages
	// all flow through the same contained-eval path).
	engines := []struct {
		name string
		stmt string
	}{
		{"python", `string s = python("v = argv1 * argv1", "v", i);`},
		{"r", `string s = r("v <- argv1 * argv1", "v", i);`},
		{"julia", `string s = julia("v = argv1 * argv1", "v", i);`},
	}
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			defer faultinject.Reset()
			faultinject.Reset()
			faultinject.Arm(faultinject.SiteLangEvalPre, faultinject.Plan{
				Hit: 2, Action: faultinject.ActPanic, Msg: "injected " + eng.name + " crash",
			})
			res, err := Run(fmt.Sprintf(`
				foreach i in [0:7] {
					%s
					printf("%%s", s);
				}
			`, eng.stmt), Config{Workers: 2})
			if err != nil {
				t.Fatalf("%s run failed instead of recovering: %v", eng.name, err)
			}
			expectSquares(t, res.Stdout, 8)
			if res.TaskRetries != 1 {
				t.Fatalf("TaskRetries = %d, want 1", res.TaskRetries)
			}
		})
	}
}
