package core

// End-to-end proof of the lang-registry refactor: adding an embedded
// language is one lang.Register call. The toy engine below is registered
// only in this test, yet a Swift program can call it like python()/r()
// — the type checker synthesizes the builtin, the prelude's sw:leaf
// dispatches to rev::eval, and RunCompiled installs the engine on every
// rank — with zero edits to check.go, prelude.go, or core.go.

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

// revEngine is a toy language on the typed Engine v2 contract: code
// names a variable to bind, expr is text to reverse and remember. State
// persists across fragments so the retain/reinit policy is observable.
type revEngine struct {
	vars  map[string]string
	evals int64
}

func newRevEngine(h lang.Host) lang.Engine {
	return &revEngine{vars: map[string]string{}}
}

func (e *revEngine) Name() string { return "rev" }

func (e *revEngine) Eval(c lang.Call) (lang.Value, error) {
	e.evals++
	b := []byte(c.Expr)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	out := string(b)
	if c.Code != "" {
		e.vars[c.Code] = out
	}
	if prev, ok := e.vars[c.Expr]; ok {
		// A bare variable name in expr recalls the stored value.
		return lang.Str(prev), nil
	}
	return lang.Str(out), nil
}

func (e *revEngine) Reset()       { e.vars = map[string]string{} }
func (e *revEngine) Evals() int64 { return e.evals }

func TestToyEngineEndToEnd(t *testing.T) {
	lang.Register(lang.Registration{Name: "rev", Sig: lang.Signature{Fixed: 2}, New: newRevEngine})
	defer lang.Unregister("rev")

	res, err := Run(`
		string a = rev("x", "stressed");
		string b = rev("", "x");
		printf("rev=%s recall=%s", a, b);
	`, Config{Engines: 1, Workers: 1, Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "rev=desserts recall=desserts") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	if res.Evals["rev"] != 2 {
		t.Fatalf("rev evals = %d, want 2", res.Evals["rev"])
	}
}

func TestToyEngineUnknownAfterUnregister(t *testing.T) {
	// Without the registration the same program must fail type checking:
	// the builtin only exists while the language is registered.
	_, err := Run(`string a = rev("x", "y");`, Config{})
	if err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Fatalf("err = %v, want undefined function", err)
	}
}

func TestToyEnginePolicyReinit(t *testing.T) {
	lang.Register(lang.Registration{Name: "rev", Sig: lang.Signature{Fixed: 2}, New: newRevEngine})
	defer lang.Unregister("rev")

	// Under Retain the second task recalls the "x" binding stored by the
	// first; under Reinit the store is cleared between tasks, so the
	// recall falls through to plain reversal. Workers=1 keeps a single
	// engine instance, and b's data dependency on a orders the tasks.
	src := `
		string a = rev("x", "stressed");
		string b = rev(a, "x");
		printf("got=%s", b);
	`
	res, err := Run(src, Config{Workers: 1, Policy: PolicyRetain})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "got=desserts") {
		t.Fatalf("retain stdout = %q", res.Stdout)
	}
	res, err = Run(src, Config{Workers: 1, Policy: PolicyReinit})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "got=x") {
		t.Fatalf("reinit stdout = %q", res.Stdout)
	}
}
