package core

// Regression tests for in-process re-entrancy: the serving layer
// (internal/serve) runs many compiled programs concurrently in one
// process — per-tenant submissions against one resident swiftd — so
// RunCompiled must not share mutable state across simultaneous runs.
// Historically safe by inspection (per-run Result and counters, pure
// builtin lookup, mutex-guarded registries, compile-once stc.Output);
// these tests pin that property under the race detector.

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/stc"
)

// TestConcurrentRunsShareCompiledProgram runs one compiled program from
// four goroutines at once. The *stc.Output — including its lazily
// compiled shared Script — is deliberately shared, exactly as the serve
// program cache shares it across requests.
func TestConcurrentRunsShareCompiledProgram(t *testing.T) {
	compiled, err := stc.Compile(`
		foreach i in [0:7] {
			string s = python("x = 3*" + toString(i), "x");
			printf("%s", s);
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := RunCompiled(compiled, Config{Engines: 1, Workers: 2, Servers: 1})
			if err != nil {
				t.Error(err)
				return
			}
			if !strings.Contains(res.Stdout, "21") {
				t.Errorf("bad stdout %q", res.Stdout)
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentRunsIsolateResults runs two different programs
// concurrently and checks neither run's output or errors bleed into the
// other's Result.
func TestConcurrentRunsIsolateResults(t *testing.T) {
	progA, err := stc.Compile(`printf("alpha %s", python("a = 3*41", "a"));`)
	if err != nil {
		t.Fatal(err)
	}
	progB, err := stc.Compile(`printf("beta %i", 7*6);`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			res, err := RunCompiled(progA, Config{Engines: 1, Workers: 2, Servers: 1})
			if err != nil {
				t.Error(err)
				return
			}
			if !strings.Contains(res.Stdout, "alpha 123") || strings.Contains(res.Stdout, "beta") {
				t.Errorf("program A stdout contaminated: %q", res.Stdout)
			}
		}()
		go func() {
			defer wg.Done()
			res, err := RunCompiled(progB, Config{Engines: 1, Workers: 1, Servers: 1})
			if err != nil {
				t.Error(err)
				return
			}
			if !strings.Contains(res.Stdout, "beta 42") || strings.Contains(res.Stdout, "alpha") {
				t.Errorf("program B stdout contaminated: %q", res.Stdout)
			}
		}()
	}
	wg.Wait()
}
