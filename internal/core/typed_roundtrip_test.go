package core

// End-to-end half of the cross-engine conformance matrix (Engine v2): a
// blob vector travels Swift -> embedded engine -> Swift bit-exact —
// payload bytes, Fortran dims, and element kind all intact — with no
// string rendering of element data anywhere on the route. The vectors,
// the per-language identity statements, and the engine iteration all
// come from internal/lang/conformance, so every engine in
// lang.Registered() is driven through the same cases (the Engine-level
// half of the matrix runs in the conformance package itself); there are
// no per-engine tables here. The test registers a typed probe language
// (one lang.Register call, like the toy engine test) whose engine emits
// the prepared blob into the dataflow and captures what comes back.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/lang"
	"repro/internal/lang/conformance"
)

// probeState is shared by every rank's probe engine instance.
type probeState struct {
	mu  sync.Mutex
	src lang.Value
	got []lang.Value
}

func (p *probeState) capture(v lang.Value) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.got = append(p.got, v)
}

// probeEngine speaks Engine v2 natively: probe("emit") returns the
// prepared value typed; probe("capture", x) records its typed argument
// and passes it through.
type probeEngine struct {
	st    *probeState
	evals int64
}

func (e *probeEngine) Name() string { return "probe" }

func (e *probeEngine) Eval(c lang.Call) (lang.Value, error) {
	e.evals++
	switch c.Code {
	case "emit":
		return e.st.src, nil
	case "capture":
		if len(c.Args) != 1 {
			return lang.Value{}, fmt.Errorf("probe: capture takes one argument, got %d", len(c.Args))
		}
		e.st.capture(c.Args[0])
		return c.Args[0], nil
	}
	return lang.Value{}, fmt.Errorf("probe: unknown op %q", c.Code)
}

func (e *probeEngine) Reset()       {}
func (e *probeEngine) Evals() int64 { return e.evals }

// runSwiftRoundTrip routes one conformance vector through a Swift
// program whose `stmt` binds `blob through` from `v`, and asserts the
// captured result is bit-exact.
func runSwiftRoundTrip(t *testing.T, label, stmt string, vc conformance.VectorCase) {
	t.Helper()
	st := &probeState{src: lang.BlobOf(vc.B)}
	lang.Register(lang.Registration{
		Name: "probe",
		Sig:  lang.Signature{Fixed: 1, Variadic: true},
		New:  func(h lang.Host) lang.Engine { return &probeEngine{st: st} },
	})
	defer lang.Unregister("probe")

	src := fmt.Sprintf(`
		blob v = probe("emit");
		%s
		blob back = probe("capture", through);
		printf("len=%%i", blob_size(back));
	`, stmt)
	res, err := Run(src, Config{Engines: 1, Workers: 2, Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, fmt.Sprintf("len=%d", len(vc.B.Data))) {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.got) != 1 {
		t.Fatalf("captured %d values, want 1", len(st.got))
	}
	got := st.got[0]
	if got.Kind() != lang.KindBlob {
		t.Fatalf("captured kind = %v, want blob", got.Kind())
	}
	conformance.AssertBlobEqual(t, label+" round trip", got.AsBlob(), vc.B)
}

func TestTypedBlobRoundTripBitExact(t *testing.T) {
	// Every registered engine, every conformance vector: the identity
	// statement comes from the engine's dialect, so a newly registered
	// language is pulled into this matrix automatically.
	conformance.EachEngine(t, func(t *testing.T, reg lang.Registration, d conformance.Dialect) {
		for _, vc := range conformance.Vectors() {
			vc := vc
			t.Run(vc.Name, func(t *testing.T) {
				runSwiftRoundTrip(t, reg.Name, d.Swift, vc)
			})
		}
	})
}

func TestSwiftCopyRoundTripBitExact(t *testing.T) {
	// A Swift-level copy (sw:copy -> turbine::copy_blob) must keep the
	// payload and metadata too — same vectors, no engine in the route.
	for _, vc := range conformance.Vectors() {
		vc := vc
		t.Run(vc.Name, func(t *testing.T) {
			runSwiftRoundTrip(t, "swift-copy", `blob through = v;`, vc)
		})
	}
}

func TestTypedBlobComputeAcrossLanguages(t *testing.T) {
	// Beyond identity: a vector born in Python (list -> blob) is doubled
	// by R's native vectorised arithmetic, shifted by a Julia-like
	// broadcast, and summed back in Python, all through typed blob
	// handles; the only rendering is the final float.
	st := &probeState{}
	lang.Register(lang.Registration{
		Name: "probe",
		Sig:  lang.Signature{Fixed: 1, Variadic: true},
		New:  func(h lang.Host) lang.Engine { return &probeEngine{st: st} },
	})
	defer lang.Unregister("probe")

	res, err := Run(`
		blob xs = python("v = map(lambda i: 0.5 * i, range(6))", "v");
		blob doubled = r("", "argv1 * 2", xs);
		blob shifted = julia("y = argv1 .+ 1.0", "y", doubled);
		blob seen = probe("capture", shifted);
		float total = python("", "sum(argv1)", seen);
		printf("total=%f", total);
	`, Config{Engines: 1, Workers: 2, Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// sum(2 * 0.5 * (0+1+...+5) + 6 * 1) = 15 + 6 = 21
	if !strings.Contains(res.Stdout, "total=21") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.got) != 1 || st.got[0].Kind() != lang.KindBlob {
		t.Fatalf("captured = %+v", st.got)
	}
	xs, err := st.got[0].AsBlob().Floats()
	if err != nil || len(xs) != 6 || xs[5] != 6.0 {
		t.Fatalf("shifted vector = %v, %v", xs, err)
	}
}
