package core

// End-to-end proof of the typed interlanguage path (Engine v2): a blob
// vector travels Swift -> embedded engine -> Swift bit-exact — payload
// bytes, Fortran dims, and element kind all intact — with no string
// rendering of element data anywhere on the route. The test registers a
// typed probe language (one lang.Register call, like the toy engine
// test) whose engine emits a prepared blob into the dataflow and
// captures what comes back after a round trip through python, r, or tcl.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/blob"
	"repro/internal/lang"
)

// probeState is shared by every rank's probe engine instance.
type probeState struct {
	mu  sync.Mutex
	src lang.Value
	got []lang.Value
}

func (p *probeState) capture(v lang.Value) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.got = append(p.got, v)
}

// probeEngine speaks Engine v2 natively: probe("emit") returns the
// prepared value typed; probe("capture", x) records its typed argument
// and passes it through.
type probeEngine struct {
	st    *probeState
	evals int64
}

func (e *probeEngine) Name() string { return "probe" }

func (e *probeEngine) Eval(c lang.Call) (lang.Value, error) {
	e.evals++
	switch c.Code {
	case "emit":
		return e.st.src, nil
	case "capture":
		if len(c.Args) != 1 {
			return lang.Value{}, fmt.Errorf("probe: capture takes one argument, got %d", len(c.Args))
		}
		e.st.capture(c.Args[0])
		return c.Args[0], nil
	}
	return lang.Value{}, fmt.Errorf("probe: unknown op %q", c.Code)
}

func (e *probeEngine) Reset()       {}
func (e *probeEngine) Evals() int64 { return e.evals }

func TestTypedBlobRoundTripBitExact(t *testing.T) {
	// Element patterns chosen to be destroyed by any decimal rendering:
	// full-mantissa float64s, float32 values that widen inexactly if
	// re-parsed from short text, negative int32s, and raw bytes 0..255.
	f64 := blob.FromFloat64s([]float64{0.1 + 0.2, 1e-300, -3.14159265358979, 6, 0, 2.5e17})
	f64.Dims = []int{2, 3}
	f32 := blob.FromFloat32s([]float32{0.1, -2.7182817, 3.4e38, 0.125, 42, -0})
	f32.Dims = []int{3, 2}
	i32 := blob.FromInt32s([]int32{-2147483648, 2147483647, 0, -7, 12345, 1})
	i32.Dims = []int{6}
	raw := blob.New([]byte{0, 1, 2, 254, 255, 128})

	vectors := []struct {
		name string
		b    blob.Blob
	}{
		{"float64-dims", f64},
		{"float32-dims", f32},
		{"int32-dims", i32},
		{"raw-bytes", raw},
	}
	// Identity fragments per engine: the vector enters as argv1 and the
	// fragment hands it straight back.
	engines := []struct {
		name string
		stmt string // Swift statement binding `through` from `v`
	}{
		{"python", `blob through = python("", "argv1", v);`},
		{"r", `blob through = r("x <- argv1", "x", v);`},
		{"tcl", `blob through = tcl("set argv1", v);`},
		// A Swift-level copy (sw:copy -> turbine::copy_blob) must keep
		// the metadata too.
		{"swift-copy", `blob through = v;`},
	}

	for _, ec := range engines {
		for _, vc := range vectors {
			t.Run(ec.name+"/"+vc.name, func(t *testing.T) {
				st := &probeState{src: lang.BlobOf(vc.b)}
				lang.Register(lang.Registration{
					Name: "probe",
					Sig:  lang.Signature{Fixed: 1, Variadic: true},
					New:  func(h lang.Host) lang.Engine { return &probeEngine{st: st} },
				})
				defer lang.Unregister("probe")

				src := fmt.Sprintf(`
					blob v = probe("emit");
					%s
					blob back = probe("capture", through);
					printf("len=%%i", blob_size(back));
				`, ec.stmt)
				res, err := Run(src, Config{Engines: 1, Workers: 2, Servers: 1})
				if err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(res.Stdout, fmt.Sprintf("len=%d", len(vc.b.Data))) {
					t.Fatalf("stdout = %q", res.Stdout)
				}
				st.mu.Lock()
				defer st.mu.Unlock()
				if len(st.got) != 1 {
					t.Fatalf("captured %d values, want 1", len(st.got))
				}
				got := st.got[0]
				if got.Kind() != lang.KindBlob {
					t.Fatalf("captured kind = %v, want blob", got.Kind())
				}
				gb := got.AsBlob()
				if string(gb.Data) != string(vc.b.Data) {
					t.Fatalf("payload not bit-exact after %s round trip:\n got %x\nwant %x", ec.name, gb.Data, vc.b.Data)
				}
				if gb.Elem != vc.b.Elem {
					t.Fatalf("element kind %v != %v", gb.Elem, vc.b.Elem)
				}
				if fmt.Sprint(gb.Dims) != fmt.Sprint(vc.b.Dims) {
					t.Fatalf("dims %v != %v", gb.Dims, vc.b.Dims)
				}
			})
		}
	}
}

func TestTypedBlobComputeAcrossLanguages(t *testing.T) {
	// Beyond identity: a vector born in Python (list -> blob) is doubled
	// by R's native vectorised arithmetic and summed back in Python, all
	// through typed blob handles; the only rendering is the final float.
	st := &probeState{}
	lang.Register(lang.Registration{
		Name: "probe",
		Sig:  lang.Signature{Fixed: 1, Variadic: true},
		New:  func(h lang.Host) lang.Engine { return &probeEngine{st: st} },
	})
	defer lang.Unregister("probe")

	res, err := Run(`
		blob xs = python("v = map(lambda i: 0.5 * i, range(6))", "v");
		blob doubled = r("", "argv1 * 2", xs);
		blob seen = probe("capture", doubled);
		float total = python("", "sum(argv1)", seen);
		printf("total=%f", total);
	`, Config{Engines: 1, Workers: 2, Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// sum(2 * 0.5 * (0+1+...+5)) = 15
	if !strings.Contains(res.Stdout, "total=15") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.got) != 1 || st.got[0].Kind() != lang.KindBlob {
		t.Fatalf("captured = %+v", st.got)
	}
	xs, err := st.got[0].AsBlob().Floats()
	if err != nil || len(xs) != 6 || xs[5] != 5.0 {
		t.Fatalf("doubled vector = %v, %v", xs, err)
	}
}
