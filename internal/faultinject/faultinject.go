// Package faultinject is the deterministic fault-injection harness of
// the reproduction's fault-tolerance layer. Production code declares
// named sites — fixed points on the task-execution path where a fault
// may be injected — and tests arm those sites with a schedule: on the
// nth hit of the site, fail in a chosen way (return an error, panic,
// simulate a rank crash, or delay). Scheduling is purely hit-counted;
// there is no time-based randomness, so a chaos test that arms
// "panic on hit 3 of lang.eval.pre" observes the same fault on every
// run regardless of machine speed.
//
// The disarmed fast path is a single atomic load, so sites may sit on
// hot paths (work delivery, fragment evaluation) at no measurable cost.
//
// Typical test usage:
//
//	defer faultinject.Reset()
//	faultinject.Arm(faultinject.SiteLangEvalPre, faultinject.Plan{
//	    Hit: 3, Action: faultinject.ActPanic, Msg: "injected interpreter crash",
//	})
//
// Sites honour four actions. ActError makes the site report an injected
// error to its caller; ActPanic makes it panic (exercising the panic
// containment above it); ActCrash makes it return an error wrapping
// ErrCrash, which callers on rank main loops interpret as "this rank
// dies now" (a worker leaves mid-task, a server exits its loop without
// draining); ActDelay sleeps and then proceeds normally.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Site names one fault-injection point. Every call into the harness
// (At, Armed, Arm, Hits) takes a Site, and the swiftvet faultsites
// analyzer requires the argument to be one of the declared constants
// below — an ad-hoc literal would create a site this registry does not
// know about.
type Site string

// Named injection sites. Each constant is referenced by exactly one
// production call point; tests arm them by name.
const (
	// SiteServerLoop fires in the ADLB server message loop, once per
	// dispatched message. ActCrash makes the server rank exit its loop
	// without draining, simulating silent server death.
	SiteServerLoop Site = "adlb.server.loop"
	// SiteGetDeliver fires on the ADLB server just before work is
	// handed to a client (both the direct-serve and parked paths).
	SiteGetDeliver Site = "adlb.get.deliver"
	// SitePutTargeted fires when the ADLB server routes a targeted work
	// item (notifications and targeted puts).
	SitePutTargeted Site = "adlb.put.targeted"
	// SiteLangEvalPre fires inside lang.Install's contained evaluation
	// region, just before the embedded engine evaluates a fragment.
	// ActPanic here exercises engine panic containment.
	SiteLangEvalPre Site = "lang.eval.pre"
	// SiteDataPlaneStore fires in the turbine data plane before a typed
	// result store (StoreAs / StoreVector).
	SiteDataPlaneStore Site = "dataplane.store"
	// SiteWorkerTask fires in the turbine worker loop after a leaf task
	// is received and before it is evaluated. ActCrash makes the worker
	// rank die mid-task (its lease is reclaimed by the server).
	SiteWorkerTask Site = "turbine.worker.task"
	// SiteTCPConnDrop fires in the TCP transport's per-connection read
	// loop, once per received frame. ActError makes the reader treat the
	// connection as dropped, simulating a mid-run network failure.
	SiteTCPConnDrop Site = "mpi.tcp.conn.drop"
	// SiteTCPHeartbeat fires in the worker-side heartbeat loop before
	// each heartbeat frame is sent. ActError suppresses that heartbeat,
	// simulating a wedged-but-connected peer the hub must time out.
	SiteTCPHeartbeat Site = "mpi.tcp.heartbeat"
	// SiteTCPFrame fires in the TCP transport's frame write path.
	// ActError makes the writer emit a torn frame (a hostile length
	// prefix) that the receiving codec must reject deterministically.
	SiteTCPFrame Site = "mpi.tcp.frame"
)

// Action selects how an armed site fails.
type Action int

// Injection actions.
const (
	// ActError makes At return an injected error.
	ActError Action = iota
	// ActPanic makes At panic with the plan's message.
	ActPanic
	// ActCrash makes At return an error wrapping ErrCrash; rank main
	// loops treat it as the death of the rank.
	ActCrash
	// ActDelay makes At sleep for the plan's Delay, then proceed.
	ActDelay
)

// ErrCrash is wrapped by errors injected with ActCrash. Callers decide
// what rank death means at their site (see IsCrash).
var ErrCrash = errors.New("faultinject: simulated rank crash")

// Plan is one armed fault: at the Hit-th hit of the site (1-based;
// 0 means the first), perform Action for Times consecutive hits
// (0 means exactly once; negative means every hit from Hit onward).
type Plan struct {
	Hit    int
	Times  int
	Action Action
	// Msg is included in injected errors and panic values.
	Msg string
	// Delay is the ActDelay sleep; 0 selects 1ms.
	Delay time.Duration
}

// covers reports whether the plan fires on the n-th hit of its site.
func (p Plan) covers(n int) bool {
	start := p.Hit
	if start <= 0 {
		start = 1
	}
	if n < start {
		return false
	}
	if p.Times < 0 {
		return true
	}
	times := p.Times
	if times == 0 {
		times = 1
	}
	return n < start+times
}

type site struct {
	hits  int
	plans []Plan
}

var (
	armed atomic.Bool // fast path: anything armed anywhere?
	mu    sync.Mutex
	sites = map[Site]*site{}
)

// Arm schedules a fault at the named site. Multiple plans may be armed
// at one site; the first plan covering a hit wins. Hit counting starts
// at the first At call after the site is first armed.
func Arm(name Site, p Plan) {
	mu.Lock()
	defer mu.Unlock()
	st := sites[name]
	if st == nil {
		st = &site{}
		sites[name] = st
	}
	st.plans = append(st.plans, p)
	armed.Store(true)
}

// Reset disarms every site and zeroes all hit counters. Tests defer it.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	sites = map[Site]*site{}
	armed.Store(false)
}

// Hits reports how many times the named site has been hit since the
// harness was last armed (0 when nothing is armed: the disarmed fast
// path does not count).
func Hits(name Site) int {
	mu.Lock()
	defer mu.Unlock()
	if st := sites[name]; st != nil {
		return st.hits
	}
	return 0
}

// At is the production-side hook: each named call point invokes it once
// per pass. Disarmed, it is a single atomic load returning nil. Armed,
// it counts the hit and applies the first covering plan: returns an
// injected error (ActError), panics (ActPanic), returns an error
// wrapping ErrCrash (ActCrash), or sleeps and returns nil (ActDelay).
func At(name Site) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	st := sites[name]
	if st == nil {
		// Count hits at unarmed sites too while the harness is armed, so
		// tests can assert a site was (or was not) reached.
		st = &site{}
		sites[name] = st
	}
	st.hits++
	n := st.hits
	var plan *Plan
	for i := range st.plans {
		if st.plans[i].covers(n) {
			plan = &st.plans[i]
			break
		}
	}
	mu.Unlock()
	if plan == nil {
		return nil
	}
	switch plan.Action {
	case ActPanic:
		panic(fmt.Sprintf("faultinject: %s: %s", name, plan.Msg))
	case ActCrash:
		return fmt.Errorf("faultinject: %s: %s: %w", name, plan.Msg, ErrCrash)
	case ActDelay:
		d := plan.Delay
		if d <= 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
		return nil
	}
	return fmt.Errorf("faultinject: %s: injected error: %s", name, plan.Msg)
}

// Armed reports whether any plan is currently armed at the named site.
// Production code can use it to gate expensive fault bookkeeping; tests
// use it to assert arming state without tripping the hit counter.
func Armed(name Site) bool {
	if !armed.Load() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	st := sites[name]
	return st != nil && len(st.plans) > 0
}

// IsCrash reports whether err is an ActCrash injection.
func IsCrash(err error) bool { return errors.Is(err, ErrCrash) }
