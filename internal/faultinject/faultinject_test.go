package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisarmedIsNil(t *testing.T) {
	Reset()
	for i := 0; i < 100; i++ {
		if err := At(SiteLangEvalPre); err != nil {
			t.Fatalf("disarmed At returned %v", err)
		}
	}
	if got := Hits(SiteLangEvalPre); got != 0 {
		t.Fatalf("disarmed hits counted: %d", got)
	}
}

func TestNthHitError(t *testing.T) {
	defer Reset()
	Reset()
	Arm("site.a", Plan{Hit: 3, Action: ActError, Msg: "boom"})
	for i := 1; i <= 5; i++ {
		err := At("site.a")
		if i == 3 {
			if err == nil || !strings.Contains(err.Error(), "boom") {
				t.Fatalf("hit %d: want injected error, got %v", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("hit %d: unexpected error %v", i, err)
		}
	}
	if got := Hits("site.a"); got != 5 {
		t.Fatalf("hits = %d, want 5", got)
	}
}

func TestTimesWindowAndForever(t *testing.T) {
	defer Reset()
	Reset()
	Arm("site.b", Plan{Hit: 2, Times: 2, Action: ActError, Msg: "window"})
	want := []bool{false, true, true, false, false}
	for i, w := range want {
		if got := At("site.b") != nil; got != w {
			t.Fatalf("hit %d: injected=%v, want %v", i+1, got, w)
		}
	}

	Reset()
	Arm("site.c", Plan{Hit: 2, Times: -1, Action: ActError, Msg: "forever"})
	if At("site.c") != nil {
		t.Fatal("hit 1 should pass")
	}
	for i := 2; i <= 10; i++ {
		if At("site.c") == nil {
			t.Fatalf("hit %d should inject forever", i)
		}
	}
}

func TestPanicAction(t *testing.T) {
	defer Reset()
	Reset()
	Arm("site.p", Plan{Action: ActPanic, Msg: "injected-panic"})
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic")
		}
		if s, ok := p.(string); !ok || !strings.Contains(s, "injected-panic") {
			t.Fatalf("panic value %v", p)
		}
	}()
	_ = At("site.p")
}

func TestCrashAction(t *testing.T) {
	defer Reset()
	Reset()
	Arm("site.k", Plan{Action: ActCrash, Msg: "die"})
	err := At("site.k")
	if !IsCrash(err) {
		t.Fatalf("want crash error, got %v", err)
	}
	if IsCrash(errors.New("other")) {
		t.Fatal("IsCrash matched a plain error")
	}
}

func TestDelayAction(t *testing.T) {
	defer Reset()
	Reset()
	Arm("site.d", Plan{Action: ActDelay, Delay: 5 * time.Millisecond})
	start := time.Now()
	if err := At("site.d"); err != nil {
		t.Fatalf("delay returned error %v", err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("delay too short: %v", elapsed)
	}
}

func TestUnarmedSiteCountsWhileHarnessArmed(t *testing.T) {
	defer Reset()
	Reset()
	Arm("site.x", Plan{Hit: 100, Action: ActError, Msg: "never"})
	_ = At("site.y")
	_ = At("site.y")
	if got := Hits("site.y"); got != 2 {
		t.Fatalf("unarmed site hits = %d, want 2", got)
	}
}

func TestConcurrentHits(t *testing.T) {
	defer Reset()
	Reset()
	Arm("site.race", Plan{Hit: 50, Action: ActError, Msg: "one"})
	var wg sync.WaitGroup
	var injected sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := At("site.race"); err != nil {
					injected.Store(err.Error(), true)
				}
			}
		}()
	}
	wg.Wait()
	n := 0
	injected.Range(func(_, _ any) bool { n++; return true })
	if n != 1 {
		t.Fatalf("injected %d distinct errors, want exactly 1", n)
	}
	if got := Hits("site.race"); got != 200 {
		t.Fatalf("hits = %d, want 200", got)
	}
}

func TestArmedReportsPerSite(t *testing.T) {
	defer Reset()
	Reset()
	if Armed(SiteServerLoop) {
		t.Fatal("Armed true on a fully disarmed harness")
	}
	Arm(SiteServerLoop, Plan{Hit: 1, Action: ActError, Msg: "x"})
	if !Armed(SiteServerLoop) {
		t.Fatal("Armed false after Arm")
	}
	if Armed(SiteGetDeliver) {
		t.Fatal("Armed true for a site that was never armed")
	}
	// Armed must not consume hits: the plan still fires on the first At.
	if got := Hits(SiteServerLoop); got != 0 {
		t.Fatalf("Armed consumed %d hits", got)
	}
	if err := At(SiteServerLoop); err == nil {
		t.Fatal("plan did not fire after Armed checks")
	}
	Reset()
	if Armed(SiteServerLoop) {
		t.Fatal("Armed survived Reset")
	}
}
