package fortwrap

import (
	"strings"
	"testing"

	"repro/internal/swig"
)

const sampleFortran = `
! Fortran numerics exposed to Swift via FortWrap + SWIG
subroutine scale(data, n, factor)
  real(8), intent(inout) :: data(*)
  integer, intent(in) :: n
  real(8), intent(in) :: factor
end subroutine

function energy(data, n) result(e)
  real(8) :: data(*)
  integer :: n
  real(8) :: e
end function

function count_items(n) result(c)
  integer :: n, c
end function
`

func TestTranslate(t *testing.T) {
	header, err := Translate(sampleFortran)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"void scale(double* data, int n, double factor);",
		"double energy(double* data, int n);",
		"int count_items(int n);",
	}
	for _, w := range want {
		if !strings.Contains(header, w) {
			t.Errorf("missing %q in:\n%s", w, header)
		}
	}
}

func TestTranslateFeedsSwig(t *testing.T) {
	// The full paper pipeline: Fortran -> (fortwrap) -> C header ->
	// (swig) -> declarations.
	header, err := Translate(sampleFortran)
	if err != nil {
		t.Fatal(err)
	}
	decls, err := swig.ParseHeader(header)
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) != 3 {
		t.Fatalf("got %d decls", len(decls))
	}
	if decls[1].Name != "energy" || decls[1].Ret != swig.CDouble {
		t.Fatalf("energy decl: %+v", decls[1])
	}
}

func TestFunctionDefaultResultName(t *testing.T) {
	src := `
function half(x)
  real(8) :: x, half
end function
`
	header, err := Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(header, "double half(double x);") {
		t.Fatalf("header:\n%s", header)
	}
}

func TestCharacterAndLogical(t *testing.T) {
	src := `
function describe(flag) result(msg)
  logical :: flag
  character(len=64) :: msg
end function
`
	header, err := Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(header, "char* describe(int flag);") {
		t.Fatalf("header:\n%s", header)
	}
}

func TestTranslateErrors(t *testing.T) {
	cases := []string{
		"integer :: stray_declaration",                          // outside unit
		"subroutine broken\nend subroutine",                     // malformed header
		"subroutine f(x)\nend subroutine",                       // undeclared parameter
		"subroutine f(x)\n  weird :: x\nend",                    // unsupported type
		"function f(x) result(y)\n  real(8) :: x\nend function", // missing result decl
	}
	for _, src := range cases {
		if _, err := Translate(src); err == nil {
			t.Errorf("Translate(%q) should fail", src)
		}
	}
}
