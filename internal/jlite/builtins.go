package jlite

// The builtin set: the numeric core a Julia-flavoured analysis fragment
// leans on. Vector-aware reductions use the Vec fast paths (no boxing of
// element data); scalar math follows Julia's Int64/Float64 promotion.

import (
	"fmt"
	"math"
	"strings"
)

var jBuiltins map[string]Builtin

func init() {
	jBuiltins = map[string]Builtin{
		"length":  bLength,
		"sum":     bSum,
		"println": bPrintln,
		"print":   bPrint,
		"string":  bString,
		"zeros":   bZeros,
		"ones":    bOnes,
		"collect": bCollect,
		"push!":   bPush,
		"abs":     bAbs,
		"min":     bMin,
		"max":     bMax,
		"div":     bDiv,
		"Float64": bFloat64,
		"Int":     bInt,
		"Int64":   bInt,
		"typeof":  bTypeof,
		"sqrt":    mathUnary("sqrt", math.Sqrt),
		"exp":     mathUnary("exp", math.Exp),
		"log":     mathUnary("log", math.Log),
		"sin":     mathUnary("sin", math.Sin),
		"cos":     mathUnary("cos", math.Cos),
		"floor":   mathUnary("floor", math.Floor),
		"ceil":    mathUnary("ceil", math.Ceil),
	}
}

func mathUnary(name string, f func(float64) float64) Builtin {
	return func(in *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("jlite: %s takes 1 argument", name)
		}
		if isVector(args[0]) {
			items, _ := elemsOf(args[0])
			out := &Arr{Elems: make([]Value, len(items))}
			for i, it := range items {
				x, err := toFloat(it)
				if err != nil {
					return nil, err
				}
				out.Elems[i] = f(x)
			}
			return out, nil
		}
		x, err := toFloat(args[0])
		if err != nil {
			return nil, err
		}
		return f(x), nil
	}
}

func bLength(in *Interp, args []Value) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("jlite: length takes 1 argument")
	}
	switch x := args[0].(type) {
	case *Vec:
		return int64(x.Len()), nil
	case *Arr:
		return int64(len(x.Elems)), nil
	case *Range:
		return int64(x.Len()), nil
	case string:
		return int64(len(x)), nil
	}
	return nil, fmt.Errorf("jlite: length of %s", typeName(args[0]))
}

func bSum(in *Interp, args []Value) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("jlite: sum takes 1 argument")
	}
	switch x := args[0].(type) {
	case *Vec:
		return x.Sum(), nil
	case *Range:
		// Sum of lo..hi without materialising: n*(lo+hi)/2.
		if x.Hi < x.Lo {
			return int64(0), nil
		}
		n := x.Hi - x.Lo + 1
		return n * (x.Lo + x.Hi) / 2, nil
	case *Arr:
		var si int64
		sf, allInt := 0.0, true
		for _, it := range x.Elems {
			switch n := it.(type) {
			case int64:
				si += n
				sf += float64(n)
			case bool:
				si += boolToInt(n)
				sf += float64(boolToInt(n))
			case float64:
				allInt = false
				sf += n
			default:
				return nil, fmt.Errorf("jlite: sum of non-numeric %s", typeName(it))
			}
		}
		if allInt {
			return si, nil
		}
		return sf, nil
	case int64, float64:
		return x, nil
	}
	return nil, fmt.Errorf("jlite: sum of %s", typeName(args[0]))
}

func bPrintln(in *Interp, args []Value) (Value, error) {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = Str(a)
	}
	fmt.Fprintln(in.Out, strings.Join(parts, ""))
	return nil, nil
}

func bPrint(in *Interp, args []Value) (Value, error) {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = Str(a)
	}
	fmt.Fprint(in.Out, strings.Join(parts, ""))
	return nil, nil
}

func bString(in *Interp, args []Value) (Value, error) {
	var b strings.Builder
	for _, a := range args {
		b.WriteString(Str(a))
	}
	return b.String(), nil
}

func bZeros(in *Interp, args []Value) (Value, error) {
	return filled(args, "zeros", 0.0)
}

func bOnes(in *Interp, args []Value) (Value, error) {
	return filled(args, "ones", 1.0)
}

func filled(args []Value, name string, v float64) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("jlite: %s takes 1 argument", name)
	}
	n, ok := args[0].(int64)
	if !ok || n < 0 {
		return nil, fmt.Errorf("jlite: %s needs a non-negative integer length", name)
	}
	out := &Arr{Elems: make([]Value, n)}
	for i := range out.Elems {
		out.Elems[i] = v
	}
	return out, nil
}

func bCollect(in *Interp, args []Value) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("jlite: collect takes 1 argument")
	}
	items, n := elemsOf(args[0])
	if n < 0 {
		return nil, fmt.Errorf("jlite: collect of %s", typeName(args[0]))
	}
	return &Arr{Elems: append([]Value(nil), items...)}, nil
}

func bPush(in *Interp, args []Value) (Value, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("jlite: push! takes 2 arguments")
	}
	a, ok := args[0].(*Arr)
	if !ok {
		// Vec views are fixed-size windows over blob bytes; growing one
		// would detach it from its backing storage.
		return nil, fmt.Errorf("jlite: push! needs a growable vector, got %s", typeName(args[0]))
	}
	if !isNumeric(args[1]) {
		return nil, fmt.Errorf("jlite: cannot push %s onto a numeric vector", typeName(args[1]))
	}
	a.Elems = append(a.Elems, args[1])
	return a, nil
}

func bAbs(in *Interp, args []Value) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("jlite: abs takes 1 argument")
	}
	switch n := args[0].(type) {
	case int64:
		if n < 0 {
			return -n, nil
		}
		return n, nil
	case float64:
		return math.Abs(n), nil
	}
	return nil, fmt.Errorf("jlite: abs of %s", typeName(args[0]))
}

func bMin(in *Interp, args []Value) (Value, error) { return fold("min", args, -1) }
func bMax(in *Interp, args []Value) (Value, error) { return fold("max", args, 1) }

func fold(name string, args []Value, keep int) (Value, error) {
	if len(args) < 2 {
		return nil, fmt.Errorf("jlite: %s takes at least 2 arguments", name)
	}
	best := args[0]
	for _, a := range args[1:] {
		c, err := scalarBinop(">", a, best)
		if err != nil {
			return nil, err
		}
		if (c == true) == (keep > 0) {
			best = a
		}
	}
	return best, nil
}

func bDiv(in *Interp, args []Value) (Value, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("jlite: div takes 2 arguments")
	}
	a, okA := args[0].(int64)
	b, okB := args[1].(int64)
	if !okA || !okB {
		return nil, fmt.Errorf("jlite: div needs integers")
	}
	if b == 0 {
		return nil, fmt.Errorf("jlite: DivideError: integer division by zero")
	}
	return a / b, nil // truncated, as Julia's div
}

func bFloat64(in *Interp, args []Value) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("jlite: Float64 takes 1 argument")
	}
	return toFloat(args[0])
}

func bInt(in *Interp, args []Value) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("jlite: Int takes 1 argument")
	}
	switch n := args[0].(type) {
	case int64:
		return n, nil
	case bool:
		return boolToInt(n), nil
	case float64:
		if float64(int64(n)) != n {
			return nil, fmt.Errorf("jlite: InexactError: Int(%v)", n)
		}
		return int64(n), nil
	}
	return nil, fmt.Errorf("jlite: Int of %s", typeName(args[0]))
}

func bTypeof(in *Interp, args []Value) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("jlite: typeof takes 1 argument")
	}
	return typeName(args[0]), nil
}
