package jlite

// Fragment-cache invariants, in the style of internal/pylite and
// internal/rlite: the compile-once cache stores parse results keyed by
// source text only, so cached fragments must observe every state
// mutation — redefined functions, rebound globals, Reset — exactly as
// uncached evaluation would, and the cache must stay bounded under
// unique-fragment floods.

import (
	"fmt"
	"testing"

	"repro/internal/memo"
)

func TestFragmentCacheHitIsParseFree(t *testing.T) {
	in := New()
	const code = "y = 0\nfor k in 1:4\n    y = y + k\nend"
	if _, err := in.EvalFragment(code, "y"); err != nil {
		t.Fatal(err)
	}
	progs, exprs := in.CacheStats()
	if progs != 1 || exprs != 1 {
		t.Fatalf("cache = %d progs, %d exprs; want 1, 1", progs, exprs)
	}
	for i := 0; i < 10; i++ {
		out, err := in.EvalFragment(code, "y")
		if err != nil || out != "10" {
			t.Fatalf("out = %q, %v", out, err)
		}
	}
	progs, exprs = in.CacheStats()
	if progs != 1 || exprs != 1 {
		t.Fatalf("repeats grew the cache: %d progs, %d exprs", progs, exprs)
	}
}

func TestFragmentCacheSeesRedefinition(t *testing.T) {
	in := New()
	// The call-site fragment "f()" is cached once; redefining f through
	// another cached fragment must change what it returns.
	if err := in.Exec("function f()\n    1\nend"); err != nil {
		t.Fatal(err)
	}
	if v, err := in.EvalExpr("f()"); err != nil || Str(v) != "1" {
		t.Fatalf("f() = %v, %v", v, err)
	}
	if err := in.Exec("function f()\n    2\nend"); err != nil {
		t.Fatal(err)
	}
	if v, err := in.EvalExpr("f()"); err != nil || Str(v) != "2" {
		t.Fatalf("after redefinition f() = %v, %v", v, err)
	}
}

func TestFragmentCacheSeesRebinding(t *testing.T) {
	in := New()
	const read = "x * 10"
	for want, bind := range map[string]string{"70": "x = 7", "80": "x = 8"} {
		if err := in.Exec(bind); err != nil {
			t.Fatal(err)
		}
		if v, err := in.EvalExpr(read); err != nil || Str(v) != want {
			t.Fatalf("%s -> %v (want %s), %v", bind, v, want, err)
		}
	}
}

func TestFragmentCacheSurvivesResetButStateDoesNot(t *testing.T) {
	in := New()
	if _, err := in.EvalFragment("state = 1", "state"); err != nil {
		t.Fatal(err)
	}
	in.Reset()
	progs, _ := in.CacheStats()
	if progs != 1 {
		t.Fatalf("Reset dropped the parse cache (progs = %d)", progs)
	}
	if _, err := in.EvalExpr("state"); err == nil {
		t.Fatal("state survived Reset")
	}
	// The cached fragment replays against the fresh globals.
	if out, err := in.EvalFragment("state = 1", "state"); err != nil || out != "1" {
		t.Fatalf("replay after Reset: %q, %v", out, err)
	}
}

func TestFragmentCacheBoundedEviction(t *testing.T) {
	in := New()
	// ~70 bytes per entry at fragCost (source + fixed overhead): a 288-byte
	// budget holds at most 4 of the fragments below.
	in.progs = memo.NewBudget[[]jstmt](288, fragCost[[]jstmt])
	for i := 0; i < 20; i++ {
		if err := in.Exec(fmt.Sprintf("v%d = %d", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	progs, _ := in.CacheStats()
	if progs > 4 {
		t.Fatalf("cache exceeded bound: %d", progs)
	}
	// An evicted fragment still evaluates correctly (re-parsed).
	if err := in.Exec("v0 = 99"); err != nil {
		t.Fatal(err)
	}
	if v, err := in.EvalExpr("v0"); err != nil || Str(v) != "99" {
		t.Fatalf("evicted fragment re-eval: %v, %v", v, err)
	}
}

func TestFragmentCacheParseErrorsNotCached(t *testing.T) {
	in := New()
	if err := in.Exec("function ("); err == nil {
		t.Fatal("bad syntax accepted")
	}
	if _, err := in.EvalExpr("1 +"); err == nil {
		t.Fatal("bad expr accepted")
	}
	progs, exprs := in.CacheStats()
	if progs != 0 || exprs != 0 {
		t.Fatalf("parse failures entered the cache (progs = %d, exprs = %d)", progs, exprs)
	}
}
