package jlite

import (
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/memo"
)

// Value is a jlite runtime value: nil (nothing), bool, int64, float64,
// string, *Vec (blob-backed vector), *Arr (fresh vector), *Range, *Func,
// or Builtin.
type Value any

// Arr is a fresh 1-based numeric vector born inside the interpreter (an
// array literal, zeros(n), a broadcast result). Elements are int64,
// float64, or bool.
type Arr struct{ Elems []Value }

// Range is an inclusive step-1 integer range (lo:hi), iterable and
// 1-based indexable without materialising its elements.
type Range struct{ Lo, Hi int64 }

// Len returns the element count (0 when hi < lo).
func (r *Range) Len() int {
	if r.Hi < r.Lo {
		return 0
	}
	return int(r.Hi - r.Lo + 1)
}

// Func is a user-defined `function name(params) … end`.
type Func struct {
	name    string
	params  []string
	body    []jstmt
	closure *env
}

// Builtin is a Go-implemented function.
type Builtin func(in *Interp, args []Value) (Value, error)

type env struct {
	vars   map[string]Value
	parent *env
}

func (e *env) lookup(name string) (Value, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// assignExisting rebinds name in the innermost scope that already holds
// it, returning false when no scope does. This is REPL-style soft scope
// applied everywhere, a deliberate jlite simplification: real Julia
// makes an assignment inside a function local unless the name is
// declared `global`, but fragment-sized glue reads better without the
// declaration and the retain/reinit policy depends on top-level
// assignments landing in the globals either way.
func (e *env) assignExisting(name string, v Value) bool {
	for cur := e; cur != nil; cur = cur.parent {
		if _, ok := cur.vars[name]; ok {
			cur.vars[name] = v
			return true
		}
	}
	return false
}

// Interp is one embedded Julia-like interpreter instance with persistent
// global state, mirroring an initialised libjulia. Out receives
// println() output. Each worker rank owns its own instance; the
// retain/reinit state policy of the paper is implemented by Reset.
type Interp struct {
	globals *env
	Out     io.Writer
	depth   int
	// EvalCount counts Exec/EvalExpr calls, for instrumentation.
	EvalCount int
	// Compile-once fragment caches (source -> parsed form, byte-budgeted
	// LRU; see internal/memo). The caches hold immutable ASTs keyed by
	// source text only, so they survive Reset: reinitialisation discards
	// state, not parses — exactly as in pylite. The byte budget (rather
	// than an entry count) keeps long-lived serving interpreters bounded
	// by cost: one huge one-shot fragment cannot displace many small hot
	// ones.
	progs *memo.Budget[[]jstmt]
	exprs *memo.Budget[jexpr]
}

// Fragment-cache byte budgets, in source bytes (AST size scales with the
// source, so source length is the cost proxy; see fragCost).
const (
	defaultProgCacheBytes = 1 << 20
	defaultExprCacheBytes = 256 << 10
)

// fragCost prices a cached parse by its source length plus a fixed
// per-entry overhead for the AST and bookkeeping.
func fragCost[V any](key string, _ V) int64 { return int64(len(key)) + 64 }

// New creates an interpreter with builtins installed.
func New() *Interp {
	in := &Interp{
		Out:   os.Stdout,
		progs: memo.NewBudget[[]jstmt](defaultProgCacheBytes, fragCost[[]jstmt]),
		exprs: memo.NewBudget[jexpr](defaultExprCacheBytes, fragCost[jexpr]),
	}
	in.reset()
	return in
}

func (in *Interp) reset() {
	in.globals = &env{vars: map[string]Value{}}
}

// Reset finalises and reinitialises the interpreter, discarding all
// global state (the paper's "reinitialize" policy, §III-C) but not the
// fragment caches: cached parses are immutable and state-free.
func (in *Interp) Reset() { in.reset() }

// SetGlobal binds a value into the interpreter's global scope; hosts use
// it to pre-bind fragment arguments (argv1..argvN), as a C embedding
// would via jl_set_global.
func (in *Interp) SetGlobal(name string, v Value) { in.globals.vars[name] = v }

// DelGlobal removes a global binding (a no-op if absent); hosts use it
// to unbind stale pre-bound arguments between fragments.
func (in *Interp) DelGlobal(name string) { delete(in.globals.vars, name) }

// control-flow sentinels
type breakErr struct{}
type continueErr struct{}
type returnErr struct{ v Value }

func (breakErr) Error() string    { return "jlite: break outside loop" }
func (continueErr) Error() string { return "jlite: continue outside loop" }
func (returnErr) Error() string   { return "jlite: return outside function" }

// Exec runs a block of statements against the persistent globals.
// Parsing is memoized: each distinct source string is parsed once per
// interpreter and the immutable statement list is replayed thereafter.
func (in *Interp) Exec(code string) error {
	in.EvalCount++
	stmts, err := in.progs.GetOrCompute(code, func() ([]jstmt, error) {
		return parseProgram(code)
	})
	if err != nil {
		return err
	}
	_, err = in.execBlock(stmts, in.globals)
	return err
}

// EvalExpr evaluates a single expression against the globals, memoizing
// the parsed expression by source text.
func (in *Interp) EvalExpr(expr string) (Value, error) {
	in.EvalCount++
	e, err := in.exprs.GetOrCompute(expr, func() (jexpr, error) {
		return parseExprString(expr)
	})
	if err != nil {
		return nil, err
	}
	return in.eval(e, in.globals)
}

// CacheStats reports the number of memoized programs and expressions,
// for tests and diagnostics.
func (in *Interp) CacheStats() (progs, exprs int) {
	return in.progs.Len(), in.exprs.Len()
}

// CacheBudgetStats reports the combined byte-budget counters of both
// fragment caches, for the serving layer's /statsz.
func (in *Interp) CacheBudgetStats() memo.BudgetStats {
	p, e := in.progs.Stats(), in.exprs.Stats()
	return memo.BudgetStats{
		Hits:         p.Hits + e.Hits,
		Misses:       p.Misses + e.Misses,
		Evictions:    p.Evictions + e.Evictions,
		BytesEvicted: p.BytesEvicted + e.BytesEvicted,
		Oversize:     p.Oversize + e.Oversize,
		CurBytes:     p.CurBytes + e.CurBytes,
		Entries:      p.Entries + e.Entries,
	}
}

// EvalFragment is the Swift/T julia(code, expr) entry point: execute
// code, then evaluate expr and return its string() form.
func (in *Interp) EvalFragment(code, expr string) (string, error) {
	if strings.TrimSpace(code) != "" {
		if err := in.Exec(code); err != nil {
			return "", err
		}
	}
	if strings.TrimSpace(expr) == "" {
		return "", nil
	}
	v, err := in.EvalExpr(expr)
	if err != nil {
		return "", err
	}
	return Str(v), nil
}

// execBlock runs statements and returns the value of the last one
// (Julia's block-value semantics; loops and definitions yield nothing).
func (in *Interp) execBlock(stmts []jstmt, e *env) (Value, error) {
	var last Value
	for _, s := range stmts {
		v, err := in.execStmt(s, e)
		if err != nil {
			return nil, err
		}
		last = v
	}
	return last, nil
}

func (in *Interp) execStmt(s jstmt, e *env) (Value, error) {
	switch st := s.(type) {
	case *sExpr:
		return in.eval(st.x, e)
	case *sAssign:
		return nil, in.assign(st, e)
	case *sFunc:
		fn := &Func{name: st.name, params: st.params, body: st.body, closure: e}
		in.bind(e, st.name, fn)
		return nil, nil
	case *sIf:
		for i, cond := range st.conds {
			c, err := in.eval(cond, e)
			if err != nil {
				return nil, err
			}
			b, err := asCond(c)
			if err != nil {
				return nil, err
			}
			if b {
				return in.execBlock(st.blocks[i], e)
			}
		}
		return in.execBlock(st.els, e)
	case *sWhile:
		for {
			c, err := in.eval(st.cond, e)
			if err != nil {
				return nil, err
			}
			b, err := asCond(c)
			if err != nil {
				return nil, err
			}
			if !b {
				return nil, nil
			}
			if _, err := in.execBlock(st.body, e); err != nil {
				if _, ok := err.(breakErr); ok {
					return nil, nil
				}
				if _, ok := err.(continueErr); ok {
					continue
				}
				return nil, err
			}
		}
	case *sFor:
		seq, err := in.eval(st.seq, e)
		if err != nil {
			return nil, err
		}
		err = forEach(seq, func(item Value) error {
			in.bind(e, st.v, item)
			_, err := in.execBlock(st.body, e)
			return err
		})
		if err != nil {
			if _, ok := err.(breakErr); ok {
				return nil, nil
			}
			return nil, err
		}
		return nil, nil
	case *sReturn:
		var v Value
		if st.x != nil {
			var err error
			v, err = in.eval(st.x, e)
			if err != nil {
				return nil, err
			}
		}
		return nil, returnErr{v: v}
	case *sBreak:
		return nil, breakErr{}
	case *sContinue:
		return nil, continueErr{}
	}
	return nil, fmt.Errorf("jlite: unknown statement %T", s)
}

// forEach iterates a sequence value without materialising ranges.
// continue propagates per item; break and real errors abort.
func forEach(seq Value, f func(Value) error) error {
	each := func(item Value) error {
		err := f(item)
		if _, ok := err.(continueErr); ok {
			return nil
		}
		return err
	}
	switch s := seq.(type) {
	case *Range:
		for i := s.Lo; i <= s.Hi; i++ {
			if err := each(i); err != nil {
				return err
			}
		}
		return nil
	case *Arr:
		for _, it := range s.Elems {
			if err := each(it); err != nil {
				return err
			}
		}
		return nil
	case *Vec:
		n := s.Len()
		for i := 0; i < n; i++ {
			if err := each(s.At(i)); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("jlite: %s is not iterable", typeName(seq))
}

// bind assigns name in the innermost scope already holding it, creating
// it in the current scope otherwise.
func (in *Interp) bind(e *env, name string, v Value) {
	if e.assignExisting(name, v) {
		return
	}
	e.vars[name] = v
}

func (in *Interp) assign(st *sAssign, e *env) error {
	v, err := in.eval(st.value, e)
	if err != nil {
		return err
	}
	if st.op != "=" {
		old, err := in.eval(st.target, e)
		if err != nil {
			return err
		}
		v, err = in.binop(strings.TrimSuffix(st.op, "="), old, v, e)
		if err != nil {
			return err
		}
	}
	switch t := st.target.(type) {
	case *jName:
		in.bind(e, t.name, v)
		return nil
	case *jIndex:
		obj, err := in.eval(t.obj, e)
		if err != nil {
			return err
		}
		idx, err := in.eval(t.idx, e)
		if err != nil {
			return err
		}
		switch o := obj.(type) {
		case *Vec:
			i, err := oneBasedIndex(idx, o.Len())
			if err != nil {
				return err
			}
			return o.SetAt(i, v)
		case *Arr:
			i, err := oneBasedIndex(idx, len(o.Elems))
			if err != nil {
				return err
			}
			if !isNumeric(v) {
				return fmt.Errorf("jlite: cannot store %s in a numeric vector", typeName(v))
			}
			o.Elems[i] = v
			return nil
		}
		return fmt.Errorf("jlite: cannot index-assign %s", typeName(obj))
	}
	return fmt.Errorf("jlite: bad assignment target")
}

// oneBasedIndex converts a Julia-style 1-based index to a 0-based slice
// offset, with bounds checking.
func oneBasedIndex(idx Value, n int) (int, error) {
	i, ok := idx.(int64)
	if !ok {
		if f, okf := idx.(float64); okf && float64(int64(f)) == f {
			i, ok = int64(f), true
		}
	}
	if !ok {
		return 0, fmt.Errorf("jlite: vector index must be an integer, got %s", typeName(idx))
	}
	if i < 1 || i > int64(n) {
		return 0, fmt.Errorf("jlite: BoundsError: attempt to access %d-element vector at index [%d]", n, i)
	}
	return int(i - 1), nil
}

func isNumeric(v Value) bool {
	switch v.(type) {
	case int64, float64, bool:
		return true
	}
	return false
}

func asCond(v Value) (bool, error) {
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("jlite: TypeError: non-boolean (%s) used in boolean context", typeName(v))
	}
	return b, nil
}

func typeName(v Value) string {
	switch v.(type) {
	case nil:
		return "Nothing"
	case bool:
		return "Bool"
	case int64:
		return "Int64"
	case float64:
		return "Float64"
	case string:
		return "String"
	case *Vec, *Arr:
		return "Vector"
	case *Range:
		return "UnitRange"
	case *Func:
		return "Function"
	case Builtin:
		return "Builtin"
	}
	return fmt.Sprintf("%T", v)
}

// ---- evaluation ----

func (in *Interp) eval(x jexpr, e *env) (Value, error) {
	switch ex := x.(type) {
	case *jInt:
		return ex.v, nil
	case *jFloat:
		return ex.v, nil
	case *jStrLit:
		return ex.v, nil
	case *jBool:
		return ex.v, nil
	case *jNothing:
		return nil, nil
	case *jName:
		if v, ok := e.lookup(ex.name); ok {
			return v, nil
		}
		if b, ok := jBuiltins[ex.name]; ok {
			return b, nil
		}
		return nil, fmt.Errorf("jlite: UndefVarError: %s not defined", ex.name)
	case *jBin:
		switch ex.op {
		case "&&", "||":
			l, err := in.eval(ex.l, e)
			if err != nil {
				return nil, err
			}
			lb, err := asCond(l)
			if err != nil {
				return nil, err
			}
			if (ex.op == "&&" && !lb) || (ex.op == "||" && lb) {
				return lb, nil
			}
			r, err := in.eval(ex.r, e)
			if err != nil {
				return nil, err
			}
			return asCond(r)
		}
		l, err := in.eval(ex.l, e)
		if err != nil {
			return nil, err
		}
		r, err := in.eval(ex.r, e)
		if err != nil {
			return nil, err
		}
		return in.binop(ex.op, l, r, e)
	case *jUn:
		v, err := in.eval(ex.x, e)
		if err != nil {
			return nil, err
		}
		switch ex.op {
		case "-":
			switch n := v.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			case *Vec, *Arr, *Range:
				return in.broadcast("*", v, int64(-1))
			}
			return nil, fmt.Errorf("jlite: no method -(%s)", typeName(v))
		case "!":
			b, err := asCond(v)
			if err != nil {
				return nil, err
			}
			return !b, nil
		}
		return nil, fmt.Errorf("jlite: unknown unary op %q", ex.op)
	case *jArrLit:
		arr := &Arr{Elems: make([]Value, 0, len(ex.elems))}
		for _, el := range ex.elems {
			v, err := in.eval(el, e)
			if err != nil {
				return nil, err
			}
			if !isNumeric(v) {
				return nil, fmt.Errorf("jlite: vector literals hold numbers, got %s", typeName(v))
			}
			arr.Elems = append(arr.Elems, v)
		}
		return arr, nil
	case *jIndex:
		obj, err := in.eval(ex.obj, e)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(ex.idx, e)
		if err != nil {
			return nil, err
		}
		switch o := obj.(type) {
		case *Vec:
			i, err := oneBasedIndex(idx, o.Len())
			if err != nil {
				return nil, err
			}
			return o.At(i), nil
		case *Arr:
			i, err := oneBasedIndex(idx, len(o.Elems))
			if err != nil {
				return nil, err
			}
			return o.Elems[i], nil
		case *Range:
			i, err := oneBasedIndex(idx, o.Len())
			if err != nil {
				return nil, err
			}
			return o.Lo + int64(i), nil
		}
		return nil, fmt.Errorf("jlite: %s is not indexable", typeName(obj))
	case *jCall:
		fn, err := in.eval(ex.fn, e)
		if err != nil {
			return nil, err
		}
		args := make([]Value, len(ex.args))
		for i, a := range ex.args {
			v, err := in.eval(a, e)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return in.call(fn, args)
	}
	return nil, fmt.Errorf("jlite: unknown expression %T", x)
}

func (in *Interp) call(fn Value, args []Value) (Value, error) {
	switch f := fn.(type) {
	case Builtin:
		return f(in, args)
	case *Func:
		if len(args) != len(f.params) {
			return nil, fmt.Errorf("jlite: MethodError: %s takes %d argument(s), got %d",
				f.name, len(f.params), len(args))
		}
		in.depth++
		defer func() { in.depth-- }()
		if in.depth > 500 {
			return nil, fmt.Errorf("jlite: StackOverflowError: recursion too deep")
		}
		local := &env{vars: map[string]Value{}, parent: f.closure}
		for i, p := range f.params {
			local.vars[p] = args[i]
		}
		v, err := in.execBlock(f.body, local)
		if r, ok := err.(returnErr); ok {
			return r.v, nil
		}
		if err != nil {
			return nil, err
		}
		return v, nil
	}
	return nil, fmt.Errorf("jlite: %s is not callable", typeName(fn))
}

// ---- operators ----

func isVector(v Value) bool {
	switch v.(type) {
	case *Vec, *Arr, *Range:
		return true
	}
	return false
}

var dotOf = map[string]string{".+": "+", ".-": "-", ".*": "*", "./": "/", ".^": "^"}

// binop dispatches an operator: dot forms broadcast elementwise, plain
// forms follow Julia's vector conventions (+/- between equal-length
// vectors, * and / against scalars), and everything else is scalar.
func (in *Interp) binop(op string, l, r Value, e *env) (Value, error) {
	if op == ":" {
		lo, okL := asExactInt(l)
		hi, okR := asExactInt(r)
		if !okL || !okR {
			return nil, fmt.Errorf("jlite: range endpoints must be integers, got %s:%s", typeName(l), typeName(r))
		}
		return &Range{Lo: lo, Hi: hi}, nil
	}
	if scalar, ok := dotOf[op]; ok {
		return in.broadcast(scalar, l, r)
	}
	if isVector(l) || isVector(r) {
		switch op {
		case "+", "-":
			if isVector(l) && isVector(r) {
				return in.broadcast(op, l, r)
			}
		case "*":
			if isVector(l) != isVector(r) { // scalar * vector or vector * scalar
				return in.broadcast(op, l, r)
			}
		case "/":
			if isVector(l) && !isVector(r) {
				return in.broadcast(op, l, r)
			}
		case "==", "!=":
			eq, err := vectorEqual(l, r)
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				eq = !eq
			}
			return eq, nil
		}
		return nil, fmt.Errorf("jlite: no method %s(%s, %s); use the broadcast form .%s",
			op, typeName(l), typeName(r), op)
	}
	return scalarBinop(op, l, r)
}

// asExactInt widens a scalar to int64 when exact.
func asExactInt(v Value) (int64, bool) {
	switch n := v.(type) {
	case int64:
		return n, true
	case float64:
		if float64(int64(n)) == n {
			return int64(n), true
		}
	case bool:
		if n {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// elemsOf materialises a vector operand for broadcasting; scalars return
// (nil, -1).
func elemsOf(v Value) ([]Value, int) {
	switch s := v.(type) {
	case *Arr:
		return s.Elems, len(s.Elems)
	case *Vec:
		out := make([]Value, s.Len())
		for i := range out {
			out[i] = s.At(i)
		}
		return out, len(out)
	case *Range:
		out := make([]Value, s.Len())
		for i := range out {
			out[i] = s.Lo + int64(i)
		}
		return out, len(out)
	}
	return nil, -1
}

// broadcast applies a scalar operator elementwise. Operand lengths must
// match exactly — Julia broadcasts, it does not recycle like R.
func (in *Interp) broadcast(op string, l, r Value) (Value, error) {
	le, ln := elemsOf(l)
	re, rn := elemsOf(r)
	if ln < 0 && rn < 0 {
		return scalarBinop(op, l, r)
	}
	if ln >= 0 && rn >= 0 && ln != rn {
		return nil, fmt.Errorf("jlite: DimensionMismatch: vectors of length %d and %d", ln, rn)
	}
	n := ln
	if n < 0 {
		n = rn
	}
	out := &Arr{Elems: make([]Value, n)}
	for i := 0; i < n; i++ {
		a, b := l, r
		if ln >= 0 {
			a = le[i]
		}
		if rn >= 0 {
			b = re[i]
		}
		v, err := scalarBinop(op, a, b)
		if err != nil {
			return nil, err
		}
		out.Elems[i] = v
	}
	return out, nil
}

// vectorEqual implements == between vectors (elementwise all-equal, the
// useful subset of Julia's array ==).
func vectorEqual(l, r Value) (bool, error) {
	le, ln := elemsOf(l)
	re, rn := elemsOf(r)
	if ln < 0 || rn < 0 {
		return false, nil
	}
	if ln != rn {
		return false, nil
	}
	for i := range le {
		v, err := scalarBinop("==", le[i], re[i])
		if err != nil {
			return false, err
		}
		if v != true {
			return false, nil
		}
	}
	return true, nil
}

func toFloat(v Value) (float64, error) {
	switch x := v.(type) {
	case int64:
		return float64(x), nil
	case float64:
		return x, nil
	case bool:
		if x {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("jlite: expected a number, got %s", typeName(v))
}

// scalarBinop implements arithmetic and comparison on scalars: Int64
// arithmetic stays integral (except /, which is true division as in
// Julia), Float64 contaminates, strings concatenate with * and repeat
// with ^ (Julia's string algebra).
func scalarBinop(op string, l, r Value) (Value, error) {
	if ls, ok := l.(string); ok {
		switch op {
		case "*":
			if rs, ok := r.(string); ok {
				return ls + rs, nil
			}
		case "^":
			if n, ok := r.(int64); ok && n >= 0 {
				return strings.Repeat(ls, int(n)), nil
			}
		case "==", "!=", "<", "<=", ">", ">=":
			if rs, ok := r.(string); ok {
				return cmpResult(op, strings.Compare(ls, rs)), nil
			}
			if op == "==" {
				return false, nil
			}
			if op == "!=" {
				return true, nil
			}
		}
		return nil, fmt.Errorf("jlite: no method %s(String, %s)", op, typeName(r))
	}
	li, lIsInt := l.(int64)
	ri, rIsInt := r.(int64)
	if lb, ok := l.(bool); ok {
		li, lIsInt = boolToInt(lb), true
	}
	if rb, ok := r.(bool); ok {
		ri, rIsInt = boolToInt(rb), true
	}
	if lIsInt && rIsInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			// Julia true division: Int / Int is Float64.
			if ri == 0 {
				if li == 0 {
					return math.NaN(), nil
				}
				return math.Inf(int(sign(li))), nil
			}
			return float64(li) / float64(ri), nil
		case "%":
			if ri == 0 {
				return nil, fmt.Errorf("jlite: DivideError: integer division by zero")
			}
			return li % ri, nil // Julia rem: sign of the dividend
		case "^":
			if ri < 0 {
				return math.Pow(float64(li), float64(ri)), nil
			}
			// Exponentiation by squaring: same wrap-on-overflow semantics
			// as Julia's Int ^, but O(log n) — a huge computed exponent
			// must not spin the worker rank.
			base, out := li, int64(1)
			for e := ri; e > 0; e >>= 1 {
				if e&1 == 1 {
					out *= base
				}
				base *= base
			}
			return out, nil
		case "==", "!=", "<", "<=", ">", ">=":
			return cmpResult(op, cmpInt(li, ri)), nil
		}
		return nil, fmt.Errorf("jlite: unknown operator %q", op)
	}
	lf, errL := toFloat(l)
	rf, errR := toFloat(r)
	if errL != nil || errR != nil {
		return nil, fmt.Errorf("jlite: no method %s(%s, %s)", op, typeName(l), typeName(r))
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		return lf / rf, nil
	case "%":
		return math.Mod(lf, rf), nil
	case "^":
		return math.Pow(lf, rf), nil
	case "==", "!=", "<", "<=", ">", ">=":
		// IEEE/Julia NaN semantics: every ordered comparison with a NaN
		// is false (NaN == NaN included), and only != is true.
		if math.IsNaN(lf) || math.IsNaN(rf) {
			return op == "!=", nil
		}
		return cmpResult(op, cmpFloat(lf, rf)), nil
	}
	return nil, fmt.Errorf("jlite: unknown operator %q", op)
}

func sign(n int64) int64 {
	if n < 0 {
		return -1
	}
	return 1
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpResult(op string, c int) bool {
	switch op {
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	case "==":
		return c == 0
	case "!=":
		return c != 0
	}
	return false
}

// Str renders a value the way the Julia REPL's string() would.
func Str(v Value) string {
	switch x := v.(type) {
	case nil:
		return "nothing"
	case bool:
		if x {
			return "true"
		}
		return "false"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return renderFloat(x)
	case string:
		return x
	case *Arr:
		parts := make([]string, len(x.Elems))
		for i, it := range x.Elems {
			parts[i] = Str(it)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *Vec:
		parts := make([]string, x.Len())
		for i := range parts {
			parts[i] = Str(x.At(i))
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *Range:
		return fmt.Sprintf("%d:%d", x.Lo, x.Hi)
	case *Func:
		return "function " + x.name
	case Builtin:
		return "builtin function"
	}
	return fmt.Sprintf("%v", v)
}

// renderFloat formats a float the Julia way: integral values keep a
// trailing ".0" so Float64 never masquerades as Int64.
func renderFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eEnN") {
		s += ".0"
	}
	return s
}
