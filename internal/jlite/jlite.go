// Package jlite implements an embedded Julia-subset interpreter — the
// fourth numeric language on the interlanguage engine layer, standing in
// for embedding libjulia the way pylite and rlite stand in for CPython
// and libR (paper §III-C, §IV). The surface is the Julia-flavoured core
// used in numeric glue: Int64/Float64 scalars, 1-based indexed vectors,
// `function…end` definitions, `for…end`/`while…end` loops, and
// broadcast-style elementwise operators (`.+ .- .* ./ .^`) over vectors.
//
// Blob bulk data binds as Vec, a zero-copy mutable 1-based view over the
// packed bytes (see vec.go), mirroring pylite's SLIRP-style binding:
// element data never renders as text crossing the language boundary, and
// in-place writes enforce exact representability under the element kind.
// Parsing is compile-once through internal/memo, like every other
// embedded interpreter in this repo.
package jlite

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tInt
	tFloat
	tStr
	tName
	tOp
	tNewline
)

type token struct {
	kind tokKind
	text string
	line int
}

var jKeywords = map[string]bool{
	"function": true, "end": true, "for": true, "while": true, "if": true,
	"elseif": true, "else": true, "return": true, "break": true,
	"continue": true, "in": true, "true": true, "false": true,
	"nothing": true,
}

// lex tokenises Julia-like source. Newlines are statement separators
// except inside parentheses and brackets, where expressions continue.
func lex(src string) ([]token, error) {
	var toks []token
	i, n, line := 0, len(src), 1
	depth := 0 // () and [] nesting suppresses newline tokens
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			if depth == 0 {
				toks = append(toks, token{kind: tNewline, line: line})
			}
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '"':
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if src[i] == '\\' && i+1 < n {
					switch src[i+1] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case '\\':
						b.WriteByte('\\')
					case '"':
						b.WriteByte('"')
					default:
						b.WriteByte(src[i+1])
					}
					i += 2
					continue
				}
				if src[i] == '"' {
					closed = true
					i++
					break
				}
				if src[i] == '\n' {
					line++
				}
				b.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("jlite: line %d: unterminated string", line)
			}
			toks = append(toks, token{kind: tStr, text: b.String(), line: line})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			start := i
			isFloat := false
			for i < n && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			// A decimal point only when followed by a digit, so `1.+2`
			// lexes as 1 .+ 2 (the broadcast operator), not a float.
			if i+1 < n && src[i] == '.' && src[i+1] >= '0' && src[i+1] <= '9' {
				isFloat = true
				i++
				for i < n && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			if i < n && (src[i] == 'e' || src[i] == 'E') {
				isFloat = true
				i++
				if i < n && (src[i] == '+' || src[i] == '-') {
					i++
				}
				for i < n && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			kind := tInt
			if isFloat {
				kind = tFloat
			}
			toks = append(toks, token{kind: kind, text: src[start:i], line: line})
		case isJNameStart(c):
			start := i
			for i < n && isJNamePart(src[i]) {
				i++
			}
			// Trailing ! is part of mutating-function names (push!).
			if i < n && src[i] == '!' {
				i++
			}
			toks = append(toks, token{kind: tName, text: src[start:i], line: line})
		default:
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch {
			case c == '.' && i+1 < n && strings.IndexByte("+-*/^", src[i+1]) >= 0:
				toks = append(toks, token{kind: tOp, text: two, line: line})
				i += 2
			case two == "==" || two == "!=" || two == "<=" || two == ">=" ||
				two == "&&" || two == "||" ||
				two == "+=" || two == "-=" || two == "*=" || two == "/=":
				toks = append(toks, token{kind: tOp, text: two, line: line})
				i += 2
			default:
				switch c {
				case '(', '[':
					depth++
					toks = append(toks, token{kind: tOp, text: string(c), line: line})
					i++
				case ')', ']':
					depth--
					toks = append(toks, token{kind: tOp, text: string(c), line: line})
					i++
				case '+', '-', '*', '/', '^', '%', '<', '>', '!', '=', ',', ';', ':':
					toks = append(toks, token{kind: tOp, text: string(c), line: line})
					i++
				default:
					return nil, fmt.Errorf("jlite: line %d: unexpected character %q", line, c)
				}
			}
		}
	}
	toks = append(toks, token{kind: tEOF, line: line})
	return toks, nil
}

func isJNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isJNamePart(c byte) bool {
	return isJNameStart(c) || (c >= '0' && c <= '9')
}

// ---- AST ----

type jexpr interface{ jexprNode() }

type jInt struct{ v int64 }
type jFloat struct{ v float64 }
type jStrLit struct{ v string }
type jBool struct{ v bool }
type jNothing struct{}
type jName struct{ name string }
type jBin struct {
	op   string
	l, r jexpr
}
type jUn struct {
	op string
	x  jexpr
}
type jCall struct {
	fn   jexpr
	args []jexpr
}
type jIndex struct {
	obj jexpr
	idx jexpr
}
type jArrLit struct{ elems []jexpr }

func (*jInt) jexprNode()     {}
func (*jFloat) jexprNode()   {}
func (*jStrLit) jexprNode()  {}
func (*jBool) jexprNode()    {}
func (*jNothing) jexprNode() {}
func (*jName) jexprNode()    {}
func (*jBin) jexprNode()     {}
func (*jUn) jexprNode()      {}
func (*jCall) jexprNode()    {}
func (*jIndex) jexprNode()   {}
func (*jArrLit) jexprNode()  {}

type jstmt interface{ jstmtNode() }

type sExpr struct{ x jexpr }
type sAssign struct {
	target jexpr // *jName or *jIndex
	op     string
	value  jexpr
}
type sFunc struct {
	name   string
	params []string
	body   []jstmt
}
type sFor struct {
	v    string
	seq  jexpr
	body []jstmt
}
type sWhile struct {
	cond jexpr
	body []jstmt
}
type sIf struct {
	conds  []jexpr
	blocks [][]jstmt
	els    []jstmt
}
type sReturn struct{ x jexpr } // x nil means `return` (nothing)
type sBreak struct{}
type sContinue struct{}

func (*sExpr) jstmtNode()     {}
func (*sAssign) jstmtNode()   {}
func (*sFunc) jstmtNode()     {}
func (*sFor) jstmtNode()      {}
func (*sWhile) jstmtNode()    {}
func (*sIf) jstmtNode()       {}
func (*sReturn) jstmtNode()   {}
func (*sBreak) jstmtNode()    {}
func (*sContinue) jstmtNode() {}

// ---- parser ----

type jparser struct {
	toks []token
	pos  int
}

// parseProgram parses a whole fragment into a statement list.
func parseProgram(src string) ([]jstmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &jparser{toks: toks}
	prog, err := p.block(nil)
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tEOF {
		return nil, fmt.Errorf("jlite: line %d: unexpected %q", p.cur().line, p.cur().text)
	}
	return prog, nil
}

// parseExprString parses a single expression (the engine's Expr slot).
func parseExprString(src string) (jexpr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &jparser{toks: toks}
	p.skipSeps()
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.skipSeps()
	if p.cur().kind != tEOF {
		return nil, fmt.Errorf("jlite: line %d: unexpected %q after expression", p.cur().line, p.cur().text)
	}
	return x, nil
}

func (p *jparser) cur() token  { return p.toks[p.pos] }
func (p *jparser) peek() token { return p.toks[p.pos+1] }

func (p *jparser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *jparser) eat(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *jparser) expect(text string) error {
	if p.cur().text != text || (p.cur().kind != tOp && p.cur().kind != tName) {
		return fmt.Errorf("jlite: line %d: expected %q, found %q", p.cur().line, text, p.cur().text)
	}
	p.pos++
	return nil
}

func (p *jparser) skipSeps() {
	for p.at(tNewline, "") || p.at(tOp, ";") {
		p.pos++
	}
}

func (p *jparser) skipNewlines() {
	for p.at(tNewline, "") {
		p.pos++
	}
}

// atBlockEnd reports whether the current token terminates a block.
func (p *jparser) atBlockEnd(stops []string) bool {
	if p.cur().kind == tEOF {
		return true
	}
	if p.cur().kind != tName {
		return false
	}
	for _, s := range stops {
		if p.cur().text == s {
			return true
		}
	}
	return false
}

// block parses statements until EOF or one of the stop keywords (left
// unconsumed). A nil stops set parses to EOF (the program form).
func (p *jparser) block(stops []string) ([]jstmt, error) {
	var out []jstmt
	for {
		p.skipSeps()
		if p.atBlockEnd(stops) {
			return out, nil
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		// A statement ends at a separator or a block terminator.
		if !p.at(tNewline, "") && !p.at(tOp, ";") && !p.atBlockEnd(stops) {
			return nil, fmt.Errorf("jlite: line %d: unexpected %q after statement", p.cur().line, p.cur().text)
		}
	}
}

var blockStops = []string{"end"}

func (p *jparser) statement() (jstmt, error) {
	t := p.cur()
	if t.kind == tName {
		switch t.text {
		case "function":
			return p.funcStmt()
		case "for":
			return p.forStmt()
		case "while":
			return p.whileStmt()
		case "if":
			return p.ifStmt()
		case "return":
			p.pos++
			if p.at(tNewline, "") || p.at(tOp, ";") || p.atBlockEnd(blockStops) {
				return &sReturn{}, nil
			}
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &sReturn{x: x}, nil
		case "break":
			p.pos++
			return &sBreak{}, nil
		case "continue":
			p.pos++
			return &sContinue{}, nil
		case "end", "elseif", "else":
			return nil, fmt.Errorf("jlite: line %d: %q without a matching block", t.line, t.text)
		}
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tOp {
		switch op := p.cur().text; op {
		case "=", "+=", "-=", "*=", "/=":
			switch x.(type) {
			case *jName, *jIndex:
			default:
				return nil, fmt.Errorf("jlite: line %d: invalid assignment target", p.cur().line)
			}
			p.pos++
			p.skipNewlines()
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &sAssign{target: x, op: op, value: v}, nil
		}
	}
	return &sExpr{x: x}, nil
}

func (p *jparser) funcStmt() (jstmt, error) {
	p.pos++ // function
	if p.cur().kind != tName || jKeywords[p.cur().text] {
		return nil, fmt.Errorf("jlite: line %d: expected function name", p.cur().line)
	}
	f := &sFunc{name: p.cur().text}
	p.pos++
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for !p.at(tOp, ")") {
		if p.cur().kind != tName || jKeywords[p.cur().text] {
			return nil, fmt.Errorf("jlite: line %d: expected parameter name", p.cur().line)
		}
		f.params = append(f.params, p.cur().text)
		p.pos++
		if !p.eat(tOp, ",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.block(blockStops)
	if err != nil {
		return nil, err
	}
	f.body = body
	if err := p.expect("end"); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *jparser) forStmt() (jstmt, error) {
	p.pos++ // for
	if p.cur().kind != tName || jKeywords[p.cur().text] {
		return nil, fmt.Errorf("jlite: line %d: expected loop variable", p.cur().line)
	}
	v := p.cur().text
	p.pos++
	if !p.eat(tName, "in") && !p.eat(tOp, "=") {
		return nil, fmt.Errorf("jlite: line %d: expected 'in'", p.cur().line)
	}
	seq, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block(blockStops)
	if err != nil {
		return nil, err
	}
	if err := p.expect("end"); err != nil {
		return nil, err
	}
	return &sFor{v: v, seq: seq, body: body}, nil
}

func (p *jparser) whileStmt() (jstmt, error) {
	p.pos++ // while
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block(blockStops)
	if err != nil {
		return nil, err
	}
	if err := p.expect("end"); err != nil {
		return nil, err
	}
	return &sWhile{cond: cond, body: body}, nil
}

var ifStops = []string{"end", "elseif", "else"}

func (p *jparser) ifStmt() (jstmt, error) {
	p.pos++ // if / elseif
	node := &sIf{}
	for {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		blk, err := p.block(ifStops)
		if err != nil {
			return nil, err
		}
		node.conds = append(node.conds, cond)
		node.blocks = append(node.blocks, blk)
		if p.eat(tName, "elseif") {
			continue
		}
		break
	}
	if p.eat(tName, "else") {
		blk, err := p.block(blockStops)
		if err != nil {
			return nil, err
		}
		node.els = blk
	}
	if err := p.expect("end"); err != nil {
		return nil, err
	}
	return node, nil
}

// ---- expression grammar, loosest binding first ----

func (p *jparser) expr() (jexpr, error) { return p.orExpr() }

func (p *jparser) binLevel(ops []string, next func() (jexpr, error)) (jexpr, error) {
	l, err := next()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.at(tOp, op) {
				p.pos++
				p.skipNewlines()
				r, err := next()
				if err != nil {
					return nil, err
				}
				l = &jBin{op: op, l: l, r: r}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (p *jparser) orExpr() (jexpr, error) {
	return p.binLevel([]string{"||"}, p.andExpr)
}

func (p *jparser) andExpr() (jexpr, error) {
	return p.binLevel([]string{"&&"}, p.cmpExpr)
}

func (p *jparser) cmpExpr() (jexpr, error) {
	return p.binLevel([]string{"==", "!=", "<=", ">=", "<", ">"}, p.rangeExpr)
}

// rangeExpr parses a:b (step-1 inclusive range), binding looser than
// arithmetic so `1:n-1` means 1:(n-1), as in Julia.
func (p *jparser) rangeExpr() (jexpr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.at(tOp, ":") {
		p.pos++
		p.skipNewlines()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &jBin{op: ":", l: l, r: r}, nil
	}
	return l, nil
}

func (p *jparser) addExpr() (jexpr, error) {
	return p.binLevel([]string{"+", "-", ".+", ".-"}, p.mulExpr)
}

func (p *jparser) mulExpr() (jexpr, error) {
	return p.binLevel([]string{"*", "/", "%", ".*", "./"}, p.unaryExpr)
}

func (p *jparser) unaryExpr() (jexpr, error) {
	if p.at(tOp, "-") {
		p.pos++
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &jUn{op: "-", x: x}, nil
	}
	if p.at(tOp, "+") {
		p.pos++
		return p.unaryExpr()
	}
	if p.at(tOp, "!") {
		p.pos++
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &jUn{op: "!", x: x}, nil
	}
	return p.powExpr()
}

func (p *jparser) powExpr() (jexpr, error) {
	l, err := p.postfix()
	if err != nil {
		return nil, err
	}
	if p.at(tOp, "^") || p.at(tOp, ".^") {
		op := p.cur().text
		p.pos++
		r, err := p.unaryExpr() // right-associative
		if err != nil {
			return nil, err
		}
		return &jBin{op: op, l: l, r: r}, nil
	}
	return l, nil
}

func (p *jparser) postfix() (jexpr, error) {
	x, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tOp, "("):
			p.pos++
			call := &jCall{fn: x}
			p.skipNewlines()
			for !p.at(tOp, ")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.args = append(call.args, a)
				p.skipNewlines()
				if !p.eat(tOp, ",") {
					break
				}
				p.skipNewlines()
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			x = call
		case p.at(tOp, "["):
			p.pos++
			p.skipNewlines()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			p.skipNewlines()
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &jIndex{obj: x, idx: idx}
		default:
			return x, nil
		}
	}
}

func (p *jparser) atom() (jexpr, error) {
	t := p.cur()
	switch {
	case t.kind == tInt:
		p.pos++
		var v int64
		if _, err := fmt.Sscanf(t.text, "%d", &v); err != nil {
			return nil, fmt.Errorf("jlite: line %d: bad integer %q", t.line, t.text)
		}
		return &jInt{v: v}, nil
	case t.kind == tFloat:
		p.pos++
		var v float64
		if _, err := fmt.Sscanf(t.text, "%g", &v); err != nil {
			return nil, fmt.Errorf("jlite: line %d: bad number %q", t.line, t.text)
		}
		return &jFloat{v: v}, nil
	case t.kind == tStr:
		p.pos++
		return &jStrLit{v: t.text}, nil
	case t.kind == tName:
		switch t.text {
		case "true":
			p.pos++
			return &jBool{v: true}, nil
		case "false":
			p.pos++
			return &jBool{v: false}, nil
		case "nothing":
			p.pos++
			return &jNothing{}, nil
		case "function", "for", "while", "if", "return", "break", "continue",
			"end", "elseif", "else", "in":
			return nil, fmt.Errorf("jlite: line %d: unexpected keyword %q in expression", t.line, t.text)
		}
		p.pos++
		return &jName{name: t.text}, nil
	case t.kind == tOp && t.text == "(":
		p.pos++
		p.skipNewlines()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.skipNewlines()
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return x, nil
	case t.kind == tOp && t.text == "[":
		p.pos++
		lit := &jArrLit{}
		p.skipNewlines()
		for !p.at(tOp, "]") {
			el, err := p.expr()
			if err != nil {
				return nil, err
			}
			lit.elems = append(lit.elems, el)
			p.skipNewlines()
			if !p.eat(tOp, ",") {
				break
			}
			p.skipNewlines()
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		return lit, nil
	}
	return nil, fmt.Errorf("jlite: line %d: unexpected token %q", t.line, t.text)
}
