package jlite

import (
	"strings"
	"testing"
	"time"
)

// evalStr runs a fragment and returns the rendered expression result.
func evalStr(t *testing.T, in *Interp, code, expr string) string {
	t.Helper()
	out, err := in.EvalFragment(code, expr)
	if err != nil {
		t.Fatalf("EvalFragment(%q, %q): %v", code, expr, err)
	}
	return out
}

func TestScalarArithmetic(t *testing.T) {
	in := New()
	cases := []struct{ expr, want string }{
		{"1 + 2", "3"},
		{"2 * 3 + 4", "10"},
		{"2 + 3 * 4", "14"},
		{"(2 + 3) * 4", "20"},
		{"7 / 2", "3.5"}, // Julia true division
		{"div(7, 2)", "3"},
		{"7 % 3", "1"},
		{"-7 % 3", "-1"}, // rem keeps the dividend's sign
		{"2 ^ 10", "1024"},
		{"2 ^ -1", "0.5"},
		{"2.5 * 2", "5.0"}, // Float64 contaminates and renders with .0
		{"1.5e2", "150.0"},
		{"-3 + 1", "-2"},
		{"abs(-4)", "4"},
		{"min(3, 1, 2)", "1"},
		{"max(3, 1, 2)", "3"},
		{"Float64(3)", "3.0"},
		{"Int(3.0)", "3"},
		{"sqrt(16)", "4.0"},
		{"true && false", "false"},
		{"true || false", "true"},
		{"!(1 > 2)", "true"},
		{"1 < 2", "true"},
		{"3 == 3.0", "true"},
		{"nothing", "nothing"},
		{`"ab" * "cd"`, "abcd"}, // Julia string concatenation
		{`"ab" ^ 3`, "ababab"},
		{`string("n=", 4)`, "n=4"},
		{"typeof(1)", "Int64"},
		{"typeof(1.0)", "Float64"},
	}
	for _, tc := range cases {
		if got := evalStr(t, in, "", tc.expr); got != tc.want {
			t.Fatalf("%s = %q, want %q", tc.expr, got, tc.want)
		}
	}
}

func TestIntDivisionNeverTruncates(t *testing.T) {
	in := New()
	if got := evalStr(t, in, "", "1 / 4"); got != "0.25" {
		t.Fatalf("1/4 = %q", got)
	}
	if _, err := New().EvalExpr("Int(2.5)"); err == nil || !strings.Contains(err.Error(), "InexactError") {
		t.Fatalf("Int(2.5) err = %v", err)
	}
}

func TestFunctionEnd(t *testing.T) {
	in := New()
	const code = `
function sq(x)
    x * x
end
function fact(n)
    if n <= 1
        return 1
    end
    n * fact(n - 1)
end`
	if got := evalStr(t, in, code, "sq(7)"); got != "49" {
		t.Fatalf("sq(7) = %q", got)
	}
	// Implicit last-expression return plus explicit return both work.
	if got := evalStr(t, in, "", "fact(6)"); got != "720" {
		t.Fatalf("fact(6) = %q", got)
	}
	if _, err := in.EvalExpr("sq(1, 2)"); err == nil || !strings.Contains(err.Error(), "MethodError") {
		t.Fatalf("arity err = %v", err)
	}
}

func TestForEndOverRange(t *testing.T) {
	in := New()
	const code = `
s = 0
for k in 1:10
    s = s + k * k
end`
	if got := evalStr(t, in, code, "s"); got != "385" {
		t.Fatalf("s = %q", got)
	}
	// `for k = 1:n` is the other Julia spelling.
	if got := evalStr(t, in, "t = 0\nfor k = 1:4\n  t += k\nend", "t"); got != "10" {
		t.Fatalf("t = %q", got)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	in := New()
	const code = `
s = 0
i = 0
while true
    i += 1
    if i > 10
        break
    end
    if i % 2 == 1
        continue
    end
    s += i
end`
	if got := evalStr(t, in, code, "s"); got != "30" {
		t.Fatalf("s = %q", got)
	}
}

func TestIfElseifElse(t *testing.T) {
	in := New()
	const code = `
function grade(x)
    if x >= 90
        "A"
    elseif x >= 80
        "B"
    elseif x >= 70
        "C"
    else
        "F"
    end
end`
	if err := in.Exec(code); err != nil {
		t.Fatal(err)
	}
	for expr, want := range map[string]string{
		`grade(95)`: "A", `grade(85)`: "B", `grade(75)`: "C", `grade(5)`: "F",
	} {
		if got := evalStr(t, in, "", expr); got != want {
			t.Fatalf("%s = %q, want %q", expr, got, want)
		}
	}
}

func TestOneBasedIndexing(t *testing.T) {
	in := New()
	if err := in.Exec("v = [10, 20, 30]"); err != nil {
		t.Fatal(err)
	}
	if got := evalStr(t, in, "", "v[1]"); got != "10" {
		t.Fatalf("v[1] = %q", got)
	}
	if got := evalStr(t, in, "", "v[3]"); got != "30" {
		t.Fatalf("v[3] = %q", got)
	}
	if got := evalStr(t, in, "v[2] = 21", "v[2]"); got != "21" {
		t.Fatalf("v[2] = %q", got)
	}
	// Index 0 (and n+1) are out of bounds: indexing is 1-based.
	for _, expr := range []string{"v[0]", "v[4]"} {
		if _, err := in.EvalExpr(expr); err == nil || !strings.Contains(err.Error(), "BoundsError") {
			t.Fatalf("%s err = %v, want BoundsError", expr, err)
		}
	}
	// Ranges index 1-based too.
	if got := evalStr(t, in, "r = 5:9", "r[2]"); got != "6" {
		t.Fatalf("r[2] = %q", got)
	}
}

func TestBroadcastOps(t *testing.T) {
	in := New()
	cases := []struct{ code, expr, want string }{
		{"a = [1, 2, 3]", "a .* 2", "[2, 4, 6]"},
		{"", "a .+ 10", "[11, 12, 13]"},
		{"", "a ./ 2", "[0.5, 1.0, 1.5]"},
		{"", "a .^ 2", "[1, 4, 9]"},
		{"b = [1.0, 2.0, 3.0]", "a .+ b", "[2.0, 4.0, 6.0]"},
		{"", "a .* b .+ 1", "[2.0, 5.0, 10.0]"},
		// Plain vector algebra: +/- elementwise, scalar * and /.
		{"", "a + a", "[2, 4, 6]"},
		{"", "a - a", "[0, 0, 0]"},
		{"", "2 * a", "[2, 4, 6]"},
		{"", "b / 2", "[0.5, 1.0, 1.5]"},
		{"", "-a", "[-1, -2, -3]"},
		// Broadcast over a range.
		{"", "(1:4) .* 2", "[2, 4, 6, 8]"},
		{"", "sum(a .* a)", "14"},
	}
	for _, tc := range cases {
		if got := evalStr(t, in, tc.code, tc.expr); got != tc.want {
			t.Fatalf("%s = %q, want %q", tc.expr, got, tc.want)
		}
	}
}

func TestBroadcastLengthMismatch(t *testing.T) {
	in := New()
	_, err := in.EvalExpr("[1, 2] .+ [1, 2, 3]")
	if err == nil || !strings.Contains(err.Error(), "DimensionMismatch") {
		t.Fatalf("err = %v, want DimensionMismatch", err)
	}
	// Plain scalar+vector needs the dot form, as in Julia.
	if _, err := in.EvalExpr("1 + [1, 2]"); err == nil || !strings.Contains(err.Error(), ".+") {
		t.Fatalf("err = %v, want hint at .+", err)
	}
}

func TestRangesAndCollect(t *testing.T) {
	in := New()
	if got := evalStr(t, in, "", "sum(1:100)"); got != "5050" {
		t.Fatalf("sum(1:100) = %q", got)
	}
	if got := evalStr(t, in, "", "length(3:7)"); got != "5" {
		t.Fatalf("length = %q", got)
	}
	if got := evalStr(t, in, "", "collect(1:4)"); got != "[1, 2, 3, 4]" {
		t.Fatalf("collect = %q", got)
	}
	if got := evalStr(t, in, "", "length(5:1)"); got != "0" {
		t.Fatalf("empty range length = %q", got)
	}
	// 1:n-1 parses as 1:(n-1), Julia's precedence.
	if got := evalStr(t, in, "n = 5", "sum(1:n-1)"); got != "10" {
		t.Fatalf("sum(1:n-1) = %q", got)
	}
}

func TestZerosOnesPush(t *testing.T) {
	in := New()
	if got := evalStr(t, in, "z = zeros(3)", "z"); got != "[0.0, 0.0, 0.0]" {
		t.Fatalf("zeros = %q", got)
	}
	if got := evalStr(t, in, "", "sum(ones(4))"); got != "4.0" {
		t.Fatalf("ones sum = %q", got)
	}
	if got := evalStr(t, in, "a = [1]\npush!(a, 2)\npush!(a, 3)", "a"); got != "[1, 2, 3]" {
		t.Fatalf("push! = %q", got)
	}
}

func TestPrintlnOutput(t *testing.T) {
	in := New()
	var buf strings.Builder
	in.Out = &buf
	if err := in.Exec(`println("total = ", 1 + 2)`); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "total = 3\n" {
		t.Fatalf("out = %q", buf.String())
	}
}

func TestFunctionScoping(t *testing.T) {
	in := New()
	// Assignment inside a function to an outer name updates the outer
	// binding; parameters shadow.
	const code = `
g = 1
function bump(x)
    g = g + x
    g
end
bump(10)`
	if got := evalStr(t, in, code, "g"); got != "11" {
		t.Fatalf("g = %q", got)
	}
	if _, err := in.EvalExpr("x"); err == nil {
		t.Fatal("parameter leaked out of the function scope")
	}
}

func TestUndefinedVariableError(t *testing.T) {
	in := New()
	_, err := in.EvalExpr("no_such_thing")
	if err == nil || !strings.Contains(err.Error(), "UndefVarError") {
		t.Fatalf("err = %v, want UndefVarError", err)
	}
}

func TestParseErrors(t *testing.T) {
	in := New()
	for _, src := range []string{
		"function (",       // missing name
		"for x\nend",       // missing in
		"if true\n",        // unterminated block
		"1 +",              // dangling operator
		"end",              // stray end
		`"unterminated`,    // bad string
		"a = [1, 2\n; 3]]", // mismatched brackets
	} {
		if err := in.Exec(src); err == nil {
			t.Fatalf("Exec(%q) accepted bad syntax", src)
		}
	}
}

func TestConditionMustBeBool(t *testing.T) {
	// Julia rejects non-boolean conditions rather than truthiness-testing.
	in := New()
	err := in.Exec("if 1\nend")
	if err == nil || !strings.Contains(err.Error(), "non-boolean") {
		t.Fatalf("err = %v, want non-boolean TypeError", err)
	}
}

func TestNaNComparisonsFollowIEEE(t *testing.T) {
	// Julia/IEEE semantics: every ordered comparison with NaN is false
	// (including NaN == NaN); only != is true. 0/0 is the natural NaN.
	in := New()
	cases := []struct{ expr, want string }{
		{"0 / 0 == 0 / 0", "false"},
		{"0.0 / 0.0 == 0.0 / 0.0", "false"},
		{"1.0 <= 0 / 0", "false"},
		{"1.0 >= 0 / 0", "false"},
		{"0 / 0 < 1.0", "false"},
		{"0 / 0 != 1.0", "true"},
		{"0 / 0 != 0 / 0", "true"},
	}
	for _, tc := range cases {
		if got := evalStr(t, in, "", tc.expr); got != tc.want {
			t.Fatalf("%s = %q, want %q", tc.expr, got, tc.want)
		}
	}
}

func TestIntPowIsFastForHugeExponents(t *testing.T) {
	// Exponentiation by squaring: a huge computed exponent terminates
	// (wrapping like Julia's Int ^) instead of spinning the rank.
	in := New()
	done := make(chan string, 1)
	go func() {
		out, err := in.EvalFragment("", "3 ^ 9223372036854775807")
		if err != nil {
			out = err.Error()
		}
		done <- out
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("3 ^ (2^63-1) did not terminate")
	}
	// Squaring agrees with the multiply loop on ordinary exponents.
	if got := evalStr(t, in, "", "3 ^ 13"); got != "1594323" {
		t.Fatalf("3^13 = %q", got)
	}
	if got := evalStr(t, in, "", "(-2) ^ 3"); got != "-8" {
		t.Fatalf("(-2)^3 = %q", got)
	}
	if got := evalStr(t, in, "", "7 ^ 0"); got != "1" {
		t.Fatalf("7^0 = %q", got)
	}
}

func TestDotLexingDoesNotEatFloats(t *testing.T) {
	in := New()
	// `2. +` must not lex as the float "2."; floats need a digit after
	// the dot, so `x .+ y` and `2.5 + 1` coexist.
	if got := evalStr(t, in, "", "2.5 + 1"); got != "3.5" {
		t.Fatalf("2.5+1 = %q", got)
	}
	if got := evalStr(t, in, "v = [1, 2]", "v .+ 1"); got != "[2, 3]" {
		t.Fatalf("v .+ 1 = %q", got)
	}
}
