package jlite

// Vec is the zero-copy binding of blob bulk data into the interpreter,
// jlite's counterpart of pylite's SLIRP-style view: a typed packed
// numeric vector whose elements decode on access from the backing bytes.
// A blob argument enters Julia-like code as a Vec indexed 1-based —
// length(), v[i], iteration, v[i] = x — and when a fragment returns the
// Vec (or a mutated view of it), the backing bytes, the Fortran dims,
// and the element kind travel back out bit-exact, without the elements
// ever being rendered as text. Writes enforce the same exact-
// representability guards as pylite's Vec: integer writes into integer
// element kinds stay on an integer path (an int64 beyond 2^53 stores
// exactly), and narrowing that would lose bits is an error, not a
// silent truncation.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/blob"
)

// Vec wraps a blob as a mutable typed vector value.
type Vec struct {
	B blob.Blob
}

// NewVec validates that the payload is a whole number of elements.
func NewVec(b blob.Blob) (*Vec, error) {
	if sz := b.Elem.Size(); len(b.Data)%sz != 0 {
		return nil, fmt.Errorf("jlite: %d bytes is not a whole number of %s elements", len(b.Data), b.Elem)
	}
	return &Vec{B: b}, nil
}

// Len returns the element count.
func (v *Vec) Len() int { return v.B.Count() }

// At decodes element i (0-based; the language layer converts from
// 1-based indices): float64 for float element kinds, int64 for integer
// kinds and raw bytes.
func (v *Vec) At(i int) Value {
	switch v.B.Elem {
	case blob.ElemF64:
		return math.Float64frombits(binary.LittleEndian.Uint64(v.B.Data[8*i:]))
	case blob.ElemF32:
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(v.B.Data[4*i:])))
	case blob.ElemI32:
		return int64(int32(binary.LittleEndian.Uint32(v.B.Data[4*i:])))
	case blob.ElemI64:
		return int64(binary.LittleEndian.Uint64(v.B.Data[8*i:]))
	}
	return int64(v.B.Data[i])
}

// SetAt writes element i in place (0-based), enforcing exact
// representability under the vector's element kind. Integer inputs into
// integer element kinds stay on an integer path: routing an int64
// through float64 would silently round magnitudes beyond 2^53 — the
// same guard pylite's Vec and the rlite decoder apply on their sides of
// the boundary.
func (v *Vec) SetAt(i int, x Value) error {
	if b, ok := x.(bool); ok {
		x = boolToInt(b)
	}
	if n, ok := x.(int64); ok {
		switch v.B.Elem {
		case blob.ElemI64:
			binary.LittleEndian.PutUint64(v.B.Data[8*i:], uint64(n))
			return nil
		case blob.ElemI32:
			m := int32(n)
			if int64(m) != n {
				return fmt.Errorf("jlite: %d is not representable as int32", n)
			}
			binary.LittleEndian.PutUint32(v.B.Data[4*i:], uint32(m))
			return nil
		case blob.ElemBytes:
			if n < 0 || n > 255 {
				return fmt.Errorf("jlite: %d is not representable as a byte", n)
			}
			v.B.Data[i] = byte(n)
			return nil
		}
		// Float element kinds: the integer must be exactly representable
		// in float64 before the float path may narrow it further. 2^63
		// is the one round-trip boundary int64(f) cannot probe safely.
		const twoTo63 = float64(9223372036854775808)
		f := float64(n)
		if f == twoTo63 || int64(f) != n {
			return fmt.Errorf("jlite: %d is not representable as %s", n, v.B.Elem)
		}
		return v.setFloat(i, f)
	}
	f, err := toFloat(x)
	if err != nil {
		return err
	}
	return v.setFloat(i, f)
}

func (v *Vec) setFloat(i int, f float64) error {
	switch v.B.Elem {
	case blob.ElemF64:
		binary.LittleEndian.PutUint64(v.B.Data[8*i:], math.Float64bits(f))
		return nil
	case blob.ElemF32:
		n := float32(f)
		if float64(n) != f {
			return fmt.Errorf("jlite: %v is not representable as float32", f)
		}
		binary.LittleEndian.PutUint32(v.B.Data[4*i:], math.Float32bits(n))
		return nil
	case blob.ElemI32:
		n := int32(f)
		if float64(n) != f {
			return fmt.Errorf("jlite: %v is not representable as int32", f)
		}
		binary.LittleEndian.PutUint32(v.B.Data[4*i:], uint32(n))
		return nil
	case blob.ElemI64:
		n := int64(f)
		if float64(n) != f {
			return fmt.Errorf("jlite: %v is not representable as int64", f)
		}
		binary.LittleEndian.PutUint64(v.B.Data[8*i:], uint64(n))
		return nil
	}
	n := byte(f)
	if float64(n) != f {
		return fmt.Errorf("jlite: %v is not representable as a byte", f)
	}
	v.B.Data[i] = n
	return nil
}

// Sum adds all elements without boxing: int64 for integer element
// kinds, float64 for float kinds.
func (v *Vec) Sum() Value {
	n := v.Len()
	switch v.B.Elem {
	case blob.ElemF64:
		s := 0.0
		for i := 0; i < n; i++ {
			s += math.Float64frombits(binary.LittleEndian.Uint64(v.B.Data[8*i:]))
		}
		return s
	case blob.ElemF32:
		s := 0.0
		for i := 0; i < n; i++ {
			s += float64(math.Float32frombits(binary.LittleEndian.Uint32(v.B.Data[4*i:])))
		}
		return s
	case blob.ElemI32:
		var s int64
		for i := 0; i < n; i++ {
			s += int64(int32(binary.LittleEndian.Uint32(v.B.Data[4*i:])))
		}
		return s
	case blob.ElemI64:
		var s int64
		for i := 0; i < n; i++ {
			s += int64(binary.LittleEndian.Uint64(v.B.Data[8*i:]))
		}
		return s
	}
	var s int64
	for _, c := range v.B.Data {
		s += int64(c)
	}
	return s
}

// PackValues packs a fresh numeric vector into a blob: all-integer
// vectors become an int64 vector — on an exact integer path, so values
// beyond 2^53 survive — and anything with a float becomes a float64
// vector. This is how an array born inside the interpreter (a literal,
// zeros(n), a broadcast result) leaves as bulk data when no argument
// prototype constrains the element kind.
func PackValues(items []Value) (blob.Blob, error) {
	allInt := true
	xs := make([]float64, len(items))
	ns := make([]int64, len(items))
	for i, it := range items {
		switch n := it.(type) {
		case int64:
			ns[i] = n
			xs[i] = float64(n)
		case bool:
			if n {
				ns[i], xs[i] = 1, 1
			}
		case float64:
			allInt = false
			xs[i] = n
		default:
			return blob.Blob{}, fmt.Errorf("jlite: cannot pack non-numeric %s into a blob", typeName(it))
		}
	}
	if allInt {
		return blob.FromInt64s(ns), nil
	}
	return blob.FromFloat64s(xs), nil
}

// FloatsExact converts fresh-vector elements to float64 for
// blob.PackLike repacking, rejecting int64 values a float64 cannot hold
// exactly (the prototype path narrows through float64, and a rounded
// value would repack "bit-exact" to the wrong integer — the same guard
// rlite applies when decoding int64 blobs).
func FloatsExact(items []Value) ([]float64, error) {
	out := make([]float64, len(items))
	for i, it := range items {
		if n, ok := it.(int64); ok {
			const twoTo63 = float64(9223372036854775808)
			f := float64(n)
			if f == twoTo63 || int64(f) != n {
				return nil, fmt.Errorf("jlite: int64 value %d is not exactly representable as a float64", n)
			}
			out[i] = f
			continue
		}
		f, err := toFloat(it)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}
