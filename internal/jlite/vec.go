package jlite

// Vec is the zero-copy binding of blob bulk data into the interpreter,
// jlite's counterpart of pylite's SLIRP-style view and the same
// implementation (internal/vecview): a typed packed numeric vector
// whose elements decode on access from the backing bytes. A blob
// argument enters Julia-like code as a Vec indexed 1-based — length(),
// v[i], iteration, v[i] = x — and when a fragment returns the Vec (or a
// mutated view of it), the backing bytes, the Fortran dims, and the
// element kind travel back out bit-exact, without the elements ever
// being rendered as text. Writes enforce exact-representability guards:
// integer writes into integer element kinds stay on an integer path (an
// int64 beyond 2^53 stores exactly), and narrowing that would lose bits
// is an error, not a silent truncation.

import (
	"repro/internal/blob"
	"repro/internal/vecview"
)

// Vec wraps a blob as a mutable typed vector value.
type Vec = vecview.Vec

// vecProfile keeps vecview's error text in this package's voice: the
// "jlite:" prefix and Julia type names, which vec_test pins.
var vecProfile = &vecview.Profile{
	Prefix:   "jlite",
	ToFloat:  func(x any) (float64, error) { return toFloat(x) },
	TypeName: func(x any) string { return typeName(x) },
}

// NewVec validates that the payload is a whole number of elements.
func NewVec(b blob.Blob) (*Vec, error) { return vecview.New(vecProfile, b) }

// PackValues packs a fresh numeric vector into a blob: all-integer
// vectors become an int64 vector — on an exact integer path, so values
// beyond 2^53 survive — and anything with a float becomes a float64
// vector. This is how an array born inside the interpreter (a literal,
// zeros(n), a broadcast result) leaves as bulk data when no argument
// prototype constrains the element kind.
func PackValues(items []Value) (blob.Blob, error) {
	return vecview.PackValues(vecProfile, items)
}

// FloatsExact converts fresh-vector elements to float64 for
// blob.PackLike repacking, rejecting int64 values a float64 cannot hold
// exactly.
func FloatsExact(items []Value) ([]float64, error) {
	return vecview.FloatsExact(vecProfile, items)
}
