package jlite

import (
	"strings"
	"testing"

	"repro/internal/blob"
)

func TestVecZeroCopyMutation(t *testing.T) {
	b := blob.FromInt32s([]int32{10, 20, 30})
	v, err := NewVec(b)
	if err != nil {
		t.Fatal(err)
	}
	in := New()
	in.SetGlobal("v", v)
	if err := in.Exec("v[2] = 21"); err != nil {
		t.Fatal(err)
	}
	// The write went through to the original backing bytes (zero-copy).
	got, err := blob.ToInt32s(blob.Blob{Data: b.Data})
	if err != nil || got[1] != 21 {
		t.Fatalf("backing bytes = %v, %v", got, err)
	}
	if v.B.Elem != blob.ElemI32 {
		t.Fatalf("elem changed: %v", v.B.Elem)
	}
}

func TestVecRejectsRaggedPayload(t *testing.T) {
	_, err := NewVec(blob.Blob{Data: []byte{1, 2, 3}, Elem: blob.ElemF64})
	if err == nil || !strings.Contains(err.Error(), "whole number") {
		t.Fatalf("err = %v", err)
	}
}

func TestVecIntWritesStayExactBeyond2to53(t *testing.T) {
	// An int64 write of 2^53+1 into an int64 vector must store exactly:
	// the write may not round-trip through float64. Same guard as pylite.
	const big = int64(1)<<53 + 1
	v, _ := NewVec(blob.FromInt64s([]int64{0}))
	if err := v.SetAt(0, big); err != nil {
		t.Fatal(err)
	}
	if got := v.At(0).(int64); got != big {
		t.Fatalf("stored %d, want %d", got, big)
	}
	// The same integer into a float64 vector is inexact: error, not
	// silent rounding.
	f, _ := NewVec(blob.FromFloat64s([]float64{0}))
	if err := f.SetAt(0, big); err == nil || !strings.Contains(err.Error(), "not representable") {
		t.Fatalf("err = %v", err)
	}
	// Exactly representable magnitudes still pass the float path.
	if err := f.SetAt(0, int64(1)<<53); err != nil {
		t.Fatal(err)
	}
}

func TestVecNarrowingGuards(t *testing.T) {
	f32, _ := NewVec(blob.FromFloat32s([]float32{0}))
	if err := f32.SetAt(0, 0.1); err == nil || !strings.Contains(err.Error(), "float32") {
		t.Fatalf("f32 err = %v", err)
	}
	if err := f32.SetAt(0, 0.25); err != nil { // exactly representable
		t.Fatal(err)
	}
	i32, _ := NewVec(blob.FromInt32s([]int32{0}))
	if err := i32.SetAt(0, int64(1)<<40); err == nil || !strings.Contains(err.Error(), "int32") {
		t.Fatalf("i32 err = %v", err)
	}
	if err := i32.SetAt(0, 2.5); err == nil {
		t.Fatal("fractional write into int32 accepted")
	}
	by, _ := NewVec(blob.New([]byte{0}))
	if err := by.SetAt(0, int64(256)); err == nil || !strings.Contains(err.Error(), "byte") {
		t.Fatalf("byte err = %v", err)
	}
}

func TestVecLanguageLevelInexactWriteErrors(t *testing.T) {
	// The guard surfaces through ordinary indexed assignment in code.
	v, _ := NewVec(blob.FromInt32s([]int32{1, 2}))
	in := New()
	in.SetGlobal("v", v)
	err := in.Exec("v[1] = 0.5")
	if err == nil || !strings.Contains(err.Error(), "not representable") {
		t.Fatalf("err = %v", err)
	}
}

func TestVecSumFastPaths(t *testing.T) {
	iv, _ := NewVec(blob.FromInt64s([]int64{1, 2, 3}))
	if s := iv.Sum().(int64); s != 6 {
		t.Fatalf("int sum = %d", s)
	}
	fv, _ := NewVec(blob.FromFloat32s([]float32{1.5, 2.5}))
	if s := fv.Sum().(float64); s != 4.0 {
		t.Fatalf("float sum = %v", s)
	}
	bv, _ := NewVec(blob.New([]byte{1, 2, 250}))
	if s := bv.Sum().(int64); s != 253 {
		t.Fatalf("byte sum = %d", s)
	}
}

func TestPackValuesExactIntegers(t *testing.T) {
	const big = int64(1)<<53 + 1
	b, err := PackValues([]Value{int64(1), big})
	if err != nil {
		t.Fatal(err)
	}
	if b.Elem != blob.ElemI64 {
		t.Fatalf("elem = %v, want int64", b.Elem)
	}
	ns, _ := blob.ToInt64s(blob.Blob{Data: b.Data})
	if ns[1] != big {
		t.Fatalf("big int rounded: %d", ns[1])
	}
	// A float anywhere switches the whole vector to float64.
	b, err = PackValues([]Value{int64(1), 2.5})
	if err != nil || b.Elem != blob.ElemF64 {
		t.Fatalf("mixed pack = %+v, %v", b, err)
	}
	if _, err := PackValues([]Value{"x"}); err == nil {
		t.Fatal("non-numeric packed")
	}
}

func TestFloatsExactRejectsHugeInt64(t *testing.T) {
	_, err := FloatsExact([]Value{int64(1)<<53 + 1})
	if err == nil || !strings.Contains(err.Error(), "not exactly representable") {
		t.Fatalf("err = %v", err)
	}
	xs, err := FloatsExact([]Value{int64(1) << 53, 2.5, true})
	if err != nil || xs[0] != float64(int64(1)<<53) || xs[1] != 2.5 || xs[2] != 1 {
		t.Fatalf("xs = %v, %v", xs, err)
	}
}
