package lang

// The engine layer's columnar batch type is the shared chunk
// representation: defining it once (internal/chunk) and aliasing it here
// lets the ADLB wire layer, the turbine data plane, and this package
// move the same column buffers without a kind-tag remapping pass at each
// boundary.

import (
	"fmt"

	"repro/internal/blob"
	"repro/internal/chunk"
)

// Chunk is a columnar batch of values: one contiguous typed buffer per
// element class plus a per-row kind tag (see internal/chunk for the
// layout). It is how the batched data plane moves container-scale value
// traffic without boxing each element.
type Chunk = chunk.Chunk

// ValuesToChunk packs typed values into a fresh chunk. Blob and string
// payloads are referenced, not copied.
func ValuesToChunk(vals []Value) (Chunk, error) {
	var c Chunk
	for i, v := range vals {
		switch v.Kind() {
		case KindInt:
			n, _ := v.AsInt()
			c.AppendInt(n)
		case KindFloat:
			f, _ := v.AsFloat()
			c.AppendFloat(f)
		case KindString:
			c.AppendString(v.Render())
		case KindBlob:
			b := v.AsBlob()
			c.AppendBlob(b.Data, uint8(b.Elem), b.Dims)
		default:
			return c, fmt.Errorf("lang: value %d has no chunk form", i)
		}
	}
	return c, nil
}

// ChunkToValues unboxes a chunk into typed values, the inverse of
// ValuesToChunk. copyBytes controls whether string and blob payloads are
// copied out of the chunk's columns: pass true when the values outlive
// the chunk's backing frame (the copy-on-escape rule), false when the
// caller finishes with them inside the frame's validity window.
func ChunkToValues(c Chunk, copyBytes bool) ([]Value, error) {
	out := make([]Value, 0, c.Len())
	r := c.Reader()
	for r.Next() {
		switch r.Kind() {
		case chunk.KindVoid:
			out = append(out, Str(""))
		case chunk.KindInt:
			out = append(out, Int(r.Int()))
		case chunk.KindFloat:
			out = append(out, Float(r.Float()))
		case chunk.KindString:
			out = append(out, Str(string(r.Bytes())))
		case chunk.KindBlob:
			m := r.Meta()
			data := r.Bytes()
			if copyBytes {
				data = append([]byte(nil), data...)
			}
			out = append(out, BlobOf(blob.Blob{Data: data, Dims: m.Dims, Elem: blob.Elem(m.Elem)}))
		default:
			return nil, fmt.Errorf("lang: chunk row %d has unknown kind %d", len(out), r.Kind())
		}
	}
	return out, nil
}
