// Package conformance is the cross-engine conformance harness for the
// typed interlanguage contract (Engine v2): one table of value-kind ×
// dims × policy × argv-unbinding cases, run against every engine in
// lang.Registered(). It replaces the per-engine copies of these tables
// that used to live in internal/lang/lang_test.go and
// internal/core/typed_roundtrip_test.go — a new language registered
// through lang.Register is covered by construction, because the matrix
// iterates the registry and fails when a registered engine has no
// dialect entry here.
//
// The only per-language knowledge the harness needs is a Dialect: how to
// spell a handful of probe fragments (identity over argv1, bind/read a
// global, read argv2) in that language, plus the Swift statement the
// end-to-end round-trip tests route through. Everything else — the
// vectors, the assertions, the policy sequences — is engine-generic.
package conformance

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/blob"
	"repro/internal/lang"
	"repro/internal/tcl"
)

// Frag is one probe fragment: Code runs, Expr's value returns. For
// single-slot languages (Sig.Fixed == 1) the non-empty half is the
// fragment.
type Frag struct{ Code, Expr string }

// Call maps the fragment onto a registration's calling convention.
func (f Frag) Call(reg lang.Registration, args []lang.Value, want lang.Kind) lang.Call {
	if reg.Sig.Fixed >= 2 {
		return lang.Call{Code: f.Code, Expr: f.Expr, Args: args, Want: want}
	}
	code := f.Code
	if code == "" {
		code = f.Expr
	}
	return lang.Call{Code: code, Args: args, Want: want}
}

// evalWords renders the fragment as a <name>::eval dispatch command for
// the Install-surface policy cases.
func (f Frag) evalWords(reg lang.Registration) string {
	if reg.Sig.Fixed >= 2 {
		return tcl.FormatList([]string{reg.Name + "::eval", f.Code, f.Expr})
	}
	code := f.Code
	if code == "" {
		code = f.Expr
	}
	return tcl.FormatList([]string{reg.Name + "::eval", code})
}

// Dialect spells the harness's probe fragments in one language.
type Dialect struct {
	// Identity returns argv1 unchanged (the blob round-trip probe).
	Identity Frag
	// StateSet binds the global g to 41; StateRead reads it back
	// (rendering "41"). Together they probe retain/reinit semantics.
	StateSet, StateRead Frag
	// ArgvRead1 and ArgvRead2 read the pre-bound arguments back — the
	// stale-binding and failed-binding probes.
	ArgvRead1, ArgvRead2 Frag
	// SumArgs computes sum(argv1) + argv2 (argv1 a float vector, argv2
	// an int) — the typed-binding probe. Zero when the language cannot
	// compute over vectors (the strings-only Tcl engine).
	SumArgs Frag
	// Swift is the statement binding `blob through` from the closed blob
	// `v`, routing one identity round trip through the engine end to end.
	Swift string
	// Exempt marks engines whose surface cannot express the matrix at
	// all (the shell: no variable bindings or expressions, only argv).
	Exempt bool
}

// Dialects is the per-language registry the matrix draws from. Adding a
// language to lang.Register without adding its dialect here fails every
// conformance test — coverage is by construction, not by convention.
var Dialects = map[string]Dialect{
	"python": {
		Identity:  Frag{Expr: "argv1"},
		StateSet:  Frag{Code: "g = 41"},
		StateRead: Frag{Expr: "g"},
		ArgvRead1: Frag{Expr: "argv1"},
		ArgvRead2: Frag{Expr: "argv2"},
		SumArgs:   Frag{Code: "s = sum(argv1) + argv2", Expr: "s"},
		Swift:     `blob through = python("", "argv1", v);`,
	},
	"r": {
		Identity:  Frag{Code: "x <- argv1", Expr: "x"},
		StateSet:  Frag{Code: "g <- 41"},
		StateRead: Frag{Expr: "g"},
		ArgvRead1: Frag{Expr: "argv1"},
		ArgvRead2: Frag{Expr: "argv2"},
		SumArgs:   Frag{Code: "s <- sum(argv1) + argv2", Expr: "s"},
		Swift:     `blob through = r("x <- argv1", "x", v);`,
	},
	"tcl": {
		Identity:  Frag{Code: "set argv1"},
		StateSet:  Frag{Code: "set g 41"},
		StateRead: Frag{Code: "set g"},
		ArgvRead1: Frag{Code: "set argv1"},
		ArgvRead2: Frag{Code: "set argv2"},
		// Strings-only: no vector arithmetic — SumArgs stays zero.
		Swift: `blob through = tcl("set argv1", v);`,
	},
	"julia": {
		Identity:  Frag{Expr: "argv1"},
		StateSet:  Frag{Code: "g = 41"},
		StateRead: Frag{Expr: "g"},
		ArgvRead1: Frag{Expr: "argv1"},
		ArgvRead2: Frag{Expr: "argv2"},
		SumArgs:   Frag{Code: "s = sum(argv1) + argv2", Expr: "s"},
		Swift:     `blob through = julia("", "argv1", v);`,
	},
	"sh": {Exempt: true},
}

// VectorCase is one row of the value-kind × dims table.
type VectorCase struct {
	Name string
	B    blob.Blob
}

// Vectors returns the value-kind × dims table every engine must
// round-trip bit-exact. Element patterns are chosen to be destroyed by
// any decimal rendering on the route: full-mantissa float64s, float32
// values that widen inexactly if re-parsed from short text, negative
// int32s, int64s at the edge of float64's exact range, and raw bytes.
// Each call returns fresh payload copies, so mutation in one case
// cannot leak into another.
func Vectors() []VectorCase {
	f64 := blob.FromFloat64s([]float64{0.1 + 0.2, 1e-300, -3.14159265358979, 6, 0, 2.5e17})
	f64.Dims = []int{2, 3}
	f32 := blob.FromFloat32s([]float32{0.1, -2.7182817, 3.4e38, 0.125, 42, -0})
	f32.Dims = []int{3, 2}
	i32 := blob.FromInt32s([]int32{-2147483648, 2147483647, 0, -7, 12345, 1})
	i32.Dims = []int{6}
	// ±2^53: the widest int64 magnitudes every engine must carry exactly
	// (beyond them, double-based engines are required to refuse, which
	// TestREngineRejectsInexactInt64 pins separately).
	i64 := blob.FromInt64s([]int64{1 << 53, -(1 << 53), 7, 0, -1, 42})
	i64.Dims = []int{3, 2}
	raw := blob.New([]byte{0, 1, 2, 254, 255, 128})
	return []VectorCase{
		{"float64-dims", f64},
		{"float32-dims", f32},
		{"int32-dims", i32},
		{"int64-dims", i64},
		{"raw-bytes", raw},
	}
}

// EachEngine runs f once per registered, non-exempt engine. A registered
// engine with no dialect fails the test: the conformance matrix must
// grow with the registry.
func EachEngine(t *testing.T, f func(t *testing.T, reg lang.Registration, d Dialect)) {
	t.Helper()
	for _, reg := range lang.Registered() {
		d, ok := Dialects[reg.Name]
		if !ok {
			t.Errorf("engine %q is registered but has no conformance dialect; add one to internal/lang/conformance", reg.Name)
			continue
		}
		if d.Exempt {
			continue
		}
		reg, d := reg, d
		t.Run(reg.Name, func(t *testing.T) { f(t, reg, d) })
	}
}

// newEngine creates a quiet engine instance for matrix runs.
func newEngine(reg lang.Registration) lang.Engine {
	return reg.New(lang.Host{Out: io.Discard})
}

// AssertBlobEqual fails unless got carries exactly the payload bytes,
// element kind, and dims of want — the bit-exactness contract.
func AssertBlobEqual(t *testing.T, label string, got, want blob.Blob) {
	t.Helper()
	if string(got.Data) != string(want.Data) {
		t.Fatalf("%s: payload not bit-exact:\n got %x\nwant %x", label, got.Data, want.Data)
	}
	if got.Elem != want.Elem {
		t.Fatalf("%s: element kind %v != %v", label, got.Elem, want.Elem)
	}
	if fmt.Sprint(got.Dims) != fmt.Sprint(want.Dims) {
		t.Fatalf("%s: dims %v != %v", label, got.Dims, want.Dims)
	}
}

// RunRoundTripMatrix drives every vector case through every engine's
// identity fragment at the Engine level: the blob binds as argv1, comes
// back as the result, and must be bit-exact — payload bytes, element
// kind, and Fortran dims all intact.
func RunRoundTripMatrix(t *testing.T) {
	EachEngine(t, func(t *testing.T, reg lang.Registration, d Dialect) {
		for _, vc := range Vectors() {
			vc := vc
			t.Run(vc.Name, func(t *testing.T) {
				eng := newEngine(reg)
				res, err := eng.Eval(d.Identity.Call(reg, []lang.Value{lang.BlobOf(vc.B)}, lang.KindBlob))
				if err != nil {
					t.Fatal(err)
				}
				if res.Kind() != lang.KindBlob {
					t.Fatalf("result kind = %v, want blob", res.Kind())
				}
				AssertBlobEqual(t, reg.Name+" identity", res.AsBlob(), vc.B)
			})
		}
	})
}

// RunArgvMatrix checks the argv pre-binding contract on every engine:
// typed arguments bind as native values (a float vector sums without any
// rendering of element data), stale bindings never leak between tasks,
// and a failed binding leaves no partial argv set behind.
func RunArgvMatrix(t *testing.T) {
	EachEngine(t, func(t *testing.T, reg lang.Registration, d Dialect) {
		t.Run("typed-bind", func(t *testing.T) {
			if d.SumArgs == (Frag{}) {
				t.Skipf("%s cannot compute over vectors", reg.Name)
			}
			eng := newEngine(reg)
			args := []lang.Value{lang.Floats([]float64{1.5, 2.25, 3.25}), lang.Int(3)}
			res, err := eng.Eval(d.SumArgs.Call(reg, args, lang.KindFloat))
			if err != nil {
				t.Fatal(err)
			}
			f, err := res.AsFloat()
			if err != nil || f != 10.0 {
				t.Fatalf("sum = %v (%v), want 10", f, err)
			}
		})
		t.Run("stale-argv-unbinds", func(t *testing.T) {
			// Under PolicyRetain a task referencing argvN beyond its own
			// arg count must fail, not silently read a previous task's
			// argument.
			eng := newEngine(reg)
			res, err := eng.Eval(d.ArgvRead2.Call(reg, []lang.Value{lang.Int(1), lang.Int(2)}, lang.KindString))
			if err != nil {
				t.Fatal(err)
			}
			if res.Render() != "2" {
				t.Fatalf("argv2 = %q, want 2", res.Render())
			}
			if out, err := eng.Eval(d.ArgvRead2.Call(reg, []lang.Value{lang.Int(7)}, lang.KindString)); err == nil {
				t.Fatalf("stale argv2 leaked into the next task: %q", out.Render())
			}
		})
		t.Run("failed-binding-leaves-nothing", func(t *testing.T) {
			// A conversion failure mid-argument-list must not leave a
			// partial argv set bound. Engines that bind raw bytes (no
			// conversion step) cannot fail here and are skipped.
			ragged := lang.BlobOf(blob.Blob{Data: []byte{1, 2, 3}, Elem: blob.ElemF64})
			eng := newEngine(reg)
			good := lang.Floats([]float64{42})
			if _, err := eng.Eval(d.ArgvRead1.Call(reg, []lang.Value{good, ragged}, lang.KindString)); err == nil {
				t.Skipf("%s binds blobs without conversion; nothing to fail", reg.Name)
			}
			if out, err := eng.Eval(d.ArgvRead1.Call(reg, nil, lang.KindString)); err == nil {
				t.Fatalf("argv1 from the failed call leaked: %q", out.Render())
			}
		})
	})
}

// RunPolicyMatrix checks the paper's §III-C retain/reinit semantics on
// every engine, both directly (Engine.Reset) and through lang.Install's
// per-fragment policy application on the Tcl dispatch surface.
func RunPolicyMatrix(t *testing.T) {
	EachEngine(t, func(t *testing.T, reg lang.Registration, d Dialect) {
		t.Run("engine-reset", func(t *testing.T) {
			eng := newEngine(reg)
			if eng.Name() != reg.Name {
				t.Fatalf("Name() = %q, want %q", eng.Name(), reg.Name)
			}
			if _, err := eng.Eval(d.StateSet.Call(reg, nil, lang.KindString)); err != nil {
				t.Fatal(err)
			}
			got, err := eng.Eval(d.StateRead.Call(reg, nil, lang.KindString))
			if err != nil {
				t.Fatalf("retained state unreadable: %v", err)
			}
			if got.Render() != "41" {
				t.Fatalf("retained read = %q, want 41", got.Render())
			}
			eng.Reset()
			if _, err := eng.Eval(d.StateRead.Call(reg, nil, lang.KindString)); err == nil {
				t.Fatalf("%s: state survived Reset", reg.Name)
			}
			if n := eng.Evals(); n != 3 {
				t.Fatalf("Evals() = %d, want 3", n)
			}
		})
		t.Run("install-policy", func(t *testing.T) {
			// Through the Tcl dispatch command (the string surface leaf
			// tasks fall back to): reinit clears state after every
			// fragment, retain keeps it — without any per-language code.
			counters := lang.NewCounters()
			setCall := d.StateSet.evalWords(reg)
			readCall := d.StateRead.evalWords(reg)

			retain := tcl.New()
			lang.Install(retain, reg, lang.Host{Out: io.Discard}, lang.PolicyRetain, counters, nil)
			if _, err := retain.Eval(setCall); err != nil {
				t.Fatal(err)
			}
			got, err := retain.Eval(readCall)
			if err != nil || got != "41" {
				t.Fatalf("retain read = %q, %v", got, err)
			}

			reinit := tcl.New()
			lang.Install(reinit, reg, lang.Host{Out: io.Discard}, lang.PolicyReinit, counters, nil)
			if _, err := reinit.Eval(setCall); err != nil {
				t.Fatal(err)
			}
			if out, err := reinit.Eval(readCall); err == nil {
				t.Fatalf("reinit: state survived the fragment boundary (got %q)", out)
			}
			if n := counters.Snapshot()[reg.Name]; n != 4 {
				t.Fatalf("counter = %d, want 4", n)
			}
		})
	})
}
