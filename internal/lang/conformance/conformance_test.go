package conformance

// The conformance matrix itself: every case × every registered engine.
// These tests are the single owner of the engine-generic invariants that
// used to be copied per-engine in internal/lang/lang_test.go — the
// Swift-level end-to-end half of the matrix lives in
// internal/core/typed_roundtrip_test.go, driven by the same Dialects.

import (
	"testing"

	"repro/internal/lang"
)

func TestAllStandardEnginesRegistered(t *testing.T) {
	// The paper's four numeric languages must all be present: the matrix
	// below proves the shared contract only if they are actually in the
	// registry it iterates.
	for _, name := range []string{"python", "r", "tcl", "julia"} {
		if _, ok := lang.Lookup(name); !ok {
			t.Fatalf("standard engine %q is not registered", name)
		}
	}
}

func TestEveryRegisteredEngineHasADialect(t *testing.T) {
	// Coverage by construction: registering a language without teaching
	// the conformance suite how to probe it is an error, surfaced here
	// (and by every matrix runner) rather than by silently thinner tests.
	EachEngine(t, func(t *testing.T, reg lang.Registration, d Dialect) {
		if d.Identity == (Frag{}) || d.StateSet == (Frag{}) || d.StateRead == (Frag{}) ||
			d.ArgvRead1 == (Frag{}) || d.ArgvRead2 == (Frag{}) || d.Swift == "" {
			t.Fatalf("dialect for %q is incomplete: %+v", reg.Name, d)
		}
	})
}

func TestRoundTripMatrix(t *testing.T) { RunRoundTripMatrix(t) }

func TestArgvMatrix(t *testing.T) { RunArgvMatrix(t) }

func TestPolicyMatrix(t *testing.T) { RunPolicyMatrix(t) }
