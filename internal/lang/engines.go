package lang

// The standard engines: the four language embeddings of the paper
// (§III-C Python and R, §III-A Tcl, and the shell interface), each an
// Engine over the corresponding interpreter package. These init-time
// Register calls are the single wiring site per language — the Swift
// type checker, the sw:leaf dispatch, and the per-rank installation all
// derive from the registry.

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/memo"
	"repro/internal/pylite"
	"repro/internal/rlite"
	"repro/internal/shell"
	"repro/internal/tcl"
)

func init() {
	Register(Registration{Name: "python", NumArgs: 2, New: newPythonEngine})
	Register(Registration{Name: "r", NumArgs: 2, New: newREngine})
	Register(Registration{Name: "tcl", NumArgs: 1, New: newTclEngine})
	Register(Registration{Name: "sh", NumArgs: 1, Variadic: true, New: newShellEngine})
}

// pythonEngine embeds a pylite interpreter (the paper's "Python
// interpreter as a native code library").
type pythonEngine struct {
	in    *pylite.Interp
	evals int64
}

func newPythonEngine(h Host) Engine {
	in := pylite.New()
	if h.Out != nil {
		in.Out = h.Out
	}
	return &pythonEngine{in: in}
}

func (e *pythonEngine) Name() string { return "python" }

func (e *pythonEngine) EvalFragment(code, expr string) (string, error) {
	e.evals++
	return e.in.EvalFragment(code, expr)
}

func (e *pythonEngine) Reset()       { e.in.Reset() }
func (e *pythonEngine) Evals() int64 { return e.evals }

// rEngine embeds an rlite interpreter (linking libR into the runtime).
type rEngine struct {
	in    *rlite.Interp
	evals int64
}

func newREngine(h Host) Engine {
	in := rlite.New()
	if h.Out != nil {
		in.Out = h.Out
	}
	return &rEngine{in: in}
}

func (e *rEngine) Name() string { return "r" }

func (e *rEngine) EvalFragment(code, expr string) (string, error) {
	e.evals++
	return e.in.EvalFragment(code, expr)
}

func (e *rEngine) Reset()       { e.in.Reset() }
func (e *rEngine) Evals() int64 { return e.evals }

// tclEngine embeds a dedicated Tcl interpreter per rank, distinct from
// the rank's Turbine runtime interpreter: tcl(...) fragments get the
// same isolation and retain/reinit state policy as the other embedded
// languages (and cannot reach into the runtime's procs or rules). The
// engine owns its fragment cache (source -> *tcl.Script) rather than
// relying on the interpreter's internal one, so — like pylite and
// rlite — Reset discards state, not parses, and PolicyReinit stays
// parse-free for repeated fragments.
type tclEngine struct {
	out   io.Writer
	in    *tcl.Interp
	progs *memo.Cache[*tcl.Script]
	evals int64
}

// tclProgCacheSize bounds the engine's fragment cache (see pylite).
const tclProgCacheSize = 256

func newTclEngine(h Host) Engine {
	e := &tclEngine{out: h.Out, progs: memo.New[*tcl.Script](tclProgCacheSize)}
	e.Reset()
	return e
}

func (e *tclEngine) Name() string { return "tcl" }

func (e *tclEngine) EvalFragment(code, expr string) (string, error) {
	e.evals++
	res, err := e.evalCached(code)
	if err != nil {
		return "", err
	}
	if strings.TrimSpace(expr) != "" {
		return e.evalCached(expr)
	}
	return res, nil
}

// evalCached evaluates a fragment through the engine's compile-once
// cache; *tcl.Script is immutable and interpreter-independent, so cached
// parses replay safely against the post-Reset interpreter.
func (e *tclEngine) evalCached(src string) (string, error) {
	s, err := e.progs.GetOrCompute(src, func() (*tcl.Script, error) {
		return tcl.CompileScript(src)
	})
	if err != nil {
		return "", err
	}
	return e.in.EvalScript(s)
}

// Reset recreates the embedded interpreter, discarding all procs and
// variables defined by previous fragments (but not the fragment cache).
func (e *tclEngine) Reset() {
	e.in = tcl.New()
	if e.out != nil {
		e.in.Out = e.out
	}
}

func (e *tclEngine) Evals() int64 { return e.evals }

// shellEngine runs argv through the simulated process table (the app
// function / sh(...) interface; §III-C notes BG/Q machines forbid it).
// The shell holds no per-task interpreter state, so Reset is a no-op.
type shellEngine struct {
	sys   *shell.System
	evals int64
}

func newShellEngine(h Host) Engine {
	sys := h.Shell
	if sys == nil {
		sys = shell.NewSystem(shell.ModeCluster, nil)
	}
	return &shellEngine{sys: sys}
}

func (e *shellEngine) Name() string { return "sh" }

// EvalFragment executes code as a Tcl-list-packed argv (see packArgs);
// expr is unused. The trailing newline of the captured stdout is
// stripped, matching command-substitution conventions.
func (e *shellEngine) EvalFragment(code, _ string) (string, error) {
	e.evals++
	argv, err := tcl.ParseList(code)
	if err != nil {
		return "", fmt.Errorf("sh: bad argv list: %w", err)
	}
	if len(argv) == 0 {
		return "", fmt.Errorf("sh: empty command")
	}
	out, err := e.sys.Exec(argv, "")
	if err != nil {
		return "", err
	}
	return strings.TrimRight(out, "\n"), nil
}

func (e *shellEngine) Reset()       {}
func (e *shellEngine) Evals() int64 { return e.evals }
