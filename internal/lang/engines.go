package lang

// The standard engines: the language embeddings of the paper — §III-C
// Python and R, §III-A Tcl, the shell interface, and the Julia-like
// surface §IV sketches — each an Engine over the corresponding
// interpreter package. These init-time Register calls are the single
// wiring site per language — the Swift type checker, the compiled
// sw:leafcall dispatch, and the per-rank installation all derive from
// the registry.
//
// All of them speak the typed calling convention: extra arguments bind
// as argv1..argvN before the fragment runs (blob arguments become
// native vectors), and results return typed. Only the Tcl and shell
// engines — whose surfaces are strings by nature — render argument
// values, and even they pass blob payloads as raw bytes, never as
// formatted element text.

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/blob"
	"repro/internal/jlite"
	"repro/internal/memo"
	"repro/internal/pylite"
	"repro/internal/rlite"
	"repro/internal/shell"
	"repro/internal/tcl"
)

func init() {
	Register(Registration{Name: "python", Sig: Signature{Fixed: 2, Variadic: true}, New: newPythonEngine})
	Register(Registration{Name: "r", Sig: Signature{Fixed: 2, Variadic: true}, New: newREngine})
	Register(Registration{Name: "tcl", Sig: Signature{Fixed: 1, Variadic: true}, New: newTclEngine})
	Register(Registration{Name: "sh", Sig: Signature{Fixed: 1, Variadic: true, Result: ResultString}, New: newShellEngine})
	Register(Registration{Name: "julia", Sig: Signature{Fixed: 2, Variadic: true}, New: newJuliaEngine})
}

// argName is the pre-bound variable name of extra argument i (0-based).
func argName(i int) string { return fmt.Sprintf("argv%d", i+1) }

// pythonEngine embeds a pylite interpreter (the paper's "Python
// interpreter as a native code library").
type pythonEngine struct {
	in    *pylite.Interp
	argn  int // argv bindings currently installed (see unbindStale)
	evals int64
}

// Stale argv bindings must not leak between tasks: under PolicyRetain a
// fragment referencing argvN beyond its own argument count would
// otherwise silently read a previous task's data instead of failing.
// Each engine unbinds argv(n+1)..argv(prev) after binding its n args.

func (e *pythonEngine) unbindStale(n int) {
	for i := n; i < e.argn; i++ {
		e.in.DelGlobal(argName(i))
	}
	e.argn = n
}

func newPythonEngine(h Host) Engine {
	in := pylite.New()
	if h.Out != nil {
		in.Out = h.Out
	}
	return &pythonEngine{in: in}
}

func (e *pythonEngine) Name() string { return "python" }

func (e *pythonEngine) Eval(c Call) (Value, error) {
	e.evals++
	// Convert every argument before binding any: a failure mid-list must
	// not leave a partial argv set behind (nothing is bound, argn is
	// untouched, and the previous task's bindings get cleaned next time).
	vals := make([]pylite.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := pyValue(a)
		if err != nil {
			return Value{}, err
		}
		vals[i] = v
	}
	for i, v := range vals {
		e.in.SetGlobal(argName(i), v)
	}
	e.unbindStale(len(c.Args))
	if strings.TrimSpace(c.Code) != "" {
		if err := e.in.Exec(c.Code); err != nil {
			return Value{}, err
		}
	}
	if strings.TrimSpace(c.Expr) == "" {
		return Str(""), nil
	}
	v, err := e.in.EvalExpr(c.Expr)
	if err != nil {
		return Value{}, err
	}
	return pyResult(v, c.Want)
}

func (e *pythonEngine) Reset()       { e.in.Reset() }
func (e *pythonEngine) Evals() int64 { return e.evals }

func (e *pythonEngine) ParseCacheStats() memo.BudgetStats { return e.in.CacheBudgetStats() }

// pyValue converts a typed argument into its Python binding: scalars
// enter as native numbers/strings, blobs as zero-copy Vec views.
func pyValue(a Value) (pylite.Value, error) {
	switch a.Kind() {
	case KindInt:
		n, err := a.AsInt()
		return n, err
	case KindFloat:
		f, err := a.AsFloat()
		return f, err
	case KindBlob:
		return pylite.NewVec(a.AsBlob())
	}
	return a.Render(), nil
}

// pyResult converts an expression result back into a typed value. A Vec
// leaves with its backing blob intact (bit-exact, dims and element kind
// preserved); a fresh numeric list packs into a blob only when the
// caller wants one, and renders as text otherwise (the historical
// string behaviour).
func pyResult(v pylite.Value, want Kind) (Value, error) {
	switch x := v.(type) {
	case int64:
		return Int(x), nil
	case float64:
		return Float(x), nil
	case string:
		return Str(x), nil
	case *pylite.Vec:
		if want == KindBlob {
			return BlobOf(x.B), nil
		}
		// Rendered like a list in string/number contexts, matching how
		// fresh lists (and R vectors) behave there.
	case bool:
		if want == KindInt || want == KindFloat {
			if x {
				return Int(1), nil
			}
			return Int(0), nil
		}
	case *pylite.List:
		if want == KindBlob {
			b, err := pylite.PackValues(x.Items)
			if err != nil {
				return Value{}, err
			}
			return BlobOf(b), nil
		}
	case nil:
		return Str(""), nil
	}
	return Str(pylite.Str(v)), nil
}

// rEngine embeds an rlite interpreter (linking libR into the runtime).
type rEngine struct {
	in    *rlite.Interp
	argn  int
	evals int64
}

func (e *rEngine) unbindStale(n int) {
	for i := n; i < e.argn; i++ {
		e.in.DelGlobal(argName(i))
	}
	e.argn = n
}

func newREngine(h Host) Engine {
	in := rlite.New()
	if h.Out != nil {
		in.Out = h.Out
	}
	return &rEngine{in: in}
}

func (e *rEngine) Name() string { return "r" }

func (e *rEngine) Eval(c Call) (Value, error) {
	e.evals++
	// bound maps each blob argument's decoded vector back to its source
	// blob: a result that IS a bound vector (identity, including through
	// assignments — R names share the vector object) leaves bit-exact
	// under its own metadata, never another argument's.
	bound := map[*rlite.NumVec]blob.Blob{}
	var protos []blob.Blob
	// Convert every argument before binding any (see pythonEngine.Eval).
	vals := make([]rlite.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := rValue(a)
		if err != nil {
			return Value{}, err
		}
		vals[i] = v
	}
	for i, v := range vals {
		e.in.SetGlobal(argName(i), v)
		if a := c.Args[i]; a.Kind() == KindBlob {
			b := a.AsBlob()
			protos = append(protos, b)
			if nv, ok := v.(*rlite.NumVec); ok {
				bound[nv] = b
			}
		}
	}
	e.unbindStale(len(c.Args))
	if strings.TrimSpace(c.Code) != "" {
		if _, err := e.in.Eval(c.Code); err != nil {
			return Value{}, err
		}
	}
	if strings.TrimSpace(c.Expr) == "" {
		return Str(""), nil
	}
	v, err := e.in.Eval(c.Expr)
	if err != nil {
		return Value{}, err
	}
	return rResult(v, c.Want, bound, protos)
}

func (e *rEngine) Reset()       { e.in.Reset() }
func (e *rEngine) Evals() int64 { return e.evals }

// rValue converts a typed argument into its R binding: numbers become
// length-1 numeric vectors, blobs decode into real numeric vectors so R
// fragments apply native vectorised arithmetic to them.
func rValue(a Value) (rlite.Value, error) {
	switch a.Kind() {
	case KindInt:
		n, err := a.AsInt()
		return rlite.Num(float64(n)), err
	case KindFloat:
		f, err := a.AsFloat()
		return rlite.Num(f), err
	case KindBlob:
		return rlite.NumVecFromBlob(a.AsBlob())
	}
	return rlite.Chr(a.Render()), nil
}

// rResult converts an R result back into a typed value. Numeric vectors
// pack into blobs when a blob is wanted: a vector that is (still) a
// bound argument repacks under that argument's own element kind and dims
// (identity round-trips stay bit-exact); a fresh vector adopts the sole
// blob argument's prototype when there is exactly one — with several,
// provenance is ambiguous and the safe flat float64 form wins. Scalars
// return as numbers; everything else deparses.
func rResult(v rlite.Value, want Kind, bound map[*rlite.NumVec]blob.Blob, protos []blob.Blob) (Value, error) {
	if nv, ok := v.(*rlite.NumVec); ok {
		switch {
		case want == KindBlob:
			proto := blob.Blob{Elem: blob.ElemF64}
			if src, ok := bound[nv]; ok {
				proto = src
			} else if len(protos) == 1 {
				proto = protos[0]
			}
			return BlobOf(blob.PackLike(nv.V, proto)), nil
		case (want == KindInt || want == KindFloat) && len(nv.V) == 1:
			return Float(nv.V[0]), nil
		}
	}
	return Str(rlite.Deparse(v)), nil
}

// juliaEngine embeds a jlite interpreter (the Julia-like surface the
// paper's §IV sketches, embedded the way libjulia would be).
type juliaEngine struct {
	in    *jlite.Interp
	argn  int
	evals int64
}

func (e *juliaEngine) unbindStale(n int) {
	for i := n; i < e.argn; i++ {
		e.in.DelGlobal(argName(i))
	}
	e.argn = n
}

func newJuliaEngine(h Host) Engine {
	in := jlite.New()
	if h.Out != nil {
		in.Out = h.Out
	}
	return &juliaEngine{in: in}
}

func (e *juliaEngine) Name() string { return "julia" }

func (e *juliaEngine) Eval(c Call) (Value, error) {
	e.evals++
	// Convert every argument before binding any (see pythonEngine.Eval):
	// a failure mid-list must not leave a partial argv set behind.
	vals := make([]jlite.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := jlValue(a)
		if err != nil {
			return Value{}, err
		}
		vals[i] = v
	}
	// protos tracks blob arguments for result repacking: a fresh vector
	// result adopts the sole blob argument's element view via
	// blob.PackLike when unambiguous (identity results are Vec views and
	// leave bit-exact under their own backing blob regardless).
	var protos []blob.Blob
	for i, v := range vals {
		e.in.SetGlobal(argName(i), v)
		if a := c.Args[i]; a.Kind() == KindBlob {
			protos = append(protos, a.AsBlob())
		}
	}
	e.unbindStale(len(c.Args))
	if strings.TrimSpace(c.Code) != "" {
		if err := e.in.Exec(c.Code); err != nil {
			return Value{}, err
		}
	}
	if strings.TrimSpace(c.Expr) == "" {
		return Str(""), nil
	}
	v, err := e.in.EvalExpr(c.Expr)
	if err != nil {
		return Value{}, err
	}
	return jlResult(v, c.Want, protos)
}

func (e *juliaEngine) Reset()       { e.in.Reset() }
func (e *juliaEngine) Evals() int64 { return e.evals }

func (e *juliaEngine) ParseCacheStats() memo.BudgetStats { return e.in.CacheBudgetStats() }

// jlValue converts a typed argument into its jlite binding: scalars
// enter as native numbers/strings, blobs as zero-copy 1-based Vec views.
func jlValue(a Value) (jlite.Value, error) {
	switch a.Kind() {
	case KindInt:
		n, err := a.AsInt()
		return n, err
	case KindFloat:
		f, err := a.AsFloat()
		return f, err
	case KindBlob:
		return jlite.NewVec(a.AsBlob())
	}
	return a.Render(), nil
}

// jlResult converts an expression result back into a typed value. A Vec
// leaves with its backing blob intact (bit-exact, dims and element kind
// preserved). A fresh vector packs into a blob only when the caller
// wants one: under the sole blob argument's prototype via blob.PackLike
// when there is exactly one — with several, provenance is ambiguous and
// the exact native packing wins (all-int64 vectors stay on the integer
// path, everything else packs flat float64, mirroring rlite's ambiguity
// rule). Ranges materialise like fresh vectors.
func jlResult(v jlite.Value, want Kind, protos []blob.Blob) (Value, error) {
	switch x := v.(type) {
	case int64:
		return Int(x), nil
	case float64:
		return Float(x), nil
	case string:
		return Str(x), nil
	case bool:
		if want == KindInt || want == KindFloat {
			if x {
				return Int(1), nil
			}
			return Int(0), nil
		}
	case *jlite.Vec:
		if want == KindBlob {
			return BlobOf(x.B), nil
		}
		// Rendered like a vector literal in string contexts, matching
		// fresh arrays (and the other engines' list behaviour there).
	case *jlite.Arr:
		if want == KindBlob {
			return packFresh(x.Elems, protos)
		}
	case *jlite.Range:
		if want == KindBlob {
			elems := make([]jlite.Value, x.Len())
			for i := range elems {
				elems[i] = x.Lo + int64(i)
			}
			return packFresh(elems, protos)
		}
	case nil:
		return Str(""), nil
	}
	return Str(jlite.Str(v)), nil
}

// packFresh packs a fresh jlite vector for a blob-wanting caller.
func packFresh(elems []jlite.Value, protos []blob.Blob) (Value, error) {
	if len(protos) == 1 {
		proto := protos[0]
		// An int64 prototype keeps all-integer results on the exact
		// integer path: narrowing through float64 would reject values
		// beyond 2^53 that the prototype's own element kind represents
		// exactly. Dims reattach under PackLike's rule (count match).
		if proto.Elem == blob.ElemI64 {
			if b, err := jlite.PackValues(elems); err == nil && b.Elem == blob.ElemI64 {
				if n := dimsProduct(proto.Dims); proto.Dims != nil && n == b.Count() {
					b.Dims = append([]int(nil), proto.Dims...)
				}
				return BlobOf(b), nil
			}
		}
		xs, err := jlite.FloatsExact(elems)
		if err != nil {
			return Value{}, err
		}
		return BlobOf(blob.PackLike(xs, proto)), nil
	}
	b, err := jlite.PackValues(elems)
	if err != nil {
		return Value{}, err
	}
	return BlobOf(b), nil
}

// dimsProduct multiplies Fortran extents (1 for nil dims).
func dimsProduct(dims []int) int {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return n
}

// tclEngine embeds a dedicated Tcl interpreter per rank, distinct from
// the rank's Turbine runtime interpreter: tcl(...) fragments get the
// same isolation and retain/reinit state policy as the other embedded
// languages (and cannot reach into the runtime's procs or rules). The
// engine owns its fragment cache (source -> *tcl.Script) rather than
// relying on the interpreter's internal one, so — like pylite and
// rlite — Reset discards state, not parses, and PolicyReinit stays
// parse-free for repeated fragments.
type tclEngine struct {
	out   io.Writer
	in    *tcl.Interp
	progs *memo.Cache[*tcl.Script]
	argn  int
	evals int64
}

func (e *tclEngine) unbindStale(n int) {
	for i := n; i < e.argn; i++ {
		// Already-absent variables (e.g. after Reset) are fine to skip.
		_ = e.in.UnsetVar(argName(i))
	}
	e.argn = n
}

// tclProgCacheSize bounds the engine's fragment cache (see pylite).
const tclProgCacheSize = 256

func newTclEngine(h Host) Engine {
	e := &tclEngine{out: h.Out, progs: memo.New[*tcl.Script](tclProgCacheSize)}
	e.Reset()
	return e
}

func (e *tclEngine) Name() string { return "tcl" }

// Eval binds extra arguments as argv1..argvN (Tcl values are strings;
// blob payloads bind as their raw bytes, uninterpreted), evaluates Code
// through the compile-once cache, and returns the result. When a blob is
// wanted and the result bytes are an unmodified argument payload, the
// argument's dims and element kind reattach, keeping identity
// round-trips bit-exact even through a strings-only language.
func (e *tclEngine) Eval(c Call) (Value, error) {
	e.evals++
	for i, a := range c.Args {
		if err := e.in.SetVar(argName(i), a.Render()); err != nil {
			// args 0..i-1 bound; record them so the next call cleans up.
			if i > e.argn {
				e.argn = i
			}
			return Value{}, err
		}
	}
	e.unbindStale(len(c.Args))
	res, err := e.evalCached(c.Code)
	if err != nil {
		return Value{}, err
	}
	if strings.TrimSpace(c.Expr) != "" {
		if res, err = e.evalCached(c.Expr); err != nil {
			return Value{}, err
		}
	}
	if c.Want == KindBlob {
		// Reattach metadata only when unambiguous: if two arguments own
		// the same payload bytes but disagree on dims/element kind, a
		// first-match pick could hand back the wrong view — raw bytes
		// are the honest answer then.
		var match *Value
		ambiguous := false
		for i := range c.Args {
			a := c.Args[i]
			if a.Kind() != KindBlob {
				continue
			}
			b := a.AsBlob()
			if string(b.Data) != res {
				continue
			}
			if match == nil {
				m := a
				match = &m
			} else if !sameBlobMeta(match.AsBlob(), b) {
				ambiguous = true
			}
		}
		if match != nil && !ambiguous {
			return *match, nil
		}
		return BlobOf(blob.New([]byte(res))), nil
	}
	return Str(res), nil
}

// sameBlobMeta reports whether two blobs agree on element kind and dims.
func sameBlobMeta(a, b blob.Blob) bool {
	if a.Elem != b.Elem || len(a.Dims) != len(b.Dims) {
		return false
	}
	for i := range a.Dims {
		if a.Dims[i] != b.Dims[i] {
			return false
		}
	}
	return true
}

// evalCached evaluates a fragment through the engine's compile-once
// cache; *tcl.Script is immutable and interpreter-independent, so cached
// parses replay safely against the post-Reset interpreter.
func (e *tclEngine) evalCached(src string) (string, error) {
	s, err := e.progs.GetOrCompute(src, func() (*tcl.Script, error) {
		return tcl.CompileScript(src)
	})
	if err != nil {
		return "", err
	}
	return e.in.EvalScript(s)
}

// Reset recreates the embedded interpreter, discarding all procs and
// variables defined by previous fragments (but not the fragment cache).
func (e *tclEngine) Reset() {
	e.in = tcl.New()
	if e.out != nil {
		e.in.Out = e.out
	}
}

func (e *tclEngine) Evals() int64 { return e.evals }

// shellEngine runs commands through the simulated process table (the app
// function / sh(...) interface; §III-C notes BG/Q machines forbid it).
type shellEngine struct {
	sys *shell.System
	// owned marks an engine-created default system (no host machine was
	// provided); only owned state may be discarded on Reset.
	owned bool
	evals int64
}

func newShellEngine(h Host) Engine {
	e := &shellEngine{sys: h.Shell}
	if e.sys == nil {
		e.owned = true
		e.Reset()
	}
	return e
}

func (e *shellEngine) Name() string { return "sh" }

// Eval executes Code as the command word with Args as its argv; Expr is
// unused. The trailing newline of the captured stdout is stripped,
// matching command-substitution conventions.
func (e *shellEngine) Eval(c Call) (Value, error) {
	e.evals++
	if strings.TrimSpace(c.Code) == "" {
		return Value{}, fmt.Errorf("sh: empty command")
	}
	argv := make([]string, 0, 1+len(c.Args))
	argv = append(argv, c.Code)
	for _, a := range c.Args {
		argv = append(argv, a.Render())
	}
	out, err := e.sys.Exec(argv, "")
	if err != nil {
		return Value{}, err
	}
	return Str(strings.TrimRight(out, "\n")), nil
}

// Reset discards simulated shell state: an engine-owned process table
// (and its spawn accounting) is recreated from scratch, so PolicyReinit
// cannot leak state across tasks. A host-provided System is the
// machine shared by every rank and is deliberately left intact — one
// task's reinitialisation must not wipe the cluster.
func (e *shellEngine) Reset() {
	if e.owned {
		e.sys = shell.NewSystem(shell.ModeCluster, nil)
	}
}

func (e *shellEngine) Evals() int64 { return e.evals }
