// Package lang is the language-agnostic embedding subsystem of the
// reproduction: the single place where an interpreted language is wired
// into the Swift/T runtime. The paper's contribution — interlanguage
// parallel scripting (§III) — embeds Python, R, Tcl, and the shell as
// in-process libraries callable from Swift leaf tasks; in this repo each
// of those embeddings is one Engine implementation plus one Register
// call, and every other layer derives from the registry:
//
//   - type checking: internal/swift synthesizes the leaf builtin
//     (name(code, expr) -> string) from the registration, so a Swift
//     program may call any registered language;
//   - dispatch: the generated prelude's sw:leaf routes unknown leaf
//     names to the Tcl command <name>::eval, which Install registers on
//     every rank;
//   - execution: core.RunCompiled iterates Registered() at rank setup
//     and installs each engine lazily, with the paper's retain/reinit
//     state policy (§III-C) and per-language eval counters applied
//     uniformly.
//
// Adding a language therefore touches exactly one registration site; see
// the toy-engine test in internal/core for the end-to-end proof.
package lang

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/shell"
	"repro/internal/tcl"
)

// Policy selects what happens to embedded interpreter state between leaf
// tasks (paper §III-C): retain it — fast, but tasks can observe previous
// tasks' globals — or reinitialise for a clean slate.
type Policy int

// Interpreter state policies.
const (
	// PolicyRetain keeps interpreter state across tasks (the default;
	// "old interpreter state can also be used to store useful data if
	// the programmer is careful").
	PolicyRetain Policy = iota
	// PolicyReinit finalises and reinitialises the interpreter after
	// every task, clearing any state.
	PolicyReinit
)

// Engine is one embedded language engine instance. Each rank owns its
// own engines (created lazily on first use, like loading an interpreter
// library into the process), so no locking is needed inside an Engine.
type Engine interface {
	// Name is the language name: the Swift builtin, the Tcl dispatch
	// command <name>::eval, and the counter key are all derived from it.
	Name() string
	// EvalFragment executes code, then evaluates expr and returns its
	// string rendering — the Swift name(code, expr) contract. Engines
	// whose surface is narrower map onto it: the tcl engine evaluates
	// code (and expr, when present) as scripts; the sh engine receives
	// the argv packed as a Tcl list in code with expr empty.
	EvalFragment(code, expr string) (string, error)
	// Reset discards interpreter state (PolicyReinit). Engines without
	// retained state may make this a no-op.
	Reset()
	// Evals reports how many fragments this engine instance has
	// evaluated.
	Evals() int64
}

// Host is what the runtime provides an engine factory when a rank
// creates its engine instance.
type Host struct {
	// Out receives the language's program output (print/cat/puts/echo).
	Out io.Writer
	// Shell is the simulated machine's process table, for engines that
	// launch processes (nil outside a core run; such engines create a
	// default system lazily).
	Shell *shell.System
}

// Registration describes one embedded language.
type Registration struct {
	// Name is the language name; it must be a valid Swift identifier.
	Name string
	// NumArgs is the number of fixed string arguments of the Swift
	// builtin (2 for python(code, expr), 1 for tcl(code)).
	NumArgs int
	// Variadic permits extra string arguments beyond NumArgs (sh). The
	// full argument list reaches the engine packed as a Tcl list in
	// code.
	Variadic bool
	// New creates the per-rank engine instance.
	New func(h Host) Engine
}

var (
	regMu    sync.RWMutex
	registry = map[string]Registration{}
)

// Register adds a language to the registry. Registering a name twice
// panics: languages are process-global, like Tcl package names.
func Register(reg Registration) {
	if reg.Name == "" || reg.New == nil {
		panic("lang: Register needs a Name and a New factory")
	}
	if reg.NumArgs < 1 || reg.NumArgs > 2 {
		// EvalFragment carries at most (code, expr); wider fixed arity
		// has nowhere to go. Variadic languages receive the argv as a
		// packed list instead.
		panic(fmt.Sprintf("lang: Register(%q): NumArgs must be 1 or 2", reg.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[reg.Name]; dup {
		panic(fmt.Sprintf("lang: language %q registered twice", reg.Name))
	}
	registry[reg.Name] = reg
}

// Unregister removes a language (for tests that register toy engines).
func Unregister(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(registry, name)
}

// Lookup finds a registration by language name.
func Lookup(name string) (Registration, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	reg, ok := registry[name]
	return reg, ok
}

// Registered returns a snapshot of all registrations, sorted by name.
func Registered() []Registration {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Registration, 0, len(registry))
	for _, reg := range registry {
		out = append(out, reg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counters aggregates per-language fragment-evaluation counts across all
// ranks of a run. The language set is fixed at creation (one slot per
// registered language), so Add is a lock-free map read plus an atomic
// increment and is safe from every rank goroutine concurrently.
type Counters struct {
	m map[string]*atomic.Int64
}

// NewCounters creates one counter per currently-registered language.
func NewCounters() *Counters {
	c := &Counters{m: make(map[string]*atomic.Int64)}
	for _, reg := range Registered() {
		c.m[reg.Name] = &atomic.Int64{}
	}
	return c
}

// AddN counts n evaluations of the named language. Unknown names (a
// language registered after the run started) are ignored.
func (c *Counters) AddN(name string, n int64) {
	if ctr, ok := c.m[name]; ok {
		ctr.Add(n)
	}
}

// Snapshot returns the current per-language counts.
func (c *Counters) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(c.m))
	for name, ctr := range c.m {
		out[name] = ctr.Load()
	}
	return out
}

// Install registers the Tcl dispatch command <name>::eval for one
// language on one rank's interpreter. The engine is created lazily on
// first use (the paper's "load the interpreter library on demand"), the
// state policy is applied after every fragment, and each evaluation is
// counted under the language name.
func Install(in *tcl.Interp, reg Registration, h Host, policy Policy, counters *Counters) {
	var eng Engine // one instance per rank, created on first call
	in.RegisterCommand(reg.Name+"::eval", func(ti *tcl.Interp, args []string) (string, error) {
		code, expr, err := packArgs(reg, args[1:])
		if err != nil {
			return "", err
		}
		if eng == nil {
			eng = reg.New(h)
		}
		before := eng.Evals()
		res, err := eng.EvalFragment(code, expr)
		if counters != nil {
			// The engine's own counter is the source of truth; the
			// run-wide aggregate advances by whatever it reports.
			counters.AddN(reg.Name, eng.Evals()-before)
		}
		if policy == PolicyReinit {
			eng.Reset()
		}
		if err != nil {
			return "", fmt.Errorf("%s: %w", reg.Name, err)
		}
		return res, nil
	})
}

// packArgs maps the Tcl-level argument words of <name>::eval onto the
// Engine.EvalFragment(code, expr) contract: variadic languages get the
// whole argv packed as a Tcl list in code, two-argument languages get
// (code, expr), one-argument languages get (code, "").
func packArgs(reg Registration, argv []string) (code, expr string, err error) {
	if len(argv) < reg.NumArgs || (!reg.Variadic && len(argv) != reg.NumArgs) {
		return "", "", fmt.Errorf("usage: %s::eval takes %d argument(s), got %d",
			reg.Name, reg.NumArgs, len(argv))
	}
	if reg.Variadic {
		return tcl.FormatList(argv), "", nil
	}
	if reg.NumArgs >= 2 {
		return argv[0], argv[1], nil
	}
	return argv[0], "", nil
}
