// Package lang is the language-agnostic embedding subsystem of the
// reproduction: the single place where an interpreted language is wired
// into the Swift/T runtime. The paper's contribution — interlanguage
// parallel scripting (§III) — embeds Python, R, Tcl, and the shell as
// in-process libraries callable from Swift leaf tasks; in this repo each
// of those embeddings is one Engine implementation plus one Register
// call, and every other layer derives from the registry:
//
//   - type checking: internal/swift synthesizes the leaf builtin
//     (name(code, expr, args...) with typed extra arguments and a
//     context-typed result) from the registration's Signature, so a
//     Swift program may call any registered language;
//   - dispatch: the compiler emits sw:leafcall actions that route to the
//     Tcl command <name>::call — TD ids only, no rendered values — and
//     the prelude's sw:leaf string fallback routes to <name>::eval; both
//     are registered per rank by Install;
//   - execution: core.RunCompiled iterates Registered() at rank setup
//     and installs each engine lazily, with the paper's retain/reinit
//     state policy (§III-C) and per-language eval counters applied
//     uniformly; the typed surface moves arguments and results through
//     the DataPlane, so blob element data never renders as text.
//
// Adding a language therefore touches exactly one registration site; see
// the toy-engine test in internal/core for the end-to-end proof.
package lang

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/shell"
	"repro/internal/tcl"
)

// Policy selects what happens to embedded interpreter state between leaf
// tasks (paper §III-C): retain it — fast, but tasks can observe previous
// tasks' globals — or reinitialise for a clean slate.
type Policy int

// Interpreter state policies.
const (
	// PolicyRetain keeps interpreter state across tasks (the default;
	// "old interpreter state can also be used to store useful data if
	// the programmer is careful").
	PolicyRetain Policy = iota
	// PolicyReinit finalises and reinitialises the interpreter after
	// every task, clearing any state.
	PolicyReinit
)

// Call is one typed fragment-evaluation request (Engine v2): execute
// Code, then evaluate Expr and return its value. Args are pre-bound in
// the target interpreter as the variables argv1..argvN before Code runs
// (blob args become native vectors — a Python list-like view, an R
// numeric vector — with no string rendering of element data). Want is
// the kind the caller will store the result as; engines use it to
// disambiguate results with several faithful encodings (a Python list is
// a blob only when a blob is wanted, a rendering otherwise).
type Call struct {
	Code string
	Expr string
	Args []Value
	Want Kind
}

// Engine is one embedded language engine instance. Each rank owns its
// own engines (created lazily on first use, like loading an interpreter
// library into the process), so no locking is needed inside an Engine.
type Engine interface {
	// Name is the language name: the Swift builtin, the Tcl dispatch
	// commands <name>::eval and <name>::call, and the counter key are
	// all derived from it.
	Name() string
	// Eval executes one typed request and returns the typed result: the
	// Swift name(code, expr, args...) contract. Engines whose surface is
	// narrower map onto it: the tcl engine evaluates Code (its single
	// fixed argument) as a script; the sh engine treats Code as the
	// command word and Args as its argv.
	Eval(c Call) (Value, error)
	// Reset discards interpreter state (PolicyReinit). Engines without
	// retained state may make this a no-op.
	Reset()
	// Evals reports how many fragments this engine instance has
	// evaluated.
	Evals() int64
}

// Host is what the runtime provides an engine factory when a rank
// creates its engine instance.
type Host struct {
	// Out receives the language's program output (print/cat/puts/echo).
	Out io.Writer
	// Shell is the simulated machine's process table, for engines that
	// launch processes (nil outside a core run; such engines create a
	// default system lazily).
	Shell *shell.System
}

// ResultSpec pins the Swift-level result type of a language's leaf
// builtin. ResultDynamic (the zero value) lets the assignment context
// choose — `blob v = python(...)` types as blob, `float f = python(...)`
// as float — defaulting to string when unconstrained.
type ResultSpec uint8

// Result specs.
const (
	ResultDynamic ResultSpec = iota
	ResultString
	ResultInt
	ResultFloat
	ResultBlob
)

// Signature is the Swift-level calling convention of a language's leaf
// builtin — the registry's description of arg and return types, from
// which the type checker synthesizes the builtin and the compiler emits
// the typed dispatch.
type Signature struct {
	// Fixed is the number of fixed string arguments: 2 for
	// python(code, expr), 1 for tcl(code) and sh(cmd).
	Fixed int
	// Variadic permits extra typed arguments (string, int, float, or
	// blob) after the fixed prefix; they reach the engine as Call.Args
	// and are pre-bound in the interpreter as argv1..argvN.
	Variadic bool
	// Result pins the builtin's result type; ResultDynamic defers to the
	// Swift assignment context.
	Result ResultSpec
}

// Registration describes one embedded language.
type Registration struct {
	// Name is the language name; it must be a valid Swift identifier.
	Name string
	// Sig is the Swift-level signature of the leaf builtin.
	Sig Signature
	// New creates the per-rank engine instance.
	New func(h Host) Engine
}

var (
	regMu    sync.RWMutex
	registry = map[string]Registration{}
)

// Register adds a language to the registry. Registering a name twice
// panics: languages are process-global, like Tcl package names.
func Register(reg Registration) {
	if reg.Name == "" || reg.New == nil {
		panic("lang: Register needs a Name and a New factory")
	}
	if reg.Sig.Fixed < 1 || reg.Sig.Fixed > 2 {
		// Call carries at most (Code, Expr); wider fixed arity has
		// nowhere to go. Extra data travels as typed Args instead.
		panic(fmt.Sprintf("lang: Register(%q): Sig.Fixed must be 1 or 2", reg.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[reg.Name]; dup {
		panic(fmt.Sprintf("lang: language %q registered twice", reg.Name))
	}
	registry[reg.Name] = reg
}

// Unregister removes a language (for tests that register toy engines).
func Unregister(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(registry, name)
}

// Lookup finds a registration by language name.
func Lookup(name string) (Registration, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	reg, ok := registry[name]
	return reg, ok
}

// Registered returns a snapshot of all registrations, sorted by name.
func Registered() []Registration {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Registration, 0, len(registry))
	for _, reg := range registry {
		out = append(out, reg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counters aggregates per-language fragment-evaluation counts across all
// ranks of a run. The language set is fixed at creation (one slot per
// registered language), so Add is a lock-free map read plus an atomic
// increment and is safe from every rank goroutine concurrently.
type Counters struct {
	m map[string]*atomic.Int64
}

// NewCounters creates one counter per currently-registered language.
func NewCounters() *Counters {
	c := &Counters{m: make(map[string]*atomic.Int64)}
	for _, reg := range Registered() {
		c.m[reg.Name] = &atomic.Int64{}
	}
	return c
}

// AddN counts n evaluations of the named language. Unknown names (a
// language registered after the run started) are ignored.
func (c *Counters) AddN(name string, n int64) {
	if ctr, ok := c.m[name]; ok {
		ctr.Add(n)
	}
}

// Snapshot returns the current per-language counts.
func (c *Counters) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(c.m))
	for name, ctr := range c.m {
		out[name] = ctr.Load()
	}
	return out
}

// DataPlane is the typed data-store surface Install uses to move
// arguments and results between turbine data (TDs) and engines without
// rendering element data through strings: blob arguments pass by
// data-store reference (only their ids appear in the dispatch action)
// and the payload bytes flow store -> engine -> store directly. The
// Turbine layer implements it over the rank's ADLB client.
type DataPlane interface {
	// Load retrieves a closed TD as a typed Value (blob TDs keep their
	// dims and element kind).
	Load(id int64) (Value, error)
	// LoadBatch retrieves many closed TDs at once, in order. Over ADLB
	// this costs one RPC per owning server rather than one per id, which
	// is what makes container-scale gathers (vpack, multi-argument typed
	// calls) cheap.
	LoadBatch(ids []int64) ([]Value, error)
	// StoreAs stores a typed value into a TD of the named turbine type
	// ("integer", "float", "string", "blob", "void"), converting where
	// the kinds differ.
	StoreAs(id int64, td string, v Value) error
	// StoreVector appends element values of the named turbine type to a
	// container TD in a single batched store: one closed member TD per
	// element, at consecutive integer subscripts after any existing
	// members (0..len(elems)-1 for an empty container). The container's
	// write refcount is untouched; the caller drops its reference when
	// construction is complete.
	StoreVector(container int64, td string, elems []Value) error
	// LoadChunk retrieves many closed TDs as one columnar Chunk (row i
	// is ids[i]): the allocation-free counterpart of LoadBatch — a
	// million-float gather is two column buffers, not a million boxed
	// values. Over ADLB the chunk's columns may alias the RPC response
	// frame, valid until the next data-plane call; callers either finish
	// with the rows before then (gather -> pack -> store, one contiguous
	// window) or copy rows out.
	LoadChunk(ids []int64) (Chunk, error)
	// StoreChunk appends a columnar chunk to a container TD in a single
	// batched store, the Chunk counterpart of StoreVector: one closed
	// member TD per row at consecutive integer subscripts. The rows'
	// kinds choose the member types (int row -> integer TD, etc).
	StoreChunk(container int64, c Chunk) error
}

// Install registers the Tcl dispatch commands for one language on one
// rank's interpreter: <name>::eval, the string surface used by sh
// app-function code and direct Tcl callers, and — when a DataPlane is
// available — <name>::call, the typed surface the compiled sw:leafcall
// dispatch uses (out id, out type, then one TD id per argument). Both
// share a single engine instance created lazily on first use (the
// paper's "load the interpreter library on demand"); the state policy is
// applied after every fragment, and each evaluation is counted under the
// language name.
func Install(in *tcl.Interp, reg Registration, h Host, policy Policy, counters *Counters, dp DataPlane) {
	var eng Engine // one instance per rank, created on first call
	run := func(c Call) (Value, error) {
		if eng == nil {
			eng = reg.New(h)
		}
		before := eng.Evals()
		res, err := evalContained(eng, reg.Name, c)
		if counters != nil {
			// The engine's own counter is the source of truth; the
			// run-wide aggregate advances by whatever it reports.
			counters.AddN(reg.Name, eng.Evals()-before)
		}
		if policy == PolicyReinit {
			eng.Reset()
		}
		if err != nil {
			var te *TaskError
			if errors.As(err, &te) {
				return Value{}, err // already typed; keep it findable as-is
			}
			return Value{}, fmt.Errorf("%s: %w", reg.Name, err)
		}
		return res, nil
	}

	in.RegisterCommand(reg.Name+"::eval", func(ti *tcl.Interp, args []string) (string, error) {
		vals := make([]Value, len(args)-1)
		for i, a := range args[1:] {
			vals[i] = Str(a)
		}
		c, err := buildCall(reg, vals, KindString)
		if err != nil {
			return "", err
		}
		res, err := run(c)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	})

	if dp == nil {
		return
	}
	in.RegisterCommand(reg.Name+"::call", func(ti *tcl.Interp, args []string) (string, error) {
		if len(args) < 3 {
			return "", fmt.Errorf("usage: %s::call <out> <outtype> <argid>...", reg.Name)
		}
		out, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return "", fmt.Errorf("%s::call: bad out id %q", reg.Name, args[1])
		}
		outtype := args[2]
		ids := make([]int64, len(args)-3)
		for i, idStr := range args[3:] {
			id, err := strconv.ParseInt(idStr, 10, 64)
			if err != nil {
				return "", fmt.Errorf("%s::call: bad arg id %q", reg.Name, idStr)
			}
			ids[i] = id
		}
		// One columnar load for the whole argument vector: over ADLB this
		// is one RPC per owning server, not one per argument. Payloads are
		// copied out of the chunk (copyBytes=true) because engines may
		// retain argv bindings in interpreter state past the chunk's
		// backing frame's validity window.
		ck, err := dp.LoadChunk(ids)
		if err != nil {
			// Data-plane transfer failures are environmental, not a defect
			// of the fragment: retriable.
			return "", &TaskError{Engine: reg.Name, Code: "dataplane", Retriable: true, Err: err}
		}
		vals, err := ChunkToValues(ck, true)
		if err != nil {
			return "", &TaskError{Engine: reg.Name, Code: "dataplane", Retriable: true, Err: err}
		}
		c, err := buildCall(reg, vals, wantOf(outtype))
		if err != nil {
			return "", err
		}
		res, err := run(c)
		if err != nil {
			return "", err
		}
		if err := dp.StoreAs(out, outtype, res); err != nil {
			return "", &TaskError{Engine: reg.Name, Code: "dataplane", Retriable: true, Err: err}
		}
		return "", nil
	})
}

// evalContained runs one fragment with panic containment: a panic inside
// the engine fails this one task — typed and retriable — instead of
// tearing down the rank, and the engine is Reset before the error is
// returned (under every policy, PolicyRetain included: an interpreter
// that panicked may hold arbitrarily corrupted state, so retained state
// is forfeit on this failure path).
func evalContained(eng Engine, name string, c Call) (res Value, err error) {
	defer func() {
		if p := recover(); p != nil {
			eng.Reset()
			err = &TaskError{
				Engine:    name,
				Code:      "panic",
				Retriable: true,
				Err:       fmt.Errorf("panic during eval: %v", p),
			}
		}
	}()
	if ferr := faultinject.At(faultinject.SiteLangEvalPre); ferr != nil {
		return Value{}, &TaskError{Engine: name, Code: "fault", Retriable: true, Err: ferr}
	}
	return eng.Eval(c)
}

// buildCall maps an argument vector onto the Call contract per the
// registration's signature: the fixed prefix renders to Code (and Expr
// for two-argument languages), the rest stay typed in Args.
func buildCall(reg Registration, vals []Value, want Kind) (Call, error) {
	if len(vals) < reg.Sig.Fixed || (!reg.Sig.Variadic && len(vals) != reg.Sig.Fixed) {
		return Call{}, fmt.Errorf("usage: %s takes %d argument(s), got %d",
			reg.Name, reg.Sig.Fixed, len(vals))
	}
	c := Call{Code: vals[0].Render(), Want: want}
	rest := vals[1:]
	if reg.Sig.Fixed >= 2 {
		c.Expr = vals[1].Render()
		rest = vals[2:]
	}
	if len(rest) > 0 {
		c.Args = append([]Value(nil), rest...)
	}
	return c, nil
}

// wantOf maps a turbine type name to the result kind engines should aim
// for. Unknown and void destinations want a string (which StoreAs then
// discards for void).
func wantOf(td string) Kind {
	switch td {
	case "integer":
		return KindInt
	case "float":
		return KindFloat
	case "blob":
		return KindBlob
	}
	return KindString
}
