package lang

import (
	"io"
	"strings"
	"testing"

	"repro/internal/tcl"
)

// stateCases exercises the paper's §III-C retain/reinit semantics
// through the Engine interface for every stateful registered language:
// a fragment binds g, a later fragment reads it (Retain), and Reset
// clears it (Reinit). The shell holds no interpreter state and is
// covered separately.
var stateCases = []struct {
	name string
	set  string // fragment that binds g = 41
	read string // expr that reads g back
	want string
}{
	{"python", "g = 41", "g", "41"},
	{"r", "g <- 41", "g", "41"},
	{"tcl", "set g 41", "set g", "41"},
}

func TestEngineStateRetainAndReset(t *testing.T) {
	for _, tc := range stateCases {
		t.Run(tc.name, func(t *testing.T) {
			reg, ok := Lookup(tc.name)
			if !ok {
				t.Fatalf("language %q not registered", tc.name)
			}
			eng := reg.New(Host{Out: io.Discard})
			if eng.Name() != tc.name {
				t.Fatalf("Name() = %q", eng.Name())
			}
			if _, err := eng.EvalFragment(tc.set, ""); err != nil {
				t.Fatal(err)
			}
			got, err := eng.EvalFragment("", tc.read)
			if err != nil {
				t.Fatalf("retained state unreadable: %v", err)
			}
			if got != tc.want {
				t.Fatalf("retained read = %q, want %q", got, tc.want)
			}
			eng.Reset()
			if _, err := eng.EvalFragment("", tc.read); err == nil {
				t.Fatalf("%s: state survived Reset", tc.name)
			}
			if n := eng.Evals(); n != 3 {
				t.Fatalf("Evals() = %d, want 3", n)
			}
		})
	}
}

func TestShellEngineStatelessAndResetSafe(t *testing.T) {
	reg, ok := Lookup("sh")
	if !ok {
		t.Fatal("sh not registered")
	}
	eng := reg.New(Host{}) // no host shell: engine creates a default one
	argv := tcl.FormatList([]string{"echo", "hello", "world"})
	out, err := eng.EvalFragment(argv, "")
	if err != nil {
		t.Fatal(err)
	}
	if out != "hello world" {
		t.Fatalf("out = %q", out)
	}
	eng.Reset() // must be a harmless no-op
	if out, err = eng.EvalFragment(argv, ""); err != nil || out != "hello world" {
		t.Fatalf("after Reset: %q, %v", out, err)
	}
	if n := eng.Evals(); n != 2 {
		t.Fatalf("Evals() = %d, want 2", n)
	}
}

func TestTclEngineFragmentCacheSurvivesReset(t *testing.T) {
	// Like pylite/rlite, Reset must discard interpreter state but not
	// parses: under PolicyReinit a repeated tcl() fragment stays
	// compile-once.
	reg, _ := Lookup("tcl")
	eng := reg.New(Host{Out: io.Discard}).(*tclEngine)
	const frag = "set g 41; expr {$g + 1}"
	for i := 0; i < 5; i++ {
		out, err := eng.EvalFragment(frag, "")
		if err != nil || out != "42" {
			t.Fatalf("out = %q, %v", out, err)
		}
		eng.Reset()
	}
	if n := eng.progs.Len(); n != 1 {
		t.Fatalf("fragment cache = %d entries, want 1 (survived Reset)", n)
	}
	if _, err := eng.EvalFragment("set g", ""); err == nil {
		t.Fatal("state survived Reset")
	}
}

func TestInstallAppliesPolicyPerFragment(t *testing.T) {
	// Through the Tcl dispatch command (the path leaf tasks take), the
	// reinit policy must clear state after every fragment, for every
	// stateful language, without any per-language code.
	for _, tc := range stateCases {
		t.Run(tc.name, func(t *testing.T) {
			reg, _ := Lookup(tc.name)
			counters := NewCounters()
			// Build dispatch calls matching the registration's arity:
			// two-argument languages take (code, expr), one-argument
			// languages take a single fragment.
			setCall := tcl.FormatList([]string{reg.Name + "::eval", tc.set})
			readCall := tcl.FormatList([]string{reg.Name + "::eval", tc.read})
			if reg.NumArgs == 2 {
				setCall = tcl.FormatList([]string{reg.Name + "::eval", tc.set, ""})
				readCall = tcl.FormatList([]string{reg.Name + "::eval", "", tc.read})
			}

			retain := tcl.New()
			Install(retain, reg, Host{Out: io.Discard}, PolicyRetain, counters)
			if _, err := retain.Eval(setCall); err != nil {
				t.Fatal(err)
			}
			got, err := retain.Eval(readCall)
			if err != nil || got != tc.want {
				t.Fatalf("retain read = %q, %v", got, err)
			}

			reinit := tcl.New()
			Install(reinit, reg, Host{Out: io.Discard}, PolicyReinit, counters)
			if _, err := reinit.Eval(setCall); err != nil {
				t.Fatal(err)
			}
			if out, err := reinit.Eval(readCall); err == nil {
				t.Fatalf("reinit: state survived the fragment boundary (got %q)", out)
			}
			if n := counters.Snapshot()[tc.name]; n != 4 {
				t.Fatalf("counter = %d, want 4", n)
			}
		})
	}
}

func TestInstallArityErrors(t *testing.T) {
	reg, _ := Lookup("python")
	in := tcl.New()
	Install(in, reg, Host{Out: io.Discard}, PolicyRetain, nil)
	if _, err := in.Eval(`python::eval onlyone`); err == nil ||
		!strings.Contains(err.Error(), "takes 2 argument(s)") {
		t.Fatalf("err = %v", err)
	}
}

func TestRegistryLifecycle(t *testing.T) {
	if _, ok := Lookup("toylang"); ok {
		t.Fatal("toylang pre-registered")
	}
	reg := Registration{Name: "toylang", NumArgs: 1, New: func(h Host) Engine { return nil }}
	Register(reg)
	defer Unregister("toylang")
	if _, ok := Lookup("toylang"); !ok {
		t.Fatal("toylang not found after Register")
	}
	found := false
	for _, r := range Registered() {
		if r.Name == "toylang" {
			found = true
		}
	}
	if !found {
		t.Fatal("toylang missing from Registered()")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(reg)
}

func TestRegisterRejectsWideFixedArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NumArgs=3 did not panic")
		}
	}()
	Register(Registration{Name: "wide", NumArgs: 3, New: func(h Host) Engine { return nil }})
}
