package lang

import (
	"io"
	"strings"
	"testing"

	"repro/internal/blob"
	"repro/internal/shell"
	"repro/internal/tcl"
)

// The engine-generic invariants — state retain/reinit, typed argv
// binding, stale-argv unbinding, blob round-trip bit-exactness — live in
// internal/lang/conformance, which runs them as a matrix against every
// registered engine. This file keeps only the engine-specific behaviours
// (pylite Vec rendering, rlite prototype repacking, the tcl reattach
// rules, the shell's host-vs-owned system) and the registry/Install
// plumbing.

func TestShellEngineExecAndEvals(t *testing.T) {
	reg, ok := Lookup("sh")
	if !ok {
		t.Fatal("sh not registered")
	}
	eng := reg.New(Host{}) // no host shell: engine creates a default one
	c := Call{Code: "echo", Args: []Value{Str("hello"), Str("world")}}
	out, err := eng.Eval(c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Render() != "hello world" {
		t.Fatalf("out = %q", out.Render())
	}
	eng.Reset()
	if out, err = eng.Eval(c); err != nil || out.Render() != "hello world" {
		t.Fatalf("after Reset: %q, %v", out.Render(), err)
	}
	if n := eng.Evals(); n != 2 {
		t.Fatalf("Evals() = %d, want 2", n)
	}
}

func TestShellEngineResetClearsOwnedState(t *testing.T) {
	// The PolicyReinit invariant: simulated shell state accumulated by
	// previous tasks (the engine-owned process table and its spawn
	// accounting) must not survive Reset.
	reg, _ := Lookup("sh")
	eng := reg.New(Host{}).(*shellEngine)
	if _, err := eng.Eval(Call{Code: "echo", Args: []Value{Str("x")}}); err != nil {
		t.Fatal(err)
	}
	if eng.sys.Spawns() == 0 {
		t.Fatal("no spawn recorded")
	}
	before := eng.sys
	eng.Reset()
	if eng.sys == before {
		t.Fatal("Reset kept the owned system instance")
	}
	if n := eng.sys.Spawns(); n != 0 {
		t.Fatalf("spawn state survived Reset: %d", n)
	}
}

func TestShellEngineResetKeepsHostSystem(t *testing.T) {
	// A host-provided System is the machine shared by every rank; one
	// engine's reinitialisation must not wipe it.
	sys := shell.NewSystem(shell.ModeCluster, nil)
	reg, _ := Lookup("sh")
	eng := reg.New(Host{Shell: sys}).(*shellEngine)
	if _, err := eng.Eval(Call{Code: "echo", Args: []Value{Str("x")}}); err != nil {
		t.Fatal(err)
	}
	eng.Reset()
	if eng.sys != sys {
		t.Fatal("Reset replaced the host-provided system")
	}
	if sys.Spawns() != 1 {
		t.Fatalf("host spawn accounting = %d, want 1", sys.Spawns())
	}
}

func TestTclEngineFragmentCacheSurvivesReset(t *testing.T) {
	// Like pylite/rlite, Reset must discard interpreter state but not
	// parses: under PolicyReinit a repeated tcl() fragment stays
	// compile-once.
	reg, _ := Lookup("tcl")
	eng := reg.New(Host{Out: io.Discard}).(*tclEngine)
	const fragSrc = "set g 41; expr {$g + 1}"
	for i := 0; i < 5; i++ {
		out, err := eng.Eval(Call{Code: fragSrc})
		if err != nil || out.Render() != "42" {
			t.Fatalf("out = %q, %v", out.Render(), err)
		}
		eng.Reset()
	}
	if n := eng.progs.Len(); n != 1 {
		t.Fatalf("fragment cache = %d entries, want 1 (survived Reset)", n)
	}
	if _, err := eng.Eval(Call{Code: "set g"}); err == nil {
		t.Fatal("state survived Reset")
	}
}

func TestPythonVecRoundTripBitExact(t *testing.T) {
	// A blob bound into Python and returned unmodified must come back
	// bit-exact with dims and element kind intact (zero-copy Vec).
	b := blob.FromFloat32s([]float32{1.5, -2.5, 3.75, 0.125, 9, 10})
	b.Dims = []int{2, 3}
	reg, _ := Lookup("python")
	eng := reg.New(Host{Out: io.Discard})
	res, err := eng.Eval(Call{Code: "", Expr: "argv1", Args: []Value{BlobOf(b)}, Want: KindBlob})
	if err != nil {
		t.Fatal(err)
	}
	got := res.AsBlob()
	if string(got.Data) != string(b.Data) || got.Elem != blob.ElemF32 ||
		len(got.Dims) != 2 || got.Dims[0] != 2 || got.Dims[1] != 3 {
		t.Fatalf("round trip mangled blob: %+v", got)
	}
}

func TestPythonVecRendersAsListInStringContext(t *testing.T) {
	// A vector result in a string context must render like a list — raw
	// payload bytes would be garbage to printf — matching fresh lists
	// and the R engine's deparse behaviour.
	reg, _ := Lookup("python")
	eng := reg.New(Host{Out: io.Discard})
	res, err := eng.Eval(Call{Expr: "argv1", Args: []Value{Floats([]float64{1.5, 2.5})}, Want: KindString})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Render(); got != "[1.5, 2.5]" {
		t.Fatalf("string-context vector = %q", got)
	}
}

func TestPythonVecMutatesInPlaceTyped(t *testing.T) {
	b := blob.FromInt32s([]int32{10, 20, 30})
	reg, _ := Lookup("python")
	eng := reg.New(Host{Out: io.Discard})
	res, err := eng.Eval(Call{Code: "argv1[1] = 21", Expr: "argv1", Args: []Value{BlobOf(b)}, Want: KindBlob})
	if err != nil {
		t.Fatal(err)
	}
	v, err := blob.ToInt32s(blob.Blob{Data: res.AsBlob().Data})
	if err != nil || v[1] != 21 || res.AsBlob().Elem != blob.ElemI32 {
		t.Fatalf("mutation lost: %v, %v", v, err)
	}
}

func TestREngineRepacksLikePrototype(t *testing.T) {
	// An R identity fragment over an int32 blob must return int32 bytes
	// (PackLike prefers the argument prototype), and arithmetic results
	// that leave the int32 domain must fall back to float64.
	b := blob.FromInt32s([]int32{1, 2, 3})
	b.Dims = []int{3, 1}
	reg, _ := Lookup("r")

	eng := reg.New(Host{Out: io.Discard})
	res, err := eng.Eval(Call{Code: "x <- argv1", Expr: "x", Args: []Value{BlobOf(b)}, Want: KindBlob})
	if err != nil {
		t.Fatal(err)
	}
	got := res.AsBlob()
	if string(got.Data) != string(b.Data) || got.Elem != blob.ElemI32 || len(got.Dims) != 2 {
		t.Fatalf("identity not bit-exact: %+v", got)
	}

	res, err = eng.Eval(Call{Code: "", Expr: "argv1 / 2", Args: []Value{BlobOf(b)}, Want: KindBlob})
	if err != nil {
		t.Fatal(err)
	}
	got = res.AsBlob()
	if got.Elem != blob.ElemF64 {
		t.Fatalf("fractional result elem = %v, want float64", got.Elem)
	}
	xs, _ := got.Floats()
	if len(xs) != 3 || xs[0] != 0.5 || xs[2] != 1.5 {
		t.Fatalf("halved = %v", xs)
	}
}

func TestREngineRejectsInexactInt64(t *testing.T) {
	// R numerics are doubles: an int64 beyond 2^53 would round silently
	// and then repack to the wrong integer; it must be refused instead.
	huge := BlobOf(blob.FromInt64s([]int64{1<<53 + 1}))
	reg, _ := Lookup("r")
	eng := reg.New(Host{Out: io.Discard})
	_, err := eng.Eval(Call{Code: "", Expr: "argv1", Args: []Value{huge}, Want: KindBlob})
	if err == nil || !strings.Contains(err.Error(), "not exactly representable") {
		t.Fatalf("err = %v", err)
	}
	// Values inside the exact range stay fine.
	ok := BlobOf(blob.FromInt64s([]int64{1 << 53, -(1 << 53)}))
	if _, err := eng.Eval(Call{Code: "", Expr: "argv1", Args: []Value{ok}, Want: KindBlob}); err != nil {
		t.Fatal(err)
	}
}

func TestREngineMultiBlobArgsKeepTheirOwnMetadata(t *testing.T) {
	// With several blob arguments, a result that is one of them must
	// repack under ITS element view, never the first argument's.
	a := BlobOf(blob.FromInt32s([]int32{9, 9, 9}))
	b := blob.FromFloat64s([]float64{1, 2, 3})
	reg, _ := Lookup("r")
	eng := reg.New(Host{Out: io.Discard})
	res, err := eng.Eval(Call{Expr: "argv2", Args: []Value{a, BlobOf(b)}, Want: KindBlob})
	if err != nil {
		t.Fatal(err)
	}
	got := res.AsBlob()
	if got.Elem != blob.ElemF64 || string(got.Data) != string(b.Data) {
		t.Fatalf("argv2 repacked under wrong view: %+v", got)
	}
	// A fresh vector with multiple blob args is ambiguous: safe float64.
	res, err = eng.Eval(Call{Expr: "argv1 + 1", Args: []Value{a, BlobOf(b)}, Want: KindBlob})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AsBlob(); got.Elem != blob.ElemF64 {
		t.Fatalf("ambiguous fresh vector elem = %v, want float64", got.Elem)
	}
}

func TestJuliaEngineFreshIntResultStaysExactWithI64Prototype(t *testing.T) {
	// A fresh all-integer result with an int64 blob prototype must pack
	// on the exact integer path: narrowing through float64 would reject
	// 2^53+1 even though the prototype's own element kind holds it.
	const big = int64(1)<<53 + 1
	b := blob.FromInt64s([]int64{big, 2, 3})
	b.Dims = []int{3}
	reg, _ := Lookup("julia")
	eng := reg.New(Host{Out: io.Discard})
	res, err := eng.Eval(Call{Code: "y = argv1 .+ 0", Expr: "y", Args: []Value{BlobOf(b)}, Want: KindBlob})
	if err != nil {
		t.Fatal(err)
	}
	got := res.AsBlob()
	if got.Elem != blob.ElemI64 {
		t.Fatalf("elem = %v, want int64", got.Elem)
	}
	ns, _ := blob.ToInt64s(blob.Blob{Data: got.Data})
	if len(ns) != 3 || ns[0] != big {
		t.Fatalf("big int mangled: %v", ns)
	}
	if len(got.Dims) != 1 || got.Dims[0] != 3 {
		t.Fatalf("dims = %v, want [3]", got.Dims)
	}
	// A genuinely fractional result still falls through to PackLike's
	// float64 fallback rather than erroring.
	res, err = eng.Eval(Call{Code: "", Expr: "argv1 ./ 2", Args: []Value{BlobOf(blob.FromInt64s([]int64{1, 3}))}, Want: KindBlob})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AsBlob(); got.Elem != blob.ElemF64 {
		t.Fatalf("fractional result elem = %v, want float64", got.Elem)
	}
}

func TestJuliaEngineRepacksLikePrototype(t *testing.T) {
	// Like rlite: a fresh vector result adopts the sole blob argument's
	// element view when values permit (int32 here), so narrow identity
	// arithmetic stays narrow.
	b := blob.FromInt32s([]int32{1, 2, 3})
	reg, _ := Lookup("julia")
	eng := reg.New(Host{Out: io.Discard})
	res, err := eng.Eval(Call{Code: "y = argv1 .* 2", Expr: "y", Args: []Value{BlobOf(b)}, Want: KindBlob})
	if err != nil {
		t.Fatal(err)
	}
	got := res.AsBlob()
	if got.Elem != blob.ElemI32 {
		t.Fatalf("elem = %v, want int32", got.Elem)
	}
	ns, _ := blob.ToInt32s(blob.Blob{Data: got.Data})
	if len(ns) != 3 || ns[2] != 6 {
		t.Fatalf("doubled = %v", ns)
	}
}

func TestTclEngineBlobPassthrough(t *testing.T) {
	// Tcl is strings-only: blob args bind as raw payload bytes, and an
	// unmodified result reattaches the argument's metadata.
	b := blob.FromFloat64s([]float64{1, 2})
	b.Dims = []int{2}
	reg, _ := Lookup("tcl")
	eng := reg.New(Host{Out: io.Discard})
	res, err := eng.Eval(Call{Code: "set argv1", Args: []Value{BlobOf(b)}, Want: KindBlob})
	if err != nil {
		t.Fatal(err)
	}
	got := res.AsBlob()
	if string(got.Data) != string(b.Data) || got.Elem != blob.ElemF64 || len(got.Dims) != 1 {
		t.Fatalf("passthrough mangled blob: %+v", got)
	}
}

func TestTclEngineAmbiguousReattachFallsBackToRawBytes(t *testing.T) {
	// Two blob args with identical payload bytes but conflicting
	// metadata: reattaching either view would be a guess, so the result
	// must come back as raw bytes.
	data := []float32{1.5, 2.5}
	a := blob.FromFloat32s(data) // 8 bytes, ElemF32
	b := blob.Blob{Data: append([]byte(nil), a.Data...), Elem: blob.ElemF64}
	reg, _ := Lookup("tcl")
	eng := reg.New(Host{Out: io.Discard})
	res, err := eng.Eval(Call{Code: "set argv2", Args: []Value{BlobOf(a), BlobOf(b)}, Want: KindBlob})
	if err != nil {
		t.Fatal(err)
	}
	got := res.AsBlob()
	if got.Elem != blob.ElemBytes || string(got.Data) != string(a.Data) {
		t.Fatalf("ambiguous reattach: %+v", got)
	}
}

// memPlane is an in-memory DataPlane for exercising the typed dispatch
// surface without a Turbine deployment.
type memPlane struct {
	vals map[int64]Value
	tds  map[int64]string
}

func newMemPlane() *memPlane {
	return &memPlane{vals: map[int64]Value{}, tds: map[int64]string{}}
}

func (p *memPlane) Load(id int64) (Value, error) {
	v, ok := p.vals[id]
	if !ok {
		return Value{}, io.EOF
	}
	return v, nil
}

func (p *memPlane) LoadBatch(ids []int64) ([]Value, error) {
	out := make([]Value, len(ids))
	for i, id := range ids {
		v, err := p.Load(id)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (p *memPlane) LoadChunk(ids []int64) (Chunk, error) {
	vals, err := p.LoadBatch(ids)
	if err != nil {
		return Chunk{}, err
	}
	return ValuesToChunk(vals)
}

func (p *memPlane) StoreChunk(container int64, c Chunk) error {
	elems, err := ChunkToValues(c, true)
	if err != nil {
		return err
	}
	return p.StoreVector(container, "chunk", elems)
}

func (p *memPlane) StoreAs(id int64, td string, v Value) error {
	p.vals[id] = v
	p.tds[id] = td
	return nil
}

func (p *memPlane) StoreVector(container int64, td string, elems []Value) error {
	// The in-memory plane has no containers; record the elements under
	// synthetic member ids so tests can observe what was stored.
	p.tds[container] = "container/" + td
	for i, v := range elems {
		p.vals[container*1000+int64(i)] = v
	}
	return nil
}

func TestInstallTypedCallSurface(t *testing.T) {
	// python::call moves a blob argument from the plane into the engine
	// and the typed result back, with only ids in the Tcl words.
	reg, _ := Lookup("python")
	dp := newMemPlane()
	dp.vals[1] = Str("total = sum(argv1)")
	dp.vals[2] = Str("total")
	dp.vals[3] = Floats([]float64{1, 2, 3.5})
	in := tcl.New()
	counters := NewCounters()
	Install(in, reg, Host{Out: io.Discard}, PolicyRetain, counters, dp)
	if _, err := in.Eval("python::call 9 float 1 2 3"); err != nil {
		t.Fatal(err)
	}
	res, ok := dp.vals[9]
	if !ok || dp.tds[9] != "float" {
		t.Fatalf("result not stored: %v %q", ok, dp.tds[9])
	}
	f, err := res.AsFloat()
	if err != nil || f != 6.5 {
		t.Fatalf("sum = %v (%v), want 6.5", f, err)
	}
	if n := counters.Snapshot()["python"]; n != 1 {
		t.Fatalf("counter = %d, want 1", n)
	}
}

func TestInstallArityErrors(t *testing.T) {
	reg, _ := Lookup("python")
	in := tcl.New()
	Install(in, reg, Host{Out: io.Discard}, PolicyRetain, nil, nil)
	if _, err := in.Eval(`python::eval onlyone`); err == nil ||
		!strings.Contains(err.Error(), "takes 2 argument(s)") {
		t.Fatalf("err = %v", err)
	}
}

func TestRegistryLifecycle(t *testing.T) {
	if _, ok := Lookup("toylang"); ok {
		t.Fatal("toylang pre-registered")
	}
	reg := Registration{Name: "toylang", Sig: Signature{Fixed: 1}, New: func(h Host) Engine { return nil }}
	Register(reg)
	defer Unregister("toylang")
	if _, ok := Lookup("toylang"); !ok {
		t.Fatal("toylang not found after Register")
	}
	found := false
	for _, r := range Registered() {
		if r.Name == "toylang" {
			found = true
		}
	}
	if !found {
		t.Fatal("toylang missing from Registered()")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(reg)
}

func TestRegisterRejectsWideFixedArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fixed=3 did not panic")
		}
	}()
	Register(Registration{Name: "wide", Sig: Signature{Fixed: 3}, New: func(h Host) Engine { return nil }})
}

func TestValueConversions(t *testing.T) {
	if got := Int(42).Render(); got != "42" {
		t.Fatalf("int render = %q", got)
	}
	if got := Float(2.0).Render(); got != "2.0" {
		t.Fatalf("float render = %q", got)
	}
	if n, err := Str(" 7 ").AsInt(); err != nil || n != 7 {
		t.Fatalf("str->int = %d, %v", n, err)
	}
	if n, err := Float(3.0).AsInt(); err != nil || n != 3 {
		t.Fatalf("integral float->int = %d, %v", n, err)
	}
	if _, err := Float(3.5).AsInt(); err == nil {
		t.Fatal("3.5 converted to int")
	}
	if f, err := Int(3).AsFloat(); err != nil || f != 3.0 {
		t.Fatalf("int->float = %v, %v", f, err)
	}
	if _, err := Floats([]float64{1}).AsInt(); err == nil {
		t.Fatal("blob converted to int")
	}
	b := Int(5).AsBlob()
	if b.Elem != blob.ElemI64 || b.Count() != 1 {
		t.Fatalf("int->blob = %+v", b)
	}
	var zero Value
	if zero.Kind() != KindString || zero.Render() != "" {
		t.Fatal("zero Value is not the empty string")
	}
}
