package lang

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/memo"
)

// Pool is the per-tenant engine pool of the serving layer: a bounded set
// of warm engine instances keyed by (language, tenant), with PolicyReinit
// isolation enforced at tenant boundaries. The serving model (see
// internal/serve) keeps interpreters alive across requests so that
// compile-once fragment caches amortize — but interpreter *state* is the
// tenant's session, and one tenant's Python globals must never be
// observable from another tenant's request. The pool reconciles the two:
//
//   - a checkout that finds this tenant's own warm engine reuses it as-is
//     (state is the tenant's session; parse caches are hot);
//   - at capacity, the least-recently-used engine of the same language is
//     Reset and re-tagged for the new tenant — the reset discards all
//     interpreter state (the isolation boundary) while the engine's
//     internal compile caches survive, exactly as under PolicyReinit
//     (engines guarantee Reset clears state but not parses);
//   - an LRU victim of a different language is dropped and a fresh engine
//     is created.
//
// A Pool is used by a single goroutine (each serve worker rank owns one);
// its counters are atomics only so that many ranks' pools can report into
// one run-wide PoolStats.
type Pool struct {
	host Host
	max  int
	seq  int64
	m    map[poolKey]*poolEntry
	st   *PoolStats
}

type poolKey struct{ lang, tenant string }

type poolEntry struct {
	eng     Engine
	lastUse int64
	// parse is the engine's parse-cache counters as of the last Eval, so
	// the pool can report deltas into the shared PoolStats (engines that
	// don't implement ParseCacheStatser never update it).
	parse memo.BudgetStats
}

// ParseCacheStatser is implemented by engines whose fragment parse caches
// are byte-budgeted (python, julia); the pool aggregates their counters
// into PoolStats for the serving layer's /statsz.
type ParseCacheStatser interface {
	ParseCacheStats() memo.BudgetStats
}

// DefaultPoolEngines bounds resident engines per pool when the caller
// passes a non-positive max: enough for every standard language times a
// couple of tenants without letting a tenant sweep create one interpreter
// per request.
const DefaultPoolEngines = 16

// NewPool creates an engine pool bounded to max resident engines,
// reporting into st (which may be shared across ranks; nil allocates a
// private one).
func NewPool(h Host, max int, st *PoolStats) *Pool {
	if max < 1 {
		max = DefaultPoolEngines
	}
	if st == nil {
		st = &PoolStats{}
	}
	return &Pool{host: h, max: max, m: make(map[poolKey]*poolEntry), st: st}
}

// Stats returns the pool's counter block.
func (p *Pool) Stats() *PoolStats { return p.st }

// Checkout returns a warm engine for (language, tenant), creating,
// resetting, or evicting per the pool policy above. The returned engine
// is exclusively the caller's until the next Checkout on this pool.
func (p *Pool) Checkout(language, tenant string) (Engine, error) {
	e, err := p.checkout(language, tenant)
	if err != nil {
		return nil, err
	}
	return e.eng, nil
}

func (p *Pool) checkout(language, tenant string) (*poolEntry, error) {
	p.st.Checkouts.Add(1)
	p.seq++
	key := poolKey{language, tenant}
	if e, ok := p.m[key]; ok {
		e.lastUse = p.seq
		return e, nil
	}
	reg, ok := Lookup(language)
	if !ok {
		return nil, fmt.Errorf("lang: pool checkout of unregistered language %q", language)
	}
	if len(p.m) >= p.max {
		vKey, victim := p.lruEntry()
		delete(p.m, vKey)
		if vKey.lang == language {
			// Tenant switch on a warm engine: state is wiped (isolation),
			// compile caches survive (warmth).
			victim.eng.Reset()
			p.st.Resets.Add(1)
			p.st.TenantSwitches.Add(1)
			victim.lastUse = p.seq
			p.m[key] = victim
			return victim, nil
		}
		p.st.Evictions.Add(1)
	}
	eng := reg.New(p.host)
	p.st.Creates.Add(1)
	e := &poolEntry{eng: eng, lastUse: p.seq}
	p.m[key] = e
	return e, nil
}

func (p *Pool) lruEntry() (poolKey, *poolEntry) {
	var bestKey poolKey
	var best *poolEntry
	for k, e := range p.m {
		if best == nil || e.lastUse < best.lastUse {
			bestKey, best = k, e
		}
	}
	return bestKey, best
}

// Eval runs one contained fragment evaluation against the tenant's
// pooled engine: checkout, panic-contained Eval (a panicking interpreter
// fails this one request, is Reset, and the typed TaskError reports it
// retriable), then the optional per-request reinit policy. Engine eval
// counts aggregate into the pool's stats.
func (p *Pool) Eval(language, tenant string, c Call, policy Policy) (Value, error) {
	e, err := p.checkout(language, tenant)
	if err != nil {
		return Value{}, err
	}
	eng := e.eng
	before := eng.Evals()
	res, evalErr := evalContained(eng, language, c)
	p.st.Evals.Add(eng.Evals() - before)
	if cs, ok := eng.(ParseCacheStatser); ok {
		now := cs.ParseCacheStats()
		p.st.ParseHits.Add(now.Hits - e.parse.Hits)
		p.st.ParseMisses.Add(now.Misses - e.parse.Misses)
		p.st.ParseBytesEvicted.Add(now.BytesEvicted - e.parse.BytesEvicted)
		e.parse = now
	}
	if policy == PolicyReinit {
		eng.Reset()
		p.st.Resets.Add(1)
	}
	if evalErr != nil {
		var te *TaskError
		if errors.As(evalErr, &te) {
			return Value{}, evalErr
		}
		return Value{}, fmt.Errorf("%s: %w", language, evalErr)
	}
	return res, nil
}

// Resident reports how many engines the pool currently holds.
func (p *Pool) Resident() int { return len(p.m) }

// PoolStats aggregates engine-pool counters, possibly across many ranks'
// pools. Mirrored by PoolStatsSnapshot (reflection-locked in tests).
type PoolStats struct {
	// Checkouts counts every engine checkout (pool hits included).
	Checkouts atomic.Int64
	// Creates counts fresh engine instantiations.
	Creates atomic.Int64
	// Resets counts engine state wipes (tenant switches plus per-request
	// reinit policy; containment resets are counted by the engines'
	// TaskError path, not here).
	Resets atomic.Int64
	// TenantSwitches counts warm engines re-tagged across a tenant
	// boundary (always accompanied by a Reset).
	TenantSwitches atomic.Int64
	// Evictions counts resident engines dropped to make room for a
	// different language's engine.
	Evictions atomic.Int64
	// Evals counts fragment evaluations through Pool.Eval.
	Evals atomic.Int64
	// ParseHits/ParseMisses/ParseBytesEvicted aggregate the byte-budgeted
	// fragment parse caches of pooled engines that expose them
	// (ParseCacheStatser: python, julia).
	ParseHits         atomic.Int64
	ParseMisses       atomic.Int64
	ParseBytesEvicted atomic.Int64
}

// PoolStatsSnapshot is the plain-int64 copy of PoolStats.
type PoolStatsSnapshot struct {
	Checkouts         int64 `json:"checkouts"`
	Creates           int64 `json:"creates"`
	Resets            int64 `json:"resets"`
	TenantSwitches    int64 `json:"tenant_switches"`
	Evictions         int64 `json:"evictions"`
	Evals             int64 `json:"evals"`
	ParseHits         int64 `json:"parse_hits"`
	ParseMisses       int64 `json:"parse_misses"`
	ParseBytesEvicted int64 `json:"parse_bytes_evicted"`
}

// Snapshot copies the counters.
func (s *PoolStats) Snapshot() PoolStatsSnapshot {
	return PoolStatsSnapshot{
		Checkouts:         s.Checkouts.Load(),
		Creates:           s.Creates.Load(),
		Resets:            s.Resets.Load(),
		TenantSwitches:    s.TenantSwitches.Load(),
		Evictions:         s.Evictions.Load(),
		Evals:             s.Evals.Load(),
		ParseHits:         s.ParseHits.Load(),
		ParseMisses:       s.ParseMisses.Load(),
		ParseBytesEvicted: s.ParseBytesEvicted.Load(),
	}
}
