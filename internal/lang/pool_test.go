package lang

import (
	"errors"
	"io"
	"testing"

	"repro/internal/statstest"
)

// pyState sets a Python global for tenant, via the pool.
func pyState(t *testing.T, p *Pool, tenant, code string) {
	t.Helper()
	if _, err := p.Eval("python", tenant, Call{Code: code, Expr: "0", Want: KindInt}, PolicyRetain); err != nil {
		t.Fatalf("tenant %s: %s: %v", tenant, code, err)
	}
}

// pyRead evaluates a Python expression for tenant and returns its render.
func pyRead(t *testing.T, p *Pool, tenant, expr string) string {
	t.Helper()
	v, err := p.Eval("python", tenant, Call{Code: "", Expr: expr, Want: KindString}, PolicyRetain)
	if err != nil {
		t.Fatalf("tenant %s: eval %s: %v", tenant, expr, err)
	}
	return v.Render()
}

func TestPoolSameTenantKeepsState(t *testing.T) {
	p := NewPool(Host{Out: io.Discard}, 4, nil)
	pyState(t, p, "acme", "x = 41")
	if got := pyRead(t, p, "acme", "x + 1"); got != "42" {
		t.Fatalf("retained state read = %q, want 42", got)
	}
	if n := p.Stats().Creates.Load(); n != 1 {
		t.Fatalf("creates = %d, want 1 (second checkout must reuse)", n)
	}
}

func TestPoolTenantsIsolatedUnderCapacity(t *testing.T) {
	p := NewPool(Host{Out: io.Discard}, 4, nil)
	pyState(t, p, "acme", "x = 1")
	pyState(t, p, "globex", "x = 2")
	if got := pyRead(t, p, "acme", "x"); got != "1" {
		t.Fatalf("acme x = %q after globex wrote, want 1", got)
	}
	if got := pyRead(t, p, "globex", "x"); got != "2" {
		t.Fatalf("globex x = %q, want 2", got)
	}
	if n := p.Stats().Creates.Load(); n != 2 {
		t.Fatalf("creates = %d, want one engine per tenant", n)
	}
	if n := p.Stats().Resets.Load(); n != 0 {
		t.Fatalf("resets = %d, want 0 under capacity", n)
	}
}

func TestPoolTenantSwitchResetsReusedEngine(t *testing.T) {
	p := NewPool(Host{Out: io.Discard}, 1, nil)
	pyState(t, p, "acme", "secret = 'acme-key'")
	// Capacity 1: globex's checkout must reuse acme's engine, reset —
	// acme's global must be undefined in globex's view.
	if _, err := p.Eval("python", "globex",
		Call{Code: "", Expr: "secret", Want: KindString}, PolicyRetain); err == nil {
		t.Fatal("tenant switch leaked interpreter state across the boundary")
	}
	st := p.Stats().Snapshot()
	if st.TenantSwitches != 1 || st.Resets != 1 {
		t.Fatalf("switches=%d resets=%d, want 1/1", st.TenantSwitches, st.Resets)
	}
	if st.Creates != 1 {
		t.Fatalf("creates = %d, want 1 (engine reused, not recreated)", st.Creates)
	}
	if p.Resident() != 1 {
		t.Fatalf("resident = %d, want capacity bound 1", p.Resident())
	}
}

func TestPoolCrossLanguageEvictionDropsEngine(t *testing.T) {
	p := NewPool(Host{Out: io.Discard}, 1, nil)
	pyState(t, p, "acme", "x = 1")
	if _, err := p.Eval("tcl", "acme", Call{Code: "set y 5", Want: KindString}, PolicyRetain); err != nil {
		t.Fatal(err)
	}
	st := p.Stats().Snapshot()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (python engine dropped for tcl)", st.Evictions)
	}
	if st.Creates != 2 {
		t.Fatalf("creates = %d, want 2", st.Creates)
	}
	if p.Resident() != 1 {
		t.Fatalf("resident = %d, want 1", p.Resident())
	}
}

func TestPoolEvictsLeastRecentlyUsed(t *testing.T) {
	p := NewPool(Host{Out: io.Discard}, 2, nil)
	pyState(t, p, "a", "x = 'a'")
	pyState(t, p, "b", "x = 'b'")
	pyState(t, p, "a", "x = x") // touch a: b becomes LRU
	pyState(t, p, "c", "x = 'c'")
	// b's engine was the victim; a must still be warm (no switch for a).
	if got := pyRead(t, p, "a", "x"); got != "a" {
		t.Fatalf("a's state lost: x = %q", got)
	}
	if n := p.Stats().TenantSwitches.Load(); n != 1 {
		t.Fatalf("tenant switches = %d, want 1 (b -> c only)", n)
	}
}

func TestPoolUnknownLanguage(t *testing.T) {
	p := NewPool(Host{Out: io.Discard}, 2, nil)
	if _, err := p.Checkout("cobol", "acme"); err == nil {
		t.Fatal("checkout of unregistered language succeeded")
	}
	if _, err := p.Eval("cobol", "acme", Call{}, PolicyRetain); err == nil {
		t.Fatal("eval via unregistered language succeeded")
	}
}

// panicEngine panics on Eval containing a sentinel, for containment tests.
type panicEngine struct{ evals, resets int64 }

func (e *panicEngine) Name() string { return "panicky" }
func (e *panicEngine) Eval(c Call) (Value, error) {
	e.evals++
	if c.Code == "boom" {
		panic("interpreter blew up")
	}
	return Str("ok"), nil
}
func (e *panicEngine) Reset()       { e.resets++ }
func (e *panicEngine) Evals() int64 { return e.evals }

func TestPoolEvalContainsPanics(t *testing.T) {
	eng := &panicEngine{}
	Register(Registration{Name: "panicky", Sig: Signature{Fixed: 1},
		New: func(h Host) Engine { return eng }})
	defer Unregister("panicky")

	p := NewPool(Host{}, 2, nil)
	_, err := p.Eval("panicky", "acme", Call{Code: "boom"}, PolicyRetain)
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("panic surfaced as %v, want *TaskError", err)
	}
	if !te.Retriable || te.Engine != "panicky" {
		t.Fatalf("TaskError = %+v, want retriable, engine panicky", te)
	}
	if eng.resets != 1 {
		t.Fatalf("engine resets = %d, want 1 (containment forfeits state)", eng.resets)
	}
	// The pool entry survives containment: next eval reuses the reset engine.
	if _, err := p.Eval("panicky", "acme", Call{Code: "fine"}, PolicyRetain); err != nil {
		t.Fatal(err)
	}
	if n := p.Stats().Creates.Load(); n != 1 {
		t.Fatalf("creates = %d, want 1", n)
	}
}

func TestPoolReinitPolicyResetsEachEval(t *testing.T) {
	p := NewPool(Host{Out: io.Discard}, 2, nil)
	pyState(t, p, "acme", "x = 1")
	if _, err := p.Eval("python", "acme", Call{Code: "", Expr: "x", Want: KindInt}, PolicyReinit); err != nil {
		t.Fatal(err)
	}
	// State must be gone after the reinit eval.
	if _, err := p.Eval("python", "acme", Call{Code: "", Expr: "x", Want: KindInt}, PolicyRetain); err == nil {
		t.Fatal("state survived a PolicyReinit eval")
	}
	if n := p.Stats().Resets.Load(); n == 0 {
		t.Fatal("reinit policy did not count a reset")
	}
}

// TestPoolStatsSnapshotMirrors locks PoolStatsSnapshot to PoolStats:
// every atomic counter must appear in the snapshot with the same name
// and be copied by Snapshot(). The statsmirror analyzer enforces the
// structural half statically; this is the runtime backstop.
func TestPoolStatsSnapshotMirrors(t *testing.T) {
	var st PoolStats
	statstest.AssertMirror(t, &st, func() any { return st.Snapshot() })
}
