package lang

import "fmt"

// TaskError is a typed task failure: the unit of the runtime's failure
// model. The contained-evaluation path in Install produces one whenever
// an engine fragment fails in a way the runtime understands (a panic
// inside the interpreter, an injected fault, a data-plane transfer
// error), and the worker loop reads Retriable to decide between
// requeueing the task under its lease and poisoning it immediately.
// Plain engine errors — user code raising an exception, a syntax error —
// deliberately stay untyped: rerunning the same bad fragment cannot
// succeed, so they fail the task permanently.
type TaskError struct {
	// Engine is the language name ("python", "r", ...).
	Engine string
	// Code classifies the failure: "panic", "fault", "dataplane".
	Code string
	// Retriable marks failures where a retry on a healthy engine may
	// succeed (the engine was Reset before this error was returned).
	Retriable bool
	// Err is the underlying cause.
	Err error
}

func (e *TaskError) Error() string {
	kind := "permanent"
	if e.Retriable {
		kind = "retriable"
	}
	return fmt.Sprintf("%s task failure in %s engine [%s]: %v", kind, e.Engine, e.Code, e.Err)
}

func (e *TaskError) Unwrap() error { return e.Err }
