package lang

// The typed interlanguage value model (Engine v2). The paper's blobutils
// layer exists so bulk scientific data moves between Swift, embedded
// interpreters, and native kernels as binary blobs rather than rendered
// text (§III-B, §III-E); Value extends that discipline to the engine
// calling convention itself: arguments and results cross the language
// boundary as a tagged union of string, int, float, and blob (with
// Fortran dims and element kind preserved), and only the string members
// ever render.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/blob"
)

// Kind tags a Value. The zero Kind is KindString, so the zero Value is
// the empty string — the result of a fragment with no expression.
type Kind uint8

// Value kinds.
const (
	KindString Kind = iota
	KindInt
	KindFloat
	KindBlob
)

func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBlob:
		return "blob"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is one typed interlanguage datum: a tagged union of string,
// int64, float64, and blob. Construct with Str/Int/Float/BlobOf (or the
// vector packers); access with the As* conversions.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    blob.Blob
}

// Str wraps a string.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Int wraps an int64.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float wraps a float64.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// BlobOf wraps a blob (bytes + dims + element kind).
func BlobOf(b blob.Blob) Value { return Value{kind: KindBlob, b: b} }

// Floats packs a float64 vector as a blob value (no string rendering).
func Floats(v []float64) Value { return BlobOf(blob.FromFloat64s(v)) }

// Float32s packs a float32 vector as a blob value.
func Float32s(v []float32) Value { return BlobOf(blob.FromFloat32s(v)) }

// Int32s packs an int32 vector as a blob value.
func Int32s(v []int32) Value { return BlobOf(blob.FromInt32s(v)) }

// Kind returns the tag.
func (v Value) Kind() Kind { return v.kind }

// Render returns the string form of the value: the string itself,
// decimal renderings for numbers, and the raw payload bytes for blobs
// (matching turbine::retrieve_blob; element data is not formatted).
// Render is the only path by which a value becomes text — the typed
// plumbing never calls it for blob element data.
func (v Value) Render() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return renderFloat(v.f)
	case KindBlob:
		return string(v.b.Data)
	}
	return v.s
}

func renderFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eEnN") {
		s += ".0"
	}
	return s
}

// AsInt converts to int64: ints directly, integral floats exactly,
// strings by parsing. Blobs do not convert.
func (v Value) AsInt() (int64, error) {
	switch v.kind {
	case KindInt:
		return v.i, nil
	case KindFloat:
		if n := int64(v.f); float64(n) == v.f {
			return n, nil
		}
		return 0, fmt.Errorf("lang: float %v is not an integer", v.f)
	case KindString:
		n, err := strconv.ParseInt(strings.TrimSpace(v.s), 0, 64)
		if err != nil {
			return 0, fmt.Errorf("lang: expected integer, got %q", v.s)
		}
		return n, nil
	}
	return 0, fmt.Errorf("lang: cannot convert %s to int", v.kind)
}

// AsFloat converts to float64: numbers directly, strings by parsing.
// Blobs do not convert.
func (v Value) AsFloat() (float64, error) {
	switch v.kind {
	case KindFloat:
		return v.f, nil
	case KindInt:
		return float64(v.i), nil
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		if err != nil {
			return 0, fmt.Errorf("lang: expected float, got %q", v.s)
		}
		return f, nil
	}
	return 0, fmt.Errorf("lang: cannot convert %s to float", v.kind)
}

// AsBlob converts to a blob: blobs directly (metadata intact), strings
// as their raw bytes, and numbers as one-element packed vectors.
func (v Value) AsBlob() blob.Blob {
	switch v.kind {
	case KindBlob:
		return v.b
	case KindInt:
		return blob.FromInt64s([]int64{v.i})
	case KindFloat:
		return blob.FromFloat64s([]float64{v.f})
	}
	return blob.New([]byte(v.s))
}

// AsString returns the string form (an alias of Render, named for
// symmetry with the other As* conversions).
func (v Value) AsString() string { return v.Render() }
