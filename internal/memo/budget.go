package memo

// Budget is the byte-budgeted, cost-aware sibling of Cache: entries carry
// a caller-defined cost (typically "bytes this compiled artifact pins in
// memory") and eviction is least-recently-used under a total cost budget
// rather than FIFO under an entry count. It exists for serving workloads
// — a long-lived process caching compiled programs and fragments across
// requests — where entries differ in size by orders of magnitude and a
// count bound would let one tenant's handful of huge programs evict
// thousands of small hot fragments (the memory-tracked applyCache idiom).
//
// Like Cache, a Budget stores only immutable compile results keyed by
// source text (or source hash) and is not safe for concurrent use; a
// shared cache wraps it in a lock. The count-bounded Cache API is
// unchanged — interpreter-internal parse caches keep using it.
type Budget[V any] struct {
	max  int64
	cost func(key string, v V) int64

	cur int64
	m   map[string]*budgetEntry[V]
	// LRU list: head = most recently used, tail = eviction candidate.
	head, tail *budgetEntry[V]

	stats BudgetStats
}

type budgetEntry[V any] struct {
	key        string
	v          V
	cost       int64
	prev, next *budgetEntry[V]
}

// BudgetStats are a Budget's lifetime counters. CurBytes and Entries are
// gauges; the rest are monotonic.
type BudgetStats struct {
	Hits         int64
	Misses       int64
	Evictions    int64
	BytesEvicted int64
	// Oversize counts inserts rejected because a single entry's cost
	// exceeded the whole budget (caching it would evict everything else
	// and then itself never fit a second tenant's working set).
	Oversize int64
	CurBytes int64
	Entries  int64
}

// NewBudget creates a cost-aware cache bounded to maxBytes total cost.
// costFn reports the cost of one entry; non-positive costs are clamped to
// 1 so a degenerate cost function cannot make the cache unbounded.
// Non-positive budgets are clamped to 1 (everything oversize: the cache
// stays empty but stays safe).
func NewBudget[V any](maxBytes int64, costFn func(key string, v V) int64) *Budget[V] {
	if maxBytes < 1 {
		maxBytes = 1
	}
	if costFn == nil {
		panic("memo: NewBudget needs a cost function")
	}
	return &Budget[V]{max: maxBytes, cost: costFn, m: make(map[string]*budgetEntry[V], 64)}
}

// Get looks up a key, promoting a hit to most-recently-used.
func (b *Budget[V]) Get(key string) (V, bool) {
	if e, ok := b.m[key]; ok {
		b.stats.Hits++
		b.touch(e)
		return e.v, true
	}
	b.stats.Misses++
	var zero V
	return zero, false
}

// Put inserts or overwrites a key. Overwriting re-accounts the budget
// under the new value's cost (the old cost is released, not leaked) and
// promotes the entry. Entries whose cost alone exceeds the budget are
// not cached (counted in Oversize); an overwrite that becomes oversize
// removes the stale cached value rather than serving it forever.
func (b *Budget[V]) Put(key string, v V) {
	c := b.cost(key, v)
	if c < 1 {
		c = 1
	}
	if e, ok := b.m[key]; ok {
		if c > b.max {
			b.remove(e)
			b.stats.Oversize++
			return
		}
		b.cur += c - e.cost
		e.v = v
		e.cost = c
		b.touch(e)
		b.evictOver()
		return
	}
	if c > b.max {
		b.stats.Oversize++
		return
	}
	e := &budgetEntry[V]{key: key, v: v, cost: c}
	b.m[key] = e
	b.pushFront(e)
	b.cur += c
	b.evictOver()
}

// GetOrCompute returns the cached value for key, computing and caching it
// on a miss. A failed compute is returned without entering the cache, so
// compile errors are never memoized — the same policy as Cache.
func (b *Budget[V]) GetOrCompute(key string, compute func() (V, error)) (V, error) {
	if v, ok := b.Get(key); ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		var zero V
		return zero, err
	}
	b.Put(key, v)
	return v, nil
}

// Len returns the current entry count.
func (b *Budget[V]) Len() int { return len(b.m) }

// Bytes returns the current total cost.
func (b *Budget[V]) Bytes() int64 { return b.cur }

// Stats returns a snapshot of the cache's counters with the gauges
// filled in.
func (b *Budget[V]) Stats() BudgetStats {
	s := b.stats
	s.CurBytes = b.cur
	s.Entries = int64(len(b.m))
	return s
}

// evictOver drops least-recently-used entries until the budget holds.
func (b *Budget[V]) evictOver() {
	for b.cur > b.max && b.tail != nil {
		e := b.tail
		b.remove(e)
		b.stats.Evictions++
		b.stats.BytesEvicted += e.cost
	}
}

func (b *Budget[V]) remove(e *budgetEntry[V]) {
	b.unlink(e)
	delete(b.m, e.key)
	b.cur -= e.cost
}

func (b *Budget[V]) unlink(e *budgetEntry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if b.head == e {
		b.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if b.tail == e {
		b.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (b *Budget[V]) pushFront(e *budgetEntry[V]) {
	e.next = b.head
	if b.head != nil {
		b.head.prev = e
	}
	b.head = e
	if b.tail == nil {
		b.tail = e
	}
}

func (b *Budget[V]) touch(e *budgetEntry[V]) {
	if b.head == e {
		return
	}
	b.unlink(e)
	b.pushFront(e)
}
