package memo

import (
	"errors"
	"fmt"
	"testing"
)

func lenCost(key string, v string) int64 { return int64(len(v)) }

func keysOf[V any](b *Budget[V]) []string {
	var out []string
	for e := b.head; e != nil; e = e.next {
		out = append(out, e.key)
	}
	return out
}

func TestBudgetEvictionIsLRUNotFIFO(t *testing.T) {
	b := NewBudget[string](10, lenCost)
	b.Put("a", "xxxx") // 4
	b.Put("b", "xxxx") // 4
	// Touch the older entry: under FIFO it would still be evicted first;
	// under LRU the untouched "b" must go.
	if _, ok := b.Get("a"); !ok {
		t.Fatal("a missing")
	}
	b.Put("c", "xxxx") // 4 -> budget 12 > 10, evict LRU = b
	if _, ok := b.Get("b"); ok {
		t.Fatal("b survived; eviction is not LRU")
	}
	if _, ok := b.Get("a"); !ok {
		t.Fatal("recently-used a was evicted")
	}
	if _, ok := b.Get("c"); !ok {
		t.Fatal("newly-inserted c was evicted")
	}
	st := b.Stats()
	if st.Evictions != 1 || st.BytesEvicted != 4 {
		t.Fatalf("stats = %+v, want 1 eviction of 4 bytes", st)
	}
}

func TestBudgetEvictsUntilUnderBudget(t *testing.T) {
	b := NewBudget[string](10, lenCost)
	b.Put("a", "xx")
	b.Put("b", "xx")
	b.Put("c", "xx")
	b.Put("big", "xxxxxxxxx") // 9: must evict a, b, c (LRU order)
	if got := b.Len(); got != 1 {
		t.Fatalf("Len = %d after large insert, want 1 (keys %v)", got, keysOf(b))
	}
	if b.Bytes() != 9 {
		t.Fatalf("Bytes = %d, want 9", b.Bytes())
	}
	st := b.Stats()
	if st.Evictions != 3 || st.BytesEvicted != 6 {
		t.Fatalf("stats = %+v, want 3 evictions of 6 bytes total", st)
	}
}

func TestBudgetOverwriteReaccountsCost(t *testing.T) {
	b := NewBudget[string](10, lenCost)
	b.Put("a", "xxxxxxxx") // 8
	b.Put("a", "xx")       // overwrite with 2: budget must drop to 2, not 10
	if b.Bytes() != 2 {
		t.Fatalf("Bytes = %d after shrinking overwrite, want 2", b.Bytes())
	}
	b.Put("b", "xxxxxxxx") // 8 more fits exactly: nothing evicted
	if st := b.Stats(); st.Evictions != 0 {
		t.Fatalf("shrinking overwrite leaked cost: %+v", st)
	}
	// Growing overwrite: must evict the other entry, not double-count.
	b.Put("a", "xxxxxxxxx") // 9: a=9 + b=8 = 17 > 10 -> evict LRU (b)
	if _, ok := b.m["b"]; ok {
		t.Fatal("b survived growing overwrite of a")
	}
	if b.Bytes() != 9 {
		t.Fatalf("Bytes = %d after growing overwrite, want 9", b.Bytes())
	}
	if got, _ := b.Get("a"); got != "xxxxxxxxx" {
		t.Fatalf("overwrite did not replace value: %q", got)
	}
}

func TestBudgetOversizeEntriesAreNotCached(t *testing.T) {
	b := NewBudget[string](4, lenCost)
	b.Put("small", "xx")
	b.Put("huge", "xxxxxxxxxx") // 10 > 4: rejected, small untouched
	if _, ok := b.m["huge"]; ok {
		t.Fatal("oversize entry was cached")
	}
	if _, ok := b.Get("small"); !ok {
		t.Fatal("oversize insert evicted the resident entry")
	}
	if st := b.Stats(); st.Oversize != 1 {
		t.Fatalf("stats = %+v, want Oversize 1", st)
	}
	// Overwriting a resident key with an oversize value removes the stale
	// cached value instead of serving it forever.
	b.Put("small", "xxxxxxxxxx")
	if _, ok := b.m["small"]; ok {
		t.Fatal("oversize overwrite left the stale value cached")
	}
	if b.Bytes() != 0 {
		t.Fatalf("Bytes = %d after oversize overwrite, want 0", b.Bytes())
	}
}

func TestBudgetGetOrComputeErrorsStayUncached(t *testing.T) {
	b := NewBudget[string](100, lenCost)
	calls := 0
	boom := errors.New("parse error")
	compute := func() (string, error) {
		calls++
		if calls < 3 {
			return "", boom
		}
		return "ok", nil
	}
	for i := 0; i < 2; i++ {
		if _, err := b.GetOrCompute("k", compute); !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v, want %v", i, err, boom)
		}
		if b.Len() != 0 {
			t.Fatal("failed compute entered the cache")
		}
	}
	v, err := b.GetOrCompute("k", compute)
	if err != nil || v != "ok" {
		t.Fatalf("third call = (%q, %v), want (ok, nil)", v, err)
	}
	if calls != 3 {
		t.Fatalf("compute ran %d times, want 3 (errors uncached, success cached)", calls)
	}
	if _, err := b.GetOrCompute("k", compute); err != nil || calls != 3 {
		t.Fatalf("fourth call recomputed (calls=%d) or failed (%v)", calls, err)
	}
}

func TestBudgetHitMissCounters(t *testing.T) {
	b := NewBudget[string](100, lenCost)
	b.Get("absent")
	b.Put("k", "v")
	b.Get("k")
	b.Get("k")
	st := b.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits 1 miss", st)
	}
	if st.CurBytes != 1 || st.Entries != 1 {
		t.Fatalf("gauges = %+v, want CurBytes 1 Entries 1", st)
	}
}

func TestBudgetClampsDegenerateCosts(t *testing.T) {
	// A zero/negative cost function must not make entries free (the cache
	// would grow without bound).
	b := NewBudget[int](3, func(string, int) int64 { return 0 })
	for i := 0; i < 10; i++ {
		b.Put(fmt.Sprintf("k%d", i), i)
	}
	if b.Len() > 3 {
		t.Fatalf("Len = %d under zero-cost function, want <= 3", b.Len())
	}
}
