// Package memo provides the bounded string-keyed memoization cache used
// by every embedded interpreter's compile-once pipeline: internal/tcl
// memoizes source -> *Script and expression ASTs, and internal/pylite and
// internal/rlite memoize source -> parsed program, so a fragment that is
// evaluated once per task is parsed exactly once per rank.
//
// The cache deliberately stores only parse results keyed by source text —
// never values or bindings — so cached entries are immutable and safe to
// replay against any interpreter state. Eviction is FIFO: the workloads
// in this repo have tens of distinct fragment shapes, so the bound exists
// to cap pathological programs (e.g. generated one-shot scripts), not to
// tune hit rates.
package memo

// Cache is a bounded string-keyed memoization cache with FIFO eviction.
// It is not safe for concurrent use; each interpreter owns its own.
type Cache[V any] struct {
	max   int
	m     map[string]V
	order []string // insertion order, oldest first
}

// New creates a cache bounded to max entries. Non-positive bounds are
// clamped to 1 (Put on a zero-capacity cache would have nothing to
// evict).
func New[V any](max int) *Cache[V] {
	if max < 1 {
		max = 1
	}
	return &Cache[V]{max: max, m: make(map[string]V, 64)}
}

// Get looks up a key.
func (c *Cache[V]) Get(key string) (V, bool) {
	v, ok := c.m[key]
	return v, ok
}

// Put inserts a key, evicting the oldest entry when full. Re-putting an
// existing key replaces the value without disturbing insertion order.
func (c *Cache[V]) Put(key string, v V) {
	if _, exists := c.m[key]; exists {
		c.m[key] = v
		return
	}
	if len(c.m) >= c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.m, oldest)
	}
	c.m[key] = v
	c.order = append(c.order, key)
}

// Len returns the current entry count.
func (c *Cache[V]) Len() int { return len(c.m) }

// GetOrCompute returns the cached value for key, computing and caching
// it on a miss. A failed compute is returned without entering the cache,
// so parse errors are never memoized — the one memoization policy every
// interpreter shares, kept in one place.
func (c *Cache[V]) GetOrCompute(key string, compute func() (V, error)) (V, error) {
	if v, ok := c.m[key]; ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		var zero V
		return zero, err
	}
	c.Put(key, v)
	return v, nil
}
