// Package mpi provides a simulated message-passing substrate with MPI-like
// semantics: a fixed set of ranks, tagged point-to-point messages with
// FIFO matching per (source, tag) pair, wildcard receives, probes, and a
// small set of collectives.
//
// The package substitutes for a real MPI library (the paper's runtime is
// an MPI program on Blue Gene/Q and Cray XE6 systems). Each rank runs as a
// goroutine inside one OS process; message payloads are byte slices, as
// they would be on the wire. The matching semantics relevant to the ADLB
// and Turbine protocols — non-overtaking delivery between a fixed
// (source, destination, tag) triple, ANY_SOURCE/ANY_TAG wildcards, and
// eager buffered sends — are preserved exactly.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Wildcard values for Recv and Probe.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches a message with any tag.
	AnyTag = -1
)

// ErrAborted is returned from blocking calls after the world is aborted,
// either explicitly via World.Abort or by the deadlock watchdog.
var ErrAborted = errors.New("mpi: world aborted")

// Status describes a matched message, mirroring MPI_Status.
type Status struct {
	Source int // rank that sent the message
	Tag    int // tag the message was sent with
	Count  int // payload length in bytes
}

// framePool recycles the buffers Send copies payloads into. Receivers own
// the buffer a Recv returns; a receiver that has fully consumed one may
// hand it back via Release, and the next Send of a fitting size reuses it
// instead of allocating. Reuse is LIFO (the most recently released fitting
// buffer is taken first), which keeps the reuse order deterministic for
// tests that pin the aliasing contract of zero-copy consumers.
type framePool struct {
	mu    sync.Mutex
	free  [][]byte
	bytes int // sum of caps of free buffers
	gets  uint64
	hits  uint64
	puts  uint64
}

const (
	// minFrameCap rounds small sends up so tiny request frames recycle
	// for each other instead of fragmenting the pool by exact size.
	minFrameCap = 256
	// framePoolBytes bounds the total memory parked in the pool; buffers
	// released beyond the budget are dropped to the garbage collector.
	framePoolBytes = 64 << 20
	// framePoolSlots bounds the free-list length so get's fit scan stays
	// cheap.
	framePoolSlots = 64
)

// get returns a buffer of length n, reusing a released frame when one is
// large enough.
func (p *framePool) get(n int) []byte {
	p.mu.Lock()
	p.gets++
	for i := len(p.free) - 1; i >= 0; i-- {
		if cap(p.free[i]) >= n {
			buf := p.free[i][:n]
			p.bytes -= cap(buf)
			p.free = append(p.free[:i], p.free[i+1:]...)
			p.hits++
			p.mu.Unlock()
			return buf
		}
	}
	p.mu.Unlock()
	if n < minFrameCap {
		return make([]byte, n, minFrameCap)
	}
	return make([]byte, n)
}

// put parks a buffer for reuse, dropping it if the pool is full. The
// caller must not touch buf afterwards: the next Send may own it.
func (p *framePool) put(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	p.mu.Lock()
	if p.bytes+cap(buf) <= framePoolBytes && len(p.free) < framePoolSlots {
		p.free = append(p.free, buf)
		p.bytes += cap(buf)
		p.puts++
	}
	p.mu.Unlock()
}

func (p *framePool) stats() (gets, hits, puts uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.hits, p.puts
}

type envelope struct {
	source int
	tag    int
	seq    uint64 // global send order, for deterministic wildcard tie-breaking
	data   []byte
}

// mailbox holds undelivered messages for one rank.
type mailbox struct {
	mu      sync.Mutex
	queue   []envelope
	aborted bool
	// waiters are the goroutines currently blocked in a matching wait.
	// Each has its own condition variable so a RecvTimeout deadline can
	// wake exactly the receiver it belongs to instead of broadcasting to
	// every parked rank handle.
	waiters []*waiter
	// wakeups counts returns from a blocked wait across all waiters;
	// tests pin the single-wakeup timer property of RecvTimeout with it.
	wakeups uint64
}

// waiter is one goroutine parked in Recv or RecvTimeout. expired is set
// only by the timer RecvTimeout arms for this specific waiter.
type waiter struct {
	cond    *sync.Cond
	expired bool
}

func newMailbox() *mailbox {
	return &mailbox{}
}

// addWaiter registers the calling goroutine as blocked. mu must be held.
func (mb *mailbox) addWaiter() *waiter {
	w := &waiter{cond: sync.NewCond(&mb.mu)}
	mb.waiters = append(mb.waiters, w)
	return w
}

// removeWaiter unregisters w. mu must be held.
func (mb *mailbox) removeWaiter(w *waiter) {
	for i, x := range mb.waiters {
		if x == w {
			mb.waiters = append(mb.waiters[:i], mb.waiters[i+1:]...)
			return
		}
	}
}

// wakeAll signals every parked waiter; used on message arrival and on
// abort, where any waiter might be eligible. mu must be held.
func (mb *mailbox) wakeAll() {
	for _, w := range mb.waiters {
		w.cond.Signal()
	}
}

// World is a set of communicating ranks. Create one with NewWorld, then
// either call Run to execute an SPMD function on every rank, or obtain
// individual Comm handles with Comm for manual goroutine management.
type World struct {
	size    int
	boxes   []*mailbox
	seq     uint64
	seqMu   sync.Mutex
	start   time.Time
	barrier *barrierState
	frames  framePool

	// routes maps ranks living in other OS processes to their transport
	// links (see tcp.go). nil in purely in-process worlds. abortHooks run
	// after Abort has unblocked local ranks, so a transport can propagate
	// the abort to remote peers.
	routesMu   sync.RWMutex
	routes     map[int]*route
	abortHooks []func(error)

	abortOnce sync.Once
	abortErr  error
}

// route describes how to reach a rank that lives in another OS process.
// A dead route swallows sends silently: traffic addressed to a crashed
// rank behaves like messages to a failed MPI process that the
// fault-tolerance layer has already written off — in particular, the
// response to a crash-synthesized departure must not error the server.
type route struct {
	link *tcpLink
	dead atomic.Bool
}

func (w *World) routeFor(dest int) *route {
	w.routesMu.RLock()
	r := w.routes[dest]
	w.routesMu.RUnlock()
	return r
}

func (w *World) setRoute(rank int, r *route) {
	w.routesMu.Lock()
	if w.routes == nil {
		w.routes = make(map[int]*route)
	}
	w.routes[rank] = r
	w.routesMu.Unlock()
}

// onAbort registers a hook invoked (once) after the world aborts.
func (w *World) onAbort(fn func(error)) {
	w.routesMu.Lock()
	w.abortHooks = append(w.abortHooks, fn)
	w.routesMu.Unlock()
}

type barrierState struct {
	mu    sync.Mutex
	cond  *sync.Cond
	gen   int
	count int
	abort bool
}

// NewWorld creates a world with size ranks, numbered 0..size-1.
func NewWorld(size int) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size must be positive, got %d", size)
	}
	w := &World{
		size:  size,
		boxes: make([]*mailbox, size),
		start: time.Now(),
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	bs := &barrierState{}
	bs.cond = sync.NewCond(&bs.mu)
	w.barrier = bs
	return w, nil
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Comm returns the communicator handle for the given rank.
func (w *World) Comm(rank int) (*Comm, error) {
	if rank < 0 || rank >= w.size {
		return nil, fmt.Errorf("mpi: rank %d out of range [0,%d)", rank, w.size)
	}
	return &Comm{world: w, rank: rank}, nil
}

// Run executes fn once per rank, each on its own goroutine, and waits for
// all ranks to return. The first non-nil error aborts the world, unblocking
// any ranks parked in Recv or Barrier, and is returned.
func (w *World) Run(fn func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
					w.Abort(errs[rank])
				}
			}()
			c, _ := w.Comm(rank)
			if err := fn(c); err != nil {
				errs[rank] = err
				w.Abort(err)
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrAborted) {
			return err
		}
	}
	// Every rank's error traces back to the abort; surface the abort cause
	// itself if it carries more than ErrAborted (e.g. a world aborted from
	// inside a server with no rank-level error of its own).
	if cause := w.AbortErr(); cause != nil && !errors.Is(cause, ErrAborted) {
		return cause
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Abort unblocks every rank parked in a blocking call; those calls return
// ErrAborted. Abort is idempotent; the first cause wins.
func (w *World) Abort(cause error) {
	w.abortOnce.Do(func() {
		if cause == nil {
			cause = ErrAborted
		}
		w.abortErr = cause
		for _, mb := range w.boxes {
			mb.mu.Lock()
			mb.aborted = true
			mb.wakeAll()
			mb.mu.Unlock()
		}
		w.barrier.mu.Lock()
		w.barrier.abort = true
		w.barrier.cond.Broadcast()
		w.barrier.mu.Unlock()
		w.routesMu.RLock()
		hooks := append([]func(error){}, w.abortHooks...)
		w.routesMu.RUnlock()
		for _, fn := range hooks {
			fn(cause)
		}
	})
}

// AbortErr returns the cause passed to Abort, or nil if the world is live.
func (w *World) AbortErr() error { return w.abortErr }

// Wtime returns seconds since the world was created, like MPI_Wtime.
func (w *World) Wtime() float64 { return time.Since(w.start).Seconds() }

func (w *World) nextSeq() uint64 {
	w.seqMu.Lock()
	w.seq++
	s := w.seq
	w.seqMu.Unlock()
	return s
}

// Comm is one rank's handle on the world. All methods are safe for use by
// the single goroutine executing that rank; a Comm must not be shared
// between goroutines (matching MPI's one-thread-per-rank usage here).
type Comm struct {
	world *World
	rank  int
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// World returns the underlying world.
func (c *Comm) World() *World { return c.world }

// Send delivers data to rank dest with the given tag. The send is eager
// and buffered: it never blocks. The payload is copied, so the caller may
// reuse the slice immediately. The copy lands in a buffer drawn from the
// world's frame pool; ownership of it transfers to the receiver, which
// may return it via Release once every slice aliasing it is dead.
func (c *Comm) Send(dest, tag int, data []byte) error {
	if dest < 0 || dest >= c.world.size {
		return fmt.Errorf("mpi: send from rank %d to invalid rank %d", c.rank, dest)
	}
	if tag < 0 {
		return fmt.Errorf("mpi: send with negative tag %d (tags must be >= 0)", tag)
	}
	if r := c.world.routeFor(dest); r != nil {
		if r.dead.Load() {
			// The destination process crashed. Swallow the send: the
			// fault-tolerance layer has already inferred its departure,
			// and replies addressed to it must not error the sender.
			return nil
		}
		return r.link.sendData(c.rank, dest, tag, data)
	}
	buf := c.world.frames.get(len(data))
	copy(buf, data)
	env := envelope{source: c.rank, tag: tag, seq: c.world.nextSeq(), data: buf}
	mb := c.world.boxes[dest]
	mb.mu.Lock()
	if mb.aborted {
		mb.mu.Unlock()
		return ErrAborted
	}
	mb.queue = append(mb.queue, env)
	mb.wakeAll()
	mb.mu.Unlock()
	return nil
}

// inject delivers an already-pooled buffer to a local rank's mailbox. It is
// the transport's entry point: buf must come from this world's frame pool
// (the TCP read loop fills pool buffers directly), and ownership transfers
// to the receiving rank exactly as with a local Send.
func (w *World) inject(src, dest, tag int, buf []byte) error {
	if dest < 0 || dest >= w.size || src < 0 || src >= w.size || tag < 0 {
		w.frames.put(buf)
		return fmt.Errorf("mpi: inject with invalid header src=%d dest=%d tag=%d", src, dest, tag)
	}
	env := envelope{source: src, tag: tag, seq: w.nextSeq(), data: buf}
	mb := w.boxes[dest]
	mb.mu.Lock()
	if mb.aborted {
		mb.mu.Unlock()
		w.frames.put(buf)
		return ErrAborted
	}
	mb.queue = append(mb.queue, env)
	mb.wakeAll()
	mb.mu.Unlock()
	return nil
}

// Release returns a buffer obtained from Recv to the world's frame pool
// so a later Send can reuse it. The caller gives up ownership: after
// Release, any slice still aliasing buf may be overwritten by unrelated
// traffic. Releasing is optional — unreleased frames are simply garbage
// collected — and a buffer must be released at most once.
func (c *Comm) Release(buf []byte) { c.world.frames.put(buf) }

// FramePoolStats reports the frame pool's counters: buffers requested by
// Send, requests satisfied by reuse, and buffers accepted by Release.
// Tests of zero-copy consumers use these to observe that reuse actually
// occurs (hits > 0), making the aliasing contract load-bearing.
func (w *World) FramePoolStats() (gets, hits, puts uint64) { return w.frames.stats() }

// match returns the index in q of the first message matching (source, tag)
// in arrival order, or -1.
func match(q []envelope, source, tag int) int {
	for i := range q {
		if (source == AnySource || q[i].source == source) &&
			(tag == AnyTag || q[i].tag == tag) {
			return i
		}
	}
	return -1
}

// Recv blocks until a message matching (source, tag) arrives, then returns
// its payload and status. source may be AnySource and tag may be AnyTag.
// Matching is FIFO in arrival order among eligible messages, which
// guarantees MPI's non-overtaking property per (source, tag).
func (c *Comm) Recv(source, tag int) ([]byte, Status, error) {
	mb := c.world.boxes[c.rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	var w *waiter
	for {
		if mb.aborted {
			if w != nil {
				mb.removeWaiter(w)
			}
			return nil, Status{}, ErrAborted
		}
		if i := match(mb.queue, source, tag); i >= 0 {
			env := mb.queue[i]
			mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
			if w != nil {
				mb.removeWaiter(w)
			}
			return env.data, Status{Source: env.source, Tag: env.tag, Count: len(env.data)}, nil
		}
		if w == nil {
			w = mb.addWaiter()
		}
		w.cond.Wait()
		mb.wakeups++
	}
}

// RecvTimeout behaves like Recv but gives up after d, returning ok=false
// with no error. It is used by server loops that multiplex message
// handling with periodic housekeeping (steal retries, termination tokens).
func (c *Comm) RecvTimeout(source, tag int, d time.Duration) ([]byte, Status, bool, error) {
	mb := c.world.boxes[c.rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	var w *waiter
	var timer *time.Timer
	defer func() {
		// Defers run LIFO, so both execute before the mutex unlock above.
		if timer != nil {
			timer.Stop()
		}
		if w != nil {
			mb.removeWaiter(w)
		}
	}()
	for {
		if mb.aborted {
			return nil, Status{}, false, ErrAborted
		}
		if i := match(mb.queue, source, tag); i >= 0 {
			env := mb.queue[i]
			mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
			return env.data, Status{Source: env.source, Tag: env.tag, Count: len(env.data)}, true, nil
		}
		if d <= 0 {
			return nil, Status{}, false, nil
		}
		if w == nil {
			// One timer per call, targeting only this waiter: the firing
			// sets w.expired and signals w alone, so other parked ranks
			// are not woken by deadlines that are not theirs.
			w = mb.addWaiter()
			ww := w
			timer = time.AfterFunc(d, func() {
				mb.mu.Lock()
				ww.expired = true
				ww.cond.Signal()
				mb.mu.Unlock()
			})
		}
		if w.expired {
			return nil, Status{}, false, nil
		}
		w.cond.Wait()
		mb.wakeups++
	}
}

// mailboxWakeups reports how many times a blocked wait on rank's mailbox
// has returned. Tests use it to pin that one expiring RecvTimeout does not
// wake unrelated waiters.
func (w *World) mailboxWakeups(rank int) uint64 {
	mb := w.boxes[rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.wakeups
}

// Iprobe reports whether a message matching (source, tag) is available,
// without consuming it.
func (c *Comm) Iprobe(source, tag int) (Status, bool) {
	mb := c.world.boxes[c.rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if i := match(mb.queue, source, tag); i >= 0 {
		env := mb.queue[i]
		return Status{Source: env.source, Tag: env.tag, Count: len(env.data)}, true
	}
	return Status{}, false
}

// Pending returns the number of undelivered messages queued at this rank.
func (c *Comm) Pending() int {
	mb := c.world.boxes[c.rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.queue)
}

// Barrier blocks until every rank in the world has entered the barrier.
func (c *Comm) Barrier() error {
	b := c.world.barrier
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.abort {
		return ErrAborted
	}
	gen := b.gen
	b.count++
	if b.count == c.world.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	for b.gen == gen && !b.abort {
		b.cond.Wait()
	}
	if b.abort {
		return ErrAborted
	}
	return nil
}

// Bcast broadcasts data from root to all ranks. On the root it returns the
// input unchanged; on other ranks it returns the received payload. All
// ranks must call Bcast with the same root and internal tag ordering.
func (c *Comm) Bcast(root, tag int, data []byte) ([]byte, error) {
	if c.rank == root {
		for r := 0; r < c.world.size; r++ {
			if r == root {
				continue
			}
			if err := c.Send(r, tag, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	buf, _, err := c.Recv(root, tag)
	return buf, err
}

// Gather collects one payload from every rank at root. On root it returns
// a slice indexed by rank; on other ranks it returns nil.
func (c *Comm) Gather(root, tag int, data []byte) ([][]byte, error) {
	if c.rank != root {
		return nil, c.Send(root, tag, data)
	}
	out := make([][]byte, c.world.size)
	buf := make([]byte, len(data))
	copy(buf, data)
	out[root] = buf
	for i := 0; i < c.world.size-1; i++ {
		b, st, err := c.Recv(AnySource, tag)
		if err != nil {
			return nil, err
		}
		out[st.Source] = b
	}
	return out, nil
}

// ReduceOp names a reduction operator for ReduceInt64 and friends.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func applyOp(op ReduceOp, a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	}
	return a
}

// ReduceInt64 reduces one int64 per rank at root with the given operator.
// Non-root ranks receive 0.
func (c *Comm) ReduceInt64(root, tag int, op ReduceOp, v int64) (int64, error) {
	parts, err := c.Gather(root, tag, encodeInt64(v))
	if err != nil {
		return 0, err
	}
	if c.rank != root {
		return 0, nil
	}
	acc := decodeInt64(parts[0])
	for _, p := range parts[1:] {
		acc = applyOp(op, acc, decodeInt64(p))
	}
	return acc, nil
}

// AllreduceInt64 reduces one int64 per rank with the given operator and
// returns the result on every rank. Root for the internal gather is rank 0.
func (c *Comm) AllreduceInt64(tag int, op ReduceOp, v int64) (int64, error) {
	acc, err := c.ReduceInt64(0, tag, op, v)
	if err != nil {
		return 0, err
	}
	out, err := c.Bcast(0, tag, encodeInt64(acc))
	if err != nil {
		return 0, err
	}
	return decodeInt64(out), nil
}

func encodeInt64(v int64) []byte {
	var b [8]byte
	u := uint64(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	return b[:]
}

func decodeInt64(b []byte) int64 {
	var u uint64
	for i := 0; i < 8 && i < len(b); i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return int64(u)
}
