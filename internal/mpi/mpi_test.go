package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Fatal("expected error for size 0")
	}
	if _, err := NewWorld(-3); err == nil {
		t.Fatal("expected error for negative size")
	}
	w, err := NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 4 {
		t.Fatalf("size = %d, want 4", w.Size())
	}
	if _, err := w.Comm(4); err == nil {
		t.Fatal("expected error for out-of-range rank")
	}
	if _, err := w.Comm(-1); err == nil {
		t.Fatal("expected error for negative rank")
	}
}

func TestSendRecvBasic(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		switch c.Rank() {
		case 0:
			return c.Send(1, 7, []byte("hello"))
		case 1:
			data, st, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if string(data) != "hello" {
				return fmt.Errorf("payload = %q", data)
			}
			if st.Source != 0 || st.Tag != 7 || st.Count != 5 {
				return fmt.Errorf("status = %+v", st)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendValidation(t *testing.T) {
	w, _ := NewWorld(2)
	c, _ := w.Comm(0)
	if err := c.Send(5, 0, nil); err == nil {
		t.Fatal("expected error for invalid dest")
	}
	if err := c.Send(1, -2, nil); err == nil {
		t.Fatal("expected error for negative tag")
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w, _ := NewWorld(2)
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	buf := []byte("abc")
	if err := c0.Send(1, 1, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // mutate after send; receiver must see original
	got, _, err := c1.Recv(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("got %q, want abc", got)
	}
}

func TestFIFOPerSourceTag(t *testing.T) {
	w, _ := NewWorld(2)
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	for i := 0; i < 100; i++ {
		if err := c0.Send(1, 3, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		data, _, err := c1.Recv(0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != byte(i) {
			t.Fatalf("message %d out of order: got %d", i, data[0])
		}
	}
}

func TestTagSelectivity(t *testing.T) {
	w, _ := NewWorld(2)
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	c0.Send(1, 1, []byte("one"))
	c0.Send(1, 2, []byte("two"))
	// Receive tag 2 first even though tag 1 arrived earlier.
	data, _, err := c1.Recv(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "two" {
		t.Fatalf("got %q, want two", data)
	}
	data, _, _ = c1.Recv(0, 1)
	if string(data) != "one" {
		t.Fatalf("got %q, want one", data)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	w, _ := NewWorld(3)
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	c2, _ := w.Comm(2)
	c1.Send(0, 5, []byte("from1"))
	c2.Send(0, 9, []byte("from2"))
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		data, st, err := c0.Recv(AnySource, AnyTag)
		if err != nil {
			t.Fatal(err)
		}
		seen[string(data)] = true
		if st.Source != 1 && st.Source != 2 {
			t.Fatalf("bad source %d", st.Source)
		}
	}
	if !seen["from1"] || !seen["from2"] {
		t.Fatalf("missing messages: %v", seen)
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	w, _ := NewWorld(2)
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	var delivered atomic.Bool
	done := make(chan struct{})
	go func() {
		data, _, err := c1.Recv(0, 0)
		if err == nil && string(data) == "late" && delivered.Load() {
			close(done)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	delivered.Store(true)
	c0.Send(1, 0, []byte("late"))
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("recv did not complete")
	}
}

func TestRecvTimeout(t *testing.T) {
	w, _ := NewWorld(2)
	c1, _ := w.Comm(1)
	start := time.Now()
	_, _, ok, err := c1.RecvTimeout(0, 0, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("expected timeout")
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("returned too early")
	}
	// And that it does deliver when a message is already present.
	c0, _ := w.Comm(0)
	c0.Send(1, 0, []byte("x"))
	data, st, ok, err := c1.RecvTimeout(AnySource, AnyTag, time.Second)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if string(data) != "x" || st.Source != 0 {
		t.Fatalf("data=%q st=%+v", data, st)
	}
}

func TestIprobe(t *testing.T) {
	w, _ := NewWorld(2)
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	if _, ok := c1.Iprobe(AnySource, AnyTag); ok {
		t.Fatal("probe should fail on empty mailbox")
	}
	c0.Send(1, 4, []byte("abc"))
	st, ok := c1.Iprobe(0, 4)
	if !ok || st.Count != 3 || st.Tag != 4 {
		t.Fatalf("probe: ok=%v st=%+v", ok, st)
	}
	// Probe must not consume.
	if c1.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", c1.Pending())
	}
}

func TestBarrier(t *testing.T) {
	const n = 8
	w, _ := NewWorld(n)
	var phase atomic.Int32
	err := w.Run(func(c *Comm) error {
		phase.Add(1)
		if err := c.Barrier(); err != nil {
			return err
		}
		// After the barrier, every rank must have incremented.
		if got := phase.Load(); got != n {
			return fmt.Errorf("rank %d saw phase %d before barrier release", c.Rank(), got)
		}
		return c.Barrier() // reusable across generations
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastGatherReduce(t *testing.T) {
	const n = 5
	w, _ := NewWorld(n)
	err := w.Run(func(c *Comm) error {
		var payload []byte
		if c.Rank() == 2 {
			payload = []byte("root-data")
		}
		got, err := c.Bcast(2, 100, payload)
		if err != nil {
			return err
		}
		if string(got) != "root-data" {
			return fmt.Errorf("rank %d bcast got %q", c.Rank(), got)
		}
		parts, err := c.Gather(0, 101, []byte{byte(c.Rank() * 10)})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for r, p := range parts {
				if len(p) != 1 || p[0] != byte(r*10) {
					return fmt.Errorf("gather slot %d = %v", r, p)
				}
			}
		}
		sum, err := c.ReduceInt64(0, 102, OpSum, int64(c.Rank()))
		if err != nil {
			return err
		}
		if c.Rank() == 0 && sum != 0+1+2+3+4 {
			return fmt.Errorf("reduce sum = %d", sum)
		}
		all, err := c.AllreduceInt64(103, OpMax, int64(c.Rank()))
		if err != nil {
			return err
		}
		if all != n-1 {
			return fmt.Errorf("allreduce max = %d", all)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceOps(t *testing.T) {
	cases := []struct {
		op   ReduceOp
		a, b int64
		want int64
	}{
		{OpSum, 3, 4, 7},
		{OpMax, 3, 4, 4},
		{OpMax, 9, 4, 9},
		{OpMin, 3, 4, 3},
		{OpMin, 9, 4, 4},
	}
	for _, tc := range cases {
		if got := applyOp(tc.op, tc.a, tc.b); got != tc.want {
			t.Errorf("applyOp(%v,%d,%d) = %d, want %d", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAbortUnblocksRecv(t *testing.T) {
	w, _ := NewWorld(2)
	c1, _ := w.Comm(1)
	done := make(chan error, 1)
	go func() {
		_, _, err := c1.Recv(0, 0)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	w.Abort(errors.New("test abort"))
	select {
	case err := <-done:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("err = %v, want ErrAborted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abort did not unblock recv")
	}
	if w.AbortErr() == nil {
		t.Fatal("AbortErr should report cause")
	}
	// Sends into an aborted world fail.
	c0, _ := w.Comm(0)
	if err := c0.Send(1, 0, nil); !errors.Is(err, ErrAborted) {
		t.Fatalf("send after abort: %v", err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	w, _ := NewWorld(3)
	sentinel := errors.New("rank failure")
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		// Other ranks block; abort must release them.
		_, _, err := c.Recv(AnySource, AnyTag)
		return err
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			panic("boom")
		}
		_, _, err := c.Recv(AnySource, AnyTag)
		return err
	})
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestInt64Codec(t *testing.T) {
	f := func(v int64) bool { return decodeInt64(encodeInt64(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMessageMatchingProperty checks that for a random interleaving of
// tagged sends, per-(source,tag) order is always preserved at the receiver.
func TestMessageMatchingProperty(t *testing.T) {
	f := func(tagsRaw []uint8) bool {
		if len(tagsRaw) == 0 || len(tagsRaw) > 200 {
			return true
		}
		w, _ := NewWorld(2)
		c0, _ := w.Comm(0)
		c1, _ := w.Comm(1)
		perTag := map[int][]int{}
		for i, tr := range tagsRaw {
			tag := int(tr % 4)
			c0.Send(1, tag, []byte{byte(i)})
			perTag[tag] = append(perTag[tag], i)
		}
		// Drain one tag at a time; order within tag must match send order.
		for tag, want := range perTag {
			for _, wi := range want {
				data, _, err := c1.Recv(0, tag)
				if err != nil || int(data[0]) != wi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWtimeAdvances(t *testing.T) {
	w, _ := NewWorld(1)
	t0 := w.Wtime()
	time.Sleep(2 * time.Millisecond)
	if w.Wtime() <= t0 {
		t.Fatal("Wtime did not advance")
	}
}

func TestManyToOneStress(t *testing.T) {
	const senders = 8
	const per = 200
	w, _ := NewWorld(senders + 1)
	var total atomic.Int64
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			var buf bytes.Buffer
			for i := 0; i < senders*per; i++ {
				data, _, err := c.Recv(AnySource, 1)
				if err != nil {
					return err
				}
				buf.Write(data)
				total.Add(1)
			}
			return nil
		}
		for i := 0; i < per; i++ {
			if err := c.Send(0, 1, []byte{byte(c.Rank())}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != senders*per {
		t.Fatalf("received %d, want %d", total.Load(), senders*per)
	}
}
