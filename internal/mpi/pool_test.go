package mpi

import (
	"bytes"
	"testing"
)

// TestFramePoolReuseAliasing pins the transport half of the zero-copy
// contract deterministically: after Release, the next fitting Send
// overwrites the released buffer in place, so any slice still aliasing
// it observes the new payload. Both ranks are driven from one goroutine
// (Send is eager and never blocks), so there is no scheduling race: the
// released frame is provably the only pooled buffer large enough, and
// reuse is guaranteed.
func TestFramePoolReuseAliasing(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)

	a := bytes.Repeat([]byte{0xAA}, 4096)
	if err := c1.Send(0, 7, a); err != nil {
		t.Fatal(err)
	}
	buf, _, err := c0.Recv(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	p := buf // a consumer's zero-copy view into the frame
	if !bytes.Equal(p, a) {
		t.Fatalf("payload differs before release")
	}

	// Before Release, further traffic must not touch the frame.
	if err := c1.Send(0, 7, bytes.Repeat([]byte{0xCC}, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c0.Recv(1, 7); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, a) {
		t.Fatalf("unreleased frame was overwritten by unrelated traffic")
	}

	// After Release, the next fitting Send reuses the frame: the view
	// flips to the new payload — this is exactly why zero-copy consumers
	// must finish with their slices before the release point.
	c0.Release(buf)
	b := bytes.Repeat([]byte{0xBB}, 4096)
	if err := c1.Send(0, 7, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, b) {
		t.Fatalf("released frame was not reused for the next fitting send")
	}
	buf2, _, err := c0.Recv(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if &buf2[0] != &p[0] {
		t.Fatalf("reused frame has a different backing array")
	}

	gets, hits, puts := w.FramePoolStats()
	if gets == 0 || hits == 0 || puts == 0 {
		t.Fatalf("pool counters gets=%d hits=%d puts=%d: reuse not observed", gets, hits, puts)
	}
}

// TestFramePoolSmallFramesRoundUp pins the minFrameCap policy: tiny
// sends draw frames with at least minFrameCap capacity, so small
// request/response traffic of varying sizes recycles one buffer instead
// of fragmenting the pool by exact length.
func TestFramePoolSmallFramesRoundUp(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)

	if err := c1.Send(0, 1, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	buf, _, err := c0.Recv(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cap(buf) < minFrameCap {
		t.Fatalf("small frame cap = %d, want >= %d", cap(buf), minFrameCap)
	}
	c0.Release(buf)

	// A larger-but-still-small send must reuse the rounded-up frame.
	if err := c1.Send(0, 1, make([]byte, minFrameCap-1)); err != nil {
		t.Fatal(err)
	}
	buf2, _, err := c0.Recv(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if &buf2[0] != &buf[0] {
		t.Fatalf("rounded-up small frame was not reused")
	}
	_, hits, _ := w.FramePoolStats()
	if hits == 0 {
		t.Fatalf("expected a pool hit for the rounded-up frame")
	}
}
