// TCP transport: ranks in other OS processes, reached over length-prefixed
// socket frames.
//
// The topology is a star. The hub process owns a full-size World and runs
// the engine and server ranks as local goroutines; each worker process owns
// a same-size World in which only its own rank is live, with every other
// rank routed over a single uplink to the hub. The hub relays
// worker-to-worker traffic (ADLB itself never needs it — clients talk only
// to servers — but the Comm surface promises any-to-any delivery).
//
// Frames are `u32 big-endian body length | kind byte | body`. Data frames
// carry `u32 src | u32 dest | u32 tag | payload`, where the payload is the
// adlb wire codec's bytes exactly as an in-process Send would copy them.
// The receiving read loop reads each payload directly into a buffer drawn
// from its World's frame pool, so the zero-copy aliasing contract of
// doc.go's "Data plane and memory model" holds per process: a frame a rank
// receives is pool-owned by that rank until it Releases it, and pool reuse
// never crosses a process boundary.
//
// Crash detection is symmetric heartbeats: both ends send kindHeartbeat
// every interval and arm a read deadline of the timeout (parameters are
// chosen by the hub and shipped in the welcome frame). A worker that
// vanishes (EOF, RST, deadline expiry, torn frame) is reported through
// HubConfig.OnLost so the caller can synthesize an ADLB Leave; the rank's
// route is tombstoned so later sends to it are swallowed rather than
// errored. A hub that vanishes aborts the worker's World.
package mpi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// Frame kinds on the TCP transport.
const (
	kindData      byte = 1 // u32 src, u32 dest, u32 tag, payload
	kindHello     byte = 2 // magic string; worker's first frame
	kindWelcome   byte = 3 // u32 rank, size, hbIntervalMs, hbTimeoutMs, blob
	kindHeartbeat byte = 4 // empty; liveness only
	kindGoodbye   byte = 5 // clean close; suppresses OnLost
	kindReject    byte = 6 // join refused; body is the reason
	kindAbort     byte = 7 // run aborted; body is the cause (both directions)
)

const (
	// tcpMagic is the hello body; it versions the frame layout.
	tcpMagic = "swift-adlb-tcp-1"
	// maxFrameBody bounds a frame body so a torn or hostile length prefix
	// is rejected instead of allocated.
	maxFrameBody = 64 << 20
	// maxControlBody bounds non-data frames (welcome blobs, abort
	// messages), which are always small.
	maxControlBody = 1 << 20
	// handshakeTimeout bounds the hello/welcome exchange.
	handshakeTimeout = 10 * time.Second
)

// Default heartbeat parameters, used when HubConfig leaves them zero.
const (
	defaultHeartbeatInterval = 200 * time.Millisecond
	defaultHeartbeatTimeout  = 2 * time.Second
)

// Link roles. The heartbeat fault site fires only on worker links so a
// test arming it in a shared process wedges exactly one side.
const (
	roleHub = iota
	roleWorker
)

// tcpFrame is one decoded frame. For kindData the payload is a buffer
// drawn from the reader's frame pool — ownership rules apply. For control
// kinds the body is a plain heap slice.
type tcpFrame struct {
	kind    byte
	src     int
	dest    int
	tag     int
	payload []byte
	body    []byte
}

// readFrame decodes one frame from r. Data payloads land in a buffer from
// frames; the caller owns it (inject transfers it onward, drops return it).
// Length prefixes beyond maxFrameBody — including the torn frames
// SiteTCPFrame emits — are rejected before any allocation.
func readFrame(r io.Reader, frames *framePool) (tcpFrame, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return tcpFrame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 || n > maxFrameBody {
		return tcpFrame{}, fmt.Errorf("mpi: tcp frame body length %d out of range [1,%d]", n, maxFrameBody)
	}
	kind := hdr[4]
	body := int(n) - 1
	if kind == kindData {
		if body < 12 {
			return tcpFrame{}, fmt.Errorf("mpi: tcp data frame body %d shorter than its header", body)
		}
		var dh [12]byte
		if _, err := io.ReadFull(r, dh[:]); err != nil {
			return tcpFrame{}, err
		}
		payload := frames.get(body - 12)
		if _, err := io.ReadFull(r, payload); err != nil {
			frames.put(payload)
			return tcpFrame{}, err
		}
		return tcpFrame{
			kind:    kindData,
			src:     int(binary.BigEndian.Uint32(dh[0:4])),
			dest:    int(binary.BigEndian.Uint32(dh[4:8])),
			tag:     int(binary.BigEndian.Uint32(dh[8:12])),
			payload: payload,
		}, nil
	}
	if body > maxControlBody {
		return tcpFrame{}, fmt.Errorf("mpi: tcp control frame body %d exceeds %d", body, maxControlBody)
	}
	buf := make([]byte, body)
	if _, err := io.ReadFull(r, buf); err != nil {
		return tcpFrame{}, err
	}
	return tcpFrame{kind: kind, body: buf}, nil
}

// tcpLink is one end of a connection. Writes are synchronous: one
// conn.Write per frame, serialized under wmu, assembled in a link-owned
// buffer that is deliberately not pooled — pool buffers belong to
// receivers, and sharing them with the writer would let wire traffic
// scribble over frames a rank still holds.
type tcpLink struct {
	conn      net.Conn
	role      int
	done      chan struct{}
	closeOnce sync.Once
	closed    bool // under wmu

	wmu  sync.Mutex
	wbuf []byte
}

func newLink(conn net.Conn, role int) *tcpLink {
	return &tcpLink{conn: conn, role: role, done: make(chan struct{})}
}

func (l *tcpLink) close() {
	l.closeOnce.Do(func() {
		l.wmu.Lock()
		l.closed = true
		l.wmu.Unlock()
		close(l.done)
		l.conn.Close()
	})
}

// sendFrame writes one frame. Sends on a closed link are swallowed: by
// then the peer is gone and the fault-tolerance layer has written it off.
func (l *tcpLink) sendFrame(kind byte, hdr []uint32, payload []byte) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if l.closed {
		return nil
	}
	if err := faultinject.At(faultinject.SiteTCPFrame); err != nil {
		// Emit a torn frame: a hostile length prefix with no body. The
		// peer's bounded readFrame rejects it and treats the link as dead,
		// which is exactly what a half-written frame from a dying process
		// looks like.
		var torn [4]byte
		binary.BigEndian.PutUint32(torn[:], uint32(maxFrameBody+1))
		l.conn.Write(torn[:])
		return nil
	}
	n := 1 + 4*len(hdr) + len(payload)
	if n > maxFrameBody {
		return fmt.Errorf("mpi: tcp frame body %d exceeds %d", n, maxFrameBody)
	}
	need := 4 + n
	if cap(l.wbuf) < need {
		l.wbuf = make([]byte, need)
	}
	b := l.wbuf[:need]
	binary.BigEndian.PutUint32(b[0:4], uint32(n))
	b[4] = kind
	off := 5
	for _, h := range hdr {
		binary.BigEndian.PutUint32(b[off:], h)
		off += 4
	}
	copy(b[off:], payload)
	if _, err := l.conn.Write(b); err != nil {
		return fmt.Errorf("mpi: tcp send: %w", err)
	}
	return nil
}

// sendData frames a point-to-point payload. Called from Comm.Send on
// routed destinations; data is copied into the link's write buffer before
// Write returns, so the caller may reuse its slice immediately, matching
// the local Send contract.
func (l *tcpLink) sendData(src, dest, tag int, data []byte) error {
	return l.sendFrame(kindData, []uint32{uint32(src), uint32(dest), uint32(tag)}, data)
}

// heartbeatLoop sends kindHeartbeat every interval until the link closes.
// On worker links each beat passes the SiteTCPHeartbeat fault gate first;
// an injected error suppresses the beat, producing a wedged-but-connected
// peer the remote deadline must catch.
func (l *tcpLink) heartbeatLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-t.C:
			if l.role == roleWorker {
				if err := faultinject.At(faultinject.SiteTCPHeartbeat); err != nil {
					continue
				}
			}
			if err := l.sendFrame(kindHeartbeat, nil, nil); err != nil {
				return
			}
		}
	}
}

// HubConfig configures ListenTCP.
type HubConfig struct {
	// Addr is the listen address; empty selects 127.0.0.1:0.
	Addr string
	// FirstRank is the first world rank assignable to a joining worker.
	FirstRank int
	// Slots is how many workers may ever join. Rank assignment is
	// monotonic — FirstRank, FirstRank+1, … — and ranks are never reused,
	// so a crashed worker's replacement gets a fresh identity and the
	// server-side lease bookkeeping of the dead rank stays unambiguous.
	Slots int
	// Welcome is an opaque blob delivered to each worker in its welcome
	// frame (the elastic runtime ships the compiled program in it).
	Welcome []byte
	// HeartbeatInterval and HeartbeatTimeout tune crash detection; the
	// hub is the single source of truth and ships them to workers.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// OnJoin runs after a worker is assigned a rank and welcomed.
	OnJoin func(rank int)
	// OnLost runs when a live worker vanishes uncleanly (EOF, read error,
	// heartbeat timeout, torn frame). The elastic runtime synthesizes an
	// ADLB Leave from it so the rank's leases requeue.
	OnLost func(rank int)
}

// Hub accepts worker joins for a World whose engine and server ranks run
// locally. Obtain one with World.ListenTCP.
type Hub struct {
	world *World
	cfg   HubConfig

	ln net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	joined int
	live   map[int]*tcpLink
	closed bool
}

// ListenTCP starts accepting TCP worker joins. Ranks
// [cfg.FirstRank, cfg.FirstRank+cfg.Slots) are reserved for joining
// workers and must not be run locally.
func (w *World) ListenTCP(cfg HubConfig) (*Hub, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = defaultHeartbeatInterval
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = defaultHeartbeatTimeout
	}
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("mpi: ListenTCP needs at least one worker slot, got %d", cfg.Slots)
	}
	if cfg.FirstRank < 0 || cfg.FirstRank+cfg.Slots > w.size {
		return nil, fmt.Errorf("mpi: worker ranks [%d,%d) out of world range [0,%d)",
			cfg.FirstRank, cfg.FirstRank+cfg.Slots, w.size)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: ListenTCP: %w", err)
	}
	h := &Hub{world: w, cfg: cfg, ln: ln, live: make(map[int]*tcpLink)}
	w.onAbort(func(cause error) { h.broadcastAbort(cause) })
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the hub's listen address, for workers to dial.
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// Workers returns the number of currently connected workers.
func (h *Hub) Workers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.live)
}

// Joined returns how many workers have ever been assigned a rank.
func (h *Hub) Joined() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.joined
}

// Close stops accepting joins, says goodbye to connected workers, and
// waits for their connection handlers to drain.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	links := make([]*tcpLink, 0, len(h.live))
	for _, l := range h.live {
		links = append(links, l)
	}
	h.mu.Unlock()
	h.ln.Close()
	for _, l := range links {
		l.sendFrame(kindGoodbye, nil, nil)
		l.close()
	}
	h.wg.Wait()
	return nil
}

func (h *Hub) broadcastAbort(cause error) {
	h.mu.Lock()
	links := make([]*tcpLink, 0, len(h.live))
	for _, l := range h.live {
		links = append(links, l)
	}
	h.mu.Unlock()
	for _, l := range links {
		l.sendFrame(kindAbort, nil, []byte(cause.Error()))
	}
}

func (h *Hub) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.serveConn(conn)
		}()
	}
}

// serveConn runs the handshake and then the per-worker read loop.
func (h *Hub) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	f, err := readFrame(br, &h.world.frames)
	if err != nil || f.kind != kindHello || string(f.body) != tcpMagic {
		if err == nil && f.kind == kindData {
			h.world.frames.put(f.payload)
		}
		conn.Close()
		return
	}
	h.mu.Lock()
	if h.closed || h.joined >= h.cfg.Slots {
		h.mu.Unlock()
		l := newLink(conn, roleHub)
		l.sendFrame(kindReject, nil, []byte("no worker slots available"))
		l.close()
		return
	}
	rank := h.cfg.FirstRank + h.joined
	h.joined++
	l := newLink(conn, roleHub)
	h.live[rank] = l
	h.mu.Unlock()

	h.world.setRoute(rank, &route{link: l})
	welcome := []uint32{
		uint32(rank),
		uint32(h.world.size),
		uint32(h.cfg.HeartbeatInterval / time.Millisecond),
		uint32(h.cfg.HeartbeatTimeout / time.Millisecond),
	}
	if err := l.sendFrame(kindWelcome, welcome, h.cfg.Welcome); err != nil {
		h.dropWorker(rank, l, false, err)
		return
	}
	go l.heartbeatLoop(h.cfg.HeartbeatInterval)
	if h.cfg.OnJoin != nil {
		h.cfg.OnJoin(rank)
	}
	h.readLoop(rank, l, br)
}

// readLoop receives frames from one worker until it leaves, dies, or the
// hub closes. Every received frame passes the SiteTCPConnDrop fault gate:
// an injected error makes the hub treat the connection as dropped mid-run.
func (h *Hub) readLoop(rank int, l *tcpLink, br *bufio.Reader) {
	clean := false
	var cause error
loop:
	for {
		l.conn.SetReadDeadline(time.Now().Add(h.cfg.HeartbeatTimeout))
		f, err := readFrame(br, &h.world.frames)
		if err == nil {
			if ierr := faultinject.At(faultinject.SiteTCPConnDrop); ierr != nil {
				if f.kind == kindData {
					h.world.frames.put(f.payload)
				}
				err = ierr
			}
		}
		if err != nil {
			cause = err
			break
		}
		switch f.kind {
		case kindData:
			h.deliver(f)
		case kindHeartbeat:
			// Liveness only; the next SetReadDeadline re-arms the watch.
		case kindGoodbye:
			clean = true
			break loop
		case kindAbort:
			h.world.Abort(fmt.Errorf("mpi: remote rank %d aborted: %s", rank, f.body))
			clean = true
			break loop
		default:
			cause = fmt.Errorf("mpi: unexpected frame kind %d from rank %d", f.kind, rank)
			break loop
		}
	}
	h.dropWorker(rank, l, clean, cause)
}

// deliver routes a worker's data frame: to a local mailbox when the
// destination runs in this process, or relayed down the destination's own
// link when it is another worker. Ownership of f.payload (a pool buffer)
// transfers to inject; on the relay path sendData copies it out, so it
// returns to the pool here.
func (h *Hub) deliver(f tcpFrame) {
	if r := h.world.routeFor(f.dest); r != nil {
		if !r.dead.Load() {
			r.link.sendData(f.src, f.dest, f.tag, f.payload)
		}
		h.world.frames.put(f.payload)
		return
	}
	h.world.inject(f.src, f.dest, f.tag, f.payload)
}

// dropWorker retires a worker connection. Unclean departures tombstone the
// rank's route (later sends to it are swallowed) and fire OnLost so the
// caller can reclaim its leases; clean goodbyes and hub shutdown do
// neither beyond the tombstone.
func (h *Hub) dropWorker(rank int, l *tcpLink, clean bool, cause error) {
	l.close()
	if r := h.world.routeFor(rank); r != nil {
		r.dead.Store(true)
	}
	h.mu.Lock()
	_, wasLive := h.live[rank]
	delete(h.live, rank)
	hubClosed := h.closed
	h.mu.Unlock()
	_ = cause
	if wasLive && !clean && !hubClosed && h.cfg.OnLost != nil {
		h.cfg.OnLost(rank)
	}
}

// WorkerConn is a worker process's membership in a remote World. The
// worker runs exactly one rank locally; every other rank is reached
// through the hub.
type WorkerConn struct {
	world   *World
	link    *tcpLink
	rank    int
	welcome []byte
}

// JoinTCP dials a hub, performs the hello/welcome handshake, and builds
// the local World: same size as the hub's, with this process's assigned
// rank local and all other ranks routed over the uplink.
func JoinTCP(addr string) (*WorkerConn, error) {
	conn, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return nil, fmt.Errorf("mpi: JoinTCP %s: %w", addr, err)
	}
	l := newLink(conn, roleWorker)
	if err := l.sendFrame(kindHello, nil, []byte(tcpMagic)); err != nil {
		l.close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	var scratch framePool // handshake frames are control-only; no data payloads land here
	f, err := readFrame(br, &scratch)
	if err != nil {
		l.close()
		return nil, fmt.Errorf("mpi: JoinTCP %s: handshake: %w", addr, err)
	}
	if f.kind == kindReject {
		l.close()
		return nil, fmt.Errorf("mpi: join rejected by %s: %s", addr, f.body)
	}
	if f.kind != kindWelcome || len(f.body) < 16 {
		l.close()
		return nil, fmt.Errorf("mpi: JoinTCP %s: malformed welcome", addr)
	}
	rank := int(binary.BigEndian.Uint32(f.body[0:4]))
	size := int(binary.BigEndian.Uint32(f.body[4:8]))
	hbInterval := time.Duration(binary.BigEndian.Uint32(f.body[8:12])) * time.Millisecond
	hbTimeout := time.Duration(binary.BigEndian.Uint32(f.body[12:16])) * time.Millisecond
	if hbInterval <= 0 {
		hbInterval = defaultHeartbeatInterval
	}
	if hbTimeout <= 0 {
		hbTimeout = defaultHeartbeatTimeout
	}
	w, err := NewWorld(size)
	if err != nil || rank < 0 || rank >= size {
		l.close()
		return nil, fmt.Errorf("mpi: JoinTCP %s: welcome assigned rank %d of world %d", addr, rank, size)
	}
	uplink := &route{link: l}
	for i := 0; i < size; i++ {
		if i != rank {
			w.setRoute(i, uplink)
		}
	}
	welcome := append([]byte(nil), f.body[16:]...)
	wc := &WorkerConn{world: w, link: l, rank: rank, welcome: welcome}
	// A locally-detected failure (watchdog, panic aggregation) must reach
	// the hub: forward the abort upstream. If the abort originated at the
	// hub this echoes one redundant, idempotent frame back.
	w.onAbort(func(cause error) {
		l.sendFrame(kindAbort, nil, []byte(cause.Error()))
	})
	go l.heartbeatLoop(hbInterval)
	go wc.readLoop(br, hbTimeout)
	return wc, nil
}

// World returns the worker-local view of the shared world.
func (wc *WorkerConn) World() *World { return wc.world }

// Rank returns the rank the hub assigned to this process.
func (wc *WorkerConn) Rank() int { return wc.rank }

// Welcome returns the opaque blob the hub shipped in the welcome frame.
func (wc *WorkerConn) Welcome() []byte { return wc.welcome }

// Close leaves cleanly: the hub sees a goodbye, not a crash, so no Leave
// is synthesized and OnLost does not fire.
func (wc *WorkerConn) Close() error {
	err := wc.link.sendFrame(kindGoodbye, nil, nil)
	wc.link.close()
	return err
}

// CloseWithError reports a worker-side failure to the hub (which aborts
// the run) and closes the connection.
func (wc *WorkerConn) CloseWithError(cause error) {
	if cause == nil {
		wc.Close()
		return
	}
	wc.link.sendFrame(kindAbort, nil, []byte(cause.Error()))
	wc.link.close()
}

func (wc *WorkerConn) readLoop(br *bufio.Reader, hbTimeout time.Duration) {
	for {
		wc.link.conn.SetReadDeadline(time.Now().Add(hbTimeout))
		f, err := readFrame(br, &wc.world.frames)
		if err != nil {
			select {
			case <-wc.link.done:
				// We closed the link ourselves; not a hub failure.
			default:
				wc.world.Abort(fmt.Errorf("mpi: rank %d lost connection to hub: %w", wc.rank, err))
				wc.link.close()
			}
			return
		}
		switch f.kind {
		case kindData:
			wc.world.inject(f.src, f.dest, f.tag, f.payload)
		case kindHeartbeat:
		case kindGoodbye:
			wc.link.close()
			return
		case kindAbort:
			wc.world.Abort(fmt.Errorf("mpi: hub aborted run: %s", f.body))
			wc.link.close()
			return
		default:
			wc.world.Abort(fmt.Errorf("mpi: unexpected frame kind %d from hub", f.kind))
			wc.link.close()
			return
		}
	}
}
