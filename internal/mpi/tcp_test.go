package mpi

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// hubWorld builds a world with one local rank (0) and worker slots for
// the remaining ranks, listening on a loopback port.
func hubWorld(t *testing.T, size int, cfg HubConfig) (*World, *Hub) {
	t.Helper()
	w, err := NewWorld(size)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FirstRank = 1
	cfg.Slots = size - 1
	h, err := w.ListenTCP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return w, h
}

func TestTCPSendRecvBothWays(t *testing.T) {
	w, h := hubWorld(t, 2, HubConfig{Welcome: []byte("blob")})
	wc, err := JoinTCP(h.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	if wc.Rank() != 1 {
		t.Fatalf("assigned rank %d, want 1", wc.Rank())
	}
	if wc.World().Size() != 2 {
		t.Fatalf("worker world size %d, want 2", wc.World().Size())
	}
	if string(wc.Welcome()) != "blob" {
		t.Fatalf("welcome %q", wc.Welcome())
	}

	c0, _ := w.Comm(0)
	cw, _ := wc.World().Comm(1)

	// Hub-local rank -> remote worker.
	if err := c0.Send(1, 7, []byte("down")); err != nil {
		t.Fatal(err)
	}
	data, st, err := cw.Recv(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "down" || st.Source != 0 || st.Tag != 7 {
		t.Fatalf("data=%q st=%+v", data, st)
	}
	// The payload landed in the worker world's frame pool; releasing it
	// feeds worker-side reuse, never the hub's pool.
	cw.Release(data)
	_, _, puts := wc.World().FramePoolStats()
	if puts == 0 {
		t.Fatal("released frame did not reach the worker-side pool")
	}

	// Remote worker -> hub-local rank.
	if err := cw.Send(0, 9, []byte("up")); err != nil {
		t.Fatal(err)
	}
	data, st, err = c0.Recv(1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "up" || st.Source != 1 || st.Tag != 9 {
		t.Fatalf("data=%q st=%+v", data, st)
	}
	c0.Release(data)
}

func TestTCPWorkerToWorkerRelay(t *testing.T) {
	_, h := hubWorld(t, 3, HubConfig{})
	wcA, err := JoinTCP(h.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer wcA.Close()
	wcB, err := JoinTCP(h.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer wcB.Close()
	if wcA.Rank() != 1 || wcB.Rank() != 2 {
		t.Fatalf("ranks %d,%d, want 1,2", wcA.Rank(), wcB.Rank())
	}
	ca, _ := wcA.World().Comm(1)
	cb, _ := wcB.World().Comm(2)
	if err := ca.Send(2, 3, []byte("via hub")); err != nil {
		t.Fatal(err)
	}
	data, st, err := cb.Recv(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "via hub" || st.Source != 1 {
		t.Fatalf("data=%q st=%+v", data, st)
	}
}

func TestTCPJoinMonotonicRanksAndSlotExhaustion(t *testing.T) {
	_, h := hubWorld(t, 3, HubConfig{})
	wc1, err := JoinTCP(h.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer wc1.Close()
	wc2, err := JoinTCP(h.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer wc2.Close()
	if wc1.Rank() != 1 || wc2.Rank() != 2 {
		t.Fatalf("ranks %d,%d", wc1.Rank(), wc2.Rank())
	}
	if h.Workers() != 2 || h.Joined() != 2 {
		t.Fatalf("workers=%d joined=%d", h.Workers(), h.Joined())
	}
	// Third join: slots exhausted, rejected with a reason.
	if _, err := JoinTCP(h.Addr()); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("expected rejection, got %v", err)
	}
}

func TestTCPWorkerCrashFiresOnLost(t *testing.T) {
	lost := make(chan int, 1)
	w, h := hubWorld(t, 2, HubConfig{
		OnLost: func(rank int) { lost <- rank },
	})
	wc, err := JoinTCP(h.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Kill the connection without a goodbye: the hub must see the EOF,
	// tombstone the route, and report the loss.
	wc.link.conn.Close()
	select {
	case rank := <-lost:
		if rank != 1 {
			t.Fatalf("lost rank %d, want 1", rank)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnLost did not fire")
	}
	// Sends to the dead rank are swallowed, not errored: the rank has
	// been written off.
	c0, _ := w.Comm(0)
	if err := c0.Send(1, 1, []byte("into the void")); err != nil {
		t.Fatalf("send to dead rank errored: %v", err)
	}
}

func TestTCPCleanGoodbyeSuppressesOnLost(t *testing.T) {
	lost := make(chan int, 1)
	_, h := hubWorld(t, 2, HubConfig{
		OnLost: func(rank int) { lost <- rank },
	})
	wc, err := JoinTCP(h.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wc.Close()
	// Give the hub time to process the goodbye; OnLost must stay silent.
	deadline := time.After(500 * time.Millisecond)
	for {
		select {
		case rank := <-lost:
			t.Fatalf("OnLost fired for cleanly departed rank %d", rank)
		case <-deadline:
		}
		break
	}
	if h.Workers() != 0 {
		t.Fatalf("workers=%d after goodbye, want 0", h.Workers())
	}
}

func TestTCPHeartbeatLossWedgedPeer(t *testing.T) {
	defer faultinject.Reset()
	// Suppress every worker heartbeat: the peer stays connected but
	// silent, and only the hub's read deadline can catch it.
	faultinject.Arm(faultinject.SiteTCPHeartbeat, faultinject.Plan{
		Hit: 1, Times: -1, Action: faultinject.ActError, Msg: "wedged",
	})
	lost := make(chan int, 1)
	_, h := hubWorld(t, 2, HubConfig{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  150 * time.Millisecond,
		OnLost:            func(rank int) { lost <- rank },
	})
	wc, err := JoinTCP(h.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	select {
	case rank := <-lost:
		if rank != 1 {
			t.Fatalf("lost rank %d, want 1", rank)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hub did not time out the wedged peer")
	}
	if got := faultinject.Hits(faultinject.SiteTCPHeartbeat); got == 0 {
		t.Fatal("heartbeat fault site never hit")
	}
}

func TestTCPConnDropSite(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.SiteTCPConnDrop, faultinject.Plan{
		Hit: 1, Action: faultinject.ActError, Msg: "injected drop",
	})
	lost := make(chan int, 1)
	_, h := hubWorld(t, 2, HubConfig{
		HeartbeatInterval: 20 * time.Millisecond,
		OnLost:            func(rank int) { lost <- rank },
	})
	wc, err := JoinTCP(h.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	// The worker's first frame (a heartbeat) trips the injected drop.
	select {
	case rank := <-lost:
		if rank != 1 {
			t.Fatalf("lost rank %d, want 1", rank)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("injected connection drop was not detected")
	}
}

func TestTCPTornFrameRejected(t *testing.T) {
	defer faultinject.Reset()
	lost := make(chan int, 1)
	_, h := hubWorld(t, 2, HubConfig{
		// Quiet heartbeats so the armed write fault hits the worker's
		// data frame, not a background beat.
		HeartbeatInterval: time.Hour,
		OnLost:            func(rank int) { lost <- rank },
	})
	wc, err := JoinTCP(h.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	faultinject.Arm(faultinject.SiteTCPFrame, faultinject.Plan{
		Hit: 1, Action: faultinject.ActError, Msg: "torn frame",
	})
	cw, _ := wc.World().Comm(1)
	if err := cw.Send(0, 1, []byte("never arrives")); err != nil {
		t.Fatal(err)
	}
	select {
	case rank := <-lost:
		if rank != 1 {
			t.Fatalf("lost rank %d, want 1", rank)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("torn frame was not rejected")
	}
}

func TestReadFrameRejectsHostileAndTruncated(t *testing.T) {
	var pool framePool
	// Hostile length prefix: rejected before any allocation.
	var hostile [5]byte
	binary.BigEndian.PutUint32(hostile[:4], uint32(maxFrameBody+1))
	hostile[4] = kindData
	if _, err := readFrame(bytes.NewReader(hostile[:]), &pool); err == nil {
		t.Fatal("hostile length prefix accepted")
	}
	// Zero-length body: no kind byte to read.
	if _, err := readFrame(bytes.NewReader(make([]byte, 4)), &pool); err == nil {
		t.Fatal("empty frame accepted")
	}
	// Truncated data frame: header promises more payload than arrives.
	buf := &bytes.Buffer{}
	binary.BigEndian.PutUint32(hostile[:4], 1+12+100)
	buf.Write(hostile[:4])
	buf.WriteByte(kindData)
	buf.Write(make([]byte, 12))
	buf.Write(make([]byte, 50)) // 50 of the promised 100 payload bytes
	if _, err := readFrame(buf, &pool); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: err=%v, want unexpected EOF", err)
	}
	// Oversized control frame: bounded separately (and far smaller).
	buf.Reset()
	binary.BigEndian.PutUint32(hostile[:4], uint32(maxControlBody+2))
	buf.Write(hostile[:4])
	buf.WriteByte(kindAbort)
	if _, err := readFrame(buf, &pool); err == nil || !strings.Contains(err.Error(), "control frame") {
		t.Fatalf("oversized control frame: %v", err)
	}
}

func FuzzTCPFrameHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, kindHeartbeat})
	f.Add([]byte{0, 0, 0, 13, kindData, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 5})
	seed := make([]byte, 4)
	binary.BigEndian.PutUint32(seed, uint32(maxFrameBody+1))
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		var pool framePool
		fr, err := readFrame(bytes.NewReader(data), &pool)
		if err != nil {
			return
		}
		if fr.kind == kindData {
			if len(fr.payload) > maxFrameBody {
				t.Fatalf("payload %d exceeds bound", len(fr.payload))
			}
			pool.put(fr.payload)
		} else if len(fr.body) > maxControlBody {
			t.Fatalf("control body %d exceeds bound", len(fr.body))
		}
	})
}

// TestRecvTimeoutWakeupCount pins the single-wakeup property of the
// reworked RecvTimeout: one waiter's expiring deadline signals only that
// waiter. Before the rework every deadline Broadcast to all waiters, so
// N parked ranks woke N^2 times under idle polling.
func TestRecvTimeoutWakeupCount(t *testing.T) {
	w, _ := NewWorld(1)
	// Two handles on the same rank share one mailbox; each goroutine
	// owns its handle, matching the one-goroutine-per-Comm rule.
	cA, _ := w.Comm(0)
	cB, _ := w.Comm(0)

	bDone := make(chan bool, 1)
	go func() {
		_, _, ok, _ := cB.RecvTimeout(AnySource, AnyTag, 2*time.Second)
		bDone <- ok
	}()
	time.Sleep(20 * time.Millisecond) // let B park first

	if _, _, ok, err := cA.RecvTimeout(AnySource, AnyTag, 30*time.Millisecond); ok || err != nil {
		t.Fatalf("A: ok=%v err=%v", ok, err)
	}
	// A's deadline fired and woke A alone; B is still parked with its
	// own timer pending.
	if got := w.mailboxWakeups(0); got != 1 {
		t.Fatalf("wakeups after one expiry = %d, want 1 (expired timer woke other waiters)", got)
	}
	if err := cA.Send(0, 0, []byte("for B")); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-bDone:
		if !ok {
			t.Fatal("B timed out instead of receiving")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("B never woke for the send")
	}
	if got := w.mailboxWakeups(0); got != 2 {
		t.Fatalf("wakeups after delivery = %d, want 2", got)
	}
}
