// Package nativelib models the native-code side of the paper's §III-B:
// compiled C/C++/Fortran libraries whose functions are made callable from
// Swift through SWIG-generated Tcl bindings. A Library is the loadable
// shared object (symbols resolved by name, as dlopen would); the kernels
// here are Go functions with C-like signatures operating on scalars and
// blobs, standing in for the compiled numerics the paper's applications
// use (the repro environment has no cgo, so the "native" ABI boundary is
// the typed argument marshalling, which is the part the paper's
// machinery actually exercises).
package nativelib

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/blob"
)

// Kernel is one native function: it receives already-converted arguments
// (int64, float64, string, or blob.Blob per its declared signature) and
// returns one value of those types (or nil for void).
type Kernel func(args []any) (any, error)

// Library is a loadable native library: a symbol table plus the C header
// describing its exported functions (the input to SWIG).
type Library struct {
	Name    string
	Header  string
	symbols map[string]Kernel
}

// NewLibrary creates an empty library.
func NewLibrary(name, header string) *Library {
	return &Library{Name: name, Header: header, symbols: map[string]Kernel{}}
}

// Define adds a symbol to the library.
func (l *Library) Define(name string, k Kernel) { l.symbols[name] = k }

// Resolve looks a symbol up, as dlsym would.
func (l *Library) Resolve(name string) (Kernel, error) {
	k, ok := l.symbols[name]
	if !ok {
		return nil, fmt.Errorf("nativelib: undefined symbol %q in %s", name, l.Name)
	}
	return k, nil
}

// Symbols lists exported symbol names, sorted.
func (l *Library) Symbols() []string {
	out := make([]string, 0, len(l.symbols))
	for n := range l.symbols {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

var (
	regMu    sync.Mutex
	registry = map[string]*Library{}
)

// Register installs a library into the process-wide registry (ldconfig).
func Register(l *Library) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[l.Name] = l
}

// Open resolves a registered library by name, as dlopen would.
func Open(name string) (*Library, error) {
	regMu.Lock()
	defer regMu.Unlock()
	if l, ok := registry[name]; ok {
		return l, nil
	}
	return nil, fmt.Errorf("nativelib: cannot open shared library %q", name)
}

// ---- libsim: the numerical kernels used by the examples/benchmarks ----

// SimHeader is the C header for the libsim example library, processed by
// the swig package to produce Tcl bindings (paper Fig. 3).
const SimHeader = `
/* libsim: core numerics for the ensemble examples (compute.c) */
double sim_energy(double* data, int n);
double sim_lattice(int cells, int steps, double coupling);
void   sim_scale(double* data, int n, double factor);
int    sim_count_above(double* data, int n, double threshold);
double sim_dot(double* a, double* b, int n);
char*  sim_version();
double sim_waveform(int i, double dt);
`

// NewSimLibrary builds the libsim library with its kernels defined.
func NewSimLibrary() *Library {
	l := NewLibrary("libsim", SimHeader)

	l.Define("sim_energy", func(args []any) (any, error) {
		data, n, err := blobAndLen(args, 0, 1)
		if err != nil {
			return nil, err
		}
		// A Lennard-Jones-flavoured pair energy over a 1-D chain.
		e := 0.0
		for i := 1; i < n; i++ {
			r := math.Abs(data[i]-data[i-1]) + 1e-9
			r6 := math.Pow(1.0/r, 6)
			e += 4 * (r6*r6 - r6)
		}
		return e, nil
	})

	l.Define("sim_lattice", func(args []any) (any, error) {
		if err := arity(args, 3); err != nil {
			return nil, err
		}
		cells, ok1 := args[0].(int64)
		steps, ok2 := args[1].(int64)
		coupling, ok3 := args[2].(float64)
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("sim_lattice: bad argument types")
		}
		if cells < 1 || steps < 0 {
			return nil, fmt.Errorf("sim_lattice: invalid extents %d x %d", cells, steps)
		}
		// Deterministic relaxation of a 1-D lattice (heat equation-ish).
		cur := make([]float64, cells)
		for i := range cur {
			cur[i] = math.Sin(float64(i) * 0.7)
		}
		next := make([]float64, cells)
		for s := int64(0); s < steps; s++ {
			for i := range cur {
				left := cur[(i-1+int(cells))%int(cells)]
				right := cur[(i+1)%int(cells)]
				next[i] = cur[i] + coupling*(left+right-2*cur[i])
			}
			cur, next = next, cur
		}
		total := 0.0
		for _, v := range cur {
			total += v * v
		}
		return total, nil
	})

	l.Define("sim_scale", func(args []any) (any, error) {
		if err := arity(args, 3); err != nil {
			return nil, err
		}
		b, ok := args[0].(blob.Blob)
		if !ok {
			return nil, fmt.Errorf("sim_scale: arg 0 must be a blob")
		}
		n, ok := args[1].(int64)
		if !ok {
			return nil, fmt.Errorf("sim_scale: arg 1 must be an int")
		}
		factor, ok := args[2].(float64)
		if !ok {
			return nil, fmt.Errorf("sim_scale: arg 2 must be a double")
		}
		data, err := blob.ToFloat64s(b)
		if err != nil {
			return nil, err
		}
		if int(n) > len(data) {
			return nil, fmt.Errorf("sim_scale: n=%d exceeds buffer of %d", n, len(data))
		}
		for i := 0; i < int(n); i++ {
			data[i] *= factor
		}
		// In C this mutates in place; across our ABI we return the blob.
		return blob.FromFloat64s(data), nil
	})

	l.Define("sim_count_above", func(args []any) (any, error) {
		data, n, err := blobAndLen(args, 0, 1)
		if err != nil {
			return nil, err
		}
		if err := arity(args, 3); err != nil {
			return nil, err
		}
		th, ok := args[2].(float64)
		if !ok {
			return nil, fmt.Errorf("sim_count_above: arg 2 must be a double")
		}
		count := int64(0)
		for i := 0; i < n; i++ {
			if data[i] > th {
				count++
			}
		}
		return count, nil
	})

	l.Define("sim_dot", func(args []any) (any, error) {
		if err := arity(args, 3); err != nil {
			return nil, err
		}
		ab, ok1 := args[0].(blob.Blob)
		bb, ok2 := args[1].(blob.Blob)
		n, ok3 := args[2].(int64)
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("sim_dot: bad argument types")
		}
		av, err := blob.ToFloat64s(ab)
		if err != nil {
			return nil, err
		}
		bv, err := blob.ToFloat64s(bb)
		if err != nil {
			return nil, err
		}
		if int(n) > len(av) || int(n) > len(bv) {
			return nil, fmt.Errorf("sim_dot: n=%d exceeds buffers (%d, %d)", n, len(av), len(bv))
		}
		s := 0.0
		for i := 0; i < int(n); i++ {
			s += av[i] * bv[i]
		}
		return s, nil
	})

	l.Define("sim_version", func(args []any) (any, error) {
		if err := arity(args, 0); err != nil {
			return nil, err
		}
		return "libsim 1.0 (reproduction)", nil
	})

	l.Define("sim_waveform", func(args []any) (any, error) {
		if err := arity(args, 2); err != nil {
			return nil, err
		}
		i, ok1 := args[0].(int64)
		dt, ok2 := args[1].(float64)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("sim_waveform: bad argument types")
		}
		t := float64(i) * dt
		return math.Sin(2*math.Pi*t) + 0.25*math.Sin(6*math.Pi*t), nil
	})

	return l
}

func arity(args []any, n int) error {
	if len(args) != n {
		return fmt.Errorf("nativelib: expected %d arguments, got %d", n, len(args))
	}
	return nil
}

func blobAndLen(args []any, bi, ni int) ([]float64, int, error) {
	if len(args) <= ni {
		return nil, 0, fmt.Errorf("nativelib: missing arguments")
	}
	b, ok := args[bi].(blob.Blob)
	if !ok {
		return nil, 0, fmt.Errorf("nativelib: arg %d must be a blob (double*)", bi)
	}
	n, ok := args[ni].(int64)
	if !ok {
		return nil, 0, fmt.Errorf("nativelib: arg %d must be an int length", ni)
	}
	data, err := blob.ToFloat64s(b)
	if err != nil {
		return nil, 0, err
	}
	if int(n) > len(data) {
		return nil, 0, fmt.Errorf("nativelib: n=%d exceeds buffer of %d doubles", n, len(data))
	}
	return data, int(n), nil
}
