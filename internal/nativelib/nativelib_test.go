package nativelib

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/blob"
)

func TestLibraryDefineResolve(t *testing.T) {
	l := NewLibrary("libtest", "int f(int x);")
	l.Define("f", func(args []any) (any, error) { return args[0], nil })
	k, err := l.Resolve("f")
	if err != nil {
		t.Fatal(err)
	}
	out, err := k([]any{int64(7)})
	if err != nil || out.(int64) != 7 {
		t.Fatalf("%v %v", out, err)
	}
	if _, err := l.Resolve("g"); err == nil || !strings.Contains(err.Error(), "undefined symbol") {
		t.Fatalf("err = %v", err)
	}
}

func TestSimEnergy(t *testing.T) {
	l := NewSimLibrary()
	k, _ := l.Resolve("sim_energy")
	// Equally spaced chain at the LJ minimum r=2^(1/6) has energy -1 per
	// pair; 3 points -> 2 pairs.
	r := math.Pow(2, 1.0/6)
	b := blob.FromFloat64s([]float64{0, r, 2 * r})
	out, err := k([]any{b, int64(3)})
	if err != nil {
		t.Fatal(err)
	}
	e := out.(float64)
	if math.Abs(e-(-2)) > 1e-6 {
		t.Fatalf("energy = %v, want -2", e)
	}
	// Bad arguments.
	if _, err := k([]any{b}); err == nil {
		t.Fatal("missing length accepted")
	}
	if _, err := k([]any{b, int64(99)}); err == nil {
		t.Fatal("oversized n accepted")
	}
	if _, err := k([]any{"not a blob", int64(1)}); err == nil {
		t.Fatal("non-blob accepted")
	}
}

func TestSimLattice(t *testing.T) {
	l := NewSimLibrary()
	k, _ := l.Resolve("sim_lattice")
	out, err := k([]any{int64(32), int64(5), 0.1})
	if err != nil {
		t.Fatal(err)
	}
	e1 := out.(float64)
	if e1 <= 0 {
		t.Fatalf("energy = %v", e1)
	}
	// Relaxation is dissipative: more steps, less energy.
	out2, _ := k([]any{int64(32), int64(50), 0.1})
	if out2.(float64) >= e1 {
		t.Fatalf("relaxation did not dissipate: %v -> %v", e1, out2)
	}
	// Deterministic.
	out3, _ := k([]any{int64(32), int64(5), 0.1})
	if out3.(float64) != e1 {
		t.Fatal("kernel is nondeterministic")
	}
	if _, err := k([]any{int64(0), int64(1), 0.1}); err == nil {
		t.Fatal("zero cells accepted")
	}
}

func TestSimScaleAndDot(t *testing.T) {
	l := NewSimLibrary()
	scale, _ := l.Resolve("sim_scale")
	dot, _ := l.Resolve("sim_dot")
	a := blob.FromFloat64s([]float64{1, 2, 3})
	out, err := scale([]any{a, int64(3), 2.0})
	if err != nil {
		t.Fatal(err)
	}
	scaled := out.(blob.Blob)
	v, _ := blob.ToFloat64s(scaled)
	if v[2] != 6 {
		t.Fatalf("scaled = %v", v)
	}
	d, err := dot([]any{a, scaled, int64(3)})
	if err != nil {
		t.Fatal(err)
	}
	if d.(float64) != 1*2+2*4+3*6 {
		t.Fatalf("dot = %v", d)
	}
}

func TestSimDotProperty(t *testing.T) {
	l := NewSimLibrary()
	dot, _ := l.Resolve("sim_dot")
	f := func(xs []float64) bool {
		if len(xs) == 0 || len(xs) > 64 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.Abs(x) > 1e100 {
				return true
			}
		}
		b := blob.FromFloat64s(xs)
		out, err := dot([]any{b, b, int64(len(xs))})
		if err != nil {
			return false
		}
		want := 0.0
		for _, x := range xs {
			want += x * x
		}
		got := out.(float64)
		return got == want || math.Abs(got-want) < 1e-9*math.Abs(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSimCountAboveAndWaveform(t *testing.T) {
	l := NewSimLibrary()
	count, _ := l.Resolve("sim_count_above")
	b := blob.FromFloat64s([]float64{-1, 0.5, 2, 3})
	out, err := count([]any{b, int64(4), 1.0})
	if err != nil || out.(int64) != 2 {
		t.Fatalf("%v %v", out, err)
	}
	wave, _ := l.Resolve("sim_waveform")
	w0, _ := wave([]any{int64(0), 0.25})
	if w0.(float64) != math.Sin(0)+0.25*math.Sin(0) {
		t.Fatalf("waveform(0) = %v", w0)
	}
	// Periodic: t=1.0 equals t=0 within float error.
	w4, _ := wave([]any{int64(4), 0.25})
	if math.Abs(w4.(float64)) > 1e-12 {
		t.Fatalf("waveform(period) = %v", w4)
	}
}

func TestVersionString(t *testing.T) {
	l := NewSimLibrary()
	k, _ := l.Resolve("sim_version")
	out, err := k(nil)
	if err != nil || !strings.Contains(out.(string), "libsim") {
		t.Fatalf("%v %v", out, err)
	}
	if _, err := k([]any{int64(1)}); err == nil {
		t.Fatal("extra args accepted")
	}
}
