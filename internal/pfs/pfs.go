// Package pfs simulates a parallel filesystem (GPFS/Lustre-class) with an
// explicit metadata-server cost model. The paper motivates embedded
// interpreters and static packages by the overhead of "small file system
// accesses common in scripted approaches" (§I, §III-C): every open/stat
// is a round trip to a metadata server that serialises requests, so
// loading thousands of small script files from thousands of ranks melts
// down, while one large package file costs a single metadata op plus a
// bandwidth-bound read.
//
// Costs are charged to virtual clocks (atomic nanosecond counters), so
// benchmarks are deterministic and fast while preserving the shape of
// the real pathology: metadata time scales with operation count,
// data time with bytes over shared bandwidth.
package pfs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets the filesystem cost model.
type Config struct {
	// MetadataLatency is the cost of one metadata operation (open,
	// stat, create). Operations serialise at the metadata server.
	MetadataLatency time.Duration
	// ReadBandwidth is the shared data bandwidth in bytes/second.
	ReadBandwidth float64
}

// DefaultConfig mimics a mid-sized cluster filesystem: 500µs per
// metadata op, 2 GB/s aggregate read bandwidth.
func DefaultConfig() Config {
	return Config{MetadataLatency: 500 * time.Microsecond, ReadBandwidth: 2e9}
}

// Stats counts operations and charged virtual time.
type Stats struct {
	MetaOps   atomic.Int64
	BytesRead atomic.Int64
	metaNanos atomic.Int64
	dataNanos atomic.Int64
}

// FS is one simulated filesystem instance shared by all ranks.
type FS struct {
	mu    sync.RWMutex
	files map[string][]byte
	cfg   Config
	stats Stats
}

// New creates a filesystem with the given cost model.
func New(cfg Config) *FS {
	if cfg.MetadataLatency <= 0 {
		cfg.MetadataLatency = DefaultConfig().MetadataLatency
	}
	if cfg.ReadBandwidth <= 0 {
		cfg.ReadBandwidth = DefaultConfig().ReadBandwidth
	}
	return &FS{files: map[string][]byte{}, cfg: cfg}
}

// Provision installs a file without charging I/O cost (used to stage
// inputs before an experiment starts, like a pre-existing install).
func (fs *FS) Provision(path string, content []byte) {
	fs.mu.Lock()
	fs.files[path] = append([]byte(nil), content...)
	fs.mu.Unlock()
}

// WriteFile creates or replaces a file, charging one metadata op.
func (fs *FS) WriteFile(path string, content []byte) {
	fs.chargeMeta()
	fs.Provision(path, content)
}

// chargeMeta accounts one serialized metadata operation.
func (fs *FS) chargeMeta() {
	fs.stats.MetaOps.Add(1)
	fs.stats.metaNanos.Add(int64(fs.cfg.MetadataLatency))
}

// chargeRead accounts a bandwidth-bound data read.
func (fs *FS) chargeRead(n int) {
	fs.stats.BytesRead.Add(int64(n))
	fs.stats.dataNanos.Add(int64(float64(n) / fs.cfg.ReadBandwidth * 1e9))
}

// ReadFile opens and reads a file: one metadata op plus the data cost.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	fs.chargeMeta()
	fs.mu.RLock()
	content, ok := fs.files[path]
	fs.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("pfs: no such file: %s", path)
	}
	fs.chargeRead(len(content))
	out := make([]byte, len(content))
	copy(out, content)
	return out, nil
}

// Stat charges one metadata op and reports existence and size.
func (fs *FS) Stat(path string) (int, bool) {
	fs.chargeMeta()
	fs.mu.RLock()
	content, ok := fs.files[path]
	fs.mu.RUnlock()
	return len(content), ok
}

// List returns all paths with the given prefix (no cost; an aid for
// tests and tools, not part of the modelled workload).
func (fs *FS) List(prefix string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if len(p) >= len(prefix) && p[:len(prefix)] == prefix {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// MetaOps returns the metadata operation count.
func (fs *FS) MetaOps() int64 { return fs.stats.MetaOps.Load() }

// BytesRead returns the total data bytes read.
func (fs *FS) BytesRead() int64 { return fs.stats.BytesRead.Load() }

// VirtualElapsed returns the modelled wall time of all I/O so far: the
// serialized metadata time plus the bandwidth-bound data time.
func (fs *FS) VirtualElapsed() time.Duration {
	return time.Duration(fs.stats.metaNanos.Load() + fs.stats.dataNanos.Load())
}

// ResetStats zeroes the counters and clocks (files remain).
func (fs *FS) ResetStats() {
	fs.stats.MetaOps.Store(0)
	fs.stats.BytesRead.Store(0)
	fs.stats.metaNanos.Store(0)
	fs.stats.dataNanos.Store(0)
}

// SourceFS adapts the filesystem for tcl.Interp.SourceFS.
func (fs *FS) SourceFS(path string) (string, error) {
	b, err := fs.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
