package pfs

import (
	"strings"
	"testing"
	"time"
)

func TestReadWriteStat(t *testing.T) {
	fs := New(DefaultConfig())
	fs.WriteFile("/a/b.tcl", []byte("proc x {} {}"))
	content, err := fs.ReadFile("/a/b.tcl")
	if err != nil || string(content) != "proc x {} {}" {
		t.Fatalf("read: %q %v", content, err)
	}
	if _, err := fs.ReadFile("/missing"); err == nil {
		t.Fatal("expected missing file error")
	}
	size, ok := fs.Stat("/a/b.tcl")
	if !ok || size != 12 {
		t.Fatalf("stat: %d %v", size, ok)
	}
	if _, ok := fs.Stat("/missing"); ok {
		t.Fatal("stat of missing file")
	}
	// Reads return copies.
	content[0] = 'X'
	again, _ := fs.ReadFile("/a/b.tcl")
	if again[0] == 'X' {
		t.Fatal("ReadFile aliases internal storage")
	}
}

func TestCostAccounting(t *testing.T) {
	cfg := Config{MetadataLatency: time.Millisecond, ReadBandwidth: 1e6} // 1 MB/s
	fs := New(cfg)
	fs.Provision("/data", make([]byte, 1000)) // free
	if fs.MetaOps() != 0 {
		t.Fatal("provision should be free")
	}
	fs.ReadFile("/data")
	if fs.MetaOps() != 1 {
		t.Fatalf("meta ops = %d", fs.MetaOps())
	}
	if fs.BytesRead() != 1000 {
		t.Fatalf("bytes = %d", fs.BytesRead())
	}
	// 1 meta op (1ms) + 1000 bytes at 1MB/s (1ms) = 2ms.
	if got := fs.VirtualElapsed(); got != 2*time.Millisecond {
		t.Fatalf("virtual elapsed = %v", got)
	}
	// Metadata cost dominates many small reads: 100 reads of 10 bytes.
	fs.ResetStats()
	fs.Provision("/small", make([]byte, 10))
	for i := 0; i < 100; i++ {
		fs.ReadFile("/small")
	}
	small := fs.VirtualElapsed()
	fs.ResetStats()
	fs.Provision("/big", make([]byte, 1000))
	fs.ReadFile("/big")
	big := fs.VirtualElapsed()
	if small <= big*10 {
		t.Fatalf("many-small-files should dominate: small=%v big=%v", small, big)
	}
}

func TestList(t *testing.T) {
	fs := New(DefaultConfig())
	fs.Provision("/pkg/a.tcl", nil)
	fs.Provision("/pkg/b.tcl", nil)
	fs.Provision("/other", nil)
	got := fs.List("/pkg/")
	if len(got) != 2 || got[0] != "/pkg/a.tcl" {
		t.Fatalf("list = %v", got)
	}
}

func TestSourceFS(t *testing.T) {
	fs := New(DefaultConfig())
	fs.Provision("/s.tcl", []byte("set x 1"))
	content, err := fs.SourceFS("/s.tcl")
	if err != nil || content != "set x 1" {
		t.Fatalf("%q %v", content, err)
	}
	if _, err := fs.SourceFS("/nope"); err == nil || !strings.Contains(err.Error(), "no such file") {
		t.Fatalf("err = %v", err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	fs := New(Config{})
	fs.Provision("/x", []byte("y"))
	fs.ReadFile("/x")
	if fs.VirtualElapsed() <= 0 {
		t.Fatal("zero-config FS charged nothing")
	}
}
