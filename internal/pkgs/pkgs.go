// Package pkgs implements the static-package mechanism the paper offers
// against the many-small-files problem (§I, §IV: "the many small file
// problem common in scripted solutions can be addressed with our static
// packages"). A Bundle archives the Tcl scripts, generated SWIG wrapper
// sources, and data files of an application into one file; ranks load the
// bundle with a single metadata operation and one bandwidth-bound read,
// then source members from memory at zero filesystem cost.
package pkgs

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/pfs"
)

// Bundle is an in-memory static package.
type Bundle struct {
	files map[string][]byte
}

// NewBundle creates an empty bundle.
func NewBundle() *Bundle { return &Bundle{files: map[string][]byte{}} }

// Add stores a member file.
func (b *Bundle) Add(path string, content []byte) {
	b.files[path] = append([]byte(nil), content...)
}

// AddString stores a text member.
func (b *Bundle) AddString(path, content string) { b.Add(path, []byte(content)) }

// Read returns a member's content.
func (b *Bundle) Read(path string) ([]byte, error) {
	c, ok := b.files[path]
	if !ok {
		return nil, fmt.Errorf("pkgs: bundle has no member %q", path)
	}
	return c, nil
}

// Members lists member paths, sorted.
func (b *Bundle) Members() []string {
	out := make([]string, 0, len(b.files))
	for p := range b.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (b *Bundle) Len() int { return len(b.files) }

const bundleMagic = 0x53504B47 // "SPKG"

// Pack serialises the bundle deterministically (sorted members).
func (b *Bundle) Pack() []byte {
	var out []byte
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], bundleMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(b.files)))
	out = append(out, hdr[:]...)
	for _, p := range b.Members() {
		content := b.files[p]
		var lens [8]byte
		binary.LittleEndian.PutUint32(lens[:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(lens[4:], uint32(len(content)))
		out = append(out, lens[:]...)
		out = append(out, p...)
		out = append(out, content...)
	}
	return out
}

// Unpack parses a serialised bundle.
func Unpack(data []byte) (*Bundle, error) {
	if len(data) < 8 || binary.LittleEndian.Uint32(data[:4]) != bundleMagic {
		return nil, fmt.Errorf("pkgs: not a static package (bad magic)")
	}
	n := int(binary.LittleEndian.Uint32(data[4:8]))
	b := NewBundle()
	off := 8
	for i := 0; i < n; i++ {
		if off+8 > len(data) {
			return nil, fmt.Errorf("pkgs: truncated bundle header at member %d", i)
		}
		pl := int(binary.LittleEndian.Uint32(data[off : off+4]))
		cl := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		off += 8
		if off+pl+cl > len(data) {
			return nil, fmt.Errorf("pkgs: truncated bundle member %d", i)
		}
		path := string(data[off : off+pl])
		off += pl
		b.Add(path, data[off:off+cl])
		off += cl
	}
	return b, nil
}

// Install writes the packed bundle to the filesystem (one metadata op).
func Install(fs *pfs.FS, path string, b *Bundle) {
	fs.WriteFile(path, b.Pack())
}

// Load fetches and parses a bundle: one metadata op + one large read,
// which is the whole point versus N small files.
func Load(fs *pfs.FS, path string) (*Bundle, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unpack(data)
}

// SourceFS adapts a loaded bundle for tcl.Interp.SourceFS: members are
// served from memory with no filesystem cost.
func (b *Bundle) SourceFS(path string) (string, error) {
	c, err := b.Read(path)
	if err != nil {
		return "", err
	}
	return string(c), nil
}
