package pkgs

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/pfs"
)

func TestBundleRoundTrip(t *testing.T) {
	b := NewBundle()
	b.AddString("lib/app.tcl", "proc main {} { puts hi }")
	b.AddString("lib/util.tcl", "proc helper {} {}")
	b.Add("data/input.bin", []byte{0, 1, 2, 255})
	packed := b.Pack()
	back, err := Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("members = %d", back.Len())
	}
	c, err := back.Read("lib/app.tcl")
	if err != nil || !strings.Contains(string(c), "puts hi") {
		t.Fatalf("member content: %q %v", c, err)
	}
	bin, _ := back.Read("data/input.bin")
	if len(bin) != 4 || bin[3] != 255 {
		t.Fatalf("binary member: %v", bin)
	}
	if _, err := back.Read("missing"); err == nil {
		t.Fatal("expected missing member error")
	}
	members := back.Members()
	if members[0] != "data/input.bin" {
		t.Fatalf("members not sorted: %v", members)
	}
}

func TestUnpackErrors(t *testing.T) {
	if _, err := Unpack(nil); err == nil {
		t.Fatal("nil should fail")
	}
	if _, err := Unpack([]byte("garbagegarbage")); err == nil {
		t.Fatal("bad magic should fail")
	}
	b := NewBundle()
	b.AddString("x", "y")
	packed := b.Pack()
	if _, err := Unpack(packed[:len(packed)-1]); err == nil {
		t.Fatal("truncated should fail")
	}
}

func TestBundleProperty(t *testing.T) {
	f := func(names []string, contents [][]byte) bool {
		b := NewBundle()
		want := map[string][]byte{}
		for i, n := range names {
			if n == "" {
				continue
			}
			var c []byte
			if i < len(contents) {
				c = contents[i]
			}
			b.Add(n, c)
			want[n] = c
		}
		back, err := Unpack(b.Pack())
		if err != nil || back.Len() != len(want) {
			return false
		}
		for n, c := range want {
			got, err := back.Read(n)
			if err != nil || len(got) != len(c) {
				return false
			}
			for i := range c {
				if got[i] != c[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInstallAndLoadCosts(t *testing.T) {
	fs := pfs.New(pfs.DefaultConfig())
	b := NewBundle()
	for i := 0; i < 50; i++ {
		b.AddString("lib/mod"+string(rune('a'+i%26))+".tcl", strings.Repeat("proc x {} {}\n", 10))
	}
	Install(fs, "/apps/bundle.spkg", b)
	fs.ResetStats()
	loaded, err := Load(fs, "/apps/bundle.spkg")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != b.Len() {
		t.Fatalf("loaded %d members, want %d", loaded.Len(), b.Len())
	}
	// Exactly one metadata op to fetch everything.
	if fs.MetaOps() != 1 {
		t.Fatalf("bundle load cost %d metadata ops", fs.MetaOps())
	}
	// Sourcing members afterwards is free.
	before := fs.MetaOps()
	if _, err := loaded.SourceFS(loaded.Members()[0]); err != nil {
		t.Fatal(err)
	}
	if fs.MetaOps() != before {
		t.Fatal("bundle member access charged filesystem ops")
	}
}

func TestLoadMissing(t *testing.T) {
	fs := pfs.New(pfs.DefaultConfig())
	if _, err := Load(fs, "/nope.spkg"); err == nil {
		t.Fatal("expected load error")
	}
}
