package pylite

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// pyBuiltins is the global builtin function table.
var pyBuiltins map[string]Value

func init() {
	pyBuiltins = map[string]Value{
		"print": Builtin(func(in *Interp, args []Value) (Value, error) {
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = Str(a)
			}
			fmt.Fprintln(in.Out, strings.Join(parts, " "))
			return nil, nil
		}),
		"len": Builtin(func(in *Interp, args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("pylite: len() takes 1 argument")
			}
			switch x := args[0].(type) {
			case string:
				return int64(len(x)), nil
			case *List:
				return int64(len(x.Items)), nil
			case *Vec:
				return int64(x.Len()), nil
			case *Dict:
				return int64(x.Len()), nil
			}
			return nil, fmt.Errorf("pylite: object of type %s has no len()", typeName(args[0]))
		}),
		"range": Builtin(func(in *Interp, args []Value) (Value, error) {
			var lo, hi, step int64 = 0, 0, 1
			switch len(args) {
			case 1:
				h, ok := args[0].(int64)
				if !ok {
					return nil, fmt.Errorf("pylite: range() needs ints")
				}
				hi = h
			case 2, 3:
				l, ok1 := args[0].(int64)
				h, ok2 := args[1].(int64)
				if !ok1 || !ok2 {
					return nil, fmt.Errorf("pylite: range() needs ints")
				}
				lo, hi = l, h
				if len(args) == 3 {
					s, ok := args[2].(int64)
					if !ok || s == 0 {
						return nil, fmt.Errorf("pylite: range() step must be a non-zero int")
					}
					step = s
				}
			default:
				return nil, fmt.Errorf("pylite: range() takes 1-3 arguments")
			}
			out := &List{}
			if step > 0 {
				for i := lo; i < hi; i += step {
					out.Items = append(out.Items, i)
				}
			} else {
				for i := lo; i > hi; i += step {
					out.Items = append(out.Items, i)
				}
			}
			return out, nil
		}),
		"sum": Builtin(func(in *Interp, args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("pylite: sum() takes 1 argument")
			}
			if v, ok := args[0].(*Vec); ok {
				// Packed vectors sum straight off the backing bytes —
				// no per-element boxing.
				return v.Sum(), nil
			}
			items, err := iterate(args[0])
			if err != nil {
				return nil, err
			}
			allInt := true
			var si int64
			var sf float64
			for _, it := range items {
				switch n := it.(type) {
				case int64:
					si += n
					sf += float64(n)
				case float64:
					allInt = false
					sf += n
				default:
					return nil, fmt.Errorf("pylite: sum() of non-numeric %s", typeName(it))
				}
			}
			if allInt {
				return si, nil
			}
			return sf, nil
		}),
		"min": Builtin(minMax("min", -1)),
		"max": Builtin(minMax("max", 1)),
		"abs": Builtin(func(in *Interp, args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("pylite: abs() takes 1 argument")
			}
			switch n := args[0].(type) {
			case int64:
				if n < 0 {
					return -n, nil
				}
				return n, nil
			case float64:
				return math.Abs(n), nil
			}
			return nil, fmt.Errorf("pylite: bad operand for abs(): %s", typeName(args[0]))
		}),
		"round": Builtin(func(in *Interp, args []Value) (Value, error) {
			if len(args) < 1 || len(args) > 2 {
				return nil, fmt.Errorf("pylite: round() takes 1-2 arguments")
			}
			f, err := toFloat(args[0])
			if err != nil {
				return nil, err
			}
			if len(args) == 2 {
				nd, ok := args[1].(int64)
				if !ok {
					return nil, fmt.Errorf("pylite: round() digits must be int")
				}
				p := math.Pow(10, float64(nd))
				return math.Round(f*p) / p, nil
			}
			return int64(math.Round(f)), nil
		}),
		"str": Builtin(func(in *Interp, args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("pylite: str() takes 1 argument")
			}
			return Str(args[0]), nil
		}),
		"repr": Builtin(func(in *Interp, args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("pylite: repr() takes 1 argument")
			}
			return Repr(args[0]), nil
		}),
		"int": Builtin(func(in *Interp, args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("pylite: int() takes 1 argument")
			}
			switch x := args[0].(type) {
			case int64:
				return x, nil
			case float64:
				return int64(x), nil
			case bool:
				return boolToInt(x), nil
			case string:
				v, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("pylite: invalid literal for int(): %q", x)
				}
				return v, nil
			}
			return nil, fmt.Errorf("pylite: int() argument must be a number or string")
		}),
		"float": Builtin(func(in *Interp, args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("pylite: float() takes 1 argument")
			}
			if s, ok := args[0].(string); ok {
				v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
				if err != nil {
					return nil, fmt.Errorf("pylite: could not convert string to float: %q", s)
				}
				return v, nil
			}
			return toFloat(args[0])
		}),
		"bool": Builtin(func(in *Interp, args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("pylite: bool() takes 1 argument")
			}
			return truthy(args[0]), nil
		}),
		"list": Builtin(func(in *Interp, args []Value) (Value, error) {
			if len(args) == 0 {
				return &List{}, nil
			}
			items, err := iterate(args[0])
			if err != nil {
				return nil, err
			}
			return &List{Items: items}, nil
		}),
		"sorted": Builtin(func(in *Interp, args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("pylite: sorted() takes 1 argument")
			}
			items, err := iterate(args[0])
			if err != nil {
				return nil, err
			}
			out := append([]Value(nil), items...)
			var sortErr error
			sort.SliceStable(out, func(i, j int) bool {
				c, err := binop("<", out[i], out[j])
				if err != nil && sortErr == nil {
					sortErr = err
				}
				b, _ := c.(bool)
				return b
			})
			if sortErr != nil {
				return nil, sortErr
			}
			return &List{Items: out}, nil
		}),
		"enumerate": Builtin(func(in *Interp, args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("pylite: enumerate() takes 1 argument")
			}
			items, err := iterate(args[0])
			if err != nil {
				return nil, err
			}
			out := &List{}
			for i, it := range items {
				out.Items = append(out.Items, &List{Items: []Value{int64(i), it}})
			}
			return out, nil
		}),
		"zip": Builtin(func(in *Interp, args []Value) (Value, error) {
			if len(args) < 2 {
				return nil, fmt.Errorf("pylite: zip() takes at least 2 arguments")
			}
			var seqs [][]Value
			shortest := -1
			for _, a := range args {
				items, err := iterate(a)
				if err != nil {
					return nil, err
				}
				seqs = append(seqs, items)
				if shortest < 0 || len(items) < shortest {
					shortest = len(items)
				}
			}
			out := &List{}
			for i := 0; i < shortest; i++ {
				row := &List{}
				for _, s := range seqs {
					row.Items = append(row.Items, s[i])
				}
				out.Items = append(out.Items, row)
			}
			return out, nil
		}),
		"map": Builtin(func(in *Interp, args []Value) (Value, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("pylite: map() takes 2 arguments")
			}
			items, err := iterate(args[1])
			if err != nil {
				return nil, err
			}
			out := &List{}
			for _, it := range items {
				v, err := in.call(args[0], []Value{it})
				if err != nil {
					return nil, err
				}
				out.Items = append(out.Items, v)
			}
			return out, nil
		}),
		"filter": Builtin(func(in *Interp, args []Value) (Value, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("pylite: filter() takes 2 arguments")
			}
			items, err := iterate(args[1])
			if err != nil {
				return nil, err
			}
			out := &List{}
			for _, it := range items {
				v, err := in.call(args[0], []Value{it})
				if err != nil {
					return nil, err
				}
				if truthy(v) {
					out.Items = append(out.Items, it)
				}
			}
			return out, nil
		}),
		"type": Builtin(func(in *Interp, args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("pylite: type() takes 1 argument")
			}
			return "<class '" + typeName(args[0]) + "'>", nil
		}),
	}
}

func minMax(name string, sign int) func(*Interp, []Value) (Value, error) {
	return func(in *Interp, args []Value) (Value, error) {
		var items []Value
		if len(args) == 1 {
			var err error
			items, err = iterate(args[0])
			if err != nil {
				return nil, err
			}
		} else {
			items = args
		}
		if len(items) == 0 {
			return nil, fmt.Errorf("pylite: %s() of empty sequence", name)
		}
		op := "<"
		if sign > 0 {
			op = ">"
		}
		best := items[0]
		for _, it := range items[1:] {
			c, err := binop(op, it, best)
			if err != nil {
				return nil, err
			}
			if b, _ := c.(bool); b {
				best = it
			}
		}
		return best, nil
	}
}

// boundMethod returns a builtin closure implementing obj.name(...).
func boundMethod(obj Value, name string) (Value, error) {
	switch o := obj.(type) {
	case *List:
		switch name {
		case "append":
			return Builtin(func(in *Interp, args []Value) (Value, error) {
				if len(args) != 1 {
					return nil, fmt.Errorf("pylite: append() takes 1 argument")
				}
				o.Items = append(o.Items, args[0])
				return nil, nil
			}), nil
		case "extend":
			return Builtin(func(in *Interp, args []Value) (Value, error) {
				if len(args) != 1 {
					return nil, fmt.Errorf("pylite: extend() takes 1 argument")
				}
				items, err := iterate(args[0])
				if err != nil {
					return nil, err
				}
				o.Items = append(o.Items, items...)
				return nil, nil
			}), nil
		case "pop":
			return Builtin(func(in *Interp, args []Value) (Value, error) {
				if len(o.Items) == 0 {
					return nil, fmt.Errorf("pylite: pop from empty list")
				}
				idx := len(o.Items) - 1
				if len(args) == 1 {
					i, err := listIndex(args[0], len(o.Items))
					if err != nil {
						return nil, err
					}
					idx = i
				}
				v := o.Items[idx]
				o.Items = append(o.Items[:idx], o.Items[idx+1:]...)
				return v, nil
			}), nil
		case "index":
			return Builtin(func(in *Interp, args []Value) (Value, error) {
				if len(args) != 1 {
					return nil, fmt.Errorf("pylite: index() takes 1 argument")
				}
				for i, it := range o.Items {
					if equal(it, args[0]) {
						return int64(i), nil
					}
				}
				return nil, fmt.Errorf("pylite: %s is not in list", Repr(args[0]))
			}), nil
		case "sort":
			return Builtin(func(in *Interp, args []Value) (Value, error) {
				var sortErr error
				sort.SliceStable(o.Items, func(i, j int) bool {
					c, err := binop("<", o.Items[i], o.Items[j])
					if err != nil && sortErr == nil {
						sortErr = err
					}
					b, _ := c.(bool)
					return b
				})
				return nil, sortErr
			}), nil
		}
	case *Dict:
		switch name {
		case "keys":
			return Builtin(func(in *Interp, args []Value) (Value, error) {
				return &List{Items: o.Keys()}, nil
			}), nil
		case "values":
			return Builtin(func(in *Interp, args []Value) (Value, error) {
				out := &List{}
				for _, k := range o.Keys() {
					v, _ := o.Get(k)
					out.Items = append(out.Items, v)
				}
				return out, nil
			}), nil
		case "items":
			return Builtin(func(in *Interp, args []Value) (Value, error) {
				out := &List{}
				for _, k := range o.Keys() {
					v, _ := o.Get(k)
					out.Items = append(out.Items, &List{Items: []Value{k, v}})
				}
				return out, nil
			}), nil
		case "get":
			return Builtin(func(in *Interp, args []Value) (Value, error) {
				if len(args) < 1 || len(args) > 2 {
					return nil, fmt.Errorf("pylite: get() takes 1-2 arguments")
				}
				if v, ok := o.Get(args[0]); ok {
					return v, nil
				}
				if len(args) == 2 {
					return args[1], nil
				}
				return nil, nil
			}), nil
		}
	case string:
		switch name {
		case "upper":
			return strMethod(func() Value { return strings.ToUpper(o) }), nil
		case "lower":
			return strMethod(func() Value { return strings.ToLower(o) }), nil
		case "strip":
			return strMethod(func() Value { return strings.TrimSpace(o) }), nil
		case "split":
			return Builtin(func(in *Interp, args []Value) (Value, error) {
				sep := ""
				if len(args) == 1 {
					s, ok := args[0].(string)
					if !ok {
						return nil, fmt.Errorf("pylite: split() separator must be a string")
					}
					sep = s
				}
				var parts []string
				if sep == "" {
					parts = strings.Fields(o)
				} else {
					parts = strings.Split(o, sep)
				}
				out := &List{}
				for _, p := range parts {
					out.Items = append(out.Items, p)
				}
				return out, nil
			}), nil
		case "join":
			return Builtin(func(in *Interp, args []Value) (Value, error) {
				if len(args) != 1 {
					return nil, fmt.Errorf("pylite: join() takes 1 argument")
				}
				items, err := iterate(args[0])
				if err != nil {
					return nil, err
				}
				parts := make([]string, len(items))
				for i, it := range items {
					s, ok := it.(string)
					if !ok {
						return nil, fmt.Errorf("pylite: join() needs strings, got %s", typeName(it))
					}
					parts[i] = s
				}
				return strings.Join(parts, o), nil
			}), nil
		case "startswith":
			return Builtin(func(in *Interp, args []Value) (Value, error) {
				if len(args) != 1 {
					return nil, fmt.Errorf("pylite: startswith() takes 1 argument")
				}
				p, ok := args[0].(string)
				if !ok {
					return nil, fmt.Errorf("pylite: startswith() needs a string")
				}
				return strings.HasPrefix(o, p), nil
			}), nil
		case "endswith":
			return Builtin(func(in *Interp, args []Value) (Value, error) {
				if len(args) != 1 {
					return nil, fmt.Errorf("pylite: endswith() takes 1 argument")
				}
				p, ok := args[0].(string)
				if !ok {
					return nil, fmt.Errorf("pylite: endswith() needs a string")
				}
				return strings.HasSuffix(o, p), nil
			}), nil
		case "replace":
			return Builtin(func(in *Interp, args []Value) (Value, error) {
				if len(args) != 2 {
					return nil, fmt.Errorf("pylite: replace() takes 2 arguments")
				}
				a, ok1 := args[0].(string)
				b, ok2 := args[1].(string)
				if !ok1 || !ok2 {
					return nil, fmt.Errorf("pylite: replace() needs strings")
				}
				return strings.ReplaceAll(o, a, b), nil
			}), nil
		case "format":
			return Builtin(func(in *Interp, args []Value) (Value, error) {
				out := o
				for _, a := range args {
					out = strings.Replace(out, "{}", Str(a), 1)
				}
				return out, nil
			}), nil
		}
	}
	return nil, fmt.Errorf("pylite: %s object has no attribute %q", typeName(obj), name)
}

func strMethod(f func() Value) Builtin {
	return func(in *Interp, args []Value) (Value, error) {
		if len(args) != 0 {
			return nil, fmt.Errorf("pylite: method takes no arguments")
		}
		return f(), nil
	}
}
