package pylite

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/memo"
	"repro/internal/vecview"
)

// Value is a pylite runtime value: nil (None), bool, int64, float64,
// string, *List, *Dict, *Func, or Builtin.
type Value any

// List is a mutable Python list.
type List struct{ Items []Value }

// Dict is a Python dict with insertion-ordered keys. Keys must be
// hashable values (bool, int64, float64, string).
type Dict struct {
	m     map[Value]Value
	order []Value
}

// NewDict creates an empty dict.
func NewDict() *Dict { return &Dict{m: map[Value]Value{}} }

// Get looks up a key.
func (d *Dict) Get(k Value) (Value, bool) {
	v, ok := d.m[k]
	return v, ok
}

// Set assigns a key.
func (d *Dict) Set(k, v Value) {
	if _, exists := d.m[k]; !exists {
		d.order = append(d.order, k)
	}
	d.m[k] = v
}

// Del removes a key.
func (d *Dict) Del(k Value) {
	if _, exists := d.m[k]; !exists {
		return
	}
	delete(d.m, k)
	for i, o := range d.order {
		if o == k {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
}

// Keys returns keys in insertion order.
func (d *Dict) Keys() []Value { return append([]Value(nil), d.order...) }

// Len returns the entry count.
func (d *Dict) Len() int { return len(d.m) }

// Func is a user-defined function (def or lambda).
type Func struct {
	name    string
	params  []string
	body    []pstmt
	expr    pexpr // lambda body
	closure *env
}

// Builtin is a Go-implemented function.
type Builtin func(in *Interp, args []Value) (Value, error)

// env is a lexical environment.
type env struct {
	vars    map[string]Value
	parent  *env
	globals map[string]bool // names declared global in this scope
}

func (e *env) lookup(name string) (Value, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Interp is one embedded Python interpreter instance with persistent
// global state, mirroring an initialised CPython. Out receives print()
// output. Each worker rank owns its own instance; the retain/reinit state
// policy of the paper is implemented by Reset.
type Interp struct {
	globals *env
	Out     io.Writer
	depth   int
	// EvalCount counts Exec/EvalExpr calls, for instrumentation.
	EvalCount int
	// InitCost simulates the fixed cost of interpreter initialisation
	// (loading an interpreter library is not free on a real system);
	// benchmarks use it to model retain-vs-reinit trade-offs.
	InitCost func()
	// Compile-once fragment caches (source -> parsed form, byte-budgeted
	// LRU; see internal/memo). Ensemble workloads evaluate the same
	// python() fragment once per task, so the steady state must be
	// parse-free; long-lived serving interpreters additionally need the
	// cache bounded by bytes rather than entry count, so a tenant
	// submitting a stream of huge one-shot fragments evicts by cost
	// instead of pushing out many small hot fragments. The caches hold
	// immutable ASTs keyed by source text only, so they survive Reset:
	// reinitialisation discards state, not parses.
	progs *memo.Budget[[]pstmt]
	exprs *memo.Budget[pexpr]
}

// Fragment-cache byte budgets, in source bytes (the AST size scales with
// the source, so source length is the cost proxy; see fragCost).
const (
	defaultProgCacheBytes = 1 << 20 // 1 MiB of program source per interp
	defaultExprCacheBytes = 256 << 10
)

// fragCost prices a cached parse by its source length plus a fixed
// per-entry overhead for the AST and bookkeeping.
func fragCost[V any](key string, _ V) int64 { return int64(len(key)) + 64 }

// New creates an interpreter with builtins installed.
func New() *Interp {
	in := &Interp{
		Out:   os.Stdout,
		progs: memo.NewBudget[[]pstmt](defaultProgCacheBytes, fragCost[[]pstmt]),
		exprs: memo.NewBudget[pexpr](defaultExprCacheBytes, fragCost[pexpr]),
	}
	in.reset()
	return in
}

func (in *Interp) reset() {
	in.globals = &env{vars: map[string]Value{}}
	if in.InitCost != nil {
		in.InitCost()
	}
}

// Reset finalises and reinitialises the interpreter, discarding all
// global state (the paper's "reinitialize" policy, §III-C).
func (in *Interp) Reset() { in.reset() }

// SetGlobal binds a value (including a Builtin) into the interpreter's
// global namespace; hosts use it to expose Go functions to Python code,
// as a C embedding would via the CPython API.
func (in *Interp) SetGlobal(name string, v Value) { in.globals.vars[name] = v }

// DelGlobal removes a global binding (a no-op if absent); hosts use it
// to unbind stale pre-bound arguments between fragments.
func (in *Interp) DelGlobal(name string) { delete(in.globals.vars, name) }

// control-flow sentinels
type breakErr struct{}
type continueErr struct{}
type returnErr struct{ v Value }

func (breakErr) Error() string    { return "pylite: break outside loop" }
func (continueErr) Error() string { return "pylite: continue outside loop" }
func (returnErr) Error() string   { return "pylite: return outside function" }

// Exec runs a block of statements against the persistent globals.
// Parsing is memoized: each distinct source string is parsed once per
// interpreter and the immutable statement list is replayed thereafter.
func (in *Interp) Exec(code string) error {
	in.EvalCount++
	stmts, err := in.progs.GetOrCompute(code, func() ([]pstmt, error) {
		return parseModule(code)
	})
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if err := in.execStmt(s, in.globals); err != nil {
			return err
		}
	}
	return nil
}

// EvalExpr evaluates a single expression against the globals, memoizing
// the parsed expression by source text.
func (in *Interp) EvalExpr(expr string) (Value, error) {
	in.EvalCount++
	e, err := in.exprs.GetOrCompute(expr, func() (pexpr, error) {
		return parseExprString(expr)
	})
	if err != nil {
		return nil, err
	}
	return in.eval(e, in.globals)
}

// CacheStats reports the number of memoized programs and expressions,
// for tests and diagnostics.
func (in *Interp) CacheStats() (progs, exprs int) {
	return in.progs.Len(), in.exprs.Len()
}

// CacheBudgetStats reports the combined byte-budget counters of both
// fragment caches, for the serving layer's /statsz.
func (in *Interp) CacheBudgetStats() memo.BudgetStats {
	p, e := in.progs.Stats(), in.exprs.Stats()
	return memo.BudgetStats{
		Hits:         p.Hits + e.Hits,
		Misses:       p.Misses + e.Misses,
		Evictions:    p.Evictions + e.Evictions,
		BytesEvicted: p.BytesEvicted + e.BytesEvicted,
		Oversize:     p.Oversize + e.Oversize,
		CurBytes:     p.CurBytes + e.CurBytes,
		Entries:      p.Entries + e.Entries,
	}
}

// EvalFragment is the Swift/T python(code, expr) entry point: execute
// code, then evaluate expr and return its str() form.
func (in *Interp) EvalFragment(code, expr string) (string, error) {
	if strings.TrimSpace(code) != "" {
		if err := in.Exec(code); err != nil {
			return "", err
		}
	}
	if strings.TrimSpace(expr) == "" {
		return "", nil
	}
	v, err := in.EvalExpr(expr)
	if err != nil {
		return "", err
	}
	return Str(v), nil
}

func (in *Interp) execBlock(stmts []pstmt, e *env) error {
	for _, s := range stmts {
		if err := in.execStmt(s, e); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) execStmt(s pstmt, e *env) error {
	switch st := s.(type) {
	case *sExpr:
		_, err := in.eval(st.x, e)
		return err
	case *sAssign:
		return in.assign(st, e)
	case *sIf:
		c, err := in.eval(st.cond, e)
		if err != nil {
			return err
		}
		if truthy(c) {
			return in.execBlock(st.then, e)
		}
		return in.execBlock(st.els, e)
	case *sWhile:
		for {
			c, err := in.eval(st.cond, e)
			if err != nil {
				return err
			}
			if !truthy(c) {
				return nil
			}
			err = in.execBlock(st.body, e)
			if _, ok := err.(breakErr); ok {
				return nil
			}
			if _, ok := err.(continueErr); ok {
				continue
			}
			if err != nil {
				return err
			}
		}
	case *sFor:
		seq, err := in.eval(st.seq, e)
		if err != nil {
			return err
		}
		items, err := iterate(seq)
		if err != nil {
			return err
		}
		for _, item := range items {
			if len(st.vars) == 1 {
				in.bind(e, st.vars[0], item)
			} else {
				parts, ok := item.(*List)
				if !ok || len(parts.Items) != len(st.vars) {
					return fmt.Errorf("pylite: cannot unpack %s into %d variables", Repr(item), len(st.vars))
				}
				for i, name := range st.vars {
					in.bind(e, name, parts.Items[i])
				}
			}
			err := in.execBlock(st.body, e)
			if _, ok := err.(breakErr); ok {
				return nil
			}
			if _, ok := err.(continueErr); ok {
				continue
			}
			if err != nil {
				return err
			}
		}
		return nil
	case *sDef:
		fn := &Func{name: st.name, params: st.params, body: st.body, closure: e}
		in.bind(e, st.name, fn)
		return nil
	case *sReturn:
		var v Value
		if st.x != nil {
			var err error
			v, err = in.eval(st.x, e)
			if err != nil {
				return err
			}
		}
		return returnErr{v: v}
	case *sBreak:
		return breakErr{}
	case *sContinue:
		return continueErr{}
	case *sPass:
		return nil
	case *sGlobal:
		if e.globals == nil {
			e.globals = map[string]bool{}
		}
		for _, n := range st.names {
			e.globals[n] = true
		}
		return nil
	case *sImport:
		mod, err := in.importModule(st.name)
		if err != nil {
			return err
		}
		in.bind(e, st.name, mod)
		return nil
	case *sDel:
		switch t := st.target.(type) {
		case *eName:
			delete(e.vars, t.name)
			return nil
		case *eSub:
			obj, err := in.eval(t.obj, e)
			if err != nil {
				return err
			}
			idx, err := in.eval(t.idx, e)
			if err != nil {
				return err
			}
			if d, ok := obj.(*Dict); ok {
				d.Del(idx)
				return nil
			}
			return fmt.Errorf("pylite: del needs a dict subscript")
		}
		return fmt.Errorf("pylite: cannot del this expression")
	}
	return fmt.Errorf("pylite: unknown statement %T", s)
}

func (in *Interp) bind(e *env, name string, v Value) {
	if e.globals != nil && e.globals[name] {
		in.globals.vars[name] = v
		return
	}
	e.vars[name] = v
}

func (in *Interp) assign(st *sAssign, e *env) error {
	v, err := in.eval(st.value, e)
	if err != nil {
		return err
	}
	if st.op != "=" {
		// Augmented: read-modify-write.
		old, err := in.eval(st.target, e)
		if err != nil {
			return err
		}
		op := strings.TrimSuffix(st.op, "=")
		v, err = binop(op, old, v)
		if err != nil {
			return err
		}
	}
	switch t := st.target.(type) {
	case *eName:
		in.bind(e, t.name, v)
		return nil
	case *eSub:
		obj, err := in.eval(t.obj, e)
		if err != nil {
			return err
		}
		idx, err := in.eval(t.idx, e)
		if err != nil {
			return err
		}
		switch o := obj.(type) {
		case *List:
			i, err := listIndex(idx, len(o.Items))
			if err != nil {
				return err
			}
			o.Items[i] = v
			return nil
		case *Vec:
			i, err := listIndex(idx, o.Len())
			if err != nil {
				return err
			}
			return o.SetAt(i, v)
		case *Dict:
			if !hashable(idx) {
				return fmt.Errorf("pylite: unhashable key %s", Repr(idx))
			}
			o.Set(idx, v)
			return nil
		}
		return fmt.Errorf("pylite: cannot subscript-assign %s", typeName(obj))
	}
	return fmt.Errorf("pylite: bad assignment target")
}

func hashable(v Value) bool {
	switch v.(type) {
	case nil, bool, int64, float64, string:
		return true
	}
	return false
}

func listIndex(idx Value, n int) (int, error) {
	i, ok := idx.(int64)
	if !ok {
		return 0, fmt.Errorf("pylite: list index must be int, got %s", typeName(idx))
	}
	j := int(i)
	if j < 0 {
		j += n
	}
	if j < 0 || j >= n {
		return 0, fmt.Errorf("pylite: list index %d out of range (len %d)", i, n)
	}
	return j, nil
}

func iterate(v Value) ([]Value, error) {
	switch s := v.(type) {
	case *List:
		return append([]Value(nil), s.Items...), nil
	case *Vec:
		return vecview.Items[Value](s), nil
	case string:
		out := make([]Value, 0, len(s))
		for _, r := range s {
			out = append(out, string(r))
		}
		return out, nil
	case *Dict:
		return s.Keys(), nil
	}
	return nil, fmt.Errorf("pylite: %s is not iterable", typeName(v))
}

func truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != ""
	case *List:
		return len(x.Items) > 0
	case *Vec:
		return x.Len() > 0
	case *Dict:
		return x.Len() > 0
	}
	return true
}

func typeName(v Value) string {
	switch v.(type) {
	case nil:
		return "NoneType"
	case bool:
		return "bool"
	case int64:
		return "int"
	case float64:
		return "float"
	case string:
		return "str"
	case *List:
		return "list"
	case *Vec:
		return "vec"
	case *Dict:
		return "dict"
	case *Func:
		return "function"
	case Builtin:
		return "builtin_function_or_method"
	case *Dict2Mod:
		return "module"
	}
	return fmt.Sprintf("%T", v)
}

// Dict2Mod is a read-only module namespace (math, statistics).
type Dict2Mod struct {
	name string
	vars map[string]Value
}

func (in *Interp) importModule(name string) (Value, error) {
	switch name {
	case "math":
		return &Dict2Mod{name: "math", vars: map[string]Value{
			"pi":    math.Pi,
			"e":     math.E,
			"sqrt":  Builtin(mathUnary("sqrt", math.Sqrt)),
			"sin":   Builtin(mathUnary("sin", math.Sin)),
			"cos":   Builtin(mathUnary("cos", math.Cos)),
			"tan":   Builtin(mathUnary("tan", math.Tan)),
			"exp":   Builtin(mathUnary("exp", math.Exp)),
			"log":   Builtin(mathUnary("log", math.Log)),
			"floor": Builtin(mathUnary("floor", math.Floor)),
			"ceil":  Builtin(mathUnary("ceil", math.Ceil)),
			"fabs":  Builtin(mathUnary("fabs", math.Abs)),
			"pow": Builtin(func(in *Interp, args []Value) (Value, error) {
				if len(args) != 2 {
					return nil, fmt.Errorf("pylite: math.pow takes 2 arguments")
				}
				a, err := toFloat(args[0])
				if err != nil {
					return nil, err
				}
				b, err := toFloat(args[1])
				if err != nil {
					return nil, err
				}
				return math.Pow(a, b), nil
			}),
		}}, nil
	case "statistics":
		return &Dict2Mod{name: "statistics", vars: map[string]Value{
			"mean":   Builtin(statMean),
			"stdev":  Builtin(statStdev),
			"median": Builtin(statMedian),
		}}, nil
	}
	return nil, fmt.Errorf("pylite: no module named %q (available: math, statistics)", name)
}

func mathUnary(name string, f func(float64) float64) func(*Interp, []Value) (Value, error) {
	return func(in *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("pylite: math.%s takes 1 argument", name)
		}
		x, err := toFloat(args[0])
		if err != nil {
			return nil, err
		}
		return f(x), nil
	}
}

func toFloat(v Value) (float64, error) {
	switch x := v.(type) {
	case int64:
		return float64(x), nil
	case float64:
		return x, nil
	case bool:
		if x {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("pylite: expected a number, got %s", typeName(v))
}

func numsOf(args []Value) ([]float64, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("pylite: expected one list argument")
	}
	lst, ok := args[0].(*List)
	if !ok {
		return nil, fmt.Errorf("pylite: expected a list, got %s", typeName(args[0]))
	}
	out := make([]float64, len(lst.Items))
	for i, it := range lst.Items {
		f, err := toFloat(it)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

func statMean(in *Interp, args []Value) (Value, error) {
	xs, err := numsOf(args)
	if err != nil {
		return nil, err
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("pylite: mean of empty data")
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

func statStdev(in *Interp, args []Value) (Value, error) {
	xs, err := numsOf(args)
	if err != nil {
		return nil, err
	}
	if len(xs) < 2 {
		return nil, fmt.Errorf("pylite: stdev needs at least two points")
	}
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		ss += (x - m) * (x - m)
	}
	return math.Sqrt(ss / float64(len(xs)-1)), nil
}

func statMedian(in *Interp, args []Value) (Value, error) {
	xs, err := numsOf(args)
	if err != nil {
		return nil, err
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("pylite: median of empty data")
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2], nil
	}
	return (xs[n/2-1] + xs[n/2]) / 2, nil
}

// ---- evaluation ----

func (in *Interp) eval(x pexpr, e *env) (Value, error) {
	switch ex := x.(type) {
	case *eNum:
		if ex.isFloat {
			return ex.f, nil
		}
		return ex.i, nil
	case *eStr:
		return ex.s, nil
	case *eBool:
		return ex.b, nil
	case *eNone:
		return nil, nil
	case *eName:
		if v, ok := e.lookup(ex.name); ok {
			return v, nil
		}
		if b, ok := pyBuiltins[ex.name]; ok {
			return b, nil
		}
		return nil, fmt.Errorf("pylite: name %q is not defined", ex.name)
	case *eBin:
		if ex.op == "and" {
			l, err := in.eval(ex.l, e)
			if err != nil {
				return nil, err
			}
			if !truthy(l) {
				return l, nil
			}
			return in.eval(ex.r, e)
		}
		if ex.op == "or" {
			l, err := in.eval(ex.l, e)
			if err != nil {
				return nil, err
			}
			if truthy(l) {
				return l, nil
			}
			return in.eval(ex.r, e)
		}
		l, err := in.eval(ex.l, e)
		if err != nil {
			return nil, err
		}
		r, err := in.eval(ex.r, e)
		if err != nil {
			return nil, err
		}
		return binop(ex.op, l, r)
	case *eUn:
		v, err := in.eval(ex.x, e)
		if err != nil {
			return nil, err
		}
		switch ex.op {
		case "-":
			switch n := v.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			}
			return nil, fmt.Errorf("pylite: bad operand for unary -: %s", typeName(v))
		case "not":
			return !truthy(v), nil
		}
		return nil, fmt.Errorf("pylite: unknown unary op %q", ex.op)
	case *eList:
		lst := &List{}
		for _, el := range ex.elems {
			v, err := in.eval(el, e)
			if err != nil {
				return nil, err
			}
			lst.Items = append(lst.Items, v)
		}
		return lst, nil
	case *eDict:
		d := NewDict()
		for i := range ex.keys {
			k, err := in.eval(ex.keys[i], e)
			if err != nil {
				return nil, err
			}
			if !hashable(k) {
				return nil, fmt.Errorf("pylite: unhashable key %s", Repr(k))
			}
			v, err := in.eval(ex.vals[i], e)
			if err != nil {
				return nil, err
			}
			d.Set(k, v)
		}
		return d, nil
	case *eSub:
		obj, err := in.eval(ex.obj, e)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(ex.idx, e)
		if err != nil {
			return nil, err
		}
		switch o := obj.(type) {
		case *List:
			i, err := listIndex(idx, len(o.Items))
			if err != nil {
				return nil, err
			}
			return o.Items[i], nil
		case *Vec:
			i, err := listIndex(idx, o.Len())
			if err != nil {
				return nil, err
			}
			return o.At(i), nil
		case string:
			i, err := listIndex(idx, len(o))
			if err != nil {
				return nil, err
			}
			return string(o[i]), nil
		case *Dict:
			v, ok := o.Get(idx)
			if !ok {
				return nil, fmt.Errorf("pylite: KeyError: %s", Repr(idx))
			}
			return v, nil
		}
		return nil, fmt.Errorf("pylite: %s is not subscriptable", typeName(obj))
	case *eSlice:
		obj, err := in.eval(ex.obj, e)
		if err != nil {
			return nil, err
		}
		var length int
		switch o := obj.(type) {
		case *List:
			length = len(o.Items)
		case string:
			length = len(o)
		default:
			return nil, fmt.Errorf("pylite: %s is not sliceable", typeName(obj))
		}
		lo, hi := 0, length
		if ex.lo != nil {
			v, err := in.eval(ex.lo, e)
			if err != nil {
				return nil, err
			}
			lo = clampIndex(v, length)
		}
		if ex.hi != nil {
			v, err := in.eval(ex.hi, e)
			if err != nil {
				return nil, err
			}
			hi = clampIndex(v, length)
		}
		if lo > hi {
			lo = hi
		}
		switch o := obj.(type) {
		case *List:
			return &List{Items: append([]Value(nil), o.Items[lo:hi]...)}, nil
		case string:
			return o[lo:hi], nil
		}
		return nil, nil
	case *eAttr:
		obj, err := in.eval(ex.obj, e)
		if err != nil {
			return nil, err
		}
		if m, ok := obj.(*Dict2Mod); ok {
			if v, ok := m.vars[ex.name]; ok {
				return v, nil
			}
			return nil, fmt.Errorf("pylite: module %q has no attribute %q", m.name, ex.name)
		}
		return boundMethod(obj, ex.name)
	case *eLambda:
		return &Func{name: "<lambda>", params: ex.params, expr: ex.body, closure: e}, nil
	case *eCall:
		fn, err := in.eval(ex.fn, e)
		if err != nil {
			return nil, err
		}
		var args []Value
		for _, a := range ex.args {
			v, err := in.eval(a, e)
			if err != nil {
				return nil, err
			}
			args = append(args, v)
		}
		return in.call(fn, args)
	}
	return nil, fmt.Errorf("pylite: unknown expression %T", x)
}

func clampIndex(v Value, n int) int {
	i, ok := v.(int64)
	if !ok {
		return 0
	}
	j := int(i)
	if j < 0 {
		j += n
	}
	if j < 0 {
		j = 0
	}
	if j > n {
		j = n
	}
	return j
}

func (in *Interp) call(fn Value, args []Value) (Value, error) {
	switch f := fn.(type) {
	case Builtin:
		return f(in, args)
	case *Func:
		if len(args) != len(f.params) {
			return nil, fmt.Errorf("pylite: %s() takes %d arguments, got %d", f.name, len(f.params), len(args))
		}
		in.depth++
		defer func() { in.depth-- }()
		if in.depth > 500 {
			return nil, fmt.Errorf("pylite: maximum recursion depth exceeded")
		}
		local := &env{vars: map[string]Value{}, parent: f.closure}
		for i, p := range f.params {
			local.vars[p] = args[i]
		}
		if f.expr != nil { // lambda
			return in.eval(f.expr, local)
		}
		err := in.execBlock(f.body, local)
		if r, ok := err.(returnErr); ok {
			return r.v, nil
		}
		if err != nil {
			return nil, err
		}
		return nil, nil
	}
	return nil, fmt.Errorf("pylite: %s is not callable", typeName(fn))
}

// binop implements arithmetic and comparison.
func binop(op string, l, r Value) (Value, error) {
	// String operations.
	if ls, ok := l.(string); ok && op != "in" {
		switch op {
		case "+":
			if rs, ok := r.(string); ok {
				return ls + rs, nil
			}
		case "*":
			if n, ok := r.(int64); ok {
				return strings.Repeat(ls, int(n)), nil
			}
		case "%":
			return pyFormat(ls, r)
		case "==", "!=", "<", "<=", ">", ">=":
			if rs, ok := r.(string); ok {
				return cmpResult(op, strings.Compare(ls, rs)), nil
			}
			if op == "==" {
				return false, nil
			}
			if op == "!=" {
				return true, nil
			}
		}
	}
	if op == "in" {
		switch c := r.(type) {
		case *List:
			for _, it := range c.Items {
				if equal(l, it) {
					return true, nil
				}
			}
			return false, nil
		case *Dict:
			if !hashable(l) {
				return false, nil
			}
			_, ok := c.Get(l)
			return ok, nil
		case string:
			ls, ok := l.(string)
			if !ok {
				return nil, fmt.Errorf("pylite: 'in <string>' requires string operand")
			}
			return strings.Contains(c, ls), nil
		}
		return nil, fmt.Errorf("pylite: argument of type %s is not iterable", typeName(r))
	}
	// List concatenation/repetition.
	if ll, ok := l.(*List); ok {
		switch op {
		case "+":
			if rl, ok := r.(*List); ok {
				return &List{Items: append(append([]Value(nil), ll.Items...), rl.Items...)}, nil
			}
		case "*":
			if n, ok := r.(int64); ok {
				out := &List{}
				for i := int64(0); i < n; i++ {
					out.Items = append(out.Items, ll.Items...)
				}
				return out, nil
			}
		case "==":
			rl, ok := r.(*List)
			return ok && listEqual(ll, rl), nil
		case "!=":
			rl, ok := r.(*List)
			return !(ok && listEqual(ll, rl)), nil
		}
	}
	if op == "==" {
		return equal(l, r), nil
	}
	if op == "!=" {
		return !equal(l, r), nil
	}
	// Numeric.
	li, lIsInt := l.(int64)
	ri, rIsInt := r.(int64)
	if lb, ok := l.(bool); ok {
		li, lIsInt = boolToInt(lb), true
	}
	if rb, ok := r.(bool); ok {
		ri, rIsInt = boolToInt(rb), true
	}
	if lIsInt && rIsInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				return nil, fmt.Errorf("pylite: division by zero")
			}
			return float64(li) / float64(ri), nil // Python 3 true division
		case "//":
			if ri == 0 {
				return nil, fmt.Errorf("pylite: division by zero")
			}
			q := li / ri
			if (li%ri != 0) && ((li < 0) != (ri < 0)) {
				q--
			}
			return q, nil
		case "%":
			if ri == 0 {
				return nil, fmt.Errorf("pylite: division by zero")
			}
			m := li % ri
			if m != 0 && ((li < 0) != (ri < 0)) {
				m += ri
			}
			return m, nil
		case "**":
			if ri < 0 {
				return math.Pow(float64(li), float64(ri)), nil
			}
			out := int64(1)
			for i := int64(0); i < ri; i++ {
				out *= li
			}
			return out, nil
		case "<", "<=", ">", ">=":
			return cmpResult(op, cmpInt(li, ri)), nil
		}
	}
	lf, errL := toFloat(l)
	rf, errR := toFloat(r)
	if errL != nil || errR != nil {
		return nil, fmt.Errorf("pylite: unsupported operand types for %s: %s and %s", op, typeName(l), typeName(r))
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, fmt.Errorf("pylite: division by zero")
		}
		return lf / rf, nil
	case "//":
		if rf == 0 {
			return nil, fmt.Errorf("pylite: division by zero")
		}
		return math.Floor(lf / rf), nil
	case "%":
		if rf == 0 {
			return nil, fmt.Errorf("pylite: division by zero")
		}
		return math.Mod(math.Mod(lf, rf)+rf, rf), nil
	case "**":
		return math.Pow(lf, rf), nil
	case "<", "<=", ">", ">=":
		return cmpResult(op, cmpFloat(lf, rf)), nil
	}
	return nil, fmt.Errorf("pylite: unknown operator %q", op)
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpResult(op string, c int) bool {
	switch op {
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	case "==":
		return c == 0
	case "!=":
		return c != 0
	}
	return false
}

func equal(l, r Value) bool {
	if ll, ok := l.(*List); ok {
		rl, ok := r.(*List)
		return ok && listEqual(ll, rl)
	}
	lf, okL := l.(float64)
	ri, okR := r.(int64)
	if okL && okR {
		return lf == float64(ri)
	}
	li, okL2 := l.(int64)
	rf, okR2 := r.(float64)
	if okL2 && okR2 {
		return float64(li) == rf
	}
	return l == r
}

func listEqual(a, b *List) bool {
	if len(a.Items) != len(b.Items) {
		return false
	}
	for i := range a.Items {
		if !equal(a.Items[i], b.Items[i]) {
			return false
		}
	}
	return true
}

// pyFormat implements the % operator on strings for common verbs.
func pyFormat(format string, arg Value) (string, error) {
	args := []Value{arg}
	if t, ok := arg.(*List); ok {
		args = t.Items
	}
	var b strings.Builder
	ai := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			b.WriteByte(format[i])
			continue
		}
		i++
		if i >= len(format) {
			return "", fmt.Errorf("pylite: incomplete format")
		}
		if format[i] == '%' {
			b.WriteByte('%')
			continue
		}
		start := i
		for i < len(format) && strings.ContainsRune("-+ 0123456789.", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			return "", fmt.Errorf("pylite: incomplete format")
		}
		spec := format[start:i]
		verb := format[i]
		if ai >= len(args) {
			return "", fmt.Errorf("pylite: not enough arguments for format string")
		}
		v := args[ai]
		ai++
		switch verb {
		case 'd', 'i':
			n, ok := v.(int64)
			if !ok {
				f, err := toFloat(v)
				if err != nil {
					return "", err
				}
				n = int64(f)
			}
			fmt.Fprintf(&b, "%"+spec+"d", n)
		case 'f', 'g', 'e':
			f, err := toFloat(v)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%"+spec+string(verb), f)
		case 's':
			fmt.Fprintf(&b, "%"+spec+"s", Str(v))
		default:
			return "", fmt.Errorf("pylite: unsupported format %%%c", verb)
		}
	}
	return b.String(), nil
}

// Str renders a value as Python str().
func Str(v Value) string {
	switch x := v.(type) {
	case nil:
		return "None"
	case bool:
		if x {
			return "True"
		}
		return "False"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		s := strconv.FormatFloat(x, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eEnN") {
			s += ".0"
		}
		return s
	case string:
		return x
	case *List, *Dict, *Vec:
		return Repr(v)
	case *Func:
		return "<function " + x.name + ">"
	case Builtin:
		return "<built-in function>"
	case *Dict2Mod:
		return "<module '" + x.name + "'>"
	}
	return fmt.Sprintf("%v", v)
}

// Repr renders a value as Python repr().
func Repr(v Value) string {
	switch x := v.(type) {
	case string:
		return "'" + strings.ReplaceAll(x, "'", "\\'") + "'"
	case *List:
		parts := make([]string, len(x.Items))
		for i, it := range x.Items {
			parts[i] = Repr(it)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *Vec:
		parts := make([]string, x.Len())
		for i := range parts {
			parts[i] = Repr(x.At(i))
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *Dict:
		var parts []string
		for _, k := range x.Keys() {
			val, _ := x.Get(k)
			parts = append(parts, Repr(k)+": "+Repr(val))
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		return Str(v)
	}
}
