// Package pylite implements an embedded Python-subset interpreter used as
// the stand-in for linking libpython into the runtime (paper §III-C). The
// paper's mechanism — treating the external interpreter as a native code
// library, constructing a Tcl extension around it, and exposing a
// `python(code, expr)` leaf function to Swift — is reproduced exactly;
// only the interpreter internals are Go instead of CPython via cgo
// (unavailable here). The interpreter supports the imperative core used
// by scientific glue code: numbers, strings, lists, dicts, functions,
// control flow, and a math/statistics builtin surface.
package pylite

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tNewline
	tIndent
	tDedent
	tName
	tInt
	tFloat
	tStr
	tOp // operators and punctuation
	tKeyword
)

var pyKeywords = map[string]bool{
	"def": true, "return": true, "if": true, "elif": true, "else": true,
	"while": true, "for": true, "in": true, "break": true, "continue": true,
	"pass": true, "and": true, "or": true, "not": true, "True": true,
	"False": true, "None": true, "import": true, "global": true,
	"lambda": true, "del": true,
}

type token struct {
	kind tokKind
	text string
	line int
}

// lex tokenizes source with indentation tracking (INDENT/DEDENT tokens).
func lex(src string) ([]token, error) {
	var toks []token
	indents := []int{0}
	line := 0
	lines := strings.Split(src, "\n")
	parenDepth := 0
	for li := 0; li < len(lines); li++ {
		line = li + 1
		text := lines[li]
		// Skip blank/comment-only lines entirely (no indent changes).
		trimmed := strings.TrimSpace(text)
		if parenDepth == 0 {
			if trimmed == "" || strings.HasPrefix(trimmed, "#") {
				continue
			}
			// Measure indentation (tabs count as 8 per Python custom; we
			// require consistent spaces or tabs, counting columns).
			col := 0
			for _, r := range text {
				if r == ' ' {
					col++
				} else if r == '\t' {
					col += 8 - col%8
				} else {
					break
				}
			}
			cur := indents[len(indents)-1]
			if col > cur {
				indents = append(indents, col)
				toks = append(toks, token{kind: tIndent, line: line})
			}
			for col < indents[len(indents)-1] {
				indents = indents[:len(indents)-1]
				toks = append(toks, token{kind: tDedent, line: line})
			}
			if col != indents[len(indents)-1] {
				return nil, fmt.Errorf("pylite: line %d: inconsistent indentation", line)
			}
		}
		// Tokenize the line content.
		i := 0
		s := text
		n := len(s)
		for i < n {
			c := s[i]
			switch {
			case c == ' ' || c == '\t':
				i++
			case c == '#':
				i = n
			case isPyIdentStart(c):
				start := i
				for i < n && isPyIdentPart(s[i]) {
					i++
				}
				word := s[start:i]
				kind := tName
				if pyKeywords[word] {
					kind = tKeyword
				}
				toks = append(toks, token{kind: kind, text: word, line: line})
			case c >= '0' && c <= '9' || (c == '.' && i+1 < n && s[i+1] >= '0' && s[i+1] <= '9'):
				start := i
				isFloat := false
				for i < n {
					d := s[i]
					if d >= '0' && d <= '9' {
						i++
					} else if d == '.' {
						isFloat = true
						i++
					} else if d == 'e' || d == 'E' {
						isFloat = true
						i++
						if i < n && (s[i] == '+' || s[i] == '-') {
							i++
						}
					} else {
						break
					}
				}
				kind := tInt
				if isFloat {
					kind = tFloat
				}
				toks = append(toks, token{kind: kind, text: s[start:i], line: line})
			case c == '"' || c == '\'':
				quote := c
				i++
				var b strings.Builder
				closed := false
				for i < n {
					if s[i] == '\\' && i+1 < n {
						switch s[i+1] {
						case 'n':
							b.WriteByte('\n')
						case 't':
							b.WriteByte('\t')
						case 'r':
							b.WriteByte('\r')
						case '\\':
							b.WriteByte('\\')
						case '\'':
							b.WriteByte('\'')
						case '"':
							b.WriteByte('"')
						default:
							b.WriteByte('\\')
							b.WriteByte(s[i+1])
						}
						i += 2
						continue
					}
					if s[i] == quote {
						i++
						closed = true
						break
					}
					b.WriteByte(s[i])
					i++
				}
				if !closed {
					return nil, fmt.Errorf("pylite: line %d: unterminated string", line)
				}
				toks = append(toks, token{kind: tStr, text: b.String(), line: line})
			default:
				ops3 := []string{"//=", "**="}
				ops2 := []string{"**", "//", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%="}
				matched := false
				for _, op := range ops3 {
					if strings.HasPrefix(s[i:], op) {
						toks = append(toks, token{kind: tOp, text: op, line: line})
						i += 3
						matched = true
						break
					}
				}
				if matched {
					continue
				}
				for _, op := range ops2 {
					if strings.HasPrefix(s[i:], op) {
						toks = append(toks, token{kind: tOp, text: op, line: line})
						i += 2
						matched = true
						break
					}
				}
				if matched {
					continue
				}
				switch c {
				case '(', '[', '{':
					parenDepth++
					toks = append(toks, token{kind: tOp, text: string(c), line: line})
					i++
				case ')', ']', '}':
					parenDepth--
					toks = append(toks, token{kind: tOp, text: string(c), line: line})
					i++
				case '+', '-', '*', '/', '%', '<', '>', '=', ',', ':', '.':
					toks = append(toks, token{kind: tOp, text: string(c), line: line})
					i++
				default:
					return nil, fmt.Errorf("pylite: line %d: unexpected character %q", line, c)
				}
			}
		}
		if parenDepth == 0 {
			toks = append(toks, token{kind: tNewline, line: line})
		}
	}
	for len(indents) > 1 {
		indents = indents[:len(indents)-1]
		toks = append(toks, token{kind: tDedent, line: line})
	}
	toks = append(toks, token{kind: tEOF, line: line})
	return toks, nil
}

func isPyIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isPyIdentPart(c byte) bool {
	return isPyIdentStart(c) || (c >= '0' && c <= '9')
}
