package pylite

import "fmt"

// ---- AST ----

type pexpr interface{ pexprNode() }

type eNum struct {
	isFloat bool
	i       int64
	f       float64
}
type eStr struct{ s string }
type eBool struct{ b bool }
type eNone struct{}
type eName struct{ name string }
type eBin struct {
	op   string
	l, r pexpr
}
type eUn struct {
	op string
	x  pexpr
}
type eCall struct {
	fn   pexpr
	args []pexpr
}
type eSub struct {
	obj pexpr
	idx pexpr
}
type eSlice struct {
	obj    pexpr
	lo, hi pexpr // nil = open end
}
type eList struct{ elems []pexpr }
type eDict struct{ keys, vals []pexpr }
type eAttr struct {
	obj  pexpr
	name string
}
type eLambda struct {
	params []string
	body   pexpr
}

func (*eNum) pexprNode()    {}
func (*eStr) pexprNode()    {}
func (*eBool) pexprNode()   {}
func (*eNone) pexprNode()   {}
func (*eName) pexprNode()   {}
func (*eBin) pexprNode()    {}
func (*eUn) pexprNode()     {}
func (*eCall) pexprNode()   {}
func (*eSub) pexprNode()    {}
func (*eSlice) pexprNode()  {}
func (*eList) pexprNode()   {}
func (*eDict) pexprNode()   {}
func (*eAttr) pexprNode()   {}
func (*eLambda) pexprNode() {}

type pstmt interface{ pstmtNode() }

type sExpr struct{ x pexpr }
type sAssign struct {
	target pexpr  // eName, eSub, or eAttr
	op     string // "=" or augmented "+=" etc.
	value  pexpr
}
type sIf struct {
	cond      pexpr
	then, els []pstmt
}
type sWhile struct {
	cond pexpr
	body []pstmt
}
type sFor struct {
	vars []string
	seq  pexpr
	body []pstmt
}
type sDef struct {
	name   string
	params []string
	body   []pstmt
}
type sReturn struct{ x pexpr } // x may be nil
type sBreak struct{}
type sContinue struct{}
type sPass struct{}
type sGlobal struct{ names []string }
type sImport struct{ name string }
type sDel struct{ target pexpr }

func (*sExpr) pstmtNode()     {}
func (*sAssign) pstmtNode()   {}
func (*sIf) pstmtNode()       {}
func (*sWhile) pstmtNode()    {}
func (*sFor) pstmtNode()      {}
func (*sDef) pstmtNode()      {}
func (*sReturn) pstmtNode()   {}
func (*sBreak) pstmtNode()    {}
func (*sContinue) pstmtNode() {}
func (*sPass) pstmtNode()     {}
func (*sGlobal) pstmtNode()   {}
func (*sImport) pstmtNode()   {}
func (*sDel) pstmtNode()      {}

// ---- parser ----

type pparser struct {
	toks []token
	pos  int
}

func parseModule(src string) ([]pstmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &pparser{toks: toks}
	var stmts []pstmt
	for p.cur().kind != tEOF {
		if p.cur().kind == tNewline {
			p.pos++
			continue
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s...)
	}
	return stmts, nil
}

// parseExprString parses a single expression (for EvalExpr).
func parseExprString(src string) (pexpr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &pparser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tNewline {
		p.pos++
	}
	if p.cur().kind != tEOF {
		return nil, fmt.Errorf("pylite: line %d: trailing tokens after expression", p.cur().line)
	}
	return e, nil
}

func (p *pparser) cur() token { return p.toks[p.pos] }

func (p *pparser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *pparser) eat(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *pparser) expect(kind tokKind, text, what string) error {
	if !p.eat(kind, text) {
		return fmt.Errorf("pylite: line %d: expected %s, found %q", p.cur().line, what, p.cur().text)
	}
	return nil
}

// stmt parses one logical statement; simple statements may expand to
// multiple (a; b on one line is not supported, so always length 1).
func (p *pparser) stmt() ([]pstmt, error) {
	t := p.cur()
	if t.kind == tKeyword {
		switch t.text {
		case "if":
			s, err := p.ifStmt()
			return wrap(s, err)
		case "while":
			p.pos++
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			body, err := p.suite()
			if err != nil {
				return nil, err
			}
			return []pstmt{&sWhile{cond: cond, body: body}}, nil
		case "for":
			p.pos++
			var vars []string
			for {
				if p.cur().kind != tName {
					return nil, fmt.Errorf("pylite: line %d: expected loop variable", p.cur().line)
				}
				vars = append(vars, p.cur().text)
				p.pos++
				if !p.eat(tOp, ",") {
					break
				}
			}
			if err := p.expect(tKeyword, "in", "'in'"); err != nil {
				return nil, err
			}
			seq, err := p.expr()
			if err != nil {
				return nil, err
			}
			body, err := p.suite()
			if err != nil {
				return nil, err
			}
			return []pstmt{&sFor{vars: vars, seq: seq, body: body}}, nil
		case "def":
			p.pos++
			if p.cur().kind != tName {
				return nil, fmt.Errorf("pylite: line %d: expected function name", p.cur().line)
			}
			name := p.cur().text
			p.pos++
			if err := p.expect(tOp, "(", "("); err != nil {
				return nil, err
			}
			var params []string
			for !p.at(tOp, ")") {
				if p.cur().kind != tName {
					return nil, fmt.Errorf("pylite: line %d: expected parameter name", p.cur().line)
				}
				params = append(params, p.cur().text)
				p.pos++
				if !p.eat(tOp, ",") {
					break
				}
			}
			if err := p.expect(tOp, ")", ")"); err != nil {
				return nil, err
			}
			body, err := p.suite()
			if err != nil {
				return nil, err
			}
			return []pstmt{&sDef{name: name, params: params, body: body}}, nil
		case "return":
			p.pos++
			var x pexpr
			if !p.at(tNewline, "") && p.cur().kind != tEOF && p.cur().kind != tDedent {
				var err error
				x, err = p.expr()
				if err != nil {
					return nil, err
				}
			}
			p.eat(tNewline, "")
			return []pstmt{&sReturn{x: x}}, nil
		case "break":
			p.pos++
			p.eat(tNewline, "")
			return []pstmt{&sBreak{}}, nil
		case "continue":
			p.pos++
			p.eat(tNewline, "")
			return []pstmt{&sContinue{}}, nil
		case "pass":
			p.pos++
			p.eat(tNewline, "")
			return []pstmt{&sPass{}}, nil
		case "global":
			p.pos++
			var names []string
			for p.cur().kind == tName {
				names = append(names, p.cur().text)
				p.pos++
				if !p.eat(tOp, ",") {
					break
				}
			}
			p.eat(tNewline, "")
			return []pstmt{&sGlobal{names: names}}, nil
		case "import":
			p.pos++
			if p.cur().kind != tName {
				return nil, fmt.Errorf("pylite: line %d: expected module name", p.cur().line)
			}
			name := p.cur().text
			p.pos++
			p.eat(tNewline, "")
			return []pstmt{&sImport{name: name}}, nil
		case "del":
			p.pos++
			target, err := p.expr()
			if err != nil {
				return nil, err
			}
			p.eat(tNewline, "")
			return []pstmt{&sDel{target: target}}, nil
		}
	}
	// Expression or assignment.
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-=", "*=", "/=", "//=", "%=", "**="} {
		if p.at(tOp, op) {
			// Disambiguate "=" from "==" (already a distinct token).
			p.pos++
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			p.eat(tNewline, "")
			switch x.(type) {
			case *eName, *eSub, *eAttr:
				return []pstmt{&sAssign{target: x, op: op, value: rhs}}, nil
			}
			return nil, fmt.Errorf("pylite: cannot assign to this expression")
		}
	}
	p.eat(tNewline, "")
	return []pstmt{&sExpr{x: x}}, nil
}

func wrap(s pstmt, err error) ([]pstmt, error) {
	if err != nil {
		return nil, err
	}
	return []pstmt{s}, nil
}

func (p *pparser) ifStmt() (pstmt, error) {
	p.pos++ // if / elif
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	then, err := p.suite()
	if err != nil {
		return nil, err
	}
	node := &sIf{cond: cond, then: then}
	if p.at(tKeyword, "elif") {
		els, err := p.ifStmt()
		if err != nil {
			return nil, err
		}
		node.els = []pstmt{els}
	} else if p.eat(tKeyword, "else") {
		node.els, err = p.suite()
		if err != nil {
			return nil, err
		}
	}
	return node, nil
}

// suite parses ": NEWLINE INDENT stmts DEDENT" or ": simple-stmt".
func (p *pparser) suite() ([]pstmt, error) {
	if err := p.expect(tOp, ":", ":"); err != nil {
		return nil, err
	}
	if p.eat(tNewline, "") {
		if err := p.expect(tIndent, "", "indented block"); err != nil {
			return nil, err
		}
		var stmts []pstmt
		for !p.at(tDedent, "") && p.cur().kind != tEOF {
			if p.eat(tNewline, "") {
				continue
			}
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, s...)
		}
		p.eat(tDedent, "")
		return stmts, nil
	}
	// Inline suite: single simple statement.
	return p.stmt()
}

// ---- expression parsing (precedence climbing) ----

func (p *pparser) expr() (pexpr, error) { return p.orExpr() }

func (p *pparser) orExpr() (pexpr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.eat(tKeyword, "or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &eBin{op: "or", l: l, r: r}
	}
	return l, nil
}

func (p *pparser) andExpr() (pexpr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.eat(tKeyword, "and") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &eBin{op: "and", l: l, r: r}
	}
	return l, nil
}

func (p *pparser) notExpr() (pexpr, error) {
	if p.eat(tKeyword, "not") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &eUn{op: "not", x: x}, nil
	}
	return p.cmpExpr()
}

func (p *pparser) cmpExpr() (pexpr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.at(tOp, "=="):
			op = "=="
		case p.at(tOp, "!="):
			op = "!="
		case p.at(tOp, "<="):
			op = "<="
		case p.at(tOp, ">="):
			op = ">="
		case p.at(tOp, "<"):
			op = "<"
		case p.at(tOp, ">"):
			op = ">"
		case p.at(tKeyword, "in"):
			op = "in"
		default:
			return l, nil
		}
		p.pos++
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		l = &eBin{op: op, l: l, r: r}
	}
}

func (p *pparser) addExpr() (pexpr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tOp, "+") || p.at(tOp, "-") {
		op := p.cur().text
		p.pos++
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &eBin{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *pparser) mulExpr() (pexpr, error) {
	l, err := p.unExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tOp, "*") || p.at(tOp, "/") || p.at(tOp, "//") || p.at(tOp, "%") {
		op := p.cur().text
		p.pos++
		r, err := p.unExpr()
		if err != nil {
			return nil, err
		}
		l = &eBin{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *pparser) unExpr() (pexpr, error) {
	if p.at(tOp, "-") {
		p.pos++
		x, err := p.unExpr()
		if err != nil {
			return nil, err
		}
		return &eUn{op: "-", x: x}, nil
	}
	if p.at(tOp, "+") {
		p.pos++
		return p.unExpr()
	}
	return p.powExpr()
}

func (p *pparser) powExpr() (pexpr, error) {
	l, err := p.postfix()
	if err != nil {
		return nil, err
	}
	if p.at(tOp, "**") {
		p.pos++
		r, err := p.unExpr() // right-associative
		if err != nil {
			return nil, err
		}
		return &eBin{op: "**", l: l, r: r}, nil
	}
	return l, nil
}

func (p *pparser) postfix() (pexpr, error) {
	x, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tOp, "("):
			p.pos++
			var args []pexpr
			for !p.at(tOp, ")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.eat(tOp, ",") {
					break
				}
			}
			if err := p.expect(tOp, ")", ")"); err != nil {
				return nil, err
			}
			x = &eCall{fn: x, args: args}
		case p.at(tOp, "["):
			p.pos++
			var lo, hi pexpr
			if !p.at(tOp, ":") {
				lo, err = p.expr()
				if err != nil {
					return nil, err
				}
			}
			if p.eat(tOp, ":") {
				if !p.at(tOp, "]") {
					hi, err = p.expr()
					if err != nil {
						return nil, err
					}
				}
				if err := p.expect(tOp, "]", "]"); err != nil {
					return nil, err
				}
				x = &eSlice{obj: x, lo: lo, hi: hi}
			} else {
				if err := p.expect(tOp, "]", "]"); err != nil {
					return nil, err
				}
				x = &eSub{obj: x, idx: lo}
			}
		case p.at(tOp, "."):
			p.pos++
			if p.cur().kind != tName {
				return nil, fmt.Errorf("pylite: line %d: expected attribute name", p.cur().line)
			}
			x = &eAttr{obj: x, name: p.cur().text}
			p.pos++
		default:
			return x, nil
		}
	}
}

func (p *pparser) atom() (pexpr, error) {
	t := p.cur()
	switch {
	case t.kind == tInt:
		p.pos++
		var v int64
		if _, err := fmt.Sscanf(t.text, "%d", &v); err != nil {
			return nil, fmt.Errorf("pylite: line %d: bad int %q", t.line, t.text)
		}
		return &eNum{i: v}, nil
	case t.kind == tFloat:
		p.pos++
		var v float64
		if _, err := fmt.Sscanf(t.text, "%g", &v); err != nil {
			return nil, fmt.Errorf("pylite: line %d: bad float %q", t.line, t.text)
		}
		return &eNum{isFloat: true, f: v}, nil
	case t.kind == tStr:
		p.pos++
		return &eStr{s: t.text}, nil
	case t.kind == tKeyword && t.text == "True":
		p.pos++
		return &eBool{b: true}, nil
	case t.kind == tKeyword && t.text == "False":
		p.pos++
		return &eBool{b: false}, nil
	case t.kind == tKeyword && t.text == "None":
		p.pos++
		return &eNone{}, nil
	case t.kind == tKeyword && t.text == "lambda":
		p.pos++
		var params []string
		for p.cur().kind == tName {
			params = append(params, p.cur().text)
			p.pos++
			if !p.eat(tOp, ",") {
				break
			}
		}
		if err := p.expect(tOp, ":", ":"); err != nil {
			return nil, err
		}
		body, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &eLambda{params: params, body: body}, nil
	case t.kind == tName:
		p.pos++
		return &eName{name: t.text}, nil
	case t.kind == tOp && t.text == "(":
		p.pos++
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tOp, ")", ")"); err != nil {
			return nil, err
		}
		return x, nil
	case t.kind == tOp && t.text == "[":
		p.pos++
		lst := &eList{}
		for !p.at(tOp, "]") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			lst.elems = append(lst.elems, e)
			if !p.eat(tOp, ",") {
				break
			}
		}
		if err := p.expect(tOp, "]", "]"); err != nil {
			return nil, err
		}
		return lst, nil
	case t.kind == tOp && t.text == "{":
		p.pos++
		d := &eDict{}
		for !p.at(tOp, "}") {
			k, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tOp, ":", ":"); err != nil {
				return nil, err
			}
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.keys = append(d.keys, k)
			d.vals = append(d.vals, v)
			if !p.eat(tOp, ",") {
				break
			}
		}
		if err := p.expect(tOp, "}", "}"); err != nil {
			return nil, err
		}
		return d, nil
	}
	return nil, fmt.Errorf("pylite: line %d: unexpected token %q", t.line, t.text)
}
