package pylite

import (
	"strings"
	"testing"
	"testing/quick"
)

func evalExpr(t *testing.T, in *Interp, expr string) Value {
	t.Helper()
	v, err := in.EvalExpr(expr)
	if err != nil {
		t.Fatalf("EvalExpr(%q): %v", expr, err)
	}
	return v
}

func exec(t *testing.T, in *Interp, code string) {
	t.Helper()
	if err := in.Exec(code); err != nil {
		t.Fatalf("Exec(%q): %v", code, err)
	}
}

func expectStr(t *testing.T, in *Interp, expr, want string) {
	t.Helper()
	v := evalExpr(t, in, expr)
	if got := Str(v); got != want {
		t.Fatalf("str(%s) = %q, want %q", expr, got, want)
	}
}

func TestArithmetic(t *testing.T) {
	in := New()
	cases := [][2]string{
		{"1 + 2", "3"},
		{"10 - 4", "6"},
		{"6 * 7", "42"},
		{"7 / 2", "3.5"}, // Python 3 true division
		{"7 // 2", "3"},
		{"-7 // 2", "-4"},
		{"7 % 3", "1"},
		{"-7 % 3", "2"},
		{"2 ** 10", "1024"},
		{"2 ** -1", "0.5"},
		{"1.5 + 2.5", "4.0"},
		{"2 * 3.0", "6.0"},
		{"-5", "-5"},
		{"-(2 + 3)", "-5"},
		{"1 + 2 * 3", "7"},
		{"(1 + 2) * 3", "9"},
		{"abs(-3)", "3"},
		{"abs(-3.5)", "3.5"},
		{"round(3.7)", "4"},
		{"round(3.14159, 2)", "3.14"},
	}
	for _, c := range cases {
		expectStr(t, in, c[0], c[1])
	}
}

func TestComparisonAndLogic(t *testing.T) {
	in := New()
	cases := [][2]string{
		{"1 < 2", "True"},
		{"2 <= 1", "False"},
		{"3 == 3.0", "True"},
		{"1 != 2", "True"},
		{"'a' < 'b'", "True"},
		{"'abc' == 'abc'", "True"},
		{"True and False", "False"},
		{"True or False", "True"},
		{"not True", "False"},
		{"1 and 2", "2"}, // short-circuit returns operand
		{"0 or 'x'", "x"},
		{"3 in [1, 2, 3]", "True"},
		{"4 in [1, 2, 3]", "False"},
		{"'el' in 'hello'", "True"},
		{"'k' in {'k': 1}", "True"},
	}
	for _, c := range cases {
		expectStr(t, in, c[0], c[1])
	}
}

func TestStringOps(t *testing.T) {
	in := New()
	cases := [][2]string{
		{"'foo' + 'bar'", "foobar"},
		{"'ab' * 3", "ababab"},
		{"len('hello')", "5"},
		{"'hello'[1]", "e"},
		{"'hello'[-1]", "o"},
		{"'hello'[1:3]", "el"},
		{"'hello'[:2]", "he"},
		{"'hello'[2:]", "llo"},
		{"'HeLLo'.lower()", "hello"},
		{"'hello'.upper()", "HELLO"},
		{"'  x  '.strip()", "x"},
		{"'a,b,c'.split(',')[1]", "b"},
		{"'-'.join(['a', 'b'])", "a-b"},
		{"'hello'.startswith('he')", "True"},
		{"'hello'.endswith('lo')", "True"},
		{"'hello'.replace('l', 'L')", "heLLo"},
		{"'x={}, y={}'.format(1, 2)", "x=1, y=2"},
		{"'%d-%s' % [5, 'a']", "5-a"},
		{"'%.2f' % 3.14159", "3.14"},
		{"str(42)", "42"},
		{"str(2.5)", "2.5"},
		{"int('17')", "17"},
		{"float('2.5')", "2.5"},
	}
	for _, c := range cases {
		expectStr(t, in, c[0], c[1])
	}
}

func TestLists(t *testing.T) {
	in := New()
	exec(t, in, `
xs = [3, 1, 2]
xs.append(4)
ys = xs + [5]
`)
	expectStr(t, in, "len(xs)", "4")
	expectStr(t, in, "xs[3]", "4")
	expectStr(t, in, "xs[-1]", "4")
	expectStr(t, in, "ys", "[3, 1, 2, 4, 5]")
	expectStr(t, in, "sorted(xs)", "[1, 2, 3, 4]")
	expectStr(t, in, "sum(xs)", "10")
	expectStr(t, in, "min(xs)", "1")
	expectStr(t, in, "max(xs)", "4")
	expectStr(t, in, "xs[1:3]", "[1, 2]")
	expectStr(t, in, "[0] * 3", "[0, 0, 0]")
	expectStr(t, in, "range(3)", "[0, 1, 2]")
	expectStr(t, in, "range(1, 4)", "[1, 2, 3]")
	expectStr(t, in, "range(10, 0, -3)", "[10, 7, 4, 1]")
	expectStr(t, in, "list('ab')", "['a', 'b']")
	exec(t, in, "xs[0] = 99")
	expectStr(t, in, "xs[0]", "99")
	exec(t, in, "p = xs.pop()")
	expectStr(t, in, "p", "4")
	expectStr(t, in, "len(xs)", "3")
	expectStr(t, in, "[1,2,3].index(2)", "1")
	expectStr(t, in, "enumerate(['a','b'])", "[[0, 'a'], [1, 'b']]")
	expectStr(t, in, "zip([1,2],[3,4])", "[[1, 3], [2, 4]]")
	expectStr(t, in, "map(lambda x: x * 2, [1,2,3])", "[2, 4, 6]")
	expectStr(t, in, "filter(lambda x: x > 1, [0,1,2,3])", "[2, 3]")
}

func TestDicts(t *testing.T) {
	in := New()
	exec(t, in, `
d = {'a': 1, 'b': 2}
d['c'] = 3
d['a'] = 10
`)
	expectStr(t, in, "d['a']", "10")
	expectStr(t, in, "len(d)", "3")
	expectStr(t, in, "d.keys()", "['a', 'b', 'c']")
	expectStr(t, in, "d.values()", "[10, 2, 3]")
	expectStr(t, in, "d.get('zz', 0)", "0")
	expectStr(t, in, "d.get('b')", "2")
	exec(t, in, "del d['b']")
	expectStr(t, in, "len(d)", "2")
	expectStr(t, in, "'b' in d", "False")
	if _, err := in.EvalExpr("d['nosuch']"); err == nil || !strings.Contains(err.Error(), "KeyError") {
		t.Fatalf("err = %v", err)
	}
}

func TestControlFlow(t *testing.T) {
	in := New()
	exec(t, in, `
total = 0
for i in range(10):
    if i % 2 == 0:
        total += i
    else:
        pass
`)
	expectStr(t, in, "total", "20")
	exec(t, in, `
n = 0
while n < 100:
    n += 7
    if n > 50:
        break
`)
	expectStr(t, in, "n", "56")
	exec(t, in, `
skipped = 0
for i in range(10):
    if i < 5:
        continue
    skipped += 1
`)
	expectStr(t, in, "skipped", "5")
	exec(t, in, `
if 1 > 2:
    branch = 'a'
elif 2 > 1:
    branch = 'b'
else:
    branch = 'c'
`)
	expectStr(t, in, "branch", "b")
	// Multi-variable for (unpacking).
	exec(t, in, `
pairs = [[1, 'a'], [2, 'b']]
out = ''
for n, s in pairs:
    out = out + s * n
`)
	expectStr(t, in, "out", "abb")
}

func TestFunctions(t *testing.T) {
	in := New()
	exec(t, in, `
def add(a, b):
    return a + b

def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
`)
	expectStr(t, in, "add(2, 3)", "5")
	expectStr(t, in, "fib(10)", "55")
	// Closures.
	exec(t, in, `
def make_adder(n):
    def adder(x):
        return x + n
    return adder

add5 = make_adder(5)
`)
	expectStr(t, in, "add5(3)", "8")
	// Lambda.
	expectStr(t, in, "(lambda x, y: x * y)(6, 7)", "42")
	// Globals.
	exec(t, in, `
counter = 0
def bump():
    global counter
    counter += 1

bump()
bump()
`)
	expectStr(t, in, "counter", "2")
	// Arity error.
	if err := in.Exec("add(1)"); err == nil {
		t.Fatal("expected arity error")
	}
	// Recursion limit.
	exec(t, in, "def inf(): return inf()")
	if _, err := in.EvalExpr("inf()"); err == nil || !strings.Contains(err.Error(), "recursion") {
		t.Fatalf("err = %v", err)
	}
}

func TestMathModule(t *testing.T) {
	in := New()
	exec(t, in, "import math")
	expectStr(t, in, "math.sqrt(16)", "4.0")
	expectStr(t, in, "math.floor(3.7)", "3.0")
	expectStr(t, in, "math.pow(2, 8)", "256.0")
	v := evalExpr(t, in, "math.pi")
	if f, ok := v.(float64); !ok || f < 3.14 || f > 3.15 {
		t.Fatalf("math.pi = %v", v)
	}
	if err := in.Exec("import nosuchmodule"); err == nil {
		t.Fatal("expected import error")
	}
}

func TestStatisticsModule(t *testing.T) {
	in := New()
	exec(t, in, "import statistics")
	expectStr(t, in, "statistics.mean([1, 2, 3, 4])", "2.5")
	expectStr(t, in, "statistics.median([3, 1, 2])", "2.0")
	v := evalExpr(t, in, "statistics.stdev([2, 4, 4, 4, 5, 5, 7, 9])")
	f, ok := v.(float64)
	if !ok || f < 2.13 || f > 2.14 {
		t.Fatalf("stdev = %v", v)
	}
}

func TestPrintOutput(t *testing.T) {
	in := New()
	var buf strings.Builder
	in.Out = &buf
	exec(t, in, `print('hello', 42, 2.5)`)
	if buf.String() != "hello 42 2.5\n" {
		t.Fatalf("output = %q", buf.String())
	}
}

func TestPersistentState(t *testing.T) {
	// The "retain" policy of §III-C: state persists across Eval calls.
	in := New()
	exec(t, in, "x = 10")
	exec(t, in, "x = x + 5")
	expectStr(t, in, "x", "15")
	// Reset (the "reinitialize" policy) clears state.
	in.Reset()
	if _, err := in.EvalExpr("x"); err == nil {
		t.Fatal("x should be undefined after Reset")
	}
}

func TestEvalFragment(t *testing.T) {
	in := New()
	out, err := in.EvalFragment("y = 6 * 7", "y")
	if err != nil || out != "42" {
		t.Fatalf("out=%q err=%v", out, err)
	}
	// Code-only fragment.
	if _, err := in.EvalFragment("z = 1", ""); err != nil {
		t.Fatal(err)
	}
	// Expression-only fragment.
	out, err = in.EvalFragment("", "z + 1")
	if err != nil || out != "2" {
		t.Fatalf("out=%q err=%v", out, err)
	}
}

func TestErrors(t *testing.T) {
	in := New()
	cases := []struct{ code, frag string }{
		{"1 / 0", "division by zero"},
		{"undefined_name", "not defined"},
		{"[1,2][10]", "out of range"},
		{"'a' + 1", "unsupported operand"},
		{"len(5)", "has no len"},
		{"x = ", "trailing"},
		{"def f(:", "unexpected token"},
		{"5(1)", "not callable"},
		{"{[1]: 2}", "unhashable"},
	}
	for _, c := range cases {
		_, err := in.EvalExpr(c.code)
		if err == nil {
			err = in.Exec(c.code)
		}
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("code %q: err = %v, want fragment %q", c.code, err, c.frag)
		}
	}
}

func TestIndentationErrors(t *testing.T) {
	in := New()
	err := in.Exec("if True:\n    x = 1\n  y = 2")
	if err == nil || !strings.Contains(err.Error(), "indentation") {
		t.Fatalf("err = %v", err)
	}
}

func TestNestedDataStructures(t *testing.T) {
	in := New()
	exec(t, in, `
grid = {}
for i in range(3):
    row = []
    for j in range(3):
        row.append(i * 3 + j)
    grid[i] = row
`)
	expectStr(t, in, "grid[1][2]", "5")
	expectStr(t, in, "sum(grid[2])", "21")
}

func TestScientificWorkloadShape(t *testing.T) {
	// The kind of fragment the paper's applications run: compute then
	// aggregate.
	in := New()
	exec(t, in, `
import math
def energy(x):
    return 0.5 * x * x + math.sin(x)

samples = []
for i in range(100):
    samples.append(energy(i * 0.1))

result = sum(samples) / len(samples)
`)
	v := evalExpr(t, in, "result")
	f, ok := v.(float64)
	if !ok || f < 16.0 || f > 17.0 {
		t.Fatalf("result = %v", v)
	}
}

func TestIntArithmeticProperty(t *testing.T) {
	in := New()
	f := func(a, b int32) bool {
		exec(t, in, "pa = "+Str(int64(a)))
		exec(t, in, "pb = "+Str(int64(b)))
		v := evalExpr(t, in, "pa + pb")
		n, ok := v.(int64)
		return ok && n == int64(a)+int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStrReprDistinct(t *testing.T) {
	if Str("x") != "x" {
		t.Fatal("Str of string")
	}
	if Repr("x") != "'x'" {
		t.Fatal("Repr of string")
	}
	if Str(nil) != "None" {
		t.Fatal("Str of None")
	}
	if Str(true) != "True" || Str(false) != "False" {
		t.Fatal("Str of bool")
	}
	if Str(2.0) != "2.0" {
		t.Fatalf("Str(2.0) = %q", Str(2.0))
	}
	d := NewDict()
	d.Set("k", int64(1))
	if Repr(d) != "{'k': 1}" {
		t.Fatalf("Repr dict = %q", Repr(d))
	}
}

func TestEvalCountAndInitCost(t *testing.T) {
	calls := 0
	in := New()
	in.InitCost = func() { calls++ }
	in.Reset()
	if calls != 1 {
		t.Fatalf("InitCost calls = %d", calls)
	}
	in.Exec("x = 1")
	in.EvalExpr("x")
	if in.EvalCount != 2 {
		t.Fatalf("EvalCount = %d", in.EvalCount)
	}
}
