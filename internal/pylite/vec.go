package pylite

// Vec is the zero-copy binding of blob bulk data into the interpreter
// (the SLIRP technique the interlanguage layer borrows), shared with
// jlite via internal/vecview: a typed packed numeric vector whose
// elements decode on access from the backing bytes. A blob argument
// enters Python as a Vec that behaves like a list — len(), indexing,
// iteration, element assignment — and when a fragment returns the Vec
// (or an unmodified view of it), the backing bytes, the Fortran dims,
// and the element kind travel back out bit-exact, without the elements
// ever being rendered as text.

import (
	"repro/internal/blob"
	"repro/internal/vecview"
)

// Vec wraps a blob as a mutable typed vector value.
type Vec = vecview.Vec

// vecProfile keeps vecview's error text in this package's voice: the
// "pylite:" prefix and Python type names, which vec_test pins.
var vecProfile = &vecview.Profile{
	Prefix:   "pylite",
	ToFloat:  func(x any) (float64, error) { return toFloat(x) },
	TypeName: func(x any) string { return typeName(x) },
}

// NewVec validates that the payload is a whole number of elements.
func NewVec(b blob.Blob) (*Vec, error) { return vecview.New(vecProfile, b) }

// PackValues packs a numeric list into a blob: all-int lists become an
// int64 vector, anything with a float becomes a float64 vector. This is
// how a fresh Python list (a comprehension result, say) leaves the
// interpreter as bulk data.
func PackValues(items []Value) (blob.Blob, error) {
	return vecview.PackValues(vecProfile, items)
}
