package pylite

import (
	"strings"
	"testing"

	"repro/internal/blob"
)

func vecInterp(t *testing.T, b blob.Blob) *Interp {
	t.Helper()
	in := New()
	v, err := NewVec(b)
	if err != nil {
		t.Fatal(err)
	}
	in.SetGlobal("v", v)
	return in
}

func TestVecBehavesLikeList(t *testing.T) {
	in := vecInterp(t, blob.FromFloat64s([]float64{1.5, 2.5, 3.0}))
	cases := []struct{ expr, want string }{
		{"len(v)", "3"},
		{"v[0]", "1.5"},
		{"v[-1]", "3.0"},
		{"sum(v)", "7.0"},
		{"max(v)", "3.0"},
		{"str(v)", "[1.5, 2.5, 3.0]"},
		{"list(v)", "[1.5, 2.5, 3.0]"},
		{"sorted(v)[0]", "1.5"},
	}
	for _, tc := range cases {
		got, err := in.EvalFragment("", tc.expr)
		if err != nil {
			t.Fatalf("%s: %v", tc.expr, err)
		}
		if got != tc.want {
			t.Fatalf("%s = %q, want %q", tc.expr, got, tc.want)
		}
	}
	if err := in.Exec("t = 0.0\nfor x in v:\n    t = t + x"); err != nil {
		t.Fatal(err)
	}
	got, _ := in.EvalFragment("", "t")
	if got != "7.0" {
		t.Fatalf("loop total = %q", got)
	}
}

func TestVecIntElems(t *testing.T) {
	in := vecInterp(t, blob.FromInt32s([]int32{5, -3, 7}))
	got, err := in.EvalFragment("", "sum(v)")
	if err != nil || got != "9" {
		t.Fatalf("int32 sum = %q, %v", got, err)
	}
	// Integer element kinds yield Python ints, not floats.
	got, _ = in.EvalFragment("", "v[1]")
	if got != "-3" {
		t.Fatalf("v[1] = %q", got)
	}
}

func TestVecMutationWritesBackingBytes(t *testing.T) {
	b := blob.FromFloat64s([]float64{1, 2, 3})
	in := vecInterp(t, b)
	if err := in.Exec("v[1] = 4.5"); err != nil {
		t.Fatal(err)
	}
	xs, err := blob.ToFloat64s(blob.Blob{Data: b.Data})
	if err != nil || xs[1] != 4.5 {
		t.Fatalf("backing bytes not updated: %v, %v", xs, err)
	}
}

func TestVecRejectsUnrepresentableWrites(t *testing.T) {
	in := vecInterp(t, blob.FromInt32s([]int32{1, 2}))
	err := in.Exec("v[0] = 2.5")
	if err == nil || !strings.Contains(err.Error(), "not representable") {
		t.Fatalf("err = %v", err)
	}
}

func TestVecIntWritesStayExactBeyond2to53(t *testing.T) {
	// Integer assignments into an int64 vector must not route through
	// float64: 2^53+1 is exactly representable in int64 but rounds to
	// 2^53 as a float64.
	const big = int64(1<<53) + 1
	b := blob.FromInt64s([]int64{0, 0})
	in := vecInterp(t, b)
	if err := in.Exec("v[0] = 9007199254740993"); err != nil {
		t.Fatal(err)
	}
	ns, err := blob.ToInt64s(blob.Blob{Data: b.Data})
	if err != nil || ns[0] != big {
		t.Fatalf("v[0] = %d, want %d (rounded through float64?)", ns[0], big)
	}
	// The same value into a float64 vector must error, not round.
	in2 := vecInterp(t, blob.FromFloat64s([]float64{0}))
	err = in2.Exec("v[0] = 9007199254740993")
	if err == nil || !strings.Contains(err.Error(), "not representable") {
		t.Fatalf("err = %v, want not-representable failure", err)
	}
}

func TestNewVecRejectsRaggedPayload(t *testing.T) {
	if _, err := NewVec(blob.Blob{Data: []byte{1, 2, 3}, Elem: blob.ElemF64}); err == nil {
		t.Fatal("3 bytes accepted as float64 vector")
	}
}

func TestPackValues(t *testing.T) {
	b, err := PackValues([]Value{int64(1), int64(2)})
	if err != nil || b.Elem != blob.ElemI64 || b.Count() != 2 {
		t.Fatalf("int pack = %+v, %v", b, err)
	}
	b, err = PackValues([]Value{int64(1), 2.5})
	if err != nil || b.Elem != blob.ElemF64 {
		t.Fatalf("mixed pack = %+v, %v", b, err)
	}
	xs, _ := blob.ToFloat64s(blob.Blob{Data: b.Data})
	if xs[0] != 1 || xs[1] != 2.5 {
		t.Fatalf("mixed values = %v", xs)
	}
	if _, err := PackValues([]Value{"nope"}); err == nil {
		t.Fatal("string packed into numeric blob")
	}
}
