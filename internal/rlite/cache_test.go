package rlite

// Fragment-cache invariants for the R engine, mirroring
// internal/pylite/cache_test.go and internal/tcl/cache_test.go: parse
// results are cached by source text only, so cached fragments observe
// every state mutation, and the cache stays bounded.

import (
	"fmt"
	"testing"

	"repro/internal/memo"
)

func TestFragmentCacheHitIsParseFree(t *testing.T) {
	in := New()
	const code = "v <- 1:4\ns <- sum(v)"
	if _, err := in.EvalFragment(code, "s"); err != nil {
		t.Fatal(err)
	}
	if n := in.CacheStats(); n != 2 { // code fragment + expr fragment
		t.Fatalf("cache = %d, want 2", n)
	}
	for i := 0; i < 10; i++ {
		out, err := in.EvalFragment(code, "s")
		if err != nil || out != "10" {
			t.Fatalf("out = %q, %v", out, err)
		}
	}
	if n := in.CacheStats(); n != 2 {
		t.Fatalf("repeats grew the cache: %d", n)
	}
}

func TestFragmentCacheSeesRedefinition(t *testing.T) {
	in := New()
	if _, err := in.Eval("f <- function() 1"); err != nil {
		t.Fatal(err)
	}
	if v, err := in.Eval("f()"); err != nil || Deparse(v) != "1" {
		t.Fatalf("f() = %v, %v", v, err)
	}
	if _, err := in.Eval("f <- function() 2"); err != nil {
		t.Fatal(err)
	}
	if v, err := in.Eval("f()"); err != nil || Deparse(v) != "2" {
		t.Fatalf("after redefinition f() = %v, %v", v, err)
	}
}

func TestFragmentCacheSurvivesResetButStateDoesNot(t *testing.T) {
	in := New()
	if _, err := in.EvalFragment("state <- 1", "state"); err != nil {
		t.Fatal(err)
	}
	in.Reset()
	if n := in.CacheStats(); n == 0 {
		t.Fatal("Reset dropped the parse cache")
	}
	if _, err := in.Eval("state"); err == nil {
		t.Fatal("state survived Reset")
	}
	if out, err := in.EvalFragment("state <- 1", "state"); err != nil || out != "1" {
		t.Fatalf("replay after Reset: %q, %v", out, err)
	}
}

func TestFragmentCacheBoundedEviction(t *testing.T) {
	in := New()
	in.progs = memo.New[[]rexpr](4)
	for i := 0; i < 20; i++ {
		if _, err := in.Eval(fmt.Sprintf("v%d <- %d", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := in.CacheStats(); n > 4 {
		t.Fatalf("cache exceeded bound: %d", n)
	}
	if v, err := in.Eval("v0 + 1"); err != nil || Deparse(v) != "1" {
		t.Fatalf("evicted fragment re-eval: %v, %v", v, err)
	}
}

func TestFragmentCacheParseErrorsNotCached(t *testing.T) {
	in := New()
	if _, err := in.Eval("function ("); err == nil {
		t.Fatal("bad syntax accepted")
	}
	if n := in.CacheStats(); n != 0 {
		t.Fatalf("parse failure entered the cache: %d", n)
	}
}
