package rlite

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/memo"
)

// Value is an rlite runtime value: *NumVec, *StrVec, *BoolVec, *RFunc,
// Builtin, or Null.
type Value any

// Null is R's NULL.
type Null struct{}

// NumVec is a numeric vector (R's double type; scalars are length 1).
type NumVec struct{ V []float64 }

// StrVec is a character vector.
type StrVec struct{ V []string }

// BoolVec is a logical vector.
type BoolVec struct{ V []bool }

// RFunc is a user-defined function (closure).
type RFunc struct {
	params  []rparam
	body    rexpr
	closure *renv
}

// Builtin is a Go-implemented R function.
type Builtin func(in *Interp, args []Value, names []string) (Value, error)

// Num builds a length-1 numeric vector.
func Num(v float64) *NumVec { return &NumVec{V: []float64{v}} }

// Chr builds a length-1 character vector.
func Chr(s string) *StrVec { return &StrVec{V: []string{s}} }

// Lgl builds a length-1 logical vector.
func Lgl(b bool) *BoolVec { return &BoolVec{V: []bool{b}} }

type renv struct {
	vars   map[string]Value
	parent *renv
}

func (e *renv) lookup(name string) (Value, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// assign sets in the defining scope if the name exists up-chain (R's <-
// in a function creates a local; we create locals always, matching <-).
func (e *renv) set(name string, v Value) { e.vars[name] = v }

// Interp is one embedded R interpreter with persistent global state.
type Interp struct {
	globals *renv
	Out     io.Writer
	depth   int
	// EvalCount counts Eval/EvalExpr calls, for instrumentation.
	EvalCount int
	// InitCost simulates interpreter initialisation cost (see pylite).
	InitCost func()
	// progs is the compile-once fragment cache (source -> parsed program,
	// bounded FIFO; see internal/memo). It holds immutable ASTs keyed by
	// source text only, so it survives Reset: reinitialisation discards
	// interpreter state, not parses.
	progs *memo.Cache[[]rexpr]
}

// defaultProgCacheSize bounds the fragment cache; interlanguage
// workloads in this repo use tens of distinct fragment shapes per run.
const defaultProgCacheSize = 256

// New creates an interpreter.
func New() *Interp {
	in := &Interp{Out: os.Stdout, progs: memo.New[[]rexpr](defaultProgCacheSize)}
	in.reset()
	return in
}

func (in *Interp) reset() {
	in.globals = &renv{vars: map[string]Value{}}
	if in.InitCost != nil {
		in.InitCost()
	}
}

// Reset reinitialises the interpreter, discarding all state (§III-C).
func (in *Interp) Reset() { in.reset() }

type rBreakErr struct{}
type rNextErr struct{}
type rReturnErr struct{ v Value }

func (rBreakErr) Error() string  { return "rlite: break outside loop" }
func (rNextErr) Error() string   { return "rlite: next outside loop" }
func (rReturnErr) Error() string { return "rlite: return outside function" }

// Eval executes a chunk of R code, returning the value of the last
// expression. Parsing is memoized: each distinct source string is parsed
// once per interpreter and the immutable program is replayed thereafter.
func (in *Interp) Eval(code string) (Value, error) {
	in.EvalCount++
	prog, err := in.progs.GetOrCompute(code, func() ([]rexpr, error) {
		return parseR(code)
	})
	if err != nil {
		return nil, err
	}
	var last Value = Null{}
	for _, e := range prog {
		var err error
		last, err = in.eval(e, in.globals)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// CacheStats reports the number of memoized programs, for tests and
// diagnostics.
func (in *Interp) CacheStats() (progs int) { return in.progs.Len() }

// EvalFragment is the Swift/T r(code, expr) entry point: evaluate code,
// then expr, returning the deparsed result.
func (in *Interp) EvalFragment(code, expr string) (string, error) {
	if strings.TrimSpace(code) != "" {
		if _, err := in.Eval(code); err != nil {
			return "", err
		}
	}
	if strings.TrimSpace(expr) == "" {
		return "", nil
	}
	v, err := in.Eval(expr)
	if err != nil {
		return "", err
	}
	return Deparse(v), nil
}

func (in *Interp) eval(x rexpr, e *renv) (Value, error) {
	switch ex := x.(type) {
	case *rNum:
		return Num(ex.v), nil
	case *rStr:
		return Chr(ex.v), nil
	case *rBool:
		return Lgl(ex.v), nil
	case *rNull:
		return Null{}, nil
	case *rName:
		if v, ok := e.lookup(ex.name); ok {
			return v, nil
		}
		if b, ok := rBuiltins[ex.name]; ok {
			return b, nil
		}
		return nil, fmt.Errorf("rlite: object %q not found", ex.name)
	case *rAssign:
		v, err := in.eval(ex.value, e)
		if err != nil {
			return nil, err
		}
		switch t := ex.target.(type) {
		case *rName:
			e.set(t.name, v)
			return v, nil
		case *rIndex:
			return in.indexAssign(t, v, e)
		}
		return nil, fmt.Errorf("rlite: bad assignment target")
	case *rBlock:
		var last Value = Null{}
		var err error
		for _, s := range ex.stmts {
			last, err = in.eval(s, e)
			if err != nil {
				return nil, err
			}
		}
		return last, nil
	case *rIf:
		c, err := in.eval(ex.cond, e)
		if err != nil {
			return nil, err
		}
		b, err := scalarBool(c)
		if err != nil {
			return nil, err
		}
		if b {
			return in.eval(ex.then, e)
		}
		if ex.els != nil {
			return in.eval(ex.els, e)
		}
		return Null{}, nil
	case *rFor:
		seq, err := in.eval(ex.seq, e)
		if err != nil {
			return nil, err
		}
		items, err := elements(seq)
		if err != nil {
			return nil, err
		}
		for _, item := range items {
			e.set(ex.v, item)
			_, err := in.eval(ex.body, e)
			if _, ok := err.(rBreakErr); ok {
				return Null{}, nil
			}
			if _, ok := err.(rNextErr); ok {
				continue
			}
			if err != nil {
				return nil, err
			}
		}
		return Null{}, nil
	case *rWhile:
		for {
			c, err := in.eval(ex.cond, e)
			if err != nil {
				return nil, err
			}
			b, err := scalarBool(c)
			if err != nil {
				return nil, err
			}
			if !b {
				return Null{}, nil
			}
			_, err = in.eval(ex.body, e)
			if _, ok := err.(rBreakErr); ok {
				return Null{}, nil
			}
			if _, ok := err.(rNextErr); ok {
				continue
			}
			if err != nil {
				return nil, err
			}
		}
	case *rFuncLit:
		return &RFunc{params: ex.params, body: ex.body, closure: e}, nil
	case *rReturn:
		v, err := in.eval(ex.x, e)
		if err != nil {
			return nil, err
		}
		return nil, rReturnErr{v: v}
	case *rBreak:
		return nil, rBreakErr{}
	case *rNext:
		return nil, rNextErr{}
	case *rUn:
		v, err := in.eval(ex.x, e)
		if err != nil {
			return nil, err
		}
		switch ex.op {
		case "-":
			nv, err := asNum(v)
			if err != nil {
				return nil, err
			}
			out := make([]float64, len(nv.V))
			for i, f := range nv.V {
				out[i] = -f
			}
			return &NumVec{V: out}, nil
		case "!":
			bv, err := asBool(v)
			if err != nil {
				return nil, err
			}
			out := make([]bool, len(bv.V))
			for i, b := range bv.V {
				out[i] = !b
			}
			return &BoolVec{V: out}, nil
		}
		return nil, fmt.Errorf("rlite: unknown unary op %q", ex.op)
	case *rBin:
		l, err := in.eval(ex.l, e)
		if err != nil {
			return nil, err
		}
		r, err := in.eval(ex.r, e)
		if err != nil {
			return nil, err
		}
		return rBinop(ex.op, l, r)
	case *rIndex:
		obj, err := in.eval(ex.obj, e)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(ex.idx, e)
		if err != nil {
			return nil, err
		}
		return indexVector(obj, idx)
	case *rCall:
		fn, err := in.eval(ex.fn, e)
		if err != nil {
			return nil, err
		}
		var args []Value
		var names []string
		for _, a := range ex.args {
			v, err := in.eval(a.val, e)
			if err != nil {
				return nil, err
			}
			args = append(args, v)
			names = append(names, a.name)
		}
		return in.call(fn, args, names)
	}
	return nil, fmt.Errorf("rlite: unknown expression %T", x)
}

func (in *Interp) call(fn Value, args []Value, names []string) (Value, error) {
	switch f := fn.(type) {
	case Builtin:
		return f(in, args, names)
	case *RFunc:
		in.depth++
		defer func() { in.depth-- }()
		if in.depth > 400 {
			return nil, fmt.Errorf("rlite: evaluation nested too deeply")
		}
		local := &renv{vars: map[string]Value{}, parent: f.closure}
		// Bind named args first, then positional into remaining slots.
		used := make([]bool, len(f.params))
		var positional []Value
		for i, a := range args {
			if names[i] == "" {
				positional = append(positional, a)
				continue
			}
			found := false
			for pi, prm := range f.params {
				if prm.name == names[i] {
					local.vars[prm.name] = a
					used[pi] = true
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("rlite: unused argument %q", names[i])
			}
		}
		ppos := 0
		for pi, prm := range f.params {
			if used[pi] {
				continue
			}
			if ppos < len(positional) {
				local.vars[prm.name] = positional[ppos]
				ppos++
				continue
			}
			if prm.def != nil {
				dv, err := in.eval(prm.def, local)
				if err != nil {
					return nil, err
				}
				local.vars[prm.name] = dv
				continue
			}
			return nil, fmt.Errorf("rlite: argument %q is missing, with no default", prm.name)
		}
		if ppos < len(positional) {
			return nil, fmt.Errorf("rlite: too many arguments")
		}
		v, err := in.eval(f.body, local)
		if r, ok := err.(rReturnErr); ok {
			return r.v, nil
		}
		if err != nil {
			return nil, err
		}
		return v, nil
	}
	return nil, fmt.Errorf("rlite: attempt to apply non-function")
}

func (in *Interp) indexAssign(t *rIndex, v Value, e *renv) (Value, error) {
	name, ok := t.obj.(*rName)
	if !ok {
		return nil, fmt.Errorf("rlite: indexed assignment target must be a variable")
	}
	cur, found := e.lookup(name.name)
	if !found {
		cur = &NumVec{}
	}
	idx, err := in.eval(t.idx, e)
	if err != nil {
		return nil, err
	}
	i, err := scalarInt(idx)
	if err != nil {
		return nil, err
	}
	if i < 1 {
		return nil, fmt.Errorf("rlite: subscript %d out of bounds", i)
	}
	switch c := cur.(type) {
	case *NumVec:
		nv, err := asNum(v)
		if err != nil {
			return nil, err
		}
		if len(nv.V) != 1 {
			return nil, fmt.Errorf("rlite: replacement must be length 1")
		}
		for len(c.V) < i {
			c.V = append(c.V, math.NaN())
		}
		c.V[i-1] = nv.V[0]
		e.set(name.name, c)
		return c, nil
	case *StrVec:
		sv, ok := v.(*StrVec)
		if !ok || len(sv.V) != 1 {
			return nil, fmt.Errorf("rlite: replacement must be a length-1 string")
		}
		for len(c.V) < i {
			c.V = append(c.V, "")
		}
		c.V[i-1] = sv.V[0]
		e.set(name.name, c)
		return c, nil
	}
	return nil, fmt.Errorf("rlite: cannot index-assign into %T", cur)
}

// ---- vector semantics ----

func asNum(v Value) (*NumVec, error) {
	switch x := v.(type) {
	case *NumVec:
		return x, nil
	case *BoolVec:
		out := make([]float64, len(x.V))
		for i, b := range x.V {
			if b {
				out[i] = 1
			}
		}
		return &NumVec{V: out}, nil
	}
	return nil, fmt.Errorf("rlite: expected a numeric vector")
}

func asBool(v Value) (*BoolVec, error) {
	switch x := v.(type) {
	case *BoolVec:
		return x, nil
	case *NumVec:
		out := make([]bool, len(x.V))
		for i, f := range x.V {
			out[i] = f != 0
		}
		return &BoolVec{V: out}, nil
	}
	return nil, fmt.Errorf("rlite: expected a logical vector")
}

func scalarBool(v Value) (bool, error) {
	b, err := asBool(v)
	if err != nil {
		return false, err
	}
	if len(b.V) == 0 {
		return false, fmt.Errorf("rlite: argument is of length zero")
	}
	return b.V[0], nil
}

func scalarInt(v Value) (int, error) {
	n, err := asNum(v)
	if err != nil {
		return 0, err
	}
	if len(n.V) != 1 {
		return 0, fmt.Errorf("rlite: expected a single value")
	}
	return int(n.V[0]), nil
}

func vecLen(v Value) int {
	switch x := v.(type) {
	case *NumVec:
		return len(x.V)
	case *StrVec:
		return len(x.V)
	case *BoolVec:
		return len(x.V)
	case Null:
		return 0
	}
	return 1
}

// elements splits a vector into length-1 values for iteration.
func elements(v Value) ([]Value, error) {
	switch x := v.(type) {
	case *NumVec:
		out := make([]Value, len(x.V))
		for i, f := range x.V {
			out[i] = Num(f)
		}
		return out, nil
	case *StrVec:
		out := make([]Value, len(x.V))
		for i, s := range x.V {
			out[i] = Chr(s)
		}
		return out, nil
	case *BoolVec:
		out := make([]Value, len(x.V))
		for i, b := range x.V {
			out[i] = Lgl(b)
		}
		return out, nil
	case Null:
		return nil, nil
	}
	return nil, fmt.Errorf("rlite: cannot iterate this value")
}

// rBinop applies a vectorised binary operator with recycling.
func rBinop(op string, l, r Value) (Value, error) {
	if op == ":" {
		a, err := scalarInt(l)
		if err != nil {
			return nil, err
		}
		b, err := scalarInt(r)
		if err != nil {
			return nil, err
		}
		var out []float64
		if a <= b {
			for i := a; i <= b; i++ {
				out = append(out, float64(i))
			}
		} else {
			for i := a; i >= b; i-- {
				out = append(out, float64(i))
			}
		}
		return &NumVec{V: out}, nil
	}
	// String comparison and paste-like + are handled for character vecs.
	ls, lIsStr := l.(*StrVec)
	rs, rIsStr := r.(*StrVec)
	if lIsStr || rIsStr {
		if !lIsStr || !rIsStr {
			if op == "==" {
				return Lgl(false), nil
			}
			if op == "!=" {
				return Lgl(true), nil
			}
			return nil, fmt.Errorf("rlite: non-character argument to %q", op)
		}
		n := recycleLen(len(ls.V), len(rs.V))
		out := make([]bool, n)
		for i := 0; i < n; i++ {
			a, b := ls.V[i%len(ls.V)], rs.V[i%len(rs.V)]
			switch op {
			case "==":
				out[i] = a == b
			case "!=":
				out[i] = a != b
			case "<":
				out[i] = a < b
			case "<=":
				out[i] = a <= b
			case ">":
				out[i] = a > b
			case ">=":
				out[i] = a >= b
			default:
				return nil, fmt.Errorf("rlite: invalid operator %q for character vectors", op)
			}
		}
		return &BoolVec{V: out}, nil
	}
	switch op {
	case "&", "&&":
		lb, err := asBool(l)
		if err != nil {
			return nil, err
		}
		rb, err := asBool(r)
		if err != nil {
			return nil, err
		}
		if op == "&&" {
			return Lgl(lb.V[0] && rb.V[0]), nil
		}
		n := recycleLen(len(lb.V), len(rb.V))
		out := make([]bool, n)
		for i := 0; i < n; i++ {
			out[i] = lb.V[i%len(lb.V)] && rb.V[i%len(rb.V)]
		}
		return &BoolVec{V: out}, nil
	case "|", "||":
		lb, err := asBool(l)
		if err != nil {
			return nil, err
		}
		rb, err := asBool(r)
		if err != nil {
			return nil, err
		}
		if op == "||" {
			return Lgl(lb.V[0] || rb.V[0]), nil
		}
		n := recycleLen(len(lb.V), len(rb.V))
		out := make([]bool, n)
		for i := 0; i < n; i++ {
			out[i] = lb.V[i%len(lb.V)] || rb.V[i%len(rb.V)]
		}
		return &BoolVec{V: out}, nil
	}
	ln, err := asNum(l)
	if err != nil {
		return nil, err
	}
	rn, err := asNum(r)
	if err != nil {
		return nil, err
	}
	if len(ln.V) == 0 || len(rn.V) == 0 {
		return &NumVec{}, nil
	}
	n := recycleLen(len(ln.V), len(rn.V))
	switch op {
	case "+", "-", "*", "/", "^", "%%", "%/%":
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			a, b := ln.V[i%len(ln.V)], rn.V[i%len(rn.V)]
			switch op {
			case "+":
				out[i] = a + b
			case "-":
				out[i] = a - b
			case "*":
				out[i] = a * b
			case "/":
				out[i] = a / b
			case "^":
				out[i] = math.Pow(a, b)
			case "%%":
				out[i] = math.Mod(math.Mod(a, b)+b, b)
			case "%/%":
				out[i] = math.Floor(a / b)
			}
		}
		return &NumVec{V: out}, nil
	case "==", "!=", "<", "<=", ">", ">=":
		out := make([]bool, n)
		for i := 0; i < n; i++ {
			a, b := ln.V[i%len(ln.V)], rn.V[i%len(rn.V)]
			switch op {
			case "==":
				out[i] = a == b
			case "!=":
				out[i] = a != b
			case "<":
				out[i] = a < b
			case "<=":
				out[i] = a <= b
			case ">":
				out[i] = a > b
			case ">=":
				out[i] = a >= b
			}
		}
		return &BoolVec{V: out}, nil
	}
	return nil, fmt.Errorf("rlite: unknown operator %q", op)
}

func recycleLen(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// indexVector implements v[i] with 1-based scalar, vector, and logical
// indices.
func indexVector(obj, idx Value) (Value, error) {
	// Logical index: keep elements where TRUE.
	if li, ok := idx.(*BoolVec); ok {
		switch o := obj.(type) {
		case *NumVec:
			var out []float64
			for i, v := range o.V {
				if li.V[i%len(li.V)] {
					out = append(out, v)
				}
			}
			return &NumVec{V: out}, nil
		case *StrVec:
			var out []string
			for i, v := range o.V {
				if li.V[i%len(li.V)] {
					out = append(out, v)
				}
			}
			return &StrVec{V: out}, nil
		}
		return nil, fmt.Errorf("rlite: cannot logically index this value")
	}
	ni, err := asNum(idx)
	if err != nil {
		return nil, err
	}
	pick := func(n int, get func(int) error) error {
		for _, f := range ni.V {
			i := int(f)
			if i < 1 || i > n {
				return fmt.Errorf("rlite: subscript %d out of bounds (length %d)", i, n)
			}
			if err := get(i - 1); err != nil {
				return err
			}
		}
		return nil
	}
	switch o := obj.(type) {
	case *NumVec:
		var out []float64
		if err := pick(len(o.V), func(i int) error { out = append(out, o.V[i]); return nil }); err != nil {
			return nil, err
		}
		return &NumVec{V: out}, nil
	case *StrVec:
		var out []string
		if err := pick(len(o.V), func(i int) error { out = append(out, o.V[i]); return nil }); err != nil {
			return nil, err
		}
		return &StrVec{V: out}, nil
	case *BoolVec:
		var out []bool
		if err := pick(len(o.V), func(i int) error { out = append(out, o.V[i]); return nil }); err != nil {
			return nil, err
		}
		return &BoolVec{V: out}, nil
	}
	return nil, fmt.Errorf("rlite: object is not subsettable")
}

// ---- rendering ----

// fmtNum renders one double the way R's default printing does for
// typical values.
func fmtNum(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', 0, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Deparse renders a value compactly (scalar -> bare value, vector ->
// c(...) style contents space-separated), the form returned to Swift.
func Deparse(v Value) string {
	switch x := v.(type) {
	case Null:
		return "NULL"
	case *NumVec:
		parts := make([]string, len(x.V))
		for i, f := range x.V {
			parts[i] = fmtNum(f)
		}
		return strings.Join(parts, " ")
	case *StrVec:
		return strings.Join(x.V, " ")
	case *BoolVec:
		parts := make([]string, len(x.V))
		for i, b := range x.V {
			if b {
				parts[i] = "TRUE"
			} else {
				parts[i] = "FALSE"
			}
		}
		return strings.Join(parts, " ")
	case *RFunc:
		return "<function>"
	case Builtin:
		return "<builtin>"
	}
	return fmt.Sprintf("%v", v)
}

// ---- builtins ----

var rBuiltins map[string]Value

func need1Num(args []Value) (*NumVec, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("rlite: expected one argument")
	}
	return asNum(args[0])
}

func numericFold(f func([]float64) float64) Builtin {
	return func(in *Interp, args []Value, names []string) (Value, error) {
		var all []float64
		for _, a := range args {
			n, err := asNum(a)
			if err != nil {
				return nil, err
			}
			all = append(all, n.V...)
		}
		if len(all) == 0 {
			return nil, fmt.Errorf("rlite: no data")
		}
		return Num(f(all)), nil
	}
}

func vecMath(f func(float64) float64) Builtin {
	return func(in *Interp, args []Value, names []string) (Value, error) {
		n, err := need1Num(args)
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(n.V))
		for i, v := range n.V {
			out[i] = f(v)
		}
		return &NumVec{V: out}, nil
	}
}

func init() {
	rBuiltins = map[string]Value{
		"c": Builtin(func(in *Interp, args []Value, names []string) (Value, error) {
			// Type promotion: any string -> character; else numeric.
			anyStr := false
			for _, a := range args {
				if _, ok := a.(*StrVec); ok {
					anyStr = true
				}
			}
			if anyStr {
				var out []string
				for _, a := range args {
					switch x := a.(type) {
					case *StrVec:
						out = append(out, x.V...)
					case *NumVec:
						for _, f := range x.V {
							out = append(out, fmtNum(f))
						}
					case *BoolVec:
						for _, b := range x.V {
							if b {
								out = append(out, "TRUE")
							} else {
								out = append(out, "FALSE")
							}
						}
					case Null:
					default:
						return nil, fmt.Errorf("rlite: c(): unsupported element")
					}
				}
				return &StrVec{V: out}, nil
			}
			var out []float64
			for _, a := range args {
				if _, ok := a.(Null); ok {
					continue
				}
				n, err := asNum(a)
				if err != nil {
					return nil, err
				}
				out = append(out, n.V...)
			}
			return &NumVec{V: out}, nil
		}),
		"length": Builtin(func(in *Interp, args []Value, names []string) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("rlite: length() takes one argument")
			}
			return Num(float64(vecLen(args[0]))), nil
		}),
		"seq": Builtin(func(in *Interp, args []Value, names []string) (Value, error) {
			from, to, by := 1.0, 1.0, 0.0
			setFrom, setTo, setBy := false, false, false
			pos := 0
			for i, a := range args {
				n, err := asNum(a)
				if err != nil {
					return nil, err
				}
				if len(n.V) != 1 {
					return nil, fmt.Errorf("rlite: seq() arguments must be scalars")
				}
				v := n.V[0]
				switch names[i] {
				case "from":
					from, setFrom = v, true
				case "to":
					to, setTo = v, true
				case "by":
					by, setBy = v, true
				case "":
					switch pos {
					case 0:
						from, setFrom = v, true
					case 1:
						to, setTo = v, true
					case 2:
						by, setBy = v, true
					}
					pos++
				default:
					return nil, fmt.Errorf("rlite: seq(): unknown argument %q", names[i])
				}
			}
			if !setFrom {
				return nil, fmt.Errorf("rlite: seq() needs 'from'")
			}
			if !setTo {
				to = from
			}
			if !setBy {
				if to >= from {
					by = 1
				} else {
					by = -1
				}
			}
			if by == 0 {
				return nil, fmt.Errorf("rlite: seq() by must be non-zero")
			}
			var out []float64
			if by > 0 {
				for v := from; v <= to+1e-12; v += by {
					out = append(out, v)
				}
			} else {
				for v := from; v >= to-1e-12; v += by {
					out = append(out, v)
				}
			}
			return &NumVec{V: out}, nil
		}),
		"rep": Builtin(func(in *Interp, args []Value, names []string) (Value, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("rlite: rep() takes two arguments")
			}
			times, err := scalarInt(args[1])
			if err != nil {
				return nil, err
			}
			switch x := args[0].(type) {
			case *NumVec:
				var out []float64
				for i := 0; i < times; i++ {
					out = append(out, x.V...)
				}
				return &NumVec{V: out}, nil
			case *StrVec:
				var out []string
				for i := 0; i < times; i++ {
					out = append(out, x.V...)
				}
				return &StrVec{V: out}, nil
			}
			return nil, fmt.Errorf("rlite: rep(): unsupported type")
		}),
		"rev": Builtin(func(in *Interp, args []Value, names []string) (Value, error) {
			n, err := need1Num(args)
			if err != nil {
				return nil, err
			}
			out := make([]float64, len(n.V))
			for i, v := range n.V {
				out[len(n.V)-1-i] = v
			}
			return &NumVec{V: out}, nil
		}),
		"sum": numericFold(func(xs []float64) float64 {
			s := 0.0
			for _, x := range xs {
				s += x
			}
			return s
		}),
		"prod": numericFold(func(xs []float64) float64 {
			p := 1.0
			for _, x := range xs {
				p *= x
			}
			return p
		}),
		"mean": numericFold(func(xs []float64) float64 {
			s := 0.0
			for _, x := range xs {
				s += x
			}
			return s / float64(len(xs))
		}),
		"min": numericFold(func(xs []float64) float64 {
			m := xs[0]
			for _, x := range xs[1:] {
				if x < m {
					m = x
				}
			}
			return m
		}),
		"max": numericFold(func(xs []float64) float64 {
			m := xs[0]
			for _, x := range xs[1:] {
				if x > m {
					m = x
				}
			}
			return m
		}),
		"sd": numericFold(func(xs []float64) float64 {
			if len(xs) < 2 {
				return math.NaN()
			}
			m := 0.0
			for _, x := range xs {
				m += x
			}
			m /= float64(len(xs))
			ss := 0.0
			for _, x := range xs {
				ss += (x - m) * (x - m)
			}
			return math.Sqrt(ss / float64(len(xs)-1))
		}),
		"var": numericFold(func(xs []float64) float64 {
			if len(xs) < 2 {
				return math.NaN()
			}
			m := 0.0
			for _, x := range xs {
				m += x
			}
			m /= float64(len(xs))
			ss := 0.0
			for _, x := range xs {
				ss += (x - m) * (x - m)
			}
			return ss / float64(len(xs)-1)
		}),
		"median": Builtin(func(in *Interp, args []Value, names []string) (Value, error) {
			n, err := need1Num(args)
			if err != nil {
				return nil, err
			}
			if len(n.V) == 0 {
				return nil, fmt.Errorf("rlite: median of empty vector")
			}
			xs := append([]float64(nil), n.V...)
			sort.Float64s(xs)
			k := len(xs)
			if k%2 == 1 {
				return Num(xs[k/2]), nil
			}
			return Num((xs[k/2-1] + xs[k/2]) / 2), nil
		}),
		"sort": Builtin(func(in *Interp, args []Value, names []string) (Value, error) {
			n, err := need1Num(args)
			if err != nil {
				return nil, err
			}
			xs := append([]float64(nil), n.V...)
			sort.Float64s(xs)
			return &NumVec{V: xs}, nil
		}),
		"sqrt":    vecMath(math.Sqrt),
		"abs":     vecMath(math.Abs),
		"exp":     vecMath(math.Exp),
		"log":     vecMath(math.Log),
		"sin":     vecMath(math.Sin),
		"cos":     vecMath(math.Cos),
		"floor":   vecMath(math.Floor),
		"ceiling": vecMath(math.Ceil),
		"round": Builtin(func(in *Interp, args []Value, names []string) (Value, error) {
			if len(args) == 0 || len(args) > 2 {
				return nil, fmt.Errorf("rlite: round() takes 1-2 arguments")
			}
			n, err := asNum(args[0])
			if err != nil {
				return nil, err
			}
			digits := 0
			if len(args) == 2 {
				digits, err = scalarInt(args[1])
				if err != nil {
					return nil, err
				}
			}
			p := math.Pow(10, float64(digits))
			out := make([]float64, len(n.V))
			for i, v := range n.V {
				out[i] = math.Round(v*p) / p
			}
			return &NumVec{V: out}, nil
		}),
		"sapply": Builtin(func(in *Interp, args []Value, names []string) (Value, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("rlite: sapply() takes two arguments")
			}
			items, err := elements(args[0])
			if err != nil {
				return nil, err
			}
			var out []float64
			var outS []string
			isStr := false
			for _, it := range items {
				v, err := in.call(args[1], []Value{it}, []string{""})
				if err != nil {
					return nil, err
				}
				switch r := v.(type) {
				case *NumVec:
					if len(r.V) != 1 {
						return nil, fmt.Errorf("rlite: sapply() function must return scalars")
					}
					out = append(out, r.V[0])
				case *StrVec:
					isStr = true
					outS = append(outS, r.V...)
				case *BoolVec:
					if len(r.V) != 1 {
						return nil, fmt.Errorf("rlite: sapply() function must return scalars")
					}
					if r.V[0] {
						out = append(out, 1)
					} else {
						out = append(out, 0)
					}
				default:
					return nil, fmt.Errorf("rlite: sapply(): unsupported return value")
				}
			}
			if isStr {
				return &StrVec{V: outS}, nil
			}
			return &NumVec{V: out}, nil
		}),
		"which": Builtin(func(in *Interp, args []Value, names []string) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("rlite: which() takes one argument")
			}
			b, err := asBool(args[0])
			if err != nil {
				return nil, err
			}
			var out []float64
			for i, v := range b.V {
				if v {
					out = append(out, float64(i+1))
				}
			}
			return &NumVec{V: out}, nil
		}),
		"paste":  Builtin(pasteImpl(" ")),
		"paste0": Builtin(pasteImpl("")),
		"nchar": Builtin(func(in *Interp, args []Value, names []string) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("rlite: nchar() takes one argument")
			}
			s, ok := args[0].(*StrVec)
			if !ok {
				return nil, fmt.Errorf("rlite: nchar() needs a character vector")
			}
			out := make([]float64, len(s.V))
			for i, v := range s.V {
				out[i] = float64(len(v))
			}
			return &NumVec{V: out}, nil
		}),
		"toupper": Builtin(strMap(strings.ToUpper)),
		"tolower": Builtin(strMap(strings.ToLower)),
		"as.numeric": Builtin(func(in *Interp, args []Value, names []string) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("rlite: as.numeric() takes one argument")
			}
			if s, ok := args[0].(*StrVec); ok {
				out := make([]float64, len(s.V))
				for i, v := range s.V {
					f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
					if err != nil {
						return nil, fmt.Errorf("rlite: NAs introduced by coercion: %q", v)
					}
					out[i] = f
				}
				return &NumVec{V: out}, nil
			}
			return asNum(args[0])
		}),
		"as.character": Builtin(func(in *Interp, args []Value, names []string) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("rlite: as.character() takes one argument")
			}
			switch x := args[0].(type) {
			case *StrVec:
				return x, nil
			case *NumVec:
				out := make([]string, len(x.V))
				for i, v := range x.V {
					out[i] = fmtNum(v)
				}
				return &StrVec{V: out}, nil
			case *BoolVec:
				out := make([]string, len(x.V))
				for i, v := range x.V {
					if v {
						out[i] = "TRUE"
					} else {
						out[i] = "FALSE"
					}
				}
				return &StrVec{V: out}, nil
			}
			return nil, fmt.Errorf("rlite: as.character(): unsupported type")
		}),
		"cat": Builtin(func(in *Interp, args []Value, names []string) (Value, error) {
			var parts []string
			for _, a := range args {
				parts = append(parts, Deparse(a))
			}
			fmt.Fprint(in.Out, strings.Join(parts, " "))
			return Null{}, nil
		}),
		"print": Builtin(func(in *Interp, args []Value, names []string) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("rlite: print() takes one argument")
			}
			fmt.Fprintln(in.Out, "[1] "+Deparse(args[0]))
			return args[0], nil
		}),
		"is.null": Builtin(func(in *Interp, args []Value, names []string) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("rlite: is.null() takes one argument")
			}
			_, isNull := args[0].(Null)
			return Lgl(isNull), nil
		}),
		"numeric": Builtin(func(in *Interp, args []Value, names []string) (Value, error) {
			n := 0
			if len(args) == 1 {
				var err error
				n, err = scalarInt(args[0])
				if err != nil {
					return nil, err
				}
			}
			return &NumVec{V: make([]float64, n)}, nil
		}),
	}
}

func pasteImpl(sep string) func(*Interp, []Value, []string) (Value, error) {
	return func(in *Interp, args []Value, names []string) (Value, error) {
		useSep := sep
		var vecs []Value
		for i, a := range args {
			if names[i] == "sep" {
				s, ok := a.(*StrVec)
				if !ok || len(s.V) != 1 {
					return nil, fmt.Errorf("rlite: paste(): sep must be a string")
				}
				useSep = s.V[0]
				continue
			}
			vecs = append(vecs, a)
		}
		n := 1
		for _, v := range vecs {
			if l := vecLen(v); l > n {
				n = l
			}
		}
		strsOf := func(v Value) []string {
			switch x := v.(type) {
			case *StrVec:
				return x.V
			case *NumVec:
				out := make([]string, len(x.V))
				for i, f := range x.V {
					out[i] = fmtNum(f)
				}
				return out
			case *BoolVec:
				out := make([]string, len(x.V))
				for i, b := range x.V {
					if b {
						out[i] = "TRUE"
					} else {
						out[i] = "FALSE"
					}
				}
				return out
			}
			return []string{Deparse(v)}
		}
		out := make([]string, n)
		for i := 0; i < n; i++ {
			var parts []string
			for _, v := range vecs {
				ss := strsOf(v)
				if len(ss) == 0 {
					continue
				}
				parts = append(parts, ss[i%len(ss)])
			}
			out[i] = strings.Join(parts, useSep)
		}
		return &StrVec{V: out}, nil
	}
}

func strMap(f func(string) string) func(*Interp, []Value, []string) (Value, error) {
	return func(in *Interp, args []Value, names []string) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("rlite: expected one argument")
		}
		s, ok := args[0].(*StrVec)
		if !ok {
			return nil, fmt.Errorf("rlite: expected a character vector")
		}
		out := make([]string, len(s.V))
		for i, v := range s.V {
			out[i] = f(v)
		}
		return &StrVec{V: out}, nil
	}
}
