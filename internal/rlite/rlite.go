// Package rlite implements an embedded R-subset interpreter, the
// stand-in for linking libR into the runtime (paper §III-C). As with
// Python, the paper's mechanism — the interpreter as an in-process
// library behind a Tcl extension, exposed to Swift as r(code, expr) —
// is reproduced; the evaluator here covers the vectorised core of R used
// in analysis glue: numeric/character/logical vectors with recycling,
// `<-` assignment, functions, control flow, and a statistics-oriented
// builtin set (c, seq, sum, mean, sd, sapply, paste, ...).
package rlite

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tNum
	tStr
	tName
	tOp
	tNewline
)

type token struct {
	kind tokKind
	text string
	line int
}

var rKeywords = map[string]bool{
	"if": true, "else": true, "for": true, "while": true, "in": true,
	"function": true, "return": true, "break": true, "next": true,
	"TRUE": true, "FALSE": true, "NULL": true, "NA": true,
}

func lex(src string) ([]token, error) {
	var toks []token
	i, n, line := 0, len(src), 1
	depth := 0 // () and [] nesting suppresses newline tokens
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			if depth == 0 {
				toks = append(toks, token{kind: tNewline, line: line})
			}
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '"' || c == '\'':
			quote := c
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if src[i] == '\\' && i+1 < n {
					switch src[i+1] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case '\\':
						b.WriteByte('\\')
					case '"':
						b.WriteByte('"')
					case '\'':
						b.WriteByte('\'')
					default:
						b.WriteByte(src[i+1])
					}
					i += 2
					continue
				}
				if src[i] == quote {
					closed = true
					i++
					break
				}
				if src[i] == '\n' {
					line++
				}
				b.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("rlite: line %d: unterminated string", line)
			}
			toks = append(toks, token{kind: tStr, text: b.String(), line: line})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			start := i
			for i < n {
				d := src[i]
				if (d >= '0' && d <= '9') || d == '.' {
					i++
				} else if d == 'e' || d == 'E' {
					i++
					if i < n && (src[i] == '+' || src[i] == '-') {
						i++
					}
				} else {
					break
				}
			}
			toks = append(toks, token{kind: tNum, text: src[start:i], line: line})
		case isRNameStart(c):
			start := i
			for i < n && isRNamePart(src[i]) {
				i++
			}
			toks = append(toks, token{kind: tName, text: src[start:i], line: line})
		default:
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch {
			case two == "<-" || two == "==" || two == "!=" || two == "<=" || two == ">=" ||
				two == "&&" || two == "||" || two == "%%":
				toks = append(toks, token{kind: tOp, text: two, line: line})
				i += 2
			case strings.HasPrefix(src[i:], "%/%"):
				toks = append(toks, token{kind: tOp, text: "%/%", line: line})
				i += 3
			default:
				switch c {
				case '(', '[':
					depth++
					toks = append(toks, token{kind: tOp, text: string(c), line: line})
					i++
				case ')', ']':
					depth--
					toks = append(toks, token{kind: tOp, text: string(c), line: line})
					i++
				case '{', '}', '+', '-', '*', '/', '^', '<', '>', '!', '&', '|',
					'=', ',', ';', ':', '$':
					toks = append(toks, token{kind: tOp, text: string(c), line: line})
					i++
				default:
					return nil, fmt.Errorf("rlite: line %d: unexpected character %q", line, c)
				}
			}
		}
	}
	toks = append(toks, token{kind: tEOF, line: line})
	return toks, nil
}

func isRNameStart(c byte) bool {
	return c == '.' || c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isRNamePart(c byte) bool {
	return isRNameStart(c) || (c >= '0' && c <= '9')
}

// ---- AST ----

type rexpr interface{ rexprNode() }

type rNum struct{ v float64 }
type rStr struct{ v string }
type rBool struct{ v bool }
type rNull struct{}
type rName struct{ name string }
type rBin struct {
	op   string
	l, r rexpr
}
type rUn struct {
	op string
	x  rexpr
}
type rCall struct {
	fn   rexpr
	args []rarg
}
type rarg struct {
	name string // named argument, "" if positional
	val  rexpr
}
type rIndex struct {
	obj rexpr
	idx rexpr
}
type rFuncLit struct {
	params []rparam
	body   rexpr
}
type rparam struct {
	name string
	def  rexpr // default, may be nil
}
type rBlock struct{ stmts []rexpr }
type rIf struct {
	cond      rexpr
	then, els rexpr // els may be nil
}
type rFor struct {
	v    string
	seq  rexpr
	body rexpr
}
type rWhile struct {
	cond rexpr
	body rexpr
}
type rAssign struct {
	target rexpr // rName or rIndex
	value  rexpr
}
type rReturn struct{ x rexpr }
type rBreak struct{}
type rNext struct{}

func (*rNum) rexprNode()     {}
func (*rStr) rexprNode()     {}
func (*rBool) rexprNode()    {}
func (*rNull) rexprNode()    {}
func (*rName) rexprNode()    {}
func (*rBin) rexprNode()     {}
func (*rUn) rexprNode()      {}
func (*rCall) rexprNode()    {}
func (*rIndex) rexprNode()   {}
func (*rFuncLit) rexprNode() {}
func (*rBlock) rexprNode()   {}
func (*rIf) rexprNode()      {}
func (*rFor) rexprNode()     {}
func (*rWhile) rexprNode()   {}
func (*rAssign) rexprNode()  {}
func (*rReturn) rexprNode()  {}
func (*rBreak) rexprNode()   {}
func (*rNext) rexprNode()    {}

// ---- parser ----

type rparser struct {
	toks []token
	pos  int
}

func parseR(src string) ([]rexpr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &rparser{toks: toks}
	var prog []rexpr
	for {
		p.skipSeps()
		if p.cur().kind == tEOF {
			return prog, nil
		}
		e, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog = append(prog, e)
	}
}

func (p *rparser) cur() token { return p.toks[p.pos] }

func (p *rparser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *rparser) eat(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *rparser) expect(text string) error {
	if p.cur().text != text {
		return fmt.Errorf("rlite: line %d: expected %q, found %q", p.cur().line, text, p.cur().text)
	}
	p.pos++
	return nil
}

func (p *rparser) skipSeps() {
	for p.at(tNewline, "") || p.at(tOp, ";") {
		p.pos++
	}
}

// skipNewlines skips newline tokens only (used where a construct may
// continue on the next line).
func (p *rparser) skipNewlines() {
	for p.at(tNewline, "") {
		p.pos++
	}
}

func (p *rparser) statement() (rexpr, error) {
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	// Assignment forms: name <- value, name = value, idx <- value.
	if p.at(tOp, "<-") || p.at(tOp, "=") {
		p.pos++
		p.skipNewlines()
		v, err := p.statement()
		if err != nil {
			return nil, err
		}
		switch e.(type) {
		case *rName, *rIndex:
			return &rAssign{target: e, value: v}, nil
		}
		return nil, fmt.Errorf("rlite: invalid assignment target")
	}
	return e, nil
}

func (p *rparser) expr() (rexpr, error) { return p.orExpr() }

func (p *rparser) binLevel(ops []string, next func() (rexpr, error)) (rexpr, error) {
	l, err := next()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.at(tOp, op) {
				p.pos++
				p.skipNewlines()
				r, err := next()
				if err != nil {
					return nil, err
				}
				l = &rBin{op: op, l: l, r: r}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (p *rparser) orExpr() (rexpr, error) {
	return p.binLevel([]string{"||", "|"}, p.andExpr)
}

func (p *rparser) andExpr() (rexpr, error) {
	return p.binLevel([]string{"&&", "&"}, p.notExpr)
}

func (p *rparser) notExpr() (rexpr, error) {
	if p.at(tOp, "!") {
		p.pos++
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &rUn{op: "!", x: x}, nil
	}
	return p.cmpExpr()
}

func (p *rparser) cmpExpr() (rexpr, error) {
	return p.binLevel([]string{"==", "!=", "<=", ">=", "<", ">"}, p.rangeExpr)
}

func (p *rparser) rangeExpr() (rexpr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.at(tOp, ":") {
		p.pos++
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &rBin{op: ":", l: l, r: r}, nil
	}
	return l, nil
}

func (p *rparser) addExpr() (rexpr, error) {
	return p.binLevel([]string{"+", "-"}, p.mulExpr)
}

func (p *rparser) mulExpr() (rexpr, error) {
	return p.binLevel([]string{"*", "/", "%%", "%/%"}, p.unaryExpr)
}

func (p *rparser) unaryExpr() (rexpr, error) {
	if p.at(tOp, "-") {
		p.pos++
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &rUn{op: "-", x: x}, nil
	}
	if p.at(tOp, "+") {
		p.pos++
		return p.unaryExpr()
	}
	return p.powExpr()
}

func (p *rparser) powExpr() (rexpr, error) {
	l, err := p.postfix()
	if err != nil {
		return nil, err
	}
	if p.at(tOp, "^") {
		p.pos++
		r, err := p.unaryExpr() // right assoc
		if err != nil {
			return nil, err
		}
		return &rBin{op: "^", l: l, r: r}, nil
	}
	return l, nil
}

func (p *rparser) postfix() (rexpr, error) {
	x, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tOp, "("):
			p.pos++
			call := &rCall{fn: x}
			p.skipNewlines()
			for !p.at(tOp, ")") {
				// Named argument? name = expr (but == is comparison).
				name := ""
				if p.cur().kind == tName && p.toks[p.pos+1].kind == tOp && p.toks[p.pos+1].text == "=" {
					name = p.cur().text
					p.pos += 2
				}
				a, err := p.statement()
				if err != nil {
					return nil, err
				}
				call.args = append(call.args, rarg{name: name, val: a})
				p.skipNewlines()
				if !p.eat(tOp, ",") {
					break
				}
				p.skipNewlines()
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			x = call
		case p.at(tOp, "["):
			p.pos++
			idx, err := p.statement()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &rIndex{obj: x, idx: idx}
		default:
			return x, nil
		}
	}
}

func (p *rparser) atom() (rexpr, error) {
	t := p.cur()
	switch {
	case t.kind == tNum:
		p.pos++
		var v float64
		if _, err := fmt.Sscanf(t.text, "%g", &v); err != nil {
			return nil, fmt.Errorf("rlite: line %d: bad number %q", t.line, t.text)
		}
		return &rNum{v: v}, nil
	case t.kind == tStr:
		p.pos++
		return &rStr{v: t.text}, nil
	case t.kind == tName:
		switch t.text {
		case "TRUE", "T":
			p.pos++
			return &rBool{v: true}, nil
		case "FALSE", "F":
			p.pos++
			return &rBool{v: false}, nil
		case "NULL", "NA":
			p.pos++
			return &rNull{}, nil
		case "if":
			return p.ifExpr()
		case "for":
			return p.forExpr()
		case "while":
			return p.whileExpr()
		case "function":
			return p.funcLit()
		case "return":
			p.pos++
			if p.eat(tOp, "(") {
				if p.eat(tOp, ")") {
					return &rReturn{x: &rNull{}}, nil
				}
				x, err := p.statement()
				if err != nil {
					return nil, err
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				return &rReturn{x: x}, nil
			}
			return &rReturn{x: &rNull{}}, nil
		case "break":
			p.pos++
			return &rBreak{}, nil
		case "next":
			p.pos++
			return &rNext{}, nil
		}
		p.pos++
		return &rName{name: t.text}, nil
	case t.kind == tOp && t.text == "(":
		p.pos++
		p.skipNewlines()
		x, err := p.statement()
		if err != nil {
			return nil, err
		}
		p.skipNewlines()
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return x, nil
	case t.kind == tOp && t.text == "{":
		return p.block()
	}
	return nil, fmt.Errorf("rlite: line %d: unexpected token %q", t.line, t.text)
}

func (p *rparser) block() (rexpr, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &rBlock{}
	for {
		p.skipSeps()
		if p.at(tOp, "}") {
			p.pos++
			return b, nil
		}
		if p.cur().kind == tEOF {
			return nil, fmt.Errorf("rlite: unexpected end of input in block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.stmts = append(b.stmts, s)
	}
}

func (p *rparser) ifExpr() (rexpr, error) {
	p.pos++ // if
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.statement()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	p.skipNewlines()
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	node := &rIf{cond: cond, then: then}
	// Allow else on the same or following line.
	save := p.pos
	p.skipNewlines()
	if p.at(tName, "else") {
		p.pos++
		p.skipNewlines()
		node.els, err = p.statement()
		if err != nil {
			return nil, err
		}
	} else {
		p.pos = save
	}
	return node, nil
}

func (p *rparser) forExpr() (rexpr, error) {
	p.pos++ // for
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if p.cur().kind != tName {
		return nil, fmt.Errorf("rlite: line %d: expected loop variable", p.cur().line)
	}
	v := p.cur().text
	p.pos++
	if !p.eat(tName, "in") {
		return nil, fmt.Errorf("rlite: line %d: expected 'in'", p.cur().line)
	}
	seq, err := p.statement()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	p.skipNewlines()
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &rFor{v: v, seq: seq, body: body}, nil
}

func (p *rparser) whileExpr() (rexpr, error) {
	p.pos++ // while
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.statement()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	p.skipNewlines()
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &rWhile{cond: cond, body: body}, nil
}

func (p *rparser) funcLit() (rexpr, error) {
	p.pos++ // function
	if err := p.expect("("); err != nil {
		return nil, err
	}
	f := &rFuncLit{}
	for !p.at(tOp, ")") {
		if p.cur().kind != tName {
			return nil, fmt.Errorf("rlite: line %d: expected parameter name", p.cur().line)
		}
		prm := rparam{name: p.cur().text}
		p.pos++
		if p.eat(tOp, "=") {
			def, err := p.expr()
			if err != nil {
				return nil, err
			}
			prm.def = def
		}
		f.params = append(f.params, prm)
		if !p.eat(tOp, ",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	p.skipNewlines()
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	f.body = body
	return f, nil
}
