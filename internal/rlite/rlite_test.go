package rlite

import (
	"strings"
	"testing"
	"testing/quick"
)

func evalR(t *testing.T, in *Interp, code string) Value {
	t.Helper()
	v, err := in.Eval(code)
	if err != nil {
		t.Fatalf("Eval(%q): %v", code, err)
	}
	return v
}

func expectR(t *testing.T, in *Interp, code, want string) {
	t.Helper()
	v := evalR(t, in, code)
	if got := Deparse(v); got != want {
		t.Fatalf("Eval(%q) = %q, want %q", code, got, want)
	}
}

func TestArithmeticVectorized(t *testing.T) {
	in := New()
	cases := [][2]string{
		{"1 + 2", "3"},
		{"10 - 4", "6"},
		{"6 * 7", "42"},
		{"7 / 2", "3.5"},
		{"2 ^ 10", "1024"},
		{"7 %% 3", "1"},
		{"-7 %% 3", "2"},
		{"7 %/% 2", "3"},
		{"-5", "-5"},
		{"1:5", "1 2 3 4 5"},
		{"5:1", "5 4 3 2 1"},
		{"c(1, 2, 3) + 10", "11 12 13"},
		{"c(1, 2) * c(10, 20)", "10 40"},
		{"c(1, 2, 3, 4) + c(10, 20)", "11 22 13 24"}, // recycling
		{"(1:3) ^ 2", "1 4 9"},
		{"1 + 2 * 3", "7"},
		{"(1 + 2) * 3", "9"},
	}
	for _, c := range cases {
		expectR(t, in, c[0], c[1])
	}
}

func TestComparisonAndLogical(t *testing.T) {
	in := New()
	cases := [][2]string{
		{"1 < 2", "TRUE"},
		{"2 <= 1", "FALSE"},
		{"3 == 3", "TRUE"},
		{"1 != 2", "TRUE"},
		{"c(1, 5, 3) > 2", "FALSE TRUE TRUE"},
		{"TRUE && FALSE", "FALSE"},
		{"TRUE || FALSE", "TRUE"},
		{"!TRUE", "FALSE"},
		{"c(TRUE, FALSE) & c(TRUE, TRUE)", "TRUE FALSE"},
		{"'a' == 'a'", "TRUE"},
		{"'a' < 'b'", "TRUE"},
	}
	for _, c := range cases {
		expectR(t, in, c[0], c[1])
	}
}

func TestAssignmentAndVariables(t *testing.T) {
	in := New()
	expectR(t, in, "x <- 42\nx", "42")
	expectR(t, in, "y = x + 1\ny", "43")
	expectR(t, in, "v <- c(1, 2, 3)\nv[2]", "2")
	expectR(t, in, "v[2] <- 99\nv", "1 99 3")
	expectR(t, in, "v[5] <- 7\nlength(v)", "5")
	if _, err := in.Eval("zzz"); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("err = %v", err)
	}
}

func TestIndexing(t *testing.T) {
	in := New()
	expectR(t, in, "v <- c(10, 20, 30, 40)\nv[c(1, 3)]", "10 30")
	expectR(t, in, "v[v > 15]", "20 30 40")
	expectR(t, in, "v[2:3]", "20 30")
	if _, err := in.Eval("v[10]"); err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuiltinStats(t *testing.T) {
	in := New()
	cases := [][2]string{
		{"sum(1:10)", "55"},
		{"mean(c(1, 2, 3, 4))", "2.5"},
		{"min(c(3, 1, 2))", "1"},
		{"max(c(3, 1, 2))", "3"},
		{"length(1:7)", "7"},
		{"median(c(3, 1, 2))", "2"},
		{"sort(c(3, 1, 2))", "1 2 3"},
		{"rev(1:3)", "3 2 1"},
		{"prod(1:5)", "120"},
		{"sqrt(16)", "4"},
		{"abs(-3)", "3"},
		{"floor(3.7)", "3"},
		{"ceiling(3.2)", "4"},
		{"round(3.14159, 2)", "3.14"},
		{"seq(1, 10, 3)", "1 4 7 10"},
		{"seq(from = 0, to = 1, by = 0.5)", "0 0.5 1"},
		{"rep(c(1, 2), 3)", "1 2 1 2 1 2"},
		{"which(c(5, 1, 7) > 4)", "1 3"},
		{"numeric(3)", "0 0 0"},
	}
	for _, c := range cases {
		expectR(t, in, c[0], c[1])
	}
	// sd of a known sample.
	v := evalR(t, in, "sd(c(2, 4, 4, 4, 5, 5, 7, 9))")
	n, ok := v.(*NumVec)
	if !ok || len(n.V) != 1 || n.V[0] < 2.13 || n.V[0] > 2.14 {
		t.Fatalf("sd = %v", Deparse(v))
	}
}

func TestStrings(t *testing.T) {
	in := New()
	cases := [][2]string{
		{"paste('a', 'b', 'c')", "a b c"},
		{"paste0('x', 1:3)", "x1 x2 x3"},
		{"paste('a', 'b', sep = '-')", "a-b"},
		{"nchar('hello')", "5"},
		{"toupper('abc')", "ABC"},
		{"tolower('ABC')", "abc"},
		{"as.character(42)", "42"},
		{"as.numeric('2.5')", "2.5"},
		{"c('a', 'b')", "a b"},
		{"c('n', 1)", "n 1"}, // promotion to character
	}
	for _, c := range cases {
		expectR(t, in, c[0], c[1])
	}
}

func TestControlFlow(t *testing.T) {
	in := New()
	expectR(t, in, `
		total <- 0
		for (i in 1:10) {
			total <- total + i
		}
		total`, "55")
	expectR(t, in, `
		n <- 0
		while (n < 100) {
			n <- n + 7
			if (n > 50) break
		}
		n`, "56")
	expectR(t, in, `
		skipped <- 0
		for (i in 1:10) {
			if (i < 6) next
			skipped <- skipped + 1
		}
		skipped`, "5")
	expectR(t, in, "if (1 > 2) 'a' else 'b'", "b")
	expectR(t, in, "x <- if (TRUE) 10 else 20\nx", "10")
}

func TestFunctions(t *testing.T) {
	in := New()
	expectR(t, in, `
		add <- function(a, b) a + b
		add(2, 3)`, "5")
	expectR(t, in, `
		fact <- function(n) {
			if (n <= 1) return(1)
			n * fact(n - 1)
		}
		fact(6)`, "720")
	// Default arguments.
	expectR(t, in, `
		pow <- function(x, p = 2) x ^ p
		pow(3)`, "9")
	expectR(t, in, "pow(2, 10)", "1024")
	expectR(t, in, "pow(p = 3, x = 2)", "8")
	// Closures.
	expectR(t, in, `
		make_counter <- function() {
			n <- 0
			function() n + 1
		}
		cnt <- make_counter()
		cnt()`, "1")
	// sapply with lambda.
	expectR(t, in, "sapply(1:4, function(x) x * x)", "1 4 9 16")
	// Errors.
	if _, err := in.Eval("add(1)"); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("err = %v", err)
	}
	if _, err := in.Eval("add(1, 2, 3)"); err == nil || !strings.Contains(err.Error(), "too many") {
		t.Fatalf("err = %v", err)
	}
	if _, err := in.Eval("5(1)"); err == nil || !strings.Contains(err.Error(), "non-function") {
		t.Fatalf("err = %v", err)
	}
}

func TestCatAndPrint(t *testing.T) {
	in := New()
	var buf strings.Builder
	in.Out = &buf
	evalR(t, in, `cat('hello', 42)`)
	if buf.String() != "hello 42" {
		t.Fatalf("cat output = %q", buf.String())
	}
	buf.Reset()
	evalR(t, in, `print(c(1, 2))`)
	if buf.String() != "[1] 1 2\n" {
		t.Fatalf("print output = %q", buf.String())
	}
}

func TestPersistentStateAndReset(t *testing.T) {
	in := New()
	evalR(t, in, "x <- 10")
	expectR(t, in, "x + 5", "15")
	in.Reset()
	if _, err := in.Eval("x"); err == nil {
		t.Fatal("x should be gone after Reset")
	}
}

func TestEvalFragment(t *testing.T) {
	in := New()
	out, err := in.EvalFragment("m <- mean(c(2, 4, 6))", "m")
	if err != nil || out != "4" {
		t.Fatalf("out=%q err=%v", out, err)
	}
	out, err = in.EvalFragment("", "m * 2")
	if err != nil || out != "8" {
		t.Fatalf("out=%q err=%v", out, err)
	}
}

func TestStatisticalWorkload(t *testing.T) {
	// The kind of fragment the paper's R integration serves: aggregate
	// simulation outputs.
	in := New()
	out, err := in.EvalFragment(`
		results <- sapply(1:50, function(i) sin(i * 0.1) + i * 0.01)
		m <- mean(results)
		s <- sd(results)
	`, "round(m, 4)")
	if err != nil {
		t.Fatal(err)
	}
	// Analytically: mean(sin(0.1i)) + 0.01*mean(i) over i=1..50 ≈ 0.3886.
	if out != "0.3886" {
		t.Fatalf("mean = %q", out)
	}
}

func TestDeparseForms(t *testing.T) {
	if Deparse(Null{}) != "NULL" {
		t.Fatal("NULL")
	}
	if Deparse(Num(2)) != "2" {
		t.Fatal("2")
	}
	if Deparse(Num(2.5)) != "2.5" {
		t.Fatal("2.5")
	}
	if Deparse(&BoolVec{V: []bool{true, false}}) != "TRUE FALSE" {
		t.Fatal("logical vec")
	}
	if Deparse(Chr("s")) != "s" {
		t.Fatal("chr")
	}
}

func TestNumericVectorProperty(t *testing.T) {
	in := New()
	f := func(a, b int16) bool {
		code := "pa <- " + fmtNum(float64(a)) + "\npb <- " + fmtNum(float64(b)) + "\npa + pb"
		v, err := in.Eval(code)
		if err != nil {
			return false
		}
		n, ok := v.(*NumVec)
		return ok && len(n.V) == 1 && n.V[0] == float64(a)+float64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	in := New()
	bad := []string{
		"x <-",
		"f(",
		"c(1,",
		"'unterminated",
		"for (x in) {}",
		"@",
	}
	for _, code := range bad {
		if _, err := in.Eval(code); err == nil {
			t.Errorf("Eval(%q) should fail", code)
		}
	}
}
