package rlite

// Typed binding of blob bulk data into the R surface (paper §III-C meets
// §III-B): a blob argument decodes into a real R numeric vector — so
// fragments use native vectorised arithmetic on it — and numeric-vector
// results pack back into blobs. Packing prefers the prototype of the
// incoming argument (element kind and Fortran dims), so an identity
// round-trip of a float32 or int32 vector leaves the interpreter
// bit-exact rather than widened; see blob.PackLike.

import (
	"fmt"

	"repro/internal/blob"
)

// NumVecFromBlob decodes packed bytes into an R numeric vector under the
// blob's element view. Narrow element kinds widen exactly; int64 values
// beyond the exactly-representable double range are rejected rather than
// silently rounded (R's numeric type is a float64, and a rounded value
// would repack "bit-exact" to the wrong integer).
func NumVecFromBlob(b blob.Blob) (*NumVec, error) {
	if sz := b.Elem.Size(); len(b.Data)%sz != 0 {
		return nil, fmt.Errorf("rlite: %d bytes is not a whole number of %s elements", len(b.Data), b.Elem)
	}
	if b.Elem == blob.ElemI64 {
		ns, err := blob.ToInt64s(blob.Blob{Data: b.Data})
		if err != nil {
			return nil, err
		}
		const maxExact = int64(1) << 53
		for _, n := range ns {
			if n > maxExact || n < -maxExact {
				return nil, fmt.Errorf("rlite: int64 value %d is not exactly representable as an R double", n)
			}
		}
	}
	xs, err := b.Floats()
	if err != nil {
		return nil, err
	}
	return &NumVec{V: xs}, nil
}

// SetGlobal binds a value into the interpreter's global environment;
// hosts use it to pre-bind fragment arguments (argv1..argvN), as a C
// embedding would via Rf_defineVar.
func (in *Interp) SetGlobal(name string, v Value) { in.globals.set(name, v) }

// DelGlobal removes a global binding (a no-op if absent); hosts use it
// to unbind stale pre-bound arguments between fragments.
func (in *Interp) DelGlobal(name string) { delete(in.globals.vars, name) }
