package rlite

import (
	"testing"

	"repro/internal/blob"
)

func TestNumVecFromBlobEntersAsRealVector(t *testing.T) {
	in := New()
	nv, err := NumVecFromBlob(blob.FromFloat64s([]float64{1, 2, 3.5}))
	if err != nil {
		t.Fatal(err)
	}
	in.SetGlobal("argv1", nv)
	// Native vectorised arithmetic applies directly to the binding.
	out, err := in.EvalFragment("y <- argv1 * 2", "sum(y)")
	if err != nil || out != "13" {
		t.Fatalf("sum = %q, %v", out, err)
	}
}

func TestNumVecFromBlobWidensNarrowKindsExactly(t *testing.T) {
	nv, err := NumVecFromBlob(blob.FromFloat32s([]float32{0.5, -1.25}))
	if err != nil || len(nv.V) != 2 || nv.V[0] != 0.5 || nv.V[1] != -1.25 {
		t.Fatalf("f32 decode = %+v, %v", nv, err)
	}
	nv, err = NumVecFromBlob(blob.FromInt32s([]int32{-9, 9}))
	if err != nil || nv.V[0] != -9 {
		t.Fatalf("i32 decode = %+v, %v", nv, err)
	}
}

func TestNumVecFromBlobRejectsRaggedPayload(t *testing.T) {
	if _, err := NumVecFromBlob(blob.Blob{Data: []byte{1, 2, 3}, Elem: blob.ElemI32}); err == nil {
		t.Fatal("3 bytes accepted as int32 vector")
	}
}
