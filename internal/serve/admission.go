package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// TenantConfig is one tenant's admission class.
type TenantConfig struct {
	// Priority is the ADLB put priority of this tenant's work (higher
	// runs first when queues are contended) and the TaskPriority base of
	// its program runs.
	Priority int
	// MaxConcurrent bounds requests of this tenant executing at once
	// (0 = default 4).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an execution slot beyond
	// MaxConcurrent; an arrival past the bound is rejected immediately
	// with an OverloadError rather than queued (0 = default 8, negative
	// = no queueing: reject as soon as all slots are busy).
	MaxQueue int
}

func (c TenantConfig) withDefaults() TenantConfig {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 8
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	return c
}

// OverloadError is the typed 429-style rejection: the tenant's execution
// slots and waiting queue are both full. The request was not executed and
// is safe to retry after backoff.
type OverloadError struct {
	Tenant string
	Queued int // requests already waiting when this one arrived
	Limit  int // the tenant's MaxQueue
	InRun  int // requests executing
	MaxRun int // the tenant's MaxConcurrent
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: tenant %q over capacity (%d running of %d, %d queued of %d)",
		e.Tenant, e.InRun, e.MaxRun, e.Queued, e.Limit)
}

// TenantStats counts one tenant's admission outcomes. Mirrored by
// TenantStatsSnapshot (reflection-locked in tests).
type TenantStats struct {
	// Admitted counts requests that obtained an execution slot.
	Admitted atomic.Int64
	// Rejected counts requests refused with an OverloadError.
	Rejected atomic.Int64
	// Queued counts admitted requests that had to wait for a slot first.
	Queued atomic.Int64
	// Waiting gauges requests currently waiting for a slot.
	Waiting atomic.Int64
	// InFlight gauges requests currently executing.
	InFlight atomic.Int64
}

// TenantStatsSnapshot is the plain-int64 copy of TenantStats.
type TenantStatsSnapshot struct {
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	Queued   int64 `json:"queued"`
	Waiting  int64 `json:"waiting"`
	InFlight int64 `json:"in_flight"`
}

// Snapshot copies the counters.
func (s *TenantStats) Snapshot() TenantStatsSnapshot {
	return TenantStatsSnapshot{
		Admitted: s.Admitted.Load(),
		Rejected: s.Rejected.Load(),
		Queued:   s.Queued.Load(),
		Waiting:  s.Waiting.Load(),
		InFlight: s.InFlight.Load(),
	}
}

// tenantGate is one tenant's admission state: a slot semaphore plus a
// bounded count of waiters.
type tenantGate struct {
	cfg     TenantConfig
	sem     chan struct{}
	waiting atomic.Int64
	stats   TenantStats
}

func newTenantGate(cfg TenantConfig) *tenantGate {
	cfg = cfg.withDefaults()
	return &tenantGate{cfg: cfg, sem: make(chan struct{}, cfg.MaxConcurrent)}
}

// acquire claims an execution slot, waiting in the bounded queue if all
// slots are busy. It returns a release func on admission, or an
// OverloadError when the queue is full too.
func (g *tenantGate) acquire(tenant string) (func(), error) {
	release := func() {
		g.stats.InFlight.Add(-1)
		<-g.sem
	}
	select {
	case g.sem <- struct{}{}:
		g.stats.Admitted.Add(1)
		g.stats.InFlight.Add(1)
		return release, nil
	default:
	}
	// All slots busy: join the bounded wait queue or reject.
	if n := g.waiting.Add(1); int(n) > g.cfg.MaxQueue {
		g.waiting.Add(-1)
		g.stats.Rejected.Add(1)
		return nil, &OverloadError{
			Tenant: tenant,
			Queued: g.cfg.MaxQueue, Limit: g.cfg.MaxQueue,
			InRun: g.cfg.MaxConcurrent, MaxRun: g.cfg.MaxConcurrent,
		}
	}
	g.stats.Queued.Add(1)
	g.stats.Waiting.Add(1)
	g.sem <- struct{}{}
	g.stats.Waiting.Add(-1)
	g.waiting.Add(-1)
	g.stats.Admitted.Add(1)
	g.stats.InFlight.Add(1)
	return release, nil
}

// admission maps tenants to their gates, creating default-class gates for
// tenants not explicitly configured.
type admission struct {
	mu       sync.Mutex
	gates    map[string]*tenantGate
	configs  map[string]TenantConfig
	fallback TenantConfig
}

func newAdmission(configs map[string]TenantConfig, fallback TenantConfig) *admission {
	return &admission{
		gates:    make(map[string]*tenantGate),
		configs:  configs,
		fallback: fallback,
	}
}

func (a *admission) gate(tenant string) *tenantGate {
	a.mu.Lock()
	defer a.mu.Unlock()
	if g, ok := a.gates[tenant]; ok {
		return g
	}
	cfg, ok := a.configs[tenant]
	if !ok {
		cfg = a.fallback
	}
	g := newTenantGate(cfg)
	a.gates[tenant] = g
	return g
}

// snapshot copies every tenant's admission counters.
func (a *admission) snapshot() map[string]TenantStatsSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]TenantStatsSnapshot, len(a.gates))
	for name, g := range a.gates {
		out[name] = g.stats.Snapshot()
	}
	return out
}
