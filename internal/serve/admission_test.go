package serve

// Admission-control tests: a saturated heavy tenant is confined to its
// own concurrency slots and queue, so (a) its overflow is rejected with a
// typed 429-style error and (b) an interactive tenant's latency stays
// under a documented bound while the heavy tenant floods the service.

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestOverloadReturnsTypedRejection(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1,
		Tenants: map[string]TenantConfig{
			"heavy": {MaxConcurrent: 1, MaxQueue: 1},
		}})
	// Saturate: many concurrent slow-ish fragments from one tenant with
	// 1 slot + 1 queue place. At least one must be rejected, and every
	// rejection must be a typed OverloadError.
	const n = 8
	var wg sync.WaitGroup
	var rejected, admitted atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.EvalFragment(FragmentRequest{
				Tenant: "heavy", Lang: "python",
				Code: "s = 0\nfor i in range(3000):\n    s = s + i", Expr: "s", Want: "int",
			})
			if err == nil {
				admitted.Add(1)
				return
			}
			var over *OverloadError
			if !errors.As(err, &over) {
				t.Errorf("saturation error = %v, want *OverloadError", err)
				return
			}
			rejected.Add(1)
		}()
	}
	wg.Wait()
	if rejected.Load() == 0 {
		t.Fatal("no rejections at 8x oversubscription of a 1-slot/1-queue tenant")
	}
	if admitted.Load() == 0 {
		t.Fatal("every request rejected: admission is dropping in-capacity work")
	}
	snap := s.Stats().Tenants["heavy"]
	if snap.Rejected != rejected.Load() || snap.Admitted != admitted.Load() {
		t.Fatalf("tenant stats %+v disagree with observed admitted=%d rejected=%d",
			snap, admitted.Load(), rejected.Load())
	}
}

// interactiveP50Bound is the documented admission bound: with a heavy
// tenant saturating its own slots, an interactive tenant's median
// fragment latency must stay under this. The heavy tenant's fragments
// take ~1ms; its concurrency cap (2) bounds how much of the 2-worker
// world it can hold at once, so the interactive tenant waits at most a
// couple of heavy task durations — 250ms is orders of magnitude of
// headroom for CI noise, while a missing admission cap would let the
// heavy tenant queue thousands of tasks ahead and blow far past it.
const interactiveP50Bound = 250 * time.Millisecond

func TestSaturatedTenantCannotStarveInteractive(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2,
		Tenants: map[string]TenantConfig{
			"heavy":       {Priority: 0, MaxConcurrent: 2, MaxQueue: 4},
			"interactive": {Priority: 10, MaxConcurrent: 2, MaxQueue: 4},
		}})

	stopFlood := make(chan struct{})
	var flood sync.WaitGroup
	for g := 0; g < 6; g++ {
		flood.Add(1)
		go func() {
			defer flood.Done()
			for {
				select {
				case <-stopFlood:
					return
				default:
				}
				// Rejections are expected (that's the point); only keep
				// the pressure up.
				s.EvalFragment(FragmentRequest{
					Tenant: "heavy", Lang: "python",
					Code: "s = 0\nfor i in range(2000):\n    s = s + i", Expr: "s", Want: "int",
				})
			}
		}()
	}

	// Let the flood saturate, then measure the interactive tenant.
	time.Sleep(50 * time.Millisecond)
	const probes = 20
	lat := make([]time.Duration, 0, probes)
	for i := 0; i < probes; i++ {
		start := time.Now()
		_, err := s.EvalFragment(FragmentRequest{
			Tenant: "interactive", Lang: "python", Expr: "1 + 1", Want: "int",
		})
		if err != nil {
			t.Fatalf("interactive probe %d: %v", i, err)
		}
		lat = append(lat, time.Since(start))
	}
	close(stopFlood)
	flood.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50, p99 := lat[len(lat)/2], lat[len(lat)-1]
	t.Logf("interactive under heavy saturation: p50=%v max=%v", p50, p99)
	if p50 > interactiveP50Bound {
		t.Fatalf("interactive p50 %v exceeds the admission bound %v", p50, interactiveP50Bound)
	}
	heavy := s.Stats().Tenants["heavy"]
	if heavy.Rejected == 0 {
		t.Fatal("heavy tenant was never rejected: the flood did not saturate admission")
	}
}
