package serve

// Warm-vs-cold serving benchmarks. The point of swiftd is amortization:
// a repeat fragment on the resident warm world (pooled interpreter,
// parse-cached fragment, live ADLB ranks) against the cold alternative
// of standing up a whole per-request world the way batch core.Run does.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// timeOp returns the mean wall time of reps sequential runs of op.
func timeOp(reps int, op func()) time.Duration {
	start := time.Now()
	for i := 0; i < reps; i++ {
		op()
	}
	return time.Since(start) / time.Duration(reps)
}

// coldFragmentProgram is the batch-world equivalent of one warm
// fragment call: a full Swift program whose body is the same python
// fragment, run in a fresh world each time.
const coldFragmentProgram = `printf("%s", python("x = 6 * 7", "x"));`

func coldFragment(tb testing.TB) {
	res, err := core.Run(coldFragmentProgram, core.Config{
		Engines: 1, Workers: 2, Servers: 1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "42") {
		tb.Fatalf("cold fragment stdout = %q", res.Stdout)
	}
}

func warmFragment(tb testing.TB, s *Server) {
	res, err := s.EvalFragment(FragmentRequest{
		Tenant: "bench", Lang: "python", Code: "x = 6 * 7", Expr: "x", Want: "int",
	})
	if err != nil {
		tb.Fatal(err)
	}
	if res.Value.Int != 42 {
		tb.Fatalf("warm fragment = %+v", res.Value)
	}
}

// BenchmarkServeConcurrentClients measures repeat-fragment latency on
// the two paths: "warm" drives concurrent clients at one resident
// server; "cold" pays a fresh world per request. The warm/cold ratio is
// the service's reason to exist; TestWarmServeSpeedupOverColdWorlds
// enforces its floor.
func BenchmarkServeConcurrentClients(b *testing.B) {
	b.Run("warm", func(b *testing.B) {
		s := newTestServer(b, Config{Workers: 4,
			Tenants: map[string]TenantConfig{
				"bench": {MaxConcurrent: 16, MaxQueue: 64},
			}})
		warmFragment(b, s) // prime pools and parse caches
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				warmFragment(b, s)
			}
		})
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coldFragment(b)
		}
	})
}

// TestWarmServeSpeedupOverColdWorlds enforces the acceptance floor: a
// repeat fragment against the warm service must be at least 5x faster
// than standing up a cold world for it. In practice the gap is orders
// of magnitude; 5x leaves room for CI noise while still failing if the
// serve path ever degenerates into per-request world setup.
func TestWarmServeSpeedupOverColdWorlds(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	s := newTestServer(t, Config{Workers: 2})
	warmFragment(t, s) // prime

	const warmReps, coldReps = 40, 6
	warm := timeOp(warmReps, func() { warmFragment(t, s) })
	cold := timeOp(coldReps, func() { coldFragment(t) })
	ratio := float64(cold) / float64(warm)
	t.Logf("repeat fragment: warm %v/op, cold %v/op, speedup %.1fx", warm, cold, ratio)
	if ratio < 5 {
		t.Fatalf("warm path only %.1fx faster than cold worlds, want >= 5x", ratio)
	}
}
