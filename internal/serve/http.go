package serve

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler returns the service's HTTP API:
//
//	POST /api/v1/frag    one typed fragment call  (FragmentRequest -> FragmentResult)
//	POST /api/v1/run     one program submission   (ProgramRequest -> ProgramResult)
//	GET  /statsz         multi-layer counter snapshot
//	GET  /healthz        liveness
//
// Overload maps to 429 with Retry-After, user evaluation and compile
// errors to 422, timeouts to 504.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/frag", s.handleFrag)
	mux.HandleFunc("/api/v1/run", s.handleRun)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.stats.HTTPRequests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// httpError is the JSON error body of every non-2xx response.
type httpError struct {
	Error     string `json:"error"`
	Retriable bool   `json:"retriable"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps service errors onto HTTP statuses with a typed body.
func writeErr(w http.ResponseWriter, err error) {
	var over *OverloadError
	if errors.As(err, &over) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, httpError{Error: err.Error(), Retriable: true})
		return
	}
	var to *TimeoutError
	if errors.As(err, &to) {
		writeJSON(w, http.StatusGatewayTimeout, httpError{Error: err.Error(), Retriable: true})
		return
	}
	var ev *EvalError
	if errors.As(err, &ev) {
		writeJSON(w, http.StatusUnprocessableEntity, httpError{Error: err.Error(), Retriable: ev.Retriable})
		return
	}
	writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
}

func (s *Server) handleFrag(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req FragmentRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad request body: " + err.Error()})
		return
	}
	res, err := s.EvalFragment(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req ProgramRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad request body: " + err.Error()})
		return
	}
	res, err := s.RunProgram(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Stdout    string `json:"stdout"`
		CacheHit  bool   `json:"cache_hit"`
		ElapsedMS int64  `json:"elapsed_ms"`
	}{res.Stdout, res.CacheHit, res.Elapsed.Milliseconds()})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
