package serve

// HTTP surface tests: the JSON API over the same server the Go-level
// tests drive, including the typed 429 mapping and the /statsz payload.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPFragmentAndStatsz(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/api/v1/frag", FragmentRequest{
		Tenant: "acme", Lang: "python", Code: "x = 21 * 2", Expr: "x", Want: "int",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frag status = %d", resp.StatusCode)
	}
	var fr FragmentResult
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fr.Value.Kind != "int" || fr.Value.Int != 42 {
		t.Fatalf("frag value = %+v", fr.Value)
	}

	resp = postJSON(t, ts.URL+"/api/v1/run", ProgramRequest{
		Tenant: "acme", Source: `printf("ran %i", 6*7);`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d", resp.StatusCode)
	}
	var rr struct {
		Stdout   string `json:"stdout"`
		CacheHit bool   `json:"cache_hit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(rr.Stdout, "ran 42") {
		t.Fatalf("run stdout = %q", rr.Stdout)
	}

	statsResp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(statsResp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Serve.Fragments != 1 || snap.Serve.ProgramRuns != 1 {
		t.Fatalf("statsz serve counters = %+v", snap.Serve)
	}
	if snap.Serve.HTTPRequests < 3 {
		t.Fatalf("http request counter = %d", snap.Serve.HTTPRequests)
	}
	if snap.Tenants["acme"].Admitted != 2 {
		t.Fatalf("statsz tenant counters = %+v", snap.Tenants["acme"])
	}
}

func TestHTTPEvalErrorMaps422(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/api/v1/frag", FragmentRequest{
		Tenant: "acme", Lang: "python", Expr: "nope", Want: "string",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("eval error status = %d, want 422", resp.StatusCode)
	}
	var he httpError
	if err := json.NewDecoder(resp.Body).Decode(&he); err != nil {
		t.Fatal(err)
	}
	if he.Error == "" {
		t.Fatal("422 body carries no error message")
	}
}

func TestHTTPOverloadMaps429(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1,
		Tenants: map[string]TenantConfig{
			// No queueing at all: the second concurrent request is a 429.
			"tiny": {MaxConcurrent: 1, MaxQueue: -1},
		}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	gate := s.adm.gate("tiny")
	release, err := gate.acquire("tiny")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	resp := postJSON(t, ts.URL+"/api/v1/frag", FragmentRequest{
		Tenant: "tiny", Lang: "python", Expr: "1", Want: "int",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var he httpError
	if err := json.NewDecoder(resp.Body).Decode(&he); err != nil {
		t.Fatal(err)
	}
	if !he.Retriable {
		t.Fatal("429 not marked retriable")
	}
}
