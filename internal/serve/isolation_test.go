package serve

// Tenant-isolation chaos tests: tenant A defines globals and blows up its
// interpreter mid-request while tenant B runs concurrently on the same
// warm world — B must never observe A's state, neither concurrently nor
// in subsequent requests, in any engine. PoolEngines is pinned to 1 so
// every tenant switch takes the reuse-and-reset path (the risky one)
// instead of getting a naturally fresh engine.

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/lang"
	"repro/internal/lang/conformance"
)

// fragOf maps a conformance fragment onto a serve request for language.
func fragOf(t *testing.T, language string, f conformance.Frag) (code, expr string) {
	t.Helper()
	reg, ok := lang.Lookup(language)
	if !ok {
		t.Fatalf("language %q not registered", language)
	}
	c := f.Call(reg, nil, lang.KindString)
	return c.Code, c.Expr
}

func TestTenantIsolationAcrossAllEngines(t *testing.T) {
	// One worker, one pooled engine: every request lands on the same pool
	// and every tenant switch takes the reuse-and-reset path.
	s := newTestServer(t, Config{Workers: 1, PoolEngines: 1})
	for language, d := range conformance.Dialects {
		if d.Exempt {
			continue
		}
		t.Run(language, func(t *testing.T) {
			setCode, setExpr := fragOf(t, language, d.StateSet)
			readCode, readExpr := fragOf(t, language, d.StateRead)

			// Tenant A binds the global g = 41.
			if _, err := s.EvalFragment(FragmentRequest{
				Tenant: "tenant-a", Lang: language, Code: setCode, Expr: setExpr,
			}); err != nil {
				t.Fatalf("tenant A state set: %v", err)
			}
			// Tenant A sees its own state (sanity: the pool retains within
			// a tenant)...
			resA, err := s.EvalFragment(FragmentRequest{
				Tenant: "tenant-a", Lang: language, Code: readCode, Expr: readExpr,
			})
			if err != nil {
				t.Fatalf("tenant A read own state: %v", err)
			}
			got := resA.Value.Str
			if resA.Value.Kind == "int" {
				got = fmt.Sprint(resA.Value.Int)
			}
			if got != "41" {
				t.Fatalf("tenant A read own state: %+v", resA.Value)
			}
			// ...but tenant B reading the same global must find it undefined,
			// even though (PoolEngines=1) it reuses A's interpreter.
			resB, err := s.EvalFragment(FragmentRequest{
				Tenant: "tenant-b", Lang: language, Code: readCode, Expr: readExpr,
			})
			if err == nil {
				t.Fatalf("tenant B observed tenant A's state: %+v", resB.Value)
			}
			var ee *EvalError
			if !errors.As(err, &ee) {
				t.Fatalf("isolation surfaced as %v, want *EvalError (undefined global)", err)
			}
		})
	}
}

func TestTenantIsolationUnderConcurrency(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, PoolEngines: 1,
		Tenants: map[string]TenantConfig{
			"writer": {MaxConcurrent: 4, MaxQueue: 64},
			"reader": {MaxConcurrent: 4, MaxQueue: 64},
		}})
	var wg sync.WaitGroup
	const rounds = 12
	// Tenant "writer" hammers globals in python while tenant "reader"
	// concurrently probes for them. A reader that ever sees the value is
	// an isolation breach; an error (undefined) is the only correct
	// outcome.
	wg.Add(2)
	errs := make(chan error, rounds)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := s.EvalFragment(FragmentRequest{
				Tenant: "writer", Lang: "python",
				Code: fmt.Sprintf("leak_probe = %d", i),
			}); err != nil {
				errs <- fmt.Errorf("writer round %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			res, err := s.EvalFragment(FragmentRequest{
				Tenant: "reader", Lang: "python",
				Expr: "leak_probe", Want: "string",
			})
			if err == nil {
				errs <- fmt.Errorf("reader round %d observed writer state: %+v", i, res.Value)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// chaosEngine panics whenever asked to, standing in for an interpreter
// that corrupts itself mid-request.
type chaosEngine struct{ evals int64 }

func (e *chaosEngine) Name() string { return "chaoslang" }
func (e *chaosEngine) Eval(c lang.Call) (lang.Value, error) {
	e.evals++
	if c.Code == "explode" {
		panic("chaos: interpreter corrupted mid-request")
	}
	return lang.Str("calm"), nil
}
func (e *chaosEngine) Reset()       {}
func (e *chaosEngine) Evals() int64 { return e.evals }

func TestTenantPanicIsContainedPerRequest(t *testing.T) {
	lang.Register(lang.Registration{
		Name: "chaoslang", Sig: lang.Signature{Fixed: 1},
		New: func(h lang.Host) lang.Engine { return &chaosEngine{} },
	})
	defer lang.Unregister("chaoslang")

	s := newTestServer(t, Config{Workers: 1, PoolEngines: 2})
	// Tenant A's interpreter panics mid-request: A gets a retriable typed
	// error, not a dead service.
	_, err := s.EvalFragment(FragmentRequest{Tenant: "tenant-a", Lang: "chaoslang", Code: "explode"})
	var ee *EvalError
	if !errors.As(err, &ee) || !ee.Retriable {
		t.Fatalf("panic surfaced as %v, want retriable *EvalError", err)
	}
	// Tenant B's concurrent-world request on the same worker works, as
	// does A's own next request.
	for _, tenant := range []string{"tenant-b", "tenant-a"} {
		res, err := s.EvalFragment(FragmentRequest{Tenant: tenant, Lang: "chaoslang", Code: "status"})
		if err != nil || res.Value.Str != "calm" {
			t.Fatalf("%s after panic: %+v, %v", tenant, res.Value, err)
		}
	}
	// Python on the same worker is also unaffected.
	res, err := s.EvalFragment(FragmentRequest{
		Tenant: "tenant-b", Lang: "python", Expr: "2 ** 5", Want: "int",
	})
	if err != nil || res.Value.Int != 32 {
		t.Fatalf("python after chaos: %+v, %v", res.Value, err)
	}
}
