// Package serve is the long-lived multi-tenant interlanguage service:
// swiftd. Where internal/core runs one Swift/T program per world and
// tears everything down, serve keeps one warm ADLB world resident and
// accepts work over an API — whole Swift programs and typed single
// fragment calls — from many tenants at once.
//
// # Serving model
//
// One warm world, three client roles (then the ADLB server ranks):
//
//   - rank 0, the gateway: a pinned client (adlb.Client.Pin) that never
//     parks. API handlers submit fragment tasks through it (one mutex:
//     an ADLB client carries one outstanding RPC).
//   - rank 1, the collector: a pinned client parked in Get over the
//     response work type. Workers target their results at it; it routes
//     each to the waiting request by id.
//   - ranks 2..2+Workers-1, the fragment workers: ordinary leased-Get
//     clients. Each owns a lang.Pool of per-tenant engines, so repeat
//     fragments hit warm interpreters (and their byte-budgeted parse
//     caches) while tenant switches reset state at the boundary.
//
// The pins hold the world open: an idle serving world is exactly the
// all-parked state Safra termination would otherwise collect. Shutdown
// releases them in order — the gateway sends the collector a sentinel and
// Leaves, the collector Leaves on the sentinel, and ordinary quiescence
// then drains the parked workers.
//
// Program submissions do not enter the warm world's queues: they run
// through the re-entrant core.RunCompiled in ephemeral worlds, at the
// tenant's TaskPriority, with compiled programs cached in a byte-budgeted
// LRU keyed by source hash (repeat submissions share one parse).
//
// Admission control is per tenant: a concurrency bound, a wait-queue
// bound behind it, and a priority that both orders the tenant's fragments
// in the ADLB queues and becomes the base TaskPriority of its program
// runs. Arrivals past both bounds get a typed OverloadError (HTTP 429) —
// a saturated tenant backs up its own queue, not the service.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adlb"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/memo"
	"repro/internal/stc"
)

// Work types of the warm fragment world.
const (
	typeTask = 0 // gateway -> worker: one fragment evaluation
	typeResp = 1 // worker -> collector: its result
)

// Config shapes the service.
type Config struct {
	// Workers is the number of fragment worker ranks in the warm world
	// (0 = default 2).
	Workers int
	// Servers is the number of ADLB server ranks in the warm world
	// (0 = default 1).
	Servers int
	// PoolEngines bounds each worker's resident engine pool
	// (0 = lang.DefaultPoolEngines).
	PoolEngines int
	// ProgramCacheBytes budgets the compiled-program cache
	// (0 = default 8 MiB).
	ProgramCacheBytes int64
	// RequestTimeout bounds one fragment request end to end
	// (0 = default 30s).
	RequestTimeout time.Duration
	// Tenants maps tenant names to their admission classes; tenants not
	// listed get DefaultTenant.
	Tenants map[string]TenantConfig
	// DefaultTenant is the admission class of unlisted tenants (zero
	// value = the TenantConfig defaults).
	DefaultTenant TenantConfig
	// ProgramEngines/ProgramWorkers/ProgramServers shape the ephemeral
	// worlds of program submissions (0 = 1/2/1).
	ProgramEngines int
	ProgramWorkers int
	ProgramServers int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Servers <= 0 {
		c.Servers = 1
	}
	if c.ProgramCacheBytes <= 0 {
		c.ProgramCacheBytes = 8 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.ProgramEngines <= 0 {
		c.ProgramEngines = 1
	}
	if c.ProgramWorkers <= 0 {
		c.ProgramWorkers = 2
	}
	if c.ProgramServers <= 0 {
		c.ProgramServers = 1
	}
	return c
}

// Server is one resident swiftd instance.
type Server struct {
	cfg Config

	stats     ServeStats
	adlbStats *adlb.Stats
	poolStats *lang.PoolStats
	adm       *admission

	progMu   sync.Mutex
	programs *memo.Budget[*stc.Output]

	gwMu sync.Mutex
	gw   *adlb.Client

	nextReq atomic.Int64
	pendMu  sync.Mutex
	pending map[int64]chan fragResp

	stop      chan struct{}
	closeOnce sync.Once
	worldErr  chan error
	gwReady   chan struct{}
}

// New starts the warm world and returns once the gateway is accepting
// work. Close shuts it down.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		adlbStats: &adlb.Stats{},
		poolStats: &lang.PoolStats{},
		adm:       newAdmission(cfg.Tenants, cfg.DefaultTenant),
		programs: memo.NewBudget[*stc.Output](cfg.ProgramCacheBytes,
			func(key string, out *stc.Output) int64 {
				// Source-scaled cost: compiled Tcl plus the seed fragment,
				// plus fixed overhead for the parsed script and bookkeeping.
				return int64(len(out.Program)+len(out.Main)) + 256
			}),
		pending:  make(map[int64]chan fragResp),
		stop:     make(chan struct{}),
		worldErr: make(chan error, 1),
		gwReady:  make(chan struct{}),
	}
	go func() { s.worldErr <- s.runWorld() }()
	select {
	case <-s.gwReady:
		return s, nil
	case err := <-s.worldErr:
		if err == nil {
			err = fmt.Errorf("serve: warm world exited before the gateway came up")
		}
		return nil, err
	}
}

// Close shuts the service down: no new work, pins released, warm world
// drained. It returns the world's exit error.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { close(s.stop) })
	return <-s.worldErr
}

// Stats returns a full multi-layer counter snapshot (the /statsz payload).
func (s *Server) Stats() Snapshot {
	s.progMu.Lock()
	progStats := s.programs.Stats()
	s.progMu.Unlock()
	return Snapshot{
		Serve:        s.stats.Snapshot(),
		ProgramCache: progStats,
		Pool:         s.poolStats.Snapshot(),
		Tenants:      s.adm.snapshot(),
		ADLB:         s.adlbStats.Snapshot(),
	}
}

// FragmentRequest is one typed fragment call.
type FragmentRequest struct {
	Tenant  string      `json:"tenant"`
	Session string      `json:"session,omitempty"`
	Lang    string      `json:"lang"`
	Code    string      `json:"code"`
	Expr    string      `json:"expr,omitempty"`
	Args    []WireValue `json:"args,omitempty"`
	Want    string      `json:"want,omitempty"`
	Reinit  bool        `json:"reinit,omitempty"`
}

// FragmentResult is a completed fragment call: the typed value plus
// whatever the interpreter printed while evaluating it.
type FragmentResult struct {
	Value  WireValue `json:"value"`
	Output string    `json:"output,omitempty"`
}

// EvalError is a fragment evaluation failure reported by the engine (as
// opposed to a rejection or timeout): the user's code failed.
type EvalError struct {
	Msg       string
	Retriable bool
}

func (e *EvalError) Error() string { return e.Msg }

// TimeoutError is a fragment request abandoned at the deadline. The task
// may still complete in the warm world; its late response is dropped.
type TimeoutError struct {
	After time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("serve: fragment request timed out after %v", e.After)
}

// EvalFragment submits one typed fragment call to the warm world and
// waits for its result. Unknown tenants run under the default admission
// class. Session-sticky: calls with the same (tenant, session) land on
// the same worker rank, so interpreter state set by one call is visible
// to the next (within the pool's capacity and isolation rules).
func (s *Server) EvalFragment(req FragmentRequest) (FragmentResult, error) {
	if _, ok := lang.Lookup(req.Lang); !ok {
		return FragmentResult{}, fmt.Errorf("serve: unknown language %q", req.Lang)
	}
	if _, err := wantOf(req.Want); err != nil {
		return FragmentResult{}, err
	}
	if req.Tenant == "" {
		return FragmentResult{}, fmt.Errorf("serve: request without tenant")
	}
	gate := s.adm.gate(req.Tenant)
	release, err := gate.acquire(req.Tenant)
	if err != nil {
		return FragmentResult{}, err
	}
	defer release()

	s.stats.Fragments.Add(1)
	id := s.nextReq.Add(1)
	ch := make(chan fragResp, 1)
	s.pendMu.Lock()
	s.pending[id] = ch
	s.pendMu.Unlock()
	defer func() {
		s.pendMu.Lock()
		delete(s.pending, id)
		s.pendMu.Unlock()
	}()

	task := fragTask{
		ReqID:  id,
		Tenant: req.Tenant,
		Lang:   req.Lang,
		Code:   req.Code,
		Expr:   req.Expr,
		Args:   req.Args,
		Want:   req.Want,
		Reinit: req.Reinit,
	}
	payload, err := encodeJSON(task)
	if err != nil {
		return FragmentResult{}, err
	}
	target := adlb.AnyRank
	if req.Session != "" {
		target = s.sessionRank(req.Tenant, req.Session)
	}
	s.gwMu.Lock()
	err = s.gw.Put(typeTask, gate.cfg.Priority, target, payload)
	s.gwMu.Unlock()
	if err != nil {
		return FragmentResult{}, fmt.Errorf("serve: submit: %w", err)
	}

	// A stopped Timer, not time.After: this is the per-fragment hot path,
	// and time.After would pin a timer (and its channel) until
	// RequestTimeout elapses even after the fragment completes — under
	// sustained load that is thousands of live timers for requests that
	// finished in microseconds.
	timer := time.NewTimer(s.cfg.RequestTimeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.Err != "" {
			s.stats.FragmentErrors.Add(1)
			return FragmentResult{}, &EvalError{Msg: r.Err, Retriable: r.Retriable}
		}
		return FragmentResult{Value: r.Value, Output: r.Output}, nil
	case <-timer.C:
		s.stats.FragmentTimeouts.Add(1)
		return FragmentResult{}, &TimeoutError{After: s.cfg.RequestTimeout}
	case <-s.stop:
		return FragmentResult{}, fmt.Errorf("serve: shutting down")
	}
}

// sessionRank maps a (tenant, session) to a fixed worker rank, making
// sessions sticky: the session's interpreter state lives in that worker's
// pool.
func (s *Server) sessionRank(tenant, session string) int {
	h := fnv.New32a()
	h.Write([]byte(tenant))
	h.Write([]byte{0})
	h.Write([]byte(session))
	return workerRank0 + int(h.Sum32())%s.cfg.Workers
}

// ProgramRequest is one whole-program submission.
type ProgramRequest struct {
	Tenant string `json:"tenant"`
	Source string `json:"source"`
}

// ProgramResult is a completed program run.
type ProgramResult struct {
	Stdout   string        `json:"stdout"`
	CacheHit bool          `json:"cache_hit"`
	Elapsed  time.Duration `json:"elapsed"`
}

// RunProgram compiles (or fetches from the byte-budgeted cache) and runs
// one Swift program under the tenant's admission class, in an ephemeral
// world at the tenant's TaskPriority.
func (s *Server) RunProgram(req ProgramRequest) (ProgramResult, error) {
	if req.Tenant == "" {
		return ProgramResult{}, fmt.Errorf("serve: request without tenant")
	}
	gate := s.adm.gate(req.Tenant)
	release, err := gate.acquire(req.Tenant)
	if err != nil {
		return ProgramResult{}, err
	}
	defer release()
	select {
	case <-s.stop:
		return ProgramResult{}, fmt.Errorf("serve: shutting down")
	default:
	}

	sum := sha256.Sum256([]byte(req.Source))
	key := hex.EncodeToString(sum[:])
	s.progMu.Lock()
	out, hit := s.programs.Get(key)
	if !hit {
		var cerr error
		out, cerr = stc.Compile(req.Source)
		if cerr != nil {
			s.progMu.Unlock()
			return ProgramResult{}, fmt.Errorf("serve: compile: %w", cerr)
		}
		s.programs.Put(key, out)
	}
	s.progMu.Unlock()

	s.stats.ProgramRuns.Add(1)
	res, err := core.RunCompiled(out, core.Config{
		Engines:      s.cfg.ProgramEngines,
		Workers:      s.cfg.ProgramWorkers,
		Servers:      s.cfg.ProgramServers,
		TaskPriority: gate.cfg.Priority,
	})
	if err != nil {
		return ProgramResult{}, err
	}
	return ProgramResult{Stdout: res.Stdout, CacheHit: hit, Elapsed: res.Elapsed}, nil
}
