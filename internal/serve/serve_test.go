package serve

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 20 * time.Second
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

func TestFragmentRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{})
	res, err := s.EvalFragment(FragmentRequest{
		Tenant: "acme", Lang: "python",
		Code: "x = 6 * 7", Expr: "x", Want: "int",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.Kind != "int" || res.Value.Int != 42 {
		t.Fatalf("value = %+v, want int 42", res.Value)
	}
}

func TestFragmentTypedArgsAndBlobResult(t *testing.T) {
	s := newTestServer(t, Config{})
	arg, err := func() (WireValue, error) {
		return WireValue{Kind: "int", Int: 5}, nil
	}()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.EvalFragment(FragmentRequest{
		Tenant: "acme", Lang: "python",
		Code: "y = argv1 * 3", Expr: "y", Want: "int",
		Args: []WireValue{arg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.Int != 15 {
		t.Fatalf("argv-bound result = %+v, want 15", res.Value)
	}
}

func TestFragmentOutputCapture(t *testing.T) {
	s := newTestServer(t, Config{})
	res, err := s.EvalFragment(FragmentRequest{
		Tenant: "acme", Lang: "python",
		Code: "print('hello from tenant')",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Output, "hello from tenant") {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestSessionStateIsSticky(t *testing.T) {
	s := newTestServer(t, Config{Workers: 3})
	if _, err := s.EvalFragment(FragmentRequest{
		Tenant: "acme", Session: "sess-1", Lang: "python",
		Code: "counter = 10",
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		res, err := s.EvalFragment(FragmentRequest{
			Tenant: "acme", Session: "sess-1", Lang: "python",
			Code: "counter = counter + 1", Expr: "counter", Want: "int",
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Value.Int != int64(10+i) {
			t.Fatalf("session state after %d increments = %d", i, res.Value.Int)
		}
	}
}

func TestFragmentUserErrorIsTyped(t *testing.T) {
	s := newTestServer(t, Config{})
	_, err := s.EvalFragment(FragmentRequest{
		Tenant: "acme", Lang: "python",
		Expr: "undefined_name", Want: "string",
	})
	var ee *EvalError
	if !errors.As(err, &ee) {
		t.Fatalf("error = %v, want *EvalError", err)
	}
	// The service must survive the error: the next call works.
	if _, err := s.EvalFragment(FragmentRequest{
		Tenant: "acme", Lang: "python", Expr: "1 + 1", Want: "int",
	}); err != nil {
		t.Fatalf("service dead after user error: %v", err)
	}
}

func TestUnknownLanguageRejectedAtGateway(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, err := s.EvalFragment(FragmentRequest{Tenant: "acme", Lang: "cobol"}); err == nil {
		t.Fatal("unknown language accepted")
	}
}

func TestProgramRunAndCache(t *testing.T) {
	s := newTestServer(t, Config{})
	req := ProgramRequest{Tenant: "acme", Source: `printf("val %s", python("v = 6*7", "v"));`}
	r1, err := s.RunProgram(req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r1.Stdout, "val 42") {
		t.Fatalf("stdout = %q", r1.Stdout)
	}
	if r1.CacheHit {
		t.Fatal("first submission reported a cache hit")
	}
	r2, err := s.RunProgram(req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("repeat submission missed the program cache")
	}
	if !strings.Contains(r2.Stdout, "val 42") {
		t.Fatalf("cached-run stdout = %q", r2.Stdout)
	}
}

func TestProgramCompileErrorNotCached(t *testing.T) {
	s := newTestServer(t, Config{})
	bad := ProgramRequest{Tenant: "acme", Source: `this is not swift`}
	if _, err := s.RunProgram(bad); err == nil {
		t.Fatal("bad program compiled")
	}
	if _, err := s.RunProgram(bad); err == nil {
		t.Fatal("bad program compiled on retry")
	}
	snap := s.Stats()
	if snap.ProgramCache.Entries != 0 {
		t.Fatalf("compile errors entered the cache: %d entries", snap.ProgramCache.Entries)
	}
	if snap.ProgramCache.Misses < 2 {
		t.Fatalf("misses = %d, want both failed lookups counted", snap.ProgramCache.Misses)
	}
}

func TestStatsSnapshotCoversLayers(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, err := s.EvalFragment(FragmentRequest{
		Tenant: "acme", Lang: "python", Code: "z = 1", Expr: "z", Want: "int",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunProgram(ProgramRequest{Tenant: "acme", Source: `printf("x");`}); err != nil {
		t.Fatal(err)
	}
	snap := s.Stats()
	if snap.Serve.Fragments != 1 || snap.Serve.ProgramRuns != 1 {
		t.Fatalf("serve counters = %+v", snap.Serve)
	}
	if snap.Pool.Evals != 1 || snap.Pool.Creates != 1 {
		t.Fatalf("pool counters = %+v", snap.Pool)
	}
	if snap.Tenants["acme"].Admitted != 2 {
		t.Fatalf("tenant counters = %+v", snap.Tenants["acme"])
	}
	if snap.ADLB.PutsLocal+snap.ADLB.PutsForwarded == 0 {
		t.Fatal("warm world's adlb counters empty")
	}
	if snap.ProgramCache.Entries != 1 {
		t.Fatalf("program cache entries = %d", snap.ProgramCache.Entries)
	}
}

func TestGracefulShutdownDrainsWorld(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EvalFragment(FragmentRequest{
		Tenant: "acme", Lang: "tcl", Code: "expr {2 + 2}", Want: "string",
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Close hung: warm world did not drain")
	}
}
