package serve

import (
	"sync/atomic"

	"repro/internal/adlb"
	"repro/internal/lang"
	"repro/internal/memo"
)

// ServeStats counts service-level events. Mirrored by ServeStatsSnapshot
// (reflection-locked in tests).
type ServeStats struct {
	// HTTPRequests counts requests through the HTTP handler.
	HTTPRequests atomic.Int64
	// ProgramRuns counts program submissions executed (cache hits and
	// misses both; compile failures excluded).
	ProgramRuns atomic.Int64
	// Fragments counts fragment evaluations submitted to the warm world.
	Fragments atomic.Int64
	// FragmentErrors counts fragment evaluations that returned a typed
	// error (user errors; not rejections or timeouts).
	FragmentErrors atomic.Int64
	// FragmentTimeouts counts fragment requests abandoned at the request
	// deadline.
	FragmentTimeouts atomic.Int64
	// LateResponses counts worker responses that arrived after their
	// request had timed out or was never registered.
	LateResponses atomic.Int64
}

// ServeStatsSnapshot is the plain-int64 copy of ServeStats.
type ServeStatsSnapshot struct {
	HTTPRequests     int64 `json:"http_requests"`
	ProgramRuns      int64 `json:"program_runs"`
	Fragments        int64 `json:"fragments"`
	FragmentErrors   int64 `json:"fragment_errors"`
	FragmentTimeouts int64 `json:"fragment_timeouts"`
	LateResponses    int64 `json:"late_responses"`
}

// Snapshot copies the counters.
func (s *ServeStats) Snapshot() ServeStatsSnapshot {
	return ServeStatsSnapshot{
		HTTPRequests:     s.HTTPRequests.Load(),
		ProgramRuns:      s.ProgramRuns.Load(),
		Fragments:        s.Fragments.Load(),
		FragmentErrors:   s.FragmentErrors.Load(),
		FragmentTimeouts: s.FragmentTimeouts.Load(),
		LateResponses:    s.LateResponses.Load(),
	}
}

// Snapshot is the full /statsz payload: every layer of the serving stack
// reports its counters — the service itself, the byte-budgeted program
// cache, the worker engine pools (including their byte-budgeted fragment
// parse caches), per-tenant admission outcomes, and the warm world's ADLB
// servers.
type Snapshot struct {
	Serve        ServeStatsSnapshot             `json:"serve"`
	ProgramCache memo.BudgetStats               `json:"program_cache"`
	Pool         lang.PoolStatsSnapshot         `json:"pool"`
	Tenants      map[string]TenantStatsSnapshot `json:"tenants"`
	ADLB         adlb.StatsSnapshot             `json:"adlb"`
}
