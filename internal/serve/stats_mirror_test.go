package serve

// Mirror-locks for the serving counter structs, in the idiom of
// internal/adlb's snapshot test: every atomic.Int64 field of a stats
// struct must appear in its snapshot struct as an int64 of the same name
// and be copied by Snapshot(). A counter added to one side without the
// other fails here, not in production dashboards.

import (
	"reflect"
	"testing"
)

func assertMirror(t *testing.T, stats any, snapFn func() any) {
	t.Helper()
	sv := reflect.ValueOf(stats).Elem()
	stT := sv.Type()
	snapT := reflect.TypeOf(snapFn())
	for i := 0; i < stT.NumField(); i++ {
		f := stT.Field(i)
		if f.Type.String() != "atomic.Int64" {
			continue
		}
		sf, ok := snapT.FieldByName(f.Name)
		if !ok {
			t.Fatalf("%s missing mirror field %s", snapT.Name(), f.Name)
		}
		if sf.Type.Kind() != reflect.Int64 {
			t.Fatalf("%s.%s is %s, want int64", snapT.Name(), f.Name, sf.Type)
		}
		sv.Field(i).Addr().Interface().(interface{ Store(int64) }).Store(int64(1000 + i))
	}
	snapV := reflect.ValueOf(snapFn())
	for i := 0; i < stT.NumField(); i++ {
		f := stT.Field(i)
		if f.Type.String() != "atomic.Int64" {
			continue
		}
		if got := snapV.FieldByName(f.Name).Int(); got != int64(1000+i) {
			t.Fatalf("Snapshot().%s = %d, want %d (field not copied)", f.Name, got, 1000+i)
		}
	}
}

func TestServeStatsSnapshotMirrors(t *testing.T) {
	var st ServeStats
	assertMirror(t, &st, func() any { return st.Snapshot() })
}

func TestTenantStatsSnapshotMirrors(t *testing.T) {
	var st TenantStats
	assertMirror(t, &st, func() any { return st.Snapshot() })
}
