package serve

// Mirror-locks for the serving counter structs: every atomic.Int64
// field of a stats struct must appear in its snapshot struct as an
// int64 of the same name and be copied by Snapshot(). A counter added
// to one side without the other fails here, not in production
// dashboards. (The statsmirror analyzer enforces the structural half
// statically; this is the runtime backstop.)

import (
	"testing"

	"repro/internal/statstest"
)

func TestServeStatsSnapshotMirrors(t *testing.T) {
	var st ServeStats
	statstest.AssertMirror(t, &st, func() any { return st.Snapshot() })
}

func TestTenantStatsSnapshotMirrors(t *testing.T) {
	var st TenantStats
	statstest.AssertMirror(t, &st, func() any { return st.Snapshot() })
}
