package serve

import (
	"encoding/base64"
	"fmt"

	"repro/internal/blob"
	"repro/internal/lang"
)

// WireValue is the JSON form of a typed lang.Value crossing the service
// boundary: scalars inline, blobs base64 with their logical dims and
// element kind so bulk numeric data round-trips shape and type (the
// blobutils contract over HTTP).
type WireValue struct {
	Kind  string  `json:"kind"` // "string" | "int" | "float" | "blob"
	Str   string  `json:"str,omitempty"`
	Int   int64   `json:"int,omitempty"`
	Float float64 `json:"float,omitempty"`
	Blob  string  `json:"blob,omitempty"` // base64 raw element bytes
	Dims  []int   `json:"dims,omitempty"` // logical extents, column-major
	Elem  string  `json:"elem,omitempty"` // "bytes" | "f64" | "f32" | "i32" | "i64"
}

func elemName(e blob.Elem) string {
	switch e {
	case blob.ElemF64:
		return "f64"
	case blob.ElemF32:
		return "f32"
	case blob.ElemI32:
		return "i32"
	case blob.ElemI64:
		return "i64"
	}
	return "bytes"
}

func elemOf(name string) (blob.Elem, error) {
	switch name {
	case "", "bytes":
		return blob.ElemBytes, nil
	case "f64":
		return blob.ElemF64, nil
	case "f32":
		return blob.ElemF32, nil
	case "i32":
		return blob.ElemI32, nil
	case "i64":
		return blob.ElemI64, nil
	}
	return 0, fmt.Errorf("serve: unknown blob element kind %q", name)
}

// ToWire converts a typed value to its JSON form.
func ToWire(v lang.Value) WireValue {
	switch v.Kind() {
	case lang.KindInt:
		n, _ := v.AsInt()
		return WireValue{Kind: "int", Int: n}
	case lang.KindFloat:
		f, _ := v.AsFloat()
		return WireValue{Kind: "float", Float: f}
	case lang.KindBlob:
		b := v.AsBlob()
		return WireValue{
			Kind: "blob",
			Blob: base64.StdEncoding.EncodeToString(b.Data),
			Dims: b.Dims,
			Elem: elemName(b.Elem),
		}
	}
	return WireValue{Kind: "string", Str: v.AsString()}
}

// FromWire converts a JSON value back to a typed lang.Value.
func FromWire(w WireValue) (lang.Value, error) {
	switch w.Kind {
	case "", "string":
		return lang.Str(w.Str), nil
	case "int":
		return lang.Int(w.Int), nil
	case "float":
		return lang.Float(w.Float), nil
	case "blob":
		data, err := base64.StdEncoding.DecodeString(w.Blob)
		if err != nil {
			return lang.Value{}, fmt.Errorf("serve: bad blob base64: %w", err)
		}
		elem, err := elemOf(w.Elem)
		if err != nil {
			return lang.Value{}, err
		}
		return lang.BlobOf(blob.Blob{Data: data, Dims: w.Dims, Elem: elem}), nil
	}
	return lang.Value{}, fmt.Errorf("serve: unknown value kind %q", w.Kind)
}

func wantOf(name string) (lang.Kind, error) {
	switch name {
	case "", "string":
		return lang.KindString, nil
	case "int":
		return lang.KindInt, nil
	case "float":
		return lang.KindFloat, nil
	case "blob":
		return lang.KindBlob, nil
	}
	return 0, fmt.Errorf("serve: unknown result kind %q", name)
}

// fragTask is the JSON payload of one fragment evaluation travelling from
// the gateway to a worker rank through the ADLB work queues.
type fragTask struct {
	ReqID  int64       `json:"req"`
	Tenant string      `json:"tenant"`
	Lang   string      `json:"lang"`
	Code   string      `json:"code"`
	Expr   string      `json:"expr,omitempty"`
	Args   []WireValue `json:"args,omitempty"`
	Want   string      `json:"want,omitempty"`
	Reinit bool        `json:"reinit,omitempty"`
}

// fragResp is the JSON payload of one completed evaluation travelling
// from a worker to the collector rank. ReqID -1 is the shutdown sentinel
// the gateway sends the collector directly.
type fragResp struct {
	ReqID     int64     `json:"req"`
	Value     WireValue `json:"value"`
	Output    string    `json:"output,omitempty"` // interpreter prints during this eval
	Err       string    `json:"err,omitempty"`
	Retriable bool      `json:"retriable,omitempty"`
}

const shutdownReqID = -1
