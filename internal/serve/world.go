package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/adlb"
	"repro/internal/lang"
	"repro/internal/mpi"
)

// Warm-world client ranks (the remaining ranks are ADLB servers).
const (
	gatewayRank   = 0
	collectorRank = 1
	workerRank0   = 2
)

func encodeJSON(v any) ([]byte, error) { return json.Marshal(v) }

// runWorld runs the warm fragment world until shutdown drains it.
func (s *Server) runWorld() error {
	size := workerRank0 + s.cfg.Workers + s.cfg.Servers
	w, err := mpi.NewWorld(size)
	if err != nil {
		return err
	}
	acfg := adlb.Config{
		Servers:    s.cfg.Servers,
		Types:      2,
		NotifyType: typeResp,
		Stats:      s.adlbStats,
		// A serving world is legitimately idle or backlogged for long
		// stretches; the batch hang watchdog has no meaningful baseline
		// here. Worker-death recovery still comes from leases.
		WatchdogIdleTicks: -1,
	}
	l := adlb.NewLayout(size, s.cfg.Servers)
	return w.Run(func(c *mpi.Comm) error {
		if l.IsServer(c.Rank()) {
			return adlb.Serve(c, acfg)
		}
		cl, err := adlb.NewClient(c, acfg)
		if err != nil {
			return err
		}
		switch c.Rank() {
		case gatewayRank:
			return s.gatewayLoop(cl)
		case collectorRank:
			return s.collectorLoop(cl)
		default:
			return s.workerLoop(cl)
		}
	})
}

// gatewayLoop pins the submitter client, publishes it to the API
// handlers, and on shutdown walks the drain sequence: sentinel to the
// collector, then Leave — after which ordinary quiescence collects the
// parked workers.
func (s *Server) gatewayLoop(cl *adlb.Client) error {
	if err := cl.Pin(); err != nil {
		return err
	}
	s.gw = cl
	close(s.gwReady)
	<-s.stop
	sentinel, err := json.Marshal(fragResp{ReqID: shutdownReqID})
	if err != nil {
		return err
	}
	s.gwMu.Lock()
	defer s.gwMu.Unlock()
	if err := cl.Put(typeResp, 0, collectorRank, sentinel); err != nil {
		return fmt.Errorf("serve: shutdown sentinel: %w", err)
	}
	return cl.Leave()
}

// collectorLoop pins the response collector and routes each completed
// fragment to its waiting request until the shutdown sentinel arrives.
func (s *Server) collectorLoop(cl *adlb.Client) error {
	if err := cl.Pin(); err != nil {
		return err
	}
	for {
		payload, ok, err := cl.Get(typeResp)
		if err != nil {
			return err
		}
		if !ok {
			// Unreachable while pinned; a defensive clean exit.
			return nil
		}
		var r fragResp
		if err := json.Unmarshal(payload, &r); err != nil {
			s.stats.LateResponses.Add(1)
			continue
		}
		if r.ReqID == shutdownReqID {
			return cl.Leave()
		}
		s.deliver(r)
	}
}

// deliver hands a response to its waiting request. Responses with no
// waiter — the request timed out, or a lease-reclaimed task executed
// twice — are dropped and counted.
func (s *Server) deliver(r fragResp) {
	s.pendMu.Lock()
	ch, ok := s.pending[r.ReqID]
	s.pendMu.Unlock()
	if !ok {
		s.stats.LateResponses.Add(1)
		return
	}
	select {
	case ch <- r:
	default:
		s.stats.LateResponses.Add(1)
	}
}

// workerLoop is one fragment worker rank: leased Gets over the task
// queue, evaluation against its per-tenant engine pool, results targeted
// at the collector. User errors travel back as typed responses — a lease
// Fail is reserved for worker death, which the servers recover from by
// reclaim-and-requeue.
func (s *Server) workerLoop(cl *adlb.Client) error {
	outBuf := &bytes.Buffer{}
	pool := lang.NewPool(lang.Host{Out: outBuf}, s.cfg.PoolEngines, s.poolStats)
	for {
		payload, _, ok, err := cl.GetLeased(typeTask)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		var t fragTask
		if err := json.Unmarshal(payload, &t); err != nil {
			// Malformed task: nothing to respond to; the implicit lease
			// settlement on the next Get retires it.
			continue
		}
		resp := evalTask(pool, outBuf, t)
		b, err := json.Marshal(resp)
		if err != nil {
			b, _ = json.Marshal(fragResp{ReqID: t.ReqID, Err: err.Error()})
		}
		if err := cl.Put(typeResp, 0, collectorRank, b); err != nil {
			return err
		}
	}
}

// evalTask runs one fragment against the worker's pool, capturing the
// interpreter's prints for the response.
func evalTask(pool *lang.Pool, outBuf *bytes.Buffer, t fragTask) fragResp {
	want, err := wantOf(t.Want)
	if err != nil {
		return fragResp{ReqID: t.ReqID, Err: err.Error()}
	}
	args := make([]lang.Value, len(t.Args))
	for i, a := range t.Args {
		v, err := FromWire(a)
		if err != nil {
			return fragResp{ReqID: t.ReqID, Err: err.Error()}
		}
		args[i] = v
	}
	policy := lang.PolicyRetain
	if t.Reinit {
		policy = lang.PolicyReinit
	}
	outBuf.Reset()
	v, err := pool.Eval(t.Lang, t.Tenant,
		lang.Call{Code: t.Code, Expr: t.Expr, Args: args, Want: want}, policy)
	if err != nil {
		var te *lang.TaskError
		retriable := errors.As(err, &te) && te.Retriable
		return fragResp{ReqID: t.ReqID, Err: err.Error(), Retriable: retriable, Output: outBuf.String()}
	}
	return fragResp{ReqID: t.ReqID, Value: ToWire(v), Output: outBuf.String()}
}
