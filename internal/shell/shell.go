// Package shell provides the app-function substrate: Swift's shell
// interface retained from Swift/K (paper §I, §IV). On clusters, app
// leaf tasks fork/exec external programs; on restricted systems such as
// the Blue Gene/Q "launching external programs is not possible at all"
// (§III-C), which is exactly why the paper embeds interpreters instead.
//
// The System here is a hermetic process table: programs are Go functions
// registered by name, launches charge a configurable virtual spawn cost
// (covering fork/exec plus loading the binary from the parallel
// filesystem), and ModeBGQ refuses to spawn at all, reproducing the
// constraint that motivates §III-C.
package shell

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/pfs"
)

// Mode selects the launch policy of the simulated machine.
type Mode int

// Launch policies.
const (
	// ModeCluster allows process launches with a spawn cost.
	ModeCluster Mode = iota
	// ModeBGQ forbids process launches (Blue Gene/Q compute nodes).
	ModeBGQ
)

// Program is one executable: argv (argv[0] is the program name) and
// stdin to stdout.
type Program func(sys *System, argv []string, stdin string) (string, error)

// System is a simulated operating system for one run: a process table,
// launch policy, and spawn cost accounting.
type System struct {
	Mode Mode
	// SpawnCost is the virtual cost of one process launch (fork/exec
	// plus dynamic loading).
	SpawnCost time.Duration
	// SleepOnSpawn makes SpawnCost a real delay instead of only a
	// virtual charge; benchmarks use it so process-launch overhead shows
	// in wall-clock comparisons.
	SleepOnSpawn bool
	// FS, if set, charges a metadata op per launch (the binary and its
	// libraries are opened from the shared filesystem).
	FS *pfs.FS

	programs   map[string]Program
	spawns     atomic.Int64
	spawnNanos atomic.Int64
}

// NewSystem creates a System with the standard utility programs
// installed (echo, cat, wc, seq, grep, sort, head, basename, expr).
func NewSystem(mode Mode, fs *pfs.FS) *System {
	s := &System{Mode: mode, SpawnCost: 2 * time.Millisecond, FS: fs, programs: map[string]Program{}}
	s.installCoreutils()
	return s
}

// RegisterProgram installs an executable into the process table.
func (s *System) RegisterProgram(name string, p Program) { s.programs[name] = p }

// Programs lists installed program names.
func (s *System) Programs() []string {
	out := make([]string, 0, len(s.programs))
	for n := range s.programs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Spawns returns how many processes have been launched.
func (s *System) Spawns() int64 { return s.spawns.Load() }

// VirtualElapsed returns the accumulated launch cost.
func (s *System) VirtualElapsed() time.Duration {
	return time.Duration(s.spawnNanos.Load())
}

// Exec launches argv[0] with the given arguments and returns its stdout.
func (s *System) Exec(argv []string, stdin string) (string, error) {
	if len(argv) == 0 {
		return "", fmt.Errorf("shell: empty command")
	}
	if s.Mode == ModeBGQ {
		return "", fmt.Errorf("shell: cannot launch %q: spawning external processes is not supported on this system (BG/Q compute node)", argv[0])
	}
	prog, ok := s.programs[argv[0]]
	if !ok {
		return "", fmt.Errorf("shell: %s: command not found", argv[0])
	}
	s.spawns.Add(1)
	s.spawnNanos.Add(int64(s.SpawnCost))
	if s.SleepOnSpawn {
		time.Sleep(s.SpawnCost)
	}
	if s.FS != nil {
		// Loading the executable and its shared libraries from the
		// parallel filesystem: the at-scale killer the paper describes.
		if _, err := s.FS.ReadFile("/bin/" + argv[0]); err != nil {
			// Binary not staged: charge the lookup anyway (the stat
			// happened) but proceed; the process table is authoritative.
			_ = err
		}
	}
	return prog(s, argv, stdin)
}

func (s *System) installCoreutils() {
	s.RegisterProgram("echo", func(sys *System, argv []string, stdin string) (string, error) {
		return strings.Join(argv[1:], " ") + "\n", nil
	})
	s.RegisterProgram("cat", func(sys *System, argv []string, stdin string) (string, error) {
		if len(argv) == 1 {
			return stdin, nil
		}
		var b strings.Builder
		for _, path := range argv[1:] {
			if sys.FS == nil {
				return "", fmt.Errorf("cat: no filesystem mounted")
			}
			content, err := sys.FS.ReadFile(path)
			if err != nil {
				return "", fmt.Errorf("cat: %s: no such file", path)
			}
			b.Write(content)
		}
		return b.String(), nil
	})
	s.RegisterProgram("wc", func(sys *System, argv []string, stdin string) (string, error) {
		input := stdin
		if len(argv) > 1 && argv[1] != "-l" && argv[1] != "-w" && argv[1] != "-c" {
			if sys.FS == nil {
				return "", fmt.Errorf("wc: no filesystem mounted")
			}
			content, err := sys.FS.ReadFile(argv[len(argv)-1])
			if err != nil {
				return "", err
			}
			input = string(content)
		}
		lines := strings.Count(input, "\n")
		words := len(strings.Fields(input))
		mode := ""
		if len(argv) > 1 && strings.HasPrefix(argv[1], "-") {
			mode = argv[1]
		}
		switch mode {
		case "-l":
			return fmt.Sprintf("%d\n", lines), nil
		case "-w":
			return fmt.Sprintf("%d\n", words), nil
		case "-c":
			return fmt.Sprintf("%d\n", len(input)), nil
		}
		return fmt.Sprintf("%d %d %d\n", lines, words, len(input)), nil
	})
	s.RegisterProgram("seq", func(sys *System, argv []string, stdin string) (string, error) {
		lo, hi := int64(1), int64(0)
		switch len(argv) {
		case 2:
			n, err := strconv.ParseInt(argv[1], 10, 64)
			if err != nil {
				return "", fmt.Errorf("seq: bad argument %q", argv[1])
			}
			hi = n
		case 3:
			a, err1 := strconv.ParseInt(argv[1], 10, 64)
			b, err2 := strconv.ParseInt(argv[2], 10, 64)
			if err1 != nil || err2 != nil {
				return "", fmt.Errorf("seq: bad arguments")
			}
			lo, hi = a, b
		default:
			return "", fmt.Errorf("seq: usage: seq [first] last")
		}
		var b strings.Builder
		for i := lo; i <= hi; i++ {
			fmt.Fprintf(&b, "%d\n", i)
		}
		return b.String(), nil
	})
	s.RegisterProgram("grep", func(sys *System, argv []string, stdin string) (string, error) {
		if len(argv) < 2 {
			return "", fmt.Errorf("grep: usage: grep pattern [file]")
		}
		pattern := argv[1]
		input := stdin
		if len(argv) >= 3 {
			if sys.FS == nil {
				return "", fmt.Errorf("grep: no filesystem mounted")
			}
			content, err := sys.FS.ReadFile(argv[2])
			if err != nil {
				return "", err
			}
			input = string(content)
		}
		var b strings.Builder
		for _, line := range strings.Split(input, "\n") {
			if strings.Contains(line, pattern) {
				b.WriteString(line)
				b.WriteByte('\n')
			}
		}
		return b.String(), nil
	})
	s.RegisterProgram("sort", func(sys *System, argv []string, stdin string) (string, error) {
		lines := strings.Split(strings.TrimSuffix(stdin, "\n"), "\n")
		sort.Strings(lines)
		return strings.Join(lines, "\n") + "\n", nil
	})
	s.RegisterProgram("head", func(sys *System, argv []string, stdin string) (string, error) {
		n := 10
		if len(argv) == 3 && argv[1] == "-n" {
			v, err := strconv.Atoi(argv[2])
			if err != nil {
				return "", fmt.Errorf("head: bad count %q", argv[2])
			}
			n = v
		}
		lines := strings.SplitAfter(stdin, "\n")
		if len(lines) > n {
			lines = lines[:n]
		}
		return strings.Join(lines, ""), nil
	})
	s.RegisterProgram("basename", func(sys *System, argv []string, stdin string) (string, error) {
		if len(argv) != 2 {
			return "", fmt.Errorf("basename: usage: basename path")
		}
		parts := strings.Split(argv[1], "/")
		return parts[len(parts)-1] + "\n", nil
	})
	s.RegisterProgram("expr", func(sys *System, argv []string, stdin string) (string, error) {
		if len(argv) != 4 {
			return "", fmt.Errorf("expr: usage: expr a op b")
		}
		a, err1 := strconv.ParseInt(argv[1], 10, 64)
		b, err2 := strconv.ParseInt(argv[3], 10, 64)
		if err1 != nil || err2 != nil {
			return "", fmt.Errorf("expr: non-integer operands")
		}
		switch argv[2] {
		case "+":
			return fmt.Sprintf("%d\n", a+b), nil
		case "-":
			return fmt.Sprintf("%d\n", a-b), nil
		case "*":
			return fmt.Sprintf("%d\n", a*b), nil
		case "/":
			if b == 0 {
				return "", fmt.Errorf("expr: division by zero")
			}
			return fmt.Sprintf("%d\n", a/b), nil
		}
		return "", fmt.Errorf("expr: unknown operator %q", argv[2])
	})
}
