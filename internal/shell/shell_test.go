package shell

import (
	"strings"
	"testing"

	"repro/internal/pfs"
)

func newSys() *System {
	return NewSystem(ModeCluster, pfs.New(pfs.DefaultConfig()))
}

func TestEcho(t *testing.T) {
	s := newSys()
	out, err := s.Exec([]string{"echo", "hello", "world"}, "")
	if err != nil || out != "hello world\n" {
		t.Fatalf("%q %v", out, err)
	}
}

func TestSeqAndPipelineStyle(t *testing.T) {
	s := newSys()
	out, err := s.Exec([]string{"seq", "1", "5"}, "")
	if err != nil {
		t.Fatal(err)
	}
	out2, err := s.Exec([]string{"wc", "-l"}, out)
	if err != nil || strings.TrimSpace(out2) != "5" {
		t.Fatalf("%q %v", out2, err)
	}
	out3, err := s.Exec([]string{"head", "-n", "2"}, out)
	if err != nil || out3 != "1\n2\n" {
		t.Fatalf("%q %v", out3, err)
	}
}

func TestCatGrepWithFS(t *testing.T) {
	s := newSys()
	s.FS.Provision("/data/log.txt", []byte("ok line\nerror here\nok again\n"))
	out, err := s.Exec([]string{"cat", "/data/log.txt"}, "")
	if err != nil || !strings.Contains(out, "error here") {
		t.Fatalf("%q %v", out, err)
	}
	out, err = s.Exec([]string{"grep", "error", "/data/log.txt"}, "")
	if err != nil || out != "error here\n" {
		t.Fatalf("%q %v", out, err)
	}
	out, err = s.Exec([]string{"grep", "ok"}, "ok 1\nbad\nok 2\n")
	if err != nil || out != "ok 1\nok 2\n" {
		t.Fatalf("%q %v", out, err)
	}
}

func TestSortAndBasenameAndExpr(t *testing.T) {
	s := newSys()
	out, err := s.Exec([]string{"sort"}, "b\na\nc\n")
	if err != nil || out != "a\nb\nc\n" {
		t.Fatalf("%q %v", out, err)
	}
	out, err = s.Exec([]string{"basename", "/a/b/c.txt"}, "")
	if err != nil || out != "c.txt\n" {
		t.Fatalf("%q %v", out, err)
	}
	out, err = s.Exec([]string{"expr", "6", "*", "7"}, "")
	if err != nil || out != "42\n" {
		t.Fatalf("%q %v", out, err)
	}
	if _, err := s.Exec([]string{"expr", "1", "/", "0"}, ""); err == nil {
		t.Fatal("expected division by zero")
	}
}

func TestBGQModeRefusesSpawn(t *testing.T) {
	s := NewSystem(ModeBGQ, nil)
	_, err := s.Exec([]string{"echo", "hi"}, "")
	if err == nil || !strings.Contains(err.Error(), "not supported on this system") {
		t.Fatalf("err = %v", err)
	}
	if s.Spawns() != 0 {
		t.Fatal("BGQ mode spawned a process")
	}
}

func TestSpawnAccounting(t *testing.T) {
	s := newSys()
	for i := 0; i < 5; i++ {
		if _, err := s.Exec([]string{"echo", "x"}, ""); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spawns() != 5 {
		t.Fatalf("spawns = %d", s.Spawns())
	}
	if s.VirtualElapsed() != 5*s.SpawnCost {
		t.Fatalf("virtual = %v", s.VirtualElapsed())
	}
}

func TestUnknownCommandAndCustomProgram(t *testing.T) {
	s := newSys()
	if _, err := s.Exec([]string{"nosuchprog"}, ""); err == nil || !strings.Contains(err.Error(), "command not found") {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Exec(nil, ""); err == nil {
		t.Fatal("empty command should fail")
	}
	s.RegisterProgram("mysim", func(sys *System, argv []string, stdin string) (string, error) {
		return "simulated " + strings.Join(argv[1:], ","), nil
	})
	out, err := s.Exec([]string{"mysim", "a", "b"}, "")
	if err != nil || out != "simulated a,b" {
		t.Fatalf("%q %v", out, err)
	}
	progs := s.Programs()
	found := false
	for _, p := range progs {
		if p == "mysim" {
			found = true
		}
	}
	if !found {
		t.Fatalf("programs = %v", progs)
	}
}

func TestWcModes(t *testing.T) {
	s := newSys()
	input := "one two\nthree\n"
	out, _ := s.Exec([]string{"wc", "-l"}, input)
	if strings.TrimSpace(out) != "2" {
		t.Fatalf("wc -l = %q", out)
	}
	out, _ = s.Exec([]string{"wc", "-w"}, input)
	if strings.TrimSpace(out) != "3" {
		t.Fatalf("wc -w = %q", out)
	}
	out, _ = s.Exec([]string{"wc", "-c"}, input)
	if strings.TrimSpace(out) != "14" {
		t.Fatalf("wc -c = %q", out)
	}
}
