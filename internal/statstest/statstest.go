// Package statstest holds the shared runtime mirror check for the
// repo's Stats/StatsSnapshot counter pairs: every exported atomic.Int64
// counter must appear in the snapshot struct as an int64 of the same
// name and be copied by Snapshot(), and every int64 snapshot field must
// be backed by a live counter.
//
// The same contract is enforced statically by the statsmirror analyzer
// (cmd/swiftvet); this package is the runtime backstop that additionally
// proves Snapshot() copies real values, which no purely syntactic check
// can.
package statstest

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// AssertMirror checks one Stats/StatsSnapshot pair. stats must be a
// pointer to the zero-valued counter struct; snapshot must call its
// Snapshot() method and return the result. The counters are left
// holding distinctive values afterwards, so pass a throwaway struct.
func AssertMirror(t *testing.T, stats any, snapshot func() any) {
	t.Helper()
	counterType := reflect.TypeOf(atomic.Int64{})
	sv := reflect.ValueOf(stats)
	if sv.Kind() != reflect.Pointer || sv.Elem().Kind() != reflect.Struct {
		t.Fatalf("statstest: stats must be a pointer to a struct, got %T", stats)
	}
	sv = sv.Elem()
	statsType := sv.Type()
	snapType := reflect.TypeOf(snapshot())
	if snapType == nil || snapType.Kind() != reflect.Struct {
		t.Fatalf("statstest: snapshot() must return a struct, got %v", snapType)
	}

	// Forward: every counter has a well-typed mirror; seed each with a
	// distinct value.
	counters := map[string]bool{}
	for i := 0; i < statsType.NumField(); i++ {
		f := statsType.Field(i)
		if !f.IsExported() || f.Type != counterType {
			continue
		}
		counters[f.Name] = true
		sf, ok := snapType.FieldByName(f.Name)
		if !ok {
			t.Errorf("%s.%s has no mirror field in %s", statsType.Name(), f.Name, snapType.Name())
			continue
		}
		if sf.Type.Kind() != reflect.Int64 {
			t.Errorf("%s.%s is %v, want int64", snapType.Name(), f.Name, sf.Type)
			continue
		}
		sv.Field(i).Addr().Interface().(*atomic.Int64).Store(int64(1000 + i))
	}

	// Reverse: a snapshot field whose counter was removed would report
	// zero forever.
	for i := 0; i < snapType.NumField(); i++ {
		f := snapType.Field(i)
		if f.Type.Kind() == reflect.Int64 && !counters[f.Name] {
			t.Errorf("%s.%s has no counter in %s", snapType.Name(), f.Name, statsType.Name())
		}
	}
	if t.Failed() {
		return
	}

	// Copy: Snapshot() must surface the seeded values.
	snapV := reflect.ValueOf(snapshot())
	for i := 0; i < statsType.NumField(); i++ {
		f := statsType.Field(i)
		if !f.IsExported() || f.Type != counterType {
			continue
		}
		if got, want := snapV.FieldByName(f.Name).Int(), int64(1000+i); got != want {
			t.Errorf("Snapshot().%s = %d, want %d (counter not copied)", f.Name, got, want)
		}
	}
}
